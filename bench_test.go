// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Each benchmark regenerates its experiment at laptop scale
// and reports the headline quantities as custom metrics (go test
// -bench=. -benchmem). The cmd/ binaries print the full rows/series.
package flagproxy

import (
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/sim"
	"github.com/fpn/flagproxy/internal/surface"
)

var fpnArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

func catalogCode(b *testing.B, family string, n int) *css.Code {
	b.Helper()
	for _, e := range catalog.Standard() {
		if e.Family == family && e.Code.N == n {
			return e.Code
		}
	}
	b.Fatalf("no %s code with n=%d in catalogue", family, n)
	return nil
}

func berPoint(b *testing.B, code *css.Code, arch fpn.Options, dec experiment.DecoderKind, basis css.Basis, p float64, shots int) float64 {
	b.Helper()
	res, err := experiment.Run(experiment.Config{
		Code: code, Arch: arch, Basis: basis, P: p,
		Shots: shots, Seed: 1, Decoder: dec,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res.BER
}

// BenchmarkFig08aQubitComposition regenerates Figure 8(a): the mean
// qubit-type composition of shared-flag FPNs across subfamilies. The
// reported metric is the flag fraction of the {5,5} subfamily.
func BenchmarkFig08aQubitComposition(b *testing.B) {
	entries := catalog.Standard()
	var flagFrac float64
	for i := 0; i < b.N; i++ {
		es := catalog.BySubfamily(entries, "surface", [2]int{5, 5})
		flagFrac = 0
		for _, e := range es {
			net, err := fpn.Build(e.Code, fpnArch)
			if err != nil {
				b.Fatal(err)
			}
			flagFrac += float64(net.CountByType()[fpn.Flag]) / float64(net.NumQubits())
		}
		flagFrac /= float64(len(es))
	}
	b.ReportMetric(flagFrac, "flag-fraction-55")
}

// BenchmarkFig12EffectiveRate regenerates Figure 12: effective rates
// with and without flag sharing. Metrics: mean sharing gain and the
// [[30,8,3,3]] shared-flag Reff (paper ≈ 0.094 for the subfamily).
func BenchmarkFig12EffectiveRate(b *testing.B) {
	entries := catalog.Standard()
	var gain, reff30 float64
	for i := 0; i < b.N; i++ {
		gain = 0
		count := 0
		for _, e := range entries {
			plain, err1 := fpn.Build(e.Code, fpn.Options{UseFlags: true, MaxDegree: 4})
			shared, err2 := fpn.Build(e.Code, fpnArch)
			if err1 != nil || err2 != nil {
				b.Fatal(err1, err2)
			}
			gain += shared.EffectiveRate() / plain.EffectiveRate()
			count++
			if e.Code.N == 30 && e.Family == "surface" {
				reff30 = shared.EffectiveRate()
			}
		}
		gain /= float64(count)
	}
	b.ReportMetric(gain, "mean-sharing-gain")
	b.ReportMetric(reff30, "Reff-30-8-3-3")
}

// BenchmarkTable1MeanDegree regenerates Table I. Metrics: the highest
// mean degree among surface subfamilies and the planar d=5 mean degree
// (paper: 3.12 and 3.26).
func BenchmarkTable1MeanDegree(b *testing.B) {
	entries := catalog.Standard()
	var surfaceMax, planar5 float64
	for i := 0; i < b.N; i++ {
		surfaceMax = 0
		for _, e := range entries {
			if e.Family != "surface" {
				continue
			}
			net, err := fpn.Build(e.Code, fpnArch)
			if err != nil {
				b.Fatal(err)
			}
			if net.MeanDegree() > surfaceMax {
				surfaceMax = net.MeanDegree()
			}
		}
		l, err := surface.Rotated(5)
		if err != nil {
			b.Fatal(err)
		}
		net, err := fpn.Build(l.Code, fpn.Options{})
		if err != nil {
			b.Fatal(err)
		}
		planar5 = net.MeanDegree()
	}
	b.ReportMetric(surfaceMax, "surface-max-mean-degree")
	b.ReportMetric(planar5, "planar-d5-mean-degree")
}

// BenchmarkFig14ScheduleLatency regenerates Figure 14 for the
// [[30,8,3,3]] code on a direct architecture: greedy latency between the
// theoretical shortest (1090 ns) and longest (1290 ns).
func BenchmarkFig14ScheduleLatency(b *testing.B) {
	code := catalogCode(b, "surface", 30)
	var latency float64
	for i := 0; i < b.N; i++ {
		net, err := fpn.Build(code, fpn.Options{})
		if err != nil {
			b.Fatal(err)
		}
		s, err := schedule.Greedy(net)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := schedule.BuildRoundPlan(s)
		if err != nil {
			b.Fatal(err)
		}
		latency = plan.LatencyNs
	}
	b.ReportMetric(latency, "greedy-ns")
	b.ReportMetric(schedule.TheoreticalShortestNs(5), "shortest-ns")
	b.ReportMetric(schedule.TheoreticalLongestNs(5, 5), "longest-ns")
}

// BenchmarkFig17SurfaceBER regenerates one Figure 17 point per family:
// BER_norm of the [[30,8,3,3]] hyperbolic code and of the planar d=5
// code at p = 1e-3 (memory Z, flagged MWPM).
func BenchmarkFig17SurfaceBER(b *testing.B) {
	hyper := catalogCode(b, "surface", 30)
	l, err := surface.Rotated(5)
	if err != nil {
		b.Fatal(err)
	}
	var hyperBER, planarBER float64
	for i := 0; i < b.N; i++ {
		hyperBER = berPoint(b, hyper, fpnArch, experiment.FlaggedMWPM, css.Z, 1e-3, 400)
		planarBER = berPoint(b, l.Code, fpn.Options{}, experiment.FlaggedMWPM, css.Z, 1e-3, 400)
	}
	b.ReportMetric(hyperBER/float64(hyper.K), "hyper-BERnorm")
	b.ReportMetric(planarBER, "planar-d5-BER")
}

// BenchmarkFig18ColorBER regenerates one Figure 18 point: BER_norm of
// the {4,6} hyperbolic color code under the flagged Restriction decoder.
func BenchmarkFig18ColorBER(b *testing.B) {
	code := catalogCode(b, "color", 48)
	var ber float64
	for i := 0; i < b.N; i++ {
		ber = berPoint(b, code, fpnArch, experiment.FlaggedRestriction, css.Z, 5e-4, 300)
	}
	b.ReportMetric(ber/float64(code.K), "hycc46-BERnorm")
}

// BenchmarkFig19FlaggedVsPlain regenerates Figure 19: flagged vs plain
// MWPM on the [[30,8,3,3]] code at p = 1e-3.
func BenchmarkFig19FlaggedVsPlain(b *testing.B) {
	code := catalogCode(b, "surface", 30)
	var flagged, plain float64
	for i := 0; i < b.N; i++ {
		flagged = berPoint(b, code, fpnArch, experiment.FlaggedMWPM, css.Z, 1e-3, 500)
		plain = berPoint(b, code, fpnArch, experiment.PlainMWPM, css.Z, 1e-3, 500)
	}
	b.ReportMetric(flagged, "flagged-BER")
	b.ReportMetric(plain, "plain-BER")
}

// BenchmarkFig20RestrictionDecoders regenerates Figure 20: flagged vs
// Chamberland-style Restriction decoding on the {4,6} color code.
func BenchmarkFig20RestrictionDecoders(b *testing.B) {
	code := catalogCode(b, "color", 48)
	var flagged, baseline float64
	for i := 0; i < b.N; i++ {
		flagged = berPoint(b, code, fpnArch, experiment.FlaggedRestriction, css.Z, 5e-4, 300)
		baseline = berPoint(b, code, fpnArch, experiment.BaselineRestriction, css.Z, 5e-4, 300)
	}
	b.ReportMetric(flagged, "flagged-BER")
	b.ReportMetric(baseline, "chamberland-BER")
}

// BenchmarkTables45Inventory regenerates the code inventory (Tables IV
// and V). Metric: total codes catalogued.
func BenchmarkTables45Inventory(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		opt := catalog.DefaultOptions()
		entries := catalog.SurfaceCodes(5, 5, opt)
		entries = append(entries, catalog.ColorCodes(4, 8, opt)...)
		total = float64(len(entries))
	}
	b.ReportMetric(total, "codes")
}

// BenchmarkHeadlineEfficiency regenerates the headline claim: mean
// space-efficiency ratio of hyperbolic FPNs vs the d=5 planar surface
// code (paper: 2.9x surface, 5.5x color).
func BenchmarkHeadlineEfficiency(b *testing.B) {
	entries := catalog.Standard()
	var surfRatio, colorRatio float64
	for i := 0; i < b.N; i++ {
		var sums [2]float64
		var counts [2]int
		for _, e := range entries {
			net, err := fpn.Build(e.Code, fpnArch)
			if err != nil {
				b.Fatal(err)
			}
			idx := 0
			if e.Family == "color" {
				idx = 1
			}
			sums[idx] += net.EffectiveRate() * 49
			counts[idx]++
		}
		surfRatio = sums[0] / float64(counts[0])
		colorRatio = sums[1] / float64(counts[1])
	}
	b.ReportMetric(surfRatio, "surface-ratio")
	b.ReportMetric(colorRatio, "color-ratio")
}

// BenchmarkAblationProxyOrientation regenerates the Figure 7 study: the
// probability that a proxy relay corrupts the parity measurement, for
// the paper's preferred 3-CNOT orientation versus the 4-CNOT variant
// that touches the parity qubit twice.
func BenchmarkAblationProxyOrientation(b *testing.B) {
	p := 1e-3
	build := func(orientA bool) *circuit.Circuit {
		// Qubits: 0 = data a, 1 = proxy x, 2 = parity P.
		c := &circuit.Circuit{NumQubits: 3}
		c.AddOp(circuit.Op{Kind: circuit.OpReset, Qubits: []int{0, 1, 2}})
		var seq [][2]int
		if orientA {
			seq = [][2]int{{1, 2}, {0, 1}, {1, 2}, {0, 1}}
		} else {
			seq = [][2]int{{0, 1}, {1, 2}, {0, 1}}
		}
		for _, pr := range seq {
			c.AddOp(circuit.Op{Kind: circuit.OpCX, Pairs: [][2]int{pr}})
			c.AddOp(circuit.Op{Kind: circuit.OpDepol2, Pairs: [][2]int{pr}, P: p})
		}
		c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{2}})
		c.Detectors = append(c.Detectors, circuit.Detector{Meas: []int{0}, Check: 0})
		return c
	}
	measRate := func(c *circuit.Circuit) float64 {
		model, err := dem.Extract(c)
		if err != nil {
			b.Fatal(err)
		}
		total := 0.0
		for _, ev := range model.Events {
			if len(ev.Dets) == 1 {
				total += ev.P
			}
		}
		return total
	}
	var rateA, rateB float64
	for i := 0; i < b.N; i++ {
		rateA = measRate(build(true))
		rateB = measRate(build(false))
	}
	if rateB >= rateA {
		b.Fatalf("orientation (b) (%.2e) should beat (a) (%.2e)", rateB, rateA)
	}
	b.ReportMetric(rateA/p, "orientA-rate-over-p")
	b.ReportMetric(rateB/p, "orientB-rate-over-p")
}

// BenchmarkAblationFlagSharing quantifies §IV-E: flag count and Reff
// with sharing off/on for the [[30,8,3,3]] code.
func BenchmarkAblationFlagSharing(b *testing.B) {
	code := catalogCode(b, "surface", 30)
	var flagsPlain, flagsShared float64
	for i := 0; i < b.N; i++ {
		plain, err := fpn.Build(code, fpn.Options{UseFlags: true, MaxDegree: 4})
		if err != nil {
			b.Fatal(err)
		}
		shared, err := fpn.Build(code, fpnArch)
		if err != nil {
			b.Fatal(err)
		}
		flagsPlain = float64(plain.CountByType()[fpn.Flag])
		flagsShared = float64(shared.CountByType()[fpn.Flag])
	}
	b.ReportMetric(flagsPlain, "flags-unshared")
	b.ReportMetric(flagsShared, "flags-shared")
}

// BenchmarkAblationRenormalization compares the flagged MWPM decoder
// with and without the Equation 9 renormalization on exhaustive single
// faults plus a small BER sample.
func BenchmarkAblationRenormalization(b *testing.B) {
	code := catalogCode(b, "surface", 30)
	net, err := fpn.Build(code, fpnArch)
	if err != nil {
		b.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		b.Fatal(err)
	}
	nm := &noise.Model{P: 1e-3}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: css.Z, Rounds: 3, Noise: nm})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		b.Fatal(err)
	}
	var withBER, withoutBER float64
	for i := 0; i < b.N; i++ {
		res := sim.Run(c, 1000, 5)
		for variant := 0; variant < 2; variant++ {
			dec, err := decoder.NewMWPM(model, css.Z, nm.MeasFlip(), true)
			if err != nil {
				b.Fatal(err)
			}
			dec.DisableRenorm = variant == 1
			errs := 0
			for shot := 0; shot < 1000; shot++ {
				corr, err := dec.Decode(func(d int) bool { return res.DetectorBit(d, shot) })
				if err != nil {
					errs++
					continue
				}
				for o := range c.Observables {
					if corr[o] != res.ObservableBit(o, shot) {
						errs++
						break
					}
				}
			}
			if variant == 0 {
				withBER = float64(errs) / 1000
			} else {
				withoutBER = float64(errs) / 1000
			}
		}
	}
	b.ReportMetric(withBER, "eq9-on-BER")
	b.ReportMetric(withoutBER, "eq9-off-BER")
}

// BenchmarkAblationLatencyAwareIdle contrasts the paper's latency-scaled
// T1/T2 decoherence (§III-A) against the prior-work convention of a flat
// per-round idle error: the flat model misses the penalty of the FPN's
// longer (2.3 µs) rounds.
func BenchmarkAblationLatencyAwareIdle(b *testing.B) {
	code := catalogCode(b, "surface", 30)
	var scaled, flat float64
	for i := 0; i < b.N; i++ {
		rs, err := experiment.Run(experiment.Config{
			Code: code, Arch: fpnArch, Basis: css.Z, P: 1e-3,
			Shots: 600, Seed: 9, Decoder: experiment.FlaggedMWPM,
		})
		if err != nil {
			b.Fatal(err)
		}
		rf, err := experiment.Run(experiment.Config{
			Code: code, Arch: fpnArch, Basis: css.Z, P: 1e-3,
			Shots: 600, Seed: 9, Decoder: experiment.FlaggedMWPM, FixedIdle: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		scaled, flat = rs.BER, rf.BER
	}
	b.ReportMetric(scaled, "latency-scaled-BER")
	b.ReportMetric(flat, "fixed-idle-BER")
}
