package flagproxy

import (
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/sim"
	"github.com/fpn/flagproxy/internal/surface"
)

// decoderFixture prepares a decoding workload: the [[30,8,3,3]] FPN
// memory circuit at p=1e-3 with pre-sampled shots.
type decoderFixture struct {
	c     *circuit.Circuit
	model *dem.Model
	res   *sim.Result
	shots int
}

func newDecoderFixture(b *testing.B) *decoderFixture {
	b.Helper()
	code := catalogCode(b, "surface", 30)
	net, err := fpn.Build(code, fpnArch)
	if err != nil {
		b.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		b.Fatal(err)
	}
	nm := &noise.Model{P: 1e-3}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: css.Z, Rounds: 3, Noise: nm})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		b.Fatal(err)
	}
	shots := 512
	return &decoderFixture{c: c, model: model, res: sim.Run(c, shots, 42), shots: shots}
}

func (f *decoderFixture) decodeAll(b *testing.B, dec interface {
	Decode(func(int) bool) ([]bool, error)
}) float64 {
	b.Helper()
	errs := 0
	for shot := 0; shot < f.shots; shot++ {
		corr, err := dec.Decode(func(d int) bool { return f.res.DetectorBit(d, shot) })
		if err != nil {
			errs++
			continue
		}
		for o := range f.c.Observables {
			if corr[o] != f.res.ObservableBit(o, shot) {
				errs++
				break
			}
		}
	}
	return float64(errs) / float64(f.shots)
}

// BenchmarkDecoderMWPMThroughput measures the flagged MWPM decoder's
// per-shot decoding cost on realistic syndromes.
func BenchmarkDecoderMWPMThroughput(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewMWPM(f.model, css.Z, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	var ber float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ber = f.decodeAll(b, dec)
	}
	b.ReportMetric(float64(f.shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	b.ReportMetric(ber, "BER")
}

// BenchmarkDecoderUnionFindThroughput measures the flag-aware union-find
// decoder (the fast approximate extension) on the same workload.
func BenchmarkDecoderUnionFindThroughput(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewUnionFind(f.model, css.Z, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	var ber float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ber = f.decodeAll(b, dec)
	}
	b.ReportMetric(float64(f.shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	b.ReportMetric(ber, "BER")
}

// BenchmarkDEMExtraction measures detector-error-model extraction time
// for the [[30,8,3,3]] FPN circuit (the one-off cost per experiment).
func BenchmarkDEMExtraction(b *testing.B) {
	f := newDecoderFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dem.Extract(f.c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameSampler measures the bit-packed Pauli-frame sampler.
func BenchmarkFrameSampler(b *testing.B) {
	f := newDecoderFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(f.c, 4096, int64(i))
	}
	b.ReportMetric(4096*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}

// BenchmarkDecoderBPOSDThroughput measures the BP+OSD extension decoder
// on the same workload as the matching benchmarks.
func BenchmarkDecoderBPOSDThroughput(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewBPOSD(f.model, css.Z, 30)
	if err != nil {
		b.Fatal(err)
	}
	var ber float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ber = f.decodeAll(b, dec)
	}
	b.ReportMetric(float64(f.shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	b.ReportMetric(ber, "BER")
}

// planarFixture prepares the rotated d=5 surface-code workload under the
// canonical Tomita-Svore schedule (the standard MWPM benchmark point).
func planarFixture(b *testing.B) *decoderFixture {
	b.Helper()
	l, err := surface.Rotated(5)
	if err != nil {
		b.Fatal(err)
	}
	s, _, err := schedule.CanonicalRotated(l)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		b.Fatal(err)
	}
	nm := &noise.Model{P: 1e-3}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: css.Z, Rounds: 5, Noise: nm})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		b.Fatal(err)
	}
	shots := 512
	return &decoderFixture{c: c, model: model, res: sim.Run(c, shots, 42), shots: shots}
}

// benchDecodeShots measures the per-shot decode cost (and allocations)
// of one decoder on pre-sampled realistic shots, cycling the shot set.
func benchDecodeShots(b *testing.B, f *decoderFixture, dec interface {
	Decode(func(int) bool) ([]bool, error)
}) {
	b.Helper()
	sc := decoder.NewScratch()
	sd, scratched := dec.(decoder.ScratchDecoder)
	// Warm the shortest-path-tree cache and size the scratch arenas so
	// the timed region is the steady state.
	for shot := 0; shot < f.shots; shot++ {
		bit := func(d int) bool { return f.res.DetectorBit(d, shot) }
		var err error
		if scratched {
			_, err = sd.DecodeWith(sc, bit)
		} else {
			_, err = dec.Decode(bit)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	shot := 0
	bit := func(d int) bool { return f.res.DetectorBit(d, shot) }
	for i := 0; i < b.N; i++ {
		var err error
		if scratched {
			_, err = sd.DecodeWith(sc, bit)
		} else {
			_, err = dec.Decode(bit)
		}
		if err != nil {
			b.Fatal(err)
		}
		shot++
		if shot == f.shots {
			shot = 0
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}

// benchDecodeBatch measures the 64-shot batch path on the same
// pre-sampled shots: one timed iteration decodes one block through
// decoder.Batch (all-zero fast path, syndrome memo, scalar fallback on
// cold keys), cycling the block set. Reported shots/s counts lanes, so
// the number is directly comparable to benchDecodeShots.
func benchDecodeBatch(b *testing.B, f *decoderFixture, dec decoder.ScratchDecoder) {
	b.Helper()
	bat := decoder.NewBatch(dec)
	sc := decoder.NewScratch()
	blocks := (f.shots + 63) / 64
	// Warm the decoder caches, the scratch arenas and the syndrome memo
	// so the timed region is the steady state the engine runs in.
	for w := 0; w < blocks; w++ {
		first := w * 64
		n := f.shots - first
		if n > 64 {
			n = 64
		}
		if _, err := bat.DecodeBatch(f.res, first, n, sc); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	lanes := 0
	w := 0
	for i := 0; i < b.N; i++ {
		first := w * 64
		n := f.shots - first
		if n > 64 {
			n = 64
		}
		if _, err := bat.DecodeBatch(f.res, first, n, sc); err != nil {
			b.Fatal(err)
		}
		lanes += n
		w++
		if w == blocks {
			w = 0
		}
	}
	b.ReportMetric(float64(lanes)/b.Elapsed().Seconds(), "shots/s")
	hits, misses := sc.MemoStats()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "memo-hit-rate")
	}
}

// BenchmarkDecodeMWPMPlanarD5 is the acceptance benchmark: plain MWPM on
// the rotated d=5 surface code, per-shot cost and steady-state allocs.
func BenchmarkDecodeMWPMPlanarD5(b *testing.B) {
	f := planarFixture(b)
	dec, err := decoder.NewMWPM(f.model, css.Z, 1e-3, false)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeShots(b, f, dec)
}

// BenchmarkDecodeBatchMWPMPlanarD5 is the batch counterpart of the
// acceptance benchmark: the same plain-MWPM planar d=5 workload through
// the 64-shot batch path. The shots/s ratio against
// BenchmarkDecodeMWPMPlanarD5 is the batch speedup the decode-perf CI
// gate tracks.
func BenchmarkDecodeBatchMWPMPlanarD5(b *testing.B) {
	f := planarFixture(b)
	dec, err := decoder.NewMWPM(f.model, css.Z, 1e-3, false)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeBatch(b, f, dec)
}

// BenchmarkDecodeBatchMWPM measures the flagged MWPM decoder through the
// batch path on the [[30,8,3,3]] FPN workload.
func BenchmarkDecodeBatchMWPM(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewMWPM(f.model, css.Z, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeBatch(b, f, dec)
}

// BenchmarkDecodeBatchUnionFind measures the union-find decoder through
// the batch path on the [[30,8,3,3]] FPN workload.
func BenchmarkDecodeBatchUnionFind(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewUnionFind(f.model, css.Z, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeBatch(b, f, dec)
}

// BenchmarkDecodeMWPM measures the flagged MWPM decoder per shot on the
// [[30,8,3,3]] FPN workload.
func BenchmarkDecodeMWPM(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewMWPM(f.model, css.Z, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeShots(b, f, dec)
}

// BenchmarkDecodeRestriction measures the flagged Restriction decoder
// per shot on the {4,6} color-code FPN workload.
func BenchmarkDecodeRestriction(b *testing.B) {
	code := catalogCode(b, "color", 48)
	net, err := fpn.Build(code, fpnArch)
	if err != nil {
		b.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		b.Fatal(err)
	}
	nm := &noise.Model{P: 1e-3}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: css.Z, Rounds: 3, Noise: nm})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		b.Fatal(err)
	}
	f := &decoderFixture{c: c, model: model, res: sim.Run(c, 512, 42), shots: 512}
	dec, err := decoder.NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeShots(b, f, dec)
}

// BenchmarkDecodeUnionFind measures the union-find decoder per shot on
// the [[30,8,3,3]] FPN workload.
func BenchmarkDecodeUnionFind(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewUnionFind(f.model, css.Z, 1e-3, true)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeShots(b, f, dec)
}

// BenchmarkDecodeBPOSD measures the BP+OSD decoder per shot on the
// [[30,8,3,3]] FPN workload.
func BenchmarkDecodeBPOSD(b *testing.B) {
	f := newDecoderFixture(b)
	dec, err := decoder.NewBPOSD(f.model, css.Z, 30)
	if err != nil {
		b.Fatal(err)
	}
	benchDecodeShots(b, f, dec)
}
