// Package flagproxy is a from-scratch Go reproduction of "Flag-Proxy
// Networks: Overcoming the Architectural, Scheduling and Decoding
// Obstacles of Quantum LDPC Codes" (MICRO 2024): hyperbolic surface and
// color code construction from group-theoretic tilings, the Flag-Proxy
// Network architecture, greedy syndrome-extraction scheduling, a
// circuit-level Pauli-frame simulator with detector error models, and
// the paper's flag-aware MWPM and Restriction decoders with their
// prior-work baselines.
//
// The public entry points live in the cmd/ binaries and examples/; the
// library packages are under internal/ (see DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduced tables and figures).
// The root package holds the benchmark harness: one benchmark per paper
// table and figure (bench_test.go).
package flagproxy
