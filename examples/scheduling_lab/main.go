// Scheduling lab: a deep dive into syndrome-extraction scheduling —
// greedy Algorithm 1 versus the disjoint worst case on the planar
// surface code and the hyperbolic catalogue, plus the canonical
// fault-tolerant ordering of the rotated code, and the anatomy of an FPN
// round plan (phases, flag windows, proxy ladders).
package main

import (
	"fmt"
	"log"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
)

func main() {
	fmt.Println("=== Greedy scheduling vs the disjoint worst case ===")
	fmt.Printf("%-18s %8s %8s %10s\n", "code", "greedy", "worst", "saved")
	report := func(name string, code *css.Code) {
		net, err := fpn.Build(code, fpn.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s, err := schedule.Greedy(net)
		if err != nil {
			log.Fatal(err)
		}
		worst := code.MaxWeight(css.X) + code.MaxWeight(css.Z)
		fmt.Printf("%-18s %8d %8d %9d↓\n", name, s.Steps(), worst, worst-s.Steps())
	}
	for _, d := range []int{3, 5, 7} {
		l, err := surface.Rotated(d)
		if err != nil {
			log.Fatal(err)
		}
		report(l.Code.Name, l.Code)
	}
	for _, e := range catalog.Standard() {
		if e.Code.N <= 200 {
			report(e.Code.Name, e.Code)
		}
	}

	fmt.Println()
	fmt.Println("=== Canonical rotated-surface-code ordering (Tomita-Svore) ===")
	l, err := surface.Rotated(3)
	if err != nil {
		log.Fatal(err)
	}
	for ci, ch := range l.Code.Checks {
		fmt.Printf("check %2d (%c at %v): CNOT order %v\n",
			ci, ch.Basis, l.CheckPos[ci], l.CanonicalCNOTOrder(ci))
	}

	fmt.Println()
	fmt.Println("=== Anatomy of an FPN round plan ([[30,8,3,3]]) ===")
	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == "surface" && e.Code.N == 30 {
			code = e.Code
		}
	}
	if code == nil {
		log.Fatal("missing [[30,8,3,3]]")
	}
	net, err := fpn.Build(code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		log.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("split into phases: %v (shared flags serve both bases)\n", s.Split)
	kinds := map[schedule.LayerKind]string{
		schedule.LayerReset:      "reset",
		schedule.LayerH:          "H",
		schedule.LayerCX:         "CX",
		schedule.LayerMR:         "measure+reset",
		schedule.LayerProxyReset: "proxy-reset",
	}
	hist := map[schedule.LayerKind]int{}
	for _, layer := range plan.Layers {
		hist[layer.Kind]++
	}
	for k, name := range kinds {
		fmt.Printf("  %-14s x%d\n", name, hist[k])
	}
	fmt.Printf("round latency: %.0f ns (paper's hyperbolic-surface worst case: ~2300 ns)\n", plan.LatencyNs)
}
