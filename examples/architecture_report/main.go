// Architecture report: surveys Flag-Proxy Network overheads across the
// whole hyperbolic code catalogue — qubit budgets, flag-sharing savings,
// proxy counts, connectivity, and space efficiency against the planar
// surface code family. This is the workload the paper's introduction
// motivates: choosing a code family for a fixed fabrication budget.
package main

import (
	"fmt"
	"log"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

func main() {
	fmt.Println("=== Flag-Proxy Network architecture survey ===")
	fmt.Println()
	fmt.Printf("%-16s %6s %5s | %9s %9s %7s | %7s %7s | %9s\n",
		"code", "n", "k", "N(plain)", "N(share)", "proxies", "meanDeg", "maxDeg", "Reff-gain")

	for _, e := range catalog.Standard() {
		plain, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, MaxDegree: 4})
		if err != nil {
			log.Printf("%s: %v", e.Code.Name, err)
			continue
		}
		shared, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
		if err != nil {
			log.Printf("%s: %v", e.Code.Name, err)
			continue
		}
		fmt.Printf("%-16s %6d %5d | %9d %9d %7d | %7.2f %7d | %8.2fx\n",
			e.Code.Name, e.Code.N, e.Code.K,
			plain.NumQubits(), shared.NumQubits(), shared.CountByType()[fpn.Proxy],
			shared.MeanDegree(), shared.MaxDegreeUsed(),
			shared.EffectiveRate()/plain.EffectiveRate())
	}

	fmt.Println()
	fmt.Println("Planar surface code reference (standard N = 2d²−1 implementation):")
	for _, d := range []int{3, 5, 7, 9, 11} {
		l, err := surface.Rotated(d)
		if err != nil {
			continue
		}
		net, err := fpn.Build(l.Code, fpn.Options{})
		if err != nil {
			continue
		}
		fmt.Printf("  d=%-2d  N=%4d  Reff=%.4f  meanDeg=%.2f\n",
			d, net.NumQubits(), net.EffectiveRate(), net.MeanDegree())
	}

	fmt.Println()
	fmt.Println("Logical-qubit budget view: physical qubits needed for 32 logical qubits")
	fmt.Println("(paper §VI-E: [[150,32,6,6]] needs 424 physical vs 1568 for 32 planar d=5 patches)")
	for _, e := range catalog.Standard() {
		if e.Code.K < 8 {
			continue
		}
		shared, err := fpn.Build(e.Code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
		if err != nil {
			continue
		}
		blocks := (32 + e.Code.K - 1) / e.Code.K
		phys := blocks * shared.NumQubits()
		fmt.Printf("  %-16s %2d block(s) × %4d qubits = %5d physical (planar d=5: %d)\n",
			e.Code.Name, blocks, shared.NumQubits(), phys, 32*49)
	}
}
