// Quickstart: the full Flag-Proxy Network pipeline on the [[30,8,3,3]]
// hyperbolic surface code — construct the code from a group-theoretic
// tiling, build the degree-4 FPN, schedule syndrome extraction, run a
// noisy memory experiment and decode it with the flagged MWPM decoder.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/fpn/flagproxy/internal/seedmix"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func main() {
	// 1. The {5,5} tiling: A5 is a (2,5,5) group, so left multiplication
	// by a (2,5,5) generating pair acts on its 60 elements as the darts
	// of a closed {5,5} map — 30 edges, 12 pentagons, 12 vertices,
	// genus 4.
	g, err := group.Alt(5)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seedmix.Derive(3, seedmix.String("quickstart-code-search"))))
	var code *css.Code
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err = surface.FromMap(m, "hysc-5_5-30", "hyperbolic-surface {5,5}")
		if err == nil {
			break
		}
	}
	if code == nil {
		log.Fatal("no {5,5} map found")
	}
	fmt.Printf("code: %s %s, ideal rate %.3f\n", code.Name, code.Params(), code.IdealRate())

	// 2. Flag-Proxy Network: flags protect every data pair, shared flags
	// cut the overhead, proxies bound the degree at 4.
	net, err := fpn.Build(code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		log.Fatal(err)
	}
	counts := net.CountByType()
	fmt.Printf("FPN: N=%d (%d data, %d parity, %d flag, %d proxy), Reff=%.3f, mean degree %.2f\n",
		net.NumQubits(), counts[fpn.Data], counts[fpn.Parity], counts[fpn.Flag], counts[fpn.Proxy],
		net.EffectiveRate(), net.MeanDegree())
	fmt.Printf("     vs d=5 planar surface code Reff = %.4f → %.1fx more efficient\n",
		1.0/49, net.EffectiveRate()*49)

	// 3. Syndrome-extraction schedule (greedy Algorithm 1).
	s, err := schedule.Greedy(net)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d phases, %d CNOT layers, round latency %.0f ns\n",
		plan.Phases, plan.CXLayers, plan.LatencyNs)

	// 4. Memory experiment with the flagged MWPM decoder.
	for _, p := range []float64{5e-4, 1e-3} {
		res, err := experiment.Run(experiment.Config{
			Code:    code,
			Arch:    fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
			Basis:   css.Z,
			P:       p,
			Shots:   2000,
			Seed:    42,
			Decoder: experiment.FlaggedMWPM,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("memory-Z p=%.0e: BER=%.4f BER_norm=%.5f (%d/%d shots)\n",
			p, res.BER, res.BERNorm, res.LogicalErrors, res.Shots)
	}
}
