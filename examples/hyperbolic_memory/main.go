// Hyperbolic memory: sweeps the physical error rate for the
// [[30,8,3,3]] hyperbolic surface code and prints the BER curve for the
// flagged MWPM decoder against the plain (flag-ignoring) baseline —
// the experiment behind the paper's Figure 19.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
)

func main() {
	shots := flag.Int("shots", 3000, "shots per point")
	flag.Parse()

	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == "surface" && e.Code.N == 30 {
			code = e.Code
			break
		}
	}
	if code == nil {
		log.Fatal("no [[30,8,3,3]] code in catalogue")
	}
	arch := fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}
	fmt.Printf("%s on its degree-4 FPN, memory-Z, %d shots/point\n", code.Params(), *shots)
	fmt.Printf("%-10s %-14s %-14s %-8s\n", "p", "flagged BER", "plain BER", "ratio")
	for _, p := range []float64{2e-4, 5e-4, 1e-3, 2e-3, 4e-3} {
		var ber [2]float64
		for i, dec := range []experiment.DecoderKind{experiment.FlaggedMWPM, experiment.PlainMWPM} {
			res, err := experiment.Run(experiment.Config{
				Code: code, Arch: arch, Basis: css.Z,
				P: p, Shots: *shots, Seed: 7, Decoder: dec,
			})
			if err != nil {
				log.Fatal(err)
			}
			ber[i] = res.BER
		}
		ratio := 0.0
		if ber[0] > 0 {
			ratio = ber[1] / ber[0]
		}
		fmt.Printf("%-10.1e %-14.5f %-14.5f %-8.2f\n", p, ber[0], ber[1], ratio)
	}
	fmt.Println()
	fmt.Println("The flagged decoder recovers the full code distance (deff = 3), so its")
	fmt.Println("BER falls quadratically with p while the plain decoder's falls linearly")
	fmt.Println("(deff = 2) — the gap widens as p decreases, as in the paper's Figure 19.")
}
