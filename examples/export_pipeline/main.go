// Export pipeline: the interop workflow for downstream users — freeze
// the generated code catalogue to JSON (with the dart permutations that
// reconstruct every tiling), verify it round-trips, emit a Stim-format
// memory-experiment circuit for cross-validation against the simulator
// the paper used, and certify the biplanarity of an FPN coupling graph.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
)

func main() {
	dir, err := os.MkdirTemp("", "flagproxy-export")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("export directory: %s\n", dir)

	// 1. Freeze the catalogue.
	entries := catalog.Standard()
	catPath := filepath.Join(dir, "catalog.json")
	f, err := os.Create(catPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := catalog.WriteJSON(f, entries); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d codes to %s\n", len(entries), catPath)

	// 2. Round-trip: every code rebuilds identically from its darts.
	in, err := os.Open(catPath)
	if err != nil {
		log.Fatal(err)
	}
	back, err := catalog.ReadJSON(in)
	_ = in.Close() // read side; ReadJSON already consumed the data
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-trip verified: %d codes rebuilt from dart permutations\n", len(back))

	// 3. Stim export of the [[30,8,3,3]] memory experiment.
	var code *css.Code
	for _, e := range back {
		if e.Family == "surface" && e.Code.N == 30 {
			code = e.Code
		}
	}
	if code == nil {
		log.Fatal("catalogue is missing the [[30,8,3,3]] code")
	}
	arch := fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}
	net, err := fpn.Build(code, arch)
	if err != nil {
		log.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		log.Fatal(err)
	}
	c, err := circuit.BuildMemory(circuit.MemorySpec{
		Plan: plan, Basis: css.Z, Rounds: 3, Noise: &noise.Model{P: 1e-3},
	})
	if err != nil {
		log.Fatal(err)
	}
	stimPath := filepath.Join(dir, "hysc-5_5-30.memory_z.stim")
	sf, err := os.Create(stimPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.WriteStim(sf); err != nil {
		log.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote Stim circuit (%d ops, %d detectors, %d observables) to %s\n",
		len(c.Ops), len(c.Detectors), len(c.Observables), stimPath)

	// 4. Biplanarity certificate (the paper's appendix claim).
	layers, ok := net.BiplanarDecomposition()
	if !ok {
		fmt.Println("biplanar decomposition: heuristic failed (graph may still be biplanar)")
		return
	}
	fmt.Printf("biplanar certificate: %d + %d edges across two planar layers\n",
		len(layers[0]), len(layers[1]))
}
