package seedmix

import "testing"

func TestMix64Avalanche(t *testing.T) {
	// Sequential inputs must map to well-separated outputs.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("collision at input %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) == 0 {
		t.Fatal("Mix64(0) must not be the fixed point 0")
	}
}

func TestDeriveOrderAndArity(t *testing.T) {
	base := int64(42)
	if Derive(base) == base {
		t.Fatal("Derive with no words must still mix the base seed")
	}
	if Derive(base, 1, 2) == Derive(base, 2, 1) {
		t.Fatal("Derive must be order-sensitive")
	}
	if Derive(base, 1) == Derive(base, 1, 0) {
		t.Fatal("Derive must be arity-sensitive")
	}
	if Derive(base, 7) != Derive(base, 7) {
		t.Fatal("Derive must be deterministic")
	}
	if Derive(base, 7) == Derive(base+1, 7) {
		t.Fatal("Derive must depend on the base seed")
	}
}

func TestBlockSeedsDistinct(t *testing.T) {
	// The shard engine's usage pattern: one seed per 64-shot block.
	seen := map[int64]int{}
	for b := 0; b < 1_000_000; b++ {
		s := Derive(1, uint64(b))
		if prev, dup := seen[s]; dup {
			t.Fatalf("block seed collision: blocks %d and %d", prev, b)
		}
		seen[s] = b
	}
}

func TestStringAndFloatWords(t *testing.T) {
	if String("fig17") == String("fig18") {
		t.Fatal("String words must distinguish figure tags")
	}
	if Float(5e-4) == Float(1e-3) {
		t.Fatal("Float words must distinguish error rates")
	}
}
