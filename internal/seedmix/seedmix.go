// Package seedmix derives statistically independent RNG seeds from a
// single base seed. The shard engine in package experiment seeds every
// 64-shot sampling block with Derive(base, blockIndex), and the sweep
// drivers derive one seed per (figure, decoder, basis, p) point, so no
// two shards or sweep points ever share an RNG stream while the whole
// run stays reproducible from one -seed flag.
package seedmix

import "math"

// Mix64 is the splitmix64 finalizer: a bijective avalanche mixer whose
// outputs pass BigCrush even on sequential inputs, which is exactly the
// property block-indexed seeding needs.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Derive folds the given words into the base seed one mixing round at a
// time. Absorbing each word through Mix64 (rather than XORing them all
// first) keeps e.g. (a, b) and (b, a) distinct.
func Derive(base int64, words ...uint64) int64 {
	h := Mix64(uint64(base))
	for _, w := range words {
		h = Mix64(h ^ w)
	}
	return int64(h)
}

// String hashes s with FNV-1a for use as a Derive word.
func String(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Float exposes a float64 (e.g. a physical error rate) as a Derive word.
func Float(f float64) uint64 { return math.Float64bits(f) }
