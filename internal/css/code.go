// Package css represents CSS stabilizer codes: parity checks over data
// qubits, logical operators, and code parameters [[n, k, dX, dZ]]. It is
// the common currency between the code constructions (surface, color),
// the Flag-Proxy Network builder, the scheduler and the simulator.
package css

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/gf2"
)

// Basis of a parity check.
type Basis byte

// Check bases.
const (
	X Basis = 'X'
	Z Basis = 'Z'
)

// Check is a single stabilizer generator.
type Check struct {
	Basis   Basis
	Support []int // data-qubit indices, distinct
	Color   int   // plaquette color for color codes; -1 otherwise
}

// Code is a CSS code with computed logical structure.
type Code struct {
	Name   string
	Family string // e.g. "hyperbolic-surface {4,5}", "planar-surface"
	N      int
	Checks []Check

	K        int
	LogicalX []gf2.Vec // k independent X logical representatives
	LogicalZ []gf2.Vec // k independent Z logical representatives

	// Distances; 0 means unknown. The Exact flags record whether the
	// value is certified or an upper bound from sampling.
	DX, DZ           int
	DXExact, DZExact bool
}

// New validates the checks (distinct supports, X/Z commutation) and
// computes K and logical operator bases.
func New(name, family string, n int, checks []Check) (*Code, error) {
	if n <= 0 {
		return nil, fmt.Errorf("css: non-positive qubit count %d", n)
	}
	for ci, c := range checks {
		if c.Basis != X && c.Basis != Z {
			return nil, fmt.Errorf("css: check %d has invalid basis %q", ci, c.Basis)
		}
		seen := map[int]bool{}
		for _, q := range c.Support {
			if q < 0 || q >= n {
				return nil, fmt.Errorf("css: check %d references qubit %d out of range", ci, q)
			}
			if seen[q] {
				return nil, fmt.Errorf("css: check %d repeats qubit %d", ci, q)
			}
			seen[q] = true
		}
		if len(c.Support) == 0 {
			return nil, fmt.Errorf("css: check %d is empty", ci)
		}
	}
	code := &Code{Name: name, Family: family, N: n, Checks: checks}
	hx := code.CheckMatrix(X)
	hz := code.CheckMatrix(Z)
	// Commutation: HX * HZ^T = 0.
	for i := 0; i < hx.Rows(); i++ {
		for j := 0; j < hz.Rows(); j++ {
			if hx.Row(i).Dot(hz.Row(j)) {
				return nil, fmt.Errorf("css: X check %d anticommutes with Z check %d", i, j)
			}
		}
	}
	rx := gf2.Rank(hx)
	rz := gf2.Rank(hz)
	code.K = n - rx - rz
	if code.K < 0 {
		return nil, fmt.Errorf("css: negative k (n=%d, rankX=%d, rankZ=%d)", n, rx, rz)
	}
	code.LogicalZ = logicalBasis(hx, hz, code.K) // Z logicals: ker(HX) / row(HZ)
	code.LogicalX = logicalBasis(hz, hx, code.K) // X logicals: ker(HZ) / row(HX)
	return code, nil
}

// CheckMatrix returns the parity-check matrix of the given basis, one row
// per check of that basis in order.
func (c *Code) CheckMatrix(b Basis) *gf2.Matrix {
	var sups [][]int
	for _, ch := range c.Checks {
		if ch.Basis == b {
			sups = append(sups, ch.Support)
		}
	}
	return gf2.MatrixFromSupports(len(sups), c.N, sups)
}

// ChecksOf returns the indices (into Checks) of checks with basis b.
func (c *Code) ChecksOf(b Basis) []int {
	var out []int
	for i, ch := range c.Checks {
		if ch.Basis == b {
			out = append(out, i)
		}
	}
	return out
}

// logicalBasis returns k independent representatives of
// ker(hKer) / rowspace(hMod).
func logicalBasis(hKer, hMod *gf2.Matrix, k int) []gf2.Vec {
	ns := gf2.NullspaceBasis(hKer)
	mod := gf2.RowReduce(hMod)
	var logicals []gf2.Vec
	// Maintain an echelon of rowspace(hMod) + chosen logicals to test
	// independence modulo the stabilizer.
	span := hMod.Clone()
	for _, v := range ns {
		if mod.InRowSpace(v) {
			continue
		}
		// Is v independent of span (stabilizer + already chosen)?
		spanEch := gf2.RowReduce(span)
		if spanEch.InRowSpace(v) {
			continue
		}
		logicals = append(logicals, v)
		// Rebuild span with the new row appended.
		rows := make([]gf2.Vec, 0, span.Rows()+1)
		for i := 0; i < span.Rows(); i++ {
			rows = append(rows, span.Row(i))
		}
		rows = append(rows, v)
		span = gf2.MatrixFromRows(rows, hMod.Cols())
		if len(logicals) == k {
			break
		}
	}
	return logicals
}

// Weights returns the sorted distinct check weights per basis.
func (c *Code) Weights(b Basis) []int {
	set := map[int]bool{}
	for _, ch := range c.Checks {
		if ch.Basis == b {
			set[len(ch.Support)] = true
		}
	}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// MaxWeight returns the maximum check weight of basis b (0 if none).
func (c *Code) MaxWeight(b Basis) int {
	w := 0
	for _, ch := range c.Checks {
		if ch.Basis == b && len(ch.Support) > w {
			w = len(ch.Support)
		}
	}
	return w
}

// Params formats the code parameters as [[n,k,dX,dZ]].
func (c *Code) Params() string {
	if c.DX > 0 && c.DZ > 0 {
		if c.DX == c.DZ {
			return fmt.Sprintf("[[%d,%d,%d]]", c.N, c.K, c.DX)
		}
		return fmt.Sprintf("[[%d,%d,%d,%d]]", c.N, c.K, c.DX, c.DZ)
	}
	return fmt.Sprintf("[[%d,%d,?]]", c.N, c.K)
}

// IdealRate returns k/n.
func (c *Code) IdealRate() float64 { return float64(c.K) / float64(c.N) }
