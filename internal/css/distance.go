package css

import (
	"math/rand"

	"github.com/fpn/flagproxy/internal/gf2"
)

// DistanceResult is the outcome of a distance computation. D is an upper
// bound on the true distance when Exact is false (0 means no logical
// found); LowerBound is the largest weight w such that no logical of
// weight ≤ w exists (certified by exhaustive search).
type DistanceResult struct {
	D          int
	Exact      bool
	LowerBound int
}

// MinLogicalExact searches exhaustively for the minimum-weight vector in
// ker(hKer) \ rowspace(hMod) of weight at most wmax, subject to a budget
// of at most maxCombos enumeration steps. If the weight-w layer completes
// without exceeding the budget and finds a logical, the result is exact.
func MinLogicalExact(hKer, hMod *gf2.Matrix, wmax int, maxCombos int64) DistanceResult {
	n := hKer.Cols()
	mod := gf2.RowReduce(hMod)
	kerT := hKer.Transpose() // row q = syndrome of single qubit q
	var budget int64
	support := make([]int, 0, wmax)
	syn := gf2.NewVec(hKer.Rows())
	found := false

	// search returns true to abort the whole enumeration (found a logical
	// at this weight, or budget exhausted).
	var search func(start, remaining int) bool
	search = func(start, remaining int) bool {
		if budget++; budget > maxCombos {
			return true
		}
		if remaining == 0 {
			if syn.IsZero() {
				v := gf2.VecFromSupport(n, support)
				if !mod.InRowSpace(v) {
					found = true
					return true
				}
			}
			return false
		}
		for q := start; q <= n-remaining; q++ {
			syn.Xor(kerT.Row(q))
			support = append(support, q)
			stop := search(q+1, remaining-1)
			support = support[:len(support)-1]
			syn.Xor(kerT.Row(q))
			if stop {
				return true
			}
		}
		return false
	}

	res := DistanceResult{}
	for w := 1; w <= wmax; w++ {
		found = false
		stopped := search(0, w)
		if found {
			return DistanceResult{D: w, Exact: true, LowerBound: w - 1}
		}
		if stopped {
			// Budget exhausted mid-layer: weight w not fully excluded.
			res.LowerBound = w - 1
			return res
		}
		res.LowerBound = w
	}
	return res
}

// MinLogicalSample estimates an upper bound on the minimum logical weight
// by information-set sampling: random column permutations of a basis of
// ker(hKer) are Gaussian-reduced, and low-weight rows (and pairwise sums)
// outside rowspace(hMod) are recorded.
func MinLogicalSample(hKer, hMod *gf2.Matrix, rounds int, rng *rand.Rand) DistanceResult {
	n := hKer.Cols()
	ns := gf2.NullspaceBasis(hKer)
	if len(ns) == 0 {
		return DistanceResult{}
	}
	mod := gf2.RowReduce(hMod)
	best := 0
	consider := func(v gf2.Vec) {
		w := v.Weight()
		if w == 0 || (best != 0 && w >= best) {
			return
		}
		if !mod.InRowSpace(v) {
			best = w
		}
	}
	for _, v := range ns {
		consider(v)
	}
	basis := make([]gf2.Vec, len(ns))
	for round := 0; round < rounds; round++ {
		perm := rng.Perm(n)
		for i, v := range ns {
			basis[i] = permuteVec(v, perm)
		}
		m := gf2.MatrixFromRows(basis, n)
		e := gf2.RowReduce(m)
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		reduced := make([]gf2.Vec, 0, e.Rank)
		for i := 0; i < e.Rank; i++ {
			orig := permuteVec(e.M.Row(i), inv)
			reduced = append(reduced, orig)
			consider(orig)
		}
		// Pairwise sums of systematic rows often reveal lower weights.
		for i := 0; i < len(reduced); i++ {
			for j := i + 1; j < len(reduced); j++ {
				v := reduced[i].Clone()
				v.Xor(reduced[j])
				consider(v)
			}
		}
	}
	return DistanceResult{D: best, Exact: false}
}

// permuteVec returns w with w[perm[i]] = v[i].
func permuteVec(v gf2.Vec, perm []int) gf2.Vec {
	w := gf2.NewVec(v.Len())
	for _, i := range v.Support() {
		w.Set(perm[i], true)
	}
	return w
}

// minLogical combines exhaustive search and sampling: exact if either the
// exhaustive layer found the minimum, or the sampled upper bound meets
// the certified lower bound.
func minLogical(hKer, hMod *gf2.Matrix, exactWeight int, budget int64, sampleRounds int, rng *rand.Rand) DistanceResult {
	ex := MinLogicalExact(hKer, hMod, exactWeight, budget)
	if ex.Exact {
		return ex
	}
	s := MinLogicalSample(hKer, hMod, sampleRounds, rng)
	if s.D != 0 && s.D == ex.LowerBound+1 {
		return DistanceResult{D: s.D, Exact: true, LowerBound: ex.LowerBound}
	}
	s.LowerBound = ex.LowerBound
	return s
}

// ComputeDistances fills in DX/DZ using exhaustive search up to
// exactWeight (with the given enumeration budget) combined with
// information-set sampling bounds.
func (c *Code) ComputeDistances(exactWeight int, budget int64, sampleRounds int, rng *rand.Rand) {
	hx := c.CheckMatrix(X)
	hz := c.CheckMatrix(Z)
	// dZ: min weight of a Z logical = vector in ker(HX) \ row(HZ).
	dz := minLogical(hx, hz, exactWeight, budget, sampleRounds, rng)
	c.DZ, c.DZExact = dz.D, dz.Exact
	dx := minLogical(hz, hx, exactWeight, budget, sampleRounds, rng)
	c.DX, c.DXExact = dx.D, dx.Exact
}
