package css

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/gf2"
)

// steane returns the [[7,1,3]] Steane code.
func steane(t *testing.T) *Code {
	t.Helper()
	sups := [][]int{{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6}}
	var checks []Check
	for _, s := range sups {
		checks = append(checks, Check{Basis: X, Support: s, Color: -1})
	}
	for _, s := range sups {
		checks = append(checks, Check{Basis: Z, Support: s, Color: -1})
	}
	c, err := New("steane", "test", 7, checks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSteaneParameters(t *testing.T) {
	c := steane(t)
	if c.K != 1 {
		t.Fatalf("k = %d, want 1", c.K)
	}
	if len(c.LogicalX) != 1 || len(c.LogicalZ) != 1 {
		t.Fatalf("logical counts %d/%d", len(c.LogicalX), len(c.LogicalZ))
	}
	// Logical Z commutes with X checks and is not a Z stabilizer.
	hx := c.CheckMatrix(X)
	if !hx.MulVec(c.LogicalZ[0]).IsZero() {
		t.Fatal("logical Z anticommutes with an X check")
	}
	hz := gf2.RowReduce(c.CheckMatrix(Z))
	if hz.InRowSpace(c.LogicalZ[0]) {
		t.Fatal("logical Z is a stabilizer")
	}
}

func TestSteaneDistance(t *testing.T) {
	c := steane(t)
	rng := rand.New(rand.NewSource(1))
	c.ComputeDistances(7, 1_000_000, 10, rng)
	if c.DX != 3 || c.DZ != 3 || !c.DXExact || !c.DZExact {
		t.Fatalf("distances %d/%d exact=%v/%v; want 3/3 exact", c.DX, c.DZ, c.DXExact, c.DZExact)
	}
	if c.Params() != "[[7,1,3]]" {
		t.Fatalf("Params = %s", c.Params())
	}
}

func TestNewRejectsAnticommuting(t *testing.T) {
	checks := []Check{
		{Basis: X, Support: []int{0, 1}, Color: -1},
		{Basis: Z, Support: []int{1, 2}, Color: -1},
	}
	if _, err := New("bad", "test", 3, checks); err == nil {
		t.Fatal("expected commutation error")
	}
}

func TestNewRejectsRepeatedSupport(t *testing.T) {
	checks := []Check{{Basis: X, Support: []int{0, 0}, Color: -1}}
	if _, err := New("bad", "test", 2, checks); err == nil {
		t.Fatal("expected repeated-support error")
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	checks := []Check{{Basis: X, Support: []int{5}, Color: -1}}
	if _, err := New("bad", "test", 3, checks); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestRepetitionCodeAsCSS(t *testing.T) {
	// 3-qubit repetition: Z checks only; k = 1. The logical X is XXX
	// (weight 3) while the logical Z is single-qubit (weight 1).
	checks := []Check{
		{Basis: Z, Support: []int{0, 1}, Color: -1},
		{Basis: Z, Support: []int{1, 2}, Color: -1},
	}
	c, err := New("rep3", "test", 3, checks)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 1 {
		t.Fatalf("k = %d, want 1", c.K)
	}
	rng := rand.New(rand.NewSource(2))
	c.ComputeDistances(3, 1000, 5, rng)
	if c.DZ != 1 || c.DX != 3 {
		t.Fatalf("dZ=%d dX=%d, want 1,3", c.DZ, c.DX)
	}
}

func TestWeightsAndMaxWeight(t *testing.T) {
	c := steane(t)
	if w := c.Weights(X); len(w) != 1 || w[0] != 4 {
		t.Fatalf("Weights(X) = %v", w)
	}
	if c.MaxWeight(Z) != 4 {
		t.Fatalf("MaxWeight(Z) = %d", c.MaxWeight(Z))
	}
}

func TestLogicalsAnticommutePairwiseExistence(t *testing.T) {
	// For every X logical there must exist a Z logical it anticommutes
	// with (they generate a non-degenerate symplectic pairing space).
	c := steane(t)
	for _, lx := range c.LogicalX {
		any := false
		for _, lz := range c.LogicalZ {
			if lx.Dot(lz) {
				any = true
			}
		}
		if !any {
			t.Fatal("X logical commutes with all Z logicals")
		}
	}
}

func TestMinLogicalExactBudgetExhaustion(t *testing.T) {
	c := steane(t)
	res := MinLogicalExact(c.CheckMatrix(X), c.CheckMatrix(Z), 7, 3)
	if res.Exact {
		t.Fatal("tiny budget should not produce exact result")
	}
}

func TestMinLogicalSampleFindsBound(t *testing.T) {
	c := steane(t)
	rng := rand.New(rand.NewSource(3))
	res := MinLogicalSample(c.CheckMatrix(X), c.CheckMatrix(Z), 20, rng)
	if res.D == 0 || res.D < 3 {
		t.Fatalf("sampled bound %d invalid (true distance 3)", res.D)
	}
}

func TestChecksOf(t *testing.T) {
	c := steane(t)
	if len(c.ChecksOf(X)) != 3 || len(c.ChecksOf(Z)) != 3 {
		t.Fatal("ChecksOf counts wrong")
	}
}
