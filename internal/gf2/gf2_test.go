package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := NewVec(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) {
		t.Fatal("set bits not readable")
	}
	if v.Get(1) || v.Get(63) || v.Get(128) {
		t.Fatal("unset bits read as set")
	}
	if v.Weight() != 3 {
		t.Fatalf("Weight = %d, want 3", v.Weight())
	}
	v.Flip(64)
	if v.Get(64) || v.Weight() != 2 {
		t.Fatal("Flip failed")
	}
	sup := v.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 129 {
		t.Fatalf("Support = %v", sup)
	}
}

func TestVecFromSupportAndInts(t *testing.T) {
	a := VecFromSupport(10, []int{1, 3, 7})
	b := VecFromInts([]int{0, 1, 0, 1, 0, 0, 0, 1, 0, 0})
	if !a.Equal(b) {
		t.Fatalf("a=%v b=%v", a, b)
	}
}

func TestVecXorDot(t *testing.T) {
	a := VecFromSupport(100, []int{2, 50, 99})
	b := VecFromSupport(100, []int{2, 51, 99})
	if !a.Dot(b) == false {
		// overlap {2,99}: even → dot = 0
		t.Fatal("Dot parity wrong")
	}
	c := a.Clone()
	c.Xor(b)
	want := VecFromSupport(100, []int{50, 51})
	if !c.Equal(want) {
		t.Fatalf("Xor = %v, want %v", c, want)
	}
	if a.Dot(VecFromSupport(100, []int{50})) != true {
		t.Fatal("odd overlap should give 1")
	}
}

func TestVecPanicsOnBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	v := NewVec(5)
	v.Get(5)
}

func TestVecZeroLength(t *testing.T) {
	v := NewVec(0)
	if !v.IsZero() || v.Weight() != 0 || len(v.Support()) != 0 {
		t.Fatal("zero-length vector misbehaves")
	}
}

func TestMatrixMulVec(t *testing.T) {
	// [[1,1,0],[0,1,1]] * [1,0,1] = [1,1]
	m := MatrixFromSupports(2, 3, [][]int{{0, 1}, {1, 2}})
	x := VecFromSupport(3, []int{0, 2})
	y := m.MulVec(x)
	if !y.Equal(VecFromSupport(2, []int{0, 1})) {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestTranspose(t *testing.T) {
	m := MatrixFromSupports(2, 3, [][]int{{0, 2}, {1}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("Transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	if !tr.Get(0, 0) || !tr.Get(2, 0) || !tr.Get(1, 1) || tr.Get(0, 1) {
		t.Fatal("Transpose entries wrong")
	}
}

func TestRankIdentity(t *testing.T) {
	n := 20
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	if Rank(m) != n {
		t.Fatalf("Rank(I) = %d, want %d", Rank(m), n)
	}
}

func TestRankDependentRows(t *testing.T) {
	// row2 = row0 + row1
	m := MatrixFromSupports(3, 4, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if r := Rank(m); r != 2 {
		t.Fatalf("Rank = %d, want 2", r)
	}
}

func TestSolveConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Intn(2) == 1)
			}
		}
		// Construct a consistent rhs from a random x.
		x := NewVec(cols)
		for j := 0; j < cols; j++ {
			x.Set(j, rng.Intn(2) == 1)
		}
		b := m.MulVec(x)
		sol, ok := Solve(m, b)
		if !ok {
			t.Fatalf("trial %d: consistent system reported unsolvable", trial)
		}
		if !m.MulVec(sol).Equal(b) {
			t.Fatalf("trial %d: solution does not satisfy system", trial)
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	// x0 = 0 and x0 = 1 simultaneously.
	m := MatrixFromSupports(2, 1, [][]int{{0}, {0}})
	b := VecFromInts([]int{0, 1})
	if _, ok := Solve(m, b); ok {
		t.Fatal("inconsistent system reported solvable")
	}
}

func TestNullspaceBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(14)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Intn(2) == 1)
			}
		}
		basis := NullspaceBasis(m)
		if len(basis) != cols-Rank(m) {
			t.Fatalf("nullity = %d, want %d", len(basis), cols-Rank(m))
		}
		for _, v := range basis {
			if !m.MulVec(v).IsZero() {
				t.Fatal("basis vector not in nullspace")
			}
		}
		// Basis must be independent.
		if len(basis) > 0 {
			bm := MatrixFromRows(basis, cols)
			if Rank(bm) != len(basis) {
				t.Fatal("nullspace basis dependent")
			}
		}
	}
}

func TestInRowSpaceAndReduce(t *testing.T) {
	m := MatrixFromSupports(2, 4, [][]int{{0, 1}, {2, 3}})
	e := RowReduce(m)
	if !e.InRowSpace(VecFromSupport(4, []int{0, 1, 2, 3})) {
		t.Fatal("sum of rows should be in row space")
	}
	if e.InRowSpace(VecFromSupport(4, []int{0})) {
		t.Fatal("e0 should not be in row space")
	}
	red := e.Reduce(VecFromSupport(4, []int{0, 1}))
	if !red.IsZero() {
		t.Fatalf("Reduce of row gives %v, want zero", red)
	}
}

// Property: rank is invariant under transpose.
func TestPropertyRankTransposeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Intn(2) == 1)
			}
		}
		return Rank(m) == Rank(m.Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor is an involution (v ^ u ^ u == v).
func TestPropertyXorInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		v, u := NewVec(n), NewVec(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
			u.Set(i, rng.Intn(2) == 1)
		}
		w := v.Clone()
		w.Xor(u)
		w.Xor(u)
		return w.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every vector reduced modulo the row space lands back in the
// same coset (difference in row space).
func TestPropertyReduceCoset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(12)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Intn(2) == 1)
			}
		}
		e := RowReduce(m)
		v := NewVec(cols)
		for j := 0; j < cols; j++ {
			v.Set(j, rng.Intn(2) == 1)
		}
		r := e.Reduce(v)
		diff := r.Clone()
		diff.Xor(v)
		return e.InRowSpace(diff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRank256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatrix(256, 256)
	for i := 0; i < 256; i++ {
		for j := 0; j < 256; j++ {
			m.Set(i, j, rng.Intn(2) == 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rank(m)
	}
}
