package gf2_test

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/gf2"
)

func ExampleSolve() {
	// The Steane code's X-check matrix applied to a single-qubit error:
	// solving H x = s recovers a consistent error pattern.
	h := gf2.MatrixFromSupports(3, 7, [][]int{
		{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6},
	})
	err := gf2.VecFromSupport(7, []int{2})
	s := h.MulVec(err)
	x, ok := gf2.Solve(h, s)
	fmt.Println(ok, h.MulVec(x).Equal(s))
	// Output: true true
}

func ExampleNullspaceBasis() {
	// ker of a 2x4 parity check has dimension 2.
	h := gf2.MatrixFromSupports(2, 4, [][]int{{0, 1}, {2, 3}})
	basis := gf2.NullspaceBasis(h)
	fmt.Println(len(basis))
	// Output: 2
}
