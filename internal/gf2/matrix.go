// Package gf2 provides dense linear algebra over GF(2) on bit-packed
// matrices. It is the workhorse behind logical-operator computation,
// homology tests on tilings, and the color-code lifting procedure.
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a bit-packed vector over GF(2).
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns the zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// VecFromInts builds a vector from 0/1 entries.
func VecFromInts(bits []int) Vec {
	v := NewVec(len(bits))
	for i, b := range bits {
		if b != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// VecFromSupport builds a length-n vector with ones at the given indices.
func VecFromSupport(n int, support []int) Vec {
	v := NewVec(n)
	for _, i := range support {
		v.Set(i, true)
	}
	return v
}

// Len returns the vector length.
func (v Vec) Len() int { return v.n }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set assigns bit i.
func (v Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip toggles bit i.
func (v Vec) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Xor adds (XORs) u into v in place. Lengths must match.
func (v Vec) Xor(u Vec) {
	if v.n != u.n {
		panic("gf2: length mismatch in Xor")
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// Dot returns the GF(2) inner product of v and u.
func (v Vec) Dot(u Vec) bool {
	if v.n != u.n {
		panic("gf2: length mismatch in Dot")
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & u.words[i]
	}
	return bits.OnesCount64(acc)%2 == 1
}

// Weight returns the Hamming weight.
func (v Vec) Weight() int {
	w := 0
	for _, word := range v.words {
		w += bits.OnesCount64(word)
	}
	return w
}

// IsZero reports whether all bits are zero.
func (v Vec) IsZero() bool {
	for _, word := range v.words {
		if word != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Equal reports element-wise equality.
func (v Vec) Equal(u Vec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Support returns the sorted indices of set bits.
func (v Vec) Support() []int {
	s := make([]int, 0, v.Weight())
	for wi, word := range v.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			s = append(s, wi*wordBits+b)
			word &= word - 1
		}
	}
	return s
}

// String renders the vector as a 0/1 string.
func (v Vec) String() string {
	var sb strings.Builder
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matrix is a dense GF(2) matrix stored as bit-packed rows.
type Matrix struct {
	rows, cols int
	data       []Vec
}

// NewMatrix returns the zero rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("gf2: negative matrix dimension")
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// MatrixFromRows builds a matrix from explicit row vectors, which are
// cloned. All rows must share the same length.
func MatrixFromRows(rows []Vec, cols int) *Matrix {
	m := &Matrix{rows: len(rows), cols: cols, data: make([]Vec, len(rows))}
	for i, r := range rows {
		if r.Len() != cols {
			panic("gf2: row length mismatch")
		}
		m.data[i] = r.Clone()
	}
	return m
}

// MatrixFromSupports builds a matrix whose row i has ones at supports[i].
func MatrixFromSupports(rows, cols int, supports [][]int) *Matrix {
	if len(supports) != rows {
		panic("gf2: support count mismatch")
	}
	m := NewMatrix(rows, cols)
	for i, sup := range supports {
		for _, j := range sup {
			m.Set(i, j, true)
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Get returns entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.data[i].Get(j) }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, b bool) { m.data[i].Set(j, b) }

// Row returns row i without copying; mutating it mutates the matrix.
func (m *Matrix) Row(i int) Vec { return m.data[i] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, data: make([]Vec, m.rows)}
	for i := range m.data {
		c.data[i] = m.data[i].Clone()
	}
	return c
}

// MulVec returns m * x for a column vector x of length Cols.
func (m *Matrix) MulVec(x Vec) Vec {
	if x.Len() != m.cols {
		panic("gf2: dimension mismatch in MulVec")
	}
	y := NewVec(m.rows)
	for i := 0; i < m.rows; i++ {
		if m.data[i].Dot(x) {
			y.Set(i, true)
		}
	}
	return y
}

// Transpose returns the transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for _, j := range m.data[i].Support() {
			t.Set(j, i, true)
		}
	}
	return t
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	lines := make([]string, m.rows)
	for i := range m.data {
		lines[i] = m.data[i].String()
	}
	return strings.Join(lines, "\n")
}
