package gf2

// Echelon holds the result of Gaussian elimination over GF(2): a
// row-reduced copy of the input, the pivot column of each nonzero row,
// and the rank.
type Echelon struct {
	M      *Matrix // row-reduced (RREF) matrix
	Pivots []int   // Pivots[r] = pivot column of row r, for r < Rank
	Rank   int
}

// RowReduce computes the reduced row echelon form of m, leaving m intact.
func RowReduce(m *Matrix) *Echelon {
	r := m.Clone()
	pivots := make([]int, 0, min(r.rows, r.cols))
	row := 0
	for col := 0; col < r.cols && row < r.rows; col++ {
		// Find a pivot.
		sel := -1
		for i := row; i < r.rows; i++ {
			if r.data[i].Get(col) {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		r.data[row], r.data[sel] = r.data[sel], r.data[row]
		// Eliminate everywhere else (full reduction).
		for i := 0; i < r.rows; i++ {
			if i != row && r.data[i].Get(col) {
				r.data[i].Xor(r.data[row])
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return &Echelon{M: r, Pivots: pivots, Rank: row}
}

// Rank returns the GF(2) rank of m.
func Rank(m *Matrix) int { return RowReduce(m).Rank }

// Solve finds one solution x of M x = b, or reports none exists.
// M is the coefficient matrix (rows = equations).
func Solve(m *Matrix, b Vec) (Vec, bool) {
	if b.Len() != m.rows {
		panic("gf2: rhs length mismatch in Solve")
	}
	// Augment with b as an extra column.
	aug := NewMatrix(m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		row := aug.data[i]
		copy(row.words, m.data[i].words)
		// Clear any spill bits beyond m.cols (none: widths differ, so copy
		// word-level then re-set the b bit explicitly).
		if b.Get(i) {
			row.Set(m.cols, true)
		}
	}
	e := RowReduce(aug)
	x := NewVec(m.cols)
	for r := 0; r < e.Rank; r++ {
		p := e.Pivots[r]
		if p == m.cols {
			return Vec{}, false // inconsistent: pivot in the b column
		}
		if e.M.data[r].Get(m.cols) {
			x.Set(p, true)
		}
	}
	return x, true
}

// InRowSpace reports whether v lies in the row space of a previously
// reduced matrix. The receiver must come from RowReduce.
func (e *Echelon) InRowSpace(v Vec) bool {
	if v.Len() != e.M.cols {
		panic("gf2: length mismatch in InRowSpace")
	}
	w := v.Clone()
	for r := 0; r < e.Rank; r++ {
		if w.Get(e.Pivots[r]) {
			w.Xor(e.M.data[r])
		}
	}
	return w.IsZero()
}

// Reduce returns v reduced modulo the row space of e (the canonical coset
// representative under the pivot ordering).
func (e *Echelon) Reduce(v Vec) Vec {
	w := v.Clone()
	for r := 0; r < e.Rank; r++ {
		if w.Get(e.Pivots[r]) {
			w.Xor(e.M.data[r])
		}
	}
	return w
}

// NullspaceBasis returns a basis for {x : M x = 0}.
func NullspaceBasis(m *Matrix) []Vec {
	e := RowReduce(m)
	isPivot := make([]bool, m.cols)
	for _, p := range e.Pivots {
		isPivot[p] = true
	}
	var basis []Vec
	for col := 0; col < m.cols; col++ {
		if isPivot[col] {
			continue
		}
		// Free variable col = 1, pivots determined by back-substitution.
		v := NewVec(m.cols)
		v.Set(col, true)
		for r := 0; r < e.Rank; r++ {
			if e.M.data[r].Get(col) {
				v.Set(e.Pivots[r], true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
