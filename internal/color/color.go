// Package color builds color codes: hyperbolic color codes from 3-face-
// colorable trivalent tilings (truncated {s/2, 2r} maps) and the toric
// hexagonal (6.6.6) color code used as the Euclidean baseline. Each
// plaquette carries both an X and a Z check on the same support.
package color

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/tiling"
)

// FromTiling converts a validated color tiling into a CSS code with one X
// and one Z check per plaquette, tagged with the plaquette color.
func FromTiling(ct *tiling.ColorTiling, name, family string) (*css.Code, error) {
	if err := ct.Validate(); err != nil {
		return nil, err
	}
	var checks []css.Check
	for _, f := range ct.Faces {
		checks = append(checks, css.Check{Basis: css.X, Support: append([]int(nil), f.Qubits...), Color: f.Color})
	}
	for _, f := range ct.Faces {
		checks = append(checks, css.Check{Basis: css.Z, Support: append([]int(nil), f.Qubits...), Color: f.Color})
	}
	return css.New(name, family, ct.NQubits, checks)
}

// FromMap truncates an {s/2, 2r} base map into the {r,s}-subfamily
// hyperbolic color code.
func FromMap(m *tiling.Map, name, family string) (*css.Code, error) {
	ct, err := tiling.Truncate(m)
	if err != nil {
		return nil, err
	}
	return FromTiling(ct, name, family)
}

// HexagonalToric builds the 6.6.6 color code on an L×L torus
// ([[6L², 4, d]]), the translation-invariant counterpart used as the
// paper's "planar color code" baseline in this reproduction (closed
// boundary conditions keep the decoder machinery identical to the
// hyperbolic case). The green/blue classes are the up/down triangles of
// the underlying {3,6} torus, so the 3-coloring exists for every L ≥ 2.
func HexagonalToric(l int) (*css.Code, error) {
	m, err := tiling.TriangularTorus(l)
	if err != nil {
		return nil, err
	}
	code, err := FromMap(m, fmt.Sprintf("hex-toric-%d", l), "hexagonal-color")
	if err != nil {
		return nil, err
	}
	if code.K != 4 {
		return nil, fmt.Errorf("color: hexagonal toric L=%d has k=%d, want 4", l, code.K)
	}
	return code, nil
}
