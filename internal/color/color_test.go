package color

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/tiling"
)

func TestHexagonalToricL2(t *testing.T) {
	code, err := HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	if code.N != 24 || code.K != 4 {
		t.Fatalf("[[%d,%d]], want [[24,4]]", code.N, code.K)
	}
	rng := rand.New(rand.NewSource(1))
	code.ComputeDistances(4, 50_000_000, 30, rng)
	if !code.DZExact || code.DZ != 4 {
		t.Fatalf("dZ = %d (exact=%v), want 4", code.DZ, code.DZExact)
	}
	if code.DX != code.DZ {
		t.Fatalf("self-dual code has dX=%d dZ=%d", code.DX, code.DZ)
	}
}

func TestHexagonalToricL3(t *testing.T) {
	code, err := HexagonalToric(3)
	if err != nil {
		t.Fatal(err)
	}
	if code.N != 54 || code.K != 4 {
		t.Fatalf("[[%d,%d]], want [[54,4]]", code.N, code.K)
	}
	rng := rand.New(rand.NewSource(2))
	code.ComputeDistances(4, 5_000_000, 40, rng)
	if code.DZ < 4 {
		t.Fatalf("dZ bound %d too small", code.DZ)
	}
}

func TestColorChecksCarryColor(t *testing.T) {
	code, err := HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, ch := range code.Checks {
		if ch.Color < 0 || ch.Color > 2 {
			t.Fatalf("check has invalid color %d", ch.Color)
		}
		if ch.Basis == css.X {
			counts[ch.Color]++
		}
	}
	if counts[tiling.Red] == 0 || counts[tiling.Green] == 0 || counts[tiling.Blue] == 0 {
		t.Fatalf("missing a color class: %v", counts)
	}
}

// findHyperbolicColor searches the group menu for a (2, 2r, s/2) pair —
// base map {s/2, 2r} — and returns the first valid color code.
func findHyperbolicColor(t *testing.T, r, s, maxSub int) *css.Code {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for _, entry := range group.Menu() {
		g, err := entry.Build()
		if err != nil || g.Order() > 1000 {
			continue
		}
		pairs := group.FindRSPairs(g, 2*r, s/2, rng, 1500, 4, maxSub)
		for _, p := range pairs {
			m, err := tiling.FromGroupPair(p)
			if err != nil {
				continue
			}
			code, err := FromMap(m, "hycc-test", "hyperbolic-color")
			if err != nil {
				continue
			}
			if code.K > 0 {
				return code
			}
		}
	}
	return nil
}

func TestHyperbolicColor46(t *testing.T) {
	// {4,6}: red octagons, green/blue hexagons; base map {3,8}.
	code := findHyperbolicColor(t, 4, 6, 400)
	if code == nil {
		t.Fatal("no {4,6} hyperbolic color code found")
	}
	if code.K <= 4 {
		t.Fatalf("k = %d; hyperbolic code should beat toric k=4", code.K)
	}
	// Self-dual: X and Z check matrices identical.
	hx, hz := code.CheckMatrix(css.X), code.CheckMatrix(css.Z)
	if hx.Rows() != hz.Rows() {
		t.Fatal("X/Z plaquette counts differ")
	}
	t.Logf("found %s with n=%d k=%d", code.Name, code.N, code.K)
}

func TestFromTilingRejectsInvalid(t *testing.T) {
	bad := &tiling.ColorTiling{NQubits: 4, Faces: []tiling.ColorFace{
		{Color: tiling.Red, Qubits: []int{0, 1, 2, 3}},
	}}
	if _, err := FromTiling(bad, "bad", "test"); err == nil {
		t.Fatal("expected validation failure (missing colors)")
	}
}
