// BlockRunner decodes arbitrary 64-shot block ranges of one configured
// run through exactly the production simulate→decode→count stack. It is
// the worker-side seam of the distributed sweep fabric
// (internal/fabric): a coordinator hands out (firstBlock, blockCount)
// shard leases and any worker holding the same Config re-derives the
// same per-block logical-error counts, because block RNG streams depend
// only on (circuit, base seed, block index). The counts it returns feed
// a Frontier, which is the same commit/early-stop core a single-machine
// run uses — so a distributed sweep's result is bit-identical by
// construction, not by coincidence.
package experiment

import (
	"context"
	"fmt"
	"runtime/debug"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/sim"
)

// Validate reports whether cfg is a well-formed experiment
// configuration, applying the same checks RunContext would. The
// distributed coordinator calls it to fail fast on a bad sweep point
// before any worker leases a shard.
func (cfg Config) Validate() error { return validate(cfg) }

// BlockRunner evaluates per-block logical-error counts for one
// (pipeline, Config) pair. It is safe for concurrent CountBlocks calls:
// the decoder pool hands each call a private scratch and each call owns
// its sampler.
type BlockRunner struct {
	cfg   Config
	c     *circuit.Circuit
	pool  *DecoderPool
	total int
}

// NewBlockRunner builds the p-dependent tail of the pipeline — circuit,
// detector error model, decoder — once, for decoding any block range of
// cfg. The Resume, Workers, ShardShots, Fallback and DecodeTimeout
// scheduling knobs are ignored: shard placement and retry policy belong
// to the caller (the fabric coordinator), and per-block counts are
// deterministic regardless of them.
func (pl *Pipeline) NewBlockRunner(cfg Config) (*BlockRunner, error) {
	cfg, c, dec, _, err := pl.buildTail(cfg)
	if err != nil {
		return nil, err
	}
	return &BlockRunner{
		cfg:   cfg,
		c:     c,
		pool:  NewDecoderPool(dec),
		total: (cfg.Shots + blockShots - 1) / blockShots,
	}, nil
}

// TotalBlocks reports the run's total 64-shot block count — the block
// index space CountBlocks accepts.
func (r *BlockRunner) TotalBlocks() int { return r.total }

// Config returns the normalized configuration the runner was built for
// (Rounds defaulted, pipeline artifacts attached), whose Fingerprint
// identifies the ledger the counts belong to.
func (r *BlockRunner) Config() Config { return r.cfg }

func (r *BlockRunner) blockLen(b int) int {
	if n := r.cfg.Shots - b*blockShots; n < blockShots {
		return n
	}
	return blockShots
}

// CountBlocks samples and decodes blocks [first, first+n) and returns
// their logical-error counts, one entry per block. Any panic below it —
// decoder, matching, sampler — is converted into an error carrying the
// exact (seed, firstBlock) repro instead of unwinding the worker. The
// context is observed between blocks; a cancelled call returns ctx's
// error with no partial counts.
func (r *BlockRunner) CountBlocks(ctx context.Context, first, n int) (counts []int, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if first < 0 || n <= 0 || first+n > r.total {
		return nil, fmt.Errorf("experiment: CountBlocks(%d, %d) outside the run's %d blocks", first, n, r.total)
	}
	defer func() {
		if v := recover(); v != nil {
			counts, err = nil, fmt.Errorf("experiment: blocks %d..%d (decoder %s) panicked: %v; repro: seed=%d firstBlock=%d\n%s",
				first, first+n-1, r.cfg.Decoder, v, r.cfg.Seed, first, debug.Stack())
		}
	}()
	dec := r.pool.Get()
	defer dec.Release()
	smp := sim.NewBlockSampler(r.c, n)
	shardLen := r.blockLen(first+n-1) + (n-1)*blockShots
	if err := smp.Validate(first, shardLen); err != nil {
		// Guarded call site: an impossible shard shape is a caller bug;
		// surface it as an error instead of tripping the sampler panic.
		return nil, fmt.Errorf("experiment: CountBlocks(%d, %d): %w", first, n, err)
	}
	sc := shotCounter{c: r.c, dec: dec, res: smp.Run(first, shardLen, r.cfg.Seed)}
	sc.bit = sc.detectorBit
	counts = make([]int, n)
	for b := 0; b < n; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		counts[b] = sc.countShots(b*blockShots, r.blockLen(first+b))
	}
	return counts, nil
}
