package experiment

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/noise"
)

// crashWorkload builds the raw engine inputs — circuit and decoder —
// for white-box runEngine tests that need to inject faulty decoders.
func crashWorkload(t testing.TB, p float64) (*circuit.Circuit, Decoder) {
	t.Helper()
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	nm := &noise.Model{P: p}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: pl.Plan, Basis: css.Z, Rounds: 3, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := newDecoder(FlaggedMWPM, model, css.Z, nm.MeasFlip())
	if err != nil {
		t.Fatal(err)
	}
	return c, dec
}

// panicOnCall wraps a decoder and panics on exactly one Decode call
// (0-based index n), imitating a pathological syndrome that trips a
// matching invariant on one specific shot.
type panicOnCall struct {
	dec   Decoder
	n     int64
	calls atomic.Int64
}

func (d *panicOnCall) Decode(bit func(int) bool) ([]bool, error) {
	if d.calls.Add(1)-1 == d.n {
		panic("injected: matching: stuck without maxCardinality")
	}
	return d.dec.Decode(bit)
}

// recoveredErrDecoder imitates a decoder whose internal matcher panics
// but which recovers at its Decode boundary the way the decoder package
// does — every call returns an error.
type recoveredErrDecoder struct{}

func (recoveredErrDecoder) Decode(bit func(int) bool) (corr []bool, err error) {
	defer decoder.Recover(&err)
	panic("matching: stuck without maxCardinality")
}

// Satellite: a matcher panic recovered into an error at the decode
// boundary must ride the existing decode-failure path — every shot
// counts as a logical error, the engine finishes, nothing dies.
func TestRecoveredDecodePanicCountsAsFailure(t *testing.T) {
	c, _ := crashWorkload(t, 1e-3)
	cfg := Config{Shots: 640, Seed: 3, Workers: 2, ShardShots: 64}
	out := runEngine(context.Background(), c, recoveredErrDecoder{}, nil, cfg)
	if out.shots != 640 || out.errs != 640 {
		t.Fatalf("decode errors must count as logical errors: got %d/%d, want 640/640", out.errs, out.shots)
	}
	if len(out.shardErrs) != 0 || out.interrupted {
		t.Fatalf("recovered decode errors must not quarantine shards: %+v", out)
	}
}

// Tentpole: an unrecovered decoder panic loses at most its shard. The
// committed prefix before the failed shard survives, the error carries
// the exact (seed, firstBlock) repro, and the process lives.
func TestShardPanicQuarantine(t *testing.T) {
	c, dec := crashWorkload(t, 2e-3)
	const seed = int64(7)
	// Single worker + 64-shot shards: Decode call i belongs to shot i,
	// so call 320 is the first shot of block 5.
	bad := &panicOnCall{dec: dec, n: 320}
	cfg := Config{Shots: 640, Seed: seed, Workers: 1, ShardShots: 64}
	out := runEngine(context.Background(), c, bad, nil, cfg)
	if len(out.shardErrs) != 1 {
		t.Fatalf("want exactly one quarantined shard, got %d (%+v)", len(out.shardErrs), out.shardErrs)
	}
	se := out.shardErrs[0]
	if se.FirstBlock != 5 || se.Blocks != 1 || se.Seed != seed {
		t.Fatalf("shard error coordinates wrong: %+v", se)
	}
	if out.blocks != 5 || out.shots != 320 {
		t.Fatalf("healthy prefix not committed: blocks=%d shots=%d, want 5/320", out.blocks, out.shots)
	}
	msg := se.Error()
	if !strings.Contains(msg, fmt.Sprintf("seed=%d firstBlock=5", seed)) {
		t.Fatalf("shard error lost the repro line: %q", msg)
	}
	if !strings.Contains(msg, "maxCardinality") {
		t.Fatalf("shard error lost the panic value: %q", msg)
	}
	if len(se.Stack) == 0 {
		t.Fatal("shard error carries no stack")
	}
	// The prefix must be bit-identical to a healthy run's first 5 blocks.
	clean := runEngine(context.Background(), c, dec, nil, Config{Shots: 320, Seed: seed, Workers: 1, ShardShots: 64})
	if out.errs != clean.errs {
		t.Fatalf("quarantined run's prefix differs from a clean 320-shot run: %d vs %d errors", out.errs, clean.errs)
	}
}

// Tentpole: the fallback decoder chain rescues a panicking shard and
// the run completes with no quarantine. The fallback here is the same
// healthy decoder, so the result must equal an uninjected run exactly.
func TestFallbackChainRescuesShard(t *testing.T) {
	c, dec := crashWorkload(t, 2e-3)
	bad := &panicOnCall{dec: dec, n: 320}
	mk := func(k DecoderKind) (Decoder, error) {
		if k != PlainMWPM {
			return nil, fmt.Errorf("unexpected fallback kind %v", k)
		}
		return dec, nil
	}
	cfg := Config{Shots: 640, Seed: 7, Workers: 1, ShardShots: 64, Fallback: []DecoderKind{PlainMWPM}}
	out := runEngine(context.Background(), c, bad, mk, cfg)
	if len(out.shardErrs) != 0 {
		t.Fatalf("fallback chain did not rescue the shard: %+v", out.shardErrs)
	}
	if out.shots != 640 {
		t.Fatalf("rescued run incomplete: %d/640 shots", out.shots)
	}
	if out.fallbackBlocks != 1 {
		t.Fatalf("FallbackBlocks = %d, want 1", out.fallbackBlocks)
	}
	clean := runEngine(context.Background(), c, dec, nil, Config{Shots: 640, Seed: 7, Workers: 1, ShardShots: 64})
	if out.errs != clean.errs {
		t.Fatalf("identical fallback decoder changed the result: %d vs %d errors", out.errs, clean.errs)
	}
}

// A fallback chain whose decoders all fail must still quarantine, not
// loop or crash.
func TestFallbackChainExhausted(t *testing.T) {
	c, dec := crashWorkload(t, 2e-3)
	bad := &panicOnCall{dec: dec, n: 64}
	// The fallback panics too, on its first call: the shard stays dead.
	alsoBad := func(DecoderKind) (Decoder, error) { return &panicOnCall{dec: dec, n: 0}, nil }
	cfg := Config{Shots: 256, Seed: 9, Workers: 1, ShardShots: 64, Fallback: []DecoderKind{PlainMWPM}}
	out := runEngine(context.Background(), c, bad, alsoBad, cfg)
	if len(out.shardErrs) != 1 {
		t.Fatalf("want one quarantined shard after fallback exhaustion, got %+v", out.shardErrs)
	}
	if out.blocks != 1 || out.shots != 64 {
		t.Fatalf("prefix before the failed shard lost: blocks=%d shots=%d", out.blocks, out.shots)
	}
}

// Tentpole: cancellation returns the committed prefix as a partial,
// resumable result, and the resumed run is bit-identical to one that
// was never interrupted.
func TestCancelThenResumeBitIdentical(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 5e-3, Shots: 4096, Seed: 21,
		Decoder: FlaggedMWPM, Workers: 2, ShardShots: 64,
	}
	clean, err := pl.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.LogicalErrors == 0 {
		t.Fatal("no logical errors at p=5e-3; the comparison would be vacuous")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := base
	cancelled := false
	cfg.OnCommit = func(pr Progress) {
		if pr.Blocks >= 8 && !cancelled {
			cancelled = true
			cancel()
		}
	}
	part, err := pl.RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Interrupted {
		t.Fatalf("run was not marked interrupted (committed %d/%d blocks)", part.Blocks, (base.Shots+63)/64)
	}
	if part.Shots >= base.Shots || part.Blocks*blockShots != part.Shots {
		t.Fatalf("partial result not a block-aligned prefix: blocks=%d shots=%d", part.Blocks, part.Shots)
	}
	resumed := base
	resumed.Resume = &Resume{Blocks: part.Blocks, Shots: part.Shots, Errors: part.LogicalErrors}
	full, err := pl.Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if full.Shots != clean.Shots || full.LogicalErrors != clean.LogicalErrors ||
		full.EarlyStopped != clean.EarlyStopped || full.Blocks != clean.Blocks {
		t.Fatalf("resume after cancel diverged: got (%d/%d early=%v), want (%d/%d early=%v)",
			full.LogicalErrors, full.Shots, full.EarlyStopped,
			clean.LogicalErrors, clean.Shots, clean.EarlyStopped)
	}
}

// Satellite: interrupt-at-every-k-blocks resume determinism. A run of N
// blocks is replayed N times, resumed from every committed state the
// uninterrupted run passed through; each replay must land on the exact
// same (Shots, LogicalErrors, EarlyStopped).
func TestResumeDeterminismEveryBlock(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 5e-3, Shots: 1000, Seed: 17,
		Decoder: FlaggedMWPM, Workers: 1, ShardShots: 64,
	}
	var states []Progress
	cfg := base
	cfg.OnCommit = func(pr Progress) { states = append(states, pr) }
	clean, err := pl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.LogicalErrors == 0 {
		t.Fatal("determinism check would be vacuous with zero errors")
	}
	if len(states) < 10 {
		t.Fatalf("expected one commit state per 64-shot shard, got %d", len(states))
	}
	for _, st := range states {
		resumed := base
		resumed.Resume = &Resume{Blocks: st.Blocks, Shots: st.Shots, Errors: st.Errors}
		res, err := pl.Run(resumed)
		if err != nil {
			t.Fatalf("resume at block %d: %v", st.Blocks, err)
		}
		if res.Shots != clean.Shots || res.LogicalErrors != clean.LogicalErrors || res.EarlyStopped != clean.EarlyStopped {
			t.Fatalf("resume at block %d diverged: got (%d/%d early=%v), want (%d/%d early=%v)",
				st.Blocks, res.LogicalErrors, res.Shots, res.EarlyStopped,
				clean.LogicalErrors, clean.Shots, clean.EarlyStopped)
		}
	}
}

// Resume must also replay deterministic early stopping: a run that
// stops at TargetErrors must stop at the same shot when resumed from
// any committed prefix, including one written exactly at the stop.
func TestResumeDeterminismAcrossEarlyStop(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 1e-2, Shots: 100000, Seed: 11,
		Decoder: FlaggedMWPM, Workers: 1, ShardShots: 64, TargetErrors: 20,
	}
	var states []Progress
	cfg := base
	cfg.OnCommit = func(pr Progress) { states = append(states, pr) }
	clean, err := pl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.EarlyStopped {
		t.Fatal("expected the clean run to early-stop")
	}
	for _, st := range states {
		resumed := base
		resumed.Resume = &Resume{Blocks: st.Blocks, Shots: st.Shots, Errors: st.Errors}
		res, err := pl.Run(resumed)
		if err != nil {
			t.Fatalf("resume at block %d: %v", st.Blocks, err)
		}
		if res.Shots != clean.Shots || res.LogicalErrors != clean.LogicalErrors || !res.EarlyStopped {
			t.Fatalf("resume at block %d diverged across early stop: got (%d/%d early=%v), want (%d/%d)",
				st.Blocks, res.LogicalErrors, res.Shots, res.EarlyStopped, clean.LogicalErrors, clean.Shots)
		}
	}
}

// Resuming a fully committed run must return it verbatim without
// launching a single worker.
func TestResumeFinishedRunIsNoop(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Code: code, Basis: css.Z, P: 5e-3, Shots: 320, Seed: 5, Decoder: FlaggedMWPM}
	clean, err := pl.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Resume = &Resume{Blocks: clean.Blocks, Shots: clean.Shots, Errors: clean.LogicalErrors}
	res, err := pl.Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != clean.Shots || res.LogicalErrors != clean.LogicalErrors || res.Interrupted {
		t.Fatalf("no-op resume changed the result: %+v", res)
	}
}

// Resume states that cannot belong to this run must be rejected before
// any sampling happens.
func TestValidateRejectsBadResume(t *testing.T) {
	code := hyper55(t)
	base := Config{Code: code, Arch: engineArch, Basis: css.Z, P: 1e-3, Shots: 1000, Decoder: FlaggedMWPM}
	for name, r := range map[string]*Resume{
		"negative-blocks":     {Blocks: -1},
		"errors-exceed-shots": {Blocks: 1, Shots: 64, Errors: 65},
		"blocks-past-run":     {Blocks: 17, Shots: 1000},
		"shots-misaligned":    {Blocks: 2, Shots: 100, Errors: 0},
	} {
		cfg := base
		cfg.Resume = r
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected a validation error for Resume %+v", name, *r)
		}
	}
}

// Race/stress satellite: cancel while every worker is mid-shard, many
// times, under -race in CI. The committed prefix must always be a
// consistent block-aligned state.
func TestCancelStress(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 5e-3, Shots: 1 << 15, Seed: 33,
		Decoder: FlaggedMWPM, Workers: 8, ShardShots: 64,
	}
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i) * 300 * time.Microsecond)
		res, err := pl.RunContext(ctx, base)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if res.Shots > base.Shots || res.LogicalErrors > res.Shots {
			t.Fatalf("iteration %d: inconsistent partial result %d/%d", i, res.LogicalErrors, res.Shots)
		}
		if res.Shots < base.Shots {
			if !res.Interrupted {
				t.Fatalf("iteration %d: partial result not marked interrupted", i)
			}
			if res.Blocks*blockShots != res.Shots {
				t.Fatalf("iteration %d: prefix not block-aligned: blocks=%d shots=%d", i, res.Blocks, res.Shots)
			}
		}
	}
}

// The fingerprint must be stable across calls and sensitive to every
// result-affecting knob, while ignoring pure scheduling knobs.
func TestFingerprintSensitivity(t *testing.T) {
	code := hyper55(t)
	base := Config{Code: code, Arch: engineArch, Basis: css.Z, P: 1e-3, Shots: 1000, Seed: 1, Decoder: FlaggedMWPM}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
	distinct := map[string]func(*Config){
		"p":       func(c *Config) { c.P = 2e-3 },
		"shots":   func(c *Config) { c.Shots = 2000 },
		"seed":    func(c *Config) { c.Seed = 2 },
		"decoder": func(c *Config) { c.Decoder = PlainMWPM },
		"basis":   func(c *Config) { c.Basis = css.X },
		"rounds":  func(c *Config) { c.Rounds = 5 },
		"target":  func(c *Config) { c.TargetErrors = 10 },
		"maxci":   func(c *Config) { c.MaxCI = 0.01 },
		"cc":      func(c *Config) { c.CodeCapacity = true },
		"idle":    func(c *Config) { c.FixedIdle = true },
		"arch":    func(c *Config) { c.Arch.UseFlags = false },
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mut := range distinct {
		cfg := base
		mut(&cfg)
		fp := cfg.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s: fingerprint collides with %s", name, prev)
		}
		seen[fp] = name
	}
	same := map[string]func(*Config){
		"workers": func(c *Config) { c.Workers = 16 },
		"shard":   func(c *Config) { c.ShardShots = 4096 },
		"resume":  func(c *Config) { c.Resume = &Resume{Blocks: 1, Shots: 64} },
		"hook":    func(c *Config) { c.OnCommit = func(Progress) {} },
		"timeout": func(c *Config) { c.DecodeTimeout = 5 * time.Second },
		"wrap":    func(c *Config) { c.WrapDecoder = func(_ DecoderKind, d Decoder) Decoder { return d } },
	}
	for name, mut := range same {
		cfg := base
		mut(&cfg)
		if cfg.Fingerprint() != base.Fingerprint() {
			t.Errorf("%s: scheduling knob changed the fingerprint", name)
		}
	}
}
