package experiment

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func hyper55(t testing.TB) *css.Code {
	t.Helper()
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := surface.FromMap(m, "hysc-30", "hyperbolic-surface {5,5}")
		if err == nil {
			return code
		}
	}
	t.Fatal("no [[30,8,3,3]] code")
	return nil
}

func TestMemoryRunBasic(t *testing.T) {
	code := hyper55(t)
	res, err := Run(Config{
		Code:    code,
		Arch:    fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
		Basis:   css.Z,
		P:       1e-3,
		Shots:   300,
		Seed:    1,
		Decoder: FlaggedMWPM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 300 {
		t.Fatal("shot accounting wrong")
	}
	if res.BER < 0 || res.BER > 1 || res.BERNorm > res.BER {
		t.Fatalf("BER %.4f norm %.4f inconsistent", res.BER, res.BERNorm)
	}
	if res.CILow > res.BER || res.CIHigh < res.BER {
		t.Fatal("Wilson interval does not cover the estimate")
	}
	t.Logf("[[30,8,3,3]] p=1e-3: BER=%.4f (%d/%d), latency %.0f ns",
		res.BER, res.LogicalErrors, res.Shots, res.LatencyNs)
}

func TestBERDecreasesWithP(t *testing.T) {
	code := hyper55(t)
	base := Config{
		Code:    code,
		Arch:    fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
		Basis:   css.Z,
		Shots:   400,
		Seed:    2,
		Decoder: FlaggedMWPM,
	}
	high := base
	high.P = 3e-3
	low := base
	low.P = 3e-4
	rh, err := Run(high)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(low)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BER(3e-3)=%.4f BER(3e-4)=%.4f", rh.BER, rl.BER)
	if rl.BER >= rh.BER && rh.BER > 0 {
		t.Fatalf("BER did not decrease with p: %.4f vs %.4f", rl.BER, rh.BER)
	}
}

func TestFlaggedBeatsPlainAtLowP(t *testing.T) {
	// Figure 19's statistical shape: at low p the flagged decoder's BER
	// is below the plain decoder's (deff 3 vs 2).
	code := hyper55(t)
	base := Config{
		Code:  code,
		Arch:  fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
		Basis: css.Z,
		P:     1e-3,
		Shots: 1500,
		Seed:  3,
	}
	flagged := base
	flagged.Decoder = FlaggedMWPM
	plain := base
	plain.Decoder = PlainMWPM
	rf, err := Run(flagged)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flagged BER=%.4f plain BER=%.4f", rf.BER, rp.BER)
	if rf.BER > rp.BER {
		t.Fatalf("flagged (%.4f) worse than plain (%.4f)", rf.BER, rp.BER)
	}
}

func TestDefaultRoundsFromDistance(t *testing.T) {
	code := hyper55(t)
	res, err := Run(Config{
		Code:    code,
		Arch:    fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
		Basis:   css.X,
		P:       1e-3,
		Shots:   50,
		Seed:    4,
		Decoder: FlaggedMWPM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (= d)", res.Config.Rounds)
	}
}
