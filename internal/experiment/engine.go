// Sharded streaming Monte-Carlo engine. A run's shots are split into
// fixed 64-shot sampling blocks (one bit-packed word each); workers
// claim shards — contiguous runs of blocks — from an atomic counter and
// own each shard end-to-end: simulate, decode, count. A shard is
// sampled in one multi-word pass, but every block inside it consumes
// its own RNG stream seeded seedmix.Derive(cfg.Seed, blockIndex), so
// the sampled error stream of a block depends only on (circuit, base
// seed, block index) and the run's outcome is bit-identical for any
// worker count and any shard size. Peak memory is O(workers ×
// shardShots × detectors) instead of the former O(shots × detectors).
//
// Early stopping is deterministic too: block results are committed
// strictly in block order, and the stop criteria (target logical-error
// count, Wilson CI half-width) are evaluated only against the committed
// prefix. Blocks simulated past the stop point are discarded, so the
// reported (Shots, LogicalErrors) pair does not depend on scheduling.
//
// The engine is crash-safe in three independent ways. Cancellation: a
// context threaded through RunContext is observed at shard boundaries
// and the committed prefix is returned as a partial Result
// (Result.Interrupted) instead of being discarded. Panic isolation: a
// per-shard recover converts decoder/matching/sampler panics into a
// structured ShardError carrying an exact (seed, firstBlock) repro;
// the failed shard is quarantined — optionally retried with a fallback
// decoder chain — while the healthy prefix keeps committing. Resume:
// because any committed prefix is block-aligned and every block's RNG
// stream depends only on (circuit, seed, blockIndex), a run restarted
// from Config.Resume is bit-identical to one that never stopped.
//
// A fourth guard, Config.DecodeTimeout, covers decoders that hang or
// crawl instead of panicking: a shard attempt that outlives the
// deadline is abandoned (its goroutine leaks until it returns on its
// own) and retried deterministically under the fallback chain — same
// seed, same firstBlock — with every affected block explicitly counted
// in Result.TimeoutBlocks and Result.DegradedBlocks.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/seedmix"
	"github.com/fpn/flagproxy/internal/sim"
)

// blockShots is the atomic sampling unit: one bit-packed word. RNG
// seeds are derived per block, never per shard, so shard size is a pure
// scheduling knob with no statistical footprint.
const blockShots = 64

// defaultShardShots is the work-claiming granularity when
// Config.ShardShots is zero: large enough to amortize the claim and
// commit synchronization, small enough to load-balance tail shards.
const defaultShardShots = 1024

// Resume restarts the engine from a previously committed prefix: the
// first Blocks 64-shot blocks are taken as already counted, holding
// Shots shots and Errors logical errors. Because every block's RNG
// stream depends only on (circuit, seed, blockIndex), a resumed run is
// bit-identical to one that was never interrupted. Shots must equal
// min(Blocks*64, Config.Shots) — the shot count a committed prefix of
// that many blocks necessarily holds — or validation fails, catching
// checkpoints replayed against a mismatched configuration.
type Resume struct {
	Blocks int // committed 64-shot blocks
	Shots  int // shots in those blocks: min(Blocks*64, Config.Shots)
	Errors int // logical errors observed in those blocks
}

// Progress is a snapshot of the committed prefix, delivered to
// Config.OnCommit each time the commit frontier advances. Snapshots are
// monotone and block-aligned, so any of them is a valid Resume state.
type Progress struct {
	Blocks int
	Shots  int
	Errors int
}

// ErrDecodeTimeout is the failure value of a shard attempt abandoned at
// Config.DecodeTimeout; it appears (wrapped) as the PanicValue of a
// quarantined ShardError whose Timeout flag is set.
var ErrDecodeTimeout = errors.New("experiment: decode deadline exceeded")

// ShardError describes a worker panic, sampler-contract violation or
// decode-deadline expiry that was quarantined to a single shard instead
// of crashing or stalling the run. Because block RNG streams depend
// only on (seed, blockIndex), the pair (Seed, FirstBlock) pins down the
// exact failing input: rerunning the point with ShardShots=64 and a
// Resume at FirstBlock replays it.
type ShardError struct {
	Seed       int64  // base seed of the run
	Shard      int    // shard index within this (possibly resumed) run
	FirstBlock int    // absolute index of the shard's first 64-shot block
	Blocks     int    // 64-shot blocks covered by the shard
	Decoder    string // decoder active when the attempt failed
	Timeout    bool   // the attempt hit Config.DecodeTimeout instead of panicking
	PanicValue any
	Stack      []byte // stack captured at recover time (empty for timeouts)
}

// Error formats the quarantine report with the repro coordinates.
func (e *ShardError) Error() string {
	verb := "panicked"
	if e.Timeout {
		verb = "timed out"
	}
	return fmt.Sprintf("experiment: shard %d (blocks %d..%d, decoder %s) %s: %v; repro: seed=%d firstBlock=%d",
		e.Shard, e.FirstBlock, e.FirstBlock+e.Blocks-1, e.Decoder, verb, e.PanicValue, e.Seed, e.FirstBlock)
}

// Repro returns just the (seed, firstBlock) coordinates that replay the
// failing shard deterministically.
func (e *ShardError) Repro() string {
	return fmt.Sprintf("seed=%d firstBlock=%d", e.Seed, e.FirstBlock)
}

// Pipeline caches the p-independent artifacts of a memory experiment —
// the FPN network, the schedule and the lowered round plan — so a sweep
// over p-points and bases pays the architecture and scheduling cost
// once. Pipelines are safe for concurrent Run calls.
type Pipeline struct {
	Code  *css.Code
	Arch  fpn.Options
	Net   *fpn.Network
	Sched *schedule.Schedule
	Plan  *schedule.RoundPlan
}

// NewPipeline builds the network, greedy schedule and round plan for
// (code, arch) once, for reuse across many Run configurations.
func NewPipeline(code *css.Code, arch fpn.Options) (*Pipeline, error) {
	net, err := fpn.Build(code, arch)
	if err != nil {
		return nil, err
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		return nil, err
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Code: code, Arch: arch, Net: net, Sched: s, Plan: plan}, nil
}

// NewPipelineFromSchedule wraps an externally built schedule (e.g. the
// canonical rotated-surface-code ordering) in a reusable pipeline. The
// schedule's network must have been built for code.
func NewPipelineFromSchedule(code *css.Code, s *schedule.Schedule) (*Pipeline, error) {
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Code: code, Net: s.Net, Sched: s, Plan: plan}, nil
}

// Run executes the p-dependent tail of the pipeline — circuit, detector
// error model, decoder — and samples cfg.Shots shots with the sharded
// engine. cfg.Code, cfg.Arch and cfg.Schedule are ignored in favor of
// the pipeline's cached artifacts (cfg.Code must match pl.Code).
func (pl *Pipeline) Run(cfg Config) (*Result, error) {
	return pl.RunContext(context.Background(), cfg)
}

// RunContext is Run under a context. When ctx is cancelled, workers
// stop at the next shard boundary and the committed prefix is returned
// as a partial Result with Interrupted set — a valid Resume point —
// rather than an error.
func (pl *Pipeline) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg, c, dec, mk, err := pl.buildTail(cfg)
	if err != nil {
		return nil, err
	}
	out := runEngine(ctx, c, dec, mk, cfg)
	ber := 0.0
	if out.shots > 0 {
		ber = float64(out.errs) / float64(out.shots)
	}
	lo, hi := wilson(out.errs, out.shots)
	return &Result{
		Config:         cfg,
		Net:            pl.Net,
		LatencyNs:      pl.Plan.LatencyNs,
		Shots:          out.shots,
		Blocks:         out.blocks,
		LogicalErrors:  out.errs,
		BER:            ber,
		BERNorm:        ber / float64(cfg.Code.K),
		CILow:          lo,
		CIHigh:         hi,
		EarlyStopped:   out.early,
		Interrupted:    out.interrupted,
		FallbackBlocks: out.fallbackBlocks,
		TimeoutBlocks:  out.timeoutBlocks,
		DegradedBlocks: out.degradedBlocks,
		ShardErrors:    out.shardErrs,
		MemoHits:       out.memoHits,
		MemoMisses:     out.memoMisses,
	}, nil
}

// buildTail validates cfg, normalizes its defaults (Rounds, pipeline
// artifacts) and constructs the p-dependent tail: the noisy circuit,
// the primary decoder, and the lazy fallback-decoder factory. It is
// shared by RunContext and NewBlockRunner so the distributed fabric's
// workers decode through exactly the production stack.
func (pl *Pipeline) buildTail(cfg Config) (Config, *circuit.Circuit, Decoder, func(DecoderKind) (Decoder, error), error) {
	cfg.Code = pl.Code
	cfg.Schedule = pl.Sched
	if err := validate(cfg); err != nil {
		return cfg, nil, nil, nil, err
	}
	if cfg.CodeCapacity {
		cfg.Rounds = 1
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = cfg.Code.DX
		if cfg.Code.DZ < cfg.Rounds {
			cfg.Rounds = cfg.Code.DZ
		}
		if cfg.Rounds < 1 {
			return cfg, nil, nil, nil, fmt.Errorf("experiment: code has no distance metadata; set Rounds")
		}
	}
	nm := &noise.Model{P: cfg.P, FixedIdle: cfg.FixedIdle}
	var c *circuit.Circuit
	var err error
	if cfg.CodeCapacity {
		c, err = circuit.BuildCodeCapacity(pl.Plan, cfg.Basis, cfg.P)
	} else {
		c, err = circuit.BuildMemory(circuit.MemorySpec{Plan: pl.Plan, Basis: cfg.Basis, Rounds: cfg.Rounds, Noise: nm})
	}
	if err != nil {
		return cfg, nil, nil, nil, err
	}
	model, err := dem.Extract(c)
	if err != nil {
		return cfg, nil, nil, nil, err
	}
	dec, err := newDecoder(cfg.Decoder, model, cfg.Basis, nm.MeasFlip())
	if err != nil {
		return cfg, nil, nil, nil, err
	}
	// The batch lift happens before WrapDecoder so the chaos harness
	// sees (and may fault-inject) the actual production decoder; a
	// wrapper that hides the BatchDecoder interface simply routes its
	// shards down the scalar loop.
	if !cfg.ScalarDecode {
		dec = batchify(cfg.Decoder, dec)
	}
	if cfg.WrapDecoder != nil {
		dec = cfg.WrapDecoder(cfg.Decoder, dec)
	}
	// Fallback decoders share the circuit's error model; they are built
	// lazily, only when a shard actually panics or times out.
	mk := func(k DecoderKind) (Decoder, error) {
		d, err := newDecoder(k, model, cfg.Basis, nm.MeasFlip())
		if err != nil {
			return nil, err
		}
		if !cfg.ScalarDecode {
			d = batchify(k, d)
		}
		if cfg.WrapDecoder != nil {
			d = cfg.WrapDecoder(k, d)
		}
		return d, nil
	}
	return cfg, c, dec, mk, nil
}

// validate rejects configurations that would previously have poisoned a
// sweep silently: Shots <= 0 used to divide 0/0 into a NaN BER, and
// K <= 0 turned BERNorm into ±Inf.
func validate(cfg Config) error {
	if cfg.Code == nil {
		return fmt.Errorf("experiment: Config.Code is nil")
	}
	if cfg.Shots <= 0 {
		return fmt.Errorf("experiment: Shots must be positive (got %d)", cfg.Shots)
	}
	if cfg.Code.K <= 0 {
		return fmt.Errorf("experiment: code %q has k=%d logical qubits, BER_norm = BER/k is undefined (missing rank/distance metadata?)", cfg.Code.Name, cfg.Code.K)
	}
	if cfg.TargetErrors < 0 {
		return fmt.Errorf("experiment: TargetErrors must be >= 0 (got %d)", cfg.TargetErrors)
	}
	if cfg.MaxCI < 0 || cfg.MaxCI >= 1 {
		return fmt.Errorf("experiment: MaxCI must be in [0, 1) (got %g)", cfg.MaxCI)
	}
	if cfg.ShardShots < 0 {
		return fmt.Errorf("experiment: ShardShots must be >= 0 (got %d)", cfg.ShardShots)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("experiment: Workers must be >= 0 (got %d)", cfg.Workers)
	}
	for _, k := range cfg.Fallback {
		if k < FlaggedMWPM || k > BPOSD {
			return fmt.Errorf("experiment: unknown fallback decoder kind %d", k)
		}
	}
	if cfg.DecodeTimeout < 0 {
		return fmt.Errorf("experiment: DecodeTimeout must be >= 0 (got %v)", cfg.DecodeTimeout)
	}
	if r := cfg.Resume; r != nil {
		if r.Blocks < 0 || r.Shots < 0 || r.Errors < 0 {
			return fmt.Errorf("experiment: negative Resume field (%+v)", *r)
		}
		if r.Errors > r.Shots {
			return fmt.Errorf("experiment: Resume.Errors %d exceeds Resume.Shots %d", r.Errors, r.Shots)
		}
		total := (cfg.Shots + blockShots - 1) / blockShots
		if r.Blocks > total {
			return fmt.Errorf("experiment: Resume.Blocks %d exceeds the run's %d blocks (checkpoint from a different Shots?)", r.Blocks, total)
		}
		want := r.Blocks * blockShots
		if want > cfg.Shots {
			want = cfg.Shots
		}
		if r.Shots != want {
			return fmt.Errorf("experiment: Resume.Shots %d inconsistent with %d committed blocks (want %d; checkpoint from a different configuration?)", r.Shots, r.Blocks, want)
		}
	}
	return nil
}

// DecoderPool shares one immutable decoder across worker goroutines
// while giving each worker a private decoder.DecodeScratch, so the
// steady-state decode loop stays allocation-free without any locking.
// Decoders built by this package (NewMWPM, NewRestriction, NewUnionFind,
// NewBPOSD) are read-only after construction and safe to share; all
// per-shot mutable state lives in the scratch.
type DecoderPool struct {
	dec     Decoder
	scratch decoder.ScratchDecoder // non-nil iff dec supports scratch decoding
	batch   decoder.BatchDecoder   // non-nil iff dec supports 64-shot block decoding
	free    sync.Pool              // *decoder.DecodeScratch

	memoHits   atomic.Int64 // accumulated from scratches at Release
	memoMisses atomic.Int64
}

// NewDecoderPool wraps dec. Decoders implementing
// decoder.ScratchDecoder get per-worker scratch arenas; anything else
// falls back to plain Decode. Decoders additionally implementing
// decoder.BatchDecoder get the 64-shot block path.
func NewDecoderPool(dec Decoder) *DecoderPool {
	p := &DecoderPool{dec: dec}
	if sd, ok := dec.(decoder.ScratchDecoder); ok {
		p.scratch = sd
		p.free.New = func() any { return decoder.NewScratch() }
		p.batch, _ = dec.(decoder.BatchDecoder)
	}
	return p
}

// MemoStats reports the batch-memo hit/miss counts accumulated from
// every scratch released back to the pool.
func (p *DecoderPool) MemoStats() (hits, misses int64) {
	return p.memoHits.Load(), p.memoMisses.Load()
}

// Get borrows a worker-local handle. The handle is not safe for
// concurrent use; call Release when the worker is done so the scratch
// (and its warmed buffers) returns to the pool.
func (p *DecoderPool) Get() *PooledDecoder {
	d := &PooledDecoder{pool: p}
	if p.scratch != nil {
		d.sc = p.free.Get().(*decoder.DecodeScratch)
	}
	return d
}

// PooledDecoder is one worker's view of a DecoderPool: the shared
// immutable decoder plus a private scratch arena.
type PooledDecoder struct {
	pool *DecoderPool
	sc   *decoder.DecodeScratch
}

// Decode routes through the zero-allocation DecodeWith hot path when
// the pooled decoder supports it. It deliberately does NOT recover:
// the decoder package already converts its own invariant panics into
// errors at each DecodeWith boundary, and anything that still unwinds
// through here (a buggy third-party decoder, a sampler-contract
// violation) must reach runShard's recover so the whole shard is
// quarantined with a repro instead of miscounted as per-shot logical
// errors.
func (d *PooledDecoder) Decode(bit func(int) bool) ([]bool, error) {
	if d.sc != nil {
		return d.pool.scratch.DecodeWith(d.sc, bit)
	}
	return d.pool.dec.Decode(bit)
}

// DecodeBlock decodes one 64-shot sampling block through the batch
// seam, returning ok=false when the pooled decoder has no batch path
// (the caller then runs the scalar loop). A contract error from
// DecodeBatch is an engine bug, not a per-shot decode failure: it
// panics so runShard quarantines the whole shard with a repro.
func (d *PooledDecoder) DecodeBlock(res *sim.Result, firstShot, n int) (errs int, ok bool) {
	if d.sc == nil || d.pool.batch == nil {
		return 0, false
	}
	errs, err := d.pool.batch.DecodeBatch(res, firstShot, n, d.sc)
	if err != nil {
		panic(err)
	}
	return errs, true
}

// Release returns the scratch to the pool for the next worker, folding
// its memo counters into the pool's totals.
func (d *PooledDecoder) Release() {
	if d.sc != nil {
		if h, m := d.sc.TakeMemoStats(); h != 0 || m != 0 {
			d.pool.memoHits.Add(int64(h))
			d.pool.memoMisses.Add(int64(m))
		}
		d.pool.free.Put(d.sc)
		d.sc = nil
	}
}

// engineOut is the raw outcome of runEngine: the committed prefix, the
// stop/interrupt flags, and any quarantined shards.
type engineOut struct {
	blocks         int // committed 64-shot blocks (including a resumed prefix)
	shots          int
	errs           int
	early          bool // a stop criterion fired
	interrupted    bool // ctx cancelled before the run finished
	fallbackBlocks int  // blocks rescued by the fallback chain after a panic
	timeoutBlocks  int  // blocks whose primary attempt hit the decode deadline
	degradedBlocks int  // blocks committed from a fallback after a timeout
	shardErrs      []ShardError
	memoHits       int64 // batch syndrome-memo hits across all pools
	memoMisses     int64
}

// runEngine is the sharded simulate→decode→count loop. mkDecoder builds
// fallback decoders on demand (nil disables the fallback chain). The
// committed prefix is returned even when the run is cancelled or a
// shard is quarantined; it is always a valid Resume point.
func runEngine(ctx context.Context, c *circuit.Circuit, dec Decoder, mkDecoder func(DecoderKind) (Decoder, error), cfg Config) engineOut {
	if ctx == nil {
		ctx = context.Background()
	}
	fr := NewFrontier(cfg)
	totalBlocks := fr.Total()
	start := fr.Start()
	if fr.Done() {
		// The resumed prefix already covers the run, or was written
		// exactly at a stop boundary the writer did not evaluate;
		// honoring it here keeps a resumed run bit-identical to an
		// uninterrupted one.
		p := fr.State()
		return engineOut{blocks: p.Blocks, shots: p.Shots, errs: p.Errors, early: fr.Finalized()}
	}
	shardShots := cfg.ShardShots
	if shardShots <= 0 {
		shardShots = defaultShardShots
	}
	shardBlocks := (shardShots + blockShots - 1) / blockShots
	remBlocks := totalBlocks - start
	numShards := (remBlocks + shardBlocks - 1) / shardBlocks
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	blockLen := func(b int) int {
		if n := cfg.Shots - b*blockShots; n < blockShots {
			return n
		}
		return blockShots
	}

	var (
		nextShard atomic.Int64
		stop      atomic.Bool

		mu       sync.Mutex
		fbBlocks int // rescued after a primary panic
		toBlocks int // primary attempt hit the decode deadline
		dgBlocks int // rescued by a fallback after a timeout
		serrs    []ShardError

		fbMu    sync.Mutex
		fbPools map[DecoderKind]*DecoderPool
	)
	tryCommit := func() {
		fr.Commit()
		if fr.Finalized() {
			stop.Store(true)
		}
	}
	// fallbackPool lazily builds the shared pool for one fallback kind;
	// a kind whose construction fails is remembered as nil and skipped.
	fallbackPool := func(k DecoderKind) *DecoderPool {
		fbMu.Lock()
		defer fbMu.Unlock()
		if p, ok := fbPools[k]; ok {
			return p
		}
		var p *DecoderPool
		if mkDecoder != nil {
			if d, err := mkDecoder(k); err == nil {
				p = NewDecoderPool(d)
			}
		}
		if fbPools == nil {
			fbPools = map[DecoderKind]*DecoderPool{}
		}
		fbPools[k] = p
		return p
	}
	// shardRes bundles the resources one shard attempt owns end-to-end:
	// the sampler, the per-block counts buffer and the decode state.
	// Without a deadline each worker reuses one shardRes for its whole
	// life, exactly as before. Under a deadline an attempt that misses it
	// is abandoned wholesale — the stuck goroutine keeps its shardRes
	// (and its pooled scratch, deliberately leaked to it) while the
	// worker builds a fresh one — so no buffer is ever shared between a
	// live attempt and a dead one.
	type shardRes struct {
		smp    *sim.BlockSampler
		counts []int32
		sc     shotCounter
	}
	newRes := func(p *DecoderPool) *shardRes {
		r := &shardRes{smp: sim.NewBlockSampler(c, shardBlocks), counts: make([]int32, shardBlocks)}
		r.sc = shotCounter{c: c, dec: p.Get()}
		r.sc.bit = r.sc.detectorBit // one closure per attempt owner, not per shot
		return r
	}
	// runShard samples and counts blocks [first, end) into res's private
	// counts buffer, converting any panic below it — decoder, matching,
	// sampler — into a ShardError instead of unwinding the process.
	runShard := func(res *shardRes, sh, first, end int, decName string) (done int, serr *ShardError) {
		fail := func(v any) *ShardError {
			return &ShardError{
				Seed: cfg.Seed, Shard: sh, FirstBlock: first, Blocks: end - first,
				Decoder: decName, PanicValue: v, Stack: debug.Stack(),
			}
		}
		defer func() {
			if r := recover(); r != nil {
				serr = fail(r)
			}
		}()
		shardLen := blockLen(end-1) + (end-first-1)*blockShots
		if err := res.smp.Validate(first, shardLen); err != nil {
			// Guarded call site: an impossible shard shape is an engine
			// bug; quarantine it instead of tripping the sampler panic.
			return first, fail(err)
		}
		res.sc.res = res.smp.Run(first, shardLen, cfg.Seed)
		for done = first; done < end && !stop.Load(); done++ {
			res.counts[done-first] = int32(res.sc.countShots((done-first)*blockShots, blockLen(done)))
		}
		return done, nil
	}
	// publish flushes a successful attempt's counts to the frontier. It
	// runs on the worker, never on an attempt goroutine, so an abandoned
	// (timed-out) attempt can never publish a half-decoded shard after a
	// fallback's result has already landed.
	publish := func(res *shardRes, first, done int) {
		for b := first; b < done; b++ {
			fr.Mark(b, int(res.counts[b-first]))
		}
	}
	// attempt runs one shard attempt, under Config.DecodeTimeout when it
	// is set, and publishes the counts on success. timedOut reports that
	// the attempt was abandoned at the deadline; its res — still owned by
	// the stuck goroutine — must never be touched again.
	attempt := func(res *shardRes, sh, first, end int, decName string) (serr *ShardError, timedOut bool) {
		if cfg.DecodeTimeout <= 0 {
			done, serr := runShard(res, sh, first, end, decName)
			if serr == nil {
				publish(res, first, done)
			}
			return serr, false
		}
		type outcome struct {
			done int
			serr *ShardError
		}
		ch := make(chan outcome, 1) // buffered: an abandoned attempt's send never blocks
		go func() {
			done, serr := runShard(res, sh, first, end, decName)
			ch <- outcome{done, serr}
		}()
		timer := time.NewTimer(cfg.DecodeTimeout)
		defer timer.Stop()
		var o outcome
		select {
		case o = <-ch:
		case <-timer.C:
			select { // photo finish: a result that just landed beats the deadline
			case o = <-ch:
			default:
				return &ShardError{
					Seed: cfg.Seed, Shard: sh, FirstBlock: first, Blocks: end - first,
					Decoder: decName, Timeout: true,
					PanicValue: fmt.Errorf("%w (DecodeTimeout=%v)", ErrDecodeTimeout, cfg.DecodeTimeout),
				}, true
			}
		}
		if o.serr == nil {
			publish(res, first, o.done)
		}
		return o.serr, false
	}

	pool := NewDecoderPool(dec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := newRes(pool)
			defer func() { res.sc.dec.Release() }() // res is reassigned after a timeout
			for !stop.Load() {
				if ctx.Err() != nil {
					// Cancellation is observed at shard boundaries; the
					// committed prefix survives as a partial result.
					stop.Store(true)
					return
				}
				sh := int(nextShard.Add(1) - 1)
				if sh >= numShards {
					return
				}
				first := start + sh*shardBlocks
				if first >= fr.Limit() {
					// Nothing at or past a failed shard can ever commit.
					return
				}
				end := first + shardBlocks
				if end > totalBlocks {
					end = totalBlocks
				}
				serr, timedOut := attempt(res, sh, first, end, cfg.Decoder.String())
				if timedOut {
					res = newRes(pool)
					mu.Lock()
					toBlocks += end - first
					mu.Unlock()
				}
				if serr != nil {
					for _, k := range cfg.Fallback {
						fp := fallbackPool(k)
						if fp == nil {
							continue
						}
						// Each fallback attempt gets its own shardRes so a
						// timed-out attempt can be abandoned without
						// poisoning the next one. The retry is exactly the
						// primary's work — same seed, same firstBlock — so
						// a rescued shard is bit-identical to a healthy one
						// decoded by the fallback from the start.
						fres := newRes(fp)
						ferr, fTimedOut := attempt(fres, sh, first, end, k.String())
						if !fTimedOut {
							fres.sc.dec.Release()
						}
						if ferr == nil {
							mu.Lock()
							if timedOut {
								dgBlocks += end - first
							} else {
								fbBlocks += end - first
							}
							mu.Unlock()
							serr = nil
							break
						}
					}
				}
				if serr != nil {
					mu.Lock()
					serrs = append(serrs, *serr)
					mu.Unlock()
					fr.Quarantine(first)
					continue
				}
				tryCommit()
			}
		}()
	}
	wg.Wait()
	tryCommit()
	mu.Lock()
	defer mu.Unlock()
	sort.Slice(serrs, func(i, j int) bool { return serrs[i].FirstBlock < serrs[j].FirstBlock })
	memoH, memoM := pool.MemoStats()
	//fpnvet:orderless commutative sum of per-pool counters; order cannot affect the total
	for _, fp := range fbPools {
		if fp != nil {
			h, m := fp.MemoStats()
			memoH += h
			memoM += m
		}
	}
	p := fr.State()
	finalized := fr.Finalized()
	return engineOut{
		blocks:         p.Blocks,
		shots:          p.Shots,
		errs:           p.Errors,
		early:          finalized,
		interrupted:    ctx.Err() != nil && !finalized && p.Blocks < totalBlocks,
		fallbackBlocks: fbBlocks,
		timeoutBlocks:  toBlocks,
		degradedBlocks: dgBlocks,
		shardErrs:      serrs,
		memoHits:       memoH,
		memoMisses:     memoM,
	}
}

// stopSatisfied evaluates the early-stop criteria on the committed
// prefix. The CI criterion requires at least one observed error so that
// deep-BER points (whose whole purpose is resolving a tiny rate) run
// their full shot budget instead of stopping on an empty estimate.
func stopSatisfied(cfg Config, errs, shots int) bool {
	return stopCriteria(cfg.TargetErrors, cfg.MaxCI, errs, shots)
}

// shotCounter is one worker's decode-and-count state. The detector-bit
// closure is built once per worker and reads the mutable (res, shot)
// fields, so the per-shot loop allocates nothing.
type shotCounter struct {
	c    *circuit.Circuit
	dec  *PooledDecoder
	res  *sim.Result
	shot int
	bit  func(int) bool
}

func (sc *shotCounter) detectorBit(d int) bool { return sc.res.DetectorBit(d, sc.shot) }

// countShots decodes shots lanes starting at laneLo of the current
// sampled shard and counts logical errors. A decoding failure counts as
// a logical error, as before — including matching panics that the
// decoder package recovers into errors at its Decode boundary. Callers
// hand it exactly one 64-shot block at a time (laneLo is 64-aligned,
// shots ≤ 64), which is what lets it route whole blocks through the
// batch seam when the pooled decoder has one; the scalar loop below is
// the fallback and the bit-identity reference.
func (sc *shotCounter) countShots(laneLo, shots int) int {
	if laneLo%blockShots == 0 && shots <= blockShots {
		if errs, ok := sc.dec.DecodeBlock(sc.res, laneLo, shots); ok {
			return errs
		}
	}
	errs := 0
	for sc.shot = laneLo; sc.shot < laneLo+shots; sc.shot++ {
		corr, err := sc.dec.Decode(sc.bit)
		if err != nil {
			errs++
			continue
		}
		for o := range sc.c.Observables {
			if corr[o] != sc.res.ObservableBit(o, sc.shot) {
				errs++
				break
			}
		}
	}
	return errs
}

// Sweep caches pipelines across the points of a figure: all (decoder,
// basis, p) points sharing a (code, arch) or (code, schedule) pair
// reuse one network/schedule/round-plan build. Safe for concurrent use.
type Sweep struct {
	mu    sync.Mutex
	pipes map[sweepKey]*Pipeline
}

type sweepKey struct {
	code  *css.Code
	sched *schedule.Schedule
	arch  fpn.Options
}

// NewSweep returns an empty pipeline cache.
func NewSweep() *Sweep { return &Sweep{pipes: map[sweepKey]*Pipeline{}} }

// Run behaves like the package-level Run but reuses the cached
// p-independent artifacts for cfg's (code, arch, schedule) triple.
func (sw *Sweep) Run(cfg Config) (*Result, error) {
	return sw.RunContext(context.Background(), cfg)
}

// RunContext is Run under a context; see Pipeline.RunContext for the
// cancellation contract.
func (sw *Sweep) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	pl, err := sw.pipeline(cfg)
	if err != nil {
		return nil, err
	}
	return pl.RunContext(ctx, cfg)
}

func (sw *Sweep) pipeline(cfg Config) (*Pipeline, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("experiment: Config.Code is nil")
	}
	key := sweepKey{code: cfg.Code, sched: cfg.Schedule, arch: cfg.Arch}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if pl, ok := sw.pipes[key]; ok {
		return pl, nil
	}
	var pl *Pipeline
	var err error
	if cfg.Schedule != nil {
		pl, err = NewPipelineFromSchedule(cfg.Code, cfg.Schedule)
	} else {
		pl, err = NewPipeline(cfg.Code, cfg.Arch)
	}
	if err != nil {
		return nil, err
	}
	sw.pipes[key] = pl
	return pl, nil
}

// PointSeed derives a statistically independent base seed for one sweep
// point from the run's base seed and the point's identity, using the
// same splitmix64 mixer as the shard engine. Sweep drivers must not
// pass one base seed verbatim to every point: the points would share
// identical RNG streams and their estimates would be correlated.
func PointSeed(base int64, fig string, dec DecoderKind, basis css.Basis, p float64) int64 {
	return seedmix.Derive(base, seedmix.String(fig), uint64(dec), uint64(basis), seedmix.Float(p))
}
