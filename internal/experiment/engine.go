// Sharded streaming Monte-Carlo engine. A run's shots are split into
// fixed 64-shot sampling blocks (one bit-packed word each); workers
// claim shards — contiguous runs of blocks — from an atomic counter and
// own each shard end-to-end: simulate, decode, count. A shard is
// sampled in one multi-word pass, but every block inside it consumes
// its own RNG stream seeded seedmix.Derive(cfg.Seed, blockIndex), so
// the sampled error stream of a block depends only on (circuit, base
// seed, block index) and the run's outcome is bit-identical for any
// worker count and any shard size. Peak memory is O(workers ×
// shardShots × detectors) instead of the former O(shots × detectors).
//
// Early stopping is deterministic too: block results are committed
// strictly in block order, and the stop criteria (target logical-error
// count, Wilson CI half-width) are evaluated only against the committed
// prefix. Blocks simulated past the stop point are discarded, so the
// reported (Shots, LogicalErrors) pair does not depend on scheduling.
package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/seedmix"
	"github.com/fpn/flagproxy/internal/sim"
)

// blockShots is the atomic sampling unit: one bit-packed word. RNG
// seeds are derived per block, never per shard, so shard size is a pure
// scheduling knob with no statistical footprint.
const blockShots = 64

// defaultShardShots is the work-claiming granularity when
// Config.ShardShots is zero: large enough to amortize the claim and
// commit synchronization, small enough to load-balance tail shards.
const defaultShardShots = 1024

// Pipeline caches the p-independent artifacts of a memory experiment —
// the FPN network, the schedule and the lowered round plan — so a sweep
// over p-points and bases pays the architecture and scheduling cost
// once. Pipelines are safe for concurrent Run calls.
type Pipeline struct {
	Code  *css.Code
	Arch  fpn.Options
	Net   *fpn.Network
	Sched *schedule.Schedule
	Plan  *schedule.RoundPlan
}

// NewPipeline builds the network, greedy schedule and round plan for
// (code, arch) once, for reuse across many Run configurations.
func NewPipeline(code *css.Code, arch fpn.Options) (*Pipeline, error) {
	net, err := fpn.Build(code, arch)
	if err != nil {
		return nil, err
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		return nil, err
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Code: code, Arch: arch, Net: net, Sched: s, Plan: plan}, nil
}

// NewPipelineFromSchedule wraps an externally built schedule (e.g. the
// canonical rotated-surface-code ordering) in a reusable pipeline. The
// schedule's network must have been built for code.
func NewPipelineFromSchedule(code *css.Code, s *schedule.Schedule) (*Pipeline, error) {
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Code: code, Net: s.Net, Sched: s, Plan: plan}, nil
}

// Run executes the p-dependent tail of the pipeline — circuit, detector
// error model, decoder — and samples cfg.Shots shots with the sharded
// engine. cfg.Code, cfg.Arch and cfg.Schedule are ignored in favor of
// the pipeline's cached artifacts (cfg.Code must match pl.Code).
func (pl *Pipeline) Run(cfg Config) (*Result, error) {
	cfg.Code = pl.Code
	cfg.Schedule = pl.Sched
	if err := validate(cfg); err != nil {
		return nil, err
	}
	if cfg.CodeCapacity {
		cfg.Rounds = 1
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = cfg.Code.DX
		if cfg.Code.DZ < cfg.Rounds {
			cfg.Rounds = cfg.Code.DZ
		}
		if cfg.Rounds < 1 {
			return nil, fmt.Errorf("experiment: code has no distance metadata; set Rounds")
		}
	}
	nm := &noise.Model{P: cfg.P, FixedIdle: cfg.FixedIdle}
	var c *circuit.Circuit
	var err error
	if cfg.CodeCapacity {
		c, err = circuit.BuildCodeCapacity(pl.Plan, cfg.Basis, cfg.P)
	} else {
		c, err = circuit.BuildMemory(circuit.MemorySpec{Plan: pl.Plan, Basis: cfg.Basis, Rounds: cfg.Rounds, Noise: nm})
	}
	if err != nil {
		return nil, err
	}
	model, err := dem.Extract(c)
	if err != nil {
		return nil, err
	}
	dec, err := newDecoder(cfg.Decoder, model, cfg.Basis, nm.MeasFlip())
	if err != nil {
		return nil, err
	}
	shots, errors, early := runEngine(c, dec, cfg)
	lo, hi := wilson(errors, shots)
	ber := float64(errors) / float64(shots)
	return &Result{
		Config:        cfg,
		Net:           pl.Net,
		LatencyNs:     pl.Plan.LatencyNs,
		Shots:         shots,
		LogicalErrors: errors,
		BER:           ber,
		BERNorm:       ber / float64(cfg.Code.K),
		CILow:         lo,
		CIHigh:        hi,
		EarlyStopped:  early,
	}, nil
}

// validate rejects configurations that would previously have poisoned a
// sweep silently: Shots <= 0 used to divide 0/0 into a NaN BER, and
// K <= 0 turned BERNorm into ±Inf.
func validate(cfg Config) error {
	if cfg.Code == nil {
		return fmt.Errorf("experiment: Config.Code is nil")
	}
	if cfg.Shots <= 0 {
		return fmt.Errorf("experiment: Shots must be positive (got %d)", cfg.Shots)
	}
	if cfg.Code.K <= 0 {
		return fmt.Errorf("experiment: code %q has k=%d logical qubits, BER_norm = BER/k is undefined (missing rank/distance metadata?)", cfg.Code.Name, cfg.Code.K)
	}
	if cfg.TargetErrors < 0 {
		return fmt.Errorf("experiment: TargetErrors must be >= 0 (got %d)", cfg.TargetErrors)
	}
	if cfg.MaxCI < 0 || cfg.MaxCI >= 1 {
		return fmt.Errorf("experiment: MaxCI must be in [0, 1) (got %g)", cfg.MaxCI)
	}
	if cfg.ShardShots < 0 {
		return fmt.Errorf("experiment: ShardShots must be >= 0 (got %d)", cfg.ShardShots)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("experiment: Workers must be >= 0 (got %d)", cfg.Workers)
	}
	return nil
}

// DecoderPool shares one immutable decoder across worker goroutines
// while giving each worker a private decoder.DecodeScratch, so the
// steady-state decode loop stays allocation-free without any locking.
// Decoders built by this package (NewMWPM, NewRestriction, NewUnionFind,
// NewBPOSD) are read-only after construction and safe to share; all
// per-shot mutable state lives in the scratch.
type DecoderPool struct {
	dec     Decoder
	scratch decoder.ScratchDecoder // non-nil iff dec supports scratch decoding
	free    sync.Pool              // *decoder.DecodeScratch
}

// NewDecoderPool wraps dec. Decoders implementing
// decoder.ScratchDecoder get per-worker scratch arenas; anything else
// falls back to plain Decode.
func NewDecoderPool(dec Decoder) *DecoderPool {
	p := &DecoderPool{dec: dec}
	if sd, ok := dec.(decoder.ScratchDecoder); ok {
		p.scratch = sd
		p.free.New = func() any { return decoder.NewScratch() }
	}
	return p
}

// Get borrows a worker-local handle. The handle is not safe for
// concurrent use; call Release when the worker is done so the scratch
// (and its warmed buffers) returns to the pool.
func (p *DecoderPool) Get() *PooledDecoder {
	d := &PooledDecoder{pool: p}
	if p.scratch != nil {
		d.sc = p.free.Get().(*decoder.DecodeScratch)
	}
	return d
}

// PooledDecoder is one worker's view of a DecoderPool: the shared
// immutable decoder plus a private scratch arena.
type PooledDecoder struct {
	pool *DecoderPool
	sc   *decoder.DecodeScratch
}

// Decode routes through the zero-allocation DecodeWith hot path when
// the pooled decoder supports it.
func (d *PooledDecoder) Decode(bit func(int) bool) ([]bool, error) {
	if d.sc != nil {
		return d.pool.scratch.DecodeWith(d.sc, bit)
	}
	return d.pool.dec.Decode(bit)
}

// Release returns the scratch to the pool for the next worker.
func (d *PooledDecoder) Release() {
	if d.sc != nil {
		d.pool.free.Put(d.sc)
		d.sc = nil
	}
}

// runEngine is the sharded simulate→decode→count loop. It returns the
// committed shot count (== cfg.Shots unless early stopping fired), the
// committed logical-error count, and whether a stop criterion fired.
func runEngine(c *circuit.Circuit, dec Decoder, cfg Config) (shots, logical int, early bool) {
	totalBlocks := (cfg.Shots + blockShots - 1) / blockShots
	shardShots := cfg.ShardShots
	if shardShots <= 0 {
		shardShots = defaultShardShots
	}
	shardBlocks := (shardShots + blockShots - 1) / blockShots
	numShards := (totalBlocks + shardBlocks - 1) / shardBlocks
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}
	blockLen := func(b int) int {
		if n := cfg.Shots - b*blockShots; n < blockShots {
			return n
		}
		return blockShots
	}

	// blockErrs[b] holds the block's logical-error count + 1 once the
	// block is done; 0 means pending.
	blockErrs := make([]int32, totalBlocks)
	var (
		nextShard atomic.Int64
		stop      atomic.Bool

		mu        sync.Mutex
		committed int // blocks committed, in strict block order
		comShots  int
		comErrs   int
		finalized bool // a stop criterion fired; commits are frozen
	)
	tryCommit := func() {
		mu.Lock()
		defer mu.Unlock()
		for !finalized && committed < totalBlocks {
			v := atomic.LoadInt32(&blockErrs[committed])
			if v == 0 {
				return
			}
			comErrs += int(v - 1)
			comShots += blockLen(committed)
			committed++
			if comShots < cfg.Shots && stopSatisfied(cfg, comErrs, comShots) {
				finalized = true
				stop.Store(true)
			}
		}
	}

	pool := NewDecoderPool(dec)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			smp := sim.NewBlockSampler(c, shardBlocks)
			sc := shotCounter{c: c, dec: pool.Get()}
			defer sc.dec.Release()
			sc.bit = sc.detectorBit // one closure per worker, not per shot
			for !stop.Load() {
				sh := int(nextShard.Add(1) - 1)
				if sh >= numShards {
					return
				}
				first := sh * shardBlocks
				end := first + shardBlocks
				if end > totalBlocks {
					end = totalBlocks
				}
				// One multi-word pass samples the whole shard; each
				// 64-shot word still consumes its own Derive(seed,
				// block) stream, so batching is invisible to results.
				shardLen := blockLen(end-1) + (end-first-1)*blockShots
				sc.res = smp.Run(first, shardLen, cfg.Seed)
				for b := first; b < end && !stop.Load(); b++ {
					n := sc.countShots((b-first)*blockShots, blockLen(b))
					atomic.StoreInt32(&blockErrs[b], int32(n)+1)
				}
				tryCommit()
			}
		}()
	}
	wg.Wait()
	tryCommit()
	return comShots, comErrs, finalized
}

// stopSatisfied evaluates the early-stop criteria on the committed
// prefix. The CI criterion requires at least one observed error so that
// deep-BER points (whose whole purpose is resolving a tiny rate) run
// their full shot budget instead of stopping on an empty estimate.
func stopSatisfied(cfg Config, errs, shots int) bool {
	if cfg.TargetErrors > 0 && errs >= cfg.TargetErrors {
		return true
	}
	if cfg.MaxCI > 0 && errs > 0 {
		lo, hi := wilson(errs, shots)
		if (hi-lo)/2 <= cfg.MaxCI {
			return true
		}
	}
	return false
}

// shotCounter is one worker's decode-and-count state. The detector-bit
// closure is built once per worker and reads the mutable (res, shot)
// fields, so the per-shot loop allocates nothing.
type shotCounter struct {
	c    *circuit.Circuit
	dec  *PooledDecoder
	res  *sim.Result
	shot int
	bit  func(int) bool
}

func (sc *shotCounter) detectorBit(d int) bool { return sc.res.DetectorBit(d, sc.shot) }

// countShots decodes shots lanes starting at laneLo of the current
// sampled shard and counts logical errors. A decoding failure counts as
// a logical error, as before.
func (sc *shotCounter) countShots(laneLo, shots int) int {
	errs := 0
	for sc.shot = laneLo; sc.shot < laneLo+shots; sc.shot++ {
		corr, err := sc.dec.Decode(sc.bit)
		if err != nil {
			errs++
			continue
		}
		for o := range sc.c.Observables {
			if corr[o] != sc.res.ObservableBit(o, sc.shot) {
				errs++
				break
			}
		}
	}
	return errs
}

// Sweep caches pipelines across the points of a figure: all (decoder,
// basis, p) points sharing a (code, arch) or (code, schedule) pair
// reuse one network/schedule/round-plan build. Safe for concurrent use.
type Sweep struct {
	mu    sync.Mutex
	pipes map[sweepKey]*Pipeline
}

type sweepKey struct {
	code  *css.Code
	sched *schedule.Schedule
	arch  fpn.Options
}

// NewSweep returns an empty pipeline cache.
func NewSweep() *Sweep { return &Sweep{pipes: map[sweepKey]*Pipeline{}} }

// Run behaves like the package-level Run but reuses the cached
// p-independent artifacts for cfg's (code, arch, schedule) triple.
func (sw *Sweep) Run(cfg Config) (*Result, error) {
	pl, err := sw.pipeline(cfg)
	if err != nil {
		return nil, err
	}
	return pl.Run(cfg)
}

func (sw *Sweep) pipeline(cfg Config) (*Pipeline, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("experiment: Config.Code is nil")
	}
	key := sweepKey{code: cfg.Code, sched: cfg.Schedule, arch: cfg.Arch}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if pl, ok := sw.pipes[key]; ok {
		return pl, nil
	}
	var pl *Pipeline
	var err error
	if cfg.Schedule != nil {
		pl, err = NewPipelineFromSchedule(cfg.Code, cfg.Schedule)
	} else {
		pl, err = NewPipeline(cfg.Code, cfg.Arch)
	}
	if err != nil {
		return nil, err
	}
	sw.pipes[key] = pl
	return pl, nil
}

// PointSeed derives a statistically independent base seed for one sweep
// point from the run's base seed and the point's identity, using the
// same splitmix64 mixer as the shard engine. Sweep drivers must not
// pass one base seed verbatim to every point: the points would share
// identical RNG streams and their estimates would be correlated.
func PointSeed(base int64, fig string, dec DecoderKind, basis css.Basis, p float64) int64 {
	return seedmix.Derive(base, seedmix.String(fig), uint64(dec), uint64(basis), seedmix.Float(p))
}
