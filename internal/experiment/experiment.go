// Package experiment runs the paper's memory experiments (§III-C): a
// code is held for d syndrome-extraction rounds under circuit-level
// noise, the syndrome history is decoded, and the block error rate
// BER (and BER_norm = BER/k) is estimated over many shots.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/sim"
)

// DecoderKind selects the decoding algorithm.
type DecoderKind int

// Decoder kinds.
const (
	FlaggedMWPM DecoderKind = iota
	PlainMWPM               // PyMatching stand-in: ignores flag information
	FlaggedRestriction
	BaselineRestriction // Chamberland-style: flags only in the matching stage
	FlaggedUnionFind    // fast approximate decoder with flag-conditioned frames
	BPOSD               // belief propagation + OSD-0 on the detector error model
)

func (k DecoderKind) String() string {
	switch k {
	case FlaggedMWPM:
		return "flagged-mwpm"
	case PlainMWPM:
		return "plain-mwpm"
	case FlaggedRestriction:
		return "flagged-restriction"
	case BaselineRestriction:
		return "baseline-restriction"
	case FlaggedUnionFind:
		return "flagged-unionfind"
	case BPOSD:
		return "bp-osd"
	}
	return "unknown"
}

// Config describes one memory experiment.
type Config struct {
	Code    *css.Code
	Arch    fpn.Options
	Basis   css.Basis // memory basis
	Rounds  int       // 0 → min(dX, dZ)
	P       float64
	Shots   int
	Seed    int64
	Decoder DecoderKind
	// CodeCapacity switches to the code-capacity noise model: one
	// perfect syndrome-extraction round after independent depolarizing
	// noise on the data qubits (Rounds is ignored).
	CodeCapacity bool
	// Schedule, when non-nil, overrides the greedy scheduler (e.g. the
	// canonical rotated-surface-code ordering). Its network must have
	// been built for Code with options equivalent to Arch.
	Schedule *schedule.Schedule
	// FixedIdle selects the prior-work decoherence convention (flat p
	// per round) instead of the paper's latency-scaled T1/T2 model.
	FixedIdle bool
}

// Result is the outcome of a memory experiment.
type Result struct {
	Config        Config
	Net           *fpn.Network
	LatencyNs     float64
	Shots         int
	LogicalErrors int
	BER           float64
	BERNorm       float64
	CILow, CIHigh float64 // Wilson 95% interval on BER
}

// Run executes the full pipeline: architecture, schedule, circuit,
// detector error model, sampling and decoding.
func Run(cfg Config) (*Result, error) {
	if cfg.CodeCapacity {
		cfg.Rounds = 1
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = cfg.Code.DX
		if cfg.Code.DZ < cfg.Rounds {
			cfg.Rounds = cfg.Code.DZ
		}
		if cfg.Rounds < 1 {
			return nil, fmt.Errorf("experiment: code has no distance metadata; set Rounds")
		}
	}
	var net *fpn.Network
	var s *schedule.Schedule
	if cfg.Schedule != nil {
		s = cfg.Schedule
		net = s.Net
	} else {
		var err error
		net, err = fpn.Build(cfg.Code, cfg.Arch)
		if err != nil {
			return nil, err
		}
		s, err = schedule.Greedy(net)
		if err != nil {
			return nil, err
		}
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		return nil, err
	}
	nm := &noise.Model{P: cfg.P, FixedIdle: cfg.FixedIdle}
	var c *circuit.Circuit
	if cfg.CodeCapacity {
		c, err = circuit.BuildCodeCapacity(plan, cfg.Basis, cfg.P)
	} else {
		c, err = circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: cfg.Basis, Rounds: cfg.Rounds, Noise: nm})
	}
	if err != nil {
		return nil, err
	}
	model, err := dem.Extract(c)
	if err != nil {
		return nil, err
	}
	dec, err := newDecoder(cfg.Decoder, model, cfg.Basis, nm.MeasFlip())
	if err != nil {
		return nil, err
	}
	res := sim.Run(c, cfg.Shots, cfg.Seed)
	// Decode shots in parallel: the decoders share only read-only state
	// across Decode calls.
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Shots {
		workers = cfg.Shots
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for shot := w; shot < cfg.Shots; shot += workers {
				corr, err := dec.Decode(func(d int) bool { return res.DetectorBit(d, shot) })
				if err != nil {
					// A decoding failure counts as a logical error.
					counts[w]++
					continue
				}
				for o := range c.Observables {
					if corr[o] != res.ObservableBit(o, shot) {
						counts[w]++
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	errors := 0
	for _, n := range counts {
		errors += n
	}
	ber := float64(errors) / float64(cfg.Shots)
	lo, hi := wilson(errors, cfg.Shots)
	return &Result{
		Config:        cfg,
		Net:           net,
		LatencyNs:     plan.LatencyNs,
		Shots:         cfg.Shots,
		LogicalErrors: errors,
		BER:           ber,
		BERNorm:       ber / float64(cfg.Code.K),
		CILow:         lo,
		CIHigh:        hi,
	}, nil
}

// Decoder is the common decode interface of both decoder families.
type Decoder interface {
	Decode(func(int) bool) ([]bool, error)
}

func newDecoder(kind DecoderKind, model *dem.Model, basis css.Basis, pM float64) (Decoder, error) {
	switch kind {
	case FlaggedMWPM:
		return decoder.NewMWPM(model, basis, pM, true)
	case PlainMWPM:
		return decoder.NewMWPM(model, basis, pM, false)
	case FlaggedRestriction:
		return decoder.NewRestriction(model, basis, pM, true, true)
	case BaselineRestriction:
		return decoder.NewRestriction(model, basis, pM, true, false)
	case FlaggedUnionFind:
		return decoder.NewUnionFind(model, basis, pM, true)
	case BPOSD:
		return decoder.NewBPOSD(model, basis, 30)
	}
	return nil, fmt.Errorf("experiment: unknown decoder kind %d", kind)
}

// wilson returns the 95% Wilson score interval for k successes in n
// trials.
func wilson(k, n int) (float64, float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi := center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
