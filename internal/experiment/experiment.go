// Package experiment runs the paper's memory experiments (§III-C): a
// code is held for d syndrome-extraction rounds under circuit-level
// noise, the syndrome history is decoded, and the block error rate
// BER (and BER_norm = BER/k) is estimated over many shots.
package experiment

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
)

// DecoderKind selects the decoding algorithm.
type DecoderKind int

// Decoder kinds.
const (
	FlaggedMWPM DecoderKind = iota
	PlainMWPM               // PyMatching stand-in: ignores flag information
	FlaggedRestriction
	BaselineRestriction // Chamberland-style: flags only in the matching stage
	FlaggedUnionFind    // fast approximate decoder with flag-conditioned frames
	BPOSD               // belief propagation + OSD-0 on the detector error model
)

func (k DecoderKind) String() string {
	switch k {
	case FlaggedMWPM:
		return "flagged-mwpm"
	case PlainMWPM:
		return "plain-mwpm"
	case FlaggedRestriction:
		return "flagged-restriction"
	case BaselineRestriction:
		return "baseline-restriction"
	case FlaggedUnionFind:
		return "flagged-unionfind"
	case BPOSD:
		return "bp-osd"
	}
	return "unknown"
}

// Config describes one memory experiment.
type Config struct {
	Code    *css.Code
	Arch    fpn.Options
	Basis   css.Basis // memory basis
	Rounds  int       // 0 → min(dX, dZ)
	P       float64
	Shots   int
	Seed    int64
	Decoder DecoderKind
	// CodeCapacity switches to the code-capacity noise model: one
	// perfect syndrome-extraction round after independent depolarizing
	// noise on the data qubits (Rounds is ignored).
	CodeCapacity bool
	// Schedule, when non-nil, overrides the greedy scheduler (e.g. the
	// canonical rotated-surface-code ordering). Its network must have
	// been built for Code with options equivalent to Arch.
	Schedule *schedule.Schedule
	// FixedIdle selects the prior-work decoherence convention (flat p
	// per round) instead of the paper's latency-scaled T1/T2 model.
	FixedIdle bool

	// Workers bounds the shard workers (0 → GOMAXPROCS). The result is
	// bit-identical for any worker count.
	//fpnvet:sched parallelism only reshapes scheduling; shard seeding fixes the streams
	Workers int
	// ShardShots is the work-claiming granularity in shots (0 → 1024,
	// rounded up to whole 64-shot blocks). Purely a scheduling knob:
	// RNG streams are derived per 64-shot block, so the result is
	// bit-identical for any shard size.
	//fpnvet:sched shard size only regroups blocks; per-block seeding fixes the streams
	ShardShots int
	// TargetErrors, when > 0, stops the run once the committed logical
	// error count reaches it — the standard deep-BER trick: spend shots
	// where errors are rare, not where they are plentiful.
	TargetErrors int
	// MaxCI, when > 0, stops the run once the Wilson 95% CI half-width
	// of the committed BER estimate drops to it or below. It only
	// fires after at least one logical error has been committed, so
	// zero-error deep points still run their full shot budget.
	MaxCI float64

	// Resume, when non-nil, restarts the run from a previously
	// committed prefix (see the Resume type). The continuation is
	// bit-identical to a run that was never interrupted.
	//fpnvet:sched resume wiring consumes fingerprints, it must not change them
	Resume *Resume
	// Fallback lists decoder kinds to retry a shard with, in order,
	// when the primary decoder panics on it (graceful degradation, e.g.
	// BPOSD→MWPM). A rescued shard's blocks are decoded by the fallback
	// — Result.FallbackBlocks counts them — so the run completes at the
	// cost of mixed-decoder statistics on those blocks. Shards that
	// exhaust the chain are quarantined as ShardErrors.
	//fpnvet:sched fallback policy only reacts to decoder construction failure
	Fallback []DecoderKind
	// DecodeTimeout, when > 0, bounds the wall-clock time of one shard
	// attempt (sample + decode + count). A shard whose primary decoder
	// hangs or crawls past the deadline is abandoned and retried
	// deterministically — same seed, same firstBlock — under the
	// Fallback chain, each attempt under the same deadline, exactly
	// like the panic path; without it a hung decoder stalls the sweep
	// forever because nothing ever panics. Timed-out shards are counted
	// in Result.TimeoutBlocks (and DegradedBlocks when a fallback
	// rescues them); shards that exhaust the chain are quarantined as
	// ShardErrors with Timeout set. Size it generously — hundreds of
	// times the expected shard latency — so only a genuinely wedged
	// decoder trips it.
	//fpnvet:sched deadlines only reroute shards through the fallback chain; rescued blocks are explicitly counted in TimeoutBlocks/DegradedBlocks, never silent
	DecodeTimeout time.Duration
	// WrapDecoder, when non-nil, wraps every decoder the engine builds
	// (primary and fallback) before use. It exists for the chaos
	// harness and tests to inject faulty decoders through the public
	// API; production sweeps leave it nil.
	//fpnvet:sched fault-injection seam for the chaos harness; production sweeps leave it nil
	WrapDecoder func(kind DecoderKind, dec Decoder) Decoder
	// ScalarDecode forces the per-shot scalar decode loop even for
	// decoders with a batch path. The batch path is a pure execution
	// strategy — bit-identical to scalar by construction — so this knob
	// exists for differential tests and performance comparisons, not for
	// changing results.
	//fpnvet:sched batch/scalar selection is an execution strategy; counts are bit-identical (enforced by the engine differential tests)
	ScalarDecode bool
	// OnCommit, when non-nil, is invoked with a snapshot of the
	// committed prefix each time the commit frontier advances. Every
	// snapshot is block-aligned and therefore a valid Resume point —
	// this is the checkpointing hook. It is called with the engine's
	// commit lock held: keep it fast and do not call back into the run.
	//fpnvet:sched progress callback; observes results without affecting them
	OnCommit func(Progress)
}

// Result is the outcome of a memory experiment.
type Result struct {
	Config        Config
	Net           *fpn.Network
	LatencyNs     float64
	Shots         int
	LogicalErrors int
	BER           float64
	BERNorm       float64
	CILow, CIHigh float64 // Wilson 95% interval on BER
	// EarlyStopped reports that TargetErrors or MaxCI halted the run
	// before cfg.Shots; Shots then holds the committed count.
	EarlyStopped bool
	// Blocks is the committed 64-shot block count (including a resumed
	// prefix); Resume{Blocks, Shots, LogicalErrors} continues this run.
	Blocks int
	// Interrupted reports that the context was cancelled before the run
	// finished; Shots/LogicalErrors hold the committed prefix, which is
	// a valid Resume point.
	Interrupted bool
	// FallbackBlocks counts blocks whose shard panicked under the
	// primary decoder and was rescued by the Fallback chain.
	FallbackBlocks int
	// TimeoutBlocks counts blocks whose shard's primary decode attempt
	// exceeded Config.DecodeTimeout, whether or not a fallback later
	// rescued the shard. Nonzero TimeoutBlocks means wall-clock
	// pressure changed the decoding schedule: investigate before
	// trusting cross-run bit-identity.
	TimeoutBlocks int
	// DegradedBlocks counts blocks committed from a fallback decoder
	// after the primary timed out — the graceful-degradation analogue
	// of FallbackBlocks for the deadline path. The run completed, but
	// these blocks carry mixed-decoder statistics.
	DegradedBlocks int
	// ShardErrors lists shards quarantined after a panic or deadline
	// expiry that no fallback decoder could rescue, in block order. The
	// run's result is then the committed prefix before the first failed
	// shard.
	ShardErrors []ShardError
	// MemoHits and MemoMisses aggregate the batch-decode syndrome-memo
	// counters across all worker scratches (best effort: a scratch
	// deliberately leaked to a timed-out attempt keeps its counts).
	// Zero on the scalar path. Diagnostics only — they have no
	// statistical footprint.
	MemoHits, MemoMisses int64
}

// Run executes the full pipeline: architecture, schedule, circuit,
// detector error model, sharded sampling and decoding. Sweeps that
// revisit a (code, arch) or (code, schedule) pair should use a Sweep
// (or hold a Pipeline) to reuse the p-independent artifacts.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: cancellation is observed at shard
// boundaries and the committed prefix is returned as a partial Result
// with Interrupted set instead of being discarded.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	var pl *Pipeline
	var err error
	if cfg.Schedule != nil {
		pl, err = NewPipelineFromSchedule(cfg.Code, cfg.Schedule)
	} else {
		pl, err = NewPipeline(cfg.Code, cfg.Arch)
	}
	if err != nil {
		return nil, err
	}
	return pl.RunContext(ctx, cfg)
}

// Reconstruct rebuilds the statistical fields of a Result from a
// committed (shots, logicalErrors) pair — e.g. a checkpoint record of a
// finished point — without rerunning anything. Net and LatencyNs are
// left zero; everything derivable from the counts (BER, BERNorm, the
// Wilson interval) matches what the original run reported.
func Reconstruct(cfg Config, blocks, shots, logicalErrors int, earlyStopped bool) *Result {
	ber := 0.0
	if shots > 0 {
		ber = float64(logicalErrors) / float64(shots)
	}
	berNorm := 0.0
	if cfg.Code != nil && cfg.Code.K > 0 {
		berNorm = ber / float64(cfg.Code.K)
	}
	lo, hi := wilson(logicalErrors, shots)
	return &Result{
		Config: cfg, Shots: shots, Blocks: blocks, LogicalErrors: logicalErrors,
		BER: ber, BERNorm: berNorm, CILow: lo, CIHigh: hi, EarlyStopped: earlyStopped,
	}
}

// Decoder is the common decode interface of both decoder families.
type Decoder interface {
	Decode(func(int) bool) ([]bool, error)
}

func newDecoder(kind DecoderKind, model *dem.Model, basis css.Basis, pM float64) (Decoder, error) {
	switch kind {
	case FlaggedMWPM:
		return decoder.NewMWPM(model, basis, pM, true)
	case PlainMWPM:
		return decoder.NewMWPM(model, basis, pM, false)
	case FlaggedRestriction:
		return decoder.NewRestriction(model, basis, pM, true, true)
	case BaselineRestriction:
		return decoder.NewRestriction(model, basis, pM, true, false)
	case FlaggedUnionFind:
		return decoder.NewUnionFind(model, basis, pM, true)
	case BPOSD:
		return decoder.NewBPOSD(model, basis, 30)
	}
	return nil, fmt.Errorf("experiment: unknown decoder kind %d", kind)
}

// batchify lifts a freshly built decoder onto the 64-shot batch path
// when its kind supports it. BPOSD stays scalar: its per-shot cost is
// dominated by BP message passing whose amortization lives in the
// scratch, not in syndrome repetition, and keeping one decoder family
// on the scalar loop preserves a production consumer of that path.
func batchify(kind DecoderKind, dec Decoder) Decoder {
	if kind == BPOSD {
		return dec
	}
	if sd, ok := dec.(decoder.ScratchDecoder); ok {
		return decoder.NewBatch(sd)
	}
	return dec
}

// wilson returns the 95% Wilson score interval for k successes in n
// trials.
func wilson(k, n int) (float64, float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi := center-half, center+half
	// At the k=0 / k=n boundaries the exact bounds are 0 and 1, but
	// center∓half computes them as a difference of equal-magnitude terms
	// and can leave ~1e-17 of rounding residue on the wrong side of the
	// clamp; pin them so a zero-error prefix reports CILow == 0 exactly.
	if lo < 0 || k == 0 {
		lo = 0
	}
	if hi > 1 || k == n {
		hi = 1
	}
	return lo, hi
}
