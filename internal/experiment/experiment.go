// Package experiment runs the paper's memory experiments (§III-C): a
// code is held for d syndrome-extraction rounds under circuit-level
// noise, the syndrome history is decoded, and the block error rate
// BER (and BER_norm = BER/k) is estimated over many shots.
package experiment

import (
	"fmt"
	"math"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/decoder"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
)

// DecoderKind selects the decoding algorithm.
type DecoderKind int

// Decoder kinds.
const (
	FlaggedMWPM DecoderKind = iota
	PlainMWPM               // PyMatching stand-in: ignores flag information
	FlaggedRestriction
	BaselineRestriction // Chamberland-style: flags only in the matching stage
	FlaggedUnionFind    // fast approximate decoder with flag-conditioned frames
	BPOSD               // belief propagation + OSD-0 on the detector error model
)

func (k DecoderKind) String() string {
	switch k {
	case FlaggedMWPM:
		return "flagged-mwpm"
	case PlainMWPM:
		return "plain-mwpm"
	case FlaggedRestriction:
		return "flagged-restriction"
	case BaselineRestriction:
		return "baseline-restriction"
	case FlaggedUnionFind:
		return "flagged-unionfind"
	case BPOSD:
		return "bp-osd"
	}
	return "unknown"
}

// Config describes one memory experiment.
type Config struct {
	Code    *css.Code
	Arch    fpn.Options
	Basis   css.Basis // memory basis
	Rounds  int       // 0 → min(dX, dZ)
	P       float64
	Shots   int
	Seed    int64
	Decoder DecoderKind
	// CodeCapacity switches to the code-capacity noise model: one
	// perfect syndrome-extraction round after independent depolarizing
	// noise on the data qubits (Rounds is ignored).
	CodeCapacity bool
	// Schedule, when non-nil, overrides the greedy scheduler (e.g. the
	// canonical rotated-surface-code ordering). Its network must have
	// been built for Code with options equivalent to Arch.
	Schedule *schedule.Schedule
	// FixedIdle selects the prior-work decoherence convention (flat p
	// per round) instead of the paper's latency-scaled T1/T2 model.
	FixedIdle bool

	// Workers bounds the shard workers (0 → GOMAXPROCS). The result is
	// bit-identical for any worker count.
	Workers int
	// ShardShots is the work-claiming granularity in shots (0 → 1024,
	// rounded up to whole 64-shot blocks). Purely a scheduling knob:
	// RNG streams are derived per 64-shot block, so the result is
	// bit-identical for any shard size.
	ShardShots int
	// TargetErrors, when > 0, stops the run once the committed logical
	// error count reaches it — the standard deep-BER trick: spend shots
	// where errors are rare, not where they are plentiful.
	TargetErrors int
	// MaxCI, when > 0, stops the run once the Wilson 95% CI half-width
	// of the committed BER estimate drops to it or below. It only
	// fires after at least one logical error has been committed, so
	// zero-error deep points still run their full shot budget.
	MaxCI float64
}

// Result is the outcome of a memory experiment.
type Result struct {
	Config        Config
	Net           *fpn.Network
	LatencyNs     float64
	Shots         int
	LogicalErrors int
	BER           float64
	BERNorm       float64
	CILow, CIHigh float64 // Wilson 95% interval on BER
	// EarlyStopped reports that TargetErrors or MaxCI halted the run
	// before cfg.Shots; Shots then holds the committed count.
	EarlyStopped bool
}

// Run executes the full pipeline: architecture, schedule, circuit,
// detector error model, sharded sampling and decoding. Sweeps that
// revisit a (code, arch) or (code, schedule) pair should use a Sweep
// (or hold a Pipeline) to reuse the p-independent artifacts.
func Run(cfg Config) (*Result, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	var pl *Pipeline
	var err error
	if cfg.Schedule != nil {
		pl, err = NewPipelineFromSchedule(cfg.Code, cfg.Schedule)
	} else {
		pl, err = NewPipeline(cfg.Code, cfg.Arch)
	}
	if err != nil {
		return nil, err
	}
	return pl.Run(cfg)
}

// Decoder is the common decode interface of both decoder families.
type Decoder interface {
	Decode(func(int) bool) ([]bool, error)
}

func newDecoder(kind DecoderKind, model *dem.Model, basis css.Basis, pM float64) (Decoder, error) {
	switch kind {
	case FlaggedMWPM:
		return decoder.NewMWPM(model, basis, pM, true)
	case PlainMWPM:
		return decoder.NewMWPM(model, basis, pM, false)
	case FlaggedRestriction:
		return decoder.NewRestriction(model, basis, pM, true, true)
	case BaselineRestriction:
		return decoder.NewRestriction(model, basis, pM, true, false)
	case FlaggedUnionFind:
		return decoder.NewUnionFind(model, basis, pM, true)
	case BPOSD:
		return decoder.NewBPOSD(model, basis, 30)
	}
	return nil, fmt.Errorf("experiment: unknown decoder kind %d", kind)
}

// wilson returns the 95% Wilson score interval for k successes in n
// trials.
func wilson(k, n int) (float64, float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.96
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi := center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
