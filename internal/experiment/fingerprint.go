// Checkpoint fingerprints. A checkpoint record is only a valid resume
// point for the exact run that wrote it: same code, same architecture
// and schedule, same noise point, same seed, same stop criteria, and
// the same engine generation. Fingerprint folds all of that into one
// stable key so a stale or mismatched record can never be replayed into
// the wrong run — it simply won't be found.
package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"

	"github.com/fpn/flagproxy/internal/schedule"
)

// EngineVersion names the current result-affecting engine generation.
// Bump it whenever a change alters the bit-exact (Shots, LogicalErrors)
// stream of a configuration — seed derivation, block size, commit
// order, decoder semantics — so old checkpoints are orphaned instead of
// silently merged into runs they no longer match.
const EngineVersion = "fpn-engine/2"

// Fingerprint returns a stable hex key identifying every
// result-affecting field of the configuration plus EngineVersion.
// Scheduling knobs that are provably invisible to results — Workers,
// ShardShots — and the runtime hooks (Resume, OnCommit, Fallback) are
// deliberately excluded: a checkpoint taken at 4 workers must resume at
// 16.
func (cfg Config) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|basis=%c|rounds=%d|p=%.17g|shots=%d|seed=%d|dec=%s|cc=%t|fixedidle=%t|target=%d|maxci=%.17g|",
		EngineVersion, cfg.Basis, cfg.Rounds, cfg.P, cfg.Shots, cfg.Seed,
		cfg.Decoder, cfg.CodeCapacity, cfg.FixedIdle, cfg.TargetErrors, cfg.MaxCI)
	fmt.Fprintf(h, "arch=%+v|", cfg.Arch)
	hashCode(h, cfg)
	hashSchedule(h, cfg.Schedule)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// hashCode digests the code's full check structure, not just its name:
// two catalogue entries could share a label while differing in the
// stabilizers that determine every sampled syndrome.
func hashCode(h hash.Hash, cfg Config) {
	code := cfg.Code
	if code == nil {
		fmt.Fprint(h, "code=nil|")
		return
	}
	fmt.Fprintf(h, "code=%s n=%d k=%d dx=%d dz=%d checks=%d|", code.Name, code.N, code.K, code.DX, code.DZ, len(code.Checks))
	for _, c := range code.Checks {
		fmt.Fprintf(h, "%c%d:%v;", c.Basis, c.Color, c.Support)
	}
}

// hashSchedule digests an override schedule's window/phase structure;
// the CNOT ordering decides which fault propagations the circuit can
// exhibit, so two schedules over the same code are different runs.
func hashSchedule(h hash.Hash, s *schedule.Schedule) {
	if s == nil {
		fmt.Fprint(h, "sched=greedy|")
		return
	}
	fmt.Fprintf(h, "sched=override split=%t windows=%d phases=%d|", s.Split, len(s.Windows), len(s.Phases))
	for _, w := range s.Windows {
		fmt.Fprintf(h, "w%c f=%d p=%v c=%v d=%v;", w.Basis, w.Flag, w.Parities, w.Checks, w.Data)
	}
	for _, ph := range s.Phases {
		fmt.Fprintf(h, "ph%c steps=%d win=%v times=", ph.Basis, ph.Steps, ph.Windows)
		keys := make([]schedule.WD, 0, len(ph.Times))
		//fpnvet:orderless collect-then-sort: keys are sorted before hashing
		for k := range ph.Times {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].W != keys[j].W {
				return keys[i].W < keys[j].W
			}
			return keys[i].Q < keys[j].Q
		})
		for _, k := range keys {
			fmt.Fprintf(h, "%d.%d=%d,", k.W, k.Q, ph.Times[k])
		}
		fmt.Fprint(h, ";")
	}
}
