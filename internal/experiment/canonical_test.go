package experiment

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
)

// The canonical rotated-surface-code ordering must be fault-tolerant:
// every single circuit fault decodes correctly, so deff = d.
func TestCanonicalRotatedIsFaultTolerant(t *testing.T) {
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := schedule.CanonicalRotated(l)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureDeff(Config{
		Code:     l.Code,
		Basis:    css.Z,
		P:        1e-3,
		Seed:     1,
		Decoder:  FlaggedMWPM,
		Schedule: s,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("canonical d=3: %d faults, %d failures (%d ambiguous)",
		rep.Faults, rep.SingleFailures, rep.Ambiguous)
	if rep.DeffLowerBound != 3 {
		t.Fatalf("canonical schedule not fault tolerant: %d failures", rep.SingleFailures)
	}
}

// Compare: the greedy schedule on the same code may or may not be
// fault-tolerant; record it (informational — the paper relies on
// structure-aware ordering for planar codes).
func TestGreedyRotatedDeffReport(t *testing.T) {
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureDeff(Config{
		Code:    l.Code,
		Arch:    fpn.Options{},
		Basis:   css.Z,
		P:       1e-3,
		Seed:    1,
		Decoder: FlaggedMWPM,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy d=3: %d faults, %d failures (%d ambiguous), deff ≥ %d",
		rep.Faults, rep.SingleFailures, rep.Ambiguous, rep.DeffLowerBound)
}

func TestRunWithScheduleOverride(t *testing.T) {
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := schedule.CanonicalRotated(l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code:     l.Code,
		Basis:    css.Z,
		P:        1e-3,
		Shots:    500,
		Seed:     2,
		Decoder:  FlaggedMWPM,
		Schedule: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyNs != schedule.TheoreticalShortestNs(4) {
		t.Fatalf("latency %.0f, want the canonical 1050", res.LatencyNs)
	}
}
