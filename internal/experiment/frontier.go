// Block-ordered commit frontier. This is the engine's determinism core,
// extracted into its own type so the distributed sweep fabric
// (internal/fabric) merges worker-streamed block results through the
// exact same commit and early-stopping logic a single-machine run uses
// — bit-identity of a distributed sweep is then a property of shared
// code, not of two implementations agreeing.
//
// The contract is the one runEngine has always had: per-block
// logical-error counts are a pure function of (circuit, base seed,
// block index); the frontier commits blocks in strict block order and
// evaluates the stop criteria (TargetErrors, MaxCI) only against the
// committed prefix, so the final (Blocks, Shots, Errors) triple does
// not depend on which worker produced which block, in which order, or
// how often a block was (re)computed.
package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Frontier tracks which 64-shot blocks of one run have been decoded and
// commits them in strict block order. Mark may be called from any
// goroutine; marking the same block again with the same count is an
// idempotent no-op (block counts are deterministic, so a shard replayed
// by a second worker always re-derives the same values). Commit
// advances the committed prefix and freezes it permanently once a stop
// criterion fires.
type Frontier struct {
	shots  int     //fpnvet:unguarded immutable after NewFrontier (total shot budget, Config.Shots)
	target int     // Config.TargetErrors
	maxCI  float64 // Config.MaxCI

	start     int          //fpnvet:unguarded immutable after NewFrontier (resume prefix)
	total     int          //fpnvet:unguarded immutable after NewFrontier (total 64-shot blocks)
	blockErrs []int32      //fpnvet:unguarded atomic element access; the slice header is immutable after NewFrontier
	limit     atomic.Int64 // blocks at or past this index never commit (quarantine)
	onCommit  func(Progress)

	mu        sync.Mutex
	committed int  //fpnvet:guardedby mu
	comShots  int  //fpnvet:guardedby mu
	comErrs   int  //fpnvet:guardedby mu
	finalized bool //fpnvet:guardedby mu (a stop criterion fired; commits are frozen)
}

// NewFrontier builds the commit frontier for cfg, honoring cfg.Resume
// as the already-committed prefix and cfg.OnCommit as the progress
// hook (invoked with the frontier lock held, exactly like the engine's
// checkpoint hook). A resume prefix that already satisfies a stop
// criterion finalizes the frontier immediately — the same boundary case
// runEngine has always honored so a checkpoint written exactly at a
// stop point resumes bit-identically.
func NewFrontier(cfg Config) *Frontier {
	total := (cfg.Shots + blockShots - 1) / blockShots
	f := &Frontier{
		shots: cfg.Shots, target: cfg.TargetErrors, maxCI: cfg.MaxCI,
		total: total, onCommit: cfg.OnCommit,
	}
	if r := cfg.Resume; r != nil {
		f.start, f.committed, f.comShots, f.comErrs = r.Blocks, r.Blocks, r.Shots, r.Errors
	}
	if f.start < total {
		f.blockErrs = make([]int32, total-f.start)
	}
	f.limit.Store(int64(total))
	if f.committed < f.total && f.comShots < f.shots && stopCriteria(f.target, f.maxCI, f.comErrs, f.comShots) {
		f.finalized = true
	}
	return f
}

// Total reports the run's total 64-shot block count.
func (f *Frontier) Total() int { return f.total }

// Start reports the first block that was uncommitted at construction.
func (f *Frontier) Start() int { return f.start }

// blockLen is the shot count of block b: 64 except for a short tail.
func (f *Frontier) blockLen(b int) int {
	if n := f.shots - b*blockShots; n < blockShots {
		return n
	}
	return blockShots
}

// Mark records block's decoded logical-error count. The block must lie
// in [Start, Total); marking outside that range is a caller bug and
// panics with the offending coordinates.
func (f *Frontier) Mark(block, errs int) {
	if block < f.start || block >= f.total {
		panic(fmt.Sprintf("experiment: Frontier.Mark(%d) outside [%d, %d)", block, f.start, f.total))
	}
	atomic.StoreInt32(&f.blockErrs[block-f.start], int32(errs)+1)
}

// Quarantine forbids commits at or past block: the committed prefix
// can never include a failed shard's blocks, or anything after them.
func (f *Frontier) Quarantine(block int) {
	for {
		q := f.limit.Load()
		if int64(block) >= q || f.limit.CompareAndSwap(q, int64(block)) {
			return
		}
	}
}

// Limit reports the current commit limit: the lowest quarantined block,
// or Total when nothing is quarantined.
func (f *Frontier) Limit() int { return int(f.limit.Load()) }

// Commit advances the committed prefix over every contiguously marked
// block, evaluating the stop criteria after each one, and reports
// whether the frontier advanced. Once a criterion fires the frontier is
// finalized and later marks are ignored forever — blocks computed past
// a deterministic stop point are discarded, never counted.
func (f *Frontier) Commit() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	prev := f.committed
	limit := int(f.limit.Load())
	for !f.finalized && f.committed < limit {
		v := atomic.LoadInt32(&f.blockErrs[f.committed-f.start])
		if v == 0 {
			break
		}
		f.comErrs += int(v - 1)
		f.comShots += f.blockLen(f.committed)
		f.committed++
		if f.comShots < f.shots && stopCriteria(f.target, f.maxCI, f.comErrs, f.comShots) {
			f.finalized = true
		}
	}
	if f.onCommit != nil && f.committed > prev {
		f.onCommit(Progress{Blocks: f.committed, Shots: f.comShots, Errors: f.comErrs})
	}
	return f.committed > prev
}

// State returns the committed prefix — always block-aligned and
// therefore a valid Resume point.
func (f *Frontier) State() Progress {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Progress{Blocks: f.committed, Shots: f.comShots, Errors: f.comErrs}
}

// Finalized reports that a stop criterion fired on the committed
// prefix; the run's result is frozen.
func (f *Frontier) Finalized() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.finalized
}

// Done reports that the run is over: every block committed, or a stop
// criterion finalized the prefix early.
func (f *Frontier) Done() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.finalized || f.committed >= f.total
}

// stopCriteria is the early-stop predicate shared by the frontier and
// the package-level stopSatisfied helper. The CI criterion requires at
// least one observed error so deep-BER points run their full budget.
func stopCriteria(target int, maxCI float64, errs, shots int) bool {
	if target > 0 && errs >= target {
		return true
	}
	if maxCI > 0 && errs > 0 {
		lo, hi := wilson(errs, shots)
		if (hi-lo)/2 <= maxCI {
			return true
		}
	}
	return false
}
