package experiment

// Engine-level batch/scalar differential: Config.ScalarDecode must be a
// pure execution-strategy knob. For every decoder family the engine can
// batch, a full engine run — sharded workers, partial tail block, early
// stopping — must commit bit-identical (Shots, Blocks, LogicalErrors)
// either way, and the batch run must account for every decoded lane in
// its memo counters.

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
)

func TestEngineBatchScalarBitIdentity(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 2e-3, Shots: 1000, Seed: 7,
		Workers: 4, ShardShots: 256,
	}
	for _, kind := range []DecoderKind{FlaggedMWPM, PlainMWPM, FlaggedUnionFind, BPOSD} {
		cfg := base
		cfg.Decoder = kind
		cfg.ScalarDecode = true
		scalar, err := pl.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if scalar.MemoHits != 0 || scalar.MemoMisses != 0 {
			t.Errorf("%v: scalar run reports memo traffic (%d hits, %d misses)",
				kind, scalar.MemoHits, scalar.MemoMisses)
		}
		cfg.ScalarDecode = false
		batch, err := pl.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if batch.Shots != scalar.Shots || batch.Blocks != scalar.Blocks ||
			batch.LogicalErrors != scalar.LogicalErrors {
			t.Errorf("%v: batch (shots=%d blocks=%d errs=%d) != scalar (shots=%d blocks=%d errs=%d)",
				kind, batch.Shots, batch.Blocks, batch.LogicalErrors,
				scalar.Shots, scalar.Blocks, scalar.LogicalErrors)
		}
		if kind == BPOSD {
			if batch.MemoHits != 0 || batch.MemoMisses != 0 {
				t.Errorf("bp-osd: reported memo traffic (%d hits, %d misses) but stays scalar by design",
					batch.MemoHits, batch.MemoMisses)
			}
			continue
		}
		// No early stop and no timeouts: every lane is decoded exactly
		// once and every scratch is released, so the counters cover all
		// lanes exactly — plus one bookkeeping miss per worker scratch
		// that computed the cached empty-lane decode.
		got := batch.MemoHits + batch.MemoMisses
		if got < int64(base.Shots) || got > int64(base.Shots+base.Workers) {
			t.Errorf("%v: memo counters cover %d lanes, want %d..%d",
				kind, got, base.Shots, base.Shots+base.Workers)
		}
		if batch.MemoHits == 0 {
			t.Errorf("%v: batch run had zero memo hits; the memo is not engaged", kind)
		}
	}
}

// TestEngineBatchScalarEarlyStop repeats the differential under a
// TargetErrors stop: the committed prefix — evaluated strictly in block
// order — must be identical, so batching cannot move the stop point.
func TestEngineBatchScalarEarlyStop(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Code: code, Basis: css.Z, P: 5e-3, Shots: 4000, Seed: 13,
		Decoder: FlaggedMWPM, Workers: 4, ShardShots: 128, TargetErrors: 12,
	}
	cfg.ScalarDecode = true
	scalar, err := pl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !scalar.EarlyStopped {
		t.Fatal("scalar run did not early-stop; the differential would be vacuous")
	}
	cfg.ScalarDecode = false
	batch, err := pl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Shots != scalar.Shots || batch.Blocks != scalar.Blocks ||
		batch.LogicalErrors != scalar.LogicalErrors || batch.EarlyStopped != scalar.EarlyStopped {
		t.Errorf("early-stop diverged: batch (shots=%d blocks=%d errs=%d stop=%v) != scalar (shots=%d blocks=%d errs=%d stop=%v)",
			batch.Shots, batch.Blocks, batch.LogicalErrors, batch.EarlyStopped,
			scalar.Shots, scalar.Blocks, scalar.LogicalErrors, scalar.EarlyStopped)
	}
}
