package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/css"
)

// hangOnCall wraps a decoder and blocks on exactly one Decode call
// (0-based index n) until release is closed, imitating a decoder that
// wedges on one pathological syndrome instead of panicking. Tests must
// close release before returning so the abandoned attempt goroutine can
// exit.
type hangOnCall struct {
	dec     Decoder
	n       int64
	calls   atomic.Int64
	release chan struct{}
}

func (d *hangOnCall) Decode(bit func(int) bool) ([]bool, error) {
	if d.calls.Add(1)-1 == d.n {
		<-d.release
		return nil, fmt.Errorf("injected hang released")
	}
	return d.dec.Decode(bit)
}

// slowOnCall wraps a decoder and sleeps before every Decode call — a
// decoder that crawls but still finishes.
type slowOnCall struct {
	dec   Decoder
	delay time.Duration
}

func (d *slowOnCall) Decode(bit func(int) bool) ([]bool, error) {
	time.Sleep(d.delay)
	return d.dec.Decode(bit)
}

// Tentpole: a decoder that hangs forever would stall the sweep — no
// panic ever fires, so the panic-isolation path never triggers. The
// decode deadline must abandon the attempt and the fallback chain must
// rescue the shard deterministically: same seed, same firstBlock, so
// with a healthy fallback the result is bit-identical to a clean run.
func TestHungDecoderRescuedByFallbackWithinDeadline(t *testing.T) {
	c, dec := crashWorkload(t, 2e-3)
	release := make(chan struct{})
	defer close(release)
	// Single worker + 64-shot shards: call 320 is the first shot of
	// block 5, so the primary wedges at the start of shard 5.
	bad := &hangOnCall{dec: dec, n: 320, release: release}
	mk := func(k DecoderKind) (Decoder, error) { return dec, nil }
	cfg := Config{
		Shots: 640, Seed: 7, Workers: 1, ShardShots: 64,
		Fallback:      []DecoderKind{PlainMWPM},
		DecodeTimeout: time.Second,
	}
	begin := time.Now()
	out := runEngine(context.Background(), c, bad, mk, cfg)
	elapsed := time.Since(begin)
	if len(out.shardErrs) != 0 {
		t.Fatalf("deadline + fallback did not rescue the hung shard: %+v", out.shardErrs)
	}
	if out.shots != 640 {
		t.Fatalf("rescued run incomplete: %d/640 shots", out.shots)
	}
	if out.timeoutBlocks != 1 {
		t.Fatalf("timeoutBlocks = %d, want 1", out.timeoutBlocks)
	}
	if out.degradedBlocks != 1 {
		t.Fatalf("degradedBlocks = %d, want 1", out.degradedBlocks)
	}
	if out.fallbackBlocks != 0 {
		t.Fatalf("fallbackBlocks = %d, want 0: timeout rescues must be counted as degraded, not panic-rescued", out.fallbackBlocks)
	}
	// One deadline was burned on the hung attempt; everything else is
	// fast. Allow generous slack for races and loaded CI machines.
	if budget := cfg.DecodeTimeout + 30*time.Second; elapsed > budget {
		t.Fatalf("run took %v, exceeding the deadline budget %v", elapsed, budget)
	}
	clean := runEngine(context.Background(), c, dec, nil, Config{Shots: 640, Seed: 7, Workers: 1, ShardShots: 64})
	if out.errs != clean.errs {
		t.Fatalf("degraded run diverged from clean run: %d vs %d errors", out.errs, clean.errs)
	}
}

// A slow-but-finishing decoder under a generous deadline must take the
// watchdog path without changing a single bit of the result.
func TestSlowDecoderUnderDeadlineBitIdentical(t *testing.T) {
	c, dec := crashWorkload(t, 2e-3)
	slow := &slowOnCall{dec: dec, delay: 50 * time.Microsecond}
	cfg := Config{Shots: 640, Seed: 7, Workers: 2, ShardShots: 64, DecodeTimeout: 30 * time.Second}
	out := runEngine(context.Background(), c, slow, nil, cfg)
	if out.timeoutBlocks != 0 || out.degradedBlocks != 0 || len(out.shardErrs) != 0 {
		t.Fatalf("slow decoder under deadline must not degrade: %+v", out)
	}
	clean := runEngine(context.Background(), c, dec, nil, Config{Shots: 640, Seed: 7, Workers: 2, ShardShots: 64})
	if out.shots != clean.shots || out.errs != clean.errs {
		t.Fatalf("watchdog path changed the result: got %d/%d, want %d/%d",
			out.errs, out.shots, clean.errs, clean.shots)
	}
}

// A hung shard with no (or an exhausted) fallback chain must be
// quarantined with Timeout set and the ErrDecodeTimeout cause, while
// the committed prefix before it survives.
func TestHungDecoderWithoutFallbackQuarantines(t *testing.T) {
	c, dec := crashWorkload(t, 2e-3)
	release := make(chan struct{})
	defer close(release)
	bad := &hangOnCall{dec: dec, n: 320, release: release}
	cfg := Config{Shots: 640, Seed: 7, Workers: 1, ShardShots: 64, DecodeTimeout: 250 * time.Millisecond}
	out := runEngine(context.Background(), c, bad, nil, cfg)
	if len(out.shardErrs) != 1 {
		t.Fatalf("want one quarantined shard, got %+v", out.shardErrs)
	}
	se := out.shardErrs[0]
	if !se.Timeout {
		t.Fatalf("shard error not marked as a timeout: %+v", se)
	}
	if err, ok := se.PanicValue.(error); !ok || !errors.Is(err, ErrDecodeTimeout) {
		t.Fatalf("PanicValue does not wrap ErrDecodeTimeout: %v", se.PanicValue)
	}
	if se.FirstBlock != 5 || se.Blocks != 1 {
		t.Fatalf("quarantine coordinates wrong: %+v", se)
	}
	if msg := se.Error(); !strings.Contains(msg, "timed out") || !strings.Contains(msg, "seed=7 firstBlock=5") {
		t.Fatalf("timeout quarantine message lost its verb or repro: %q", msg)
	}
	if out.timeoutBlocks != 1 || out.degradedBlocks != 0 {
		t.Fatalf("timeout accounting wrong: timeout=%d degraded=%d", out.timeoutBlocks, out.degradedBlocks)
	}
	if out.blocks != 5 || out.shots != 320 {
		t.Fatalf("healthy prefix lost: blocks=%d shots=%d, want 5/320", out.blocks, out.shots)
	}
}

// Config.WrapDecoder must wrap both the primary decoder and every
// fallback the engine builds, through the public pipeline API.
func TestWrapDecoderSeesPrimaryAndFallback(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []DecoderKind
	cfg := Config{
		Code: code, Basis: css.Z, P: 5e-3, Shots: 320, Seed: 3,
		Decoder: FlaggedMWPM, Workers: 1, ShardShots: 64,
		Fallback: []DecoderKind{PlainMWPM},
		WrapDecoder: func(k DecoderKind, dec Decoder) Decoder {
			kinds = append(kinds, k)
			if k == FlaggedMWPM {
				return &panicOnCall{dec: dec, n: 0} // first shard panics → fallback built
			}
			return dec
		},
	}
	res, err := pl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FallbackBlocks == 0 {
		t.Fatalf("wrapped primary never failed over: %+v", res)
	}
	want := []DecoderKind{FlaggedMWPM, PlainMWPM}
	if len(kinds) != len(want) || kinds[0] != want[0] || kinds[1] != want[1] {
		t.Fatalf("WrapDecoder saw kinds %v, want %v", kinds, want)
	}
}
