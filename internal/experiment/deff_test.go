package experiment

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

func TestMeasureDeffFlaggedVsPlain(t *testing.T) {
	code := hyper55(t)
	base := Config{
		Code:  code,
		Arch:  fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4},
		Basis: css.Z,
		P:     1e-3,
		Seed:  1,
	}
	flagged := base
	flagged.Decoder = FlaggedMWPM
	plain := base
	plain.Decoder = PlainMWPM

	rf, err := MeasureDeff(flagged, 200)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := MeasureDeff(plain, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flagged: %d faults, %d failures (%d ambiguous), flagged frac %.2f, deff ≥ %d",
		rf.Faults, rf.SingleFailures, rf.Ambiguous, rf.FlaggedFraction, rf.DeffLowerBound)
	t.Logf("plain:   %d failures, deff ≥ %d", rp.SingleFailures, rp.DeffLowerBound)
	if rf.DeffLowerBound != 3 {
		t.Fatalf("flagged decoder deff bound %d, want 3", rf.DeffLowerBound)
	}
	if rp.DeffLowerBound != 2 {
		t.Fatalf("plain decoder deff bound %d, want 2", rp.DeffLowerBound)
	}
	if rf.PairsSampled == 0 {
		t.Fatal("no pairs sampled")
	}
	// d=3 code: two faults exceed the correction radius, so some sampled
	// pair should fail, hinting deff ≤ 3.
	if rf.DeffUpperHint != 3 {
		t.Logf("note: no failing pair in %d samples (hint %d)", rf.PairsSampled, rf.DeffUpperHint)
	}
}
