package experiment

// Boundary tests of the Wilson interval and the early-stop predicate —
// the two small functions every early-stopped sweep point's statistics
// rest on — plus a resume-then-early-stop differential asserting the
// committed-prefix confidence interval matches a fresh run exactly.

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
)

func TestWilsonBoundaries(t *testing.T) {
	// No data: the interval must be the uninformative [0, 1], not NaN.
	if lo, hi := wilson(0, 0); lo != 0 || hi != 1 {
		t.Errorf("wilson(0,0) = [%g,%g], want [0,1]", lo, hi)
	}
	// k=0: the lower bound is exactly 0 (clamped), the upper bound is
	// informative — strictly inside (0, 1) — and tightens with n.
	prevHi := 1.0
	for _, n := range []int{1, 10, 100, 10000} {
		lo, hi := wilson(0, n)
		if lo != 0 {
			t.Errorf("wilson(0,%d): lo = %g, want exactly 0", n, lo)
		}
		if hi <= 0 || hi >= 1 {
			t.Errorf("wilson(0,%d): hi = %g, want in (0,1)", n, hi)
		}
		if hi >= prevHi {
			t.Errorf("wilson(0,%d): hi = %g did not shrink below %g", n, hi, prevHi)
		}
		prevHi = hi
	}
	// k=n: mirror image — the upper bound is pinned at exactly 1, the
	// lower bound rises with n.
	prevLo := 0.0
	for _, n := range []int{1, 10, 100, 10000} {
		lo, hi := wilson(n, n)
		if hi != 1 || hi <= lo {
			t.Errorf("wilson(%d,%d) = [%g,%g]: want lo < hi == 1", n, n, lo, hi)
		}
		if lo <= 0 {
			t.Errorf("wilson(%d,%d): lo = %g, want > 0", n, n, lo)
		}
		if lo <= prevLo {
			t.Errorf("wilson(%d,%d): lo = %g did not rise above %g", n, n, lo, prevLo)
		}
		prevLo = lo
	}
	// n=1 is the smallest real sample: both outcomes must give a valid,
	// very wide interval containing the point estimate.
	for k := 0; k <= 1; k++ {
		lo, hi := wilson(k, 1)
		p := float64(k)
		if lo < 0 || hi > 1 || lo > p || hi < p {
			t.Errorf("wilson(%d,1) = [%g,%g] does not contain p=%g inside [0,1]", k, lo, hi, p)
		}
		if hi-lo < 0.5 {
			t.Errorf("wilson(%d,1) = [%g,%g]: one shot cannot justify an interval this tight", k, lo, hi)
		}
	}
	// Interior sanity: the interval brackets the point estimate.
	lo, hi := wilson(7, 448)
	if p := 7.0 / 448.0; lo >= p || hi <= p {
		t.Errorf("wilson(7,448) = [%g,%g] does not bracket %g", lo, hi, p)
	}
}

func TestStopSatisfiedBoundaries(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		errs  int
		shots int
		want  bool
	}{
		{"no-knobs-never-stops", Config{}, 1000, 1000, false},
		{"target-one-below", Config{TargetErrors: 10}, 9, 640, false},
		{"target-exact", Config{TargetErrors: 10}, 10, 640, true},
		{"target-exceeded", Config{TargetErrors: 10}, 11, 640, true},
		// k=0: a run with no errors yet must never stop on MaxCI — the
		// predicate requires at least one observed error, otherwise a
		// tight-looking all-zero prefix would truncate deep-BER points.
		{"maxci-zero-errors", Config{MaxCI: 0.5}, 0, 1 << 20, false},
		// n=1, k=1: the one-shot interval is wider than 0.3 but narrower
		// than a half.
		{"maxci-single-shot-loose", Config{MaxCI: 0.5}, 1, 1, true},
		{"maxci-single-shot-tight", Config{MaxCI: 0.3}, 1, 1, false},
		// k=n: every shot failed; the interval is narrow around 1.
		{"maxci-all-errors", Config{MaxCI: 0.05}, 4096, 4096, true},
		// Ordinary interior case on both sides of the threshold.
		{"maxci-interior-stop", Config{MaxCI: 0.01}, 50, 100000, true},
		{"maxci-interior-continue", Config{MaxCI: 0.001}, 50, 10000, false},
		// Either satisfied knob stops, independent of the other.
		{"target-wins-over-wide-ci", Config{TargetErrors: 5, MaxCI: 1e-9}, 5, 64, true},
		{"ci-wins-over-far-target", Config{TargetErrors: 1 << 30, MaxCI: 0.05}, 4096, 4096, true},
	}
	for _, tc := range cases {
		if got := stopSatisfied(tc.cfg, tc.errs, tc.shots); got != tc.want {
			t.Errorf("%s: stopSatisfied(errs=%d, shots=%d) = %v, want %v",
				tc.name, tc.errs, tc.shots, got, tc.want)
		}
	}
}

// A MaxCI-stopped point resumed from a committed prefix must report the
// exact statistics of the fresh run — not just the counts: BER and the
// Wilson bounds are what the sweep prints, so they are the contract.
func TestResumeEarlyStopCIMatchesFresh(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 1e-2, Shots: 100000, Seed: 29,
		Decoder: FlaggedMWPM, Workers: 1, ShardShots: 64, MaxCI: 0.02,
	}
	var states []Progress
	cfg := base
	cfg.OnCommit = func(pr Progress) { states = append(states, pr) }
	fresh, err := pl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.EarlyStopped {
		t.Fatal("fresh run did not stop on MaxCI; the differential would be vacuous")
	}
	if (fresh.CIHigh-fresh.CILow)/2 > base.MaxCI {
		t.Fatalf("fresh run stopped with half-width %g > MaxCI %g",
			(fresh.CIHigh-fresh.CILow)/2, base.MaxCI)
	}
	if len(states) < 2 {
		t.Fatalf("need at least two commit states to resume from, got %d", len(states))
	}
	for _, st := range states {
		resumed := base
		resumed.Resume = &Resume{Blocks: st.Blocks, Shots: st.Shots, Errors: st.Errors}
		res, err := pl.Run(resumed)
		if err != nil {
			t.Fatalf("resume at block %d: %v", st.Blocks, err)
		}
		if res.Shots != fresh.Shots || res.LogicalErrors != fresh.LogicalErrors || !res.EarlyStopped {
			t.Fatalf("resume at block %d diverged: got (%d/%d early=%v), want (%d/%d)",
				st.Blocks, res.LogicalErrors, res.Shots, res.EarlyStopped,
				fresh.LogicalErrors, fresh.Shots)
		}
		// Same committed counts through the same pure functions must give
		// bitwise-equal floats; any drift here means the statistics were
		// recomputed from different state than the counts.
		if res.BER != fresh.BER || res.BERNorm != fresh.BERNorm ||
			res.CILow != fresh.CILow || res.CIHigh != fresh.CIHigh {
			t.Fatalf("resume at block %d: statistics drifted: got BER=%v norm=%v CI=[%v,%v], want BER=%v norm=%v CI=[%v,%v]",
				st.Blocks, res.BER, res.BERNorm, res.CILow, res.CIHigh,
				fresh.BER, fresh.BERNorm, fresh.CILow, fresh.CIHigh)
		}
	}
}
