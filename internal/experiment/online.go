// Online serving seam: the p-dependent tail of a pipeline — circuit,
// shared decoder pool, lazy fallback pools — packaged for long-running
// services that decode externally supplied syndromes one at a time
// instead of sweeping sampled shots. The decode stack is byte-for-byte
// the sweep engine's (buildTail, NewDecoderPool, the same fallback
// construction), so a correction computed online is bit-identical to
// what an offline batch sweep would have committed for the same
// syndrome.
package experiment

import (
	"sync"

	"github.com/fpn/flagproxy/internal/circuit"
)

// Online exposes one configured decode stack for streaming use. It is
// safe for concurrent Acquire/AcquireFallback calls; each returned
// PooledDecoder is single-goroutine property of its caller until
// Release.
type Online struct {
	cfg  Config
	c    *circuit.Circuit
	pool *DecoderPool
	mk   func(DecoderKind) (Decoder, error)

	mu      sync.Mutex
	fbPools map[DecoderKind]*DecoderPool
}

// NewOnline builds the online decode stack for cfg through exactly the
// sweep engine's tail. cfg.Shots is a sweep-budget knob with no online
// meaning and defaults to 1 to satisfy validation; everything else —
// decoder kind, fallback chain, P, Rounds, Basis, WrapDecoder — carries
// its usual contract.
func (pl *Pipeline) NewOnline(cfg Config) (*Online, error) {
	if cfg.Shots <= 0 {
		cfg.Shots = 1
	}
	cfg, c, dec, mk, err := pl.buildTail(cfg)
	if err != nil {
		return nil, err
	}
	return &Online{cfg: cfg, c: c, pool: NewDecoderPool(dec), mk: mk}, nil
}

// Circuit returns the noisy memory circuit the decoder was extracted
// from: its Detectors (with per-round metadata) define the syndrome
// layout an online stream must follow, its Observables the correction
// layout.
func (o *Online) Circuit() *circuit.Circuit { return o.c }

// Config returns the normalized configuration (defaults resolved), the
// one whose Fingerprint identifies this stack on the wire.
func (o *Online) Config() Config { return o.cfg }

// Acquire borrows a primary-decoder handle. Callers own it until
// Release; a handle abandoned to a stuck decode goroutine (deadline
// expiry) is simply never released, exactly as in the sweep engine.
func (o *Online) Acquire() *PooledDecoder { return o.pool.Get() }

// AcquireFallback borrows a handle on the shared pool for fallback kind
// k, building the pool on first use. It returns nil when k cannot be
// constructed for this model — the caller skips down the chain, same as
// the engine's fallbackPool.
func (o *Online) AcquireFallback(k DecoderKind) *PooledDecoder {
	o.mu.Lock()
	p, ok := o.fbPools[k]
	if !ok {
		if o.mk != nil {
			if d, err := o.mk(k); err == nil {
				p = NewDecoderPool(d)
			}
		}
		if o.fbPools == nil {
			o.fbPools = map[DecoderKind]*DecoderPool{}
		}
		o.fbPools[k] = p
	}
	o.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Get()
}

// MemoStats sums the batch-memo counters over the primary pool and
// every fallback pool built so far.
func (o *Online) MemoStats() (hits, misses int64) {
	hits, misses = o.pool.MemoStats()
	o.mu.Lock()
	defer o.mu.Unlock()
	//fpnvet:orderless commutative sum of per-pool counters; order cannot affect the total
	for _, p := range o.fbPools {
		if p != nil {
			h, m := p.MemoStats()
			hits += h
			misses += m
		}
	}
	return hits, misses
}
