package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

// updateGolden rewrites testdata/fingerprints.golden from the current
// implementation:
//
//	go test ./internal/experiment -run TestFingerprintGolden -update
//
// Only do this deliberately, alongside an EngineVersion bump when the
// drift is a real change to result-affecting inputs.
var updateGolden = flag.Bool("update", false, "rewrite testdata/fingerprints.golden")

// goldenCase pins one representative configuration's fingerprint.
type goldenCase struct {
	name string
	cfg  Config
}

func rotatedCode(t *testing.T, d int) *css.Code {
	t.Helper()
	lay, err := surface.Rotated(d)
	if err != nil {
		t.Fatal(err)
	}
	return lay.Code
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	arch := fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}
	d3, d5 := rotatedCode(t, 3), rotatedCode(t, 5)
	base := Config{
		Code: d3, Arch: arch, Basis: css.Z, Rounds: 3,
		P: 1e-3, Shots: 10000, Seed: 7, Decoder: FlaggedMWPM,
	}
	xBasis := base
	xBasis.Basis, xBasis.Seed = css.X, 9
	earlyStop := base
	earlyStop.Code, earlyStop.Rounds, earlyStop.Decoder = d5, 5, BPOSD
	earlyStop.TargetErrors, earlyStop.MaxCI = 100, 0.01
	codeCap := base
	codeCap.CodeCapacity, codeCap.FixedIdle, codeCap.Decoder = true, true, PlainMWPM
	return []goldenCase{
		{"rotated3-z-flagged-mwpm", base},
		{"rotated3-x-seed9", xBasis},
		{"rotated5-bposd-earlystop", earlyStop},
		{"rotated3-codecap-plain-mwpm", codeCap},
	}
}

// TestFingerprintGolden pins Fingerprint outputs byte-for-byte. Any
// drift — a reordered hash input, a format-verb change, a new field
// folded in — breaks resumability of every existing checkpoint, so it
// must show up in review as a golden-file diff plus an EngineVersion
// bump, never slip through silently.
func TestFingerprintGolden(t *testing.T) {
	var buf strings.Builder
	for _, c := range goldenCases(t) {
		fmt.Fprintf(&buf, "%s %s\n", c.name, c.cfg.Fingerprint())
	}
	got := buf.String()

	path := filepath.Join("testdata", "fingerprints.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fingerprints (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("fingerprints drifted from %s:\ngot:\n%swant:\n%s"+
			"an intended hashing change must bump EngineVersion and regenerate with -update",
			path, got, want)
	}
}

// TestFingerprintGoldenSchedulingInvariance re-derives every golden
// case under different scheduling knobs — workers, shard size, decode
// deadline, fallback chain, decoder wrapper — and demands the same
// fingerprints: a checkpoint written on a quiet machine must resume on
// a loaded one running with a deadline and a rescue chain.
func TestFingerprintGoldenSchedulingInvariance(t *testing.T) {
	for _, c := range goldenCases(t) {
		want := c.cfg.Fingerprint()
		knobs := c.cfg
		knobs.Workers, knobs.ShardShots = 16, 4096
		knobs.DecodeTimeout = 30 * time.Second
		knobs.Fallback = []DecoderKind{PlainMWPM}
		knobs.WrapDecoder = func(_ DecoderKind, d Decoder) Decoder { return d }
		if got := knobs.Fingerprint(); got != want {
			t.Errorf("%s: scheduling knobs changed fingerprint %s -> %s", c.name, want, got)
		}
	}
}
