package experiment

import (
	"runtime"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

var engineArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

// The engine's core contract: (config, seed) determines LogicalErrors
// bit-identically for any worker count, any shard size and any
// GOMAXPROCS, including a shot count that is not a multiple of the
// 64-shot block.
func TestShardedDeterminism(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 2e-3, Shots: 1000, Seed: 7,
		Decoder: FlaggedMWPM,
	}
	var want *Result
	for _, workers := range []int{1, 4} {
		for _, shard := range []int{64, 1024} {
			cfg := base
			cfg.Workers = workers
			cfg.ShardShots = shard
			res, err := pl.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Shots != base.Shots {
				t.Fatalf("workers=%d shard=%d: committed %d shots, want %d", workers, shard, res.Shots, base.Shots)
			}
			if want == nil {
				want = res
				if res.LogicalErrors == 0 {
					t.Fatal("no logical errors at p=2e-3; determinism check would be vacuous")
				}
				continue
			}
			if res.LogicalErrors != want.LogicalErrors {
				t.Errorf("workers=%d shard=%d: %d logical errors, want %d",
					workers, shard, res.LogicalErrors, want.LogicalErrors)
			}
		}
	}
	// Defaulted workers follow GOMAXPROCS; the result must not.
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		cfg := base // Workers == 0, ShardShots == 0: all defaults
		res, err := pl.Run(cfg)
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		if res.LogicalErrors != want.LogicalErrors {
			t.Errorf("GOMAXPROCS=%d: %d logical errors, want %d", procs, res.LogicalErrors, want.LogicalErrors)
		}
	}
}

// Regression: Shots <= 0 used to launch zero workers and report
// BER = 0/0 = NaN; it must be rejected up front.
func TestRunRejectsNonPositiveShots(t *testing.T) {
	code := hyper55(t)
	for _, shots := range []int{0, -5} {
		_, err := Run(Config{Code: code, Arch: engineArch, Basis: css.Z, P: 1e-3, Shots: shots, Decoder: FlaggedMWPM})
		if err == nil {
			t.Fatalf("Shots=%d: expected an error, got none", shots)
		}
	}
}

// Regression: a code without logical qubits (k = 0) used to yield
// BERNorm = BER/0 = ±Inf/NaN; it must be rejected with a clear error.
func TestRunRejectsZeroK(t *testing.T) {
	checks := []css.Check{
		{Basis: css.X, Support: []int{0, 1}, Color: -1},
		{Basis: css.Z, Support: []int{0, 1}, Color: -1},
	}
	code, err := css.New("k0", "test", 2, checks)
	if err != nil {
		t.Fatal(err)
	}
	if code.K != 0 {
		t.Fatalf("test code has k=%d, want 0", code.K)
	}
	_, err = Run(Config{Code: code, Basis: css.Z, P: 1e-3, Shots: 100, Rounds: 1, Decoder: FlaggedMWPM})
	if err == nil {
		t.Fatal("expected an error for a k=0 code, got none")
	}
}

// Early stopping must halt a high-error point before exhausting Shots,
// and the stop point must be deterministic across worker counts.
func TestEarlyStopTargetErrors(t *testing.T) {
	code := hyper55(t)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Code: code, Basis: css.Z, P: 1e-2, Shots: 100000, Seed: 11,
		Decoder: FlaggedMWPM, TargetErrors: 20, ShardShots: 64,
	}
	var want *Result
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		res, err := pl.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.EarlyStopped || res.Shots >= base.Shots {
			t.Fatalf("workers=%d: expected early stop before %d shots, got %d (stopped=%v)",
				workers, base.Shots, res.Shots, res.EarlyStopped)
		}
		if res.LogicalErrors < base.TargetErrors {
			t.Fatalf("workers=%d: stopped with %d errors, target %d", workers, res.LogicalErrors, base.TargetErrors)
		}
		if want == nil {
			want = res
		} else if res.Shots != want.Shots || res.LogicalErrors != want.LogicalErrors {
			t.Fatalf("early stop not deterministic: (%d/%d) vs (%d/%d)",
				res.LogicalErrors, res.Shots, want.LogicalErrors, want.Shots)
		}
		t.Logf("workers=%d: stopped at %d/%d shots with %d errors", workers, res.Shots, base.Shots, res.LogicalErrors)
	}
}

// The CI criterion stops a high-error point once the estimate is tight
// enough, but never fires before the first committed logical error.
func TestEarlyStopMaxCI(t *testing.T) {
	code := hyper55(t)
	res, err := Run(Config{
		Code: code, Arch: engineArch, Basis: css.Z, P: 1e-2, Shots: 100000,
		Seed: 13, Decoder: FlaggedMWPM, MaxCI: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStopped || res.Shots >= 100000 {
		t.Fatalf("expected CI early stop, got %d shots (stopped=%v)", res.Shots, res.EarlyStopped)
	}
	if res.LogicalErrors == 0 {
		t.Fatal("CI stop fired with zero committed errors")
	}
	if half := (res.CIHigh - res.CILow) / 2; half > 0.05 {
		t.Fatalf("stopped with CI half-width %.4f > 0.05", half)
	}
}

// Per-point seed derivation: every (figure, decoder, basis, p) point of
// a sweep must get its own seed, none of them equal to the base seed.
func TestPointSeedDistinct(t *testing.T) {
	const base = int64(1)
	seen := map[int64]string{}
	for _, fig := range []string{"fig17:hysc-30", "fig19:hysc-30", "fig19:other"} {
		for _, dec := range []DecoderKind{FlaggedMWPM, PlainMWPM} {
			for _, basis := range []css.Basis{css.X, css.Z} {
				for _, p := range []float64{5e-4, 1e-3} {
					s := PointSeed(base, fig, dec, basis, p)
					id := fig + dec.String() + string(basis)
					if s == base {
						t.Fatalf("point %s p=%g derived the base seed verbatim", id, p)
					}
					if prev, dup := seen[s]; dup {
						t.Fatalf("seed collision between %s and %s", prev, id)
					}
					seen[s] = id
				}
			}
		}
	}
	if s := PointSeed(base, "fig19:hysc-30", FlaggedMWPM, css.Z, 1e-3); s != PointSeed(base, "fig19:hysc-30", FlaggedMWPM, css.Z, 1e-3) {
		t.Fatalf("PointSeed is not deterministic: %d vs %d", s, s)
	}
}

// Config validation must reject out-of-range engine knobs.
func TestValidateEngineKnobs(t *testing.T) {
	code := hyper55(t)
	base := Config{Code: code, Arch: engineArch, Basis: css.Z, P: 1e-3, Shots: 100, Decoder: FlaggedMWPM}
	for name, mut := range map[string]func(*Config){
		"negative-target": func(c *Config) { c.TargetErrors = -1 },
		"negative-ci":     func(c *Config) { c.MaxCI = -0.1 },
		"ci-too-large":    func(c *Config) { c.MaxCI = 1 },
		"negative-shard":  func(c *Config) { c.ShardShots = -64 },
		"negative-worker": func(c *Config) { c.Workers = -2 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

// A Sweep must hand every point of a (code, arch) pair the same cached
// pipeline, and still produce the same result as a cold Run.
func TestSweepCachesPipelines(t *testing.T) {
	code := hyper55(t)
	sw := NewSweep()
	cfg := Config{Code: code, Arch: engineArch, Basis: css.Z, P: 2e-3, Shots: 200, Seed: 5, Decoder: FlaggedMWPM}
	warm1, err := sw.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.P = 1e-3
	if _, err := sw.Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if len(sw.pipes) != 1 {
		t.Fatalf("sweep built %d pipelines for one (code, arch) pair", len(sw.pipes))
	}
	cold, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.LogicalErrors != warm1.LogicalErrors {
		t.Fatalf("cached pipeline changed the result: %d vs %d", warm1.LogicalErrors, cold.LogicalErrors)
	}
}
