package experiment

import (
	"fmt"
	"math/rand"

	"github.com/fpn/flagproxy/internal/seedmix"
	"sort"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
)

// DeffReport measures a decoder's effective distance behaviour: a
// circuit is fault-tolerant to order t when every combination of t
// elementary faults decodes without a logical error, giving
// deff ≥ 2t+1 (§II-F). Single faults are tested exhaustively;
// higher orders are sampled.
type DeffReport struct {
	Faults          int // elementary single-fault events tested
	SingleFailures  int // single faults miscorrected
	Ambiguous       int // single faults no decoder could distinguish
	PairsSampled    int
	PairFailures    int
	DeffLowerBound  int // 3 if all unambiguous singles pass, else 2
	DeffUpperHint   int // 3 if any sampled pair fails, 5 otherwise (hint only)
	FlaggedFraction float64
}

// MeasureDeff builds the memory circuit for the configuration, extracts
// its detector error model, and probes the decoder with exhaustive
// single faults and pairSamples random fault pairs.
func MeasureDeff(cfg Config, pairSamples int) (*DeffReport, error) {
	if cfg.Rounds == 0 {
		cfg.Rounds = cfg.Code.DX
		if cfg.Code.DZ < cfg.Rounds {
			cfg.Rounds = cfg.Code.DZ
		}
	}
	net, err := fpn.Build(cfg.Code, cfg.Arch)
	if err != nil {
		return nil, err
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		return nil, err
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		return nil, err
	}
	nm := &noise.Model{P: cfg.P}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: cfg.Basis, Rounds: cfg.Rounds, Noise: nm})
	if err != nil {
		return nil, err
	}
	model, err := dem.Extract(c)
	if err != nil {
		return nil, err
	}
	dec, err := newDecoder(cfg.Decoder, model, cfg.Basis, nm.MeasFlip())
	if err != nil {
		return nil, err
	}
	rep := &DeffReport{}
	amb := ambiguousKeys(model)
	var relevant []dem.Event
	flagged := 0
	for _, ev := range model.Events {
		if !eventRelevant(model.Circuit, ev, cfg.Basis) {
			continue
		}
		relevant = append(relevant, ev)
		if len(ev.Flags) > 0 {
			flagged++
		}
	}
	rep.Faults = len(relevant)
	if rep.Faults > 0 {
		rep.FlaggedFraction = float64(flagged) / float64(rep.Faults)
	}
	for _, ev := range relevant {
		ok, err := decodeEvent(dec, c, []dem.Event{ev})
		if err != nil {
			return nil, err
		}
		if !ok {
			rep.SingleFailures++
			if amb[eventDetFlagKey(ev)] {
				rep.Ambiguous++
			}
		}
	}
	rep.DeffLowerBound = 2
	if rep.SingleFailures <= rep.Ambiguous {
		rep.DeffLowerBound = 3
	}
	// Sampled fault pairs.
	rng := rand.New(rand.NewSource(seedmix.Derive(cfg.Seed, seedmix.String("deff-pairs"))))
	for i := 0; i < pairSamples && len(relevant) >= 2; i++ {
		a := relevant[rng.Intn(len(relevant))]
		b := relevant[rng.Intn(len(relevant))]
		ok, err := decodeEvent(dec, c, []dem.Event{a, b})
		if err != nil {
			return nil, err
		}
		rep.PairsSampled++
		if !ok {
			rep.PairFailures++
		}
	}
	rep.DeffUpperHint = 5
	if rep.PairFailures > 0 {
		rep.DeffUpperHint = 3
	}
	return rep, nil
}

// decodeEvent synthesizes the combined detector readout of the faults,
// decodes it and compares against the combined observable flips.
func decodeEvent(dec Decoder, c *circuit.Circuit, events []dem.Event) (bool, error) {
	det := map[int]bool{}
	obs := map[int]bool{}
	for _, ev := range events {
		for _, d := range ev.Dets {
			det[d] = !det[d]
		}
		for _, f := range ev.Flags {
			det[f] = !det[f]
		}
		for _, o := range ev.Obs {
			obs[o] = !obs[o]
		}
	}
	corr, err := dec.Decode(func(d int) bool { return det[d] })
	if err != nil {
		return false, nil // decode failure counts as a logical error
	}
	for o := range c.Observables {
		if corr[o] != obs[o] {
			return false, nil
		}
	}
	return true, nil
}

func eventRelevant(c *circuit.Circuit, ev dem.Event, basis css.Basis) bool {
	for _, d := range ev.Dets {
		if c.Detectors[d].Basis == basis {
			return true
		}
	}
	return len(ev.Obs) > 0
}

func eventDetFlagKey(ev dem.Event) string {
	ds := append([]int(nil), ev.Dets...)
	fs := append([]int(nil), ev.Flags...)
	sort.Ints(ds)
	sort.Ints(fs)
	return fmt.Sprint(ds, "|", fs)
}

// ambiguousKeys finds (dets, flags) footprints shared by events with
// different observables.
func ambiguousKeys(model *dem.Model) map[string]bool {
	byKey := map[string][][]int{}
	for _, ev := range model.Events {
		k := eventDetFlagKey(ev)
		byKey[k] = append(byKey[k], ev.Obs)
	}
	out := map[string]bool{}
	//fpnvet:orderless builds a set; membership does not depend on visit order
	for k, list := range byKey {
		for i := 1; i < len(list); i++ {
			if fmt.Sprint(list[i]) != fmt.Sprint(list[0]) {
				out[k] = true
			}
		}
	}
	return out
}
