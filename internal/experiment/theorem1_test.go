package experiment

import (
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// Empirical Theorem 1: adding proxy qubits to a fault-tolerant FPN
// preserves fault tolerance. The {4,6} hyperbolic color code's flag
// network is fault-tolerant without a degree bound (no proxies); the
// degree-4 version inserts proxy chains, and the flagged Restriction
// decoder must still correct every single fault.
func TestTheorem1ProxiesPreserveFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: two exhaustive deff probes")
	}
	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == "color" && e.Code.N == 48 {
			code = e.Code
		}
	}
	if code == nil {
		t.Skip("no [[48,8,4]] code")
	}
	base := Config{
		Code:    code,
		Basis:   css.Z,
		P:       1e-3,
		Seed:    1,
		Decoder: FlaggedRestriction,
		Rounds:  3,
	}
	noProxies := base
	noProxies.Arch = fpn.Options{UseFlags: true, FlagSharing: true} // unbounded degree
	withProxies := base
	withProxies.Arch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

	rn, err := MeasureDeff(noProxies, 0)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := MeasureDeff(withProxies, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("no proxies:   %d faults, %d failures (%d ambiguous)", rn.Faults, rn.SingleFailures, rn.Ambiguous)
	t.Logf("with proxies: %d faults, %d failures (%d ambiguous)", rp.Faults, rp.SingleFailures, rp.Ambiguous)
	if rn.DeffLowerBound != 3 {
		t.Fatalf("proxy-free FPN not fault tolerant (%d failures)", rn.SingleFailures)
	}
	if rp.DeffLowerBound != 3 {
		t.Fatalf("Theorem 1 violated: proxies broke fault tolerance (%d failures)", rp.SingleFailures)
	}
}
