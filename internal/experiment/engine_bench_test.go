package experiment

import (
	"context"
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/sim"
)

const benchShots = 2048

// benchWorkload prebuilds everything p-dependent once — circuit,
// detector error model, decoder — so the benchmarks below time only the
// simulate→decode→count engine, the part that dominates cluster-scale
// shot counts.
func benchWorkload(b *testing.B) (*circuit.Circuit, Decoder) {
	b.Helper()
	code := hyper55(b)
	pl, err := NewPipeline(code, engineArch)
	if err != nil {
		b.Fatal(err)
	}
	nm := &noise.Model{P: 1e-3}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: pl.Plan, Basis: css.Z, Rounds: 3, Noise: nm})
	if err != nil {
		b.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := newDecoder(FlaggedMWPM, model, css.Z, nm.MeasFlip())
	if err != nil {
		b.Fatal(err)
	}
	return c, dec
}

// benchmarkEngine measures the sharded engine on the [[30,8,3,3]]
// memory-Z workload at p = 1e-3. Compare the workers=1/2/4 variants
// against BenchmarkEngineLegacySingleBatch (the seed's architecture)
// for the multi-core scaling claim; run with -benchmem to see the
// bounded per-shard memory against the legacy all-shots-at-once batch.
func benchmarkEngine(b *testing.B, workers int) {
	c, dec := benchWorkload(b)
	cfg := Config{
		Shots: benchShots, Seed: 1, Workers: workers,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runEngine(context.Background(), c, dec, nil, cfg)
	}
	b.ReportMetric(float64(benchShots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkEngineWorkers1(b *testing.B) { benchmarkEngine(b, 1) }
func BenchmarkEngineWorkers2(b *testing.B) { benchmarkEngine(b, 2) }
func BenchmarkEngineWorkers4(b *testing.B) { benchmarkEngine(b, 4) }

// BenchmarkEngineLegacySingleBatch reproduces the seed's architecture:
// one giant bit-packed sim.Run batch holding every shot's detector rows
// in memory at once, decoded serially on one goroutine.
func BenchmarkEngineLegacySingleBatch(b *testing.B) {
	c, dec := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(c, benchShots, 1)
		errs := 0
		for shot := 0; shot < benchShots; shot++ {
			corr, err := dec.Decode(func(d int) bool { return res.DetectorBit(d, shot) })
			if err != nil {
				errs++
				continue
			}
			for o := range c.Observables {
				if corr[o] != res.ObservableBit(o, shot) {
					errs++
					break
				}
			}
		}
		_ = errs
	}
	b.ReportMetric(float64(benchShots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}
