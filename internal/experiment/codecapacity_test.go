package experiment

import (
	"testing"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

func TestCodeCapacitySurface(t *testing.T) {
	code := hyper55(t)
	res, err := Run(Config{
		Code:         code,
		Arch:         fpn.Options{}, // direct: code capacity assumes perfect extraction
		Basis:        css.Z,
		P:            0.05,
		Shots:        2000,
		Seed:         1,
		Decoder:      FlaggedMWPM,
		CodeCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BER == 0 || res.BER > 0.5 {
		t.Fatalf("code-capacity BER %.4f implausible at p=0.05", res.BER)
	}
	// At very low p the BER must drop by roughly p² scaling (d=3 code
	// corrects one error).
	low, err := Run(Config{
		Code: code, Arch: fpn.Options{}, Basis: css.Z, P: 0.005,
		Shots: 2000, Seed: 2, Decoder: FlaggedMWPM, CodeCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if low.BER >= res.BER {
		t.Fatalf("BER did not fall with p: %.4f vs %.4f", low.BER, res.BER)
	}
	t.Logf("code capacity [[30,8,3,3]]: BER(0.05)=%.4f BER(0.005)=%.4f", res.BER, low.BER)
}

// The appendix note: the Restriction decoder accurately decodes our
// catalogued color codes under code-capacity noise (it fails on some
// hyperbolic color codes, which is why the paper's Table V is filtered).
func TestCodeCapacityColorRestriction(t *testing.T) {
	code, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Code:         code,
		Arch:         fpn.Options{},
		Basis:        css.Z,
		P:            0.02,
		Shots:        2000,
		Seed:         3,
		Decoder:      FlaggedRestriction,
		CodeCapacity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// d=4 corrects any single error: BER ~ C(24,2) p² ≈ 0.1 at p=0.02;
	// must certainly beat the no-coding rate 1-(1-p)^24 ≈ 0.38.
	if res.BER > 0.3 {
		t.Fatalf("restriction decoder code-capacity BER %.4f too high", res.BER)
	}
	t.Logf("code capacity hex-toric-2: BER(0.02)=%.4f", res.BER)
}
