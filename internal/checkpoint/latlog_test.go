package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLatencyLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "latency.jsonl")
	l, err := OpenLatencyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []LatencyRec{
		{Window: 0, Status: "ok", Decoder: "flagged-mwpm", Ns: 12345},
		{Window: 1, Status: "degraded", Decoder: "plain-mwpm", Ns: 99999},
		{Window: 2, Status: "shed", Ns: 0},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, torn, err := ReadLatencies(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log reported a torn tail")
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}

	// Reopen and append: the log is append-only across process lives.
	l2, err := OpenLatencyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(LatencyRec{Window: 3, Status: "ok", Ns: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err = ReadLatencies(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[3].Window != 3 {
		t.Fatalf("append across reopen: %+v", got)
	}
}

func TestLatencyLogTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "latency.jsonl")
	l, err := OpenLatencyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(LatencyRec{Window: 0, Status: "ok", Ns: 7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A writer killed mid-append leaves a newline-less fragment.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":2,"crc":123,"rec":{"w":1,`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := ReadLatencies(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn tail not reported")
	}
	if len(recs) != 1 || recs[0].Window != 0 {
		t.Fatalf("intact prefix lost: %+v", recs)
	}
}

func TestLatencyLogRefusesMidFileDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "latency.jsonl")
	l, err := OpenLatencyLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := l.Append(LatencyRec{Window: i, Status: "ok", Ns: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the first line: CRC must catch it.
	i := strings.IndexByte(string(data), 'w')
	bad := append([]byte(nil), data...)
	bad[i] ^= 0x01
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLatencies(path); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("mid-file damage not refused: %v", err)
	}
}
