package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "a", Blocks: 10, Shots: 640, Errors: 3},
		{Key: "b", Blocks: 16, Shots: 1000, Errors: 7, EarlyStopped: true, Done: true},
	}
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh Open must see exactly what was put.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(recs) {
		t.Fatalf("reloaded %d records, want %d", s2.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := s2.Lookup(want.Key)
		if !ok {
			t.Fatalf("key %q missing after reload", want.Key)
		}
		if got != want {
			t.Errorf("key %q: reloaded %+v, want %+v", want.Key, got, want)
		}
	}
}

func TestPutOverwritesAndPersistsLatest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for blocks := 1; blocks <= 5; blocks++ {
		if err := s.Put(Record{Key: "pt", Blocks: blocks, Shots: blocks * 64, Errors: blocks - 1}); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Lookup("pt")
	if !ok || got.Blocks != 5 || got.Shots != 320 || got.Errors != 4 {
		t.Fatalf("latest record not persisted: %+v (ok=%v)", got, ok)
	}
	// The file must hold exactly one line per key, not an append log.
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("store file has %d lines, want 1:\n%s", n, data)
	}
}

func TestOpenToleratesCorruptLines(t *testing.T) {
	dir := t.TempDir()
	content := `{"key":"good","blocks":4,"shots":256,"errors":1}
not json at all
{"blocks":9,"shots":576,"errors":0}
{"key":"tail","blocks":2,"shots":128,"errors":0,"done":true}
{"key":"torn","blo`
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("loaded %d records from a partially corrupt file, want 2 (good, tail)", s.Len())
	}
	if _, ok := s.Lookup("good"); !ok {
		t.Error("record before the corruption was dropped")
	}
	if r, ok := s.Lookup("tail"); !ok || !r.Done {
		t.Errorf("record after the corruption was dropped or mangled: %+v (ok=%v)", r, ok)
	}
}

func TestDuplicateKeysLastWins(t *testing.T) {
	dir := t.TempDir()
	content := `{"key":"p","blocks":1,"shots":64,"errors":0}
{"key":"p","blocks":7,"shots":448,"errors":2}
`
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s.Lookup("p")
	if !ok || r.Blocks != 7 {
		t.Fatalf("duplicate key resolution: got %+v (ok=%v), want the later record", r, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("duplicate key counted twice: Len=%d", s.Len())
	}
}

func TestRejectsEmptyKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Blocks: 1, Shots: 64}); err == nil {
		t.Fatal("Put accepted a record with an empty key")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(Record{Key: "k", Blocks: i + 1, Shots: (i + 1) * 64}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only %s", names, FileName)
	}
}
