package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Key: "a", Blocks: 10, Shots: 640, Errors: 3},
		{Key: "b", Blocks: 16, Shots: 1000, Errors: 7, EarlyStopped: true, Done: true},
	}
	for _, r := range recs {
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh Open must see exactly what was put.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(recs) {
		t.Fatalf("reloaded %d records, want %d", s2.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := s2.Lookup(want.Key)
		if !ok {
			t.Fatalf("key %q missing after reload", want.Key)
		}
		if got != want {
			t.Errorf("key %q: reloaded %+v, want %+v", want.Key, got, want)
		}
	}
	if s2.TornTail() {
		t.Error("clean file reported a torn tail")
	}
}

func TestPutOverwritesAndPersistsLatest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for blocks := 1; blocks <= 5; blocks++ {
		if err := s.Put(Record{Key: "pt", Blocks: blocks, Shots: blocks * 64, Errors: blocks - 1}); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Lookup("pt")
	if !ok || got.Blocks != 5 || got.Shots != 320 || got.Errors != 4 {
		t.Fatalf("latest record not persisted: %+v (ok=%v)", got, ok)
	}
	// The file must hold exactly one line per key, not an append log.
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("store file has %d lines, want 1:\n%s", n, data)
	}
}

// writeStore puts raw file content in place for load-path tests.
func writeStore(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, FileName), []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

// v2Line frames a record exactly as the store writes it.
func v2Line(t *testing.T, rec Record) string {
	t.Helper()
	b, err := encodeLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// Legacy (pre-CRC) files — bare Record JSON per line — must still load
// via the version probe, so old sweeps resume under the new binary.
func TestLoadsLegacyV1Records(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, `{"key":"old-a","blocks":4,"shots":256,"errors":1}
{"key":"old-b","blocks":2,"shots":128,"errors":0,"done":true}
`)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("loaded %d v1 records, want 2", s.Len())
	}
	if r, ok := s.Lookup("old-b"); !ok || !r.Done {
		t.Fatalf("v1 record mangled: %+v (ok=%v)", r, ok)
	}
	// A Put rewrites the whole file in the current format; reloading
	// must keep both records.
	if err := s.Put(Record{Key: "new", Blocks: 1, Shots: 64}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("v1→v2 rewrite lost records: %d, want 3", s2.Len())
	}
}

// A trailing newline-less fragment is the expected crash artifact of a
// foreign writer: tolerated, dropped, and reported via TornTail.
func TestTornTailToleratedAndReported(t *testing.T) {
	dir := t.TempDir()
	good := v2Line(t, Record{Key: "good", Blocks: 4, Shots: 256, Errors: 1})
	writeStore(t, dir, good+`{"v":2,"crc":123,"rec":{"key":"torn","blo`)
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail the open: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("loaded %d records, want 1 (the healthy prefix)", s.Len())
	}
	if !s.TornTail() {
		t.Error("torn tail was not reported")
	}
	if _, err := os.Stat(filepath.Join(dir, FileName) + ".corrupt"); !os.IsNotExist(err) {
		t.Error("a tolerable torn tail must not be quarantined")
	}
}

// Mid-file garbage — here a line that is not JSON at all — must surface
// as a CorruptRecordError naming the line, and quarantine the file.
func TestMidFileGarbageIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	content := v2Line(t, Record{Key: "good", Blocks: 4, Shots: 256, Errors: 1}) +
		"not json at all\n" +
		v2Line(t, Record{Key: "tail", Blocks: 2, Shots: 128, Errors: 0, Done: true})
	writeStore(t, dir, content)
	_, err := Open(dir)
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptRecordError, got %v", err)
	}
	if ce.Line != 2 {
		t.Errorf("corrupt line reported as %d, want 2", ce.Line)
	}
	sidecar, err2 := os.ReadFile(ce.Sidecar)
	if err2 != nil {
		t.Fatalf("sidecar missing: %v", err2)
	}
	if string(sidecar) != content {
		t.Error("sidecar does not preserve the damaged file byte-for-byte")
	}
	// The original must stay: a blind rerun has to keep failing loudly
	// instead of silently starting fresh.
	if _, err := os.Stat(filepath.Join(dir, FileName)); err != nil {
		t.Errorf("damaged store file was removed: %v", err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("reopening over damaged state silently succeeded")
	}
}

// A flipped bit that still decodes as JSON used to be committed as
// truth; the CRC32-C frame now catches it as mid-file corruption.
func TestBitRotFailsCRC(t *testing.T) {
	dir := t.TempDir()
	rotted := v2Line(t, Record{Key: "rot", Blocks: 40, Shots: 2560, Errors: 9})
	// Flip one digit inside the framed record: still valid JSON, wrong
	// CRC. The blocks count 40 appears in the rec payload.
	rotted = strings.Replace(rotted, `"blocks":40`, `"blocks":41`, 1)
	content := rotted + v2Line(t, Record{Key: "after", Blocks: 1, Shots: 64})
	writeStore(t, dir, content)
	_, err := Open(dir)
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("bit rot not detected: %v", err)
	}
	if ce.Line != 1 || !strings.Contains(ce.Reason, "CRC32-C") {
		t.Errorf("unexpected corruption report: line=%d reason=%q", ce.Line, ce.Reason)
	}
}

// A mid-file record cut short (truncated, but newline-terminated) is
// corruption, not a torn tail: tears can only exist at the end.
func TestTruncatedMidFileRecordIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	full := v2Line(t, Record{Key: "cut", Blocks: 8, Shots: 512, Errors: 2})
	truncated := full[:len(full)/2] + "\n"
	writeStore(t, dir, truncated+v2Line(t, Record{Key: "after", Blocks: 1, Shots: 64}))
	_, err := Open(dir)
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("mid-file truncation not detected: %v", err)
	}
	if ce.Line != 1 {
		t.Errorf("corrupt line reported as %d, want 1", ce.Line)
	}
}

// A fully duplicated record is benign: the more-advanced record wins,
// exactly like a Put replaying the same key.
func TestDuplicatedRecordIsBenign(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir,
		v2Line(t, Record{Key: "p", Blocks: 1, Shots: 64, Errors: 0})+
			v2Line(t, Record{Key: "p", Blocks: 7, Shots: 448, Errors: 2}))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s.Lookup("p")
	if !ok || r.Blocks != 7 {
		t.Fatalf("duplicate key resolution: got %+v (ok=%v), want the later record", r, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("duplicate key counted twice: Len=%d", s.Len())
	}
}

// Records from a future schema generation must fail loudly rather than
// be guessed at.
func TestUnsupportedVersionIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, `{"v":9,"crc":0,"rec":{"key":"future"}}
`)
	_, err := Open(dir)
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("future version accepted: %v", err)
	}
	if !strings.Contains(ce.Reason, "version 9") {
		t.Errorf("reason does not name the version: %q", ce.Reason)
	}
}

func TestRejectsEmptyKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Blocks: 1, Shots: 64}); err == nil {
		t.Fatal("Put accepted a record with an empty key")
	}
}

func TestNoTempFilesLeftBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(Record{Key: "k", Blocks: i + 1, Shots: (i + 1) * 64}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only %s", names, FileName)
	}
}

// flakyFS wraps the real FS and fails the first failCreates CreateTemp
// calls, imitating transient I/O errors (ENOSPC bursts, NFS hiccups).
type flakyFS struct {
	FS
	failCreates int
	creates     int
}

func (f *flakyFS) CreateTemp(dir, pattern string) (File, error) {
	f.creates++
	if f.creates <= f.failCreates {
		return nil, fmt.Errorf("injected transient create failure %d", f.creates)
	}
	return f.FS.CreateTemp(dir, pattern)
}

// Transient write errors must be retried with backoff until the flush
// lands; the store file then holds the record as if nothing happened.
func TestPutRetriesTransientWriteErrors(t *testing.T) {
	dir := t.TempDir()
	var slept []time.Duration
	fs := &flakyFS{FS: OSFS(), failCreates: 2}
	s, err := OpenOptions(dir, Options{
		FS:            fs,
		RetryAttempts: 3,
		RetryBackoff:  time.Millisecond,
		Sleep:         func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Key: "r", Blocks: 3, Shots: 192, Errors: 1}); err != nil {
		t.Fatalf("Put did not survive transient failures: %v", err)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Errorf("backoff schedule %v, want [1ms 2ms]", slept)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := s2.Lookup("r"); !ok || r.Blocks != 3 {
		t.Fatalf("retried flush did not persist: %+v (ok=%v)", r, ok)
	}
}

// A failure outlasting the retry budget surfaces; the record stays in
// memory so the next Put retries the flush implicitly.
func TestPutExhaustsRetryBudget(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyFS{FS: OSFS(), failCreates: 100}
	s, err := OpenOptions(dir, Options{
		FS: fs, RetryAttempts: 3, RetryBackoff: time.Millisecond,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Key: "r", Blocks: 1, Shots: 64}); err == nil {
		t.Fatal("Put swallowed a persistent write failure")
	}
	if fs.creates != 3 {
		t.Errorf("flush attempted %d times, want 3", fs.creates)
	}
	// The write path heals: the next Put lands both records.
	fs.failCreates = 0
	if err := s.Put(Record{Key: "r2", Blocks: 2, Shots: 128}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("healed flush lost records: Len=%d, want 2", s2.Len())
	}
}

func TestProbeDir(t *testing.T) {
	if err := ProbeDir(t.TempDir()); err != nil {
		t.Fatalf("probe failed on a writable directory: %v", err)
	}
	if os.Getuid() == 0 {
		t.Skip("running as root: read-only directory permissions are not enforced")
	}
	ro := filepath.Join(t.TempDir(), "ro")
	if err := os.Mkdir(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if err := ProbeDir(ro); err == nil {
		t.Fatal("probe succeeded on a read-only directory")
	}
}

// Two successive quarantines must not clobber each other: the second
// lands in a numbered sidecar, so the first incident's evidence
// survives an operator replacing the store file and hitting new damage.
func TestSuccessiveQuarantinesKeepDistinctSidecars(t *testing.T) {
	dir := t.TempDir()
	first := "first damaged content\n"
	writeStore(t, dir, first)
	_, err := Open(dir)
	var ce1 *CorruptRecordError
	if !errors.As(err, &ce1) || ce1.Sidecar == "" {
		t.Fatalf("first quarantine: %v", err)
	}
	// The operator replaces the store file; the replacement is damaged
	// too (or was re-damaged). The quarantine must pick a fresh name.
	second := "second damaged content, different bytes\n"
	writeStore(t, dir, second)
	_, err = Open(dir)
	var ce2 *CorruptRecordError
	if !errors.As(err, &ce2) || ce2.Sidecar == "" {
		t.Fatalf("second quarantine: %v", err)
	}
	if ce2.Sidecar == ce1.Sidecar {
		t.Fatalf("second quarantine reused sidecar %s; the first incident's evidence is gone", ce1.Sidecar)
	}
	got1, err := os.ReadFile(ce1.Sidecar)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := os.ReadFile(ce2.Sidecar)
	if err != nil {
		t.Fatal(err)
	}
	if string(got1) != first {
		t.Errorf("first sidecar no longer byte-identical to the first incident")
	}
	if string(got2) != second {
		t.Errorf("second sidecar does not hold the second incident's bytes")
	}
	// A third incident keeps counting up.
	writeStore(t, dir, "third damaged content\n")
	_, err = Open(dir)
	var ce3 *CorruptRecordError
	if !errors.As(err, &ce3) || ce3.Sidecar == "" || ce3.Sidecar == ce1.Sidecar || ce3.Sidecar == ce2.Sidecar {
		t.Fatalf("third quarantine did not get a fresh sidecar: %v", err)
	}
}

// Meta annotations persist alongside records, survive reloads and Puts,
// and stay out of the record namespace entirely.
func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Meta("sched"); ok {
		t.Fatal("fresh store reports a meta entry")
	}
	if err := s.SetMeta("sched", "decode-timeout=2s fallback=plain-mwpm"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Key: "pt", Blocks: 2, Shots: 128, Errors: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta("sched", "decode-timeout=2s fallback=plain-mwpm"); err != nil {
		t.Fatal(err) // idempotent re-set must be a no-op, not an error
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Meta("sched"); !ok || v != "decode-timeout=2s fallback=plain-mwpm" {
		t.Fatalf("meta did not survive reload: %q (ok=%v)", v, ok)
	}
	if s2.Len() != 1 {
		t.Fatalf("meta line leaked into the record namespace: Len=%d, want 1", s2.Len())
	}
	if r, ok := s2.Lookup("pt"); !ok || r.Blocks != 2 {
		t.Fatalf("record mangled next to a meta line: %+v (ok=%v)", r, ok)
	}
	// Overwriting a meta value persists the latest.
	if err := s2.SetMeta("sched", "decode-timeout=0s fallback=none"); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := s3.Meta("sched"); v != "decode-timeout=0s fallback=none" {
		t.Fatalf("meta overwrite lost: %q", v)
	}
	if s3.SetMeta("", "x") == nil {
		t.Fatal("SetMeta accepted an empty key")
	}
}

// A meta frame with a flipped bit must fail its CRC like any record.
func TestMetaLineBitRotFailsCRC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMeta("sched", "decode-timeout=40s"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotted := strings.Replace(string(data), "40s", "41s", 1)
	if rotted == string(data) {
		t.Fatal("test setup: payload not found in file")
	}
	writeStore(t, dir, rotted)
	_, err = Open(dir)
	var ce *CorruptRecordError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "CRC32-C") {
		t.Fatalf("rotted meta line not caught by CRC: %v", err)
	}
}
