// Latency log: an append-only JSONL sink for the online decode
// service's per-window latency samples, CRC32-C framed with the same
// envelope as the checkpoint store. Appends are O_APPEND writes of one
// complete line, so a crash can damage at most the final record; the
// reader tolerates exactly that — a trailing newline-less fragment —
// and refuses anything else, mirroring the store's torn-tail contract.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// LatencyRec is one decoded window's latency sample.
type LatencyRec struct {
	Window  int    `json:"w"`
	Status  string `json:"st"`
	Decoder string `json:"dec,omitempty"`
	Ns      int64  `json:"ns"`
}

// LatencyLog appends latency records to a file. Safe for concurrent
// Append calls (the decode workers of an rtd server share one log).
type LatencyLog struct {
	mu sync.Mutex
	f  *os.File
}

// OpenLatencyLog opens (creating if needed) the append-only log at
// path.
func OpenLatencyLog(path string) (*LatencyLog, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: latency log: %w", err)
	}
	return &LatencyLog{f: f}, nil
}

// Append writes one framed record.
func (l *LatencyLog) Append(rec LatencyRec) error {
	recBytes, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line, err := frameLine(recBytes)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.f.Write(line)
	return err
}

// Close closes the underlying file.
func (l *LatencyLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReadLatencies loads every record from the log at path. A trailing
// newline-less fragment — the expected artifact of a writer killed
// mid-append — is dropped and reported via tornTail; any other damage
// (bad JSON, CRC mismatch, wrong version) is an error naming the line.
func ReadLatencies(path string) (recs []LatencyRec, tornTail bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
			data = data[:i+1]
		} else {
			data = nil
		}
		tornTail = true
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var fr frame
		if err := json.Unmarshal(raw, &fr); err != nil {
			return nil, tornTail, fmt.Errorf("checkpoint: latency log %s line %d: %v", path, line, err)
		}
		if fr.V != Version {
			return nil, tornTail, fmt.Errorf("checkpoint: latency log %s line %d: unsupported version %d", path, line, fr.V)
		}
		if got := crc32.Checksum(fr.Rec, castagnoli); got != fr.CRC {
			return nil, tornTail, fmt.Errorf("checkpoint: latency log %s line %d: CRC32-C mismatch (stored %08x, computed %08x)", path, line, fr.CRC, got)
		}
		var rec LatencyRec
		if err := json.Unmarshal(fr.Rec, &rec); err != nil {
			return nil, tornTail, fmt.Errorf("checkpoint: latency log %s line %d: bad record: %v", path, line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, tornTail, fmt.Errorf("checkpoint: latency log %s: %v", path, err)
	}
	return recs, tornTail, nil
}
