// Filesystem seam of the checkpoint store. Production code runs on the
// real filesystem; the chaos harness and the tests inject FS
// implementations that fail transiently, corrupt bytes, or tear writes,
// so every recovery path in the store is exercised deterministically.
package checkpoint

import (
	"fmt"
	"io"
	"os"
)

// FS is the set of file operations Store performs. Implementations must
// be safe for concurrent use by the goroutines sharing one Store.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadFile returns the full content of name. A missing file must
	// return an error recognized by IsNotExist.
	ReadFile(name string) ([]byte, error)
	// IsNotExist classifies ReadFile errors for missing files.
	IsNotExist(err error) bool
	// WriteFile writes data to name in one call (used for the corrupt
	// sidecar, never for the store file itself).
	WriteFile(name string, data []byte) error
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name; removing an already-gone file may error (the
	// store discards that error).
	Remove(name string) error
	// SyncDir fsyncs the directory so a rename is durable; best-effort.
	SyncDir(dir string) error
}

// File is the writable temp-file handle CreateTemp returns.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// osFS is the production FS backed by package os.
type osFS struct{}

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error                { return os.MkdirAll(dir, 0o777) }
func (osFS) ReadFile(name string) ([]byte, error)     { return os.ReadFile(name) }
func (osFS) IsNotExist(err error) bool                { return os.IsNotExist(err) }
func (osFS) WriteFile(name string, data []byte) error { return os.WriteFile(name, data, 0o666) }
func (osFS) Rename(oldpath, newpath string) error     { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                 { return os.Remove(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // already failing; the sync error wins
		return err
	}
	return d.Close()
}

// ProbeDir verifies that dir supports the store's whole write protocol
// — create a temp file, write, sync, rename, remove — so a sweep with a
// read-only or misconfigured checkpoint directory fails at startup, not
// at the first flush minutes into the run.
func ProbeDir(dir string) error {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	tmp, err := os.CreateTemp(dir, FileName+".probe-*")
	if err != nil {
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write([]byte("probe\n")); err != nil {
		_ = tmp.Close() // already failing; the write error wins
		_ = os.Remove(name)
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // already failing; the sync error wins
		_ = os.Remove(name)
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	renamed := name + ".renamed"
	if err := os.Rename(name, renamed); err != nil {
		_ = os.Remove(name)
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	if err := os.Remove(renamed); err != nil {
		return fmt.Errorf("checkpoint: probe: %w", err)
	}
	return nil
}
