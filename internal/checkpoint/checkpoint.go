// Package checkpoint persists the committed prefix of long Monte-Carlo
// sweeps so a killed run resumes where it stopped instead of starting
// over. The store is a single JSONL file — one record per line, keyed
// by an opaque fingerprint string (experiment.Config.Fingerprint) —
// rewritten atomically on every update via a temp file and os.Rename.
// A reader therefore always sees either the previous complete state or
// the new complete state, never a torn write: SIGKILL at any instant
// loses at most the blocks committed since the last Put.
//
// Records are framed with a schema version and a CRC32-C checksum, so
// the store distinguishes the one tolerable failure mode — a torn
// final line from an interrupted foreign writer or a filesystem-level
// truncation — from mid-file corruption (bit-rot, manual editing, a
// hostile writer). A torn tail is dropped and reported via TornTail;
// anything else surfaces as a *CorruptRecordError with the offending
// line number, and the whole file is quarantined to a ".corrupt"
// sidecar so the evidence survives while no resume is ever silently
// recomputed over damaged state. Pre-CRC (version-1) files — bare
// Record JSON per line — still load via the version probe.
//
// The format is deliberately engine-agnostic: records carry only the
// block-aligned committed prefix (blocks, shots, errors) plus the
// done/early-stopped markers. Everything else — what the key means,
// whether a prefix is resumable — is the caller's contract. Callers can
// additionally pin sweep-wide annotations — scheduling knobs, tool
// versions — as meta key/value pairs (SetMeta/Meta), persisted in the
// same checksummed frames as the records.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FileName is the store's file inside its directory.
const FileName = "sweep.jsonl"

// Version is the current record-frame schema generation. Version 1 is
// the pre-CRC format (a bare Record JSON object per line); version 2
// wraps each record in a {"v","crc","rec"} frame whose crc field is
// CRC32-C over the exact rec bytes.
const Version = 2

// castagnoli is the CRC32-C polynomial table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one sweep point's committed prefix.
type Record struct {
	// Key identifies the exact run configuration (and engine version)
	// the prefix belongs to; see experiment.Config.Fingerprint.
	Key string `json:"key"`
	// Blocks/Shots/Errors are the committed prefix: a valid resume
	// point of the run, block-aligned by construction.
	Blocks int `json:"blocks"`
	Shots  int `json:"shots"`
	Errors int `json:"errors"`
	// EarlyStopped mirrors Result.EarlyStopped for finished points so a
	// resumed sweep reports them exactly as the original run did.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// Done marks the point finished: resuming skips it entirely.
	Done bool `json:"done,omitempty"`
}

// frame is the on-disk envelope of one version-2 record line.
type frame struct {
	V   int             `json:"v"`
	CRC uint32          `json:"crc"` // CRC32-C over the raw Rec bytes
	Rec json.RawMessage `json:"rec"`
}

// metaPayload is the frame payload of a meta line: sweep-wide key/value
// annotations instead of a point record. The "meta" field discriminates
// it from a Record payload (which always carries a non-empty "key").
type metaPayload struct {
	Meta map[string]string `json:"meta"`
}

// CorruptRecordError reports a record that is damaged in a way a torn
// tail cannot explain: garbage or a failed checksum on a line that is
// not the file's final, newline-less fragment. The store refuses to
// load — resuming over silently dropped records would recompute (and
// possibly splice) state the operator believes is committed — and the
// damaged file is copied to Sidecar for forensics before the error is
// returned.
type CorruptRecordError struct {
	Path    string // store file that failed to load
	Line    int    // 1-based line number of the corrupt record
	Reason  string // what was wrong with it
	Sidecar string // copy of the damaged file, "" if the copy failed
}

func (e *CorruptRecordError) Error() string {
	msg := fmt.Sprintf("checkpoint: %s:%d: corrupt record (%s); refusing to resume over damaged state", e.Path, e.Line, e.Reason)
	if e.Sidecar != "" {
		msg += fmt.Sprintf("; file quarantined to %s — inspect it, then delete %s to start fresh", e.Sidecar, e.Path)
	}
	return msg
}

// Options configures a Store beyond its directory. The zero value is
// the production configuration: the real filesystem and a small bounded
// retry for transient write errors.
type Options struct {
	// FS supplies the file operations; nil means the real filesystem.
	// The chaos harness injects failing/corrupting implementations here.
	FS FS
	// RetryAttempts is the total number of flush attempts per Put
	// (first try included) before the error is returned; 0 means 3.
	RetryAttempts int
	// RetryBackoff is the pause before the first retry, doubling each
	// attempt; 0 means 25ms.
	RetryBackoff time.Duration
	// Sleep, when non-nil, replaces time.Sleep for the retry backoff so
	// tests and the chaos suite stay fast and deterministic.
	Sleep func(time.Duration)
}

// Store is an atomic on-disk map from fingerprint to Record. It is safe
// for concurrent use by multiple goroutines of one process. Across
// processes the file is a merge-able ledger: every flush first folds the
// on-disk records back into memory, keeping the more-advanced record
// per key (Done beats in-progress, then the longer committed prefix).
// That merge is sound because records are deterministic functions of
// their fingerprint — two writers of the same key can only disagree on
// how far they got, never on what the counts are — so interleaved
// writers converge on the union of everyone's progress instead of
// last-writer-winning whole files. Two writers racing the read→rename
// window can still each publish their own merge; whichever loses simply
// re-merges on its next flush, and no record ever moves backward.
type Store struct {
	mu       sync.Mutex
	path     string //fpnvet:unguarded immutable after OpenOptions
	fs       FS     //fpnvet:unguarded immutable after OpenOptions
	attempts int
	backoff  time.Duration
	sleep    func(time.Duration)
	torn     bool              // a trailing partial record was dropped at load
	recs     map[string]Record //fpnvet:guardedby mu
	order    []string          //fpnvet:guardedby mu (first-seen key order, for stable file output)
	meta     map[string]string //fpnvet:guardedby mu (sweep-wide annotations, one meta line on disk)
}

// Open creates dir if needed and loads any existing records from it
// with the default Options. A torn final line (a pre-rename crash of a
// foreign writer, a truncated filesystem) is dropped and reported via
// TornTail; any other damage fails the open with a *CorruptRecordError
// after quarantining the file to a ".corrupt" sidecar. Duplicate keys
// resolve to the more-advanced record regardless of line order.
func Open(dir string) (*Store, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit filesystem and retry configuration.
func OpenOptions(dir string, opt Options) (*Store, error) {
	fs := opt.FS
	if fs == nil {
		fs = OSFS()
	}
	attempts := opt.RetryAttempts
	if attempts <= 0 {
		attempts = 3
	}
	backoff := opt.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	sleep := opt.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{
		path: filepath.Join(dir, FileName), fs: fs,
		attempts: attempts, backoff: backoff, sleep: sleep,
		recs: map[string]Record{}, meta: map[string]string{},
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	return s, nil
}

// parsedFile is the verified content of one store file: records in file
// order (duplicates preserved), the merged annotations, and whether a
// torn tail was dropped.
type parsedFile struct {
	recs []Record
	meta map[string]string
	torn bool
}

// parse reads and verifies one store file's bytes. Only a trailing
// newline-less fragment may fail to parse (torn tail, tolerated and
// flagged); any mid-file damage quarantines the file and returns
// *CorruptRecordError.
func (s *Store) parse(data []byte) (parsedFile, error) {
	pf := parsedFile{meta: map[string]string{}}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends with a newline, so the final split element
	// is empty; a non-empty final element is a torn-tail candidate.
	tornCandidate := len(data) > 0 && len(lines[len(lines)-1]) > 0
	for i, line := range lines {
		last := i == len(lines)-1
		if len(line) == 0 {
			if last {
				continue // the terminating newline of a healthy file
			}
			return pf, s.quarantine(data, i+1, "empty line inside the record stream")
		}
		rec, meta, err := decodeLine(line)
		if err != nil {
			if last && tornCandidate {
				// The one tolerable failure: the file ends mid-record
				// with no trailing newline. The fragment is at most the
				// newest Put, which a resume recomputes anyway.
				pf.torn = true
				continue
			}
			return pf, s.quarantine(data, i+1, err.Error())
		}
		if meta != nil {
			// A meta line: merge the annotations (later lines win per
			// key, exactly like duplicate records).
			for k, v := range meta {
				pf.meta[k] = v
			}
			continue
		}
		pf.recs = append(pf.recs, rec)
	}
	return pf, nil
}

// load populates a fresh store from the file. Duplicate keys (two
// processes' worth of concatenated records, replayed lines) resolve to
// the more-advanced record regardless of line order, so loading is
// order-independent exactly like the pre-flush merge.
func (s *Store) load() error {
	data, err := s.fs.ReadFile(s.path)
	if err != nil {
		if s.fs.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("checkpoint: %w", err)
	}
	pf, err := s.parse(data)
	if err != nil {
		return err
	}
	s.torn = pf.torn
	for k, v := range pf.meta {
		s.meta[k] = v
	}
	for _, rec := range pf.recs {
		if prev, seen := s.recs[rec.Key]; seen {
			s.recs[rec.Key] = preferRecord(prev, rec)
			continue
		}
		s.order = append(s.order, rec.Key)
		s.recs[rec.Key] = rec
	}
	return nil
}

// preferRecord picks the more-advanced of two records for one key.
// Records are deterministic functions of their fingerprint — two
// writers can only ever disagree on how far they got, never on what the
// committed counts are — so "more advanced" is well-defined and the
// merge is monotone: Done beats in-progress, then the longer committed
// prefix wins, and on exact ties ours is kept.
func preferRecord(ours, theirs Record) Record {
	if ours.Done != theirs.Done {
		if theirs.Done {
			return theirs
		}
		return ours
	}
	if theirs.Blocks > ours.Blocks {
		return theirs
	}
	return ours
}

// mergeDiskLocked folds the current on-disk file back into memory
// before a rewrite, so a flush never erases progress another process
// published since our last read. A torn tail is tolerated exactly as at
// load; mid-file corruption quarantines the file and aborts the flush
// with a *CorruptRecordError (non-retryable — overwriting damaged state
// would destroy the evidence the sidecar just preserved).
func (s *Store) mergeDiskLocked() error {
	data, err := s.fs.ReadFile(s.path)
	if err != nil {
		if s.fs.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("checkpoint: %w", err)
	}
	pf, err := s.parse(data)
	if err != nil {
		return err
	}
	if pf.torn {
		s.torn = true
	}
	for k, v := range pf.meta {
		if _, ok := s.meta[k]; !ok {
			s.meta[k] = v
		}
	}
	for _, rec := range pf.recs {
		ours, seen := s.recs[rec.Key]
		if !seen {
			s.order = append(s.order, rec.Key)
			s.recs[rec.Key] = rec
			continue
		}
		s.recs[rec.Key] = preferRecord(ours, rec)
	}
	return nil
}

// quarantine copies the damaged file to a ".corrupt" sidecar and builds
// the load error. The original stays in place so a rerun keeps failing
// loudly until the operator inspects and removes it — damaged state is
// never silently recomputed over. Sidecar names never collide: a second
// quarantine (new damage after the operator replaced the store file, or
// a rerun over freshly re-damaged state) lands in ".corrupt.1",
// ".corrupt.2", … so earlier evidence is preserved, not overwritten.
func (s *Store) quarantine(data []byte, line int, reason string) error {
	sidecar := s.path + ".corrupt"
	for i := 1; i < 10000; i++ {
		if _, err := s.fs.ReadFile(sidecar); s.fs.IsNotExist(err) {
			break
		}
		// The candidate exists (or is unreadable, which we treat the
		// same way: never overwrite what we cannot inspect).
		sidecar = fmt.Sprintf("%s.corrupt.%d", s.path, i)
	}
	if err := s.fs.WriteFile(sidecar, data); err != nil {
		sidecar = ""
	}
	return &CorruptRecordError{Path: s.path, Line: line, Reason: reason, Sidecar: sidecar}
}

// decodeLine parses one line of either schema generation. Exactly one
// of the returns is populated: a point Record, or (for a v2 meta line)
// the annotation map.
func decodeLine(line []byte) (Record, map[string]string, error) {
	var probe struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return Record{}, nil, fmt.Errorf("not a JSON record: %v", err)
	}
	switch probe.V {
	case 0:
		// Legacy version 1: a bare Record object (no frame, no CRC).
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return Record{}, nil, fmt.Errorf("bad v1 record: %v", err)
		}
		if rec.Key == "" {
			return Record{}, nil, fmt.Errorf("v1 record has an empty key")
		}
		return rec, nil, nil
	case Version:
		var fr frame
		if err := json.Unmarshal(line, &fr); err != nil {
			return Record{}, nil, fmt.Errorf("bad v%d frame: %v", Version, err)
		}
		if got := crc32.Checksum(fr.Rec, castagnoli); got != fr.CRC {
			return Record{}, nil, fmt.Errorf("CRC32-C mismatch: stored %08x, computed %08x (bit rot?)", fr.CRC, got)
		}
		var mp metaPayload
		if err := json.Unmarshal(fr.Rec, &mp); err == nil && mp.Meta != nil {
			return Record{}, mp.Meta, nil
		}
		var rec Record
		if err := json.Unmarshal(fr.Rec, &rec); err != nil {
			return Record{}, nil, fmt.Errorf("bad record inside a checksummed frame: %v", err)
		}
		if rec.Key == "" {
			return Record{}, nil, fmt.Errorf("record has an empty key")
		}
		return rec, nil, nil
	default:
		return Record{}, nil, fmt.Errorf("unsupported record version %d (this binary writes v%d)", probe.V, Version)
	}
}

// encodeLine frames rec with the current schema version and its CRC32-C.
func encodeLine(rec Record) ([]byte, error) {
	recBytes, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return frameLine(recBytes)
}

// encodeMetaLine frames the annotation map as one checksummed meta line.
// json.Marshal sorts map keys, so the bytes are deterministic.
func encodeMetaLine(meta map[string]string) ([]byte, error) {
	recBytes, err := json.Marshal(metaPayload{Meta: meta})
	if err != nil {
		return nil, err
	}
	return frameLine(recBytes)
}

// frameLine wraps a payload in the {"v","crc","rec"} envelope.
func frameLine(recBytes []byte) ([]byte, error) {
	fr := frame{V: Version, CRC: crc32.Checksum(recBytes, castagnoli), Rec: recBytes}
	out, err := json.Marshal(fr)
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// TornTail reports whether the load dropped a trailing partial record —
// the expected artifact of a foreign writer killed mid-write. The
// dropped fragment is at most one Put behind the durable prefix, so
// resuming is safe; callers may want to tell the operator anyway.
func (s *Store) TornTail() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// Lookup returns the record stored for key, if any.
func (s *Store) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	return r, ok
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Keys returns the stored keys in stable (first-seen) order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Put upserts rec and atomically rewrites the store file: the new
// content is written to a temp file in the same directory, fsynced,
// and renamed over the old file. A crash at any point leaves the
// previous complete file in place. Transient I/O failures are retried
// with exponential backoff up to the configured attempt budget; the
// in-memory state keeps the record either way, so a later Put retries
// the flush implicitly.
func (s *Store) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("checkpoint: record has an empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.recs[rec.Key]; !seen {
		s.order = append(s.order, rec.Key)
	}
	s.recs[rec.Key] = rec
	return s.flushRetryLocked()
}

// SetMeta upserts one sweep-wide annotation (e.g. the scheduling knobs
// the sweep ran with) and flushes with the same atomicity and retry
// policy as Put. A no-op when the value is already stored.
func (s *Store) SetMeta(key, value string) error {
	if key == "" {
		return fmt.Errorf("checkpoint: meta entry has an empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.meta[key]; ok && old == value {
		return nil
	}
	s.meta[key] = value
	return s.flushRetryLocked()
}

// Meta returns the annotation stored for key, if any.
func (s *Store) Meta(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.meta[key]
	return v, ok
}

// flushRetryLocked runs the atomic rewrite under the retry budget.
// Mid-file corruption discovered by the pre-flush merge is not a
// transient I/O failure: retrying would quarantine the same file again
// and again, so it is returned immediately.
func (s *Store) flushRetryLocked() error {
	var err error
	backoff := s.backoff
	for attempt := 0; attempt < s.attempts; attempt++ {
		if attempt > 0 {
			s.sleep(backoff)
			backoff *= 2
		}
		if err = s.flushLocked(); err == nil {
			return nil
		}
		var corrupt *CorruptRecordError
		if errors.As(err, &corrupt) {
			return err
		}
	}
	return fmt.Errorf("checkpoint: flush failed after %d attempts: %w", s.attempts, err)
}

func (s *Store) flushLocked() error {
	if err := s.mergeDiskLocked(); err != nil {
		return err
	}
	dir := filepath.Dir(s.path)
	tmp, err := s.fs.CreateTemp(dir, FileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer func() { _ = s.fs.Remove(tmp.Name()) }() // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	if len(s.meta) > 0 {
		line, err := encodeMetaLine(s.meta)
		if err == nil {
			_, err = w.Write(line)
		}
		if err != nil {
			_ = tmp.Close() // already failing; the meta write error wins
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	for _, key := range s.order {
		line, err := encodeLine(s.recs[key])
		if err != nil {
			_ = tmp.Close() // already failing; the encode error wins
			return fmt.Errorf("checkpoint: %w", err)
		}
		if _, err := w.Write(line); err != nil {
			_ = tmp.Close() // already failing; the write error wins
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = tmp.Close() // already failing; the flush/sync error wins
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // already failing; the flush/sync error wins
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.fs.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Durability of the rename itself needs a directory fsync; treat a
	// failure as best-effort (some filesystems reject dir syncs) — the
	// data file is already consistent either way.
	_ = s.fs.SyncDir(dir)
	return nil
}

// Sorted returns all records ordered by key, for deterministic
// inspection and tests.
func (s *Store) Sorted() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
