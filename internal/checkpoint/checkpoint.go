// Package checkpoint persists the committed prefix of long Monte-Carlo
// sweeps so a killed run resumes where it stopped instead of starting
// over. The store is a single JSONL file — one record per line, keyed
// by an opaque fingerprint string (experiment.Config.Fingerprint) —
// rewritten atomically on every update via a temp file and os.Rename.
// A reader therefore always sees either the previous complete state or
// the new complete state, never a torn write: SIGKILL at any instant
// loses at most the blocks committed since the last Put.
//
// The format is deliberately engine-agnostic: records carry only the
// block-aligned committed prefix (blocks, shots, errors) plus the
// done/early-stopped markers. Everything else — what the key means,
// whether a prefix is resumable — is the caller's contract.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FileName is the store's file inside its directory.
const FileName = "sweep.jsonl"

// Record is one sweep point's committed prefix.
type Record struct {
	// Key identifies the exact run configuration (and engine version)
	// the prefix belongs to; see experiment.Config.Fingerprint.
	Key string `json:"key"`
	// Blocks/Shots/Errors are the committed prefix: a valid resume
	// point of the run, block-aligned by construction.
	Blocks int `json:"blocks"`
	Shots  int `json:"shots"`
	Errors int `json:"errors"`
	// EarlyStopped mirrors Result.EarlyStopped for finished points so a
	// resumed sweep reports them exactly as the original run did.
	EarlyStopped bool `json:"early_stopped,omitempty"`
	// Done marks the point finished: resuming skips it entirely.
	Done bool `json:"done,omitempty"`
}

// Store is an atomic on-disk map from fingerprint to Record. It is safe
// for concurrent use by multiple goroutines of one process; it does not
// arbitrate between processes (two sweeps sharing a directory will
// last-writer-win whole files, never corrupt them).
type Store struct {
	mu    sync.Mutex
	path  string
	recs  map[string]Record
	order []string // first-seen key order, for stable file output
}

// Open creates dir if needed and loads any existing records from it.
// Unparsable lines (e.g. a torn line from a pre-rename crash of a
// foreign writer) are skipped rather than failing the sweep; for
// duplicate keys the last record wins.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{path: filepath.Join(dir, FileName), recs: map[string]Record{}}
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.Key == "" {
			continue
		}
		if _, seen := s.recs[r.Key]; !seen {
			s.order = append(s.order, r.Key)
		}
		s.recs[r.Key] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", s.path, err)
	}
	return s, nil
}

// Lookup returns the record stored for key, if any.
func (s *Store) Lookup(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[key]
	return r, ok
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Keys returns the stored keys in stable (first-seen) order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Put upserts rec and atomically rewrites the store file: the new
// content is written to a temp file in the same directory, fsynced,
// and renamed over the old file. A crash at any point leaves the
// previous complete file in place.
func (s *Store) Put(rec Record) error {
	if rec.Key == "" {
		return fmt.Errorf("checkpoint: record has an empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.recs[rec.Key]; !seen {
		s.order = append(s.order, rec.Key)
	}
	s.recs[rec.Key] = rec
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, FileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for _, key := range s.order {
		if err := enc.Encode(s.recs[key]); err != nil {
			_ = tmp.Close() // already failing; the encode error wins
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = tmp.Close() // already failing; the flush/sync error wins
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // already failing; the flush/sync error wins
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Durability of the rename itself needs a directory fsync; treat a
	// failure as best-effort (some filesystems reject dir syncs) — the
	// data file is already consistent either way.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Sorted returns all records ordered by key, for deterministic
// inspection and tests.
func (s *Store) Sorted() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
