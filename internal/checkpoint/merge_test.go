// Merge-ledger property tests: interleaved Puts from concurrent stores
// over one file — duplicated, out-of-order, two processes' worth — must
// load to exactly the committed result set a sequential run produces.
// This is the property the distributed sweep fabric leans on when a
// coordinator and a crashed predecessor (or a crash_resume.sh restart)
// have both written the same ledger.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lcg is a tiny deterministic generator for shuffling operation
// schedules; tests must not depend on math/rand's global state.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// recAt is the canonical progress of key k after step st: records of
// one key are a monotone series, exactly like the engine's committed
// prefix, with the final step marking the point Done.
func recAt(k, st, lastStep int) Record {
	blocks := 3*st + 1
	return Record{
		Key: fmt.Sprintf("pt-%d", k), Blocks: blocks, Shots: blocks * 64, Errors: st,
		Done: st == lastStep, EarlyStopped: st == lastStep && k%2 == 0,
	}
}

// TestInterleavedPutsMatchSequential replays the same multiset of Puts
// through (a) one sequential store and (b) two stores interleaved in a
// trial-dependent shuffled order — duplicated ops included — and
// demands the reloaded ledgers be identical.
func TestInterleavedPutsMatchSequential(t *testing.T) {
	const keys, steps = 4, 6
	type op struct{ k, st int }
	var all []op
	for k := 0; k < keys; k++ {
		for st := 0; st < steps; st++ {
			all = append(all, op{k, st})
		}
	}

	seqDir := t.TempDir()
	seq, err := Open(seqDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range all {
		if err := seq.Put(recAt(o.k, o.st, steps-1)); err != nil {
			t.Fatal(err)
		}
	}
	want := mustReload(t, seqDir)

	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			a, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Deal every op to one process, a third of them to both
			// (duplicated records), then shuffle so blocks arrive out of
			// order within and across processes.
			rng := lcg(0x9e3779b97f4a7c15 ^ uint64(trial))
			procs := [2][]op{}
			for _, o := range all {
				p := rng.intn(2)
				procs[p] = append(procs[p], o)
				if rng.intn(3) == 0 {
					procs[1-p] = append(procs[1-p], o)
				}
			}
			for p := range procs {
				ops := procs[p]
				for i := len(ops) - 1; i > 0; i-- {
					j := rng.intn(i + 1)
					ops[i], ops[j] = ops[j], ops[i]
				}
			}
			stores := [2]*Store{a, b}
			for len(procs[0]) > 0 || len(procs[1]) > 0 {
				p := rng.intn(2)
				if len(procs[p]) == 0 {
					p = 1 - p
				}
				o := procs[p][0]
				procs[p] = procs[p][1:]
				if err := stores[p].Put(recAt(o.k, o.st, steps-1)); err != nil {
					t.Fatal(err)
				}
			}
			got := mustReload(t, dir)
			assertSameRecords(t, got, want)
		})
	}
}

// TestConcurrentStoresConverge runs N stores over one directory from N
// goroutines (the -race check of the merge path), then has each store
// flush once more sequentially: a flush that lost the read→rename race
// re-merges on its next flush, so one ordered pass converges the file
// to the union of everyone's progress.
func TestConcurrentStoresConverge(t *testing.T) {
	const nStores, keys, steps = 4, 3, 5
	dir := t.TempDir()
	stores := make([]*Store, nStores)
	for i := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
	}
	var wg sync.WaitGroup
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			rng := lcg(uint64(i) + 1)
			for n := 0; n < keys*steps; n++ {
				k, st := rng.intn(keys), rng.intn(steps)
				if err := s.Put(recAt(k, st, steps-1)); err != nil {
					t.Error(err)
					return
				}
			}
			// Every store ends by publishing each key's final step, so
			// the expected merged ledger is recAt(k, steps-1) for all k.
			for k := 0; k < keys; k++ {
				if err := s.Put(recAt(k, steps-1, steps-1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for _, s := range stores {
			if err := s.Put(recAt(k, steps-1, steps-1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := mustReload(t, dir)
	if len(got) != keys {
		t.Fatalf("merged ledger holds %d records, want %d", len(got), keys)
	}
	for k := 0; k < keys; k++ {
		want := recAt(k, steps-1, steps-1)
		r, ok := findRecord(got, want.Key)
		if !ok || r != want {
			t.Errorf("key %s: merged %+v, want %+v", want.Key, r, want)
		}
	}
}

// A ledger assembled from two processes' records — v1 legacy lines and
// v2 frames interleaved, progress out of order — must load to the
// per-key maximum no matter the line order.
func TestMixedVersionOutOfOrderRecordsLoadToMax(t *testing.T) {
	v1Line := func(rec Record) string {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return string(b) + "\n"
	}
	newer := Record{Key: "pt", Blocks: 9, Shots: 576, Errors: 3}
	older := Record{Key: "pt", Blocks: 2, Shots: 128, Errors: 1}
	finished := Record{Key: "fin", Blocks: 4, Shots: 256, Errors: 2, Done: true, EarlyStopped: true}
	partial := Record{Key: "fin", Blocks: 7, Shots: 448, Errors: 2}
	layouts := map[string]string{
		"v2-newer-first":  v2Line(t, newer) + v1Line(older),
		"v1-older-first":  v1Line(older) + v2Line(t, newer),
		"done-then-later": v2Line(t, finished) + v1Line(partial) + v1Line(older) + v2Line(t, newer),
	}
	//fpnvet:orderless each layout asserts its own expectations; map order is irrelevant
	for name, content := range layouts {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeStore(t, dir, content)
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if r, ok := s.Lookup("pt"); !ok || r != newer {
				t.Errorf("pt resolved to %+v (ok=%v), want the more-advanced %+v", r, ok, newer)
			}
			if strings.Contains(content, `"fin"`) {
				// Done beats a longer in-progress prefix: a finished
				// point is never reopened by a stale record.
				if r, ok := s.Lookup("fin"); !ok || r != finished {
					t.Errorf("fin resolved to %+v (ok=%v), want the Done record %+v", r, ok, finished)
				}
			}
			// Rewriting through a Put upgrades everything to v2 frames
			// and must preserve the merged view.
			if err := s.Put(Record{Key: "extra", Blocks: 1, Shots: 64}); err != nil {
				t.Fatal(err)
			}
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if r, ok := s2.Lookup("pt"); !ok || r != newer {
				t.Errorf("pt after rewrite: %+v (ok=%v), want %+v", r, ok, newer)
			}
		})
	}
}

// A pre-existing ".corrupt" sidecar (evidence from an earlier incident)
// must not disturb merging, and fresh mid-file damage discovered by the
// pre-flush merge must fail the Put immediately — no retries, since the
// damage is not transient — while quarantining to the next free
// ".corrupt.N" name.
func TestMergeWithSidecarPresentAndFreshCorruption(t *testing.T) {
	dir := t.TempDir()
	sidecar := filepath.Join(dir, FileName+".corrupt")
	if err := os.WriteFile(sidecar, []byte("earlier evidence\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	var sleeps int
	s, err := OpenOptions(dir, Options{Sleep: func(time.Duration) { sleeps++ }})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(recAt(0, 1, 9)); err != nil {
		t.Fatal(err)
	}
	// A second store still merges normally with the sidecar sitting there.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(recAt(1, 2, 9)); err != nil {
		t.Fatal(err)
	}
	if got := mustReload(t, dir); len(got) != 2 {
		t.Fatalf("merged ledger holds %d records, want 2", len(got))
	}

	// Now damage the live file mid-stream and Put again from the first
	// store: the pre-flush merge must refuse, once.
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte("garbage line\n"), data...)
	if err := os.WriteFile(filepath.Join(dir, FileName), damaged, 0o666); err != nil {
		t.Fatal(err)
	}
	err = s.Put(recAt(0, 3, 9))
	var ce *CorruptRecordError
	if !errors.As(err, &ce) {
		t.Fatalf("Put over damaged file: got %v, want *CorruptRecordError", err)
	}
	if sleeps != 0 {
		t.Errorf("corruption was retried %d times; it is not transient", sleeps)
	}
	if ce.Sidecar != filepath.Join(dir, FileName+".corrupt.1") {
		t.Errorf("fresh quarantine landed at %q, want the .corrupt.1 sidecar", ce.Sidecar)
	}
	if ev, err := os.ReadFile(sidecar); err != nil || string(ev) != "earlier evidence\n" {
		t.Errorf("earlier sidecar disturbed: %q, %v", ev, err)
	}
}

// mustReload opens the directory fresh and returns its sorted records.
func mustReload(t *testing.T, dir string) []Record {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s.Sorted()
}

func findRecord(recs []Record, key string) (Record, bool) {
	for _, r := range recs {
		if r.Key == key {
			return r, true
		}
	}
	return Record{}, false
}

func assertSameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("ledger holds %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
