package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestT1T2Relationship(t *testing.T) {
	m := Model{P: 1e-3}
	if m.T1Ns() != 1e6 {
		t.Fatalf("T1 = %g ns, want 1e6 (1000 µs at p=1e-3)", m.T1Ns())
	}
	if m.T2Ns() != 0.5*m.T1Ns() {
		t.Fatal("T2 must be T1/2")
	}
}

func TestPauliTwirlZeroTime(t *testing.T) {
	m := Model{P: 1e-3}
	px, py, pz := m.PauliTwirl(0)
	if px != 0 || py != 0 || pz != 0 {
		t.Fatal("zero idle time must give zero error")
	}
}

func TestPauliTwirlLongTimeLimit(t *testing.T) {
	m := Model{P: 1e-3}
	px, py, pz := m.PauliTwirl(1e12) // t >> T1
	// Fully mixed limit: pX = pY = 1/4, pZ = 1/4.
	if math.Abs(px-0.25) > 1e-6 || math.Abs(py-0.25) > 1e-6 || math.Abs(pz-0.25) > 1e-6 {
		t.Fatalf("long-time limit px=%g py=%g pz=%g, want 0.25 each", px, py, pz)
	}
}

func TestPauliTwirlShortTimeExpansion(t *testing.T) {
	// For t << T1: pX ≈ t/(4 T1); pZ ≈ (2 t/T2 − t/T1)/4 = 3t/(4 T1).
	m := Model{P: 1e-3}
	tNs := 1000.0
	px, _, pz := m.PauliTwirl(tNs)
	wantX := tNs / (4 * m.T1Ns())
	wantZ := 3 * tNs / (4 * m.T1Ns())
	if math.Abs(px-wantX)/wantX > 0.01 {
		t.Fatalf("px = %g, want ≈ %g", px, wantX)
	}
	if math.Abs(pz-wantZ)/wantZ > 0.01 {
		t.Fatalf("pz = %g, want ≈ %g", pz, wantZ)
	}
}

func TestGateRates(t *testing.T) {
	m := Model{P: 2e-3}
	if m.Depol1() != 2e-4 || m.ResetFlip() != 2e-4 || m.Idle() != 2e-4 {
		t.Fatal("0.1p rates wrong")
	}
	if m.Depol2() != 2e-3 || m.MeasFlip() != 2e-3 {
		t.Fatal("p rates wrong")
	}
}

// Property: twirl probabilities are valid and monotone in t.
func TestPropertyTwirlValidMonotone(t *testing.T) {
	m := Model{P: 1e-3}
	f := func(a, b uint16) bool {
		t1 := float64(a)
		t2 := t1 + float64(b)
		px1, py1, pz1 := m.PauliTwirl(t1)
		px2, py2, pz2 := m.PauliTwirl(t2)
		valid := px1 >= 0 && py1 >= 0 && pz1 >= 0 && px1+py1+pz1 <= 1
		mono := px2 >= px1 && py2 >= py1 && pz2 >= pz1
		return valid && mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
