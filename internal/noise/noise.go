// Package noise defines the paper's circuit-level error model (§III-A):
// T1/T2 Pauli-twirled decoherence at the start of each round scaled by
// the syndrome-extraction latency, depolarizing gate errors, measurement
// misreads, reset failures, and idling errors during two-qubit gates.
package noise

import "math"

// Model is parameterized by the physical error rate p.
type Model struct {
	P float64
	// FixedIdle reproduces the prior-work convention the paper argues
	// against (§III-A): decoherence/dephasing fire with probability p per
	// round regardless of the syndrome-extraction latency. When false
	// (the paper's model) the idle channel scales with T1/T2 and the
	// actual round duration, penalizing longer circuits.
	FixedIdle bool
}

// Latencies of the paper's timing model, in nanoseconds.
const (
	Gate1Ns = 30.0
	Gate2Ns = 40.0
	MeasNs  = 800.0
	ResetNs = 30.0
)

// T1Ns returns the relaxation time T1 = (1/p) µs in nanoseconds.
func (m Model) T1Ns() float64 { return 1e3 / m.P }

// T2Ns returns the dephasing time T2 = 0.5 T1.
func (m Model) T2Ns() float64 { return 0.5 * m.T1Ns() }

// PauliTwirl returns the (pX, pY, pZ) idle-channel probabilities for an
// idle duration t ns under the Pauli twirling approximation
// (Equations 3 and 4). In FixedIdle mode the duration is ignored and the
// channel is a flat p/3-each Pauli channel.
func (m Model) PauliTwirl(tNs float64) (px, py, pz float64) {
	if m.FixedIdle {
		return m.P / 3, m.P / 3, m.P / 3
	}
	t1, t2 := m.T1Ns(), m.T2Ns()
	px = (1 - math.Exp(-tNs/t1)) / 4
	py = px
	pz = (1 - 2*math.Exp(-tNs/t2) + math.Exp(-tNs/t1)) / 4
	return px, py, pz
}

// Depol1 is the single-qubit gate depolarizing rate (0.1 p).
func (m Model) Depol1() float64 { return 0.1 * m.P }

// Depol2 is the two-qubit gate depolarizing rate (p).
func (m Model) Depol2() float64 { return m.P }

// MeasFlip is the measurement misread probability (p).
func (m Model) MeasFlip() float64 { return m.P }

// ResetFlip is the reset failure probability (0.1 p).
func (m Model) ResetFlip() float64 { return 0.1 * m.P }

// Idle is the idling depolarizing rate during a two-qubit gate (0.1 p).
func (m Model) Idle() float64 { return 0.1 * m.P }
