// Package dem extracts the decoding hypergraph (detector error model)
// of a noisy circuit: every elementary fault is injected into the
// deterministic frame simulator and its detector/observable footprint
// recorded as a hyperedge with syndrome bits σ(e), flag bits f(e),
// Pauli-frame effects λ(e) and probability π(e) — the structure of §VI-A.
// It also implements the paper's error equivalence classes (§VI-B):
// events are grouped by σ(e), and a flag-conditioned representative is
// selected per class with the Equation 9 renormalization.
package dem

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/sim"
)

// Event is one hyperedge of the decoding hypergraph.
type Event struct {
	Dets  []int // sorted syndrome-detector indices (non-flag)
	Flags []int // sorted flag-detector indices
	Obs   []int // sorted observable indices flipped
	P     float64
}

// Model is the full decoding hypergraph of a circuit.
type Model struct {
	Circuit *circuit.Circuit
	Events  []Event
}

// fault is one elementary error mechanism to inject.
type fault struct {
	inj sim.Injection
	p   float64
}

// Extract enumerates every fault site of the circuit's noise channels,
// propagates each through the frame simulator (64 faults per pass), and
// merges identical footprints.
func Extract(c *circuit.Circuit) (*Model, error) {
	var faults []fault
	measBase := 0
	for oi, op := range c.Ops {
		switch op.Kind {
		case circuit.OpPauli1:
			for _, q := range op.Qubits {
				if op.PX > 0 {
					faults = append(faults, fault{sim.Injection{OpIndex: oi, Paulis: []sim.Pauli{{Qubit: q, X: true}}}, op.PX})
				}
				if op.PY > 0 {
					faults = append(faults, fault{sim.Injection{OpIndex: oi, Paulis: []sim.Pauli{{Qubit: q, X: true, Z: true}}}, op.PY})
				}
				if op.PZ > 0 {
					faults = append(faults, fault{sim.Injection{OpIndex: oi, Paulis: []sim.Pauli{{Qubit: q, Z: true}}}, op.PZ})
				}
			}
		case circuit.OpDepol1:
			if op.P > 0 {
				for _, q := range op.Qubits {
					for idx := 1; idx <= 3; idx++ {
						faults = append(faults, fault{sim.Injection{OpIndex: oi, Paulis: pauliFromIndex(q, idx)}, op.P / 3})
					}
				}
			}
		case circuit.OpDepol2:
			if op.P > 0 {
				for _, pr := range op.Pairs {
					for k := 1; k <= 15; k++ {
						var ps []sim.Pauli
						ps = append(ps, pauliFromIndex(pr[0], k/4)...)
						ps = append(ps, pauliFromIndex(pr[1], k%4)...)
						faults = append(faults, fault{sim.Injection{OpIndex: oi, Paulis: ps}, op.P / 15})
					}
				}
			}
		case circuit.OpXFlip:
			if op.P > 0 {
				for _, q := range op.Qubits {
					faults = append(faults, fault{sim.Injection{OpIndex: oi, Paulis: []sim.Pauli{{Qubit: q, X: true}}}, op.P})
				}
			}
		case circuit.OpMR, circuit.OpM:
			if op.FlipProb > 0 {
				for i := range op.Qubits {
					faults = append(faults, fault{sim.Injection{IsMeasFlip: true, FlipMeas: measBase + i}, op.FlipProb})
				}
			}
		}
		if op.Kind == circuit.OpMR || op.Kind == circuit.OpM {
			measBase += len(op.Qubits)
		}
	}
	merged := map[string]*Event{}
	for start := 0; start < len(faults); start += 64 {
		end := start + 64
		if end > len(faults) {
			end = len(faults)
		}
		batch := faults[start:end]
		inj := make([]sim.Injection, len(batch))
		for i, f := range batch {
			inj[i] = f.inj
			inj[i].Lane = i
		}
		res := sim.RunDeterministic(c, len(batch), inj)
		for i, f := range batch {
			var dets, flags, obs []int
			for d := range c.Detectors {
				if res.DetectorBit(d, i) {
					if c.Detectors[d].IsFlag {
						flags = append(flags, d)
					} else {
						dets = append(dets, d)
					}
				}
			}
			for o := range c.Observables {
				if res.ObservableBit(o, i) {
					obs = append(obs, o)
				}
			}
			if len(dets) == 0 && len(flags) == 0 {
				if len(obs) > 0 {
					return nil, fmt.Errorf("dem: undetectable fault flips an observable (distance 1 circuit)")
				}
				continue
			}
			key := footprintKey(dets, flags, obs)
			if ev, ok := merged[key]; ok {
				ev.P = ev.P*(1-f.p) + f.p*(1-ev.P)
			} else {
				merged[key] = &Event{Dets: dets, Flags: flags, Obs: obs, P: f.p}
			}
		}
	}
	m := &Model{Circuit: c}
	keys := make([]string, 0, len(merged))
	//fpnvet:orderless collect-then-sort: keys are sorted before emission
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m.Events = append(m.Events, *merged[k])
	}
	return m, nil
}

func pauliFromIndex(q, idx int) []sim.Pauli {
	switch idx {
	case 1:
		return []sim.Pauli{{Qubit: q, X: true}}
	case 2:
		return []sim.Pauli{{Qubit: q, X: true, Z: true}}
	case 3:
		return []sim.Pauli{{Qubit: q, Z: true}}
	}
	return nil
}

func footprintKey(dets, flags, obs []int) string {
	b := make([]byte, 0, 4*(len(dets)+len(flags)+len(obs))+3)
	for _, d := range dets {
		b = appendInt(b, d)
	}
	b = append(b, '|')
	for _, f := range flags {
		b = appendInt(b, f)
	}
	b = append(b, '|')
	for _, o := range obs {
		b = appendInt(b, o)
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
