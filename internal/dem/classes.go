package dem

import (
	"math"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
)

// ProjEvent is an event projected onto one syndrome basis for CSS
// decoding: Dets holds only detectors of that basis (flags are kept in
// full, since a flag conditions the interpretation of the syndrome).
type ProjEvent struct {
	Dets  []int
	Flags []int
	Obs   []int
	P     float64
}

// Project restricts the model's events to syndrome detectors of the
// given basis, merging events that become identical. Events whose
// projected syndrome is empty are kept when they carry flags: they form
// the empty-syndrome equivalence class, through which flag measurements
// catch propagation errors that are invisible to the parity checks
// (e.g. half-plaquette clusters on high-weight color checks).
func (m *Model) Project(basis css.Basis) []ProjEvent {
	merged := map[string]*ProjEvent{}
	for _, ev := range m.Events {
		var dets []int
		for _, d := range ev.Dets {
			if m.Circuit.Detectors[d].Basis == basis {
				dets = append(dets, d)
			}
		}
		if len(dets) == 0 && len(ev.Flags) == 0 {
			continue
		}
		key := footprintKey(dets, ev.Flags, ev.Obs)
		if e, ok := merged[key]; ok {
			e.P = e.P*(1-ev.P) + ev.P*(1-e.P)
		} else {
			merged[key] = &ProjEvent{Dets: dets, Flags: ev.Flags, Obs: ev.Obs, P: ev.P}
		}
	}
	keys := make([]string, 0, len(merged))
	//fpnvet:orderless collect-then-sort: keys are sorted before emission
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]ProjEvent, 0, len(keys))
	for _, k := range keys {
		out = append(out, *merged[k])
	}
	return out
}

// Class is an error equivalence class (§VI-B): all projected events that
// flip the same syndrome bits, differing in flags and/or Pauli frames.
type Class struct {
	Dets    []int
	Members []ProjEvent
}

// BuildClasses groups projected events by their syndrome footprint.
func BuildClasses(events []ProjEvent) []Class {
	index := map[string]int{}
	var classes []Class
	for _, ev := range events {
		key := footprintKey(ev.Dets, nil, nil)
		ci, ok := index[key]
		if !ok {
			ci = len(classes)
			index[key] = ci
			classes = append(classes, Class{Dets: ev.Dets})
		}
		classes[ci].Members = append(classes[ci].Members, ev)
	}
	return classes
}

// Select returns the class member whose flag set is most similar to the
// observed flags F (minimizing |f(e) ⊕ F|, ties broken by higher
// probability) together with the achieved flag difference. A nil f is
// the empty flag set.
func (c *Class) Select(f *FlagSet) (ProjEvent, int) {
	best := -1
	bestDiff := 0
	for i, m := range c.Members {
		diff := flagDiff(m.Flags, f)
		if best < 0 || diff < bestDiff ||
			(diff == bestDiff && m.P > c.Members[best].P) {
			best = i
			bestDiff = diff
		}
	}
	return c.Members[best], bestDiff
}

// Representative selects the flag-conditioned member and returns it with
// its Equation 9 renormalized probability:
// π → pM^{|f⊕F|} · π^{|σ|−1} when |F| > 0. A nil f is the empty flag
// set.
func (c *Class) Representative(f *FlagSet, pM float64) (ProjEvent, float64) {
	rep, bestDiff := c.Select(f)
	p := rep.P
	if f.Len() > 0 {
		p = math.Pow(pM, float64(bestDiff))
		if len(c.Dets) >= 2 {
			p *= math.Pow(rep.P, float64(len(c.Dets)-1))
		} else {
			p *= rep.P
		}
	}
	return rep, p
}

// flagDiff computes |flags(e) ⊕ F|.
func flagDiff(eventFlags []int, f *FlagSet) int {
	inter := 0
	for _, fl := range eventFlags {
		if f.Has(fl) {
			inter++
		}
	}
	return len(eventFlags) + f.Len() - 2*inter
}
