package dem

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func hyper55(t *testing.T) *css.Code {
	t.Helper()
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := surface.FromMap(m, "hysc-30", "test")
		if err == nil {
			return code
		}
	}
	t.Fatal("no code")
	return nil
}

func memCircuit(t *testing.T, code *css.Code, opt fpn.Options, rounds int, p float64) *circuit.Circuit {
	t.Helper()
	net, err := fpn.Build(code, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: css.Z, Rounds: rounds, Noise: &noise.Model{P: p}})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExtractTinyCircuit(t *testing.T) {
	// One qubit, one measurement error source.
	c := &circuit.Circuit{NumQubits: 1}
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0}, FlipProb: 0.01})
	c.Detectors = append(c.Detectors, circuit.Detector{Meas: []int{0}})
	m, err := Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(m.Events))
	}
	ev := m.Events[0]
	if len(ev.Dets) != 1 || ev.Dets[0] != 0 || math.Abs(ev.P-0.01) > 1e-12 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestExtractMergesIdenticalFootprints(t *testing.T) {
	// Two X-error channels on the same qubit before a measurement merge
	// into one event with p = p1(1-p2)+p2(1-p1).
	c := &circuit.Circuit{NumQubits: 1}
	c.AddOp(circuit.Op{Kind: circuit.OpXFlip, Qubits: []int{0}, P: 0.1})
	c.AddOp(circuit.Op{Kind: circuit.OpXFlip, Qubits: []int{0}, P: 0.2})
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0}})
	c.Detectors = append(c.Detectors, circuit.Detector{Meas: []int{0}})
	m, err := Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(m.Events))
	}
	want := 0.1*0.8 + 0.2*0.9
	if math.Abs(m.Events[0].P-want) > 1e-12 {
		t.Fatalf("P = %g, want %g", m.Events[0].P, want)
	}
}

func TestExtractRejectsUndetectableLogical(t *testing.T) {
	// An X error that flips only an observable (no detector) must error.
	c := &circuit.Circuit{NumQubits: 1}
	c.AddOp(circuit.Op{Kind: circuit.OpXFlip, Qubits: []int{0}, P: 0.1})
	c.AddOp(circuit.Op{Kind: circuit.OpM, Qubits: []int{0}})
	c.Observables = append(c.Observables, []int{0})
	if _, err := Extract(c); err == nil {
		t.Fatal("expected undetectable-logical error")
	}
}

func TestExtractFullMemoryModel(t *testing.T) {
	code := hyper55(t)
	c := memCircuit(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, 3, 1e-3)
	m, err := Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Events) < 500 {
		t.Fatalf("suspiciously few events: %d", len(m.Events))
	}
	flagged := 0
	for _, ev := range m.Events {
		if len(ev.Flags) > 0 {
			flagged++
		}
		if ev.P <= 0 || ev.P >= 0.5 {
			t.Fatalf("event probability %g out of range", ev.P)
		}
	}
	if flagged == 0 {
		t.Fatal("no flagged events in an FPN circuit")
	}
	t.Logf("%d events, %d flagged", len(m.Events), flagged)
}

func TestProjectSplitsBases(t *testing.T) {
	code := hyper55(t)
	c := memCircuit(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, 3, 1e-3)
	m, err := Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	zev := m.Project(css.Z)
	xev := m.Project(css.X)
	if len(zev) == 0 || len(xev) == 0 {
		t.Fatal("projection lost all events")
	}
	for _, ev := range zev {
		for _, d := range ev.Dets {
			if m.Circuit.Detectors[d].Basis != css.Z {
				t.Fatal("Z projection contains X detector")
			}
		}
	}
}

// flagSetOf builds a FlagSet holding the given ids, for test brevity.
func flagSetOf(ids ...int) *FlagSet {
	s := &FlagSet{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestEquivalenceClassRepresentative(t *testing.T) {
	cl := Class{
		Dets: []int{1, 2},
		Members: []ProjEvent{
			{Dets: []int{1, 2}, Flags: nil, Obs: nil, P: 0.01},
			{Dets: []int{1, 2}, Flags: []int{7}, Obs: []int{0}, P: 0.002},
		},
	}
	// No flags observed: flagless member wins.
	rep, p := cl.Representative(nil, 1e-3)
	if len(rep.Flags) != 0 || p != 0.01 {
		t.Fatalf("rep = %+v p=%g", rep, p)
	}
	// Flag 7 observed: flagged member wins, probability renormalized.
	rep, p = cl.Representative(flagSetOf(7), 1e-3)
	if len(rep.Flags) != 1 || rep.Obs[0] != 0 {
		t.Fatalf("rep = %+v", rep)
	}
	// Eq 9 with perfect flag match: p = pM^0 * π^(|σ|-1) = 0.002.
	if math.Abs(p-0.002) > 1e-12 {
		t.Fatalf("renormalized p = %g, want 0.002", p)
	}
	// Unrelated flag observed: flagless member wins with pM^1 factor.
	rep, p = cl.Representative(flagSetOf(9), 1e-3)
	if len(rep.Flags) != 0 {
		t.Fatalf("rep = %+v", rep)
	}
	want := 1e-3 * 0.01
	if math.Abs(p-want) > 1e-15 {
		t.Fatalf("p = %g, want %g", p, want)
	}
}

func TestFlagDiff(t *testing.T) {
	f := flagSetOf(1, 2)
	if d := flagDiff([]int{1}, f); d != 1 {
		t.Fatalf("diff = %d, want 1", d)
	}
	if d := flagDiff([]int{1, 2}, f); d != 0 {
		t.Fatalf("diff = %d, want 0", d)
	}
	if d := flagDiff([]int{3}, f); d != 3 {
		t.Fatalf("diff = %d, want 3", d)
	}
}

// The paper's §VI-F2 observation: circuit noise on color codes produces
// single-fault events that flip two same-color plaquettes — the events
// Chromobius cannot decode.
func TestChromobiusKillerEventsExist(t *testing.T) {
	code, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	c := memCircuit(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, 3, 1e-3)
	m, err := Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range m.Events {
		colorCount := map[int]int{}
		for _, d := range ev.Dets {
			det := m.Circuit.Detectors[d]
			if det.Basis == css.Z && det.Round == 1 {
				colorCount[det.Color]++
			}
		}
		for _, cnt := range colorCount {
			if cnt >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no same-color double-plaquette events found")
	}
}
