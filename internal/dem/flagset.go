package dem

// FlagSet is an ordered, reusable set of flag detector ids. It replaces
// the map[int]bool flag sets the decoders once carried: membership is a
// bitset probe and iteration (Flags) visits ids in insertion order, so a
// decode that consults the set — unlike one ranging over a map — is
// bit-identical from run to run by construction. The zero value is an
// empty set ready for use. Add grows the bitset to the largest id seen
// and Reset keeps that capacity, so a set reused across shots stops
// allocating once warm. Not safe for concurrent use.
type FlagSet struct {
	bits []uint64 // membership, indexed by id
	list []int    // set ids in insertion order
}

// Reset empties the set, keeping its storage for reuse.
func (s *FlagSet) Reset() {
	for _, f := range s.list {
		s.bits[f>>6] &^= 1 << (uint(f) & 63)
	}
	s.list = s.list[:0]
}

// Add inserts flag id f (a no-op if already present). Callers that need
// a canonical iteration order insert in that order; the decoders add
// flags while scanning their sorted flag-detector lists, so their sets
// iterate in ascending id order.
func (s *FlagSet) Add(f int) {
	if w := f >> 6; w >= len(s.bits) {
		if w < cap(s.bits) {
			s.bits = s.bits[:w+1]
		} else {
			grown := make([]uint64, w+1)
			copy(grown, s.bits)
			s.bits = grown
		}
	}
	if s.bits[f>>6]&(1<<(uint(f)&63)) != 0 {
		return
	}
	s.bits[f>>6] |= 1 << (uint(f) & 63)
	s.list = append(s.list, f)
}

// Has reports membership of f. A nil set is empty.
func (s *FlagSet) Has(f int) bool {
	if s == nil {
		return false
	}
	w := f >> 6
	return w < len(s.bits) && s.bits[w]&(1<<(uint(f)&63)) != 0
}

// Len reports the number of set flags. A nil set is empty.
func (s *FlagSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// Flags returns the set ids in insertion order. The slice aliases the
// set's storage and is valid until the next Add or Reset; a nil set
// yields nil.
func (s *FlagSet) Flags() []int {
	if s == nil {
		return nil
	}
	return s.list
}
