package fabric

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	counts := []int{0, 3, 64, 1, 0, 7}
	var buf bytes.Buffer
	if err := writeCounts(&buf, 40, counts); err != nil {
		t.Fatal(err)
	}
	got, err := readCounts(bytes.NewReader(buf.Bytes()), 40, len(counts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(counts) {
		t.Fatalf("round-tripped %d counts, want %d", len(got), len(counts))
	}
	for i := range counts {
		if got[i] != counts[i] {
			t.Errorf("count %d: got %d, want %d", i, got[i], counts[i])
		}
	}
}

// Every strict prefix of a healthy stream must be rejected: a TCP
// connection can die at any byte, and a torn stream merging partially
// would splice a half shard into the frontier.
func TestTornStreamAtEveryByteIsRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeCounts(&buf, 0, []int{2, 0, 5}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := readCounts(bytes.NewReader(full[:cut]), 0, 3); err == nil {
			t.Fatalf("stream torn at byte %d/%d was accepted", cut, len(full))
		}
	}
	if _, err := readCounts(bytes.NewReader(full), 0, 3); err != nil {
		t.Fatalf("intact stream rejected: %v", err)
	}
}

func TestStreamValidation(t *testing.T) {
	mk := func(first int, counts []int) []byte {
		var b bytes.Buffer
		if err := writeCounts(&b, first, counts); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	cases := []struct {
		name string
		body []byte
		n    int
		want string
	}{
		{"wrong-first-block", mk(5, []int{1, 2}), 2, "out of order"},
		{"short-stream", mk(0, []int{1}), 2, "lease covers"},
		{"over-long", mk(0, []int{1, 2, 3}), 2, "more than the leased"},
		{"bit-flip", flipByte(t, mk(0, []int{1, 2}), 20), 2, ""},
		{"junk", []byte("not json\n"), 1, "invalid character"},
		{"impossible-count", mk(0, []int{65}), 1, "impossible error count"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := readCounts(bytes.NewReader(c.body), 0, c.n)
			if err == nil {
				t.Fatal("damaged stream accepted")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// flipByte flips one bit inside the rec payload region so the CRC must
// catch it.
func flipByte(t *testing.T, b []byte, off int) []byte {
	t.Helper()
	out := append([]byte(nil), b...)
	// Flip within a digit character so the line stays valid JSON and
	// only the checksum can notice.
	for i := off; i < len(out); i++ {
		if out[i] >= '0' && out[i] <= '8' {
			out[i]++
			return out
		}
	}
	t.Fatal("no digit to flip")
	return nil
}

func TestCountsDigestDiscriminates(t *testing.T) {
	a := countsDigest([]int{1, 2, 3})
	if b := countsDigest([]int{1, 2, 3}); a != b {
		t.Error("digest is not deterministic")
	}
	if b := countsDigest([]int{1, 2, 4}); a == b {
		t.Error("digest collided on differing counts")
	}
	if b := countsDigest([]int{3, 2, 1}); a == b {
		t.Error("digest ignored order")
	}
}
