// Partition tolerance, enforced end to end: a coordinator handoff
// (epoch-fenced, ledger-rebuilt), a poisoned shard walked through the
// retry-once-then-quarantine ladder, and every connection-level chaos
// plan must cost latency or an explicitly counted quarantine — never a
// bit of divergence from the single-machine engine. The fencing pin
// speaks raw JSON so the epoch protocol is fixed independently of the
// package's own codec.
package fabric_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/chaos"
	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fabric"
)

// TestEpochFencingRawProtocol pins the fence itself: with an old
// coordinator at epoch 1 and its successor at epoch 2 both still
// answering (a partition, not a death), traffic stamped with the wrong
// epoch is refused by each side before anything merges — the old
// coordinator provably cannot commit a fleet's work, and a worker still
// loyal to it cannot commit into the successor.
func TestEpochFencingRawProtocol(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := experiment.NewPipeline(cfg.Code, cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	br, err := pl.NewBlockRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(epoch, failovers int64) (*fabric.Coordinator, *httptest.Server, context.CancelFunc, chan *experiment.Result) {
		co := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Epoch: epoch, Failovers: failovers})
		srv := httptest.NewServer(co.Handler())
		ctx, cancel := context.WithCancel(context.Background())
		resCh := make(chan *experiment.Result, 1)
		go func() {
			res, err := co.RunPoint(ctx, cfg)
			if err != nil {
				t.Errorf("RunPoint(epoch %d): %v", epoch, err)
			}
			resCh <- res
		}()
		return co, srv, cancel, resCh
	}
	coOld, srvOld, cancelOld, oldRes := run(1, 0)
	defer func() { cancelOld(); <-oldRes; srvOld.Close() }()
	coNew, srvNew, cancelNew, newRes := run(2, 1)
	defer srvNew.Close()
	defer cancelNew()

	var jm rawJob
	for jm.Status != "job" {
		rawCall(t, http.MethodGet, srvOld.URL+"/v1/job", nil, &jm)
	}
	if jm.Epoch != 1 {
		t.Fatalf("old coordinator announces epoch %d, want 1", jm.Epoch)
	}
	var jmNew rawJob
	for jmNew.Status != "job" {
		rawCall(t, http.MethodGet, srvNew.URL+"/v1/job", nil, &jmNew)
	}
	if jmNew.Epoch != 2 {
		t.Fatalf("new coordinator announces epoch %d, want 2", jmNew.Epoch)
	}

	lease := func(srv *httptest.Server, worker string) rawLease {
		var lm rawLease
		rawCall(t, http.MethodPost, srv.URL+"/v1/lease?job="+jm.Fingerprint+"&worker="+worker, []byte{}, &lm)
		return lm
	}
	complete := func(srv *httptest.Server, shard int, leaseID, epoch int64, body []byte) rawAck {
		var ack rawAck
		rawCall(t, http.MethodPost,
			fmt.Sprintf("%s/v1/complete?job=%s&shard=%d&lease=%d&epoch=%d", srv.URL, jm.Fingerprint, shard, leaseID, epoch), body, &ack)
		return ack
	}
	countsFor := func(lm rawLease) []int {
		counts, err := br.CountBlocks(context.Background(), lm.FirstBlock, lm.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}

	// A worker that failed over stamps epoch 2; the partitioned old
	// coordinator must turn the completion away unmerged.
	lmOld := lease(srvOld, "wandering")
	if lmOld.Status != "lease" || lmOld.Epoch != 1 {
		t.Fatalf("old lease = %+v, want a lease at epoch 1", lmOld)
	}
	if ack := complete(srvOld, lmOld.Shard, lmOld.Lease, 2, rawCompletion(lmOld.FirstBlock, countsFor(lmOld))); ack.Status != "stale-epoch" || ack.Epoch != 1 {
		t.Errorf("epoch-2 completion at the epoch-1 coordinator = %+v, want stale-epoch at epoch 1", ack)
	}
	// A worker still loyal to the old coordinator stamps epoch 1; the
	// successor fences it the same way.
	lmNew := lease(srvNew, "loyalist")
	if lmNew.Status != "lease" || lmNew.Epoch != 2 {
		t.Fatalf("new lease = %+v, want a lease at epoch 2", lmNew)
	}
	if ack := complete(srvNew, lmNew.Shard, lmNew.Lease, 1, rawCompletion(lmNew.FirstBlock, countsFor(lmNew))); ack.Status != "stale-epoch" || ack.Epoch != 2 {
		t.Errorf("epoch-1 completion at the epoch-2 coordinator = %+v, want stale-epoch at epoch 2", ack)
	}
	var hb rawAck
	rawCall(t, http.MethodPost, fmt.Sprintf("%s/v1/heartbeat?job=%s&lease=%d&epoch=1", srvNew.URL, jm.Fingerprint, lmNew.Lease), []byte{}, &hb)
	if hb.Status != "stale-epoch" {
		t.Errorf("epoch-1 heartbeat at the epoch-2 coordinator = %q, want stale-epoch", hb.Status)
	}
	// Nothing merged anywhere: both fences held.
	for name, co := range map[string]*fabric.Coordinator{"old": coOld, "new": coNew} {
		st := co.Status()
		if st.ShardsDone != 0 {
			t.Errorf("%s coordinator committed %d shards through the fence", name, st.ShardsDone)
		}
		if st.StaleEpochRejects == 0 {
			t.Errorf("%s coordinator counted no stale-epoch rejects", name)
		}
	}
	if st := coNew.Status(); st.Epoch != 2 || st.Failovers != 1 {
		t.Errorf("successor status = %+v, want epoch 2 after 1 failover", st)
	}

	// Correctly stamped traffic drains the successor to the golden result.
	if ack := complete(srvNew, lmNew.Shard, lmNew.Lease, 2, rawCompletion(lmNew.FirstBlock, countsFor(lmNew))); ack.Status != "ok" {
		t.Fatalf("epoch-2 completion at the epoch-2 coordinator = %+v, want ok", ack)
	}
	for {
		lm := lease(srvNew, "loyalist")
		if lm.Status == "done" || lm.Status == "idle" {
			break
		}
		if lm.Status != "lease" {
			t.Fatalf("drain lease = %+v", lm)
		}
		if ack := complete(srvNew, lm.Shard, lm.Lease, 2, rawCompletion(lm.FirstBlock, countsFor(lm))); ack.Status != "ok" {
			t.Fatalf("drain completion for shard %d = %+v", lm.Shard, ack)
		}
	}
	if got, want := summarize(<-newRes), summarize(golden); got != want {
		t.Errorf("fenced run diverged:\n got %s\nwant %s", got, want)
	}
}

// TestEpochDerivedFromLedger: every coordinator built over the same
// ledger gets the next epoch — restart-in-place fences the predecessor
// with no operator-managed counter.
func TestEpochDerivedFromLedger(t *testing.T) {
	dir := t.TempDir()
	for want := int64(1); want <= 3; want++ {
		st, err := checkpoint.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		co := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Store: st})
		if got := co.Status().Epoch; got != want {
			t.Fatalf("coordinator %d over the ledger got epoch %d, want %d", want, got, want)
		}
	}
	// Without a ledger the epoch still starts at 1, unfenced restarts.
	co := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now})
	if got := co.Status().Epoch; got != 1 {
		t.Errorf("ledgerless coordinator got epoch %d, want 1", got)
	}
}

// TestCoordinatorFailoverIdentity is the end-to-end handoff drill: the
// first coordinator dies mid-sweep after committing a prefix, a standby
// rebuilds from the shared ledger at a bumped epoch, workers fail over
// across the address list (one behind a resetting transport, one
// leaving mid-point), and the merged result is byte-identical to the
// single-machine engine.
func TestCoordinatorFailoverIdentity(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st1, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator A commits at every block so its ledger holds the full
	// prefix when it "dies" (context cancel + listener close).
	coA := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Store: st1, Resume: true, CheckpointEvery: 1})
	srvA := httptest.NewServer(coA.Handler())
	ctxA, cancelA := context.WithCancel(context.Background())
	resA := make(chan *experiment.Result, 1)
	go func() {
		res, err := coA.RunPoint(ctxA, cfg)
		if err != nil {
			t.Errorf("RunPoint A: %v", err)
		}
		resA <- res
	}()
	if err := fabric.RunWorker(context.Background(), fabric.WorkerOptions{
		URL: srvA.URL, ID: "prefix-worker", Poll: time.Millisecond, MaxShards: 3,
	}); err != nil {
		t.Fatalf("prefix worker: %v", err)
	}
	cancelA()
	partial := <-resA
	srvA.Close()
	if partial.Blocks == 0 || !partial.Interrupted {
		t.Fatalf("coordinator A died with %d blocks committed (interrupted=%t); the handoff would be trivial", partial.Blocks, partial.Interrupted)
	}

	// The standby rebuilds from the ledger: bumped epoch, resumed
	// frontier, counted failover.
	st2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coB := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Store: st2, Resume: true, Failovers: 1})
	if got := coB.Status().Epoch; got != 2 {
		t.Fatalf("promoted standby got epoch %d, want 2 (ledger held 1)", got)
	}
	srvB := httptest.NewServer(coB.Handler())
	defer srvB.Close()

	// Two workers, both pointed at the dead primary first: worker 0 also
	// rides a mid-body reset plan on its completions, worker 1 leaves
	// after two shards (churn). Both must rotate to the standby.
	reset := &chaos.NetFault{Plan: chaos.Plan{Seed: 21, Name: "failover-reset"}, Mode: chaos.NetReset, Times: 1, Path: "/v1/complete"}
	var wg sync.WaitGroup
	werrs := make([]error, 2)
	wopts := []fabric.WorkerOptions{
		{URL: srvA.URL, URLs: []string{srvB.URL}, ID: "rider", Poll: time.Millisecond,
			Client: &http.Client{Transport: reset, Timeout: 30 * time.Second}},
		{URL: srvA.URL, URLs: []string{srvB.URL}, ID: "churner", Poll: time.Millisecond, MaxShards: 2},
	}
	for i, opt := range wopts {
		wg.Add(1)
		go func(i int, opt fabric.WorkerOptions) {
			defer wg.Done()
			werrs[i] = fabric.RunWorker(context.Background(), opt)
		}(i, opt)
	}
	res, err := coB.RunPoint(context.Background(), cfg)
	coB.Shutdown()
	wg.Wait()
	if err != nil {
		t.Fatalf("RunPoint B: %v", err)
	}
	for i, werr := range werrs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if reset.Resets.Load() == 0 {
		t.Error("reset plan cut nothing; the chaos leg is vacuous")
	}
	if got, want := summarize(res), summarize(golden); got != want {
		t.Errorf("failed-over run diverged:\n got %s\nwant %s", got, want)
	}
	rec, ok := st2.Lookup(cfg.Fingerprint())
	if !ok || !rec.Done || rec.Blocks != golden.Blocks {
		t.Errorf("ledger after failover = %+v, want done at %d blocks", rec, golden.Blocks)
	}
}

// TestPoisonShardQuarantine drives the ladder by hand: a shard
// abandoned by two distinct workers gets exactly one fallback-flagged
// retry, is quarantined with a repro line in the ledger when that is
// abandoned too, and the point finishes on the committed prefix — no
// crash-loop, no reassignment forever, and a late completion for the
// quarantined shard can no longer commit.
func TestPoisonShardQuarantine(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	pl, err := experiment.NewPipeline(cfg.Code, cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	br, err := pl.NewBlockRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	co := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Store: st, PoisonAfter: 2})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	resCh := make(chan *experiment.Result, 1)
	go func() {
		res, err := co.RunPoint(context.Background(), cfg)
		if err != nil {
			t.Errorf("RunPoint: %v", err)
		}
		resCh <- res
	}()
	var jm rawJob
	for jm.Status != "job" {
		rawCall(t, http.MethodGet, srv.URL+"/v1/job", nil, &jm)
	}
	lease := func(worker string) rawLease {
		var lm rawLease
		rawCall(t, http.MethodPost, srv.URL+"/v1/lease?job="+jm.Fingerprint+"&worker="+worker, []byte{}, &lm)
		return lm
	}
	complete := func(shard int, leaseID int64, body []byte) rawAck {
		var ack rawAck
		rawCall(t, http.MethodPost,
			fmt.Sprintf("%s/v1/complete?job=%s&shard=%d&lease=%d&epoch=%d", srv.URL, jm.Fingerprint, shard, leaseID, jm.Epoch), body, &ack)
		return ack
	}
	abandon := func(lm rawLease, worker, reason string) rawAck {
		var ack rawAck
		rawCall(t, http.MethodPost,
			fmt.Sprintf("%s/v1/abandon?job=%s&shard=%d&lease=%d&worker=%s&epoch=%d&reason=%s",
				srv.URL, jm.Fingerprint, lm.Shard, lm.Lease, worker, jm.Epoch, reason), []byte{}, &ack)
		return ack
	}
	countsFor := func(lm rawLease) []int {
		counts, err := br.CountBlocks(context.Background(), lm.FirstBlock, lm.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}

	// Shards 0 and 1 complete cleanly; the committed prefix the point
	// must finish on.
	for want := 0; want < 2; want++ {
		lm := lease("healthy")
		if lm.Status != "lease" || lm.Shard != want {
			t.Fatalf("setup lease = %+v, want shard %d", lm, want)
		}
		if ack := complete(lm.Shard, lm.Lease, rawCompletion(lm.FirstBlock, countsFor(lm))); ack.Status != "ok" {
			t.Fatalf("setup completion = %+v", ack)
		}
	}
	// Two distinct workers walk away from shard 2: the ladder arms.
	var poisoned rawLease
	for _, w := range []string{"crasher-a", "crasher-b"} {
		lm := lease(w)
		if lm.Status != "lease" || lm.Shard != 2 || lm.Fallback {
			t.Fatalf("lease for %s = %+v, want a normal lease on shard 2", w, lm)
		}
		if ack := abandon(lm, w, "panic:+matcher+blew+up"); ack.Status != "ok" {
			t.Fatalf("abandon by %s = %+v", w, ack)
		}
		poisoned = lm
	}
	// Third lease is the one fallback-flagged retry.
	fb := lease("rescuer")
	if fb.Status != "lease" || fb.Shard != 2 || !fb.Fallback {
		t.Fatalf("post-threshold lease = %+v, want a fallback-flagged lease on shard 2", fb)
	}
	if st := co.Status(); st.FallbackRetries != 1 {
		t.Fatalf("FallbackRetries = %d, want 1", st.FallbackRetries)
	}
	// The retry fails too: quarantine, on the spot.
	if ack := abandon(fb, "rescuer", "panic:+fallback+blew+up+too"); ack.Status != "ok" {
		t.Fatalf("fallback abandon = %+v", ack)
	}
	if st := co.Status(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	// Shard 2 is off the table: the next lease skips straight to 3, and
	// a late (correct!) completion for it can no longer commit.
	next := lease("healthy")
	if next.Status != "lease" || next.Shard != 3 {
		t.Fatalf("post-quarantine lease = %+v, want shard 3", next)
	}
	if ack := complete(poisoned.Shard, poisoned.Lease, rawCompletion(poisoned.FirstBlock, countsFor(poisoned))); ack.Status != "idle" {
		t.Errorf("late completion for a quarantined shard = %+v, want idle (not merged)", ack)
	}
	// Drain the rest; the point must settle on the prefix before the
	// quarantine hole.
	if ack := complete(next.Shard, next.Lease, rawCompletion(next.FirstBlock, countsFor(next))); ack.Status != "ok" {
		t.Fatalf("drain completion = %+v", ack)
	}
	for {
		lm := lease("healthy")
		if lm.Status == "done" || lm.Status == "idle" {
			break
		}
		if lm.Status != "lease" {
			t.Fatalf("drain lease = %+v", lm)
		}
		if ack := complete(lm.Shard, lm.Lease, rawCompletion(lm.FirstBlock, countsFor(lm))); ack.Status != "ok" {
			t.Fatalf("drain completion for shard %d = %+v", lm.Shard, ack)
		}
	}
	res := <-resCh
	if res.Blocks != 2 || res.Shots != 128 {
		t.Errorf("quarantined point committed blocks=%d shots=%d, want the 2-block prefix (128 shots)", res.Blocks, res.Shots)
	}
	if len(res.ShardErrors) != 1 {
		t.Fatalf("ShardErrors = %v, want exactly the quarantined shard", res.ShardErrors)
	}
	se := res.ShardErrors[0]
	if se.Shard != 2 || se.FirstBlock != 2 || se.Seed != cfg.Seed || !strings.Contains(fmt.Sprint(se.PanicValue), "fallback blew up too") {
		t.Errorf("quarantine repro = %+v, want shard 2 at block 2 with the last failure", se)
	}
	// The ledger holds both the resumable (not Done) prefix record and
	// the quarantine repro line.
	rec, ok := st.Lookup(jm.Fingerprint)
	if !ok || rec.Done || rec.Blocks != 2 {
		t.Errorf("ledger record = %+v (ok=%t), want a not-done 2-block prefix", rec, ok)
	}
	repro, ok := st.Meta("quarantine:" + jm.Fingerprint + ":2")
	if !ok || !strings.Contains(repro, "first=2") || !strings.Contains(repro, "workers=3") || !strings.Contains(repro, "events=3") {
		t.Errorf("quarantine repro line = %q (ok=%t), want 3 abandonments (both crashers and the rescuer) at first=2", repro, ok)
	}
}

// TestWorkerFallbackLease pins the worker half of the ladder: a
// fallback-flagged lease is decoded with the worker's fallback chain
// and the completion names the rescuing decoder and echoes the epoch.
func TestWorkerFallbackLease(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	fp := cfg.Fingerprint()
	wire, err := fabric.MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The counts a plain-mwpm decode of shard 0 must produce, built
	// through the same production seam the worker uses.
	fbCfg := cfg
	fbCfg.Decoder = experiment.PlainMWPM
	pl, err := experiment.NewPipeline(cfg.Code, cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	fbr, err := pl.NewBlockRunner(fbCfg)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts, err := fbr.CountBlocks(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var gotDec, gotEpoch string
	var gotBody []byte
	leased := false
	completed := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/job", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		done := gotBody != nil
		mu.Unlock()
		status := "job"
		if done {
			status = "shutdown"
		}
		fmt.Fprintf(w, `{"status":%q,"fingerprint":%q,"config":%s,"lease_ttl_ms":60000,"epoch":5}`,
			status, fp, mustJSON(t, wire))
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if leased {
			fmt.Fprint(w, `{"status":"done"}`)
			return
		}
		leased = true
		fmt.Fprint(w, `{"status":"lease","lease":9,"shard":0,"first_block":0,"blocks":2,"epoch":5,"fallback":true}`)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		gotDec, gotEpoch, gotBody = r.URL.Query().Get("dec"), r.URL.Query().Get("epoch"), body
		mu.Unlock()
		close(completed)
		fmt.Fprint(w, `{"status":"ok","epoch":5}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	err = fabric.RunWorker(context.Background(), fabric.WorkerOptions{
		URL: srv.URL, ID: "rescuer", Poll: time.Millisecond,
		Fallback: []experiment.DecoderKind{experiment.PlainMWPM},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	<-completed
	mu.Lock()
	defer mu.Unlock()
	if gotDec != "plain-mwpm" {
		t.Errorf("completion dec = %q, want plain-mwpm (the rescuing decoder)", gotDec)
	}
	if gotEpoch != "5" {
		t.Errorf("completion epoch = %q, want the announced 5 echoed back", gotEpoch)
	}
	if want := rawCompletion(0, wantCounts); string(gotBody) != string(want) {
		t.Errorf("fallback completion body diverged from a direct plain-mwpm decode:\n got %q\nwant %q", gotBody, want)
	}
}

// TestNetFaultPlansIdentity is the acceptance matrix: each
// connection-level fault shape, bounded so the partition heals, must
// leave the merged result byte-identical to the single-machine engine.
func TestNetFaultPlansIdentity(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := summarize(golden)
	plans := []struct {
		name  string
		fault *chaos.NetFault
		hit   func(f *chaos.NetFault) int64
	}{
		{"refuse", &chaos.NetFault{Plan: chaos.Plan{Seed: 31, Name: "net-refuse"}, Mode: chaos.NetRefuse, Times: 3},
			func(f *chaos.NetFault) int64 { return f.Refused.Load() }},
		{"reset", &chaos.NetFault{Plan: chaos.Plan{Seed: 32, Name: "net-reset"}, Mode: chaos.NetReset, Times: 2, Path: "/v1/complete"},
			func(f *chaos.NetFault) int64 { return f.Resets.Load() }},
		{"blackhole", &chaos.NetFault{Plan: chaos.Plan{Seed: 33, Name: "net-blackhole"}, Mode: chaos.NetBlackhole, Times: 2},
			func(f *chaos.NetFault) int64 { return f.Blackholed.Load() }},
		{"trickle", &chaos.NetFault{Plan: chaos.Plan{Seed: 34, Name: "net-trickle"}, Mode: chaos.NetTrickle, Every: 2},
			func(f *chaos.NetFault) int64 { return f.Trickled.Load() }},
	}
	for _, p := range plans {
		t.Run(p.name, func(t *testing.T) {
			res := runFabric(t, cfg, 2, fabric.Options{}, func(i int) fabric.WorkerOptions {
				if i == 0 {
					return fabric.WorkerOptions{Client: &http.Client{Transport: p.fault, Timeout: 30 * time.Second}}
				}
				return fabric.WorkerOptions{}
			})
			if p.hit(p.fault) == 0 {
				t.Errorf("%s plan attacked nothing; the test is vacuous", p.name)
			}
			if got := summarize(res); got != want {
				t.Errorf("%s plan diverged:\n got %s\nwant %s", p.name, got, want)
			}
		})
	}
}

// TestWorkerMaxRetriesUnreachable: with a bounded retry budget and
// nobody answering on any address, the worker exits with the
// ErrUnreachable signal — the non-130 exit path — instead of retrying
// forever.
func TestWorkerMaxRetriesUnreachable(t *testing.T) {
	var naps int
	err := fabric.RunWorker(context.Background(), fabric.WorkerOptions{
		// Reserved port on localhost: refused instantly, never flaky-slow.
		URL: "http://127.0.0.1:1", URLs: []string{"http://127.0.0.1:1"},
		ID: "stranded", Poll: time.Millisecond, MaxRetries: 3,
		Sleep: func(time.Duration) { naps++ },
	})
	if !errors.Is(err, fabric.ErrUnreachable) {
		t.Fatalf("stranded worker returned %v, want ErrUnreachable", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %q does not name the exhausted budget", err)
	}
	if naps == 0 {
		t.Error("retry loop never backed off between attempts")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
