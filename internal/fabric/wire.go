// Wire codec for experiment.Config. The coordinator publishes the
// sweep point as plain JSON and every worker rebuilds the exact same
// Config from it — same code object graph, same schedule, same
// fingerprint. Rather than serializing the schedule's full window/phase
// structure, the wire carries how to reconstruct it (the canonical
// rotated-surface distance, or "greedy" implicitly), and the
// coordinator proves the codec faithful per point by round-tripping its
// own config and comparing fingerprints before any lease is granted;
// the worker then re-verifies the fingerprint it derives against the
// coordinator's, so engine drift between binaries is caught before a
// single block is decoded, never after.
package fabric

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
)

// WireCheck mirrors css.Check with a JSON-stable basis encoding.
type WireCheck struct {
	Basis   string `json:"basis"` // "X" or "Z"
	Support []int  `json:"support"`
	Color   int    `json:"color"`
}

// WireCode mirrors the identity-bearing fields of css.Code. K and the
// logical operator bases are deliberately omitted: css.New recomputes
// them deterministically from the checks, so they cannot drift from the
// stabilizer structure in transit.
type WireCode struct {
	Name    string      `json:"name"`
	Family  string      `json:"family"`
	N       int         `json:"n"`
	Checks  []WireCheck `json:"checks"`
	DX      int         `json:"dx"`
	DZ      int         `json:"dz"`
	DXExact bool        `json:"dx_exact"`
	DZExact bool        `json:"dz_exact"`
}

// WireConfig is the JSON shard-plan form of an experiment.Config: every
// result-affecting field, plus how to rebuild the schedule. Scheduling
// knobs (Workers, ShardShots, Fallback, DecodeTimeout) and runtime
// hooks (Resume, OnCommit, WrapDecoder) never cross the wire — shard
// placement is the coordinator's job and per-block counts are
// independent of it.
type WireConfig struct {
	Code         WireCode    `json:"code"`
	Arch         fpn.Options `json:"arch"`
	Basis        string      `json:"basis"`
	Rounds       int         `json:"rounds"` // verbatim, pre-normalization: it feeds the fingerprint
	P            float64     `json:"p"`
	Shots        int         `json:"shots"`
	Seed         int64       `json:"seed"`
	Decoder      string      `json:"decoder"`
	CodeCapacity bool        `json:"code_capacity,omitempty"`
	FixedIdle    bool        `json:"fixed_idle,omitempty"`
	TargetErrors int         `json:"target_errors,omitempty"`
	MaxCI        float64     `json:"max_ci,omitempty"`
	ScalarDecode bool        `json:"scalar_decode,omitempty"`
	// CanonicalRotatedD, when > 0, says the run uses the canonical
	// rotated-surface-code schedule of that distance (the only override
	// schedule production sweeps use); 0 means the greedy scheduler.
	CanonicalRotatedD int `json:"canonical_rotated_d,omitempty"`
}

// MarshalConfig converts cfg to its wire form. Configs carrying
// in-process-only hooks (WrapDecoder) or a non-canonical override
// schedule cannot cross the wire; the caller's round-trip fingerprint
// check catches the latter.
func MarshalConfig(cfg experiment.Config) (*WireConfig, error) {
	if cfg.Code == nil {
		return nil, fmt.Errorf("fabric: Config.Code is nil")
	}
	if cfg.WrapDecoder != nil {
		return nil, fmt.Errorf("fabric: Config.WrapDecoder cannot cross the wire; fault injection is per-process")
	}
	w := &WireConfig{
		Arch: cfg.Arch, Basis: string(cfg.Basis), Rounds: cfg.Rounds,
		P: cfg.P, Shots: cfg.Shots, Seed: cfg.Seed, Decoder: cfg.Decoder.String(),
		CodeCapacity: cfg.CodeCapacity, FixedIdle: cfg.FixedIdle,
		TargetErrors: cfg.TargetErrors, MaxCI: cfg.MaxCI, ScalarDecode: cfg.ScalarDecode,
	}
	code := cfg.Code
	w.Code = WireCode{
		Name: code.Name, Family: code.Family, N: code.N,
		DX: code.DX, DZ: code.DZ, DXExact: code.DXExact, DZExact: code.DZExact,
		Checks: make([]WireCheck, len(code.Checks)),
	}
	for i, c := range code.Checks {
		w.Code.Checks[i] = WireCheck{Basis: string(c.Basis), Support: c.Support, Color: c.Color}
	}
	if cfg.Schedule != nil {
		// The only override schedule sweeps use is the canonical rotated
		// ordering, reconstructible from the code distance alone. A
		// different override will fail the caller's round-trip
		// fingerprint check rather than run with the wrong circuit.
		w.CanonicalRotatedD = code.DX
	}
	return w, nil
}

// Config rebuilds the experiment.Config the wire form describes.
// Rounds is NOT normalized here: the fingerprint hashes the
// pre-normalization value, and normalization belongs to the engine.
func (w *WireConfig) Config() (experiment.Config, error) {
	var cfg experiment.Config
	dec, err := decoderKind(w.Decoder)
	if err != nil {
		return cfg, err
	}
	if len(w.Basis) != 1 || (w.Basis != "X" && w.Basis != "Z") {
		return cfg, fmt.Errorf("fabric: bad basis %q", w.Basis)
	}
	cfg = experiment.Config{
		Arch: w.Arch, Basis: css.Basis(w.Basis[0]), Rounds: w.Rounds,
		P: w.P, Shots: w.Shots, Seed: w.Seed, Decoder: dec,
		CodeCapacity: w.CodeCapacity, FixedIdle: w.FixedIdle,
		TargetErrors: w.TargetErrors, MaxCI: w.MaxCI, ScalarDecode: w.ScalarDecode,
	}
	if w.CanonicalRotatedD > 0 {
		l, err := surface.Rotated(w.CanonicalRotatedD)
		if err != nil {
			return cfg, fmt.Errorf("fabric: rebuild rotated d=%d: %w", w.CanonicalRotatedD, err)
		}
		s, _, err := schedule.CanonicalRotated(l)
		if err != nil {
			return cfg, fmt.Errorf("fabric: rebuild canonical schedule d=%d: %w", w.CanonicalRotatedD, err)
		}
		cfg.Code, cfg.Schedule = l.Code, s
		return cfg, nil
	}
	checks := make([]css.Check, len(w.Code.Checks))
	for i, c := range w.Code.Checks {
		if len(c.Basis) != 1 {
			return cfg, fmt.Errorf("fabric: check %d has bad basis %q", i, c.Basis)
		}
		checks[i] = css.Check{Basis: css.Basis(c.Basis[0]), Support: c.Support, Color: c.Color}
	}
	code, err := css.New(w.Code.Name, w.Code.Family, w.Code.N, checks)
	if err != nil {
		return cfg, fmt.Errorf("fabric: rebuild code: %w", err)
	}
	code.DX, code.DZ = w.Code.DX, w.Code.DZ
	code.DXExact, code.DZExact = w.Code.DXExact, w.Code.DZExact
	cfg.Code = code
	return cfg, nil
}

// decoderKind resolves a DecoderKind from its String form — the stable
// names, not the iota values, cross the wire.
func decoderKind(name string) (experiment.DecoderKind, error) {
	for k := experiment.FlaggedMWPM; k <= experiment.BPOSD; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fabric: unknown decoder %q", name)
}
