// Package fabric distributes one BER sweep across machines: a
// coordinator derives the shard plan from an experiment.Config, hands
// out lease-based shard ranges over HTTP, and merges worker-streamed
// per-block logical-error counts through experiment.Frontier — the
// exact commit/early-stopping core a single-machine run uses — into the
// fingerprint-keyed checkpoint ledger. Workers wrap the production
// engine via experiment.BlockRunner, stream results with CRC32-C
// framing, heartbeat their leases, and resume cleanly after a
// disconnect.
//
// Bit-identity is the design invariant, not an aspiration: per-block
// counts are deterministic functions of (circuit, base seed, block
// index), shard leases are pure scheduling, and the frontier evaluates
// the stop criteria only on the committed prefix — so the merged result
// is byte-identical to experiment.Run for any worker population, any
// join/leave order, and any lease-expiry schedule. The identity and
// chaos suites in this package enforce exactly that.
//
// Everything result-affecting is wall-clock-free (fpnvet's leaseguard
// check enforces it): lease expiry flows through an injectable clock
// and is evaluated lazily on lease traffic, never from background
// timers, so chaos tests can drive any expiry schedule
// deterministically. An expired lease only ever causes a shard to be
// recomputed — recomputation is idempotent by determinism.
//
// Protocol (JSON over HTTP, stdlib only):
//
//	GET  /v1/job        → {"status":"job","fingerprint":…,"config":…,"lease_ttl_ms":…,"epoch":E}
//	                      | {"status":"idle"} | {"status":"shutdown"}
//	POST /v1/lease      ?job=FP&worker=ID
//	                    → {"status":"lease","lease":…,"shard":…,"first_block":…,"blocks":…,
//	                       "epoch":E[,"fallback":true]}
//	                      | {"status":"wait"} | {"status":"done"} | {"status":"idle"}
//	POST /v1/heartbeat  ?job=FP&lease=N[&epoch=E] → {"status":"ok"} | {"status":"expired"}
//	                      | {"status":"stale-epoch"}
//	POST /v1/complete   ?job=FP&shard=N&lease=N[&epoch=E][&dec=NAME], body =
//	                    CRC-framed count lines + trailer → {"status":"ok"}
//	                      | {"status":"conflict"} | {"status":"idle"}
//	                      | {"status":"stale-epoch"}; HTTP 400 on a torn stream
//	POST /v1/abandon    ?job=FP&shard=N&lease=N&worker=ID[&epoch=E][&reason=…]
//	                    → {"status":"ok"} | {"status":"expired"} | {"status":"stale-epoch"}
//	GET  /v1/status     → statusMsg (epoch, shard progress, resilience counters)
//
// Epoch fencing: every coordinator runs under a monotone epoch,
// persisted in the checkpoint ledger, bumped each time a coordinator
// (re)builds its state from that ledger. Leases and job announcements
// carry the epoch; workers echo it on heartbeats, completions and
// abandons and refuse to work for a coordinator announcing a lower
// epoch than the highest they have seen. A partitioned stale
// coordinator therefore cannot commit: the fleet that failed over
// answers it "stale-epoch" traffic only, and its own completions are
// rejected by the live coordinator the same way. An empty epoch
// parameter is accepted unfenced for hand-driven debugging clients.
package fabric

// Protocol statuses shared by coordinator and worker.
const (
	statusJob        = "job"
	statusIdle       = "idle"
	statusShutdown   = "shutdown"
	statusLease      = "lease"
	statusWait       = "wait"
	statusDone       = "done"
	statusOK         = "ok"
	statusExpired    = "expired"
	statusConflict   = "conflict"
	statusStaleEpoch = "stale-epoch"
)

// jobMsg answers GET /v1/job: the sweep point currently being worked,
// if any, as a wire-portable configuration.
type jobMsg struct {
	Status      string      `json:"status"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	Config      *WireConfig `json:"config,omitempty"`
	LeaseTTLMs  int64       `json:"lease_ttl_ms,omitempty"`
	Epoch       int64       `json:"epoch,omitempty"`
}

// leaseMsg answers POST /v1/lease: one shard range the worker now owns
// until the lease expires or it posts the completion. Fallback marks a
// poison-suspect shard's last chance: the worker should decode it with
// its fallback chain instead of the primary decoder.
type leaseMsg struct {
	Status     string `json:"status"`
	Lease      int64  `json:"lease,omitempty"`
	Shard      int    `json:"shard,omitempty"`
	FirstBlock int    `json:"first_block,omitempty"`
	Blocks     int    `json:"blocks,omitempty"`
	Epoch      int64  `json:"epoch,omitempty"`
	Fallback   bool   `json:"fallback,omitempty"`
}

// ackMsg answers POST /v1/heartbeat, /v1/complete and /v1/abandon.
type ackMsg struct {
	Status string `json:"status"`
	Epoch  int64  `json:"epoch,omitempty"`
}

// statusMsg answers GET /v1/status: the coordinator's identity (epoch,
// current point) and its resilience counters — the operator's view of
// failovers, quarantines and fencing at work.
type statusMsg struct {
	Status            string `json:"status"`
	Epoch             int64  `json:"epoch"`
	Fingerprint       string `json:"fingerprint,omitempty"`
	ShardsTotal       int    `json:"shards_total"`
	ShardsDone        int    `json:"shards_done"`
	Quarantined       int64  `json:"quarantined"`
	StaleEpochRejects int64  `json:"stale_epoch_rejects"`
	LeaseReassigns    int64  `json:"lease_reassigns"`
	FallbackRetries   int64  `json:"fallback_retries"`
	Failovers         int64  `json:"failovers"`
}
