// The coordinator side of the fabric: owns the shard plan, the lease
// table and the commit frontier of one sweep point at a time, and
// exposes them over four HTTP endpoints. All result-affecting state
// flows through experiment.Frontier and the deterministic shard plan;
// the clock only ever decides when an unfinished shard may be handed to
// another worker, and recomputing a shard is idempotent by determinism
// — so any lease-expiry schedule yields the same merged result.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/experiment"
)

// Options configures a Coordinator. The zero value serves on the real
// clock with a 30-second lease TTL and no checkpoint ledger.
type Options struct {
	// Now supplies the clock for lease bookkeeping; nil means the wall
	// clock. The chaos and identity suites inject a fake clock here so
	// every expiry schedule is reproducible.
	Now func() time.Time
	// LeaseTTL is how long a granted shard lease lives without a
	// heartbeat or completion before it may be reassigned; 0 means 30s.
	LeaseTTL time.Duration
	// Store, when non-nil, is the fingerprint-keyed checkpoint ledger
	// the coordinator merges committed progress into.
	Store *checkpoint.Store
	// Resume continues points from the ledger's committed prefix
	// instead of restarting them.
	Resume bool
	// CheckpointEvery is the ledger write cadence in committed blocks;
	// 0 means 256.
	CheckpointEvery int
	// Log, when non-nil, receives one-line operational notes (lease
	// reassignments, conflicting completions, checkpoint errors).
	Log io.Writer
}

// defaultNow is the production clock.
//
//fpnvet:wallclock lease TTLs only gate shard reassignment; recomputation is idempotent
func defaultNow() time.Time { return time.Now() }

// Coordinator distributes sweep points to workers. Serve its Handler
// somewhere, then call RunPoint once per point (sequentially — one
// point is in flight at a time, matching the single-machine sweep
// order) and Shutdown when the sweep is over so workers exit.
type Coordinator struct {
	now   func() time.Time //fpnvet:unguarded immutable after NewCoordinator
	ttl   time.Duration    //fpnvet:unguarded immutable after NewCoordinator
	store *checkpoint.Store
	rsm   bool
	every int
	log   io.Writer

	mu       sync.Mutex
	job      *job  //fpnvet:guardedby mu
	leaseSeq int64 //fpnvet:guardedby mu
	shutdown bool  //fpnvet:guardedby mu
}

// job is one sweep point in flight.
type job struct {
	fp     string
	wire   *WireConfig
	fr     *experiment.Frontier
	shards []shardState
	done   chan struct{}
	closed bool
}

// shardState is the lease table entry of one contiguous block range.
type shardState struct {
	first  int
	blocks int
	done   bool
	digest uint32
	lease  int64 // 0 = unleased
	worker string
	expiry time.Time
}

// NewCoordinator builds a Coordinator from opt.
func NewCoordinator(opt Options) *Coordinator {
	now := opt.Now
	if now == nil {
		now = defaultNow
	}
	ttl := opt.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	every := opt.CheckpointEvery
	if every <= 0 {
		every = 256
	}
	return &Coordinator{now: now, ttl: ttl, store: opt.Store, rsm: opt.Resume, every: every, log: opt.Log}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.log != nil {
		fmt.Fprintf(c.log, "fabric: "+format+"\n", args...)
	}
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/job", c.handleJob)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	return mux
}

// writeJSON and badRequest are the handlers' only response writers, and
// every handler computes its reply under c.mu, releases, then writes —
// a slow or dead client must never stall lease bookkeeping for the
// workers that are still making progress.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// An encode failure here means the client is gone; it re-polls.
	//fpnvet:nodeadline bounded by the serving http.Server WriteTimeout (cmd/ber arms one)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, msg string) {
	//fpnvet:nodeadline bounded by the serving http.Server WriteTimeout (cmd/ber arms one)
	http.Error(w, msg, http.StatusBadRequest)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.jobPoll())
}

// jobPoll snapshots the current job announcement under the lock.
func (c *Coordinator) jobPoll() jobMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.shutdown:
		return jobMsg{Status: statusShutdown}
	case c.job == nil:
		return jobMsg{Status: statusIdle}
	}
	return jobMsg{
		Status: statusJob, Fingerprint: c.job.fp,
		Config: c.job.wire, LeaseTTLMs: c.ttl.Milliseconds(),
	}
}

// handleLease grants the lowest-index shard that is not done and not
// under a live lease. Expiry is evaluated lazily right here — never
// from background timers — so tests drive any schedule via the
// injected clock, and an expired-then-completed shard still merges
// (completion is validated by content, not by lease liveness).
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.grantLease(r.URL.Query().Get("worker"), r.URL.Query().Get("job")))
}

// grantLease does the lease-table walk under the lock and returns the
// reply for the handler to write after release.
func (c *Coordinator) grantLease(worker, fp string) leaseMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shutdown {
		return leaseMsg{Status: statusShutdown}
	}
	jb := c.job
	if jb == nil || jb.fp != fp {
		return leaseMsg{Status: statusIdle}
	}
	if jb.fr.Done() {
		c.completeLocked(jb)
		return leaseMsg{Status: statusDone}
	}
	now := c.now()
	for i := range jb.shards {
		sh := &jb.shards[i]
		if sh.done {
			continue
		}
		if sh.lease != 0 && sh.expiry.After(now) {
			continue
		}
		if sh.lease != 0 {
			c.logf("lease %d on shard %d (worker %s) expired; reassigning to %s", sh.lease, i, sh.worker, worker)
		}
		c.leaseSeq++
		sh.lease, sh.worker, sh.expiry = c.leaseSeq, worker, now.Add(c.ttl)
		return leaseMsg{
			Status: statusLease, Lease: sh.lease, Shard: i,
			FirstBlock: sh.first, Blocks: sh.blocks,
		}
	}
	return leaseMsg{Status: statusWait}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("job")
	lease, err := strconv.ParseInt(r.URL.Query().Get("lease"), 10, 64)
	if err != nil {
		badRequest(w, "bad lease id")
		return
	}
	writeJSON(w, c.renewLease(fp, lease))
}

func (c *Coordinator) renewLease(fp string, lease int64) ackMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	jb := c.job
	if jb == nil || jb.fp != fp {
		return ackMsg{Status: statusExpired}
	}
	for i := range jb.shards {
		sh := &jb.shards[i]
		if sh.lease == lease && !sh.done {
			// Still assigned, so still ours: a heartbeat renews even a
			// lapsed lease as long as no one else claimed the shard.
			sh.expiry = c.now().Add(c.ttl)
			return ackMsg{Status: statusOK}
		}
	}
	return ackMsg{Status: statusExpired}
}

// handleComplete merges one shard's streamed counts. The stream is
// fully validated before anything is merged — a torn body is a 400 and
// the worker resends. Completions are accepted by content for the
// job's shard range regardless of lease liveness (a stale worker's
// correct result is still correct); a duplicate completion is
// idempotent when its digest matches and a reported conflict when it
// does not, with the first completion winning.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("job")
	shardIdx, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		badRequest(w, "bad shard index")
		return
	}
	//fpnvet:nodeadline bounded by the serving http.Server ReadTimeout (cmd/ber arms one)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		badRequest(w, "torn result stream: "+err.Error())
		return
	}
	ack, errMsg := c.mergeShard(fp, shardIdx, body)
	if errMsg != "" {
		badRequest(w, errMsg)
		return
	}
	writeJSON(w, ack)
}

// mergeShard validates and merges one completion under the lock; a
// non-empty second return is a 400 for the handler to send.
func (c *Coordinator) mergeShard(fp string, shardIdx int, body []byte) (ackMsg, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	jb := c.job
	if jb == nil || jb.fp != fp {
		// The point is gone (finished or superseded); nothing to merge.
		return ackMsg{Status: statusIdle}, ""
	}
	if shardIdx < 0 || shardIdx >= len(jb.shards) {
		return ackMsg{}, "shard index out of range"
	}
	sh := &jb.shards[shardIdx]
	counts, err := readCounts(bytes.NewReader(body), sh.first, sh.blocks)
	if err != nil {
		return ackMsg{}, err.Error()
	}
	digest := countsDigest(counts)
	if sh.done {
		if digest == sh.digest {
			return ackMsg{Status: statusOK}, ""
		}
		c.logf("conflicting completion for shard %d of %s: digest %08x vs committed %08x (first wins)",
			shardIdx, fp, digest, sh.digest)
		return ackMsg{Status: statusConflict}, ""
	}
	for i, e := range counts {
		jb.fr.Mark(sh.first+i, e)
	}
	sh.done, sh.digest, sh.lease = true, digest, 0
	jb.fr.Commit()
	if jb.fr.Done() {
		c.completeLocked(jb)
	}
	return ackMsg{Status: statusOK}, ""
}

// completeLocked signals RunPoint that the frontier is done. Idempotent;
// caller holds c.mu.
func (c *Coordinator) completeLocked(jb *job) {
	if !jb.closed {
		jb.closed = true
		close(jb.done)
	}
}

// RunPoint runs one sweep point to completion on whatever workers join,
// mirroring Pipeline.RunContext's contract: the committed prefix comes
// back as a partial Result with Interrupted set when ctx is cancelled,
// and ledger bookkeeping (resume, periodic checkpoints, the final Done
// record) happens here when Options.Store is set. The config must
// survive the wire codec verbatim — RunPoint proves it by fingerprint
// round-trip before publishing the job.
func (c *Coordinator) RunPoint(ctx context.Context, cfg experiment.Config) (*experiment.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wire, err := MarshalConfig(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := wire.Config()
	if err != nil {
		return nil, fmt.Errorf("fabric: config does not survive the wire: %w", err)
	}
	fp := cfg.Fingerprint()
	if got := rt.Fingerprint(); got != fp {
		return nil, fmt.Errorf("fabric: config is not wire-representable: fingerprint %s round-trips to %s", fp, got)
	}
	if c.store != nil {
		if rec, ok := c.store.Lookup(fp); ok {
			if rec.Done {
				return experiment.Reconstruct(cfg, rec.Blocks, rec.Shots, rec.Errors, rec.EarlyStopped), nil
			}
			if c.rsm {
				cfg.Resume = &experiment.Resume{Blocks: rec.Blocks, Shots: rec.Shots, Errors: rec.Errors}
				if err := cfg.Validate(); err != nil {
					return nil, fmt.Errorf("fabric: checkpoint does not match the configuration: %w", err)
				}
			}
		}
		userCommit := cfg.OnCommit
		last := 0
		if cfg.Resume != nil {
			last = cfg.Resume.Blocks
		}
		cfg.OnCommit = func(p experiment.Progress) {
			if userCommit != nil {
				userCommit(p)
			}
			if p.Blocks-last < c.every {
				return
			}
			last = p.Blocks
			if err := c.store.Put(checkpoint.Record{Key: fp, Blocks: p.Blocks, Shots: p.Shots, Errors: p.Errors}); err != nil {
				c.logf("checkpoint: %v", err)
			}
		}
	}
	fr := experiment.NewFrontier(cfg)
	if !fr.Done() {
		shardShots := cfg.ShardShots
		if shardShots <= 0 {
			shardShots = 1024
		}
		shardBlocks := (shardShots + 63) / 64
		jb := &job{fp: fp, wire: wire, fr: fr, done: make(chan struct{})}
		for first := fr.Start(); first < fr.Total(); first += shardBlocks {
			n := shardBlocks
			if first+n > fr.Total() {
				n = fr.Total() - first
			}
			jb.shards = append(jb.shards, shardState{first: first, blocks: n})
		}
		c.mu.Lock()
		if c.shutdown {
			c.mu.Unlock()
			return nil, fmt.Errorf("fabric: coordinator is shut down")
		}
		if c.job != nil {
			inflight := c.job.fp
			c.mu.Unlock()
			return nil, fmt.Errorf("fabric: a point is already in flight (%s)", inflight)
		}
		c.job = jb
		c.mu.Unlock()
		select {
		case <-jb.done:
		case <-ctx.Done():
		}
		c.mu.Lock()
		c.job = nil
		c.mu.Unlock()
	}
	p := fr.State()
	res := experiment.Reconstruct(cfg, p.Blocks, p.Shots, p.Errors, fr.Finalized())
	res.Interrupted = ctx.Err() != nil && !fr.Done()
	if c.store != nil {
		rec := checkpoint.Record{Key: fp, Blocks: p.Blocks, Shots: p.Shots, Errors: p.Errors}
		if fr.Done() {
			rec.Done, rec.EarlyStopped = true, fr.Finalized()
		}
		if err := c.store.Put(rec); err != nil {
			c.logf("checkpoint: %v", err)
		}
	}
	return res, nil
}

// Shutdown tells polling workers the sweep is over: subsequent job
// polls answer "shutdown" and RunPoint refuses new points. Call it
// after the last RunPoint has returned; it does not interrupt a point
// in flight (cancel RunPoint's context for that).
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shutdown = true
}
