// The coordinator side of the fabric: owns the shard plan, the lease
// table and the commit frontier of one sweep point at a time, and
// exposes them over four HTTP endpoints. All result-affecting state
// flows through experiment.Frontier and the deterministic shard plan;
// the clock only ever decides when an unfinished shard may be handed to
// another worker, and recomputing a shard is idempotent by determinism
// — so any lease-expiry schedule yields the same merged result.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/experiment"
)

// Options configures a Coordinator. The zero value serves on the real
// clock with a 30-second lease TTL and no checkpoint ledger.
type Options struct {
	// Now supplies the clock for lease bookkeeping; nil means the wall
	// clock. The chaos and identity suites inject a fake clock here so
	// every expiry schedule is reproducible.
	Now func() time.Time
	// LeaseTTL is how long a granted shard lease lives without a
	// heartbeat or completion before it may be reassigned; 0 means 30s.
	LeaseTTL time.Duration
	// Store, when non-nil, is the fingerprint-keyed checkpoint ledger
	// the coordinator merges committed progress into.
	Store *checkpoint.Store
	// Resume continues points from the ledger's committed prefix
	// instead of restarting them.
	Resume bool
	// CheckpointEvery is the ledger write cadence in committed blocks;
	// 0 means 256.
	CheckpointEvery int
	// Log, when non-nil, receives one-line operational notes (lease
	// reassignments, conflicting completions, checkpoint errors).
	Log io.Writer
	// Epoch forces the coordinator's fencing epoch; 0 derives it from
	// the ledger (last persisted epoch + 1) or defaults to 1 without a
	// Store. Leases carry the epoch, and completions/heartbeats fenced
	// with a different one are rejected — a partitioned predecessor can
	// never commit into a successor's frontier.
	Epoch int64
	// PoisonAfter is the distinct-worker abandonment threshold at which
	// a shard is suspected poisoned: it then gets exactly one
	// fallback-flagged retry lease and is quarantined if that fails
	// too, instead of crash-looping across the fleet forever. Twice the
	// threshold in total abandonment events also trips it, so a
	// single-worker fleet cannot livelock below the distinct count.
	// 0 means 3.
	PoisonAfter int
	// Failovers records how many coordinator handoffs preceded this
	// one; a promoted standby passes its takeover count, and the value
	// is reported verbatim on /v1/status.
	Failovers int64
}

// defaultNow is the production clock.
//
//fpnvet:wallclock lease TTLs only gate shard reassignment; recomputation is idempotent
func defaultNow() time.Time { return time.Now() }

// Coordinator distributes sweep points to workers. Serve its Handler
// somewhere, then call RunPoint once per point (sequentially — one
// point is in flight at a time, matching the single-machine sweep
// order) and Shutdown when the sweep is over so workers exit.
type Coordinator struct {
	now       func() time.Time //fpnvet:unguarded immutable after NewCoordinator
	ttl       time.Duration    //fpnvet:unguarded immutable after NewCoordinator
	store     *checkpoint.Store
	rsm       bool
	every     int
	log       io.Writer
	epoch     int64 //fpnvet:unguarded immutable after NewCoordinator
	poison    int   //fpnvet:unguarded immutable after NewCoordinator
	failovers int64 //fpnvet:unguarded immutable after NewCoordinator

	staleRejects atomic.Int64 // completions/heartbeats fenced off by epoch
	reassigns    atomic.Int64 // expired leases handed to another worker
	fbRetries    atomic.Int64 // poison-suspect shards granted a fallback lease
	quarantined  atomic.Int64 // shards quarantined after the fallback retry failed

	mu       sync.Mutex
	job      *job  //fpnvet:guardedby mu
	leaseSeq int64 //fpnvet:guardedby mu
	shutdown bool  //fpnvet:guardedby mu
}

// job is one sweep point in flight.
type job struct {
	fp     string
	wire   *WireConfig
	fr     *experiment.Frontier
	shards []shardState
	seed   int64  // base seed, for quarantine repro lines
	dec    string // primary decoder name, for degradation accounting
	quar   int    // shards quarantined in this job
	serrs  []experiment.ShardError
	fbBlks int // blocks rescued by a coordinator-flagged fallback retry
	done   chan struct{}
	closed bool
}

// shardState is the lease table entry of one contiguous block range.
type shardState struct {
	first  int
	blocks int
	done   bool
	digest uint32
	lease  int64 // 0 = unleased
	worker string
	expiry time.Time

	// Poison-shard bookkeeping: which distinct workers walked away from
	// this shard (lease expiry or explicit abandon), how many times in
	// total, the last reported failure, and where the shard stands on
	// the retry-once-then-quarantine ladder.
	abandons    map[string]bool
	events      int
	lastErr     string
	fallbackTry bool
	quarantined bool
}

// epochMetaKey is the ledger annotation persisting the highest
// coordinator epoch ever to own the store.
const epochMetaKey = "fabric-epoch"

// NewCoordinator builds a Coordinator from opt. When a Store is
// configured, the fencing epoch is read from the ledger, bumped and
// persisted — a restarted or promoted coordinator automatically fences
// out its predecessor's traffic.
func NewCoordinator(opt Options) *Coordinator {
	now := opt.Now
	if now == nil {
		now = defaultNow
	}
	ttl := opt.LeaseTTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	every := opt.CheckpointEvery
	if every <= 0 {
		every = 256
	}
	poison := opt.PoisonAfter
	if poison <= 0 {
		poison = 3
	}
	c := &Coordinator{
		now: now, ttl: ttl, store: opt.Store, rsm: opt.Resume, every: every,
		log: opt.Log, poison: poison, failovers: opt.Failovers,
	}
	c.epoch = opt.Epoch
	if c.epoch == 0 {
		c.epoch = 1
		if c.store != nil {
			if prev, ok := c.store.Meta(epochMetaKey); ok {
				if n, err := strconv.ParseInt(prev, 10, 64); err == nil && n > 0 {
					c.epoch = n + 1
				}
			}
		}
	}
	if c.store != nil {
		if err := c.store.SetMeta(epochMetaKey, strconv.FormatInt(c.epoch, 10)); err != nil {
			c.logf("persisting epoch %d: %v", c.epoch, err)
		}
	}
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.log != nil {
		fmt.Fprintf(c.log, "fabric: "+format+"\n", args...)
	}
}

// Handler returns the coordinator's HTTP surface.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/job", c.handleJob)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/abandon", c.handleAbandon)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	return mux
}

// epochOK fences a request's echoed epoch: empty is accepted unfenced
// (hand-driven debugging clients), anything else must match exactly —
// both a fenced-out predecessor and a worker still loyal to one are
// turned away the same way.
func (c *Coordinator) epochOK(epoch string) bool {
	if epoch == "" {
		return true
	}
	n, err := strconv.ParseInt(epoch, 10, 64)
	if err == nil && n == c.epoch {
		return true
	}
	c.staleRejects.Add(1)
	return false
}

// writeJSON and badRequest are the handlers' only response writers, and
// every handler computes its reply under c.mu, releases, then writes —
// a slow or dead client must never stall lease bookkeeping for the
// workers that are still making progress.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// An encode failure here means the client is gone; it re-polls.
	//fpnvet:nodeadline bounded by the serving http.Server WriteTimeout (cmd/ber arms one)
	_ = json.NewEncoder(w).Encode(v)
}

func badRequest(w http.ResponseWriter, msg string) {
	//fpnvet:nodeadline bounded by the serving http.Server WriteTimeout (cmd/ber arms one)
	http.Error(w, msg, http.StatusBadRequest)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.jobPoll())
}

// jobPoll snapshots the current job announcement under the lock.
func (c *Coordinator) jobPoll() jobMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.shutdown:
		return jobMsg{Status: statusShutdown}
	case c.job == nil:
		return jobMsg{Status: statusIdle}
	}
	return jobMsg{
		Status: statusJob, Fingerprint: c.job.fp,
		Config: c.job.wire, LeaseTTLMs: c.ttl.Milliseconds(),
		Epoch: c.epoch,
	}
}

// handleLease grants the lowest-index shard that is not done and not
// under a live lease. Expiry is evaluated lazily right here — never
// from background timers — so tests drive any schedule via the
// injected clock, and an expired-then-completed shard still merges
// (completion is validated by content, not by lease liveness).
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.grantLease(r.URL.Query().Get("worker"), r.URL.Query().Get("job")))
}

// grantLease does the lease-table walk under the lock and returns the
// reply for the handler to write after release. The walk is also where
// the poison ladder advances: an expired lease is recorded as an
// abandonment, a shard past the abandonment threshold gets exactly one
// fallback-flagged retry, and one that burned the retry too is
// quarantined right here instead of being handed out again.
func (c *Coordinator) grantLease(worker, fp string) leaseMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shutdown {
		return leaseMsg{Status: statusShutdown}
	}
	jb := c.job
	if jb == nil || jb.fp != fp {
		return leaseMsg{Status: statusIdle}
	}
	if jb.fr.Done() {
		c.completeLocked(jb)
		return leaseMsg{Status: statusDone}
	}
	now := c.now()
	for i := range jb.shards {
		sh := &jb.shards[i]
		if sh.done || sh.quarantined {
			continue
		}
		if sh.lease != 0 && sh.expiry.After(now) {
			continue
		}
		if sh.lease != 0 {
			c.logf("lease %d on shard %d (worker %s) expired; reassigning to %s", sh.lease, i, sh.worker, worker)
			c.reassigns.Add(1)
			recordAbandon(sh, sh.worker, "lease expired")
			sh.lease = 0
		}
		if c.poisoned(sh) {
			if sh.fallbackTry {
				c.quarantineLocked(jb, i, sh)
				continue
			}
			sh.fallbackTry = true
			c.fbRetries.Add(1)
			c.leaseSeq++
			sh.lease, sh.worker, sh.expiry = c.leaseSeq, worker, now.Add(c.ttl)
			c.logf("shard %d abandoned %d times by %d workers; granting %s one fallback retry",
				i, sh.events, len(sh.abandons), worker)
			return leaseMsg{
				Status: statusLease, Lease: sh.lease, Shard: i,
				FirstBlock: sh.first, Blocks: sh.blocks,
				Epoch: c.epoch, Fallback: true,
			}
		}
		c.leaseSeq++
		sh.lease, sh.worker, sh.expiry = c.leaseSeq, worker, now.Add(c.ttl)
		return leaseMsg{
			Status: statusLease, Lease: sh.lease, Shard: i,
			FirstBlock: sh.first, Blocks: sh.blocks, Epoch: c.epoch,
		}
	}
	if c.allSettledLocked(jb) {
		// Every shard is merged or quarantined; the frontier can never
		// finish naturally past a quarantine hole, so release RunPoint
		// with the committed prefix.
		c.completeLocked(jb)
		return leaseMsg{Status: statusDone}
	}
	return leaseMsg{Status: statusWait}
}

// recordAbandon books one walk-away (lease expiry or explicit abandon)
// against a shard. Caller holds c.mu.
func recordAbandon(sh *shardState, worker, reason string) {
	if sh.abandons == nil {
		sh.abandons = make(map[string]bool)
	}
	if worker != "" {
		sh.abandons[worker] = true
	}
	sh.events++
	if reason != "" {
		sh.lastErr = reason
	}
}

// poisoned reports whether a shard has crossed the abandonment
// threshold: PoisonAfter distinct workers, or twice that in total
// events so a single-worker fleet cannot livelock below the distinct
// count. Caller holds c.mu.
func (c *Coordinator) poisoned(sh *shardState) bool {
	return len(sh.abandons) >= c.poison || sh.events >= 2*c.poison
}

// quarantineLocked writes a shard off: the frontier limit is lowered so
// the run finishes on the committed prefix, the failure is attached to
// the job as a ShardError, and a repro line lands in the ledger so the
// shard can be replayed offline (same fingerprint, same first block —
// determinism makes the repro exact). Caller holds c.mu.
func (c *Coordinator) quarantineLocked(jb *job, i int, sh *shardState) {
	sh.quarantined, sh.lease = true, 0
	jb.quar++
	c.quarantined.Add(1)
	jb.fr.Quarantine(sh.first)
	jb.serrs = append(jb.serrs, experiment.ShardError{
		Seed: jb.seed, Shard: i, FirstBlock: sh.first, Blocks: sh.blocks,
		Decoder: jb.dec, PanicValue: sh.lastErr,
	})
	c.logf("quarantining shard %d (blocks %d+%d) after %d abandonments by %d workers; last error: %s",
		i, sh.first, sh.blocks, sh.events, len(sh.abandons), sh.lastErr)
	if c.store != nil {
		key := "quarantine:" + jb.fp + ":" + strconv.Itoa(sh.first)
		val := fmt.Sprintf("shard=%d first=%d blocks=%d seed=%d decoder=%s events=%d workers=%d err=%q",
			i, sh.first, sh.blocks, jb.seed, jb.dec, sh.events, len(sh.abandons), sh.lastErr)
		if err := c.store.SetMeta(key, val); err != nil {
			c.logf("recording quarantine repro: %v", err)
		}
	}
}

// allSettledLocked reports whether every shard is merged or quarantined
// — with at least one quarantine, the only way the point ends. Caller
// holds c.mu.
func (c *Coordinator) allSettledLocked(jb *job) bool {
	if jb.quar == 0 {
		return false
	}
	for i := range jb.shards {
		if sh := &jb.shards[i]; !sh.done && !sh.quarantined {
			return false
		}
	}
	return true
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("job")
	lease, err := strconv.ParseInt(r.URL.Query().Get("lease"), 10, 64)
	if err != nil {
		badRequest(w, "bad lease id")
		return
	}
	writeJSON(w, c.renewLease(fp, lease, r.URL.Query().Get("epoch")))
}

func (c *Coordinator) renewLease(fp string, lease int64, epoch string) ackMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.epochOK(epoch) {
		return ackMsg{Status: statusStaleEpoch, Epoch: c.epoch}
	}
	jb := c.job
	if jb == nil || jb.fp != fp {
		return ackMsg{Status: statusExpired}
	}
	for i := range jb.shards {
		sh := &jb.shards[i]
		if sh.lease == lease && !sh.done {
			// Still assigned, so still ours: a heartbeat renews even a
			// lapsed lease as long as no one else claimed the shard.
			sh.expiry = c.now().Add(c.ttl)
			return ackMsg{Status: statusOK}
		}
	}
	return ackMsg{Status: statusExpired}
}

// handleAbandon releases a lease the worker cannot finish (decode
// failure, orderly shutdown mid-shard) so the shard recycles
// immediately instead of waiting out the TTL, and books the abandonment
// against the poison ladder. A fallback retry that is abandoned
// quarantines the shard on the spot.
func (c *Coordinator) handleAbandon(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	shardIdx, err := strconv.Atoi(q.Get("shard"))
	if err != nil {
		badRequest(w, "bad shard index")
		return
	}
	lease, err := strconv.ParseInt(q.Get("lease"), 10, 64)
	if err != nil {
		badRequest(w, "bad lease id")
		return
	}
	writeJSON(w, c.abandonShard(q.Get("job"), shardIdx, lease, q.Get("worker"), q.Get("epoch"), q.Get("reason")))
}

func (c *Coordinator) abandonShard(fp string, shardIdx int, lease int64, worker, epoch, reason string) ackMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.epochOK(epoch) {
		return ackMsg{Status: statusStaleEpoch, Epoch: c.epoch}
	}
	jb := c.job
	if jb == nil || jb.fp != fp {
		return ackMsg{Status: statusIdle}
	}
	if shardIdx < 0 || shardIdx >= len(jb.shards) {
		return ackMsg{Status: statusExpired}
	}
	sh := &jb.shards[shardIdx]
	if sh.done || sh.quarantined || sh.lease != lease {
		return ackMsg{Status: statusExpired}
	}
	wasFallback := sh.fallbackTry
	sh.lease = 0
	recordAbandon(sh, worker, reason)
	c.logf("worker %s abandoned shard %d: %s", worker, shardIdx, reason)
	if wasFallback && c.poisoned(sh) {
		c.quarantineLocked(jb, shardIdx, sh)
		if c.allSettledLocked(jb) {
			c.completeLocked(jb)
		}
	}
	return ackMsg{Status: statusOK, Epoch: c.epoch}
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Status())
}

// Status snapshots the coordinator's identity and resilience counters —
// what a standby probes to decide the primary is alive, and what an
// operator reads to see fencing and quarantine at work.
func (c *Coordinator) Status() statusMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	msg := statusMsg{
		Status:            statusIdle,
		Epoch:             c.epoch,
		Quarantined:       c.quarantined.Load(),
		StaleEpochRejects: c.staleRejects.Load(),
		LeaseReassigns:    c.reassigns.Load(),
		FallbackRetries:   c.fbRetries.Load(),
		Failovers:         c.failovers,
	}
	if c.shutdown {
		msg.Status = statusShutdown
	}
	if jb := c.job; jb != nil {
		msg.Status, msg.Fingerprint, msg.ShardsTotal = statusJob, jb.fp, len(jb.shards)
		for i := range jb.shards {
			if jb.shards[i].done {
				msg.ShardsDone++
			}
		}
	}
	return msg
}

// handleComplete merges one shard's streamed counts. The stream is
// fully validated before anything is merged — a torn body is a 400 and
// the worker resends. Completions are accepted by content for the
// job's shard range regardless of lease liveness (a stale worker's
// correct result is still correct); a duplicate completion is
// idempotent when its digest matches and a reported conflict when it
// does not, with the first completion winning.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	fp := r.URL.Query().Get("job")
	shardIdx, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		badRequest(w, "bad shard index")
		return
	}
	//fpnvet:nodeadline bounded by the serving http.Server ReadTimeout (cmd/ber arms one)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		badRequest(w, "torn result stream: "+err.Error())
		return
	}
	ack, errMsg := c.mergeShard(fp, shardIdx, r.URL.Query().Get("epoch"), r.URL.Query().Get("dec"), body)
	if errMsg != "" {
		badRequest(w, errMsg)
		return
	}
	writeJSON(w, ack)
}

// mergeShard validates and merges one completion under the lock; a
// non-empty second return is a 400 for the handler to send. The epoch
// fence comes first: a completion from a worker still fenced to a
// previous coordinator is rejected before its content is even parsed.
func (c *Coordinator) mergeShard(fp string, shardIdx int, epoch, dec string, body []byte) (ackMsg, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.epochOK(epoch) {
		return ackMsg{Status: statusStaleEpoch, Epoch: c.epoch}, ""
	}
	jb := c.job
	if jb == nil || jb.fp != fp {
		// The point is gone (finished or superseded); nothing to merge.
		return ackMsg{Status: statusIdle}, ""
	}
	if shardIdx < 0 || shardIdx >= len(jb.shards) {
		return ackMsg{}, "shard index out of range"
	}
	sh := &jb.shards[shardIdx]
	if sh.quarantined {
		// The shard was written off and the frontier limit lowered past
		// it; a late result can no longer be committed.
		return ackMsg{Status: statusIdle}, ""
	}
	counts, err := readCounts(bytes.NewReader(body), sh.first, sh.blocks)
	if err != nil {
		return ackMsg{}, err.Error()
	}
	digest := countsDigest(counts)
	if sh.done {
		if digest == sh.digest {
			return ackMsg{Status: statusOK, Epoch: c.epoch}, ""
		}
		c.logf("conflicting completion for shard %d of %s: digest %08x vs committed %08x (first wins)",
			shardIdx, fp, digest, sh.digest)
		return ackMsg{Status: statusConflict, Epoch: c.epoch}, ""
	}
	for i, e := range counts {
		jb.fr.Mark(sh.first+i, e)
	}
	sh.done, sh.digest, sh.lease = true, digest, 0
	if dec != "" && dec != jb.dec {
		jb.fbBlks += sh.blocks
		c.logf("shard %d rescued by fallback decoder %s", shardIdx, dec)
	}
	jb.fr.Commit()
	if jb.fr.Done() || c.allSettledLocked(jb) {
		c.completeLocked(jb)
	}
	return ackMsg{Status: statusOK, Epoch: c.epoch}, ""
}

// completeLocked signals RunPoint that the frontier is done. Idempotent;
// caller holds c.mu.
func (c *Coordinator) completeLocked(jb *job) {
	if !jb.closed {
		jb.closed = true
		close(jb.done)
	}
}

// RunPoint runs one sweep point to completion on whatever workers join,
// mirroring Pipeline.RunContext's contract: the committed prefix comes
// back as a partial Result with Interrupted set when ctx is cancelled,
// and ledger bookkeeping (resume, periodic checkpoints, the final Done
// record) happens here when Options.Store is set. The config must
// survive the wire codec verbatim — RunPoint proves it by fingerprint
// round-trip before publishing the job.
func (c *Coordinator) RunPoint(ctx context.Context, cfg experiment.Config) (*experiment.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wire, err := MarshalConfig(cfg)
	if err != nil {
		return nil, err
	}
	rt, err := wire.Config()
	if err != nil {
		return nil, fmt.Errorf("fabric: config does not survive the wire: %w", err)
	}
	fp := cfg.Fingerprint()
	if got := rt.Fingerprint(); got != fp {
		return nil, fmt.Errorf("fabric: config is not wire-representable: fingerprint %s round-trips to %s", fp, got)
	}
	if c.store != nil {
		if rec, ok := c.store.Lookup(fp); ok {
			if rec.Done {
				return experiment.Reconstruct(cfg, rec.Blocks, rec.Shots, rec.Errors, rec.EarlyStopped), nil
			}
			if c.rsm {
				cfg.Resume = &experiment.Resume{Blocks: rec.Blocks, Shots: rec.Shots, Errors: rec.Errors}
				if err := cfg.Validate(); err != nil {
					return nil, fmt.Errorf("fabric: checkpoint does not match the configuration: %w", err)
				}
			}
		}
		userCommit := cfg.OnCommit
		last := 0
		if cfg.Resume != nil {
			last = cfg.Resume.Blocks
		}
		cfg.OnCommit = func(p experiment.Progress) {
			if userCommit != nil {
				userCommit(p)
			}
			if p.Blocks-last < c.every {
				return
			}
			last = p.Blocks
			if err := c.store.Put(checkpoint.Record{Key: fp, Blocks: p.Blocks, Shots: p.Shots, Errors: p.Errors}); err != nil {
				c.logf("checkpoint: %v", err)
			}
		}
	}
	fr := experiment.NewFrontier(cfg)
	var jb *job
	if !fr.Done() {
		shardShots := cfg.ShardShots
		if shardShots <= 0 {
			shardShots = 1024
		}
		shardBlocks := (shardShots + 63) / 64
		jb = &job{fp: fp, wire: wire, fr: fr, seed: cfg.Seed, dec: cfg.Decoder.String(), done: make(chan struct{})}
		for first := fr.Start(); first < fr.Total(); first += shardBlocks {
			n := shardBlocks
			if first+n > fr.Total() {
				n = fr.Total() - first
			}
			jb.shards = append(jb.shards, shardState{first: first, blocks: n})
		}
		c.mu.Lock()
		if c.shutdown {
			c.mu.Unlock()
			return nil, fmt.Errorf("fabric: coordinator is shut down")
		}
		if c.job != nil {
			inflight := c.job.fp
			c.mu.Unlock()
			return nil, fmt.Errorf("fabric: a point is already in flight (%s)", inflight)
		}
		c.job = jb
		c.mu.Unlock()
		select {
		case <-jb.done:
		case <-ctx.Done():
		}
		c.mu.Lock()
		c.job = nil
		c.mu.Unlock()
	}
	p := fr.State()
	res := experiment.Reconstruct(cfg, p.Blocks, p.Shots, p.Errors, fr.Finalized())
	res.Interrupted = ctx.Err() != nil && !fr.Done()
	if jb != nil {
		// No handler can reach jb once c.job is nil, so these reads are
		// safe without the lock.
		res.ShardErrors = append(res.ShardErrors, jb.serrs...)
		res.FallbackBlocks += jb.fbBlks
	}
	if c.store != nil {
		rec := checkpoint.Record{Key: fp, Blocks: p.Blocks, Shots: p.Shots, Errors: p.Errors}
		if fr.Done() {
			// A quarantined point never reports Done: its record keeps the
			// committed prefix so a later run (new epoch, fixed decoder)
			// can resume past the repro line.
			rec.Done, rec.EarlyStopped = true, fr.Finalized()
		}
		if err := c.store.Put(rec); err != nil {
			c.logf("checkpoint: %v", err)
		}
	}
	return res, nil
}

// Shutdown tells polling workers the sweep is over: subsequent job
// polls answer "shutdown" and RunPoint refuses new points. Call it
// after the last RunPoint has returned; it does not interrupt a point
// in flight (cancel RunPoint's context for that).
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shutdown = true
}
