// The worker side of the fabric: poll the coordinator for the current
// sweep point, rebuild the exact Config from the wire (verifying the
// fingerprint so engine drift between binaries is caught up front),
// then lease shards, decode them through experiment.BlockRunner — the
// production stack — and stream the counts back CRC-framed. The worker
// is stateless across leases and idempotent across retries: a crash,
// disconnect or expired lease only ever causes a shard to be recomputed
// somewhere, bit-identically.
//
// Timing here (polling cadence, retry pacing, heartbeats) is pure
// liveness, never results — the retry budget is a fixed attempt count
// sized from Patience against the worst-case backoff schedule, retry
// pauses are jittered exponential draws derived deterministically from
// (worker ID, endpoint, attempt) via seedmix, so no wall-clock reads
// are needed and the single annotated wall-clock site is the default
// sleep.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/seedmix"
)

// ErrUnreachable marks a worker exit caused by every coordinator
// address staying dark through the whole retry budget — the signal
// cmd/ber maps to its distinct exit code, as opposed to an interrupt
// or an engine failure.
var ErrUnreachable = errors.New("fabric: coordinator unreachable")

// WorkerOptions configures RunWorker. URL (or URLs) is required;
// everything else has serviceable defaults.
type WorkerOptions struct {
	// URL is the coordinator's base address, e.g. "http://host:9911".
	URL string
	// URLs, when non-empty, is the failover address list: the primary
	// coordinator first, standbys after. A request that fails rotates to
	// the next address before the jittered backoff retry, so a fleet
	// rides a coordinator handoff without operator action. URL, when
	// also set, is tried first.
	URLs []string
	// ID names this worker in coordinator logs and lease records.
	ID string
	// Client issues the HTTP requests; nil means a default client. The
	// chaos suite injects a faulting RoundTripper here.
	Client *http.Client
	// Poll is the idle/wait polling cadence and the base of the
	// jittered exponential retry backoff; 0 means 200ms.
	Poll time.Duration
	// Patience bounds how long an unreachable coordinator is retried
	// before the worker gives up (as an attempt budget whose worst-case
	// backoff schedule spans Patience); 0 means 2 minutes.
	Patience time.Duration
	// MaxRetries, when > 0, overrides the Patience-derived attempt
	// budget with a hard per-request cap: the operator's "fail fast when
	// nobody answers" knob (ber -max-retries).
	MaxRetries int
	// Heartbeat is the lease heartbeat cadence; 0 means a third of the
	// coordinator's lease TTL.
	Heartbeat time.Duration
	// MaxShards, when > 0, exits the worker after that many completed
	// shards — the chaos suite's "killed worker" lever.
	MaxShards int
	// Fallback lists decoder kinds to try, in order, when the
	// coordinator hands this worker a fallback-flagged lease (a
	// poison-suspect shard's last chance before quarantine). Empty means
	// retry with the primary decoder.
	Fallback []experiment.DecoderKind
	// Sleep, when non-nil, replaces the default sleep so tests pace
	// deterministically.
	Sleep func(time.Duration)
	// Log, when non-nil, receives one-line operational notes.
	Log io.Writer
}

// worker is the resolved option set plus the per-job decode state.
type worker struct {
	opt      WorkerOptions
	client   *http.Client
	poll     time.Duration
	attempts int // network retry budget per request: Patience against the worst-case backoff

	urls []string     // failover address list; immutable after RunWorker starts
	cur  atomic.Int64 // index into urls; the heartbeat goroutine reads it concurrently

	// epoch is the highest coordinator epoch seen; the heartbeat
	// goroutine echoes it concurrently with the main loop.
	epoch atomic.Int64

	fp      string
	cfg     experiment.Config
	pl      *experiment.Pipeline
	runner  *experiment.BlockRunner
	rescued map[experiment.DecoderKind]*experiment.BlockRunner // fallback runners, built lazily per point
	ttl     time.Duration
	fails   map[int]int // per-firstBlock decode failures; repeats are abandoned without re-decoding
}

// wait pauses for d or until ctx is cancelled, whichever comes first.
// Pacing is liveness, never results; an injected Sleep (tests) takes
// over wholesale.
//
//fpnvet:wallclock polling cadence is liveness, not results
func (w *worker) wait(ctx context.Context, d time.Duration) {
	if w.opt.Sleep != nil {
		w.opt.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (w *worker) logf(format string, args ...any) {
	if w.opt.Log != nil {
		fmt.Fprintf(w.opt.Log, "worker %s: "+format+"\n", append([]any{w.opt.ID}, args...)...)
	}
}

// RunWorker joins the coordinator at opt.URL (failing over across
// opt.URLs) and works shards until the coordinator announces shutdown,
// the context is cancelled, or MaxShards is reached. It returns nil on
// an orderly exit and an error wrapping ErrUnreachable when every
// address stayed dark through the retry budget.
func RunWorker(ctx context.Context, opt WorkerOptions) error {
	var urls []string
	if opt.URL != "" {
		urls = append(urls, opt.URL)
	}
	urls = append(urls, opt.URLs...)
	if len(urls) == 0 {
		return fmt.Errorf("fabric: worker needs a coordinator URL")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	patience := opt.Patience
	if patience <= 0 {
		patience = 2 * time.Minute
	}
	w := &worker{opt: opt, client: opt.Client, poll: opt.Poll, urls: urls, fails: map[int]int{}}
	if w.client == nil {
		// Every coordinator exchange is one small JSON round trip, so the
		// retry-ladder bound is also a sane per-request bound. Without a
		// Timeout a coordinator that accepts the connection and then hangs
		// wedges the worker forever — the retry budget never even starts.
		w.client = &http.Client{Timeout: patience}
	}
	if w.poll <= 0 {
		w.poll = 200 * time.Millisecond
	}
	w.attempts = retryAttempts(w.poll, patience)
	if opt.MaxRetries > 0 {
		w.attempts = opt.MaxRetries
	}
	done := 0
	for ctx.Err() == nil {
		var jm jobMsg
		if err := w.getJSON(ctx, "/v1/job", nil, &jm); err != nil {
			return err
		}
		switch jm.Status {
		case statusShutdown:
			return nil
		case statusIdle:
			w.wait(ctx, w.poll)
			continue
		case statusJob:
			if seen := w.epoch.Load(); jm.Epoch != 0 && jm.Epoch < seen {
				// A fenced-out predecessor is still answering on this
				// address; rotate away rather than work for a coordinator
				// whose commits the fleet will reject.
				w.logf("coordinator at %s announces stale epoch %d (< %d); rotating", w.baseURL(), jm.Epoch, seen)
				w.rotate()
				w.wait(ctx, w.poll)
				continue
			} else if jm.Epoch > seen {
				w.epoch.Store(jm.Epoch)
			}
			if err := w.prepare(jm); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fabric: coordinator answered job poll with %q", jm.Status)
		}
		var lm leaseMsg
		if err := w.getJSON(ctx, "/v1/lease?"+url.Values{"job": {w.fp}, "worker": {w.opt.ID}}.Encode(), []byte{}, &lm); err != nil {
			return err
		}
		switch lm.Status {
		case statusShutdown:
			return nil
		case statusWait, statusDone, statusIdle:
			// Nothing leasable right now; the job poll above decides
			// what happens next (a new point, shutdown, or more waiting).
			w.wait(ctx, w.poll)
		case statusLease:
			if err := w.work(ctx, lm); err != nil {
				return err
			}
			done++
			if w.opt.MaxShards > 0 && done >= w.opt.MaxShards {
				w.logf("reached MaxShards=%d, exiting", w.opt.MaxShards)
				return nil
			}
		default:
			return fmt.Errorf("fabric: coordinator answered lease request with %q", lm.Status)
		}
	}
	return ctx.Err()
}

// baseURL is the coordinator address currently in rotation.
func (w *worker) baseURL() string {
	return w.urls[int(w.cur.Load())%len(w.urls)]
}

// rotate moves to the next coordinator address; a no-op with one.
func (w *worker) rotate() {
	if len(w.urls) > 1 {
		w.cur.Add(1)
	}
}

// epochQuery stamps the highest seen coordinator epoch onto a request's
// query so the coordinator can fence a worker still loyal to a fenced
// predecessor. Zero (nothing seen yet) stays unstamped.
func (w *worker) epochQuery(q url.Values) {
	if e := w.epoch.Load(); e != 0 {
		q.Set("epoch", fmt.Sprint(e))
	}
}

// prepare (re)builds the decode stack when the coordinator's current
// point changes, and verifies the locally derived fingerprint matches
// the coordinator's — the engine-drift tripwire.
func (w *worker) prepare(jm jobMsg) error {
	if w.runner != nil && w.fp == jm.Fingerprint {
		return nil
	}
	if jm.Config == nil {
		return fmt.Errorf("fabric: job %s has no config", jm.Fingerprint)
	}
	cfg, err := jm.Config.Config()
	if err != nil {
		return err
	}
	if got := cfg.Fingerprint(); got != jm.Fingerprint {
		return fmt.Errorf("fabric: engine drift: coordinator job %s, local rebuild fingerprints to %s (mismatched binaries?)", jm.Fingerprint, got)
	}
	var pl *experiment.Pipeline
	if cfg.Schedule != nil {
		pl, err = experiment.NewPipelineFromSchedule(cfg.Code, cfg.Schedule)
	} else {
		pl, err = experiment.NewPipeline(cfg.Code, cfg.Arch)
	}
	if err != nil {
		return err
	}
	br, err := pl.NewBlockRunner(cfg)
	if err != nil {
		return err
	}
	w.fp, w.cfg, w.pl, w.runner = jm.Fingerprint, cfg, pl, br
	w.fails, w.rescued = map[int]int{}, nil
	w.ttl = time.Duration(jm.LeaseTTLMs) * time.Millisecond
	w.logf("joined point %s (%d blocks)", jm.Fingerprint, br.TotalBlocks())
	return nil
}

// fallbackRunner lazily builds (and caches for the point) a BlockRunner
// that decodes with kind instead of the primary decoder — the
// coordinator counts blocks completed this way as FallbackBlocks.
func (w *worker) fallbackRunner(kind experiment.DecoderKind) (*experiment.BlockRunner, error) {
	if br, ok := w.rescued[kind]; ok {
		return br, nil
	}
	cfg := w.cfg
	cfg.Decoder, cfg.Fallback = kind, nil
	br, err := w.pl.NewBlockRunner(cfg)
	if err != nil {
		return nil, err
	}
	if w.rescued == nil {
		w.rescued = map[experiment.DecoderKind]*experiment.BlockRunner{}
	}
	w.rescued[kind] = br
	return br, nil
}

// work decodes one leased shard and streams its counts back,
// heartbeating the lease while the decode runs. A decode failure is
// reported immediately through /v1/abandon with the failure as the
// repro reason, instead of killing the worker: the coordinator owns the
// poison ladder (abandonment threshold, one fallback retry, quarantine)
// so a deterministic panic can neither ping-pong a shard across the
// fleet forever nor take the fleet down shard by shard.
func (w *worker) work(ctx context.Context, lm leaseMsg) error {
	if !lm.Fallback && w.fails[lm.FirstBlock] >= 2 {
		// This worker has already proven the shard fails here; don't burn
		// another decode, tell the coordinator right away.
		return w.abandon(ctx, lm, "poisoned locally: decode failed twice on this worker")
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(hbCtx, lm.Lease)
	}()
	counts, dec, err := w.decode(ctx, lm)
	stopHB()
	<-hbDone
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.fails[lm.FirstBlock]++
		w.logf("shard %d (firstBlock %d) failed: %v", lm.Shard, lm.FirstBlock, err)
		return w.abandon(ctx, lm, err.Error())
	}
	var buf bytes.Buffer
	if err := writeCounts(&buf, lm.FirstBlock, counts); err != nil {
		return err
	}
	q := url.Values{"job": {w.fp}, "shard": {fmt.Sprint(lm.Shard)}, "lease": {fmt.Sprint(lm.Lease)}}
	if dec != "" {
		q.Set("dec", dec)
	}
	w.epochQuery(q)
	var ack ackMsg
	if err := w.getJSON(ctx, "/v1/complete?"+q.Encode(), buf.Bytes(), &ack); err != nil {
		return err
	}
	switch ack.Status {
	case statusConflict:
		w.logf("shard %d completion conflicted; coordinator kept the first result", lm.Shard)
	case statusStaleEpoch:
		// The fleet failed over while we decoded. Adopt the new epoch and
		// re-poll; the live coordinator re-grants whatever is missing.
		w.logf("shard %d completion fenced off: coordinator is at epoch %d", lm.Shard, ack.Epoch)
		if ack.Epoch > w.epoch.Load() {
			w.epoch.Store(ack.Epoch)
		}
	}
	return nil
}

// decode runs the shard under the right decoder: the primary for a
// normal lease, the fallback chain (or the primary again when none is
// configured) for a fallback-flagged one. The second return names the
// rescuing decoder when it differs from the primary.
func (w *worker) decode(ctx context.Context, lm leaseMsg) ([]int, string, error) {
	if !lm.Fallback || len(w.opt.Fallback) == 0 {
		if lm.Fallback {
			w.logf("fallback lease for shard %d with no fallback chain; retrying the primary decoder", lm.Shard)
		}
		counts, err := w.runner.CountBlocks(ctx, lm.FirstBlock, lm.Blocks)
		return counts, "", err
	}
	var err error
	for _, kind := range w.opt.Fallback {
		var br *experiment.BlockRunner
		if br, err = w.fallbackRunner(kind); err != nil {
			continue
		}
		var counts []int
		if counts, err = br.CountBlocks(ctx, lm.FirstBlock, lm.Blocks); err == nil {
			w.logf("shard %d rescued by fallback decoder %s", lm.Shard, kind)
			return counts, kind.String(), nil
		}
		if ctx.Err() != nil {
			return nil, "", err
		}
	}
	return nil, "", fmt.Errorf("fabric: fallback chain exhausted on shard %d: %w", lm.Shard, err)
}

// abandon hands a lease back with the failure as the repro reason. Best
// effort by design: if the abandon itself cannot be delivered, the
// lease expiring carries the same signal, just later.
func (w *worker) abandon(ctx context.Context, lm leaseMsg, reason string) error {
	q := url.Values{
		"job": {w.fp}, "shard": {fmt.Sprint(lm.Shard)},
		"lease": {fmt.Sprint(lm.Lease)}, "worker": {w.opt.ID}, "reason": {reason},
	}
	w.epochQuery(q)
	var ack ackMsg
	if err := w.singleJSON(ctx, "/v1/abandon?"+q.Encode(), []byte{}, &ack); err != nil {
		w.logf("abandon of shard %d undelivered: %v (the lease will expire instead)", lm.Shard, err)
	}
	return nil
}

// heartbeat renews the lease at the heartbeat cadence until cancelled.
// Failures are ignored: a missed heartbeat at worst expires the lease,
// and an expired-then-completed shard still merges by content.
func (w *worker) heartbeat(ctx context.Context, lease int64) {
	hb := w.opt.Heartbeat
	if hb <= 0 {
		hb = w.ttl / 3
	}
	if hb <= 0 {
		hb = w.poll
	}
	q := url.Values{"job": {w.fp}, "lease": {fmt.Sprint(lease)}}
	w.epochQuery(q)
	enc := q.Encode()
	for {
		w.wait(ctx, hb)
		if ctx.Err() != nil {
			return
		}
		var ack ackMsg
		if err := w.singleJSON(ctx, "/v1/heartbeat?"+enc, []byte{}, &ack); err != nil || ack.Status != statusOK {
			return // lease lost, fenced off, or coordinator unreachable; the decode result still merges by content
		}
	}
}

// backoffCap bounds the exponential retry pause at this multiple of the
// poll cadence: long enough to take real pressure off a struggling
// coordinator, short enough that a recovered one is rediscovered
// promptly.
const backoffCap = 16

// retryPause is the pause before retry attempt k (1-based) of one
// request: exponential growth from the poll cadence, capped at
// backoffCap×poll, with a deterministic jitter in [½, 1)× of the step
// so a worker fleet that lost its coordinator together does not hammer
// it back in lockstep. The draw depends only on (worker ID, endpoint,
// attempt) through the same splitmix64 mixer as the shard engine —
// pacing is bit-reproducible under an injected Sleep and never touches
// the wall clock or the results.
func (w *worker) retryPause(site string, attempt int) time.Duration {
	step := w.poll
	for i := 1; i < attempt && step < w.poll*backoffCap; i++ {
		step *= 2
	}
	if max := w.poll * backoffCap; step > max {
		step = max
	}
	word := uint64(seedmix.Derive(0, seedmix.String(w.opt.ID), seedmix.String(site), uint64(attempt)))
	frac := float64(word>>11) / float64(1<<53) // uniform in [0, 1)
	half := step / 2
	return half + time.Duration(frac*float64(half))
}

// retryAttempts sizes the per-request retry budget so the worst-case
// pause schedule (every jitter draw at its maximum) still spans
// patience — the same guarantee the old fixed-interval budget gave,
// with far fewer requests once the pauses have grown to the cap.
func retryAttempts(poll, patience time.Duration) int {
	n := 1 // the first attempt pays no pause
	for total := time.Duration(0); total < patience; n++ {
		step := poll
		for i := 1; i < n && step < poll*backoffCap; i++ {
			step *= 2
		}
		if max := poll * backoffCap; step > max {
			step = max
		}
		total += step
	}
	return n
}

// getJSON performs one request with the patience-bounded retry budget:
// network errors and torn-stream rejections (HTTP 400 on /v1/complete,
// which a fault-injected transport can cause) are retried after a
// jittered exponential pause, rotating to the next coordinator address
// before each retry so a fleet rides a failover without operator
// action; anything else is decoded into out. body == nil means GET.
// The budget-exhausted error wraps ErrUnreachable.
func (w *worker) getJSON(ctx context.Context, path string, body []byte, out any) error {
	site := path
	if i := strings.IndexByte(site, '?'); i >= 0 {
		site = site[:i] // the endpoint, not the per-lease query values
	}
	var err error
	for attempt := 0; attempt < w.attempts; attempt++ {
		if attempt > 0 {
			w.wait(ctx, w.retryPause(site, attempt))
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err = w.singleJSON(ctx, path, body, out); err == nil {
			return nil
		}
		w.rotate()
	}
	return fmt.Errorf("%w after %d attempts: %v", ErrUnreachable, w.attempts, err)
}

// singleJSON is one HTTP round trip with no retries.
func (w *worker) singleJSON(ctx context.Context, path string, body []byte, out any) error {
	method := http.MethodGet
	var rd io.Reader
	if body != nil {
		method = http.MethodPost
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.baseURL()+path, rd)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	//fpnvet:nodeadline bounded by the client Timeout and the request context
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}
