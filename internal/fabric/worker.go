// The worker side of the fabric: poll the coordinator for the current
// sweep point, rebuild the exact Config from the wire (verifying the
// fingerprint so engine drift between binaries is caught up front),
// then lease shards, decode them through experiment.BlockRunner — the
// production stack — and stream the counts back CRC-framed. The worker
// is stateless across leases and idempotent across retries: a crash,
// disconnect or expired lease only ever causes a shard to be recomputed
// somewhere, bit-identically.
//
// Timing here (polling cadence, retry pacing, heartbeats) is pure
// liveness, never results — the retry budget is a fixed attempt count
// sized from Patience against the worst-case backoff schedule, retry
// pauses are jittered exponential draws derived deterministically from
// (worker ID, endpoint, attempt) via seedmix, so no wall-clock reads
// are needed and the single annotated wall-clock site is the default
// sleep.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/seedmix"
)

// WorkerOptions configures RunWorker. URL is required; everything else
// has serviceable defaults.
type WorkerOptions struct {
	// URL is the coordinator's base address, e.g. "http://host:9911".
	URL string
	// ID names this worker in coordinator logs and lease records.
	ID string
	// Client issues the HTTP requests; nil means a default client. The
	// chaos suite injects a faulting RoundTripper here.
	Client *http.Client
	// Poll is the idle/wait polling cadence and the base of the
	// jittered exponential retry backoff; 0 means 200ms.
	Poll time.Duration
	// Patience bounds how long an unreachable coordinator is retried
	// before the worker gives up (as an attempt budget whose worst-case
	// backoff schedule spans Patience); 0 means 2 minutes.
	Patience time.Duration
	// Heartbeat is the lease heartbeat cadence; 0 means a third of the
	// coordinator's lease TTL.
	Heartbeat time.Duration
	// MaxShards, when > 0, exits the worker after that many completed
	// shards — the chaos suite's "killed worker" lever.
	MaxShards int
	// Sleep, when non-nil, replaces the default sleep so tests pace
	// deterministically.
	Sleep func(time.Duration)
	// Log, when non-nil, receives one-line operational notes.
	Log io.Writer
}

// worker is the resolved option set plus the per-job decode state.
type worker struct {
	opt      WorkerOptions
	client   *http.Client
	poll     time.Duration
	attempts int // network retry budget per request: Patience against the worst-case backoff

	fp     string
	runner *experiment.BlockRunner
	ttl    time.Duration
	fails  map[int]int // per-firstBlock decode failures; two strikes is fatal
}

// wait pauses for d or until ctx is cancelled, whichever comes first.
// Pacing is liveness, never results; an injected Sleep (tests) takes
// over wholesale.
//
//fpnvet:wallclock polling cadence is liveness, not results
func (w *worker) wait(ctx context.Context, d time.Duration) {
	if w.opt.Sleep != nil {
		w.opt.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (w *worker) logf(format string, args ...any) {
	if w.opt.Log != nil {
		fmt.Fprintf(w.opt.Log, "worker %s: "+format+"\n", append([]any{w.opt.ID}, args...)...)
	}
}

// RunWorker joins the coordinator at opt.URL and works shards until the
// coordinator announces shutdown, the context is cancelled, or
// MaxShards is reached. It returns nil on an orderly exit.
func RunWorker(ctx context.Context, opt WorkerOptions) error {
	if opt.URL == "" {
		return fmt.Errorf("fabric: worker needs a coordinator URL")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	patience := opt.Patience
	if patience <= 0 {
		patience = 2 * time.Minute
	}
	w := &worker{opt: opt, client: opt.Client, poll: opt.Poll, fails: map[int]int{}}
	if w.client == nil {
		// Every coordinator exchange is one small JSON round trip, so the
		// retry-ladder bound is also a sane per-request bound. Without a
		// Timeout a coordinator that accepts the connection and then hangs
		// wedges the worker forever — the retry budget never even starts.
		w.client = &http.Client{Timeout: patience}
	}
	if w.poll <= 0 {
		w.poll = 200 * time.Millisecond
	}
	w.attempts = retryAttempts(w.poll, patience)
	done := 0
	for ctx.Err() == nil {
		var jm jobMsg
		if err := w.getJSON(ctx, "/v1/job", nil, &jm); err != nil {
			return err
		}
		switch jm.Status {
		case statusShutdown:
			return nil
		case statusIdle:
			w.wait(ctx, w.poll)
			continue
		case statusJob:
			if err := w.prepare(jm); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fabric: coordinator answered job poll with %q", jm.Status)
		}
		var lm leaseMsg
		if err := w.getJSON(ctx, "/v1/lease?"+url.Values{"job": {w.fp}, "worker": {w.opt.ID}}.Encode(), []byte{}, &lm); err != nil {
			return err
		}
		switch lm.Status {
		case statusShutdown:
			return nil
		case statusWait, statusDone, statusIdle:
			// Nothing leasable right now; the job poll above decides
			// what happens next (a new point, shutdown, or more waiting).
			w.wait(ctx, w.poll)
		case statusLease:
			if err := w.work(ctx, lm); err != nil {
				return err
			}
			done++
			if w.opt.MaxShards > 0 && done >= w.opt.MaxShards {
				w.logf("reached MaxShards=%d, exiting", w.opt.MaxShards)
				return nil
			}
		default:
			return fmt.Errorf("fabric: coordinator answered lease request with %q", lm.Status)
		}
	}
	return ctx.Err()
}

// prepare (re)builds the decode stack when the coordinator's current
// point changes, and verifies the locally derived fingerprint matches
// the coordinator's — the engine-drift tripwire.
func (w *worker) prepare(jm jobMsg) error {
	if w.runner != nil && w.fp == jm.Fingerprint {
		return nil
	}
	if jm.Config == nil {
		return fmt.Errorf("fabric: job %s has no config", jm.Fingerprint)
	}
	cfg, err := jm.Config.Config()
	if err != nil {
		return err
	}
	if got := cfg.Fingerprint(); got != jm.Fingerprint {
		return fmt.Errorf("fabric: engine drift: coordinator job %s, local rebuild fingerprints to %s (mismatched binaries?)", jm.Fingerprint, got)
	}
	var pl *experiment.Pipeline
	if cfg.Schedule != nil {
		pl, err = experiment.NewPipelineFromSchedule(cfg.Code, cfg.Schedule)
	} else {
		pl, err = experiment.NewPipeline(cfg.Code, cfg.Arch)
	}
	if err != nil {
		return err
	}
	br, err := pl.NewBlockRunner(cfg)
	if err != nil {
		return err
	}
	w.fp, w.runner, w.fails = jm.Fingerprint, br, map[int]int{}
	w.ttl = time.Duration(jm.LeaseTTLMs) * time.Millisecond
	w.logf("joined point %s (%d blocks)", jm.Fingerprint, br.TotalBlocks())
	return nil
}

// work decodes one leased shard and streams its counts back,
// heartbeating the lease while the decode runs. A decode failure
// abandons the lease (the shard is retried elsewhere after expiry);
// the same shard failing twice on this worker is fatal, because a
// deterministic panic would otherwise ping-pong forever.
func (w *worker) work(ctx context.Context, lm leaseMsg) error {
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(hbCtx, lm.Lease)
	}()
	counts, err := w.runner.CountBlocks(ctx, lm.FirstBlock, lm.Blocks)
	stopHB()
	<-hbDone
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.fails[lm.FirstBlock]++
		w.logf("shard %d (firstBlock %d) failed: %v", lm.Shard, lm.FirstBlock, err)
		if w.fails[lm.FirstBlock] >= 2 {
			return fmt.Errorf("fabric: shard at block %d failed twice, giving up: %w", lm.FirstBlock, err)
		}
		return nil // abandon the lease; expiry recycles the shard
	}
	var buf bytes.Buffer
	if err := writeCounts(&buf, lm.FirstBlock, counts); err != nil {
		return err
	}
	q := url.Values{"job": {w.fp}, "shard": {fmt.Sprint(lm.Shard)}, "lease": {fmt.Sprint(lm.Lease)}}
	var ack ackMsg
	if err := w.getJSON(ctx, "/v1/complete?"+q.Encode(), buf.Bytes(), &ack); err != nil {
		return err
	}
	if ack.Status == statusConflict {
		w.logf("shard %d completion conflicted; coordinator kept the first result", lm.Shard)
	}
	return nil
}

// heartbeat renews the lease at the heartbeat cadence until cancelled.
// Failures are ignored: a missed heartbeat at worst expires the lease,
// and an expired-then-completed shard still merges by content.
func (w *worker) heartbeat(ctx context.Context, lease int64) {
	hb := w.opt.Heartbeat
	if hb <= 0 {
		hb = w.ttl / 3
	}
	if hb <= 0 {
		hb = w.poll
	}
	q := url.Values{"job": {w.fp}, "lease": {fmt.Sprint(lease)}}.Encode()
	for {
		w.wait(ctx, hb)
		if ctx.Err() != nil {
			return
		}
		var ack ackMsg
		if err := w.singleJSON(ctx, "/v1/heartbeat?"+q, []byte{}, &ack); err != nil || ack.Status != statusOK {
			return // lease lost or coordinator unreachable; the decode result still merges by content
		}
	}
}

// backoffCap bounds the exponential retry pause at this multiple of the
// poll cadence: long enough to take real pressure off a struggling
// coordinator, short enough that a recovered one is rediscovered
// promptly.
const backoffCap = 16

// retryPause is the pause before retry attempt k (1-based) of one
// request: exponential growth from the poll cadence, capped at
// backoffCap×poll, with a deterministic jitter in [½, 1)× of the step
// so a worker fleet that lost its coordinator together does not hammer
// it back in lockstep. The draw depends only on (worker ID, endpoint,
// attempt) through the same splitmix64 mixer as the shard engine —
// pacing is bit-reproducible under an injected Sleep and never touches
// the wall clock or the results.
func (w *worker) retryPause(site string, attempt int) time.Duration {
	step := w.poll
	for i := 1; i < attempt && step < w.poll*backoffCap; i++ {
		step *= 2
	}
	if max := w.poll * backoffCap; step > max {
		step = max
	}
	word := uint64(seedmix.Derive(0, seedmix.String(w.opt.ID), seedmix.String(site), uint64(attempt)))
	frac := float64(word>>11) / float64(1<<53) // uniform in [0, 1)
	half := step / 2
	return half + time.Duration(frac*float64(half))
}

// retryAttempts sizes the per-request retry budget so the worst-case
// pause schedule (every jitter draw at its maximum) still spans
// patience — the same guarantee the old fixed-interval budget gave,
// with far fewer requests once the pauses have grown to the cap.
func retryAttempts(poll, patience time.Duration) int {
	n := 1 // the first attempt pays no pause
	for total := time.Duration(0); total < patience; n++ {
		step := poll
		for i := 1; i < n && step < poll*backoffCap; i++ {
			step *= 2
		}
		if max := poll * backoffCap; step > max {
			step = max
		}
		total += step
	}
	return n
}

// getJSON performs one request with the patience-bounded retry budget:
// network errors and torn-stream rejections (HTTP 400 on /v1/complete,
// which a fault-injected transport can cause) are retried after a
// jittered exponential pause; anything else is decoded into out.
// body == nil means GET.
func (w *worker) getJSON(ctx context.Context, path string, body []byte, out any) error {
	site := path
	if i := strings.IndexByte(site, '?'); i >= 0 {
		site = site[:i] // the endpoint, not the per-lease query values
	}
	var err error
	for attempt := 0; attempt < w.attempts; attempt++ {
		if attempt > 0 {
			w.wait(ctx, w.retryPause(site, attempt))
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err = w.singleJSON(ctx, path, body, out); err == nil {
			return nil
		}
	}
	return fmt.Errorf("fabric: coordinator unreachable after %d attempts: %w", w.attempts, err)
}

// singleJSON is one HTTP round trip with no retries.
func (w *worker) singleJSON(ctx context.Context, path string, body []byte, out any) error {
	method := http.MethodGet
	var rd io.Reader
	if body != nil {
		method = http.MethodPost
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.opt.URL+path, rd)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	//fpnvet:nodeadline bounded by the client Timeout and the request context
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fabric: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}
