// Scaling benchmarks behind EXPERIMENTS.md's "distributed sweeps"
// table: one point decoded by 1/2/4/8 in-process fabric workers over
// real HTTP, against the same point on the single-machine engine. The
// delta between BenchmarkSingleMachine and BenchmarkFabricWorkers/1 is
// the fabric's whole overhead (HTTP, framing, lease traffic, merging).
package fabric_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fabric"
)

// benchConfig is a meatier point than the identity suite's: 64000
// shots (1000 blocks) in default-sized 1024-shot shards, so per-shard
// protocol overhead and the one-time per-worker pipeline build are
// measured against a realistic decode-to-chatter ratio.
func benchConfig(b *testing.B) experiment.Config {
	cfg := baseConfig(rotated3(b))
	cfg.Shots = 64000
	cfg.ShardShots = 0
	return cfg
}

func BenchmarkSingleMachine(b *testing.B) {
	cfg := benchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunContext(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkFabricWorkers(b *testing.B) {
	cfg := benchConfig(b)
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runFabric(b, cfg, n, fabric.Options{}, nil)
			}
			b.ReportMetric(float64(cfg.Shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
		})
	}
}
