// Regression pin for a liveness bug the netdeadline analyzer surfaced:
// the worker's default HTTP client had no Timeout, so a coordinator
// that accepted a connection and then never answered wedged the worker
// forever — the retry budget never even started counting. The default
// client now bounds every round trip by Patience.
package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestWorkerHungCoordinatorTimesOut(t *testing.T) {
	// The hung coordinator: accepts every request and answers none. The
	// handler parks on the request context so the worker's client
	// timeout, not the test, is what unblocks it.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerOptions{
			URL:      srv.URL,
			ID:       "hung-test",
			Poll:     time.Millisecond,
			Patience: 50 * time.Millisecond,
			Sleep:    func(time.Duration) {},
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker returned nil against a coordinator that never answers")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker still blocked after 30s against a hung coordinator; the default client lost its Timeout")
	}
}
