// The fabric's contract, enforced end to end: a sweep point distributed
// over any worker population, any join/leave order, any lease-expiry
// schedule, and any surviving transport fault merges to a result
// byte-identical to the single-machine experiment.Run — early-stopping
// runs included. Workers here are the real RunWorker loop against the
// real Handler over real HTTP (httptest); the protocol-level tests speak
// raw JSON/frames so the wire format is pinned independently of the
// package's own codec helpers.
package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/chaos"
	"github.com/fpn/flagproxy/internal/checkpoint"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fabric"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
)

// rotated3 is the fabric workload: the [[9,1,3]] rotated surface code,
// small enough that a 640-shot point decodes in well under a second.
func rotated3(t testing.TB) *css.Code {
	t.Helper()
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	return l.Code
}

var fabricArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

// baseConfig is one deterministic sweep point: 640 shots = 10 blocks,
// ShardShots 64 → ten single-block shards, enough for interesting
// multi-worker interleavings.
func baseConfig(code *css.Code) experiment.Config {
	return experiment.Config{
		Code: code, Arch: fabricArch, Basis: css.Z, P: 5e-3, Shots: 640, Seed: 11,
		Decoder: experiment.FlaggedMWPM, Workers: 1, ShardShots: 64,
	}
}

// summarize renders every result field bit-identity cares about; %.17g
// round-trips float64 exactly, so equal strings mean equal bits.
func summarize(r *experiment.Result) string {
	return fmt.Sprintf("blocks=%d shots=%d errs=%d early=%t interrupted=%t ber=%.17g lo=%.17g hi=%.17g",
		r.Blocks, r.Shots, r.LogicalErrors, r.EarlyStopped, r.Interrupted, r.BER, r.CILow, r.CIHigh)
}

// fakeClock is the injected coordinator clock: time moves only when a
// test says so, making every lease-expiry schedule reproducible.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// runFabric drives one point through a coordinator plus n real workers
// and returns the merged result. Per-worker options (chaos transports,
// MaxShards) come from wopt; nil means defaults. Worker errors fail the
// test — an orderly shutdown returns nil from RunWorker.
func runFabric(t testing.TB, cfg experiment.Config, n int, copt fabric.Options, wopt func(i int) fabric.WorkerOptions) *experiment.Result {
	t.Helper()
	if copt.Now == nil {
		copt.Now = newFakeClock().Now
	}
	co := fabric.NewCoordinator(copt)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		opt := fabric.WorkerOptions{}
		if wopt != nil {
			opt = wopt(i)
		}
		opt.URL = srv.URL
		if opt.ID == "" {
			opt.ID = fmt.Sprintf("w%d", i)
		}
		if opt.Poll == 0 {
			opt.Poll = time.Millisecond
		}
		wg.Add(1)
		go func(i int, opt fabric.WorkerOptions) {
			defer wg.Done()
			errs[i] = fabric.RunWorker(context.Background(), opt)
		}(i, opt)
	}
	res, err := co.RunPoint(context.Background(), cfg)
	co.Shutdown()
	wg.Wait()
	if err != nil {
		t.Fatalf("RunPoint: %v", err)
	}
	for i, werr := range errs {
		if werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	return res
}

// TestIdentityAcrossPopulations is the core identity suite: full runs
// and both early-stopping modes, each distributed over 1, 2, 4 and 8
// workers, must match the single-machine engine byte for byte.
func TestIdentityAcrossPopulations(t *testing.T) {
	code := rotated3(t)
	full := baseConfig(code)
	target := baseConfig(code)
	target.P, target.TargetErrors = 2e-2, 10
	maxCI := baseConfig(code)
	maxCI.P, maxCI.MaxCI = 2e-2, 0.05
	cases := []struct {
		name string
		cfg  experiment.Config
	}{
		{"full-run", full},
		{"target-errors-earlystop", target},
		{"max-ci-earlystop", maxCI},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			golden, err := experiment.RunContext(context.Background(), c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if golden.LogicalErrors == 0 {
				t.Fatal("golden run saw zero logical errors; identity checks would be vacuous")
			}
			if c.cfg.TargetErrors > 0 && !(golden.EarlyStopped && golden.Shots < c.cfg.Shots) {
				t.Fatalf("early-stop case did not stop early (shots=%d early=%t); tune the config", golden.Shots, golden.EarlyStopped)
			}
			want := summarize(golden)
			for _, n := range []int{1, 2, 4, 8} {
				res := runFabric(t, c.cfg, n, fabric.Options{}, nil)
				if got := summarize(res); got != want {
					t.Errorf("%d workers diverged from single-machine:\n got %s\nwant %s", n, got, want)
				}
			}
		})
	}
}

// TestKilledWorkerMidSweep: a worker that leaves after one shard (the
// population shrinks mid-point) must not perturb the merged result.
func TestKilledWorkerMidSweep(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := runFabric(t, cfg, 2, fabric.Options{}, func(i int) fabric.WorkerOptions {
		if i == 0 {
			return fabric.WorkerOptions{MaxShards: 1}
		}
		return fabric.WorkerOptions{}
	})
	if got, want := summarize(res), summarize(golden); got != want {
		t.Errorf("shrinking population diverged:\n got %s\nwant %s", got, want)
	}
}

// TestTornStreamsMergeIdentically: a transport that truncates every
// second completion body forces the coordinator down the torn-stream
// rejection path and the worker down the resend path; the merged result
// must not move.
func TestTornStreamsMergeIdentically(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fault := &chaos.Fabric{Plan: chaos.Plan{Seed: 7, Name: "torn-completions"}, TearEvery: 2}
	res := runFabric(t, cfg, 2, fabric.Options{}, func(i int) fabric.WorkerOptions {
		if i == 0 {
			return fabric.WorkerOptions{Client: &http.Client{Transport: fault}}
		}
		return fabric.WorkerOptions{}
	})
	if fault.Torn.Load() == 0 {
		t.Error("fault plan tore no streams; the test is vacuous")
	}
	if got, want := summarize(res), summarize(golden); got != want {
		t.Errorf("torn streams diverged:\n got %s\nwant %s", got, want)
	}
}

// TestDuplicateAndDroppedCompletions: double-delivery (DupEvery) and
// delivered-but-unacknowledged completions (DropEvery, which makes the
// worker itself resend) both hit the coordinator's idempotency path.
func TestDuplicateAndDroppedCompletions(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	faults := map[string]*chaos.Fabric{
		"duplicated": {Plan: chaos.Plan{Seed: 8, Name: "dup-completions"}, DupEvery: 1},
		"dropped":    {Plan: chaos.Plan{Seed: 9, Name: "dropped-acks"}, DropEvery: 3},
	}
	for _, name := range []string{"duplicated", "dropped"} {
		fault := faults[name]
		t.Run(name, func(t *testing.T) {
			res := runFabric(t, cfg, 1, fabric.Options{}, func(int) fabric.WorkerOptions {
				return fabric.WorkerOptions{Client: &http.Client{Transport: fault}}
			})
			if fault.Duped.Load() == 0 && fault.Dropped.Load() == 0 {
				t.Error("fault plan injected nothing; the test is vacuous")
			}
			if got, want := summarize(res), summarize(golden); got != want {
				t.Errorf("%s completions diverged:\n got %s\nwant %s", name, got, want)
			}
		})
	}
}

// --- raw-protocol helpers: these deliberately re-implement the wire
// format by hand so the JSON schema and frame layout are pinned by a
// second, independent encoder. ---

type rawJob struct {
	Status      string `json:"status"`
	Fingerprint string `json:"fingerprint"`
	LeaseTTLMs  int64  `json:"lease_ttl_ms"`
	Epoch       int64  `json:"epoch"`
}

type rawLease struct {
	Status     string `json:"status"`
	Lease      int64  `json:"lease"`
	Shard      int    `json:"shard"`
	FirstBlock int    `json:"first_block"`
	Blocks     int    `json:"blocks"`
	Epoch      int64  `json:"epoch"`
	Fallback   bool   `json:"fallback"`
}

type rawAck struct {
	Status string `json:"status"`
	Epoch  int64  `json:"epoch"`
}

func rawCall(t *testing.T, method, url string, body []byte, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: HTTP %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(data))
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("%s %s: %v in %q", method, url, err, data)
	}
}

// rawCompletion frames counts by hand: JSONL {"v":1,"crc":C,"rec":R}
// with CRC32-C over the exact rec bytes, then the {"end":N} trailer.
func rawCompletion(first int, counts []int) []byte {
	tbl := crc32.MakeTable(crc32.Castagnoli)
	var b bytes.Buffer
	frame := func(rec string) {
		fmt.Fprintf(&b, `{"v":1,"crc":%d,"rec":%s}`+"\n", crc32.Checksum([]byte(rec), tbl), rec)
	}
	for i, e := range counts {
		frame(fmt.Sprintf(`{"b":%d,"e":%d}`, first+i, e))
	}
	frame(fmt.Sprintf(`{"end":%d}`, len(counts)))
	return b.Bytes()
}

// TestStaleLeaseAndConflictProtocol drives the lease lifecycle by hand:
// a hung worker's lease expires (injected clock, no timers anywhere), a
// second worker is handed the same shard, the stale worker's late
// completion still merges because it is correct by content, the
// duplicate is idempotent, a lying completion is a conflict with the
// first result kept — and the merged point still matches single-machine.
func TestStaleLeaseAndConflictProtocol(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// True per-block counts, computed through the same production seam
	// the worker uses.
	pl, err := experiment.NewPipeline(cfg.Code, cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	br, err := pl.NewBlockRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	ttl := time.Minute
	co := fabric.NewCoordinator(fabric.Options{Now: clk.Now, LeaseTTL: ttl})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	resCh := make(chan *experiment.Result, 1)
	go func() {
		res, err := co.RunPoint(context.Background(), cfg)
		if err != nil {
			t.Errorf("RunPoint: %v", err)
		}
		resCh <- res
	}()
	var jm rawJob
	for jm.Status != "job" {
		rawCall(t, http.MethodGet, srv.URL+"/v1/job", nil, &jm)
	}
	if jm.LeaseTTLMs != ttl.Milliseconds() {
		t.Errorf("advertised lease TTL %dms, configured %v", jm.LeaseTTLMs, ttl)
	}
	lease := func(worker string) rawLease {
		var lm rawLease
		rawCall(t, http.MethodPost, srv.URL+"/v1/lease?job="+jm.Fingerprint+"&worker="+worker, []byte{}, &lm)
		return lm
	}
	complete := func(shard int, leaseID int64, body []byte) rawAck {
		var ack rawAck
		rawCall(t, http.MethodPost,
			fmt.Sprintf("%s/v1/complete?job=%s&shard=%d&lease=%d", srv.URL, jm.Fingerprint, shard, leaseID), body, &ack)
		return ack
	}
	countsFor := func(lm rawLease) []int {
		counts, err := br.CountBlocks(context.Background(), lm.FirstBlock, lm.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}

	// The hog takes shard 0 and hangs (never heartbeats, never completes).
	hog := lease("hog")
	if hog.Status != "lease" || hog.Shard != 0 {
		t.Fatalf("first lease = %+v, want shard 0", hog)
	}
	// Before expiry the shard is off the table; a second worker gets the
	// next one.
	if lm := lease("w1"); lm.Status != "lease" || lm.Shard != 1 {
		t.Fatalf("lease while shard 0 held = %+v, want shard 1", lm)
	}
	// Past the TTL, lease requests reassign shard 0; its heartbeat is
	// dead too.
	clk.Advance(2 * ttl)
	release := lease("w2")
	if release.Status != "lease" || release.Shard != 0 || release.Lease == hog.Lease {
		t.Fatalf("post-expiry lease = %+v, want shard 0 under a fresh lease", release)
	}
	var hb rawAck
	rawCall(t, http.MethodPost, fmt.Sprintf("%s/v1/heartbeat?job=%s&lease=%d", srv.URL, jm.Fingerprint, hog.Lease), []byte{}, &hb)
	if hb.Status != "expired" {
		t.Errorf("heartbeat on a reassigned lease = %q, want expired", hb.Status)
	}
	// The hog wakes up and posts its (correct) result under the stale
	// lease: accepted by content.
	shard0 := countsFor(hog)
	if ack := complete(hog.Shard, hog.Lease, rawCompletion(hog.FirstBlock, shard0)); ack.Status != "ok" {
		t.Errorf("stale-lease completion = %q, want ok (content is correct)", ack.Status)
	}
	// w2 finishes the same shard: identical content, idempotent ok.
	if ack := complete(release.Shard, release.Lease, rawCompletion(release.FirstBlock, shard0)); ack.Status != "ok" {
		t.Errorf("duplicate completion = %q, want idempotent ok", ack.Status)
	}
	// A liar shows up with different counts: conflict, first result kept.
	lie := append([]int(nil), shard0...)
	lie[0] = (lie[0] + 1) % 65
	if ack := complete(hog.Shard, hog.Lease, rawCompletion(hog.FirstBlock, lie)); ack.Status != "conflict" {
		t.Errorf("conflicting completion = %q, want conflict", ack.Status)
	}
	// Drain the rest of the point by hand and check identity end to end.
	for {
		lm := lease("w1")
		// "done" while the job is still posted, or "idle" once RunPoint
		// has already retired it — both mean the point is finished.
		if lm.Status == "done" || lm.Status == "idle" {
			break
		}
		if lm.Status != "lease" {
			t.Fatalf("drain lease = %+v", lm)
		}
		if ack := complete(lm.Shard, lm.Lease, rawCompletion(lm.FirstBlock, countsFor(lm))); ack.Status != "ok" {
			t.Fatalf("drain completion for shard %d = %q", lm.Shard, ack.Status)
		}
	}
	res := <-resCh
	if got, want := summarize(res), summarize(golden); got != want {
		t.Errorf("hand-driven protocol run diverged:\n got %s\nwant %s", got, want)
	}
}

// TestCoordinatorResumesFromLedger: a checkpoint captured mid-run by a
// single-machine sweep seeds the coordinator's ledger; the distributed
// continuation must land on the byte-identical final result and mark
// the point done. A ledger that already says done short-circuits to a
// reconstruction without any workers.
func TestCoordinatorResumesFromLedger(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a mid-run commit snapshot from the single-machine engine.
	var snap experiment.Progress
	capCfg := cfg
	capCfg.OnCommit = func(p experiment.Progress) {
		if snap.Blocks == 0 && p.Blocks >= 4 {
			snap = p
		}
	}
	if _, err := experiment.RunContext(context.Background(), capCfg); err != nil {
		t.Fatal(err)
	}
	if snap.Blocks == 0 {
		t.Fatal("no commit snapshot at >= 4 blocks; config too small")
	}
	fp := cfg.Fingerprint()

	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(checkpoint.Record{Key: fp, Blocks: snap.Blocks, Shots: snap.Shots, Errors: snap.Errors}); err != nil {
		t.Fatal(err)
	}
	res := runFabric(t, cfg, 2, fabric.Options{Store: st, Resume: true}, nil)
	if got, want := summarize(res), summarize(golden); got != want {
		t.Errorf("resumed distributed run diverged:\n got %s\nwant %s", got, want)
	}
	rec, ok := st.Lookup(fp)
	if !ok || !rec.Done || rec.Blocks != golden.Blocks || rec.Errors != golden.LogicalErrors {
		t.Errorf("final ledger record = %+v, want done at blocks=%d errs=%d", rec, golden.Blocks, golden.LogicalErrors)
	}

	// Reopen the ledger cold: the point is done, so RunPoint must answer
	// instantly from the record with zero workers attached.
	st2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	co := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Store: st2, Resume: true})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res2, err := co.RunPoint(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summarize(res2), summarize(golden); got != want {
		t.Errorf("done-record reconstruction diverged:\n got %s\nwant %s", got, want)
	}
}

// TestWorkerRejectsDriftedJob: a coordinator advertising a fingerprint
// that does not match the config it serves (two builds of the engine
// disagreeing) must stop a worker before it decodes a single block.
func TestWorkerRejectsDriftedJob(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	wire, err := fabric.MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/job", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": "job", "fingerprint": "not-the-real-fingerprint",
			"config": wire, "lease_ttl_ms": 1000,
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	err = fabric.RunWorker(context.Background(), fabric.WorkerOptions{
		URL: srv.URL, ID: "drifted", Poll: time.Millisecond, Patience: 10 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "engine drift") {
		t.Errorf("worker accepted a drifted job (err=%v)", err)
	}
}
