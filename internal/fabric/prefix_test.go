// The fence, byte by byte: a completion stream must be unable to commit
// from a partitioned (stale-epoch) worker OR from a torn connection at
// ANY strict byte prefix. This is the raw-protocol proof behind the
// acceptance criterion "a partitioned stale-epoch coordinator provably
// cannot commit" — no package codec in the loop, just bytes on a wire.
package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fabric"
)

// rawPost is rawCall's tolerant sibling: it reports the HTTP status
// instead of failing on it, because rejection IS the expected outcome.
func rawPost(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestStaleEpochAndTornPrefixesNeverCommit(t *testing.T) {
	cfg := baseConfig(rotated3(t))
	golden, err := experiment.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := experiment.NewPipeline(cfg.Code, cfg.Arch)
	if err != nil {
		t.Fatal(err)
	}
	br, err := pl.NewBlockRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}

	co := fabric.NewCoordinator(fabric.Options{Now: newFakeClock().Now, Epoch: 2, Failovers: 1})
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	resCh := make(chan *experiment.Result, 1)
	go func() {
		res, err := co.RunPoint(context.Background(), cfg)
		if err != nil {
			t.Errorf("RunPoint: %v", err)
		}
		resCh <- res
	}()

	var jm rawJob
	for jm.Status != "job" {
		rawCall(t, http.MethodGet, srv.URL+"/v1/job", nil, &jm)
	}
	lease := func(worker string) rawLease {
		var lm rawLease
		rawCall(t, http.MethodPost, srv.URL+"/v1/lease?job="+jm.Fingerprint+"&worker="+worker, []byte{}, &lm)
		return lm
	}
	completeURL := func(lm rawLease, epoch int64) string {
		return fmt.Sprintf("%s/v1/complete?job=%s&shard=%d&lease=%d&epoch=%d", srv.URL, jm.Fingerprint, lm.Shard, lm.Lease, epoch)
	}
	countsFor := func(lm rawLease) []int {
		counts, err := br.CountBlocks(context.Background(), lm.FirstBlock, lm.Blocks)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}

	lm := lease("prefixer")
	if lm.Status != "lease" || lm.Epoch != 2 {
		t.Fatalf("lease = %+v, want a lease at epoch 2", lm)
	}
	body := rawCompletion(lm.FirstBlock, countsFor(lm))

	// Every strict byte prefix, on both sides of the fence. A torn
	// stream at the live epoch is a 400; ANY stream at a stale epoch —
	// torn or whole — is fenced with a well-formed stale-epoch ack
	// before a byte of counts is parsed.
	for cut := 0; cut < len(body); cut++ {
		if code, resp := rawPost(t, completeURL(lm, 2), body[:cut]); code == http.StatusOK {
			t.Fatalf("torn prefix of %d/%d bytes committed at the live epoch: HTTP %d %s", cut, len(body), code, resp)
		}
		code, resp := rawPost(t, completeURL(lm, 1), body[:cut])
		var ack rawAck
		if err := json.Unmarshal(resp, &ack); code != http.StatusOK || err != nil || ack.Status != "stale-epoch" || ack.Epoch != 2 {
			t.Fatalf("stale prefix of %d/%d bytes: HTTP %d %s, want a stale-epoch ack at epoch 2", cut, len(body), code, resp)
		}
	}
	// The whole, perfectly well-formed completion is still refused when
	// stamped with the dead coordinator's epoch.
	code, resp := rawPost(t, completeURL(lm, 1), body)
	var ack rawAck
	if err := json.Unmarshal(resp, &ack); code != http.StatusOK || err != nil || ack.Status != "stale-epoch" {
		t.Fatalf("whole stale-epoch completion: HTTP %d %s, want stale-epoch", code, resp)
	}
	st := co.Status()
	if st.ShardsDone != 0 {
		t.Fatalf("%d shards committed through the fence", st.ShardsDone)
	}
	if st.StaleEpochRejects < int64(len(body))+1 {
		t.Errorf("StaleEpochRejects = %d, want at least %d (one per stale attempt)", st.StaleEpochRejects, len(body)+1)
	}

	// Only the whole body at the live epoch commits — and the sweep then
	// drains to the byte-identical single-machine result.
	code, resp = rawPost(t, completeURL(lm, 2), body)
	if err := json.Unmarshal(resp, &ack); code != http.StatusOK || err != nil || ack.Status != "ok" {
		t.Fatalf("live-epoch completion: HTTP %d %s, want ok", code, resp)
	}
	if got := co.Status().ShardsDone; got != 1 {
		t.Fatalf("ShardsDone = %d after the one valid completion, want 1", got)
	}
	for {
		lm := lease("drainer")
		if lm.Status == "done" || lm.Status == "idle" {
			break
		}
		if lm.Status != "lease" {
			t.Fatalf("drain lease = %+v", lm)
		}
		code, resp := rawPost(t, completeURL(lm, 2), rawCompletion(lm.FirstBlock, countsFor(lm)))
		if err := json.Unmarshal(resp, &ack); code != http.StatusOK || err != nil || ack.Status != "ok" {
			t.Fatalf("drain completion for shard %d: HTTP %d %s", lm.Shard, code, resp)
		}
	}
	if got, want := summarize(<-resCh), summarize(golden); got != want {
		t.Errorf("prefix-bombed run diverged:\n got %s\nwant %s", got, want)
	}
}
