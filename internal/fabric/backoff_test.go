package fabric

// Tests for the jittered exponential retry backoff: the pause schedule
// must be deterministic (seedmix-derived from worker ID, endpoint and
// attempt — no wall clock, no global RNG), bounded to [½, 1)× of the
// capped exponential step, and actually be the schedule RunWorker pays
// when the coordinator is unreachable.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRetryPauseJitteredExponential pins the backoff envelope: each
// attempt's pause sits in [step/2, step) for the capped exponential
// step, identical inputs reproduce identical pauses, and distinct
// worker IDs (a fleet) or endpoints de-synchronize.
func TestRetryPauseJitteredExponential(t *testing.T) {
	poll := 10 * time.Millisecond
	w := &worker{opt: WorkerOptions{ID: "w0"}, poll: poll}
	step := poll
	for attempt := 1; attempt <= 12; attempt++ {
		if attempt > 1 && step < poll*backoffCap {
			step *= 2
		}
		if step > poll*backoffCap {
			step = poll * backoffCap
		}
		got := w.retryPause("/v1/job", attempt)
		if got < step/2 || got >= step {
			t.Fatalf("attempt %d: pause %v outside [%v, %v)", attempt, got, step/2, step)
		}
		if again := w.retryPause("/v1/job", attempt); again != got {
			t.Fatalf("attempt %d: pause not reproducible: %v then %v", attempt, got, again)
		}
	}
	// Beyond the cap the step stops growing but the jitter keeps varying.
	if a, b := w.retryPause("/v1/job", 10), w.retryPause("/v1/job", 11); a == b {
		t.Fatalf("capped attempts 10 and 11 drew identical jitter %v (draw not attempt-keyed)", a)
	}
	// Different workers and different endpoints must draw apart, else a
	// fleet that lost its coordinator together retries in lockstep.
	w2 := &worker{opt: WorkerOptions{ID: "w1"}, poll: poll}
	if a, b := w.retryPause("/v1/job", 3), w2.retryPause("/v1/job", 3); a == b {
		t.Fatalf("workers w0 and w1 drew identical pause %v at attempt 3", a)
	}
	if a, b := w.retryPause("/v1/job", 3), w.retryPause("/v1/lease", 3); a == b {
		t.Fatalf("endpoints /v1/job and /v1/lease drew identical pause %v at attempt 3", a)
	}
}

// TestRetryAttemptsSpansPatience sizes the budget: the worst-case pause
// schedule (every draw at its step maximum) must cover Patience, and
// the capped exponential must need far fewer attempts than the old
// fixed-interval Patience/Poll budget.
func TestRetryAttemptsSpansPatience(t *testing.T) {
	poll, patience := 10*time.Millisecond, 2*time.Second
	n := retryAttempts(poll, patience)
	var worst time.Duration
	step := poll
	for k := 1; k < n; k++ {
		if k > 1 && step < poll*backoffCap {
			step *= 2
		}
		if step > poll*backoffCap {
			step = poll * backoffCap
		}
		worst += step
	}
	if worst < patience {
		t.Fatalf("budget of %d attempts spans only %v worst-case, want >= %v", n, worst, patience)
	}
	if fixed := int(patience/poll) + 1; n >= fixed {
		t.Fatalf("exponential budget %d attempts is no smaller than the fixed budget %d", n, fixed)
	}
	if got := retryAttempts(poll, 0); got != 1 {
		t.Fatalf("zero patience: %d attempts, want 1 (the free first attempt)", got)
	}
}

// TestWorkerRetryPacing drives RunWorker against a coordinator that
// only ever answers 500 and records the pauses through the injected
// Sleep: the sequence must be exactly the retryPause schedule for
// /v1/job, and the run must end with the attempts-exhausted error.
// With a real clock this many retries would take seconds; the injected
// Sleep returns instantly, which is the injected-clock determinism the
// seedmix derivation buys.
func TestWorkerRetryPacing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		http.Error(rw, "coordinator down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	var mu sync.Mutex
	var pauses []time.Duration
	opt := WorkerOptions{
		URL:      srv.URL,
		ID:       "pacing-worker",
		Poll:     5 * time.Millisecond,
		Patience: 300 * time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			pauses = append(pauses, d)
			mu.Unlock()
		},
	}
	err := RunWorker(context.Background(), opt)
	if err == nil || !strings.Contains(err.Error(), "coordinator unreachable after") {
		t.Fatalf("RunWorker against a dead coordinator: err = %v, want attempts-exhausted", err)
	}

	ref := &worker{opt: opt, poll: opt.Poll}
	wantN := retryAttempts(opt.Poll, opt.Patience) - 1 // first attempt pays no pause
	if len(pauses) != wantN {
		t.Fatalf("recorded %d pauses, want %d", len(pauses), wantN)
	}
	for i, got := range pauses {
		if want := ref.retryPause("/v1/job", i+1); got != want {
			t.Fatalf("pause %d: slept %v, want retryPause(/v1/job, %d) = %v", i, got, i+1, want)
		}
	}
}
