// Wire-codec golden pin (the cross-machine analogue of the experiment
// package's fingerprint golden): a Config serialized into the
// coordinator's JSON shard-plan and parsed back on a "worker" must
// yield the identical fingerprint and the identical seedmix streams —
// PointSeed per sweep point and the engine's per-block seed derivation
// — byte for byte. Any drift here silently splits a distributed sweep
// into two different experiments, so it must show up as a golden-file
// diff in review, never at merge time.
package fabric

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/rtd"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/seedmix"
	"github.com/fpn/flagproxy/internal/surface"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/fingerprints.golden")

type wireGoldenCase struct {
	name string
	cfg  experiment.Config
}

func wireGoldenCases(t *testing.T) []wireGoldenCase {
	t.Helper()
	arch := fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}
	l3, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	canonSched, _, err := schedule.CanonicalRotated(l3)
	if err != nil {
		t.Fatal(err)
	}
	base := experiment.Config{
		Code: l3.Code, Arch: arch, Basis: css.Z, Rounds: 3,
		P: 1e-3, Shots: 10000, Seed: 7, Decoder: experiment.FlaggedMWPM,
	}
	canonical := base
	canonical.Schedule, canonical.Arch = canonSched, fpn.Options{}
	earlyStop := base
	earlyStop.Basis, earlyStop.Seed, earlyStop.Decoder = css.X, 9, experiment.BPOSD
	earlyStop.TargetErrors, earlyStop.MaxCI = 100, 0.01
	codeCap := base
	codeCap.CodeCapacity, codeCap.FixedIdle, codeCap.Decoder = true, true, experiment.PlainMWPM
	codeCap.Rounds = 0 // pre-normalization zero must survive the wire verbatim
	cases := []wireGoldenCase{
		{"rotated3-z-greedy", base},
		{"rotated3-z-canonical-sched", canonical},
		{"rotated3-x-bposd-earlystop", earlyStop},
		{"rotated3-codecap-rounds0", codeCap},
	}
	// Smallest catalogued color code: exercises the Color fields of the
	// check codec and the css.New reconstruction path (entries are
	// sorted by N, so the first color hit is the smallest).
	for _, e := range catalog.Standard() {
		if e.Family == "color" {
			cc := base
			cc.Code, cc.Decoder, cc.Seed = e.Code, experiment.FlaggedRestriction, 13
			cases = append(cases, wireGoldenCase{fmt.Sprintf("color%d-flagged-restriction", e.Code.N), cc})
			break
		}
	}
	return cases
}

// roundTrip pushes cfg through the full wire path — struct → JSON bytes
// → struct → Config — exactly as coordinator and worker do.
func roundTrip(t *testing.T, cfg experiment.Config) experiment.Config {
	t.Helper()
	w, err := MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var w2 WireConfig
	if err := json.Unmarshal(data, &w2); err != nil {
		t.Fatal(err)
	}
	rt, err := w2.Config()
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestWireGoldenFingerprintsAndSeeds(t *testing.T) {
	var buf strings.Builder
	for _, c := range wireGoldenCases(t) {
		rt := roundTrip(t, c.cfg)
		fpOrig, fpWire := c.cfg.Fingerprint(), rt.Fingerprint()
		if fpWire != fpOrig {
			t.Errorf("%s: fingerprint changed across the wire: %s -> %s", c.name, fpOrig, fpWire)
		}
		// The sweep-point seed and the engine's per-block seed stream
		// must be derivable identically on both sides of the wire.
		ps := experiment.PointSeed(rt.Seed, "fig19", rt.Decoder, rt.Basis, rt.P)
		if want := experiment.PointSeed(c.cfg.Seed, "fig19", c.cfg.Decoder, c.cfg.Basis, c.cfg.P); ps != want {
			t.Errorf("%s: PointSeed changed across the wire: %d -> %d", c.name, want, ps)
		}
		fmt.Fprintf(&buf, "%s %s point=%d", c.name, fpOrig, ps)
		for b := 0; b < 4; b++ {
			blockSeed := seedmix.Derive(rt.Seed, uint64(b))
			if want := seedmix.Derive(c.cfg.Seed, uint64(b)); blockSeed != want {
				t.Errorf("%s: block %d seed changed across the wire: %d -> %d", c.name, b, want, blockSeed)
			}
			fmt.Fprintf(&buf, " b%d=%d", b, blockSeed)
		}
		fmt.Fprintln(&buf)
	}
	got := buf.String()

	path := filepath.Join("testdata", "fingerprints.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden wire fingerprints (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("wire fingerprints drifted from %s:\ngot:\n%swant:\n%s"+
			"an intended codec change must be proven fingerprint-preserving and regenerated with -update",
			path, got, want)
	}
}

// TestWireProtocolGolden pins the byte encodings that PR 10 added to
// the wire: epoch-fenced job/lease/ack/status messages, the CRC-framed
// completion stream, and the rtd resume handshake (header with stream
// id + start window, resume answer). A partitioned stale coordinator is
// fenced *by these exact bytes*; any drift must surface as a golden
// diff in review, never as a silent cross-version split at merge time.
func TestWireProtocolGolden(t *testing.T) {
	var buf strings.Builder
	pin := func(name string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s %s\n", name, data)
	}
	pin("job-running", jobMsg{Status: "running", Fingerprint: "fp-cafe", LeaseTTLMs: 15000, Epoch: 3})
	pin("lease-granted", leaseMsg{Status: "lease", Lease: 42, Shard: 7, FirstBlock: 7, Blocks: 1, Epoch: 3})
	pin("lease-fallback", leaseMsg{Status: "lease", Lease: 43, Shard: 2, FirstBlock: 2, Blocks: 1, Epoch: 3, Fallback: true})
	pin("ack-ok", ackMsg{Status: "ok", Epoch: 3})
	pin("ack-stale-epoch", ackMsg{Status: statusStaleEpoch, Epoch: 3})
	pin("status", statusMsg{
		Status: "running", Epoch: 3, Fingerprint: "fp-cafe", ShardsTotal: 10, ShardsDone: 4,
		Quarantined: 1, StaleEpochRejects: 2, LeaseReassigns: 5, FallbackRetries: 1, Failovers: 1,
	})

	var comp strings.Builder
	if err := writeCounts(&comp, 7, []int{0, 3, 1}); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "completion-frames %q\n", comp.String())

	hdr, err := rtd.EncodeFrame(rtd.Header{Stream: rtd.StreamName, Fingerprint: "fp-cafe", ID: "stream-9", StartWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "rtd-resume-header %q\n", hdr)
	pin("rtd-resume-known", rtd.ResumeInfo{Status: rtd.ResumeKnown, NextWindow: 4, Replay: []rtd.Result{{Window: 3, Status: rtd.StatusOK, Decoder: "flagged-mwpm", Flips: []int{1, 5}}}})
	pin("rtd-resume-unknown", rtd.ResumeInfo{Status: rtd.ResumeUnknown})
	got := buf.String()

	path := filepath.Join("testdata", "protocol.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden protocol frames (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("wire protocol drifted from %s:\ngot:\n%swant:\n%s"+
			"an intended protocol change must be shown compatible (or fenced by epoch/version) and regenerated with -update",
			path, got, want)
	}
}

// The codec must also reject what it cannot represent, loudly.
func TestWireRejectsUnrepresentable(t *testing.T) {
	cfg := wireGoldenCases(t)[0].cfg
	cfg.WrapDecoder = func(_ experiment.DecoderKind, d experiment.Decoder) experiment.Decoder { return d }
	if _, err := MarshalConfig(cfg); err == nil {
		t.Error("WrapDecoder crossed the wire")
	}
	var w WireConfig
	data, err := json.Marshal(mustWire(t, wireGoldenCases(t)[0].cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	w.Decoder = "nonexistent-decoder"
	if _, err := w.Config(); err == nil {
		t.Error("unknown decoder name accepted")
	}
}

func mustWire(t *testing.T, cfg experiment.Config) *WireConfig {
	t.Helper()
	w, err := MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
