// Completion-stream framing. A worker posts a shard's per-block
// logical-error counts as JSONL: one {"v","crc","rec"} frame per block
// — the same envelope discipline as the checkpoint store, CRC32-C over
// the exact rec bytes — followed by one framed trailer carrying the
// count of preceding lines. The trailer turns a connection cut at any
// byte into a detectable torn stream instead of a silently short shard:
// a reader accepts a stream only when every frame checks out, the block
// indexes are exactly the leased range in order, and the trailer
// matches.
package fabric

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// frameVersion is the completion-stream schema generation.
const frameVersion = 1

// castagnoli is the CRC32-C table shared by every frame and by the
// shard digest.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// countFrame is the on-wire envelope of one stream line.
type countFrame struct {
	V   int             `json:"v"`
	CRC uint32          `json:"crc"` // CRC32-C over the raw Rec bytes
	Rec json.RawMessage `json:"rec"`
}

// countRec is one block's result: absolute block index and its
// logical-error count.
type countRec struct {
	Block int `json:"b"`
	Errs  int `json:"e"`
}

// countTrailer ends a healthy stream; End is the number of count lines
// that preceded it. Its "end" field discriminates it from a countRec.
type countTrailer struct {
	End int `json:"end"`
}

// writeCounts streams the counts of blocks [first, first+len(counts))
// to w, one frame per block plus the trailer.
func writeCounts(w io.Writer, first int, counts []int) error {
	bw := bufio.NewWriter(w)
	for i, e := range counts {
		if err := writeFrame(bw, countRec{Block: first + i, Errs: e}); err != nil {
			return err
		}
	}
	if err := writeFrame(bw, countTrailer{End: len(counts)}); err != nil {
		return err
	}
	return bw.Flush()
}

func writeFrame(w io.Writer, payload any) error {
	rec, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	out, err := json.Marshal(countFrame{V: frameVersion, CRC: crc32.Checksum(rec, castagnoli), Rec: rec})
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// readCounts parses and fully validates one completion stream for the
// leased range [first, first+n). Any deviation — bad JSON, CRC
// mismatch, wrong block order, short or over-long stream, missing or
// wrong trailer — is an error; nothing partial is ever returned, so a
// torn TCP stream can never merge a half shard.
func readCounts(r io.Reader, first, n int) ([]int, error) {
	// Every line, the trailer included, must be newline-terminated: a
	// stream cut even one byte short of complete is rejected, so "every
	// strict prefix fails" holds with no edge case at the final byte.
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fabric: torn stream: %v", err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("fabric: torn stream: missing terminal newline")
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	counts := make([]int, 0, n)
	sawTrailer := false
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("fabric: stream line %d: empty", line)
		}
		if sawTrailer {
			return nil, fmt.Errorf("fabric: stream line %d: data after the trailer", line)
		}
		var fr countFrame
		if err := json.Unmarshal(raw, &fr); err != nil {
			return nil, fmt.Errorf("fabric: stream line %d: %v", line, err)
		}
		if fr.V != frameVersion {
			return nil, fmt.Errorf("fabric: stream line %d: unsupported frame version %d", line, fr.V)
		}
		if got := crc32.Checksum(fr.Rec, castagnoli); got != fr.CRC {
			return nil, fmt.Errorf("fabric: stream line %d: CRC32-C mismatch (stored %08x, computed %08x)", line, fr.CRC, got)
		}
		var probe struct {
			End *int `json:"end"`
		}
		if err := json.Unmarshal(fr.Rec, &probe); err == nil && probe.End != nil {
			if *probe.End != len(counts) {
				return nil, fmt.Errorf("fabric: trailer claims %d blocks, stream carried %d", *probe.End, len(counts))
			}
			sawTrailer = true
			continue
		}
		var rec countRec
		if err := json.Unmarshal(fr.Rec, &rec); err != nil {
			return nil, fmt.Errorf("fabric: stream line %d: bad record: %v", line, err)
		}
		if rec.Block != first+len(counts) {
			return nil, fmt.Errorf("fabric: stream line %d: block %d out of order (want %d)", line, rec.Block, first+len(counts))
		}
		if len(counts) == n {
			return nil, fmt.Errorf("fabric: stream carries more than the leased %d blocks", n)
		}
		if rec.Errs < 0 || rec.Errs > blockShotsMax {
			return nil, fmt.Errorf("fabric: stream line %d: impossible error count %d", line, rec.Errs)
		}
		counts = append(counts, rec.Errs)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fabric: torn stream: %v", err)
	}
	if !sawTrailer {
		return nil, fmt.Errorf("fabric: torn stream: no trailer after %d blocks", len(counts))
	}
	if len(counts) != n {
		return nil, fmt.Errorf("fabric: stream carried %d blocks, lease covers %d", len(counts), n)
	}
	return counts, nil
}

// blockShotsMax is the largest possible per-block error count (one
// 64-shot sampling word).
const blockShotsMax = 64

// countsDigest fingerprints a shard's counts so a duplicate completion
// can be verified idempotent (same digest → "ok") or exposed as a
// conflict (different digest → first completion wins, the liar is
// reported).
func countsDigest(counts []int) uint32 {
	var buf [8]byte
	h := crc32.New(castagnoli)
	for _, e := range counts {
		binary.LittleEndian.PutUint64(buf[:], uint64(e))
		_, _ = h.Write(buf[:]) // hash.Hash.Write never fails
	}
	return h.Sum32()
}
