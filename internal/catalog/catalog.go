// Package catalog generates the repository's inventory of hyperbolic
// quantum codes (the stand-in for the paper's GAP-generated Tables IV
// and V): for each {r,s} subfamily it searches the finite-group menu for
// (2,r,s) rotation pairs, builds the associated closed maps, converts
// them to surface or color codes, and computes their parameters.
package catalog

import (
	"fmt"
	"math/rand"

	"github.com/fpn/flagproxy/internal/seedmix"
	"sort"
	"sync"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

// Entry is one catalogued code.
type Entry struct {
	Family    string // "surface" or "color"
	Subfamily [2]int // {r, s}
	GroupName string // parent group the rotation pair was found in
	Code      *css.Code
	Map       *tiling.Map // the base map (for color codes, before truncation)
}

// SurfaceSubfamilies lists the paper's hyperbolic surface subfamilies.
var SurfaceSubfamilies = [][2]int{{4, 5}, {4, 6}, {5, 5}, {5, 6}}

// ColorSubfamilies lists the paper's hyperbolic color subfamilies.
var ColorSubfamilies = [][2]int{{4, 6}, {4, 8}, {4, 10}, {5, 8}}

// Options bounds the catalogue search.
type Options struct {
	MaxN     int   // largest code blocklength kept
	MaxCodes int   // per subfamily
	Seed     int64 // RNG seed for the pair search
	Tries    int   // pair-search attempts per parent group
}

// DefaultOptions returns the options used by the reproduction: codes up
// to a few hundred data qubits, a handful per subfamily.
func DefaultOptions() Options {
	return Options{MaxN: 400, MaxCodes: 4, Seed: 12345, Tries: 1200}
}

// SurfaceCodes generates hyperbolic surface codes of the {r,s}
// subfamily: faces are r-gons (weight-r Z checks) and vertices have
// degree s (weight-s X checks).
func SurfaceCodes(r, s int, opt Options) []Entry {
	rng := rand.New(rand.NewSource(opt.Seed))
	var out []Entry
	seenN := map[int]bool{}
	for _, m := range group.Menu() {
		if len(out) >= opt.MaxCodes {
			break
		}
		g, err := m.Build()
		if err != nil {
			continue
		}
		// Darts = |H|, edges = |H|/2 = n.
		pairs := group.FindRSPairs(g, s, r, rng, opt.Tries, 6, 2*opt.MaxN)
		for _, p := range pairs {
			if len(out) >= opt.MaxCodes {
				break
			}
			n := p.Sub.Order() / 2
			if n > opt.MaxN || seenN[n] {
				continue
			}
			mp, err := tiling.FromGroupPair(p)
			if err != nil || !mp.NonDegenerate() || !mp.IsEquivelar(r, s) {
				continue
			}
			code, err := surface.FromMap(mp,
				fmt.Sprintf("hysc-%d_%d-%d", r, s, n),
				fmt.Sprintf("hyperbolic-surface {%d,%d}", r, s))
			if err != nil || code.K == 0 || code.DZ < 3 || code.DX < 3 {
				continue
			}
			seenN[n] = true
			out = append(out, Entry{
				Family:    "surface",
				Subfamily: [2]int{r, s},
				GroupName: g.Name,
				Code:      code,
				Map:       mp,
			})
		}
	}
	sortEntries(out)
	return out
}

// ColorCodes generates hyperbolic color codes of the {r,s} subfamily:
// red plaquettes are 2r-gons and green/blue plaquettes s-gons, from a
// truncated {s/2, 2r} base map.
func ColorCodes(r, s int, opt Options) []Entry {
	if s%2 != 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seedmix.Derive(opt.Seed, seedmix.String("color-codes"))))
	var out []Entry
	seenN := map[int]bool{}
	for _, m := range group.Menu() {
		if len(out) >= opt.MaxCodes {
			break
		}
		g, err := m.Build()
		if err != nil {
			continue
		}
		// Qubits = darts = |H|.
		pairs := group.FindRSPairs(g, 2*r, s/2, rng, opt.Tries, 6, opt.MaxN)
		for _, p := range pairs {
			if len(out) >= opt.MaxCodes {
				break
			}
			n := p.Sub.Order()
			if n > opt.MaxN || seenN[n] {
				continue
			}
			mp, err := tiling.FromGroupPair(p)
			if err != nil || !mp.NonDegenerate() || !mp.IsEquivelar(s/2, 2*r) {
				continue
			}
			code, err := color.FromMap(mp,
				fmt.Sprintf("hycc-%d_%d-%d", r, s, n),
				fmt.Sprintf("hyperbolic-color {%d,%d}", r, s))
			if err != nil || code.K == 0 {
				continue
			}
			code.ComputeDistances(4, 30_000_000, 30, rng)
			if code.DZ < 3 || (code.DX > 0 && code.DX < 3) {
				continue
			}
			seenN[n] = true
			out = append(out, Entry{
				Family:    "color",
				Subfamily: [2]int{r, s},
				GroupName: g.Name,
				Code:      code,
				Map:       mp,
			})
		}
	}
	sortEntries(out)
	return out
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Code.N < es[j].Code.N })
}

var (
	stdOnce sync.Once
	stdCat  []Entry
)

// Standard returns the cached standard catalogue across all subfamilies
// (deterministic: fixed seeds and budgets).
func Standard() []Entry {
	stdOnce.Do(func() {
		opt := DefaultOptions()
		for _, rs := range SurfaceSubfamilies {
			o := opt
			if rs == [2]int{4, 5} {
				// Reach the paper's [[660,68,10,8]] instance: the
				// (2,4,5)-generated PGL(2,11) map has 660 edges.
				o.MaxN = 660
			}
			stdCat = append(stdCat, SurfaceCodes(rs[0], rs[1], o)...)
		}
		for _, rs := range ColorSubfamilies {
			o := opt
			if rs == [2]int{4, 10} {
				// The smallest orientable {4,10} substrate is the
				// PGL(2,9) regular map with 720 darts (the paper's small
				// {4,10} instances live on non-orientable surfaces).
				o.MaxN = 720
			}
			stdCat = append(stdCat, ColorCodes(rs[0], rs[1], o)...)
		}
	})
	return stdCat
}

// BySubfamily filters entries of the given family and subfamily.
func BySubfamily(entries []Entry, family string, rs [2]int) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Family == family && e.Subfamily == rs {
			out = append(out, e)
		}
	}
	return out
}
