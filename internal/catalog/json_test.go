package catalog

import (
	"bytes"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	entries := SurfaceCodes(5, 5, DefaultOptions())
	if len(entries) == 0 {
		t.Fatal("no entries to serialize")
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back), len(entries))
	}
	for i := range entries {
		a, b := entries[i].Code, back[i].Code
		if a.N != b.N || a.K != b.K || a.DZ != b.DZ || a.DX != b.DX {
			t.Fatalf("entry %d parameters changed: [[%d,%d,%d,%d]] vs [[%d,%d,%d,%d]]",
				i, a.N, a.K, a.DX, a.DZ, b.N, b.K, b.DX, b.DZ)
		}
		if len(a.Checks) != len(b.Checks) {
			t.Fatalf("entry %d check count changed", i)
		}
	}
}

func TestReadJSONRejectsCorruption(t *testing.T) {
	entries := SurfaceCodes(5, 5, DefaultOptions())[:1]
	var buf bytes.Buffer
	if err := WriteJSON(&buf, entries); err != nil {
		t.Fatal(err)
	}
	// Corrupt the recorded k.
	corrupted := bytes.Replace(buf.Bytes(), []byte(`"k": 8`), []byte(`"k": 9`), 1)
	if bytes.Equal(corrupted, buf.Bytes()) {
		t.Skip("serialized form changed; corruption probe not applicable")
	}
	if _, err := ReadJSON(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("expected parameter-mismatch error")
	}
}
