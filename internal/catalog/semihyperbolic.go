package catalog

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

// SemiHyperbolicCodes derives semi-hyperbolic surface codes from the
// {4,s} entries of the catalogue by l-fold face subdivision: the code
// dimension k is preserved while both distances grow with l — the
// middle ground between planar (k=1, unbounded d) and fully hyperbolic
// (k ∝ n, d ∝ log n) codes that the paper's related work positions as
// the scalable alternative.
func SemiHyperbolicCodes(base []Entry, l, maxN int) []Entry {
	var out []Entry
	for _, e := range base {
		if e.Family != "surface" || e.Subfamily[0] != 4 {
			continue
		}
		if e.Code.N*l*l > maxN {
			continue
		}
		sub, err := tiling.Subdivide(e.Map, l)
		if err != nil {
			continue
		}
		code, err := surface.FromMap(sub,
			fmt.Sprintf("semi-%d_%d-l%d-%d", e.Subfamily[0], e.Subfamily[1], l, sub.E()),
			fmt.Sprintf("semi-hyperbolic {4,%d} l=%d", e.Subfamily[1], l))
		if err != nil {
			continue
		}
		out = append(out, Entry{
			Family:    "semi-hyperbolic",
			Subfamily: e.Subfamily,
			GroupName: e.GroupName + fmt.Sprintf("/l=%d", l),
			Code:      code,
			Map:       sub,
		})
	}
	sortEntries(out)
	return out
}
