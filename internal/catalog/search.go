package catalog

import (
	"fmt"
	"math/rand"

	"github.com/fpn/flagproxy/internal/seedmix"

	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

// SearchSurfaceCodes supplements the group-based generator with the
// direct dart-permutation backtracking search (tiling.Search), which can
// reach blocklengths below the smallest group quotient — e.g. a
// {5,5} map with 10 edges ([[10,4,2]]) where the smallest regular map
// has 30. Sizes are dart counts to try; the search is randomized but
// seeded, so results are reproducible.
func SearchSurfaceCodes(r, s int, dartSizes []int, seed int64, maxSteps int) []Entry {
	var out []Entry
	for _, nd := range dartSizes {
		rng := rand.New(rand.NewSource(seedmix.Derive(seed, uint64(nd))))
		m := tiling.Search(r, s, nd, rng, maxSteps)
		if m == nil {
			continue
		}
		code, err := surface.FromMap(m,
			fmt.Sprintf("hysc-%d_%d-%d-searched", r, s, m.E()),
			fmt.Sprintf("hyperbolic-surface {%d,%d}", r, s))
		if err != nil || code.K == 0 || code.DZ < 2 || code.DX < 2 {
			continue
		}
		out = append(out, Entry{
			Family:    "surface",
			Subfamily: [2]int{r, s},
			GroupName: "dart-search",
			Code:      code,
			Map:       m,
		})
	}
	sortEntries(out)
	return out
}
