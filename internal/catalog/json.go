package catalog

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

// EntryJSON is the serialized form of a catalogue entry: enough to
// reconstruct the code exactly (the dart permutations define the map,
// and the map defines the code).
type EntryJSON struct {
	Family    string `json:"family"`
	Subfamily [2]int `json:"subfamily"`
	GroupName string `json:"group"`
	Name      string `json:"name"`
	N         int    `json:"n"`
	K         int    `json:"k"`
	DX        int    `json:"dx"`
	DZ        int    `json:"dz"`
	DXExact   bool   `json:"dx_exact"`
	DZExact   bool   `json:"dz_exact"`
	Sigma     []int  `json:"sigma"`
	Alpha     []int  `json:"alpha"`
}

// WriteJSON serializes entries to w.
func WriteJSON(w io.Writer, entries []Entry) error {
	out := make([]EntryJSON, 0, len(entries))
	for _, e := range entries {
		out = append(out, EntryJSON{
			Family:    e.Family,
			Subfamily: e.Subfamily,
			GroupName: e.GroupName,
			Name:      e.Code.Name,
			N:         e.Code.N,
			K:         e.Code.K,
			DX:        e.Code.DX,
			DZ:        e.Code.DZ,
			DXExact:   e.Code.DXExact,
			DZExact:   e.Code.DZExact,
			Sigma:     e.Map.Sigma,
			Alpha:     e.Map.Alpha,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON reconstructs catalogue entries from serialized form,
// rebuilding each code from its dart permutations and verifying the
// recorded parameters.
func ReadJSON(r io.Reader) ([]Entry, error) {
	var in []EntryJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	var out []Entry
	for _, ej := range in {
		m, err := tiling.New(ej.Sigma, ej.Alpha)
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %s: %w", ej.Name, err)
		}
		var code *css.Code
		switch ej.Family {
		case "surface":
			code, err = surface.FromMap(m, ej.Name, fmt.Sprintf("hyperbolic-surface {%d,%d}", ej.Subfamily[0], ej.Subfamily[1]))
		case "color":
			code, err = colorFromMap(m, ej)
		default:
			return nil, fmt.Errorf("catalog: entry %s: unknown family %q", ej.Name, ej.Family)
		}
		if err != nil {
			return nil, fmt.Errorf("catalog: entry %s: %w", ej.Name, err)
		}
		if code.N != ej.N || code.K != ej.K {
			return nil, fmt.Errorf("catalog: entry %s: rebuilt [[%d,%d]] does not match recorded [[%d,%d]]",
				ej.Name, code.N, code.K, ej.N, ej.K)
		}
		// Distances carry over (recomputing color distances is costly).
		code.DX, code.DZ = ej.DX, ej.DZ
		code.DXExact, code.DZExact = ej.DXExact, ej.DZExact
		out = append(out, Entry{
			Family:    ej.Family,
			Subfamily: ej.Subfamily,
			GroupName: ej.GroupName,
			Code:      code,
			Map:       m,
		})
	}
	return out, nil
}

// colorFromMap rebuilds a color code from its base map.
func colorFromMap(m *tiling.Map, ej EntryJSON) (*css.Code, error) {
	return color.FromMap(m, ej.Name,
		fmt.Sprintf("hyperbolic-color {%d,%d}", ej.Subfamily[0], ej.Subfamily[1]))
}
