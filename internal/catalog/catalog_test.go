package catalog

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
)

func TestSurfaceCatalog55(t *testing.T) {
	entries := SurfaceCodes(5, 5, DefaultOptions())
	if len(entries) == 0 {
		t.Fatal("no {5,5} surface codes found")
	}
	found30 := false
	for _, e := range entries {
		c := e.Code
		if c.K != 2-e.Map.EulerChar() {
			t.Fatalf("%s: k=%d != 2-χ=%d", c.Name, c.K, 2-e.Map.EulerChar())
		}
		if !c.DZExact || !c.DXExact {
			t.Fatalf("%s: surface distances must be exact", c.Name)
		}
		if c.N == 30 && c.K == 8 && c.DZ == 3 {
			found30 = true
		}
		t.Logf("%s %s k=%d from %s", c.Name, c.Params(), c.K, e.GroupName)
	}
	if !found30 {
		t.Fatal("the [[30,8,3,3]] code is missing from the {5,5} catalogue")
	}
}

func TestSurfaceCatalog45(t *testing.T) {
	entries := SurfaceCodes(4, 5, DefaultOptions())
	if len(entries) == 0 {
		t.Fatal("no {4,5} surface codes found")
	}
	for _, e := range entries {
		if w := e.Code.MaxWeight(css.Z); w != 4 {
			t.Fatalf("%s: Z weight %d, want 4", e.Code.Name, w)
		}
		if w := e.Code.MaxWeight(css.X); w != 5 {
			t.Fatalf("%s: X weight %d, want 5", e.Code.Name, w)
		}
		t.Logf("%s %s from %s", e.Code.Name, e.Code.Params(), e.GroupName)
	}
}

func TestColorCatalog46(t *testing.T) {
	entries := ColorCodes(4, 6, DefaultOptions())
	if len(entries) == 0 {
		t.Fatal("no {4,6} color codes found")
	}
	for _, e := range entries {
		c := e.Code
		// Red plaquettes are 2r-gons, green/blue s-gons.
		weights := map[int]bool{}
		for _, ch := range c.Checks {
			weights[len(ch.Support)] = true
		}
		if !weights[8] || !weights[6] {
			t.Fatalf("%s: weights %v, want {6,8}", c.Name, weights)
		}
		t.Logf("%s %s (dExact=%v) from %s", c.Name, c.Params(), c.DZExact, e.GroupName)
	}
}

func TestStandardCatalogCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue is slow")
	}
	entries := Standard()
	perFam := map[string]int{}
	for _, e := range entries {
		perFam[e.Family]++
		t.Logf("%-8s {%d,%d} %-14s k=%d Rideal=%.3f group=%s",
			e.Family, e.Subfamily[0], e.Subfamily[1], e.Code.Params(), e.Code.K,
			e.Code.IdealRate(), e.GroupName)
	}
	if perFam["surface"] < 4 {
		t.Fatalf("only %d surface codes in catalogue", perFam["surface"])
	}
	if perFam["color"] < 2 {
		t.Fatalf("only %d color codes in catalogue", perFam["color"])
	}
	// Rate claim: hyperbolic codes encode multiple logical qubits.
	for _, e := range entries {
		if e.Code.K < 2 {
			t.Fatalf("%s has k=%d", e.Code.Name, e.Code.K)
		}
	}
}

func TestSearchSurfaceCodesFindsSmallMap(t *testing.T) {
	entries := SearchSurfaceCodes(5, 5, []int{20}, 0, 2_000_000)
	if len(entries) == 0 {
		t.Skip("dart search found nothing at this budget")
	}
	e := entries[0]
	if e.Code.N != 10 {
		t.Fatalf("n = %d, want 10 (the 20-dart {5,5} map)", e.Code.N)
	}
	if e.Code.K != 4 {
		t.Fatalf("k = %d, want 4 (genus-2 surface)", e.Code.K)
	}
	if !e.Code.DZExact {
		t.Fatal("surface distances must be exact")
	}
	t.Logf("searched code: %s from %s", e.Code.Params(), e.GroupName)
}

func TestSemiHyperbolicCodes(t *testing.T) {
	base := SurfaceCodes(4, 5, DefaultOptions())
	if len(base) == 0 {
		t.Fatal("no {4,5} base codes")
	}
	semi := SemiHyperbolicCodes(base, 2, 300)
	if len(semi) == 0 {
		t.Fatal("no semi-hyperbolic codes derived")
	}
	for _, e := range semi {
		// k preserved from the parent of the same blocklength/4.
		var parent Entry
		for _, b := range base {
			if 4*b.Code.N == e.Code.N {
				parent = b
			}
		}
		if parent.Code == nil {
			t.Fatalf("no parent for %s", e.Code.Name)
		}
		if e.Code.K != parent.Code.K {
			t.Fatalf("%s: k=%d, parent k=%d", e.Code.Name, e.Code.K, parent.Code.K)
		}
		// The primal distance scales exactly with l (every edge becomes a
		// length-l path); the dual distance grows more irregularly but
		// must strictly increase.
		if e.Code.DZ != 2*parent.Code.DZ {
			t.Fatalf("%s: dZ=%d, want exactly %d", e.Code.Name, e.Code.DZ, 2*parent.Code.DZ)
		}
		if e.Code.DX <= parent.Code.DX {
			t.Fatalf("%s: dX=%d did not grow from parent %d", e.Code.Name, e.Code.DX, parent.Code.DX)
		}
		t.Logf("%s %s from parent %s %s", e.Code.Name, e.Code.Params(),
			parent.Code.Name, parent.Code.Params())
	}
}
