// Package circuit provides the Clifford circuit IR shared by the
// simulator and the detector-error-model extractor, plus the
// memory-experiment builder that lowers a scheduled syndrome-extraction
// round plan into a full noisy circuit with detector and observable
// annotations (the Stim substitute).
package circuit

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
)

// OpKind enumerates circuit operations.
type OpKind int

// Operations. Noise channels are explicit ops so the detector error
// model can enumerate fault sites.
const (
	OpCX     OpKind = iota // Pairs: (control, target) CNOTs, parallel
	OpH                    // Qubits
	OpReset                // Qubits: reset to |0>
	OpMR                   // Qubits: measure Z then reset; FlipProb applies
	OpM                    // Qubits: terminal measure Z; FlipProb applies
	OpPauli1               // Qubits: Pauli channel with PX/PY/PZ each
	OpDepol1               // Qubits: depolarizing, rate P (X,Y,Z each P/3)
	OpDepol2               // Pairs: two-qubit depolarizing, rate P (15 outcomes P/15)
	OpXFlip                // Qubits: X error with probability P (reset failure)
)

// Op is one (parallel) operation layer.
type Op struct {
	Kind       OpKind
	Qubits     []int
	Pairs      [][2]int
	P          float64 // Depol1/Depol2/XFlip rate
	PX, PY, PZ float64 // Pauli1 rates
	FlipProb   float64 // MR/M misread probability
}

// Detector compares the parity of a set of measurement indices against
// the noiseless reference (which is deterministic by construction).
type Detector struct {
	Meas   []int
	IsFlag bool
	Check  int       // check index for syndrome detectors; -1 for flags
	Flag   int       // physical flag qubit for flag detectors; -1 otherwise
	Round  int       // 0-based round; rounds is the final data-readout round
	Basis  css.Basis // basis of the check (syndrome) or window (flag)
	Color  int       // check color (color codes); -1 otherwise
}

// Circuit is a complete annotated experiment.
type Circuit struct {
	NumQubits   int
	Ops         []Op
	NumMeas     int
	Detectors   []Detector
	Observables [][]int // measurement index lists, one per logical
}

// AddOp appends an op, assigning measurement indices for MR/M; it
// returns the index of the first measurement of the op (or -1).
func (c *Circuit) AddOp(op Op) int {
	first := -1
	if op.Kind == OpMR || op.Kind == OpM {
		first = c.NumMeas
		c.NumMeas += len(op.Qubits)
	}
	c.Ops = append(c.Ops, op)
	return first
}

// Validate performs structural checks.
func (c *Circuit) Validate() error {
	for oi, op := range c.Ops {
		for _, q := range op.Qubits {
			if q < 0 || q >= c.NumQubits {
				return fmt.Errorf("circuit: op %d qubit %d out of range", oi, q)
			}
		}
		for _, p := range op.Pairs {
			if p[0] == p[1] || p[0] < 0 || p[1] < 0 || p[0] >= c.NumQubits || p[1] >= c.NumQubits {
				return fmt.Errorf("circuit: op %d bad pair %v", oi, p)
			}
		}
	}
	for di, d := range c.Detectors {
		if len(d.Meas) == 0 {
			return fmt.Errorf("circuit: detector %d empty", di)
		}
		for _, m := range d.Meas {
			if m < 0 || m >= c.NumMeas {
				return fmt.Errorf("circuit: detector %d meas %d out of range", di, m)
			}
		}
	}
	for oi, o := range c.Observables {
		for _, m := range o {
			if m < 0 || m >= c.NumMeas {
				return fmt.Errorf("circuit: observable %d meas %d out of range", oi, m)
			}
		}
	}
	return nil
}

// CountKind returns the number of ops of the given kind.
func (c *Circuit) CountKind(k OpKind) int {
	n := 0
	for _, op := range c.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}
