package circuit

import (
	"bufio"
	"fmt"
	"io"
)

// WriteStim serializes the circuit in Google Stim's text format so that
// experiments can be cross-validated against the simulator the paper
// used. Detectors and observables are emitted with rec[-k]
// back-references relative to the end of the measurement record;
// measurement misreads use Stim's M(p)/MR(p) argument form.
func (c *Circuit) WriteStim(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, op := range c.Ops {
		switch op.Kind {
		case OpCX:
			fmt.Fprint(bw, "CX")
			for _, p := range op.Pairs {
				fmt.Fprintf(bw, " %d %d", p[0], p[1])
			}
			fmt.Fprintln(bw)
		case OpH:
			writeQubitsOp(bw, "H", op.Qubits)
		case OpReset:
			writeQubitsOp(bw, "R", op.Qubits)
		case OpMR:
			if op.FlipProb > 0 {
				fmt.Fprintf(bw, "MR(%g)", op.FlipProb)
			} else {
				fmt.Fprint(bw, "MR")
			}
			for _, q := range op.Qubits {
				fmt.Fprintf(bw, " %d", q)
			}
			fmt.Fprintln(bw)
		case OpM:
			if op.FlipProb > 0 {
				fmt.Fprintf(bw, "M(%g)", op.FlipProb)
			} else {
				fmt.Fprint(bw, "M")
			}
			for _, q := range op.Qubits {
				fmt.Fprintf(bw, " %d", q)
			}
			fmt.Fprintln(bw)
		case OpPauli1:
			fmt.Fprintf(bw, "PAULI_CHANNEL_1(%g, %g, %g)", op.PX, op.PY, op.PZ)
			for _, q := range op.Qubits {
				fmt.Fprintf(bw, " %d", q)
			}
			fmt.Fprintln(bw)
		case OpDepol1:
			fmt.Fprintf(bw, "DEPOLARIZE1(%g)", op.P)
			for _, q := range op.Qubits {
				fmt.Fprintf(bw, " %d", q)
			}
			fmt.Fprintln(bw)
		case OpDepol2:
			fmt.Fprintf(bw, "DEPOLARIZE2(%g)", op.P)
			for _, p := range op.Pairs {
				fmt.Fprintf(bw, " %d %d", p[0], p[1])
			}
			fmt.Fprintln(bw)
		case OpXFlip:
			fmt.Fprintf(bw, "X_ERROR(%g)", op.P)
			for _, q := range op.Qubits {
				fmt.Fprintf(bw, " %d", q)
			}
			fmt.Fprintln(bw)
		default:
			return fmt.Errorf("circuit: cannot serialize op kind %d", op.Kind)
		}
	}
	for _, d := range c.Detectors {
		fmt.Fprint(bw, "DETECTOR")
		for _, m := range d.Meas {
			fmt.Fprintf(bw, " rec[%d]", m-c.NumMeas)
		}
		fmt.Fprintln(bw)
	}
	for oi, obs := range c.Observables {
		fmt.Fprintf(bw, "OBSERVABLE_INCLUDE(%d)", oi)
		for _, m := range obs {
			fmt.Fprintf(bw, " rec[%d]", m-c.NumMeas)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func writeQubitsOp(w io.Writer, name string, qubits []int) {
	fmt.Fprint(w, name)
	for _, q := range qubits {
		fmt.Fprintf(w, " %d", q)
	}
	fmt.Fprintln(w)
}
