package circuit

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/schedule"
)

// BuildCodeCapacity constructs a code-capacity memory experiment: data
// qubits suffer independent depolarizing noise once, and a single
// noiseless syndrome-extraction round reads the stabilizers perfectly
// (the noise model of the paper's appendix note on the Restriction
// decoder). The plan should come from a direct (flag-free) architecture;
// any flags present simply measure deterministically.
func BuildCodeCapacity(plan *schedule.RoundPlan, basis css.Basis, p float64) (*Circuit, error) {
	if basis != css.X && basis != css.Z {
		return nil, fmt.Errorf("circuit: invalid memory basis %q", basis)
	}
	net := plan.Net
	code := net.Code
	c := &Circuit{NumQubits: net.NumQubits()}
	dataQubits := make([]int, code.N)
	copy(dataQubits, net.DataQubit)

	c.AddOp(Op{Kind: OpReset, Qubits: dataQubits})
	if basis == css.X {
		c.AddOp(Op{Kind: OpH, Qubits: dataQubits})
	}
	c.AddOp(Op{Kind: OpDepol1, Qubits: dataQubits, P: p})

	measIndex := make([]int, len(plan.Meas))
	mi := 0
	for _, layer := range plan.Layers {
		switch layer.Kind {
		case schedule.LayerReset, schedule.LayerProxyReset:
			c.AddOp(Op{Kind: OpReset, Qubits: layer.Qubits})
		case schedule.LayerH:
			c.AddOp(Op{Kind: OpH, Qubits: layer.Qubits})
		case schedule.LayerCX:
			c.AddOp(Op{Kind: OpCX, Pairs: layer.Pairs})
			if len(layer.Resets) > 0 {
				c.AddOp(Op{Kind: OpReset, Qubits: layer.Resets})
			}
		case schedule.LayerMR:
			first := c.AddOp(Op{Kind: OpMR, Qubits: layer.Qubits})
			for range layer.Qubits {
				measIndex[mi] = first + (mi - firstMiOfLayer(plan, mi))
				mi++
			}
		}
	}
	if mi != len(plan.Meas) {
		return nil, fmt.Errorf("circuit: measurement accounting mismatch")
	}
	if basis == css.X {
		c.AddOp(Op{Kind: OpH, Qubits: dataQubits})
	}
	dataMeasFirst := c.AddOp(Op{Kind: OpM, Qubits: dataQubits})

	for i, mt := range plan.Meas {
		if mt.Kind != schedule.MeasParity {
			continue
		}
		ch := code.Checks[mt.Check]
		if ch.Basis != basis {
			continue // the opposite basis is non-deterministic in one round
		}
		// One perfect round: the parity measurement itself is a detector,
		// and so is its comparison against the data readout.
		c.Detectors = append(c.Detectors, Detector{
			Meas: []int{measIndex[i]}, Check: mt.Check, Flag: -1, Round: 0,
			Basis: ch.Basis, Color: ch.Color,
		})
	}
	logicals := code.LogicalZ
	if basis == css.X {
		logicals = code.LogicalX
	}
	for _, l := range logicals {
		var obs []int
		for _, q := range l.Support() {
			obs = append(obs, dataMeasFirst+q)
		}
		c.Observables = append(c.Observables, obs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
