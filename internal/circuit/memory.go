package circuit

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
)

// MemorySpec configures a memory experiment.
type MemorySpec struct {
	Plan   *schedule.RoundPlan
	Basis  css.Basis // memory basis: Z preserves |0..0>, X preserves |+..+>
	Rounds int
	Noise  *noise.Model // nil for a noiseless circuit
}

// BuildMemory lowers a round plan into a full memory-experiment circuit:
// data initialization, Rounds syndrome-extraction rounds, transversal
// data readout, detectors and logical observables.
func BuildMemory(spec MemorySpec) (*Circuit, error) {
	plan := spec.Plan
	net := plan.Net
	code := net.Code
	if spec.Rounds < 1 {
		return nil, fmt.Errorf("circuit: need at least 1 round")
	}
	if spec.Basis != css.X && spec.Basis != css.Z {
		return nil, fmt.Errorf("circuit: invalid memory basis %q", spec.Basis)
	}
	c := &Circuit{NumQubits: net.NumQubits()}
	nm := spec.Noise

	dataQubits := make([]int, code.N)
	copy(dataQubits, net.DataQubit)

	allQubits := make([]int, c.NumQubits)
	for i := range allQubits {
		allQubits[i] = i
	}

	// Data initialization.
	c.AddOp(Op{Kind: OpReset, Qubits: dataQubits})
	if nm != nil {
		c.AddOp(Op{Kind: OpXFlip, Qubits: dataQubits, P: nm.ResetFlip()})
	}
	if spec.Basis == css.X {
		c.AddOp(Op{Kind: OpH, Qubits: dataQubits})
		if nm != nil {
			c.AddOp(Op{Kind: OpDepol1, Qubits: dataQubits, P: nm.Depol1()})
		}
	}

	// measIndex[r][i] = global measurement index of plan.Meas[i] in round r.
	measIndex := make([][]int, spec.Rounds)

	for r := 0; r < spec.Rounds; r++ {
		if nm != nil {
			px, py, pz := nm.PauliTwirl(plan.LatencyNs)
			c.AddOp(Op{Kind: OpPauli1, Qubits: allQubits, PX: px, PY: py, PZ: pz})
		}
		measIndex[r] = make([]int, len(plan.Meas))
		mi := 0
		for _, layer := range plan.Layers {
			switch layer.Kind {
			case schedule.LayerReset:
				if r == 0 {
					c.AddOp(Op{Kind: OpReset, Qubits: layer.Qubits})
					if nm != nil {
						c.AddOp(Op{Kind: OpXFlip, Qubits: layer.Qubits, P: nm.ResetFlip()})
					}
				}
			case schedule.LayerProxyReset:
				c.AddOp(Op{Kind: OpReset, Qubits: layer.Qubits})
				if nm != nil {
					c.AddOp(Op{Kind: OpXFlip, Qubits: layer.Qubits, P: nm.ResetFlip()})
				}
			case schedule.LayerH:
				c.AddOp(Op{Kind: OpH, Qubits: layer.Qubits})
				if nm != nil {
					c.AddOp(Op{Kind: OpDepol1, Qubits: layer.Qubits, P: nm.Depol1()})
				}
			case schedule.LayerCX:
				c.AddOp(Op{Kind: OpCX, Pairs: layer.Pairs})
				if len(layer.Resets) > 0 {
					c.AddOp(Op{Kind: OpReset, Qubits: layer.Resets})
				}
				if nm != nil {
					c.AddOp(Op{Kind: OpDepol2, Pairs: layer.Pairs, P: nm.Depol2()})
					if len(layer.Resets) > 0 {
						c.AddOp(Op{Kind: OpXFlip, Qubits: layer.Resets, P: nm.ResetFlip()})
					}
					busy := map[int]bool{}
					for _, p := range layer.Pairs {
						busy[p[0]], busy[p[1]] = true, true
					}
					for _, q := range layer.Resets {
						busy[q] = true
					}
					var idle []int
					for q := 0; q < c.NumQubits; q++ {
						if !busy[q] {
							idle = append(idle, q)
						}
					}
					if len(idle) > 0 {
						c.AddOp(Op{Kind: OpDepol1, Qubits: idle, P: nm.Idle()})
					}
				}
			case schedule.LayerMR:
				flip := 0.0
				if nm != nil {
					flip = nm.MeasFlip()
				}
				first := c.AddOp(Op{Kind: OpMR, Qubits: layer.Qubits, FlipProb: flip})
				if nm != nil {
					c.AddOp(Op{Kind: OpXFlip, Qubits: layer.Qubits, P: nm.ResetFlip()})
				}
				for range layer.Qubits {
					measIndex[r][mi] = first + (mi - firstMiOfLayer(plan, mi))
					mi++
				}
			}
		}
		if mi != len(plan.Meas) {
			return nil, fmt.Errorf("circuit: plan measurement accounting mismatch (%d vs %d)", mi, len(plan.Meas))
		}
	}

	// Final transversal data readout.
	if spec.Basis == css.X {
		c.AddOp(Op{Kind: OpH, Qubits: dataQubits})
		if nm != nil {
			c.AddOp(Op{Kind: OpDepol1, Qubits: dataQubits, P: nm.Depol1()})
		}
	}
	flip := 0.0
	if nm != nil {
		flip = nm.MeasFlip()
	}
	dataMeasFirst := c.AddOp(Op{Kind: OpM, Qubits: dataQubits, FlipProb: flip})
	dataMeas := func(q int) int { return dataMeasFirst + q } // dataQubits are ids 0..N-1 in order

	// Detectors.
	for i, mt := range plan.Meas {
		for r := 0; r < spec.Rounds; r++ {
			m := measIndex[r][i]
			switch mt.Kind {
			case schedule.MeasFlag:
				c.Detectors = append(c.Detectors, Detector{
					Meas: []int{m}, IsFlag: true, Check: -1, Flag: mt.Flag, Round: r, Basis: mt.Basis, Color: -1,
				})
			case schedule.MeasParity:
				ch := code.Checks[mt.Check]
				det := Detector{Check: mt.Check, Flag: -1, Round: r, Basis: ch.Basis, Color: ch.Color}
				if r == 0 {
					if ch.Basis != spec.Basis {
						continue // non-deterministic in the first round
					}
					det.Meas = []int{m}
				} else {
					det.Meas = []int{measIndex[r-1][i], m}
				}
				c.Detectors = append(c.Detectors, det)
			}
		}
		// Final detector: last-round parity vs data readout.
		if mt.Kind == schedule.MeasParity {
			ch := code.Checks[mt.Check]
			if ch.Basis == spec.Basis {
				meas := []int{measIndex[spec.Rounds-1][i]}
				for _, q := range ch.Support {
					meas = append(meas, dataMeas(q))
				}
				c.Detectors = append(c.Detectors, Detector{
					Meas: meas, Check: mt.Check, Flag: -1, Round: spec.Rounds, Basis: ch.Basis, Color: ch.Color,
				})
			}
		}
	}

	// Observables: the memory-basis logicals over the data readout.
	logicals := code.LogicalZ
	if spec.Basis == css.X {
		logicals = code.LogicalX
	}
	for _, l := range logicals {
		var obs []int
		for _, q := range l.Support() {
			obs = append(obs, dataMeas(q))
		}
		c.Observables = append(c.Observables, obs)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// firstMiOfLayer returns the plan-measurement index at which the MR layer
// containing plan.Meas[mi] begins.
func firstMiOfLayer(plan *schedule.RoundPlan, mi int) int {
	count := 0
	for _, layer := range plan.Layers {
		if layer.Kind != schedule.LayerMR {
			continue
		}
		if mi < count+len(layer.Qubits) {
			return count
		}
		count += len(layer.Qubits)
	}
	return count
}
