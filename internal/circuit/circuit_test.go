package circuit

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func steane(t *testing.T) *css.Code {
	t.Helper()
	sups := [][]int{{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6}}
	var checks []css.Check
	for _, b := range []css.Basis{css.X, css.Z} {
		for _, s := range sups {
			checks = append(checks, css.Check{Basis: b, Support: s, Color: -1})
		}
	}
	c, err := css.New("steane", "test", 7, checks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func planFor(t *testing.T, code *css.Code, opt fpn.Options) *schedule.RoundPlan {
	t.Helper()
	net, err := fpn.Build(code, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestAddOpAssignsMeasurementIndices(t *testing.T) {
	c := &Circuit{NumQubits: 3}
	first := c.AddOp(Op{Kind: OpMR, Qubits: []int{0, 1}})
	if first != 0 || c.NumMeas != 2 {
		t.Fatalf("first=%d NumMeas=%d", first, c.NumMeas)
	}
	second := c.AddOp(Op{Kind: OpM, Qubits: []int{2}})
	if second != 2 || c.NumMeas != 3 {
		t.Fatalf("second=%d NumMeas=%d", second, c.NumMeas)
	}
	if c.AddOp(Op{Kind: OpH, Qubits: []int{0}}) != -1 {
		t.Fatal("non-measurement op must return -1")
	}
}

func TestValidateCatchesBadDetector(t *testing.T) {
	c := &Circuit{NumQubits: 2}
	c.AddOp(Op{Kind: OpM, Qubits: []int{0}})
	c.Detectors = append(c.Detectors, Detector{Meas: []int{5}})
	if err := c.Validate(); err == nil {
		t.Fatal("expected out-of-range detector error")
	}
}

func TestValidateCatchesBadPair(t *testing.T) {
	c := &Circuit{NumQubits: 2}
	c.AddOp(Op{Kind: OpCX, Pairs: [][2]int{{0, 0}}})
	if err := c.Validate(); err == nil {
		t.Fatal("expected self-pair error")
	}
}

func TestBuildMemoryCounts(t *testing.T) {
	code := steane(t)
	plan := planFor(t, code, fpn.Options{})
	rounds := 3
	c, err := BuildMemory(MemorySpec{Plan: plan, Basis: css.Z, Rounds: rounds, Noise: nil})
	if err != nil {
		t.Fatal(err)
	}
	// Measurements: 6 parities x 3 rounds + 7 data = 25.
	if c.NumMeas != 6*rounds+7 {
		t.Fatalf("NumMeas = %d, want %d", c.NumMeas, 6*rounds+7)
	}
	// Detectors for Z memory: Z checks have rounds+1 detectors each
	// (first, middles, final), X checks rounds-1 each.
	wantDet := 3*(rounds+1) + 3*(rounds-1)
	if len(c.Detectors) != wantDet {
		t.Fatalf("detectors = %d, want %d", len(c.Detectors), wantDet)
	}
	if len(c.Observables) != code.K {
		t.Fatalf("observables = %d, want %d", len(c.Observables), code.K)
	}
}

func TestBuildMemoryNoiseOpsPresent(t *testing.T) {
	code := steane(t)
	plan := planFor(t, code, fpn.Options{})
	nm := &noise.Model{P: 1e-3}
	c, err := BuildMemory(MemorySpec{Plan: plan, Basis: css.X, Rounds: 2, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	if c.CountKind(OpPauli1) != 2 {
		t.Fatalf("Pauli1 twirl ops = %d, want 2 (one per round)", c.CountKind(OpPauli1))
	}
	if c.CountKind(OpDepol2) == 0 || c.CountKind(OpXFlip) == 0 {
		t.Fatal("missing gate/reset noise ops")
	}
	// Noiseless variant must contain none.
	c0, err := BuildMemory(MemorySpec{Plan: plan, Basis: css.X, Rounds: 2, Noise: nil})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []OpKind{OpPauli1, OpDepol1, OpDepol2, OpXFlip} {
		if c0.CountKind(k) != 0 {
			t.Fatal("noiseless circuit contains noise ops")
		}
	}
}

func TestBuildMemoryRejectsBadSpec(t *testing.T) {
	code := steane(t)
	plan := planFor(t, code, fpn.Options{})
	if _, err := BuildMemory(MemorySpec{Plan: plan, Basis: css.Z, Rounds: 0}); err == nil {
		t.Fatal("expected error for 0 rounds")
	}
	if _, err := BuildMemory(MemorySpec{Plan: plan, Basis: 'Q', Rounds: 1}); err == nil {
		t.Fatal("expected error for bad basis")
	}
}

func TestBuildMemoryFlagDetectorsPerRound(t *testing.T) {
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var code *css.Code
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err = surface.FromMap(m, "hysc-30", "test")
		if err == nil {
			break
		}
	}
	if code == nil {
		t.Fatal("no code")
	}
	plan := planFor(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	rounds := 3
	c, err := BuildMemory(MemorySpec{Plan: plan, Basis: css.Z, Rounds: rounds, Noise: nil})
	if err != nil {
		t.Fatal(err)
	}
	perRound := map[int]int{}
	for _, d := range c.Detectors {
		if d.IsFlag {
			perRound[d.Round]++
			if len(d.Meas) != 1 {
				t.Fatal("flag detectors must be single measurements")
			}
		}
	}
	if len(perRound) != rounds {
		t.Fatalf("flag detectors span %d rounds, want %d", len(perRound), rounds)
	}
	for r := 1; r < rounds; r++ {
		if perRound[r] != perRound[0] {
			t.Fatalf("flag detector count varies: %v", perRound)
		}
	}
}
