package circuit

import (
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/noise"
)

func TestWriteStimSmall(t *testing.T) {
	c := &Circuit{NumQubits: 3}
	c.AddOp(Op{Kind: OpReset, Qubits: []int{0, 1, 2}})
	c.AddOp(Op{Kind: OpH, Qubits: []int{0}})
	c.AddOp(Op{Kind: OpCX, Pairs: [][2]int{{0, 1}}})
	c.AddOp(Op{Kind: OpDepol2, Pairs: [][2]int{{0, 1}}, P: 0.001})
	c.AddOp(Op{Kind: OpMR, Qubits: []int{1}, FlipProb: 0.001})
	c.AddOp(Op{Kind: OpM, Qubits: []int{0, 2}})
	c.Detectors = append(c.Detectors, Detector{Meas: []int{0}})
	c.Observables = append(c.Observables, []int{1, 2})

	var sb strings.Builder
	if err := c.WriteStim(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := []string{
		"R 0 1 2",
		"H 0",
		"CX 0 1",
		"DEPOLARIZE2(0.001) 0 1",
		"MR(0.001) 1",
		"M 0 2",
		"DETECTOR rec[-3]",
		"OBSERVABLE_INCLUDE(0) rec[-2] rec[-1]",
	}
	for _, line := range want {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

func TestWriteStimFullMemory(t *testing.T) {
	sups := [][]int{{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6}}
	var checks []css.Check
	for _, b := range []css.Basis{css.X, css.Z} {
		for _, s := range sups {
			checks = append(checks, css.Check{Basis: b, Support: s, Color: -1})
		}
	}
	code, err := css.New("steane", "test", 7, checks)
	if err != nil {
		t.Fatal(err)
	}
	plan := planFor(t, code, fpn.Options{UseFlags: true})
	c, err := BuildMemory(MemorySpec{Plan: plan, Basis: css.Z, Rounds: 2, Noise: &noise.Model{P: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := c.WriteStim(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "DETECTOR") != len(c.Detectors) {
		t.Fatal("detector count mismatch in stim output")
	}
	if !strings.Contains(out, "PAULI_CHANNEL_1(") {
		t.Fatal("missing decoherence channel")
	}
	if !strings.Contains(out, "OBSERVABLE_INCLUDE(0)") {
		t.Fatal("missing observable")
	}
}
