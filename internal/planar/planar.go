// Package planar implements graph planarity testing with the
// Demoucron–Malgrange–Pertuiset (DMP) face-embedding algorithm, applied
// per biconnected component. It backs the reproduction of the paper's
// appendix claim that the listed Flag-Proxy Networks are biplanar
// (edge-partitionable into two planar layers).
package planar

import "sort"

// IsPlanar reports whether the undirected graph on n vertices is planar.
// Self-loops are rejected as non-planar input errors (we have none);
// parallel edges are deduplicated (they never affect planarity).
func IsPlanar(n int, edges [][2]int) bool {
	dedup := map[[2]int]bool{}
	var es [][2]int
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if !dedup[k] {
			dedup[k] = true
			es = append(es, k)
		}
	}
	if len(es) <= 2 {
		return true
	}
	// Global Euler bound.
	if len(es) > 3*n-6 {
		return false
	}
	for _, block := range biconnectedComponents(n, es) {
		if !dmpPlanar(block) {
			return false
		}
	}
	return true
}

// biconnectedComponents returns the edge sets of the biconnected
// components (Hopcroft–Tarjan).
func biconnectedComponents(n int, edges [][2]int) [][][2]int {
	adj := make([][]int, n) // edge indices
	for ei, e := range edges {
		adj[e[0]] = append(adj[e[0]], ei)
		adj[e[1]] = append(adj[e[1]], ei)
	}
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var stack []int // edge indices
	var blocks [][][2]int
	timer := 0
	type frame struct {
		v, parentEdge, iter int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		frames := []frame{{v: start, parentEdge: -1}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.iter < len(adj[f.v]) {
				ei := adj[f.v][f.iter]
				f.iter++
				if ei == f.parentEdge {
					continue
				}
				e := edges[ei]
				to := e[0] + e[1] - f.v
				if disc[to] == -1 {
					stack = append(stack, ei)
					disc[to] = timer
					low[to] = timer
					timer++
					frames = append(frames, frame{v: to, parentEdge: ei})
				} else if disc[to] < disc[f.v] {
					stack = append(stack, ei)
					if disc[to] < low[f.v] {
						low[f.v] = disc[to]
					}
				}
			} else {
				frames = frames[:len(frames)-1]
				if len(frames) == 0 {
					continue
				}
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
				if low[f.v] >= disc[p.v] {
					// p.v is an articulation point (or root): pop a block.
					var block [][2]int
					for len(stack) > 0 {
						ei := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						block = append(block, edges[ei])
						if ei == f.parentEdge {
							break
						}
					}
					if len(block) > 0 {
						blocks = append(blocks, block)
					}
				}
			}
		}
	}
	return blocks
}

// dmpPlanar runs the DMP embedding on one biconnected component.
func dmpPlanar(block [][2]int) bool {
	if len(block) <= 3 {
		return true
	}
	// Relabel vertices densely.
	label := map[int]int{}
	for _, e := range block {
		for _, v := range e {
			if _, ok := label[v]; !ok {
				label[v] = len(label)
			}
		}
	}
	n := len(label)
	if len(block) > 3*n-6 {
		return false
	}
	adj := make([][]int, n)
	edgeSet := map[[2]int]bool{}
	for _, e := range block {
		a, b := label[e[0]], label[e[1]]
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
		if a > b {
			a, b = b, a
		}
		edgeSet[[2]int{a, b}] = true
	}
	// Find an initial cycle by walking until a vertex repeats.
	cycle := findCycle(n, adj)
	if cycle == nil {
		return true // a tree (should not happen in a 2-connected block)
	}
	embedded := make([]bool, n) // vertex embedded
	inEmb := map[[2]int]bool{}  // embedded edges
	addEmb := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		inEmb[[2]int{a, b}] = true
	}
	for i, v := range cycle {
		embedded[v] = true
		addEmb(v, cycle[(i+1)%len(cycle)])
	}
	// Faces as vertex cycles.
	faces := [][]int{append([]int(nil), cycle...), reversed(cycle)}

	for {
		frags := fragments(n, adj, embedded, inEmb)
		if len(frags) == 0 {
			return true
		}
		// For each fragment, find admissible faces.
		bestIdx := -1
		var bestFaces []int
		for fi, fr := range frags {
			var adm []int
			for fc, face := range faces {
				if containsAll(face, fr.attach) {
					adm = append(adm, fc)
				}
			}
			if len(adm) == 0 {
				return false
			}
			if bestIdx == -1 || len(adm) < len(bestFaces) {
				bestIdx = fi
				bestFaces = adm
			}
		}
		fr := frags[bestIdx]
		face := faces[bestFaces[0]]
		// Find a path through the fragment between two attachments.
		path := fr.attachPath()
		// Embed the path's interior vertices and all path edges.
		for i := 0; i < len(path); i++ {
			embedded[path[i]] = true
			if i+1 < len(path) {
				addEmb(path[i], path[i+1])
			}
		}
		// Split the face along the path.
		u, v := path[0], path[len(path)-1]
		iu, iv := indexIn(face, u), indexIn(face, v)
		if iu == -1 || iv == -1 {
			return false // inconsistent state; treat as non-planar
		}
		arc1 := arc(face, iu, iv)
		arc2 := arc(face, iv, iu)
		rev := reversed(path)
		f1 := append(append([]int(nil), arc1...), rev[1:len(rev)-1]...)
		f2 := append(append([]int(nil), arc2...), path[1:len(path)-1]...)
		faces[bestFaces[0]] = f1
		faces = append(faces, f2)
	}
}

type fragment struct {
	verts  []int // interior (non-embedded) vertices, may be empty
	edges  [][2]int
	attach []int // embedded attachment vertices, sorted
	adj    map[int][]int
}

// attachPath returns a path between two attachment vertices through the
// fragment (for a single-edge fragment, just the edge).
func (f *fragment) attachPath() []int {
	u := f.attach[0]
	// BFS from u through fragment edges until another attachment.
	prev := map[int]int{u: u}
	queue := []int{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, to := range f.adj[cur] {
			if _, seen := prev[to]; seen {
				continue
			}
			prev[to] = cur
			if to != u && contains(f.attach, to) {
				var path []int
				for x := to; x != u; x = prev[x] {
					path = append(path, x)
				}
				path = append(path, u)
				return reversed(path)
			}
			// Only continue through interior vertices.
			if !contains(f.attach, to) {
				queue = append(queue, to)
			}
		}
	}
	return []int{u} // degenerate; cannot happen in 2-connected blocks
}

// fragments computes the bridges of the embedded subgraph.
func fragments(n int, adj [][]int, embedded []bool, inEmb map[[2]int]bool) []*fragment {
	var frags []*fragment
	isEmbEdge := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		return inEmb[[2]int{a, b}]
	}
	// Single-edge fragments: non-embedded edges between embedded vertices.
	seenEdge := map[[2]int]bool{}
	for v := 0; v < n; v++ {
		if !embedded[v] {
			continue
		}
		for _, to := range adj[v] {
			if !embedded[to] || isEmbEdge(v, to) {
				continue
			}
			a, b := v, to
			if a > b {
				a, b = b, a
			}
			if seenEdge[[2]int{a, b}] {
				continue
			}
			seenEdge[[2]int{a, b}] = true
			fr := &fragment{attach: []int{a, b}, edges: [][2]int{{a, b}},
				adj: map[int][]int{a: {b}, b: {a}}}
			sort.Ints(fr.attach)
			frags = append(frags, fr)
		}
	}
	// Component fragments: components of non-embedded vertices.
	visited := make([]bool, n)
	for s := 0; s < n; s++ {
		if embedded[s] || visited[s] {
			continue
		}
		fr := &fragment{adj: map[int][]int{}}
		attach := map[int]bool{}
		stack := []int{s}
		visited[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			fr.verts = append(fr.verts, v)
			for _, to := range adj[v] {
				fr.adj[v] = append(fr.adj[v], to)
				fr.adj[to] = append(fr.adj[to], v)
				if embedded[to] {
					attach[to] = true
				} else if !visited[to] {
					visited[to] = true
					stack = append(stack, to)
				}
			}
		}
		for a := range attach {
			fr.attach = append(fr.attach, a)
		}
		sort.Ints(fr.attach)
		frags = append(frags, fr)
	}
	return frags
}

func findCycle(n int, adj [][]int) []int {
	parent := make([]int, n)
	state := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var cyc []int
	var dfs func(v, p int) bool
	dfs = func(v, p int) bool {
		state[v] = 1
		for _, to := range adj[v] {
			if to == p {
				p = -2 // allow revisiting parent through a parallel edge only once
				continue
			}
			if state[to] == 1 {
				// Back edge: extract cycle to..v.
				cyc = []int{to}
				for x := v; x != to; x = parent[x] {
					cyc = append(cyc, x)
				}
				return true
			}
			if state[to] == 0 {
				parent[to] = v
				if dfs(to, v) {
					return true
				}
			}
		}
		state[v] = 2
		return false
	}
	for s := 0; s < n; s++ {
		if state[s] == 0 && dfs(s, -1) {
			return cyc
		}
	}
	return nil
}

func reversed(s []int) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsAll(s []int, vs []int) bool {
	for _, v := range vs {
		if !contains(s, v) {
			return false
		}
	}
	return true
}

func indexIn(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// arc returns face[i..j] walking forward cyclically (inclusive).
func arc(face []int, i, j int) []int {
	var out []int
	for k := i; ; k = (k + 1) % len(face) {
		out = append(out, face[k])
		if k == j {
			break
		}
	}
	return out
}
