package planar_test

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/planar"
	"github.com/fpn/flagproxy/internal/surface"
)

func complete(n int) [][2]int {
	var es [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			es = append(es, [2]int{i, j})
		}
	}
	return es
}

func TestCompleteGraphs(t *testing.T) {
	for n := 1; n <= 4; n++ {
		if !planar.IsPlanar(n, complete(n)) {
			t.Fatalf("K%d should be planar", n)
		}
	}
	for n := 5; n <= 7; n++ {
		if planar.IsPlanar(n, complete(n)) {
			t.Fatalf("K%d should be non-planar", n)
		}
	}
}

func TestK33(t *testing.T) {
	var es [][2]int
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			es = append(es, [2]int{i, j})
		}
	}
	if planar.IsPlanar(6, es) {
		t.Fatal("K3,3 should be non-planar")
	}
	// Removing one edge makes it planar.
	if !planar.IsPlanar(6, es[1:]) {
		t.Fatal("K3,3 minus an edge should be planar")
	}
}

func TestPetersen(t *testing.T) {
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	es := append(append(outer, spokes...), inner...)
	if planar.IsPlanar(10, es) {
		t.Fatal("Petersen graph should be non-planar")
	}
}

func TestGridPlanar(t *testing.T) {
	n := 6
	var es [][2]int
	id := func(r, c int) int { return r*n + c }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				es = append(es, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < n {
				es = append(es, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	if !planar.IsPlanar(n*n, es) {
		t.Fatal("grid should be planar")
	}
}

func TestTreesAndCycles(t *testing.T) {
	// Random tree.
	rng := rand.New(rand.NewSource(1))
	n := 40
	var es [][2]int
	for v := 1; v < n; v++ {
		es = append(es, [2]int{rng.Intn(v), v})
	}
	if !planar.IsPlanar(n, es) {
		t.Fatal("trees are planar")
	}
	// Cycle.
	var cyc [][2]int
	for v := 0; v < n; v++ {
		cyc = append(cyc, [2]int{v, (v + 1) % n})
	}
	if !planar.IsPlanar(n, cyc) {
		t.Fatal("cycles are planar")
	}
}

func TestDisconnectedWithNonPlanarPart(t *testing.T) {
	// K5 plus an isolated triangle (shifted labels).
	es := complete(5)
	es = append(es, [2]int{5, 6}, [2]int{6, 7}, [2]int{7, 5})
	if planar.IsPlanar(8, es) {
		t.Fatal("graph containing K5 must be non-planar")
	}
}

func TestParallelAndSelfLoopsIgnored(t *testing.T) {
	es := [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}, {2, 0}}
	if !planar.IsPlanar(3, es) {
		t.Fatal("triangle with duplicates should be planar")
	}
}

func TestPlanarSurfaceCodeCouplingGraph(t *testing.T) {
	// The rotated surface code's coupling graph is planar by design.
	l, err := surface.Rotated(5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fpn.Build(l.Code, fpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var es [][2]int
	for q := 0; q < net.NumQubits(); q++ {
		for _, v := range net.Neighbors(q) {
			if v > q {
				es = append(es, [2]int{q, v})
			}
		}
	}
	if !planar.IsPlanar(net.NumQubits(), es) {
		t.Fatal("rotated surface code coupling graph must be planar")
	}
}

// Property: removing edges preserves planarity (monotone property).
func TestPropertyEdgeDeletionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(6)
		var es [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					es = append(es, [2]int{i, j})
				}
			}
		}
		if planar.IsPlanar(n, es) {
			// Any subgraph stays planar.
			for k := 0; k < 3 && len(es) > 0; k++ {
				idx := rng.Intn(len(es))
				sub := append(append([][2]int{}, es[:idx]...), es[idx+1:]...)
				if !planar.IsPlanar(n, sub) {
					t.Fatalf("edge deletion broke planarity (n=%d)", n)
				}
			}
		}
	}
}

// Property: adding a K5 on fresh vertices makes any graph non-planar.
func TestPropertyK5Poisoning(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		var es [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					es = append(es, [2]int{i, j})
				}
			}
		}
		for i := n; i < n+5; i++ {
			for j := i + 1; j < n+5; j++ {
				es = append(es, [2]int{i, j})
			}
		}
		if planar.IsPlanar(n+5, es) {
			t.Fatal("graph with K5 component reported planar")
		}
	}
}
