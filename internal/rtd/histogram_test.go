package rtd

import (
	"testing"
	"time"
)

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	samples := []time.Duration{
		100 * time.Nanosecond, 100 * time.Nanosecond,
		10 * time.Microsecond, 10 * time.Microsecond,
		5 * time.Millisecond,
	}
	for _, d := range samples {
		h.Record(d)
	}
	if got := h.Count(); got != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", got, len(samples))
	}
	// Quantiles are conservative power-of-two upper bounds: the true
	// quantile value q* satisfies q* <= Quantile(q) < 2*q*.
	checks := []struct {
		q    float64
		true time.Duration
	}{
		{0.50, 10 * time.Microsecond},
		{0.99, 5 * time.Millisecond},
		{0.999, 5 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.true || got >= 2*c.true {
			t.Fatalf("Quantile(%v) = %v, want in [%v, %v)", c.q, got, c.true, 2*c.true)
		}
	}
}

func TestHistogramClampsAndSaturates(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("negative sample should clamp to 0, Quantile(1) = %v", got)
	}
	var h2 Histogram
	h2.Record(time.Duration(1<<62 + 1))
	if got := h2.Quantile(1); got <= 0 {
		t.Fatalf("huge sample must saturate positive, got %v", got)
	}
}
