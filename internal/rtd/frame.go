// Wire framing for the online decode service. Both directions of a
// syndrome stream are CRC32-C-framed JSONL — one {"v","crc","rec"}
// envelope per line, checksum over the exact rec bytes, a counted
// trailer at the end — the same discipline as the fabric's completion
// streams and the checkpoint store. The trailer turns a connection cut
// at any byte into a detectable torn stream: every strict prefix of a
// healthy stream fails validation.
//
// Request (client → server): one header record naming the stream kind
// and the configuration fingerprint, then round records in strictly
// sequential (window, round) order, then a trailer counting the round
// records. Response (server → client): one result record per window in
// strictly ascending window order, at most one fatal error record, then
// a trailer counting the result records (Drained set when the stream
// was ended by a server drain).
package rtd

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// frameVersion is the syndrome-stream schema generation.
const frameVersion = 1

// StreamName discriminates syndrome streams from unrelated POSTs.
const StreamName = "rtd-syndrome"

// castagnoli is the CRC32-C table shared by every frame.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame is the on-wire envelope of one stream line.
type frame struct {
	V   int             `json:"v"`
	CRC uint32          `json:"crc"` // CRC32-C over the raw Rec bytes
	Rec json.RawMessage `json:"rec"`
}

// Header opens a syndrome stream. Fingerprint must match the serving
// configuration's experiment.Config.Fingerprint — the same engine-drift
// tripwire the fabric uses, pointed the other way.
//
// ID and StartWindow are the resume handshake: a client that names its
// stream can reconnect after a cut and continue from the next
// uncommitted window. StartWindow is the absolute index of the first
// window this request body carries; the server accepts it only when it
// equals the next window it expects for ID, replays nothing, and
// rejects a StartWindow it has already committed past (a replayed
// round must never commit twice).
type Header struct {
	Stream      string `json:"stream"`
	Fingerprint string `json:"fp"`
	ID          string `json:"id,omitempty"`
	StartWindow int    `json:"sw,omitempty"`
}

// Round carries the detectors that fired in one measurement round of
// one window. Windows and rounds are strictly sequential: window w
// sends rounds 0..rpw-1 in order, then window w+1 begins. Fired indices
// are global detector indices, strictly ascending, and must belong to
// round Round of the serving circuit.
type Round struct {
	Window int   `json:"w"`
	Round  int   `json:"r"`
	Fired  []int `json:"f,omitempty"`
}

// Trailer ends a healthy stream in either direction; End counts the
// records (round or result) that preceded it. Drained is set by the
// server when the stream was cut short by an orderly drain rather than
// by the client's trailer.
type Trailer struct {
	End     int  `json:"end"`
	Drained bool `json:"drained,omitempty"`
}

// Result statuses, in decreasing order of health.
const (
	StatusOK       = "ok"       // primary decoder committed within deadline
	StatusDegraded = "degraded" // fallback chain committed after a primary timeout or panic
	StatusError    = "error"    // decoder returned an error; no correction committed
	StatusDeadline = "deadline" // primary deadline expired and no fallback rescued
	StatusFailed   = "failed"   // primary panicked and no fallback rescued
	StatusShed     = "shed"     // admission control refused the window before decoding
)

// Result reports one window's outcome: the status above, the decoder
// that produced the correction, and the correction itself as the
// strictly ascending indices of logical observables to flip.
type Result struct {
	Window  int    `json:"w"`
	Status  string `json:"st"`
	Decoder string `json:"dec,omitempty"`
	Flips   []int  `json:"c,omitempty"`
}

// Committed reports whether a correction was committed for the window.
func (r Result) Committed() bool {
	return r.Status == StatusOK || r.Status == StatusDegraded
}

// Fatal aborts a stream with a server-side verdict (protocol violation,
// torn request, fingerprint mismatch). It is followed by the trailer.
type Fatal struct {
	Err string `json:"err"`
}

// EncodeFrame wraps payload in the CRC envelope and returns the
// newline-terminated line. Chaos clients build raw bodies from these
// and then damage them deliberately.
func EncodeFrame(payload any) ([]byte, error) {
	rec, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	out, err := json.Marshal(frame{V: frameVersion, CRC: crc32.Checksum(rec, castagnoli), Rec: rec})
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// writeFrame encodes payload and writes it as one line.
func writeFrame(w io.Writer, payload any) error {
	line, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	_, err = w.Write(line)
	return err
}

// decodeFrame validates one line's envelope — JSON shape, version, CRC —
// and returns the raw record bytes.
func decodeFrame(line []byte) (json.RawMessage, error) {
	var fr frame
	if err := json.Unmarshal(line, &fr); err != nil {
		return nil, fmt.Errorf("rtd: bad frame: %v", err)
	}
	if fr.V != frameVersion {
		return nil, fmt.Errorf("rtd: unsupported frame version %d", fr.V)
	}
	if got := crc32.Checksum(fr.Rec, castagnoli); got != fr.CRC {
		return nil, fmt.Errorf("rtd: frame CRC32-C mismatch (stored %08x, computed %08x)", fr.CRC, got)
	}
	return fr.Rec, nil
}

// probeTrailer reports whether rec is a trailer (discriminated by its
// "end" key, like the fabric's completion trailer).
func probeTrailer(rec json.RawMessage) (Trailer, bool) {
	var probe struct {
		End     *int `json:"end"`
		Drained bool `json:"drained"`
	}
	if err := json.Unmarshal(rec, &probe); err != nil || probe.End == nil {
		return Trailer{}, false
	}
	return Trailer{End: *probe.End, Drained: probe.Drained}, true
}

// EncodeWindows builds a complete, healthy request body for the given
// windows: the header, each window's rounds in order, the trailer. Each
// element of wins holds the per-round fired-detector lists of one
// window (wins[w][r] = global detector indices fired in round r).
func EncodeWindows(fingerprint string, wins [][][]int) ([][]byte, error) {
	return EncodeWindowsAt(fingerprint, "", 0, wins)
}

// EncodeWindowsAt is EncodeWindows for a resumable stream: the header
// names the stream id and the absolute index of the first window in
// wins, and every round frame carries its absolute window index. A
// fresh stream is start 0; a resumed one continues where the previous
// segment was cut.
func EncodeWindowsAt(fingerprint, id string, start int, wins [][][]int) ([][]byte, error) {
	frames := make([][]byte, 0, 2)
	h, err := EncodeFrame(Header{Stream: StreamName, Fingerprint: fingerprint, ID: id, StartWindow: start})
	if err != nil {
		return nil, err
	}
	frames = append(frames, h)
	rounds := 0
	for w, win := range wins {
		for r, fired := range win {
			line, err := EncodeFrame(Round{Window: start + w, Round: r, Fired: fired})
			if err != nil {
				return nil, err
			}
			frames = append(frames, line)
			rounds++
		}
	}
	t, err := EncodeFrame(Trailer{End: rounds})
	if err != nil {
		return nil, err
	}
	return append(frames, t), nil
}

// ResumeInfo answers GET /v1/resume (plain JSON, not framed — it is a
// point query, not a stream): whether the server still holds state for
// the stream id, the next window it expects, and the results it
// already committed past the client's high-water mark (decoded while
// the connection was dying, delivered nowhere).
type ResumeInfo struct {
	Status     string   `json:"status"` // "resume" (state held) or "unknown"
	NextWindow int      `json:"next_window"`
	Replay     []Result `json:"replay,omitempty"`
}

// Resume statuses.
const (
	ResumeKnown   = "resume"
	ResumeUnknown = "unknown"
)
