// Package rtd is the real-time decode service: long-running HTTP
// streams of per-round syndromes in, per-window corrections out, under
// an explicit latency SLO. One window is one full round span of the
// serving circuit (the unit the decoder commits), and the service
// pipelines windows — window w decodes while the rounds of w+1… are
// still arriving — over per-connection scratch arenas from the sweep
// engine's DecoderPool, so a committed correction is bit-identical to
// what an offline batch sweep would produce for the same syndrome.
//
// The SLO is defended at every boundary, and every defense is counted:
//
//   - admission: at most MaxStreams concurrent streams (excess requests
//     get an immediate 429) and a bounded decode queue — a window that
//     finds the queue full is shed with an explicit per-window verdict
//     instead of silently adding latency (ShedRounds);
//   - decode deadlines: a window that outlives DecodeTimeout abandons
//     its decoder (the engine's leak-and-reacquire discipline) and
//     walks the fallback chain (TimeoutRounds, DegradedRounds,
//     FailedRounds);
//   - slow clients: every read and write carries a deadline, so a hung
//     client costs one stream slot for ReadTimeout, not forever
//     (HungClients), and a client that stops reading its corrections is
//     cut off at WriteTimeout;
//   - draining: Drain stops intake, finishes every window already
//     received in full, flushes the results, and closes each stream
//     with a drained trailer — zero committed rounds are lost.
//
// Latency accounting (the /statz p50/p99/p999 histogram) flows through
// the injectable Clock; the wall-clock default lives behind two
// annotated methods and nothing the corrections depend on ever reads
// time.
package rtd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fpn/flagproxy/internal/experiment"
)

// Options configures NewServer. Online is required; everything else
// has serviceable defaults.
type Options struct {
	// Online is the decode stack to serve (experiment.Pipeline.NewOnline).
	Online *experiment.Online
	// MaxStreams caps concurrent syndrome streams; excess requests are
	// refused with 429. 0 means 16.
	MaxStreams int
	// QueueDepth bounds the decode queue shared by all streams; a
	// window submitted to a full queue is shed. 0 means 64.
	QueueDepth int
	// Workers is the decode worker count. 0 means GOMAXPROCS.
	Workers int
	// MaxSessions caps how many cut resumable streams the server keeps
	// state for (oldest evicted first); 0 means 64. A stream consumes a
	// session slot only when it named an id and died mid-stream.
	MaxSessions int
	// DecodeTimeout is the per-window decode deadline; a primary
	// attempt that misses it is abandoned to the fallback chain. 0
	// means the serving Config.DecodeTimeout (possibly none).
	DecodeTimeout time.Duration
	// ReadTimeout bounds the wait for each request frame; a client
	// silent for longer is a hung client and its stream is closed. 0
	// means 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write; a client that stops
	// reading corrections forfeits the rest of its results. 0 means 30s.
	WriteTimeout time.Duration
	// Clock injects time for latency accounting and decode deadlines;
	// nil means the wall clock.
	Clock Clock
	// Log, when non-nil, receives one-line operational notes.
	Log io.Writer
	// OnLatency, when non-nil, observes every decoded window (the
	// latency-log seam; called from decode workers, must be
	// goroutine-safe).
	OnLatency func(LatencySample)
}

// LatencySample is one decoded window's latency record.
type LatencySample struct {
	Window  int
	Status  string
	Decoder string
	Ns      int64
}

// Stats is a point-in-time snapshot of the service counters, the
// /statz payload. All *Rounds counters are measured in measurement
// rounds (a window accounts for RoundsPerWindow of them).
type Stats struct {
	Decoder         string `json:"decoder"`
	Fingerprint     string `json:"fingerprint"`
	RoundsPerWindow int    `json:"rounds_per_window"`
	Draining        bool   `json:"draining"`

	Streams     int64 `json:"streams"`      // syndrome streams admitted
	StreamsShed int64 `json:"streams_shed"` // requests refused at admission (429)
	StreamsTorn int64 `json:"streams_torn"` // streams ended by a framing/protocol violation or disconnect
	HungClients int64 `json:"hung_clients"` // streams ended by a request read deadline

	Reconnects            int64 `json:"reconnects"`              // cut streams adopted by a resume handshake
	ResumedRounds         int64 `json:"resumed_rounds"`          // rounds carried over a reconnect instead of re-decoded
	DuplicateRoundRejects int64 `json:"duplicate_round_rejects"` // replayed already-committed windows refused

	RoundsReceived  int64 `json:"rounds_received"`  // round frames accepted
	CommittedRounds int64 `json:"committed_rounds"` // rounds whose correction was committed (ok + degraded)
	TimeoutRounds   int64 `json:"timeout_rounds"`   // rounds whose primary decode hit the deadline
	DegradedRounds  int64 `json:"degraded_rounds"`  // rounds committed by the fallback chain
	ShedRounds      int64 `json:"shed_rounds"`      // rounds refused by the full decode queue
	FailedRounds    int64 `json:"failed_rounds"`    // rounds whose whole decoder chain failed
	DroppedRounds   int64 `json:"dropped_rounds"`   // rounds of windows never completed (torn/hung/drained streams)
	DecodeErrors    int64 `json:"decode_errors"`    // windows whose decoder returned an error

	Windows int64 `json:"windows"` // windows decoded (latency samples)
	P50Ns   int64 `json:"p50_ns"`
	P99Ns   int64 `json:"p99_ns"`
	P999Ns  int64 `json:"p999_ns"`
}

type counters struct {
	streams, streamsShed, streamsTorn, hungClients          atomic.Int64
	roundsReceived, committedRounds, timeoutRounds          atomic.Int64
	degradedRounds, shedRounds, failedRounds, droppedRounds atomic.Int64
	decodeErrors                                            atomic.Int64
	reconnects, resumedRounds, dupRoundRejects              atomic.Int64
}

// Server is the online decode service. Build with NewServer, expose
// Handler over any net/http server, Drain on shutdown, then Close.
type Server struct {
	opt      Options            //fpnvet:unguarded immutable after NewServer
	o        *experiment.Online //fpnvet:unguarded immutable after NewServer
	clock    Clock              //fpnvet:unguarded immutable after NewServer
	fp       string             //fpnvet:unguarded immutable after NewServer
	decName  string             //fpnvet:unguarded immutable after NewServer
	fallback []experiment.DecoderKind
	rpw      int //fpnvet:unguarded immutable after NewServer (rounds per window: the circuit's full round span)
	numDet   int
	roundOf  []int // detector index → round

	decTimeout, readTimeout, writeTimeout time.Duration //fpnvet:unguarded immutable after NewServer

	queue   chan *window
	admit   chan struct{}
	hist    Histogram //fpnvet:unguarded Histogram carries its own mutex
	ctrs    counters  //fpnvet:unguarded every field is an atomic
	winPool sync.Pool

	maxSessions int //fpnvet:unguarded immutable after NewServer

	mu        sync.Mutex
	streams   map[*stream]struct{} //fpnvet:guardedby mu
	draining  bool                 //fpnvet:guardedby mu
	sessions  map[string]*session  //fpnvet:guardedby mu
	sessOrder []string             //fpnvet:guardedby mu (stash order, oldest first, for eviction)
	drained   chan struct{}
	drainOnce sync.Once

	workersWG   sync.WaitGroup
	stopWorkers chan struct{}
	closeOnce   sync.Once
}

// NewServer builds the service around an online decode stack and starts
// its decode workers.
func NewServer(opt Options) (*Server, error) {
	if opt.Online == nil {
		return nil, fmt.Errorf("rtd: Options.Online is required")
	}
	c := opt.Online.Circuit()
	if len(c.Detectors) == 0 {
		return nil, fmt.Errorf("rtd: serving circuit has no detectors")
	}
	rpw := 0
	roundOf := make([]int, len(c.Detectors))
	for i, d := range c.Detectors {
		roundOf[i] = d.Round
		if d.Round+1 > rpw {
			rpw = d.Round + 1
		}
	}
	cfg := opt.Online.Config()
	s := &Server{
		opt:          opt,
		o:            opt.Online,
		clock:        opt.Clock,
		fp:           cfg.Fingerprint(),
		decName:      cfg.Decoder.String(),
		fallback:     cfg.Fallback,
		rpw:          rpw,
		numDet:       len(c.Detectors),
		roundOf:      roundOf,
		decTimeout:   opt.DecodeTimeout,
		readTimeout:  opt.ReadTimeout,
		writeTimeout: opt.WriteTimeout,
		streams:      map[*stream]struct{}{},
		sessions:     map[string]*session{},
		drained:      make(chan struct{}),
		stopWorkers:  make(chan struct{}),
	}
	s.maxSessions = opt.MaxSessions
	if s.maxSessions <= 0 {
		s.maxSessions = 64
	}
	if s.clock == nil {
		s.clock = wallClock{}
	}
	if s.decTimeout <= 0 {
		s.decTimeout = cfg.DecodeTimeout
	}
	if s.readTimeout <= 0 {
		s.readTimeout = 30 * time.Second
	}
	if s.writeTimeout <= 0 {
		s.writeTimeout = 30 * time.Second
	}
	maxStreams := opt.MaxStreams
	if maxStreams <= 0 {
		maxStreams = 16
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.admit = make(chan struct{}, maxStreams)
	s.queue = make(chan *window, depth)
	words := (s.numDet + 63) / 64
	s.winPool.New = func() any { return &window{words: make([]uint64, words)} }
	for i := 0; i < workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opt.Log != nil {
		fmt.Fprintf(s.opt.Log, "rtd: "+format+"\n", args...)
	}
}

// Stats snapshots the counters and latency quantiles.
func (s *Server) Stats() Stats {
	return Stats{
		Decoder:               s.decName,
		Fingerprint:           s.fp,
		RoundsPerWindow:       s.rpw,
		Draining:              s.isDraining(),
		Streams:               s.ctrs.streams.Load(),
		StreamsShed:           s.ctrs.streamsShed.Load(),
		StreamsTorn:           s.ctrs.streamsTorn.Load(),
		HungClients:           s.ctrs.hungClients.Load(),
		Reconnects:            s.ctrs.reconnects.Load(),
		ResumedRounds:         s.ctrs.resumedRounds.Load(),
		DuplicateRoundRejects: s.ctrs.dupRoundRejects.Load(),
		RoundsReceived:        s.ctrs.roundsReceived.Load(),
		CommittedRounds:       s.ctrs.committedRounds.Load(),
		TimeoutRounds:         s.ctrs.timeoutRounds.Load(),
		DegradedRounds:        s.ctrs.degradedRounds.Load(),
		ShedRounds:            s.ctrs.shedRounds.Load(),
		FailedRounds:          s.ctrs.failedRounds.Load(),
		DroppedRounds:         s.ctrs.droppedRounds.Load(),
		DecodeErrors:          s.ctrs.decodeErrors.Load(),
		Windows:               s.hist.Count(),
		P50Ns:                 int64(s.hist.Quantile(0.50)),
		P99Ns:                 int64(s.hist.Quantile(0.99)),
		P999Ns:                int64(s.hist.Quantile(0.999)),
	}
}

// Handler routes the service's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/resume", s.handleResume)
	return mux
}

// handleResume answers the idempotent resume query: does the server
// still hold state for a named stream, what window comes next, and
// which results the client missed while the connection was dying. The
// query never mutates the session — only a stream header that adopts it
// does — so a client may ask as many times as its retries need.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	_ = http.NewResponseController(w).SetWriteDeadline(s.clock.Now().Add(s.writeTimeout))
	id := r.URL.Query().Get("stream")
	have, err := strconv.Atoi(r.URL.Query().Get("have"))
	if id == "" || err != nil || have < 0 {
		http.Error(w, "rtd: resume needs stream=<id> and have=<result count>", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.resumeInfo(id, have))
}

func (s *Server) resumeInfo(id string, have int) ResumeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return ResumeInfo{Status: ResumeUnknown}
	}
	info := ResumeInfo{Status: ResumeKnown, NextWindow: len(sess.results)}
	if have < len(sess.results) {
		info.Replay = append([]Result(nil), sess.results[have:]...)
	}
	return info
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	_ = http.NewResponseController(w).SetWriteDeadline(s.clock.Now().Add(s.writeTimeout))
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	_ = http.NewResponseController(w).SetWriteDeadline(s.clock.Now().Add(s.writeTimeout))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops intake and blocks until every active stream has flushed:
// new requests are refused, blocked reads are aborted, windows already
// received in full still decode, and each stream ends with a drained
// trailer. Safe to call more than once and from any goroutine.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	//fpnvet:orderless every active stream gets the same abort; order cannot matter
	for st := range s.streams {
		st.abortRead()
	}
	if len(s.streams) == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	s.mu.Unlock()
	<-s.drained
}

// Close stops the decode workers. Call after Drain; windows still
// queued by undrained streams would be stranded.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stopWorkers) })
	s.workersWG.Wait()
}

func (s *Server) register(st *stream) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.streams[st] = struct{}{}
	return true
}

func (s *Server) unregister(st *stream) {
	s.mu.Lock()
	delete(s.streams, st)
	if s.draining && len(s.streams) == 0 {
		s.drainOnce.Do(func() { close(s.drained) })
	}
	s.mu.Unlock()
}

// window is one round span's assembled syndrome: a detector bitset plus
// its position in the stream. Windows are pooled; words are sized once
// for the serving circuit.
type window struct {
	idx   int
	words []uint64
	st    *stream
}

func (w *window) bit(d int) bool { return w.words[d>>6]>>(uint(d)&63)&1 == 1 }

func (s *Server) newWindow(st *stream, idx int) *window {
	w := s.winPool.Get().(*window)
	for i := range w.words {
		w.words[i] = 0
	}
	w.idx, w.st = idx, st
	return w
}

func (s *Server) releaseWindow(w *window) {
	w.st = nil
	s.winPool.Put(w)
}

// wres is one window's outcome on its way to the stream writer.
type wres struct {
	win    int
	status string
	dec    string
	flips  []int
}

// session is the stashed state of a cut resumable stream: every result
// committed so far, in window order. len(results) is the next window
// the resumed stream must start at.
type session struct {
	results []Result
}

// stream is one live syndrome connection: the reader (handler
// goroutine) assembles and submits windows; the writer goroutine
// reorders finished windows and streams the result frames back.
type stream struct {
	srv        *Server
	w          http.ResponseWriter
	rc         *http.ResponseController
	results    chan wres
	noMore     chan struct{} // closed by the reader after its last submission
	submitted  int           // results the writer must consume; reader-owned until noMore
	writerDone chan struct{}
	written    int  // result frames on the wire; writer-owned until writerDone
	writeErr   bool // the client stopped reading; discard the rest
	aborted    atomic.Bool

	// Resume state. id and start are set while the header is processed,
	// before the writer goroutine exists; keep accumulates every
	// committed result in window order (writer-owned until writerDone)
	// so a cut stream can be stashed as a session.
	id    string
	start int // absolute index of this segment's first window
	keep  []Result
}

// abortRead forces any pending or future request read to fail
// immediately — the drain wake-up. The flag closes the race with a
// reader that is between frames: whichever of the deadline and the next
// SetReadDeadline lands last, the read still aborts.
func (st *stream) abortRead() {
	st.aborted.Store(true)
	_ = st.rc.SetReadDeadline(time.Unix(1, 0))
}

func (st *stream) writeFrame(payload any) error {
	_ = st.rc.SetWriteDeadline(st.srv.clock.Now().Add(st.srv.writeTimeout))
	if err := writeFrame(st.w, payload); err != nil {
		return err
	}
	return st.rc.Flush()
}

// writer drains results until every submitted window has reported,
// writing frames in strictly ascending window order. A write failure
// (slow or gone client) flips the stream into discard mode — results
// keep draining so decode workers never block on a dead stream.
func (st *stream) writer() {
	defer close(st.writerDone)
	pending := map[int]wres{}
	next := st.start
	received := 0
	done := false
	for {
		if done && received == st.submitted {
			return
		}
		var r wres
		if done {
			r = <-st.results
		} else {
			select {
			case r = <-st.results:
			case <-st.noMore:
				done = true
				continue
			}
		}
		received++
		pending[r.win] = r
		for {
			q, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			res := Result{Window: q.win, Status: q.status, Decoder: q.dec, Flips: q.flips}
			if st.id != "" {
				// Keep the committed result even when the wire is dead:
				// the resume handshake replays it instead of re-decoding.
				st.keep = append(st.keep, res)
			}
			if st.writeErr {
				continue
			}
			if err := st.writeFrame(res); err != nil {
				st.writeErr = true
				st.srv.logf("stream write failed at window %d: %v", q.win, err)
				continue
			}
			st.written++
		}
	}
}

// streamEnd classifies how the reader finished.
type streamEnd struct {
	fatal         string // non-empty → written as a Fatal frame
	torn          bool
	hung          bool
	drained       bool
	droppedRounds int // rounds of a window that never completed
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Rejections and the pre-stream handshake share the write timeout;
	// once the stream is up, writeFrame re-arms a fresh deadline per
	// frame and readLine does the same on the read side.
	_ = http.NewResponseController(w).SetWriteDeadline(s.clock.Now().Add(s.writeTimeout))
	if r.Method != http.MethodPost {
		http.Error(w, "rtd: POST required", http.StatusMethodNotAllowed)
		return
	}
	select {
	case s.admit <- struct{}{}:
	default:
		s.ctrs.streamsShed.Add(1)
		http.Error(w, "rtd: stream limit reached, retry later", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.admit }()
	st := &stream{
		srv:        s,
		w:          w,
		rc:         http.NewResponseController(w),
		results:    make(chan wres, 16),
		noMore:     make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	if !s.register(st) {
		http.Error(w, "rtd: draining", http.StatusServiceUnavailable)
		return
	}
	defer s.unregister(st)
	s.ctrs.streams.Add(1)
	// Full duplex lets result frames stream back while rounds are still
	// arriving; without it (non-HTTP/1 transports) they buffer until the
	// handler returns, which only costs latency, never correctness.
	_ = st.rc.EnableFullDuplex()
	w.Header().Set("Content-Type", "application/jsonl")

	br := bufio.NewReaderSize(r.Body, 64*1024)
	end, headerOK := s.readHeader(st, br)
	if headerOK {
		// The writer starts only after the header (and any resume
		// adoption) has fixed st.start and st.keep.
		go st.writer()
		end = s.readRounds(st, br)
		close(st.noMore)
		<-st.writerDone
	}

	if end.torn {
		s.ctrs.streamsTorn.Add(1)
	}
	if end.hung {
		s.ctrs.hungClients.Add(1)
	}
	if end.droppedRounds > 0 {
		s.ctrs.droppedRounds.Add(int64(end.droppedRounds))
	}
	if st.id != "" && headerOK && (end.torn || end.hung || st.writeErr) {
		// The stream died mid-flight: stash what was committed so the
		// client's resume handshake can continue instead of restarting.
		s.stash(st)
	}
	// The reader owns the connection again now that the writer is done:
	// fatal verdict (if any), then the counted trailer. The trailer
	// counts result frames only.
	if end.fatal != "" && !st.writeErr {
		if err := st.writeFrame(Fatal{Err: end.fatal}); err != nil {
			st.writeErr = true
		}
	}
	if !st.writeErr {
		_ = st.writeFrame(Trailer{End: st.written, Drained: end.drained})
	}
}

// readLine reads one request frame under a fresh read deadline.
func (s *Server) readLine(st *stream, br *bufio.Reader) ([]byte, error) {
	_ = st.rc.SetReadDeadline(s.clock.Now().Add(s.readTimeout))
	if st.aborted.Load() {
		_ = st.rc.SetReadDeadline(time.Unix(1, 0))
	}
	return br.ReadBytes('\n')
}

// classifyReadErr sorts a request read failure into drain, hung client
// or torn stream.
func (s *Server) classifyReadErr(err error, partial int) streamEnd {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		if s.isDraining() {
			return streamEnd{drained: true, droppedRounds: partial}
		}
		return streamEnd{hung: true, droppedRounds: partial, fatal: "rtd: hung client: no frame within the read deadline"}
	}
	return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: torn stream: %v", err)}
}

// readHeader consumes and validates the stream header, including the
// resume adoption for named streams. ok=false means the stream is over
// before any round was read; end carries the verdict.
func (s *Server) readHeader(st *stream, br *bufio.Reader) (end streamEnd, ok bool) {
	line, err := s.readLine(st, br)
	if err != nil {
		return s.classifyReadErr(err, 0), false
	}
	rec, err := decodeFrame(line)
	if err != nil {
		return streamEnd{torn: true, fatal: err.Error()}, false
	}
	var hdr Header
	if err := json.Unmarshal(rec, &hdr); err != nil || hdr.Stream != StreamName {
		return streamEnd{torn: true, fatal: fmt.Sprintf("rtd: stream must open with a %q header", StreamName)}, false
	}
	if hdr.Fingerprint != s.fp {
		return streamEnd{fatal: fmt.Sprintf("rtd: fingerprint mismatch: client %s, serving %s (mismatched binaries or flags?)", hdr.Fingerprint, s.fp)}, false
	}
	if hdr.ID == "" {
		if hdr.StartWindow != 0 {
			return streamEnd{torn: true, fatal: "rtd: a start window needs a stream id to resume"}, false
		}
		return streamEnd{}, true
	}
	return s.adopt(st, hdr)
}

// adopt matches a named stream header against the session table. A held
// session resumes if and only if the header's start window is exactly
// the next uncommitted one: lower is a replay of committed rounds
// (refused — they must never commit twice), higher is a gap. An unknown
// id is accepted at its declared start — the restarted-server case,
// where idempotence comes from the client resending exactly the
// uncommitted suffix.
func (s *Server) adopt(st *stream, hdr Header) (streamEnd, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st.id = hdr.ID
	sess, ok := s.sessions[hdr.ID]
	if !ok {
		st.start = hdr.StartWindow
		return streamEnd{}, true
	}
	have := len(sess.results)
	switch {
	case hdr.StartWindow < have:
		s.ctrs.dupRoundRejects.Add(1)
		st.id = "" // refuse adoption; the session stays for a correct retry
		return streamEnd{torn: true, fatal: fmt.Sprintf("rtd: replayed window: stream %q already committed windows up to %d, resume must start there (got %d)", hdr.ID, have, hdr.StartWindow)}, false
	case hdr.StartWindow > have:
		st.id = ""
		return streamEnd{torn: true, fatal: fmt.Sprintf("rtd: window gap: stream %q has %d committed windows, cannot resume at %d", hdr.ID, have, hdr.StartWindow)}, false
	}
	delete(s.sessions, hdr.ID)
	s.dropOrderLocked(hdr.ID)
	st.start, st.keep = have, sess.results
	s.ctrs.reconnects.Add(1)
	s.ctrs.resumedRounds.Add(int64(have) * int64(s.rpw))
	return streamEnd{}, true
}

// stash parks a cut stream's committed results in the session table,
// evicting the oldest session over MaxSessions.
func (s *Server) stash(st *stream) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[st.id]; !ok {
		s.sessOrder = append(s.sessOrder, st.id)
	}
	s.sessions[st.id] = &session{results: st.keep}
	for len(s.sessions) > s.maxSessions && len(s.sessOrder) > 0 {
		evict := s.sessOrder[0]
		s.sessOrder = s.sessOrder[1:]
		delete(s.sessions, evict)
		s.logf("session %q evicted (session table over %d)", evict, s.maxSessions)
	}
}

// dropOrderLocked removes id from the eviction order. Caller holds mu.
func (s *Server) dropOrderLocked(id string) {
	for i, v := range s.sessOrder {
		if v == id {
			s.sessOrder = append(s.sessOrder[:i], s.sessOrder[i+1:]...)
			return
		}
	}
}

// readRounds consumes round frames until the trailer, a violation, a
// hung client or a drain, assembling windows and submitting each
// completed one for decode (or shedding it when the queue is full).
func (s *Server) readRounds(st *stream, br *bufio.Reader) streamEnd {
	var win *window     // window being assembled, nil between windows
	nextWin := st.start // index the next window must carry
	partial := 0        // rounds buffered in win
	rounds := 0         // round frames accepted in total
	for {
		line, err := s.readLine(st, br)
		if err != nil {
			return s.classifyReadErr(err, partial)
		}
		rec, err := decodeFrame(line)
		if err != nil {
			return streamEnd{torn: true, droppedRounds: partial, fatal: err.Error()}
		}
		if tr, ok := probeTrailer(rec); ok {
			if tr.End != rounds {
				return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: trailer claims %d rounds, stream carried %d", tr.End, rounds)}
			}
			if win != nil {
				return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: trailer inside window %d (round %d of %d)", win.idx, partial, s.rpw)}
			}
			return streamEnd{drained: s.isDraining()}
		}
		var rr Round
		if err := json.Unmarshal(rec, &rr); err != nil {
			return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: bad round record: %v", err)}
		}
		if win == nil {
			if rr.Window < nextWin {
				s.ctrs.dupRoundRejects.Add(1)
				return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: replayed round (w=%d already committed, next is w=%d)", rr.Window, nextWin)}
			}
			if rr.Window != nextWin || rr.Round != 0 {
				return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: out-of-order frame (w=%d r=%d, want w=%d r=0)", rr.Window, rr.Round, nextWin)}
			}
			win = s.newWindow(st, nextWin)
			nextWin++
		} else if rr.Window != win.idx || rr.Round != partial {
			return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: out-of-order frame (w=%d r=%d, want w=%d r=%d)", rr.Window, rr.Round, win.idx, partial)}
		}
		prev := -1
		for _, d := range rr.Fired {
			if d <= prev || d >= s.numDet {
				s.releaseWindow(win)
				return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: window %d round %d: bad detector index %d", rr.Window, rr.Round, d)}
			}
			if s.roundOf[d] != rr.Round {
				s.releaseWindow(win)
				return streamEnd{torn: true, droppedRounds: partial, fatal: fmt.Sprintf("rtd: window %d round %d: detector %d belongs to round %d", rr.Window, rr.Round, d, s.roundOf[d])}
			}
			win.words[d>>6] |= 1 << (uint(d) & 63)
			prev = d
		}
		partial++
		rounds++
		s.ctrs.roundsReceived.Add(1)
		if partial == s.rpw {
			s.submit(st, win)
			win, partial = nil, 0
		}
	}
}

// submit hands a completed window to the decode queue, or sheds it with
// an explicit verdict when the queue is full — bounded latency beats
// silent backlog.
func (s *Server) submit(st *stream, win *window) {
	st.submitted++
	select {
	case s.queue <- win:
	default:
		s.ctrs.shedRounds.Add(int64(s.rpw))
		st.results <- wres{win: win.idx, status: StatusShed}
		s.releaseWindow(win)
	}
}

// worker owns one primary decoder handle and decodes queued windows
// until the server closes. A handle abandoned at a deadline stays with
// its stuck goroutine; the worker reacquires, exactly like the sweep
// engine's shard workers.
func (s *Server) worker() {
	defer s.workersWG.Done()
	pd := s.o.Acquire()
	defer func() { pd.Release() }()
	for {
		select {
		case <-s.stopWorkers:
			return
		case win := <-s.queue:
			res := s.decodeWindow(&pd, win)
			st := win.st
			s.releaseWindow(win)
			st.results <- res
		}
	}
}

// attemptOut is one decode attempt's verdict.
type attemptOut struct {
	flips    []int
	err      error
	panicked any
	hasPanic bool
}

// attempt runs one decode of win on pd, under the decode deadline when
// one is set. timedOut means the attempt was abandoned: pd now belongs
// to the stuck goroutine and must not be reused or released.
func (s *Server) attempt(pd *experiment.PooledDecoder, win *window) (out attemptOut, timedOut bool) {
	run := func() (o attemptOut) {
		defer func() {
			if r := recover(); r != nil {
				o = attemptOut{hasPanic: true, panicked: r}
			}
		}()
		corr, err := pd.Decode(win.bit)
		if err != nil {
			o.err = err
			return o
		}
		// corr aliases the scratch arena; extract the flips before the
		// handle decodes anything else.
		for i, c := range corr {
			if c {
				o.flips = append(o.flips, i)
			}
		}
		return o
	}
	if s.decTimeout <= 0 {
		return run(), false
	}
	ch := make(chan attemptOut, 1) // buffered: an abandoned attempt's send never blocks
	go func() { ch <- run() }()
	timer := s.clock.After(s.decTimeout)
	select {
	case out = <-ch:
	case <-timer:
		select { // photo finish: a result that just landed beats the deadline
		case out = <-ch:
		default:
			return attemptOut{}, true
		}
	}
	return out, false
}

// decodeWindow runs the full degradation ladder for one window —
// primary under deadline, then the fallback chain — and accounts for
// every step. pd is replaced in place when the primary handle is
// abandoned.
func (s *Server) decodeWindow(pd **experiment.PooledDecoder, win *window) wres {
	rpw := int64(s.rpw)
	start := s.clock.Now()
	finish := func(status, dec string, flips []int) wres {
		lat := s.clock.Now().Sub(start)
		s.hist.Record(lat)
		if s.opt.OnLatency != nil {
			s.opt.OnLatency(LatencySample{Window: win.idx, Status: status, Decoder: dec, Ns: int64(lat)})
		}
		return wres{win: win.idx, status: status, dec: dec, flips: flips}
	}
	out, timedOut := s.attempt(*pd, win)
	if timedOut {
		*pd = s.o.Acquire()
		s.ctrs.timeoutRounds.Add(rpw)
		s.logf("window %d: primary decode deadline %v exceeded, walking fallback chain", win.idx, s.decTimeout)
	}
	if !timedOut && !out.hasPanic {
		if out.err != nil {
			s.ctrs.decodeErrors.Add(1)
			return finish(StatusError, s.decName, nil)
		}
		s.ctrs.committedRounds.Add(rpw)
		return finish(StatusOK, s.decName, out.flips)
	}
	if out.hasPanic {
		s.logf("window %d: primary decoder panicked: %v", win.idx, out.panicked)
	}
	for _, k := range s.fallback {
		fd := s.o.AcquireFallback(k)
		if fd == nil {
			continue
		}
		fout, fTimedOut := s.attempt(fd, win)
		if !fTimedOut {
			fd.Release()
		}
		if fTimedOut || fout.hasPanic {
			continue
		}
		if fout.err != nil {
			s.ctrs.decodeErrors.Add(1)
			return finish(StatusError, k.String(), nil)
		}
		s.ctrs.degradedRounds.Add(rpw)
		s.ctrs.committedRounds.Add(rpw)
		return finish(StatusDegraded, k.String(), fout.flips)
	}
	s.ctrs.failedRounds.Add(rpw)
	if timedOut {
		return finish(StatusDeadline, s.decName, nil)
	}
	return finish(StatusFailed, s.decName, nil)
}
