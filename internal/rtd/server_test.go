// Integration tests for the online decode service: bit-identity of
// committed corrections against the offline decode stack, deterministic
// shed/timeout/degraded accounting, drain semantics, and the admission
// and hung-client defenses. Everything runs over a real HTTP loopback
// (httptest) so the read/write deadline plumbing is exercised for real.
package rtd_test

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/experiment"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/rtd"
	"github.com/fpn/flagproxy/internal/sim"
	"github.com/fpn/flagproxy/internal/surface"
)

var testArch = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

func testConfig(t testing.TB) (*css.Code, experiment.Config) {
	t.Helper()
	l, err := surface.Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	code := l.Code
	return code, experiment.Config{
		Code: code, Arch: testArch, Basis: css.Z, P: 5e-3, Seed: 11,
		Decoder: experiment.FlaggedMWPM,
	}
}

func newOnline(t testing.TB, mutate func(*experiment.Config)) *experiment.Online {
	t.Helper()
	code, cfg := testConfig(t)
	if mutate != nil {
		mutate(&cfg)
	}
	pl, err := experiment.NewPipeline(code, testArch)
	if err != nil {
		t.Fatal(err)
	}
	o, err := pl.NewOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// sampleWindows samples n shots of the serving circuit and converts them
// to per-window round frames plus the per-shot observable bits.
func sampleWindows(t testing.TB, o *experiment.Online, n int) ([][][]int, *sim.Result) {
	t.Helper()
	c := o.Circuit()
	blocks := (n + 63) / 64
	smp := sim.NewBlockSampler(c, blocks)
	if err := smp.Validate(0, n); err != nil {
		t.Fatal(err)
	}
	res := smp.Run(0, n, o.Config().Seed)
	return rtd.BuildWindows(c, res, 0, n), res
}

// offlineFlips decodes shot s of res on pd — the exact offline scalar
// path — and returns the committed flips.
func offlineFlips(t testing.TB, pd *experiment.PooledDecoder, res *sim.Result, s int) []int {
	t.Helper()
	corr, err := pd.Decode(func(d int) bool { return res.DetectorBit(d, s) })
	if err != nil {
		t.Fatal(err)
	}
	var flips []int
	for i, c := range corr {
		if c {
			flips = append(flips, i)
		}
	}
	return flips
}

func equalFlips(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func startServer(t testing.TB, opt rtd.Options) (*rtd.Server, *httptest.Server) {
	t.Helper()
	s, err := rtd.NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// The service's committed corrections must be bit-identical to what the
// offline decode stack produces for the same syndromes — the whole point
// of serving through the sweep engine's tail.
func TestOnlineStreamBitIdentityWithOffline(t *testing.T) {
	o := newOnline(t, nil)
	const shots = 64
	wins, res := sampleWindows(t, o, shots)
	s, ts := startServer(t, rtd.Options{Online: o})

	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.Stream(context.Background(), o.Config().Fingerprint(), wins)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fatal != "" || out.Drained {
		t.Fatalf("healthy stream ended badly: fatal=%q drained=%v", out.Fatal, out.Drained)
	}
	if len(out.Results) != shots {
		t.Fatalf("got %d results, want %d", len(out.Results), shots)
	}

	pd := o.Acquire()
	defer pd.Release()
	errs := 0
	for i, r := range out.Results {
		if r.Status != rtd.StatusOK || !r.Committed() {
			t.Fatalf("window %d: status %q, want ok", i, r.Status)
		}
		want := offlineFlips(t, pd, res, i)
		if !equalFlips(r.Flips, want) {
			t.Fatalf("window %d: online flips %v != offline flips %v", i, r.Flips, want)
		}
		// Residual logical error: committed correction vs true observables.
		flipped := map[int]bool{}
		for _, ob := range r.Flips {
			flipped[ob] = true
		}
		for ob := 0; ob < len(o.Circuit().Observables); ob++ {
			if res.ObservableBit(ob, i) != flipped[ob] {
				errs++
				break
			}
		}
	}
	if errs == 0 {
		t.Log("note: zero residual logical errors in this sample (fine at d=3, p=5e-3, 64 shots)")
	}

	st := s.Stats()
	rpw := int64(st.RoundsPerWindow)
	if st.RoundsReceived != shots*rpw || st.CommittedRounds != shots*rpw {
		t.Fatalf("rounds accounting: received %d committed %d, want %d each", st.RoundsReceived, st.CommittedRounds, shots*rpw)
	}
	if st.TimeoutRounds+st.DegradedRounds+st.ShedRounds+st.FailedRounds+st.DroppedRounds+st.DecodeErrors != 0 {
		t.Fatalf("healthy stream tripped degradation counters: %+v", st)
	}
	if st.Windows != shots || st.StreamsTorn != 0 || st.HungClients != 0 || st.Streams != 1 {
		t.Fatalf("stream accounting off: %+v", st)
	}
	if st.P50Ns <= 0 || st.P99Ns < st.P50Ns || st.P999Ns < st.P99Ns {
		t.Fatalf("latency quantiles not monotone positive: p50=%d p99=%d p999=%d", st.P50Ns, st.P99Ns, st.P999Ns)
	}
}

// gateDecoder blocks every decode until released, counting entries.
type gateDecoder struct {
	inner   experiment.Decoder
	release chan struct{}
	calls   atomic.Int64
}

func (g *gateDecoder) Decode(bit func(int) bool) ([]bool, error) {
	g.calls.Add(1)
	<-g.release
	return g.inner.Decode(bit)
}

// With one worker wedged on window 0 and a queue of depth 2, windows 1
// and 2 queue and windows 3..5 are shed — deterministically, because the
// client paces: it sends window 0, waits for the worker to enter the
// decode, then sends the rest.
func TestQueueFullShedsDeterministically(t *testing.T) {
	gate := &gateDecoder{release: make(chan struct{})}
	o := newOnline(t, func(cfg *experiment.Config) {
		cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
			if k == experiment.FlaggedMWPM {
				gate.inner = dec
				return gate
			}
			return dec
		}
	})
	const shots = 6
	wins, _ := sampleWindows(t, o, shots)
	s, ts := startServer(t, rtd.Options{Online: o, Workers: 1, QueueDepth: 2})

	fp := o.Config().Fingerprint()
	frames, err := rtd.EncodeWindows(fp, wins)
	if err != nil {
		t.Fatal(err)
	}
	rpw := int64(s.Stats().RoundsPerWindow)
	// Frame layout: [0] header, then rpw frames per window, then trailer.
	win0End := 1 + int(rpw)

	pr, pw := io.Pipe()
	go func() {
		defer pw.Close()
		if _, err := pw.Write(rtd.JoinFrames(frames[:win0End])); err != nil {
			return
		}
		// Wait for the worker to wedge on window 0 so the queue is empty.
		for gate.calls.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		if _, err := pw.Write(rtd.JoinFrames(frames[win0End:])); err != nil {
			return
		}
		// Windows 1,2 now fill the queue and 3,4,5 shed as the reader
		// consumes them; release the gate once the sheds are on the books.
		for s.Stats().ShedRounds < 3*rpw {
			time.Sleep(time.Millisecond)
		}
		close(gate.release)
	}()

	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.StreamBody(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Fatal != "" {
		t.Fatalf("unexpected fatal: %q", out.Fatal)
	}
	if len(out.Results) != shots {
		t.Fatalf("got %d results, want %d", len(out.Results), shots)
	}
	for i, r := range out.Results {
		want := rtd.StatusOK
		if i >= 3 {
			want = rtd.StatusShed
		}
		if r.Status != want {
			t.Fatalf("window %d: status %q, want %q", i, r.Status, want)
		}
	}
	st := s.Stats()
	if st.ShedRounds != 3*rpw || st.CommittedRounds != 3*rpw || st.RoundsReceived != 6*rpw {
		t.Fatalf("shed accounting: %+v", st)
	}
}

// hungForever wedges every decode until the test ends: the decoder-stall
// fault. Under DecodeTimeout every window must degrade to the fallback.
type hungForever struct {
	release chan struct{}
}

func (h *hungForever) Decode(func(int) bool) ([]bool, error) {
	<-h.release
	return nil, nil
}

func TestDecodeDeadlineDegradesToFallbackBitIdentical(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	o := newOnline(t, func(cfg *experiment.Config) {
		cfg.Fallback = []experiment.DecoderKind{experiment.PlainMWPM}
		cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
			if k == experiment.FlaggedMWPM {
				return &hungForever{release: release}
			}
			return dec
		}
	})
	const shots = 4
	wins, res := sampleWindows(t, o, shots)
	s, ts := startServer(t, rtd.Options{Online: o, Workers: 1, DecodeTimeout: 30 * time.Millisecond})

	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.Stream(context.Background(), o.Config().Fingerprint(), wins)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != shots {
		t.Fatalf("got %d results, want %d", len(out.Results), shots)
	}
	fd := o.AcquireFallback(experiment.PlainMWPM)
	if fd == nil {
		t.Fatal("plain-mwpm fallback pool not constructible")
	}
	defer fd.Release()
	for i, r := range out.Results {
		if r.Status != rtd.StatusDegraded || !r.Committed() {
			t.Fatalf("window %d: status %q, want degraded", i, r.Status)
		}
		if r.Decoder != experiment.PlainMWPM.String() {
			t.Fatalf("window %d: decoder %q, want %q", i, r.Decoder, experiment.PlainMWPM)
		}
		want := offlineFlips(t, fd, res, i)
		if !equalFlips(r.Flips, want) {
			t.Fatalf("window %d: degraded flips %v != offline fallback flips %v", i, r.Flips, want)
		}
	}
	st := s.Stats()
	rpw := int64(st.RoundsPerWindow)
	if st.TimeoutRounds != shots*rpw || st.DegradedRounds != shots*rpw || st.CommittedRounds != shots*rpw {
		t.Fatalf("degradation accounting: %+v", st)
	}
	if st.FailedRounds != 0 || st.ShedRounds != 0 {
		t.Fatalf("unexpected failures: %+v", st)
	}
}

// A chain with no constructible fallback must report the deadline verdict
// and count the rounds as failed, never silently committing nothing.
func TestDeadlineWithNoFallbackFails(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	o := newOnline(t, func(cfg *experiment.Config) {
		cfg.WrapDecoder = func(k experiment.DecoderKind, dec experiment.Decoder) experiment.Decoder {
			return &hungForever{release: release}
		}
	})
	wins, _ := sampleWindows(t, o, 1)
	s, ts := startServer(t, rtd.Options{Online: o, Workers: 1, DecodeTimeout: 20 * time.Millisecond})

	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.Stream(context.Background(), o.Config().Fingerprint(), wins)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Status != rtd.StatusDeadline {
		t.Fatalf("want one deadline result, got %+v", out.Results)
	}
	st := s.Stats()
	rpw := int64(st.RoundsPerWindow)
	if st.TimeoutRounds != rpw || st.FailedRounds != rpw || st.CommittedRounds != 0 {
		t.Fatalf("deadline accounting: %+v", st)
	}
}

// Drain mid-stream: the window already received in full is decoded and
// flushed, the partial window's rounds are counted dropped, and the
// stream closes with a drained trailer — zero committed rounds lost.
func TestDrainFlushesInFlightWindows(t *testing.T) {
	o := newOnline(t, nil)
	wins, _ := sampleWindows(t, o, 2)
	s, ts := startServer(t, rtd.Options{Online: o})

	fp := o.Config().Fingerprint()
	frames, err := rtd.EncodeWindows(fp, wins)
	if err != nil {
		t.Fatal(err)
	}
	rpw := s.Stats().RoundsPerWindow
	// Send window 0 in full plus one round of window 1, then stall.
	head := rtd.JoinFrames(frames[:1+rpw+1])

	pr, pw := io.Pipe()
	outc := make(chan *rtd.StreamOutcome, 1)
	errc := make(chan error, 1)
	go func() {
		cl := &rtd.Client{URL: ts.URL}
		out, err := cl.StreamBody(context.Background(), pr)
		outc <- out
		errc <- err
	}()
	if _, err := pw.Write(head); err != nil {
		t.Fatal(err)
	}
	// Wait until window 0 is decoded and the partial round is on the books.
	for {
		st := s.Stats()
		if st.Windows >= 1 && st.RoundsReceived >= int64(rpw+1) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	out, err := <-outc, <-errc
	if err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if !out.Drained {
		t.Fatal("response trailer should carry the drained mark")
	}
	if len(out.Results) != 1 || out.Results[0].Status != rtd.StatusOK {
		t.Fatalf("window 0 should have been flushed: %+v", out.Results)
	}
	st := s.Stats()
	if !st.Draining {
		t.Fatal("stats should report draining")
	}
	if st.CommittedRounds != int64(rpw) || st.DroppedRounds != 1 {
		t.Fatalf("drain accounting: committed %d dropped %d, want %d and 1", st.CommittedRounds, st.DroppedRounds, rpw)
	}

	// Draining servers refuse new streams with 503.
	cl := &rtd.Client{URL: ts.URL}
	_, err = cl.Stream(context.Background(), fp, nil)
	var he *rtd.HTTPError
	if !errors.As(err, &he) || he.Code != 503 {
		t.Fatalf("post-drain stream: got %v, want HTTP 503", err)
	}
}

// A stream whose fingerprint does not match the serving config gets a
// fatal verdict naming both — mismatched binaries must not decode.
func TestFingerprintMismatchIsFatal(t *testing.T) {
	o := newOnline(t, nil)
	_, ts := startServer(t, rtd.Options{Online: o})
	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.Stream(context.Background(), "bogus-fp", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Fatal, "fingerprint mismatch") {
		t.Fatalf("fatal = %q, want fingerprint mismatch", out.Fatal)
	}
}

// Out-of-order round frames tear the stream with an explicit verdict.
func TestOutOfOrderRoundIsTorn(t *testing.T) {
	o := newOnline(t, nil)
	wins, _ := sampleWindows(t, o, 2)
	s, ts := startServer(t, rtd.Options{Online: o})
	fp := o.Config().Fingerprint()
	frames, err := rtd.EncodeWindows(fp, wins)
	if err != nil {
		t.Fatal(err)
	}
	rpw := s.Stats().RoundsPerWindow
	// Swap the first rounds of windows 0 and 1.
	swapped := append([][]byte{}, frames...)
	swapped[1], swapped[1+rpw] = swapped[1+rpw], swapped[1]
	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.StreamBody(context.Background(), strings.NewReader(string(rtd.JoinFrames(swapped))))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Fatal, "out-of-order frame") {
		t.Fatalf("fatal = %q, want out-of-order verdict", out.Fatal)
	}
	if st := s.Stats(); st.StreamsTorn != 1 {
		t.Fatalf("StreamsTorn = %d, want 1", st.StreamsTorn)
	}
}

// Admission control: with one stream slot held open, the next request is
// refused immediately with 429 and counted.
func TestAdmissionControlSheds(t *testing.T) {
	o := newOnline(t, nil)
	s, ts := startServer(t, rtd.Options{Online: o, MaxStreams: 1})
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cl := &rtd.Client{URL: ts.URL}
		_, _ = cl.StreamBody(context.Background(), pr)
	}()
	// Wait for the first stream to occupy the slot.
	for s.Stats().Streams == 0 {
		time.Sleep(time.Millisecond)
	}
	cl := &rtd.Client{URL: ts.URL}
	_, err := cl.Stream(context.Background(), o.Config().Fingerprint(), nil)
	var he *rtd.HTTPError
	if !errors.As(err, &he) || he.Code != 429 {
		t.Fatalf("second stream: got %v, want HTTP 429", err)
	}
	if st := s.Stats(); st.StreamsShed != 1 {
		t.Fatalf("StreamsShed = %d, want 1", st.StreamsShed)
	}
	pw.Close()
	<-done
}

// A client that goes silent mid-stream trips the read deadline: its
// completed windows are still flushed, the stream is closed with a hung
// verdict, and the slot is reclaimed.
func TestHungClientReclaimed(t *testing.T) {
	o := newOnline(t, nil)
	wins, _ := sampleWindows(t, o, 1)
	s, ts := startServer(t, rtd.Options{Online: o, ReadTimeout: 100 * time.Millisecond})
	fp := o.Config().Fingerprint()
	frames, err := rtd.EncodeWindows(fp, wins)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	go func() {
		// Header and the full window, but never the trailer.
		_, _ = pw.Write(rtd.JoinFrames(frames[:len(frames)-1]))
		// Keep the pipe open: silence, not EOF.
	}()
	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.StreamBody(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if !strings.Contains(out.Fatal, "hung client") {
		t.Fatalf("fatal = %q, want hung-client verdict", out.Fatal)
	}
	if len(out.Results) != 1 || out.Results[0].Status != rtd.StatusOK {
		t.Fatalf("completed window should still be flushed: %+v", out.Results)
	}
	st := s.Stats()
	if st.HungClients != 1 || st.StreamsTorn != 0 {
		t.Fatalf("hung accounting: %+v", st)
	}
}
