// The resume handshake, enforced at three layers: the client rides
// deterministic connection cuts to a complete, offline-identical result
// set; the server's session table adopts exactly-next resumes and
// refuses replays and gaps; and the salvage path reassembles torn
// responses without trusting a byte past the first damaged frame.
package rtd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/fpn/flagproxy/internal/chaos"
	"github.com/fpn/flagproxy/internal/rtd"
)

// statzStats fetches and decodes /statz — the resilience counters must
// be visible to operators, not just to in-process callers.
func statzStats(t *testing.T, url string) rtd.Stats {
	t.Helper()
	resp, err := http.Get(url + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st rtd.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// rawStream POSTs a body to /v1/stream and parses the framed response
// by hand — resumed segments legitimately answer with windows past 0,
// which the client's own from-zero validation would refuse.
func rawStream(t *testing.T, url string, body []byte) (results []rtd.Result, fatal string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/stream", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	sc := json.NewDecoder(resp.Body)
	for {
		var line struct {
			Rec json.RawMessage `json:"rec"`
		}
		if err := sc.Decode(&line); err != nil {
			break
		}
		var probe struct {
			Window *int    `json:"w"`
			Status string  `json:"st"`
			Err    string  `json:"err"`
			End    *int    `json:"end"`
			X      float64 `json:"-"`
		}
		if err := json.Unmarshal(line.Rec, &probe); err != nil {
			t.Fatalf("unparseable response record %s: %v", line.Rec, err)
		}
		switch {
		case probe.Err != "":
			fatal = probe.Err
		case probe.End != nil:
			return results, fatal
		case probe.Window != nil && probe.Status != "":
			var r rtd.Result
			if err := json.Unmarshal(line.Rec, &r); err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
	}
	t.Fatal("response ended without a trailer")
	return nil, ""
}

// TestStreamResumableRidesCutsBitIdentical is the acceptance drill: a
// resumable stream whose first two POSTs are reset mid-body by a
// deterministic chaos plan must still assemble the complete result set,
// and every committed correction must match the offline decode of the
// same syndromes.
func TestStreamResumableRidesCutsBitIdentical(t *testing.T) {
	o := newOnline(t, nil)
	const shots = 32
	wins, res := sampleWindows(t, o, shots)
	s, ts := startServer(t, rtd.Options{Online: o})

	fault := &chaos.NetFault{Plan: chaos.Plan{Seed: 17, Name: "rtd-cut"}, Mode: chaos.NetReset, Times: 2, Path: "/v1/stream"}
	cl := &rtd.Client{URL: ts.URL, HTTP: &http.Client{Transport: fault}}
	out, err := cl.StreamResumable(context.Background(), o.Config().Fingerprint(), "drill-17", wins, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fault.Resets.Load() != 2 {
		t.Fatalf("plan cut %d streams, want 2", fault.Resets.Load())
	}
	if out.Reconnects != 2 {
		t.Errorf("outcome reports %d reconnects, want 2", out.Reconnects)
	}
	if out.Fatal != "" || out.Drained {
		t.Fatalf("resumed stream ended badly: fatal=%q drained=%v", out.Fatal, out.Drained)
	}
	if len(out.Results) != shots {
		t.Fatalf("assembled %d results, want %d", len(out.Results), shots)
	}
	pd := o.Acquire()
	defer pd.Release()
	for i, r := range out.Results {
		if r.Window != i || r.Status != rtd.StatusOK {
			t.Fatalf("result %d = window %d status %q, want in-order ok", i, r.Window, r.Status)
		}
		if want := offlineFlips(t, pd, res, i); !equalFlips(r.Flips, want) {
			t.Fatalf("window %d: resumed flips %v != offline flips %v", i, r.Flips, want)
		}
	}
	st := s.Stats()
	if st.DuplicateRoundRejects != 0 {
		t.Errorf("a correct resume tripped %d duplicate-round rejects", st.DuplicateRoundRejects)
	}
	if st.Reconnects == 0 && st.ResumedRounds != 0 {
		t.Errorf("resumed rounds %d without a counted reconnect", st.ResumedRounds)
	}
	// Operators see the same counters on /statz.
	if ext := statzStats(t, ts.URL); ext.Reconnects != st.Reconnects || ext.ResumedRounds != st.ResumedRounds || ext.DuplicateRoundRejects != st.DuplicateRoundRejects {
		t.Errorf("/statz resilience counters %+v diverge from Stats() %+v", ext, st)
	}
}

// TestResumeHandshakeAdoptionAndRejection drives the session table by
// hand: a cut named stream is queryable, a replayed start is refused
// (and the session survives for a correct retry), a gapped start is
// refused, and the exactly-next start adopts the session, replays the
// missed results and finishes bit-identically.
func TestResumeHandshakeAdoptionAndRejection(t *testing.T) {
	o := newOnline(t, nil)
	const shots = 8
	wins, res := sampleWindows(t, o, shots)
	s, ts := startServer(t, rtd.Options{Online: o})
	fp := o.Config().Fingerprint()
	cl := &rtd.Client{URL: ts.URL}
	ctx := context.Background()
	rpw := s.Stats().RoundsPerWindow

	// Send the header, three full windows and one dangling round, then
	// cut the connection: the server commits windows 0..2 and stashes
	// them under the stream id.
	frames, err := rtd.EncodeWindowsAt(fp, "hand-drill", 0, wins)
	if err != nil {
		t.Fatal(err)
	}
	keep := 1 + 3*rpw + 1 // header + three windows + a torn round
	out, err := cl.StreamBody(ctx, chaos.DisconnectBody(frames, keep))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 || !strings.Contains(out.Fatal, "torn stream") {
		t.Fatalf("cut segment = %d results, fatal %q; want 3 committed windows and a torn verdict", len(out.Results), out.Fatal)
	}

	// The handshake is idempotent and read-only: ask twice, with
	// different high-water marks.
	info, err := cl.Resume(ctx, "hand-drill", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != rtd.ResumeKnown || info.NextWindow != 3 || len(info.Replay) != 3 {
		t.Fatalf("resume from 0 = %+v, want next 3 with 3 replayed results", info)
	}
	info, err = cl.Resume(ctx, "hand-drill", 3)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != rtd.ResumeKnown || info.NextWindow != 3 || len(info.Replay) != 0 {
		t.Fatalf("resume from 3 = %+v, want next 3 with nothing to replay", info)
	}

	// Replayed start: window 2 is already committed; it must never
	// commit twice, and the session must survive the refused attempt.
	replay, err := rtd.EncodeWindowsAt(fp, "hand-drill", 2, wins[2:])
	if err != nil {
		t.Fatal(err)
	}
	out, err = cl.StreamBody(ctx, bytes.NewReader(rtd.JoinFrames(replay)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 || !strings.Contains(out.Fatal, "replayed window") {
		t.Fatalf("replayed resume = %d results, fatal %q; want refusal", len(out.Results), out.Fatal)
	}
	if got := s.Stats().DuplicateRoundRejects; got != 1 {
		t.Errorf("DuplicateRoundRejects = %d, want 1", got)
	}
	// Gapped start: window 4 would skip the uncommitted window 3.
	gap, err := rtd.EncodeWindowsAt(fp, "hand-drill", 4, wins[4:])
	if err != nil {
		t.Fatal(err)
	}
	out, err = cl.StreamBody(ctx, bytes.NewReader(rtd.JoinFrames(gap)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Fatal, "window gap") {
		t.Fatalf("gapped resume fatal = %q, want a window-gap refusal", out.Fatal)
	}
	if info, err = cl.Resume(ctx, "hand-drill", 3); err != nil || info.Status != rtd.ResumeKnown {
		t.Fatalf("session did not survive refused resumes: %+v err=%v", info, err)
	}

	// The exactly-next start adopts: the suffix decodes, the assembled
	// set is complete and offline-identical, and the retired session is
	// gone from the table.
	resume, err := rtd.EncodeWindowsAt(fp, "hand-drill", 3, wins[3:])
	if err != nil {
		t.Fatal(err)
	}
	results, fatal := rawStream(t, ts.URL, rtd.JoinFrames(resume))
	if fatal != "" || len(results) != shots-3 {
		t.Fatalf("resumed suffix = %d results, fatal %q; want %d clean results", len(results), fatal, shots-3)
	}
	pd := o.Acquire()
	defer pd.Release()
	for i, r := range results {
		w := 3 + i
		if r.Window != w {
			t.Fatalf("resumed result %d carries window %d, want %d", i, r.Window, w)
		}
		if want := offlineFlips(t, pd, res, w); !equalFlips(r.Flips, want) {
			t.Fatalf("window %d: resumed flips %v != offline flips %v", w, r.Flips, want)
		}
	}
	st := s.Stats()
	if st.Reconnects != 1 || st.ResumedRounds != int64(3*rpw) {
		t.Errorf("Reconnects=%d ResumedRounds=%d, want 1 and %d", st.Reconnects, st.ResumedRounds, 3*rpw)
	}
	if info, err = cl.Resume(ctx, "hand-drill", 0); err != nil || info.Status != rtd.ResumeUnknown {
		t.Errorf("session survived a healthy finish: %+v err=%v", info, err)
	}
}

// TestReplayedRoundMidStreamRefused: the round-level fence — a resumed
// segment that opens correctly but then carries an already-committed
// window is torn on the spot and counted.
func TestReplayedRoundMidStreamRefused(t *testing.T) {
	o := newOnline(t, nil)
	wins, _ := sampleWindows(t, o, 4)
	s, ts := startServer(t, rtd.Options{Online: o})
	fp := o.Config().Fingerprint()
	cl := &rtd.Client{URL: ts.URL}
	ctx := context.Background()
	rpw := s.Stats().RoundsPerWindow

	// Stash two committed windows under the id.
	frames, err := rtd.EncodeWindowsAt(fp, "round-replay", 0, wins)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StreamBody(ctx, chaos.DisconnectBody(frames, 1+2*rpw+1)); err != nil {
		t.Fatal(err)
	}
	// Resume at the correct start window 2, but stamp the first round
	// frame with the committed window 1.
	hdr, err := rtd.EncodeFrame(rtd.Header{Stream: rtd.StreamName, Fingerprint: fp, ID: "round-replay", StartWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := rtd.EncodeFrame(rtd.Round{Window: 1, Round: 0, Fired: nil})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.StreamBody(ctx, bytes.NewReader(rtd.JoinFrames([][]byte{hdr, stale})))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Fatal, "replayed round") {
		t.Fatalf("mid-stream replay fatal = %q, want a replayed-round refusal", out.Fatal)
	}
	if got := s.Stats().DuplicateRoundRejects; got != 1 {
		t.Errorf("DuplicateRoundRejects = %d, want 1", got)
	}
}

// TestReplayedRoundRejectedAtEveryStrictPrefix: the byte-level proof
// for the resume handshake — a resumed segment carrying an
// already-committed round must be refused whole, and every strict byte
// prefix of it must leave the session exactly where it was: nothing
// committed twice, nothing lost, next-expected window unmoved.
func TestReplayedRoundRejectedAtEveryStrictPrefix(t *testing.T) {
	o := newOnline(t, nil)
	wins, _ := sampleWindows(t, o, 4)
	s, ts := startServer(t, rtd.Options{Online: o})
	fp := o.Config().Fingerprint()
	cl := &rtd.Client{URL: ts.URL}
	ctx := context.Background()
	rpw := s.Stats().RoundsPerWindow

	frames, err := rtd.EncodeWindowsAt(fp, "prefix-drill", 0, wins)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StreamBody(ctx, chaos.DisconnectBody(frames, 1+2*rpw+1)); err != nil {
		t.Fatal(err)
	}
	hdr, err := rtd.EncodeFrame(rtd.Header{Stream: rtd.StreamName, Fingerprint: fp, ID: "prefix-drill", StartWindow: 2})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := rtd.EncodeFrame(rtd.Round{Window: 1, Round: 0})
	if err != nil {
		t.Fatal(err)
	}
	body := rtd.JoinFrames([][]byte{hdr, stale})
	for cut := 0; cut < len(body); cut++ {
		if results, _ := rawStream(t, ts.URL, body[:cut]); len(results) != 0 {
			t.Fatalf("prefix of %d/%d bytes committed %d results", cut, len(body), len(results))
		}
		info, err := cl.Resume(ctx, "prefix-drill", 0)
		if err != nil {
			t.Fatal(err)
		}
		if info.Status != rtd.ResumeKnown || info.NextWindow != 2 || len(info.Replay) != 2 {
			t.Fatalf("after a %d/%d-byte prefix the session moved: %+v, want next window 2 with 2 replayable results", cut, len(body), info)
		}
	}
	if got := s.Stats().DuplicateRoundRejects; got != 0 {
		t.Fatalf("a strict prefix (which never contains the whole stale round) tripped %d duplicate-round rejects", got)
	}
	// The whole body carries the complete replayed round: refused,
	// counted, and the session still doesn't move.
	results, fatal := rawStream(t, ts.URL, body)
	if len(results) != 0 || !strings.Contains(fatal, "replayed round") {
		t.Fatalf("whole replayed-round segment = %d results, fatal %q", len(results), fatal)
	}
	if got := s.Stats().DuplicateRoundRejects; got != 1 {
		t.Errorf("DuplicateRoundRejects = %d, want 1", got)
	}
	if info, err := cl.Resume(ctx, "prefix-drill", 0); err != nil || info.NextWindow != 2 {
		t.Errorf("after the whole replayed segment the session moved: %+v err=%v", info, err)
	}
}

// TestResumeSessionEviction: the session table is bounded; the oldest
// cut stream is evicted first and an unknown id answers unknown rather
// than hallucinating state.
func TestResumeSessionEviction(t *testing.T) {
	o := newOnline(t, nil)
	wins, _ := sampleWindows(t, o, 4)
	s, ts := startServer(t, rtd.Options{Online: o, MaxSessions: 1})
	fp := o.Config().Fingerprint()
	cl := &rtd.Client{URL: ts.URL}
	ctx := context.Background()
	rpw := s.Stats().RoundsPerWindow

	for _, id := range []string{"oldest", "newest"} {
		frames, err := rtd.EncodeWindowsAt(fp, id, 0, wins)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.StreamBody(ctx, chaos.DisconnectBody(frames, 1+rpw+1)); err != nil {
			t.Fatal(err)
		}
	}
	if info, err := cl.Resume(ctx, "oldest", 0); err != nil || info.Status != rtd.ResumeUnknown {
		t.Errorf("evicted session = %+v err=%v, want unknown", info, err)
	}
	if info, err := cl.Resume(ctx, "newest", 0); err != nil || info.Status != rtd.ResumeKnown || info.NextWindow != 1 {
		t.Errorf("retained session = %+v err=%v, want known at window 1", info, err)
	}
	if info, err := cl.Resume(ctx, "never-existed", 0); err != nil || info.Status != rtd.ResumeUnknown {
		t.Errorf("unknown id = %+v err=%v, want unknown", info, err)
	}
}

// fakeResumeServer pins the client's salvage path against a scripted
// peer: a response torn after two valid result frames must yield
// exactly those two results, the handshake replay must be adopted, and
// the second POST must carry the stream id and the exact next window.
func TestClientSalvageAndSuffixResend(t *testing.T) {
	const shots = 6
	mkResult := func(w int) rtd.Result { return rtd.Result{Window: w, Status: rtd.StatusOK, Decoder: "fake"} }
	frame := func(t *testing.T, v any) []byte {
		t.Helper()
		b, err := rtd.EncodeFrame(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var mu sync.Mutex
	var posts int
	var secondHeader rtd.Header
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/stream", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		posts++
		switch posts {
		case 1:
			// Two valid result frames, then the connection "dies": no
			// fatal, no trailer.
			_, _ = w.Write(frame(t, mkResult(0)))
			_, _ = w.Write(frame(t, mkResult(1)))
		default:
			// The resumed segment: decode its header, then answer the
			// suffix cleanly.
			var first struct {
				Rec json.RawMessage `json:"rec"`
			}
			dec := json.NewDecoder(r.Body)
			if err := dec.Decode(&first); err != nil {
				t.Errorf("resumed segment: %v", err)
			}
			_ = json.Unmarshal(first.Rec, &secondHeader)
			n := 0
			for w := secondHeader.StartWindow; w < shots; w++ {
				n++
			}
			for i := 0; i < n; i++ {
				_, _ = w.Write(frame(t, mkResult(secondHeader.StartWindow+i)))
			}
			_, _ = w.Write(frame(t, rtd.Trailer{End: n}))
		}
	})
	mux.HandleFunc("GET /v1/resume", func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("have"); got != "2" {
			t.Errorf("client salvaged have=%s results, want 2", got)
		}
		// The server committed window 2 too; its result died on the wire.
		_ = json.NewEncoder(w).Encode(rtd.ResumeInfo{Status: rtd.ResumeKnown, NextWindow: 3, Replay: []rtd.Result{mkResult(2)}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	wins := make([][][]int, shots)
	for i := range wins {
		wins[i] = [][]int{nil}
	}
	cl := &rtd.Client{URL: ts.URL}
	out, err := cl.StreamResumable(context.Background(), "fake-fp", "salvage", wins, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", out.Reconnects)
	}
	if len(out.Results) != shots {
		t.Fatalf("assembled %d results, want %d", len(out.Results), shots)
	}
	for i, r := range out.Results {
		if r.Window != i {
			t.Fatalf("result %d carries window %d; salvage broke ordering", i, r.Window)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if posts != 2 {
		t.Errorf("client made %d stream POSTs, want 2", posts)
	}
	if secondHeader.ID != "salvage" || secondHeader.StartWindow != 3 {
		t.Errorf("resumed header = %+v, want id salvage starting at window 3 (2 salvaged + 1 replayed)", secondHeader)
	}
}
