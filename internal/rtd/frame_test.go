package rtd

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	line, err := EncodeFrame(Round{Window: 3, Round: 1, Fired: []int{2, 7, 11}})
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("encoded frame is not newline-terminated")
	}
	rec, err := decodeFrame(bytes.TrimSpace(line))
	if err != nil {
		t.Fatal(err)
	}
	var rr Round
	if err := json.Unmarshal(rec, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Window != 3 || rr.Round != 1 || len(rr.Fired) != 3 || rr.Fired[2] != 11 {
		t.Fatalf("round-trip mismatch: %+v", rr)
	}
}

func TestFrameCRCCatchesCorruption(t *testing.T) {
	line, err := EncodeFrame(Header{Stream: StreamName, Fingerprint: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the rec payload (after the "rec": key).
	i := bytes.Index(line, []byte(StreamName))
	if i < 0 {
		t.Fatal("payload not found in frame")
	}
	bad := append([]byte(nil), line...)
	bad[i] ^= 0x01
	if _, err := decodeFrame(bytes.TrimSpace(bad)); err == nil || !strings.Contains(err.Error(), "CRC32-C mismatch") {
		t.Fatalf("corrupted frame not rejected: %v", err)
	}
}

func TestFrameVersionGate(t *testing.T) {
	line := []byte(`{"v":99,"crc":0,"rec":{}}`)
	if _, err := decodeFrame(line); err == nil || !strings.Contains(err.Error(), "unsupported frame version") {
		t.Fatalf("future version not rejected: %v", err)
	}
}

func TestProbeTrailerDiscrimination(t *testing.T) {
	if _, ok := probeTrailer(json.RawMessage(`{"w":0,"r":0}`)); ok {
		t.Fatal("round record mistaken for a trailer")
	}
	tr, ok := probeTrailer(json.RawMessage(`{"end":7,"drained":true}`))
	if !ok || tr.End != 7 || !tr.Drained {
		t.Fatalf("trailer not recognized: %+v ok=%v", tr, ok)
	}
}

// Every strict prefix of a healthy encoded stream must fail validation:
// either the terminal newline is gone, the last line's envelope is cut,
// or the trailer (with its count) is missing entirely.
func TestEveryStrictPrefixFailsValidation(t *testing.T) {
	wins := [][][]int{{{0}, {1, 2}}, {{}, {2}}}
	frames, err := EncodeWindows("fp", wins)
	if err != nil {
		t.Fatal(err)
	}
	body := JoinFrames(frames)
	validate := func(data []byte) error {
		if len(data) == 0 || data[len(data)-1] != '\n' {
			return errNoNewline
		}
		lines := bytes.Split(data[:len(data)-1], []byte("\n"))
		recs := 0
		sawTrailer := false
		for _, ln := range lines {
			rec, err := decodeFrame(ln)
			if err != nil {
				return err
			}
			if tr, ok := probeTrailer(rec); ok {
				if tr.End != recs-1 { // header is not counted
					return errBadCount
				}
				sawTrailer = true
				continue
			}
			recs++
		}
		if !sawTrailer {
			return errNoTrailer
		}
		return nil
	}
	if err := validate(body); err != nil {
		t.Fatalf("healthy stream rejected: %v", err)
	}
	for cut := 0; cut < len(body); cut++ {
		if err := validate(body[:cut]); err == nil {
			t.Fatalf("strict prefix of %d/%d bytes passed validation", cut, len(body))
		}
	}
}

var (
	errNoNewline = &validationError{"missing terminal newline"}
	errBadCount  = &validationError{"trailer count mismatch"}
	errNoTrailer = &validationError{"missing trailer"}
)

type validationError struct{ msg string }

func (e *validationError) Error() string { return e.msg }
