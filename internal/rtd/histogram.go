// Decode-latency histogram: power-of-two buckets over nanoseconds, so
// recording is one mutex-guarded increment and the p50/p99/p999 the
// /statz surface reports are conservative (bucket upper bound) without
// storing samples. Sixty-five buckets cover every possible
// time.Duration.
package rtd

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Histogram accumulates latency samples into log2 buckets. The zero
// value is ready to use; methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	n       int64     //fpnvet:guardedby mu
	buckets [65]int64 //fpnvet:guardedby mu (bucket b holds samples with bits.Len64(ns) == b)
}

// Record adds one sample. Negative durations (a clock stepping
// backwards under test) clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := bits.Len64(uint64(d))
	h.mu.Lock()
	h.buckets[b]++
	h.n++
	h.mu.Unlock()
}

// Quantile returns a conservative upper bound of the q-quantile (q in
// [0, 1]) of the recorded samples, or 0 when nothing was recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen >= rank {
			if b == 0 {
				return 0
			}
			if b >= 63 {
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(uint64(1)<<uint(b)) - 1
		}
	}
	return time.Duration(math.MaxInt64)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}
