// Syndrome-stream client: builds healthy request bodies, streams them,
// and fully validates the response framing — every frame's CRC, strict
// window order, the counted trailer — so a torn response is an error,
// never a silently short result set. The chaos suite and the decoded
// command's load generator both drive the service through this client
// (the chaos clients damage the encoded body before sending).
package rtd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/sim"
)

// Client posts syndrome streams to a decoded server.
type Client struct {
	URL  string       // server base address, e.g. "http://host:9912"
	HTTP *http.Client // nil means http.DefaultClient
}

// HTTPError is a non-200 verdict from the service — notably the 429
// admission refusal and the 503 draining refusal.
type HTTPError struct {
	Code int
	Msg  string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("rtd: HTTP %d: %s", e.Code, e.Msg)
}

// StreamOutcome is one stream's validated response.
type StreamOutcome struct {
	Results []Result
	Drained bool   // the server ended the stream by draining
	Fatal   string // server-side verdict that aborted the stream, if any
}

// Stream encodes wins (per-window, per-round fired detector indices)
// and posts them as one healthy syndrome stream.
func (cl *Client) Stream(ctx context.Context, fingerprint string, wins [][][]int) (*StreamOutcome, error) {
	frames, err := EncodeWindows(fingerprint, wins)
	if err != nil {
		return nil, err
	}
	return cl.StreamBody(ctx, bytes.NewReader(JoinFrames(frames)))
}

// StreamBody posts a raw request body — the chaos seam: callers may
// tear, corrupt or stall the framed bytes — and validates the response.
func (cl *Client) StreamBody(ctx context.Context, body io.Reader) (*StreamOutcome, error) {
	hc := cl.HTTP
	if hc == nil {
		// Streams are long-lived by design, so a blanket client Timeout
		// would tear healthy ones; the request context is the bound.
		hc = http.DefaultClient //fpnvet:nodeadline request lifetime is bounded by the caller's context
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.URL+"/v1/stream", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/jsonl")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	//fpnvet:nodeadline stream duration is load-dependent; the request context bounds the read
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("rtd: torn response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &HTTPError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
	}
	return decodeResponse(data)
}

// JoinFrames concatenates encoded frames into one body.
func JoinFrames(frames [][]byte) []byte {
	return bytes.Join(frames, nil)
}

// decodeResponse validates a complete response stream: newline-
// terminated framing, per-frame CRC, results in strictly ascending
// window order, at most one fatal verdict, a trailer counting the
// results. Any deviation is an error and nothing partial is returned.
func decodeResponse(data []byte) (*StreamOutcome, error) {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("rtd: torn response: missing terminal newline")
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := &StreamOutcome{}
	sawTrailer := false
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("rtd: response line %d: empty", line)
		}
		if sawTrailer {
			return nil, fmt.Errorf("rtd: response line %d: data after the trailer", line)
		}
		rec, err := decodeFrame(raw)
		if err != nil {
			return nil, fmt.Errorf("rtd: response line %d: %v", line, err)
		}
		if tr, ok := probeTrailer(rec); ok {
			if tr.End != len(out.Results) {
				return nil, fmt.Errorf("rtd: trailer claims %d results, response carried %d", tr.End, len(out.Results))
			}
			out.Drained = tr.Drained
			sawTrailer = true
			continue
		}
		var probe struct {
			Err    *string `json:"err"`
			Status *string `json:"st"`
		}
		if err := json.Unmarshal(rec, &probe); err != nil {
			return nil, fmt.Errorf("rtd: response line %d: bad record: %v", line, err)
		}
		switch {
		case probe.Err != nil:
			if out.Fatal != "" {
				return nil, fmt.Errorf("rtd: response line %d: second fatal verdict", line)
			}
			out.Fatal = *probe.Err
		case probe.Status != nil:
			if out.Fatal != "" {
				return nil, fmt.Errorf("rtd: response line %d: result after a fatal verdict", line)
			}
			var res Result
			if err := json.Unmarshal(rec, &res); err != nil {
				return nil, fmt.Errorf("rtd: response line %d: bad result: %v", line, err)
			}
			if res.Window != len(out.Results) {
				return nil, fmt.Errorf("rtd: response line %d: window %d out of order (want %d)", line, res.Window, len(out.Results))
			}
			out.Results = append(out.Results, res)
		default:
			return nil, fmt.Errorf("rtd: response line %d: unrecognized record", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rtd: torn response: %v", err)
	}
	if !sawTrailer {
		return nil, fmt.Errorf("rtd: torn response: no trailer after %d results", len(out.Results))
	}
	return out, nil
}

// BuildWindows converts n sampled shots (starting at firstShot) into
// the per-window, per-round fired-detector lists a syndrome stream
// carries: one window per shot, indices strictly ascending within each
// round. The inverse of what the service reassembles, so a round-trip
// is exact.
func BuildWindows(c *circuit.Circuit, res *sim.Result, firstShot, n int) [][][]int {
	rpw := 0
	for _, d := range c.Detectors {
		if d.Round+1 > rpw {
			rpw = d.Round + 1
		}
	}
	wins := make([][][]int, n)
	for s := 0; s < n; s++ {
		win := make([][]int, rpw)
		for d := range c.Detectors {
			if res.DetectorBit(d, firstShot+s) {
				r := c.Detectors[d].Round
				win[r] = append(win[r], d)
			}
		}
		wins[s] = win
	}
	return wins
}
