// Syndrome-stream client: builds healthy request bodies, streams them,
// and fully validates the response framing — every frame's CRC, strict
// window order, the counted trailer — so a torn response is an error,
// never a silently short result set. The chaos suite and the decoded
// command's load generator both drive the service through this client
// (the chaos clients damage the encoded body before sending).
package rtd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/sim"
)

// Client posts syndrome streams to a decoded server.
type Client struct {
	URL  string       // server base address, e.g. "http://host:9912"
	HTTP *http.Client // nil means http.DefaultClient
}

// HTTPError is a non-200 verdict from the service — notably the 429
// admission refusal and the 503 draining refusal.
type HTTPError struct {
	Code int
	Msg  string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("rtd: HTTP %d: %s", e.Code, e.Msg)
}

// StreamOutcome is one stream's validated response.
type StreamOutcome struct {
	Results []Result
	Drained bool   // the server ended the stream by draining
	Fatal   string // server-side verdict that aborted the stream, if any
	// Reconnects counts the mid-stream cuts StreamResumable rode out;
	// always 0 for Stream/StreamBody.
	Reconnects int
}

// Stream encodes wins (per-window, per-round fired detector indices)
// and posts them as one healthy syndrome stream.
func (cl *Client) Stream(ctx context.Context, fingerprint string, wins [][][]int) (*StreamOutcome, error) {
	frames, err := EncodeWindows(fingerprint, wins)
	if err != nil {
		return nil, err
	}
	return cl.StreamBody(ctx, bytes.NewReader(JoinFrames(frames)))
}

// StreamBody posts a raw request body — the chaos seam: callers may
// tear, corrupt or stall the framed bytes — and validates the response.
func (cl *Client) StreamBody(ctx context.Context, body io.Reader) (*StreamOutcome, error) {
	data, err := cl.post(ctx, body)
	if err != nil {
		return nil, err
	}
	return decodeResponse(data)
}

// post runs one stream POST and returns the raw response bytes.
func (cl *Client) post(ctx context.Context, body io.Reader) ([]byte, error) {
	hc := cl.HTTP
	if hc == nil {
		// Streams are long-lived by design, so a blanket client Timeout
		// would tear healthy ones; the request context is the bound.
		hc = http.DefaultClient //fpnvet:nodeadline request lifetime is bounded by the caller's context
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.URL+"/v1/stream", body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/jsonl")
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	//fpnvet:nodeadline stream duration is load-dependent; the request context bounds the read
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("rtd: torn response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &HTTPError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
	}
	return data, nil
}

// StreamResumable streams wins as a named resumable stream and rides
// out up to maxResumes mid-stream cuts: after each cut it salvages the
// validated prefix of the torn response, asks /v1/resume what the
// server committed beyond that, and resends exactly the uncommitted
// suffix under the same stream id. A partition costs latency and
// reconnects — never correctness: every committed window is collected
// exactly once and the assembled result set is validated the same way
// a healthy stream's is.
func (cl *Client) StreamResumable(ctx context.Context, fingerprint, id string, wins [][][]int, maxResumes int) (*StreamOutcome, error) {
	if id == "" {
		return nil, fmt.Errorf("rtd: a resumable stream needs an id")
	}
	out := &StreamOutcome{}
	sendFrom := 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > maxResumes {
			return nil, fmt.Errorf("rtd: stream %q still cut after %d resumes: %w", id, maxResumes, lastErr)
		}
		if attempt > 0 {
			out.Reconnects++
		}
		frames, err := EncodeWindowsAt(fingerprint, id, sendFrom, wins[sendFrom:])
		if err != nil {
			return nil, err
		}
		data, err := cl.post(ctx, bytes.NewReader(JoinFrames(frames)))
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			var he *HTTPError
			if errors.As(err, &he) {
				return nil, err // an explicit refusal (429/503), not a cut
			}
			lastErr = err
		} else {
			seg, err := decodeResponseFrom(data, sendFrom)
			if err == nil {
				// A healthy segment ends the stream: adopt its verdicts.
				out.Results = append(out.Results, seg.Results...)
				out.Drained, out.Fatal = seg.Drained, seg.Fatal
				return out, nil
			}
			lastErr = err
			// Salvage the strictly valid prefix of the torn response —
			// frames after the first damaged byte are untrusted.
			out.Results = append(out.Results, decodePrefix(data, sendFrom)...)
		}
		// Ask the server where the stream actually stands; it may have
		// committed windows whose results died on the wire.
		info, err := cl.Resume(ctx, id, len(out.Results))
		if err != nil {
			lastErr = err
			continue
		}
		if info.Status == ResumeKnown {
			for _, r := range info.Replay {
				if r.Window != len(out.Results) {
					return nil, fmt.Errorf("rtd: resume replay out of order: window %d, want %d", r.Window, len(out.Results))
				}
				out.Results = append(out.Results, r)
			}
			if info.NextWindow != len(out.Results) {
				return nil, fmt.Errorf("rtd: resume handshake inconsistent: next window %d with %d results", info.NextWindow, len(out.Results))
			}
		}
		sendFrom = len(out.Results)
		if sendFrom > len(wins) {
			return nil, fmt.Errorf("rtd: server committed %d windows of a %d-window stream", sendFrom, len(wins))
		}
	}
}

// Resume queries the server's resume handshake for a named stream.
func (cl *Client) Resume(ctx context.Context, id string, have int) (*ResumeInfo, error) {
	hc := cl.HTTP
	if hc == nil {
		hc = http.DefaultClient //fpnvet:nodeadline request lifetime is bounded by the caller's context
	}
	u := cl.URL + "/v1/resume?" + url.Values{"stream": {id}, "have": {fmt.Sprint(have)}}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	//fpnvet:nodeadline a resume reply is one small JSON object; the request context bounds the read
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &HTTPError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(data))}
	}
	var info ResumeInfo
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("rtd: bad resume reply: %v", err)
	}
	return &info, nil
}

// JoinFrames concatenates encoded frames into one body.
func JoinFrames(frames [][]byte) []byte {
	return bytes.Join(frames, nil)
}

// decodeResponse validates a complete response stream: newline-
// terminated framing, per-frame CRC, results in strictly ascending
// window order, at most one fatal verdict, a trailer counting the
// results. Any deviation is an error and nothing partial is returned.
func decodeResponse(data []byte) (*StreamOutcome, error) {
	return decodeResponseFrom(data, 0)
}

// decodeResponseFrom is decodeResponse for a resumed segment whose
// first result must carry absolute window index from.
func decodeResponseFrom(data []byte, from int) (*StreamOutcome, error) {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("rtd: torn response: missing terminal newline")
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	out := &StreamOutcome{}
	sawTrailer := false
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return nil, fmt.Errorf("rtd: response line %d: empty", line)
		}
		if sawTrailer {
			return nil, fmt.Errorf("rtd: response line %d: data after the trailer", line)
		}
		rec, err := decodeFrame(raw)
		if err != nil {
			return nil, fmt.Errorf("rtd: response line %d: %v", line, err)
		}
		if tr, ok := probeTrailer(rec); ok {
			if tr.End != len(out.Results) {
				return nil, fmt.Errorf("rtd: trailer claims %d results, response carried %d", tr.End, len(out.Results))
			}
			out.Drained = tr.Drained
			sawTrailer = true
			continue
		}
		var probe struct {
			Err    *string `json:"err"`
			Status *string `json:"st"`
		}
		if err := json.Unmarshal(rec, &probe); err != nil {
			return nil, fmt.Errorf("rtd: response line %d: bad record: %v", line, err)
		}
		switch {
		case probe.Err != nil:
			if out.Fatal != "" {
				return nil, fmt.Errorf("rtd: response line %d: second fatal verdict", line)
			}
			out.Fatal = *probe.Err
		case probe.Status != nil:
			if out.Fatal != "" {
				return nil, fmt.Errorf("rtd: response line %d: result after a fatal verdict", line)
			}
			var res Result
			if err := json.Unmarshal(rec, &res); err != nil {
				return nil, fmt.Errorf("rtd: response line %d: bad result: %v", line, err)
			}
			if res.Window != from+len(out.Results) {
				return nil, fmt.Errorf("rtd: response line %d: window %d out of order (want %d)", line, res.Window, from+len(out.Results))
			}
			out.Results = append(out.Results, res)
		default:
			return nil, fmt.Errorf("rtd: response line %d: unrecognized record", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rtd: torn response: %v", err)
	}
	if !sawTrailer {
		return nil, fmt.Errorf("rtd: torn response: no trailer after %d results", len(out.Results))
	}
	return out, nil
}

// decodePrefix salvages the strictly valid result prefix of a torn
// response: CRC-checked frames in exact window order starting at from,
// stopping at the first damaged or out-of-order byte. Everything it
// returns is as trustworthy as a healthy stream's results — the CRC
// envelope is the same — only completeness is lost.
func decodePrefix(data []byte, from int) []Result {
	var results []Result
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			return results
		}
		rec, err := decodeFrame(raw)
		if err != nil {
			return results
		}
		if _, ok := probeTrailer(rec); ok {
			return results
		}
		var res Result
		if err := json.Unmarshal(rec, &res); err != nil || res.Status == "" || res.Window != from+len(results) {
			return results
		}
		results = append(results, res)
	}
	return results
}

// BuildWindows converts n sampled shots (starting at firstShot) into
// the per-window, per-round fired-detector lists a syndrome stream
// carries: one window per shot, indices strictly ascending within each
// round. The inverse of what the service reassembles, so a round-trip
// is exact.
func BuildWindows(c *circuit.Circuit, res *sim.Result, firstShot, n int) [][][]int {
	rpw := 0
	for _, d := range c.Detectors {
		if d.Round+1 > rpw {
			rpw = d.Round + 1
		}
	}
	wins := make([][][]int, n)
	for s := 0; s < n; s++ {
		win := make([][]int, rpw)
		for d := range c.Detectors {
			if res.DetectorBit(d, firstShot+s) {
				r := c.Detectors[d].Round
				win[r] = append(win[r], d)
			}
		}
		wins[s] = win
	}
	return wins
}
