// The service's injectable clock. Decode latencies, deadlines and
// read/write timeouts are pure quality-of-service state — they choose
// between the primary decoder and the fallback chain, never what a
// correction is — but the degradation *accounting* must still be
// reproducible under test, so every time read flows through this seam
// and the wall-clock default is confined to two annotated methods.
package rtd

import "time"

// Clock is the service's view of time: sampling for latency accounting
// and deadline arming for decode attempts.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// wallClock is the production Clock.
type wallClock struct{}

// Now samples the machine clock.
//
//fpnvet:wallclock default clock behind the injectable seam
func (wallClock) Now() time.Time { return time.Now() }

// After arms a runtime timer.
//
//fpnvet:wallclock default clock behind the injectable seam
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
