package tiling

import "fmt"

// Face colors of a 3-colorable tiling.
const (
	Red = iota
	Green
	Blue
)

// ColorFace is one plaquette of a color tiling: its color and the data
// qubits (vertices of the trivalent tiling) on its boundary.
type ColorFace struct {
	Color  int
	Qubits []int
}

// ColorTiling is a trivalent, 3-face-colorable closed tiling: the
// substrate of a color code. Qubits are the vertices; every qubit lies on
// exactly one face of each color.
type ColorTiling struct {
	NQubits int
	Faces   []ColorFace
}

// Truncate converts an {s/2, 2r} map into the {r, s}-subfamily color
// tiling (the paper's convention: red plaquettes are 2r-gons from the
// vertices of m, green/blue plaquettes are s-gons from the faces of m).
// The qubits of the result are the darts of m. It fails when the faces of
// m cannot be 2-colored (non-bipartite face adjacency), which is a
// topological obstruction on some quotients.
func Truncate(m *Map) (*ColorTiling, error) {
	// Red faces: sigma-orbits (vertex faces), qubits are the darts in
	// rotation order — each original vertex of degree 2r yields a 2r-gon.
	ct := &ColorTiling{NQubits: m.NDarts}
	for _, v := range m.Vertices {
		ct.Faces = append(ct.Faces, ColorFace{Color: Red, Qubits: append([]int(nil), v...)})
	}
	// Face faces: each original face (phi-orbit of length p) yields a
	// 2p-gon with qubits {d, alpha(d)} for darts d on the walk. Two face
	// faces are adjacent iff the originals share an edge of m.
	adj := make([][]int, m.F())
	for _, darts := range m.Edges {
		f1, f2 := m.DartFace[darts[0]], m.DartFace[darts[1]]
		if f1 == f2 {
			return nil, fmt.Errorf("tiling: face glued to itself along an edge; not 3-colorable")
		}
		adj[f1] = append(adj[f1], f2)
		adj[f2] = append(adj[f2], f1)
	}
	color := make([]int, m.F())
	for i := range color {
		color[i] = -1
	}
	for start := range adj {
		if color[start] >= 0 {
			continue
		}
		color[start] = 0
		queue := []int{start}
		for len(queue) > 0 {
			f := queue[0]
			queue = queue[1:]
			for _, g := range adj[f] {
				if color[g] < 0 {
					color[g] = 1 - color[f]
					queue = append(queue, g)
				} else if color[g] == color[f] {
					return nil, fmt.Errorf("tiling: face adjacency not bipartite; tiling not 3-colorable")
				}
			}
		}
	}
	for f, darts := range m.Faces {
		qubits := make([]int, 0, 2*len(darts))
		for _, d := range darts {
			qubits = append(qubits, d, m.Alpha[d])
		}
		c := Green
		if color[f] == 1 {
			c = Blue
		}
		ct.Faces = append(ct.Faces, ColorFace{Color: c, Qubits: qubits})
	}
	if err := ct.Validate(); err != nil {
		return nil, err
	}
	return ct, nil
}

// Validate checks the color-code well-formedness conditions: every qubit
// on exactly one face of each color, every face with at least 4 distinct
// qubits, and any two faces sharing an even number of qubits (needed for
// X/Z check commutation).
func (ct *ColorTiling) Validate() error {
	perColor := make([][]int, 3)
	for c := range perColor {
		perColor[c] = make([]int, ct.NQubits)
		for i := range perColor[c] {
			perColor[c][i] = -1
		}
	}
	for fi, f := range ct.Faces {
		seen := map[int]bool{}
		for _, q := range f.Qubits {
			if q < 0 || q >= ct.NQubits {
				return fmt.Errorf("tiling: face %d references qubit %d out of range", fi, q)
			}
			if seen[q] {
				return fmt.Errorf("tiling: face %d repeats qubit %d", fi, q)
			}
			seen[q] = true
			if perColor[f.Color][q] >= 0 {
				return fmt.Errorf("tiling: qubit %d on two %d-colored faces", q, f.Color)
			}
			perColor[f.Color][q] = fi
		}
		if len(f.Qubits) < 4 {
			return fmt.Errorf("tiling: face %d has only %d qubits", fi, len(f.Qubits))
		}
	}
	for c := 0; c < 3; c++ {
		for q, fi := range perColor[c] {
			if fi < 0 {
				return fmt.Errorf("tiling: qubit %d missing a color-%d face", q, c)
			}
		}
	}
	for i := 0; i < len(ct.Faces); i++ {
		qi := map[int]bool{}
		for _, q := range ct.Faces[i].Qubits {
			qi[q] = true
		}
		for j := i + 1; j < len(ct.Faces); j++ {
			shared := 0
			for _, q := range ct.Faces[j].Qubits {
				if qi[q] {
					shared++
				}
			}
			if shared%2 != 0 {
				return fmt.Errorf("tiling: faces %d and %d share %d qubits (odd)", i, j, shared)
			}
		}
	}
	return nil
}

// FaceSizes returns the multiset of face sizes per color.
func (ct *ColorTiling) FaceSizes() map[int][]int {
	out := map[int][]int{}
	for _, f := range ct.Faces {
		out[f.Color] = append(out[f.Color], len(f.Qubits))
	}
	return out
}
