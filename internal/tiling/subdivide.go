package tiling

import "fmt"

// Subdivide fine-grains a quadrangulated map: every square face becomes
// an l×l grid of squares. Applied to a {4,s} hyperbolic map this yields
// the semi-hyperbolic tilings of Breuckmann, Vuillot, Campbell, Krishna
// and Terhal — the code family the paper cites as the scalable
// alternative between planar and fully hyperbolic codes. The genus (and
// hence the code dimension) is preserved while distances grow ≈ l-fold.
func Subdivide(m *Map, l int) (*Map, error) {
	if l < 1 {
		return nil, fmt.Errorf("tiling: subdivision factor %d must be ≥ 1", l)
	}
	if l == 1 {
		return New(m.Sigma, m.Alpha)
	}
	for _, f := range m.Faces {
		if len(f) != 4 {
			return nil, fmt.Errorf("tiling: Subdivide requires square faces, found a %d-gon", len(f))
		}
	}
	// New vertex ids: original vertices, then l-1 interior points per
	// original edge, then (l-1)² interior points per face.
	nV := m.V()
	edgeBase := nV
	faceBase := edgeBase + m.E()*(l-1)
	// Edge interior points are stored oriented from the endpoint of the
	// edge's lower-numbered dart.
	edgePoint := func(edge, i int) int { return edgeBase + edge*(l-1) + (i - 1) } // 1 ≤ i ≤ l-1
	facePoint := func(face, a, b int) int {
		return faceBase + face*(l-1)*(l-1) + (a-1)*(l-1) + (b - 1) // 1 ≤ a,b ≤ l-1
	}
	// pointOnEdge returns the vertex at position i (0..l) walking the
	// edge of dart d from its source vertex.
	pointOnEdge := func(d, i int) int {
		if i == 0 {
			return m.DartVertex[d]
		}
		if i == l {
			return m.DartVertex[m.Alpha[d]]
		}
		e := m.DartEdge[d]
		if d == min2(d, m.Alpha[d]) {
			return edgePoint(e, i)
		}
		return edgePoint(e, l-i)
	}
	// For each face, lay out an (l+1)×(l+1) vertex grid whose boundary
	// follows the face walk v0→v1→v2→v3: (a,b) with a along v0→v1 and b
	// along v0→v3.
	var quads [][4]int
	for fi, darts := range m.Faces {
		d0, d1, d2, d3 := darts[0], darts[1], darts[2], darts[3]
		grid := make([][]int, l+1)
		for a := range grid {
			grid[a] = make([]int, l+1)
		}
		for a := 0; a <= l; a++ {
			grid[a][0] = pointOnEdge(d0, a)   // v0→v1
			grid[a][l] = pointOnEdge(d2, l-a) // v2→v3 walked backward gives v3→v2
		}
		for b := 0; b <= l; b++ {
			grid[l][b] = pointOnEdge(d1, b)   // v1→v2
			grid[0][b] = pointOnEdge(d3, l-b) // v3→v0 walked backward gives v0→v3
		}
		for a := 1; a < l; a++ {
			for b := 1; b < l; b++ {
				grid[a][b] = facePoint(fi, a, b)
			}
		}
		// Cells, oriented like the parent face walk.
		for a := 0; a < l; a++ {
			for b := 0; b < l; b++ {
				quads = append(quads, [4]int{
					grid[a][b], grid[a+1][b], grid[a+1][b+1], grid[a][b+1],
				})
			}
		}
	}
	return mapFromOrientedFaces(quads)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// mapFromOrientedFaces reconstructs a combinatorial map from coherently
// oriented face boundary cycles: every undirected edge must appear in
// exactly two faces, once in each direction. Darts are the directed
// boundary edges; Alpha pairs the two directions and Sigma = Phi∘Alpha.
func mapFromOrientedFaces(faces [][4]int) (*Map, error) {
	type dedge struct{ u, v int }
	var dartFrom []dedge
	index := map[dedge]int{}
	for _, q := range faces {
		for i := 0; i < 4; i++ {
			de := dedge{q[i], q[(i+1)%4]}
			if de.u == de.v {
				return nil, fmt.Errorf("tiling: degenerate face edge at vertex %d", de.u)
			}
			if _, dup := index[de]; dup {
				return nil, fmt.Errorf("tiling: directed edge (%d,%d) used twice; orientation inconsistent", de.u, de.v)
			}
			index[de] = len(dartFrom)
			dartFrom = append(dartFrom, de)
		}
	}
	n := len(dartFrom)
	alpha := make([]int, n)
	phi := make([]int, n)
	for di, de := range dartFrom {
		rev, ok := index[dedge{de.v, de.u}]
		if !ok {
			return nil, fmt.Errorf("tiling: edge (%d,%d) has no reverse; faces do not close up", de.u, de.v)
		}
		alpha[di] = rev
	}
	for fi := range faces {
		for i := 0; i < 4; i++ {
			cur := index[dedge{faces[fi][i], faces[fi][(i+1)%4]}]
			next := index[dedge{faces[fi][(i+1)%4], faces[fi][(i+2)%4]}]
			phi[cur] = next
		}
	}
	// Phi = Sigma∘Alpha, so Sigma = Phi∘Alpha (Alpha is an involution).
	sigma := make([]int, n)
	for d := range sigma {
		sigma[d] = phi[alpha[d]]
	}
	return New(sigma, alpha)
}
