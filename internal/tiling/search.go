package tiling

import "math/rand"

// Search backtracks over dart pairings to find an {r,s} map with the
// given number of darts (so nDarts/2 edges). Sigma is fixed to the
// canonical product of nDarts/s consecutive s-cycles, which is without
// loss of generality because relabeling darts conjugates both
// permutations. The rng shuffles the candidate order so different seeds
// explore different maps. Returns nil if no map is found within
// maxSteps backtracking steps.
func Search(r, s, nDarts int, rng *rand.Rand, maxSteps int) *Map {
	if nDarts%2 != 0 || nDarts%s != 0 || nDarts%r != 0 {
		return nil
	}
	sigma := make([]int, nDarts)
	for v := 0; v < nDarts/s; v++ {
		for i := 0; i < s; i++ {
			sigma[v*s+i] = v*s + (i+1)%s
		}
	}
	alpha := make([]int, nDarts)
	for i := range alpha {
		alpha[i] = -1
	}
	steps := 0
	var try func() *Map
	try = func() *Map {
		if steps++; steps > maxSteps {
			return nil
		}
		// Find the first unpaired dart.
		d := -1
		for i := 0; i < nDarts; i++ {
			if alpha[i] < 0 {
				d = i
				break
			}
		}
		if d < 0 {
			m, err := New(sigma, alpha)
			if err == nil && m.IsEquivelar(r, s) && m.NonDegenerate() {
				return m
			}
			return nil
		}
		// Candidate partners, shuffled for diversity.
		cands := make([]int, 0, nDarts)
		for e := 0; e < nDarts; e++ {
			if e != d && alpha[e] < 0 {
				cands = append(cands, e)
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		for _, e := range cands {
			alpha[d], alpha[e] = e, d
			if partialFacesOK(sigma, alpha, r) {
				if m := try(); m != nil {
					return m
				}
			}
			alpha[d], alpha[e] = -1, -1
			if steps > maxSteps {
				return nil
			}
		}
		return nil
	}
	return try()
}

// partialFacesOK checks that no partially-formed face walk is already
// inconsistent with all faces having length exactly r. A face walk
// follows phi(d) = sigma[alpha[d]] while alpha is defined. Defined darts
// form disjoint chains and cycles under phi; a closed cycle must have
// length exactly r and an open chain length at most r.
func partialFacesOK(sigma, alpha []int, r int) bool {
	n := len(sigma)
	// pred counts how many defined darts map onto each dart.
	hasPred := make([]bool, n)
	for e := 0; e < n; e++ {
		if alpha[e] >= 0 {
			hasPred[sigma[alpha[e]]] = true
		}
	}
	visited := make([]bool, n)
	// Open chains start at darts with alpha defined and no predecessor.
	for h := 0; h < n; h++ {
		if alpha[h] < 0 || hasPred[h] {
			continue
		}
		length := 0
		d := h
		for alpha[d] >= 0 {
			visited[d] = true
			length++
			if length > r {
				return false
			}
			d = sigma[alpha[d]]
		}
	}
	// Remaining unvisited darts with alpha defined lie on pure cycles.
	for start := 0; start < n; start++ {
		if visited[start] || alpha[start] < 0 {
			continue
		}
		length := 0
		d := start
		for {
			visited[d] = true
			length++
			if length > r {
				return false
			}
			d = sigma[alpha[d]]
			if d == start {
				break
			}
		}
		if length != r {
			return false
		}
	}
	return true
}
