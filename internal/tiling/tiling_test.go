package tiling

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/group"
)

// torusMap builds the square {4,4} torus map on an n x n grid directly
// from dart permutations: darts 4*(cell)+dir with dir 0=E,1=N,2=W,3=S.
func torusMap(t *testing.T, n int) *Map {
	t.Helper()
	idx := func(x, y, dir int) int { return 4*((y%n)*n+(x%n)) + dir }
	nd := 4 * n * n
	sigma := make([]int, nd)
	alpha := make([]int, nd)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for dir := 0; dir < 4; dir++ {
				sigma[idx(x, y, dir)] = idx(x, y, (dir+1)%4)
			}
			alpha[idx(x, y, 0)] = idx(x+1, y, 2)
			alpha[idx(x, y, 2)] = idx(x+n-1, y, 0)
			alpha[idx(x, y, 1)] = idx(x, y+1, 3)
			alpha[idx(x, y, 3)] = idx(x, y+n-1, 1)
		}
	}
	m, err := New(sigma, alpha)
	if err != nil {
		t.Fatalf("torus map: %v", err)
	}
	return m
}

func TestTorusMapCounts(t *testing.T) {
	m := torusMap(t, 4)
	if m.V() != 16 || m.E() != 32 || m.F() != 16 {
		t.Fatalf("V,E,F = %d,%d,%d; want 16,32,16", m.V(), m.E(), m.F())
	}
	if m.EulerChar() != 0 || m.Genus() != 1 {
		t.Fatalf("χ=%d g=%d; want 0,1", m.EulerChar(), m.Genus())
	}
	if !m.IsEquivelar(4, 4) {
		t.Fatal("torus should be {4,4}")
	}
	if !m.NonDegenerate() {
		t.Fatal("4x4 torus should be non-degenerate")
	}
}

func TestTorusDual(t *testing.T) {
	m := torusMap(t, 3)
	d := m.Dual()
	if d.V() != m.F() || d.F() != m.V() || d.E() != m.E() {
		t.Fatal("dual counts wrong")
	}
	if d.EulerChar() != m.EulerChar() {
		t.Fatal("dual Euler characteristic changed")
	}
}

func TestNewRejectsBadAlpha(t *testing.T) {
	sigma := []int{1, 0}
	alpha := []int{0, 1} // fixed points
	if _, err := New(sigma, alpha); err == nil {
		t.Fatal("expected error for alpha with fixed points")
	}
}

func TestNewRejectsDisconnected(t *testing.T) {
	// Two separate digons.
	sigma := []int{1, 0, 3, 2}
	alpha := []int{1, 0, 3, 2}
	if _, err := New(sigma, alpha); err == nil {
		t.Fatal("expected error for disconnected map")
	}
}

func TestFromGroupPairA5(t *testing.T) {
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pairs := group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60)
	var m *Map
	for _, p := range pairs {
		if p.Sub.Order() != 60 {
			continue
		}
		mm, err := FromGroupPair(p)
		if err != nil {
			continue
		}
		if mm.IsEquivelar(5, 5) && mm.NonDegenerate() {
			m = mm
			break
		}
	}
	if m == nil {
		t.Fatal("no non-degenerate {5,5} map from A5")
	}
	// The famous [[30,8,3,3]] substrate: V=12, E=30, F=12, genus 4.
	if m.V() != 12 || m.E() != 30 || m.F() != 12 {
		t.Fatalf("V,E,F = %d,%d,%d; want 12,30,12", m.V(), m.E(), m.F())
	}
	if m.Genus() != 4 {
		t.Fatalf("genus = %d, want 4", m.Genus())
	}
}

func TestFromGroupPairS5(t *testing.T) {
	g, err := group.Sym(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	pairs := group.FindRSPairs(g, 5, 4, rng, 5000, 8, 120)
	for _, p := range pairs {
		if p.Sub.Order() != 120 {
			continue
		}
		m, err := FromGroupPair(p)
		if err != nil {
			continue
		}
		if !m.IsEquivelar(4, 5) {
			t.Fatal("expected {4,5} map")
		}
		if m.NonDegenerate() {
			// {4,5} map on 60 edges: V=24, E=60, F=30, genus 4.
			if m.V() != 24 || m.E() != 60 || m.F() != 30 {
				t.Fatalf("V,E,F = %d,%d,%d", m.V(), m.E(), m.F())
			}
			return
		}
	}
	t.Skip("no non-degenerate full-order pair found with this seed budget")
}

func TestSearchSmallMap(t *testing.T) {
	// {3,3} on 12 darts = tetrahedron (6 edges).
	rng := rand.New(rand.NewSource(1))
	m := Search(3, 3, 12, rng, 200000)
	if m == nil {
		t.Fatal("search failed to find tetrahedron")
	}
	if m.V() != 4 || m.E() != 6 || m.F() != 4 || m.Genus() != 0 {
		t.Fatalf("V,E,F,g = %d,%d,%d,%d", m.V(), m.E(), m.F(), m.Genus())
	}
}

func TestSearchCube(t *testing.T) {
	// {4,3} on 24 darts = cube.
	rng := rand.New(rand.NewSource(2))
	m := Search(4, 3, 24, rng, 500000)
	if m == nil {
		t.Fatal("search failed to find cube")
	}
	if m.V() != 8 || m.E() != 12 || m.F() != 6 || m.Genus() != 0 {
		t.Fatalf("V,E,F,g = %d,%d,%d,%d", m.V(), m.E(), m.F(), m.Genus())
	}
}

func TestTruncateTorusHexagonal(t *testing.T) {
	// Truncating the {3,6}? We need an {s/2, 2r} map. Use the {4,4} torus:
	// truncation gives color tiling with red 4-gons?? — the {4,4} torus is
	// the m for subfamily r=2... not a valid color-code family, but
	// Truncate only needs bipartite faces. The 4x4 torus face adjacency is
	// bipartite (checkerboard), so this exercises the machinery: red
	// squares from vertices (degree 4), green/blue 8-gons from faces.
	m := torusMap(t, 4)
	ct, err := Truncate(m)
	if err != nil {
		t.Fatal(err)
	}
	if ct.NQubits != m.NDarts {
		t.Fatalf("qubits = %d, want %d", ct.NQubits, m.NDarts)
	}
	sizes := ct.FaceSizes()
	for _, s := range sizes[Red] {
		if s != 4 {
			t.Fatalf("red face size %d, want 4", s)
		}
	}
	for _, c := range []int{Green, Blue} {
		for _, s := range sizes[c] {
			if s != 8 {
				t.Fatalf("face size %d, want 8", s)
			}
		}
	}
}

func TestTruncateOddTorusFails(t *testing.T) {
	// 3x3 torus: face adjacency contains odd cycles → not 3-colorable.
	m := torusMap(t, 3)
	if _, err := Truncate(m); err == nil {
		t.Fatal("expected 3-coloring failure on odd torus")
	}
}

func TestEdgeEndpointsConsistent(t *testing.T) {
	m := torusMap(t, 4)
	eps := m.EdgeEndpoints()
	deg := make([]int, m.V())
	for _, ep := range eps {
		deg[ep[0]]++
		deg[ep[1]]++
	}
	for v, d := range deg {
		if d != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, d)
		}
	}
}
