package tiling

import "fmt"

// SquareTorus returns the {4,4} map of an n×n square torus.
func SquareTorus(n int) (*Map, error) {
	if n < 2 {
		return nil, fmt.Errorf("tiling: square torus needs n ≥ 2")
	}
	idx := func(x, y, dir int) int { return 4*((y%n)*n+(x%n)) + dir }
	nd := 4 * n * n
	sigma := make([]int, nd)
	alpha := make([]int, nd)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for dir := 0; dir < 4; dir++ {
				sigma[idx(x, y, dir)] = idx(x, y, (dir+1)%4)
			}
			alpha[idx(x, y, 0)] = idx(x+1, y, 2)
			alpha[idx(x, y, 2)] = idx(x+n-1, y, 0)
			alpha[idx(x, y, 1)] = idx(x, y+1, 3)
			alpha[idx(x, y, 3)] = idx(x, y+n-1, 1)
		}
	}
	return New(sigma, alpha)
}

// TriangularTorus returns the {3,6} map of an L×L triangular-lattice
// torus: L² vertices of degree 6 and 2L² triangular faces. Truncating it
// yields the hexagonal (6.6.6) color tiling on the torus.
func TriangularTorus(l int) (*Map, error) {
	if l < 2 {
		return nil, fmt.Errorf("tiling: triangular torus needs L ≥ 2")
	}
	// Directions in counterclockwise rotation order on the triangular
	// lattice; dir k reverses to k+3.
	dirs := [6][2]int{{1, 0}, {0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1}}
	idx := func(x, y, k int) int {
		return 6*((((y%l)+l)%l)*l+(((x%l)+l)%l)) + k
	}
	nd := 6 * l * l
	sigma := make([]int, nd)
	alpha := make([]int, nd)
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			for k := 0; k < 6; k++ {
				sigma[idx(x, y, k)] = idx(x, y, (k+1)%6)
				alpha[idx(x, y, k)] = idx(x+dirs[k][0], y+dirs[k][1], (k+3)%6)
			}
		}
	}
	return New(sigma, alpha)
}
