package tiling

import (
	"math/rand"
	"testing"
)

func BenchmarkSquareTorus16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SquareTorus(16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubdivideL3(b *testing.B) {
	m, err := SquareTorus(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Subdivide(m, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTetrahedron(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if Search(3, 3, 12, rng, 500_000) == nil {
			b.Fatal("search failed")
		}
	}
}
