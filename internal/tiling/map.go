// Package tiling builds and analyzes closed-surface combinatorial maps
// ("rotation systems"), the geometric substrate of hyperbolic surface and
// color codes. A map is a set of darts (directed edge sides) with a
// vertex-rotation permutation Sigma and a fixed-point-free dart-reversal
// involution Alpha; faces are the orbits of Phi = Sigma∘Alpha. Maps are
// produced either from (2,r,s) group generating pairs (regular maps) or
// from a direct backtracking search over dart permutations.
package tiling

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/group"
)

// Map is a connected closed orientable combinatorial map.
type Map struct {
	NDarts int
	Sigma  []int // vertex rotation: next dart counterclockwise around the source vertex
	Alpha  []int // dart reversal (involution, no fixed points)

	// Derived incidence data, populated by finish().
	DartVertex []int   // orbit id of dart under Sigma
	DartEdge   []int   // orbit id under Alpha
	DartFace   []int   // orbit id under Phi
	Vertices   [][]int // darts per vertex, in rotation order
	Edges      [][]int // the two darts per edge
	Faces      [][]int // darts per face, in face-walk order
}

// New validates the permutations and computes incidence data.
func New(sigma, alpha []int) (*Map, error) {
	n := len(sigma)
	if len(alpha) != n {
		return nil, fmt.Errorf("tiling: sigma/alpha length mismatch")
	}
	if n == 0 || n%2 != 0 {
		return nil, fmt.Errorf("tiling: dart count %d must be positive and even", n)
	}
	if !isPerm(sigma) || !isPerm(alpha) {
		return nil, fmt.Errorf("tiling: sigma or alpha is not a permutation")
	}
	for d := 0; d < n; d++ {
		if alpha[d] == d || alpha[alpha[d]] != d {
			return nil, fmt.Errorf("tiling: alpha is not a fixed-point-free involution at dart %d", d)
		}
	}
	m := &Map{NDarts: n, Sigma: append([]int(nil), sigma...), Alpha: append([]int(nil), alpha...)}
	m.finish()
	if !m.connected() {
		return nil, fmt.Errorf("tiling: map is not connected")
	}
	return m, nil
}

func isPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func orbits(perm []int) (id []int, orb [][]int) {
	id = make([]int, len(perm))
	for i := range id {
		id[i] = -1
	}
	for d := range perm {
		if id[d] >= 0 {
			continue
		}
		var o []int
		for x := d; id[x] < 0; x = perm[x] {
			id[x] = len(orb)
			o = append(o, x)
		}
		orb = append(orb, o)
	}
	return id, orb
}

func (m *Map) finish() {
	m.DartVertex, m.Vertices = orbits(m.Sigma)
	m.DartEdge, m.Edges = orbits(m.Alpha)
	phi := m.Phi()
	m.DartFace, m.Faces = orbits(phi)
}

// Phi returns the face permutation Sigma∘Alpha.
func (m *Map) Phi() []int {
	phi := make([]int, m.NDarts)
	for d := range phi {
		phi[d] = m.Sigma[m.Alpha[d]]
	}
	return phi
}

func (m *Map) connected() bool {
	seen := make([]bool, m.NDarts)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nd := range []int{m.Sigma[d], m.Alpha[d]} {
			if !seen[nd] {
				seen[nd] = true
				count++
				stack = append(stack, nd)
			}
		}
	}
	return count == m.NDarts
}

// V, E, F return the vertex, edge and face counts.
func (m *Map) V() int { return len(m.Vertices) }
func (m *Map) E() int { return len(m.Edges) }
func (m *Map) F() int { return len(m.Faces) }

// EulerChar returns V - E + F.
func (m *Map) EulerChar() int { return m.V() - m.E() + m.F() }

// Genus returns the orientable genus (2 - χ)/2.
func (m *Map) Genus() int { return (2 - m.EulerChar()) / 2 }

// IsEquivelar reports whether every face has exactly r darts and every
// vertex exactly s darts.
func (m *Map) IsEquivelar(r, s int) bool {
	for _, f := range m.Faces {
		if len(f) != r {
			return false
		}
	}
	for _, v := range m.Vertices {
		if len(v) != s {
			return false
		}
	}
	return true
}

// NonDegenerate reports whether every face touches len(face) distinct
// edges and every vertex len(vertex) distinct edges (no repeated data
// qubits in a check), and no face is glued to itself along an edge.
func (m *Map) NonDegenerate() bool {
	for _, f := range m.Faces {
		seen := map[int]bool{}
		for _, d := range f {
			e := m.DartEdge[d]
			if seen[e] {
				return false
			}
			seen[e] = true
		}
	}
	for _, v := range m.Vertices {
		seen := map[int]bool{}
		for _, d := range v {
			e := m.DartEdge[d]
			if seen[e] {
				return false
			}
			seen[e] = true
		}
	}
	return true
}

// Dual returns the dual map (faces ↔ vertices): Sigma* = Phi, Alpha* = Alpha.
func (m *Map) Dual() *Map {
	d := &Map{NDarts: m.NDarts, Sigma: m.Phi(), Alpha: append([]int(nil), m.Alpha...)}
	d.finish()
	return d
}

// VertexEdges returns, per vertex, the sorted distinct incident edge ids.
func (m *Map) VertexEdges() [][]int {
	out := make([][]int, m.V())
	for v, darts := range m.Vertices {
		for _, d := range darts {
			out[v] = append(out[v], m.DartEdge[d])
		}
	}
	return out
}

// FaceEdges returns, per face, the edge ids along the face walk.
func (m *Map) FaceEdges() [][]int {
	out := make([][]int, m.F())
	for f, darts := range m.Faces {
		for _, d := range darts {
			out[f] = append(out[f], m.DartEdge[d])
		}
	}
	return out
}

// EdgeEndpoints returns the two vertex ids of each edge.
func (m *Map) EdgeEndpoints() [][2]int {
	out := make([][2]int, m.E())
	for e, darts := range m.Edges {
		out[e] = [2]int{m.DartVertex[darts[0]], m.DartVertex[darts[1]]}
	}
	return out
}

// FromGroupPair builds the regular map whose darts are the elements of
// the subgroup generated by pair (X of order s, Y of order 2): the map is
// equivelar of type {r, s} where r is the order of X·Y. Left
// multiplication by X is the vertex rotation and by Y the dart reversal.
func FromGroupPair(p group.RSPair) (*Map, error) {
	h := p.Sub
	n := h.Order()
	index := make(map[string]int, n)
	for i, e := range h.Elements {
		index[e.Key()] = i
	}
	sigma := make([]int, n)
	alpha := make([]int, n)
	for i, e := range h.Elements {
		sigma[i] = index[p.X.Mul(e).Key()]
		alpha[i] = index[p.Y.Mul(e).Key()]
	}
	return New(sigma, alpha)
}
