package tiling

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/group"
)

func TestSubdivideTorus(t *testing.T) {
	m, err := SquareTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{1, 2, 3} {
		s, err := Subdivide(m, l)
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if s.E() != l*l*m.E() {
			t.Fatalf("l=%d: E=%d, want %d", l, s.E(), l*l*m.E())
		}
		if s.EulerChar() != m.EulerChar() {
			t.Fatalf("l=%d: χ changed %d → %d", l, m.EulerChar(), s.EulerChar())
		}
		if !s.IsEquivelar(4, 4) {
			t.Fatalf("l=%d: subdivided torus should stay {4,4}", l)
		}
		if !s.NonDegenerate() {
			t.Fatalf("l=%d: degenerate subdivision", l)
		}
	}
}

func TestSubdivideSemiHyperbolic(t *testing.T) {
	// {4,5} map from S5: subdividing keeps genus (k) and mixes degree-4
	// and degree-5 vertices — the semi-hyperbolic family.
	g, err := group.Sym(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var m *Map
	for _, p := range group.FindRSPairs(g, 5, 4, rng, 5000, 8, 120) {
		if p.Sub.Order() != 120 {
			continue
		}
		mm, err := FromGroupPair(p)
		if err != nil || !mm.NonDegenerate() {
			continue
		}
		m = mm
		break
	}
	if m == nil {
		t.Skip("no {4,5} map found")
	}
	s, err := Subdivide(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.E() != 4*m.E() {
		t.Fatalf("E=%d, want %d", s.E(), 4*m.E())
	}
	if s.Genus() != m.Genus() {
		t.Fatalf("genus changed %d → %d", m.Genus(), s.Genus())
	}
	deg4, deg5 := 0, 0
	for _, v := range s.Vertices {
		switch len(v) {
		case 4:
			deg4++
		case 5:
			deg5++
		default:
			t.Fatalf("unexpected vertex degree %d", len(v))
		}
	}
	if deg5 != m.V() {
		t.Fatalf("degree-5 vertices %d, want %d (the original vertices)", deg5, m.V())
	}
	if deg4 == 0 {
		t.Fatal("no degree-4 vertices created")
	}
	for _, f := range s.Faces {
		if len(f) != 4 {
			t.Fatalf("face of length %d after subdivision", len(f))
		}
	}
}

func TestSubdivideRejectsNonQuad(t *testing.T) {
	m, err := TriangularTorus(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Subdivide(m, 2); err == nil {
		t.Fatal("expected rejection of triangular faces")
	}
}
