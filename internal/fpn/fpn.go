// Package fpn builds Flag-Proxy Networks, the paper's architecture for
// realizing quantum codes with bounded qubit connectivity. Starting from
// a CSS code's Tanner graph it introduces flag qubits (⌊δ/2⌋ per
// weight-δ check, each protecting a pair of data qubits — the paper's
// Figure 10 protocol), optionally merges flags across checks that share
// a data-qubit pair (flag sharing, via maximum-weight matching), and
// inserts proxy qubits until every qubit meets the degree bound.
package fpn

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/matching"
)

// QubitType classifies the physical qubits of a network.
type QubitType int

// Physical qubit roles.
const (
	Data QubitType = iota
	Parity
	Flag
	Proxy
)

func (t QubitType) String() string {
	switch t {
	case Data:
		return "data"
	case Parity:
		return "parity"
	case Flag:
		return "flag"
	case Proxy:
		return "proxy"
	}
	return "unknown"
}

// FlagGroup is one flag qubit's assignment within a check: the flag
// relays the listed data qubits (usually two) to the check's parity
// qubit.
type FlagGroup struct {
	Flag int   // physical flag qubit
	Data []int // data qubit ids (code indexing)
}

// CheckWiring describes how one check's syndrome is extracted.
type CheckWiring struct {
	Check  int // index into Code.Checks
	Groups []FlagGroup
	Direct []int // data qubits entangled directly with the parity qubit
}

// Options controls network construction.
type Options struct {
	// UseFlags enables the flag layer; when false the network wires data
	// qubits directly to parity qubits (the naive architecture used for
	// the PyMatching/Chromobius baselines).
	UseFlags bool
	// FlagSharing merges flag qubits across checks sharing a data pair.
	FlagSharing bool
	// MaxDegree, when > 0, inserts proxy qubits until every qubit has
	// degree ≤ MaxDegree. The paper targets 4.
	MaxDegree int
}

// Network is a Flag-Proxy Network: the physical qubit set, its coupling
// graph, and the per-check wiring used by the scheduler.
type Network struct {
	Code  *css.Code
	Opt   Options
	Types []QubitType

	DataQubit   []int // data index -> physical id (identity mapping)
	ParityQubit []int // check index -> physical id
	Wiring      []CheckWiring

	adj map[int]map[int]bool
}

// Build constructs the network for a code.
func Build(code *css.Code, opt Options) (*Network, error) {
	if opt.MaxDegree != 0 && opt.MaxDegree < 3 {
		return nil, fmt.Errorf("fpn: max degree %d too small (need ≥ 3)", opt.MaxDegree)
	}
	n := &Network{Code: code, Opt: opt, adj: map[int]map[int]bool{}}
	for q := 0; q < code.N; q++ {
		n.Types = append(n.Types, Data)
		n.DataQubit = append(n.DataQubit, q)
	}
	n.ParityQubit = make([]int, len(code.Checks))
	for ci := range code.Checks {
		n.ParityQubit[ci] = n.addQubit(Parity)
	}
	if opt.UseFlags {
		n.buildFlagLayer()
	} else {
		for ci, ch := range code.Checks {
			n.Wiring = append(n.Wiring, CheckWiring{Check: ci, Direct: append([]int(nil), ch.Support...)})
			for _, q := range ch.Support {
				n.addEdge(q, n.ParityQubit[ci])
			}
		}
	}
	if opt.MaxDegree > 0 {
		n.insertProxies()
	}
	return n, nil
}

func (n *Network) addQubit(t QubitType) int {
	id := len(n.Types)
	n.Types = append(n.Types, t)
	return id
}

func (n *Network) addEdge(a, b int) {
	if a == b {
		panic("fpn: self edge")
	}
	if n.adj[a] == nil {
		n.adj[a] = map[int]bool{}
	}
	if n.adj[b] == nil {
		n.adj[b] = map[int]bool{}
	}
	n.adj[a][b] = true
	n.adj[b][a] = true
}

func (n *Network) removeEdge(a, b int) {
	delete(n.adj[a], b)
	delete(n.adj[b], a)
}

// buildFlagLayer assigns flags per check following Figure 10, optionally
// merging flags across checks via maximum-weight matching on data-qubit
// pairs (weight = number of common checks).
func (n *Network) buildFlagLayer() {
	code := n.Code
	// sharedPair[q1*N+q2] = physical flag id for the globally matched pair.
	sharedFlag := map[[2]int]int{}
	if n.Opt.FlagSharing {
		// Count common checks per data pair.
		pairChecks := map[[2]int]int{}
		for _, ch := range code.Checks {
			sup := ch.Support
			for i := 0; i < len(sup); i++ {
				for j := i + 1; j < len(sup); j++ {
					a, b := sup[i], sup[j]
					if a > b {
						a, b = b, a
					}
					pairChecks[[2]int{a, b}]++
				}
			}
		}
		var edges []matching.Edge
		for pair, cnt := range pairChecks {
			if cnt >= 2 {
				edges = append(edges, matching.Edge{U: pair[0], V: pair[1], W: int64(cnt)})
			}
		}
		// Deterministic order for reproducibility.
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		mate := matching.MaxWeight(code.N, edges, false)
		for a := 0; a < code.N; a++ {
			b := mate[a]
			if b > a {
				sharedFlag[[2]int{a, b}] = -1 // allocate lazily on first use
			}
		}
	}
	matchedWith := map[int]int{}
	for pair := range sharedFlag {
		matchedWith[pair[0]] = pair[1]
		matchedWith[pair[1]] = pair[0]
	}
	for ci, ch := range code.Checks {
		w := CheckWiring{Check: ci}
		inCheck := map[int]bool{}
		for _, q := range ch.Support {
			inCheck[q] = true
		}
		used := map[int]bool{}
		// First place globally shared pairs fully contained in the check.
		for _, q := range ch.Support {
			if used[q] {
				continue
			}
			p, ok := matchedWith[q]
			if !ok || !inCheck[p] || used[p] {
				continue
			}
			a, b := q, p
			if a > b {
				a, b = b, a
			}
			f := sharedFlag[[2]int{a, b}]
			if f < 0 {
				f = n.addQubit(Flag)
				sharedFlag[[2]int{a, b}] = f
				n.addEdge(a, f)
				n.addEdge(b, f)
			}
			n.addEdge(f, n.ParityQubit[ci])
			w.Groups = append(w.Groups, FlagGroup{Flag: f, Data: []int{a, b}})
			used[a], used[b] = true, true
		}
		// Pair the remaining qubits with per-check flags.
		var rest []int
		for _, q := range ch.Support {
			if !used[q] {
				rest = append(rest, q)
			}
		}
		for len(rest) >= 2 {
			a, b := rest[0], rest[1]
			rest = rest[2:]
			f := n.addQubit(Flag)
			n.addEdge(a, f)
			n.addEdge(b, f)
			n.addEdge(f, n.ParityQubit[ci])
			w.Groups = append(w.Groups, FlagGroup{Flag: f, Data: []int{a, b}})
		}
		// An odd leftover interacts directly with the parity qubit.
		if len(rest) == 1 {
			w.Direct = append(w.Direct, rest[0])
			n.addEdge(rest[0], n.ParityQubit[ci])
		}
		n.Wiring = append(n.Wiring, w)
	}
}

// insertProxies reduces every qubit's degree to at most MaxDegree by
// moving neighbors onto chained proxy qubits (Figure 11).
func (n *Network) insertProxies() {
	maxDeg := n.Opt.MaxDegree
	for q := 0; q < len(n.Types); q++ {
		for len(n.adj[q]) > maxDeg {
			move := len(n.adj[q]) - maxDeg + 1
			if move > maxDeg-1 {
				move = maxDeg - 1
			}
			// Move the highest-numbered neighbors (typically flags or
			// parities added later) onto a fresh proxy.
			var neigh []int
			for v := range n.adj[q] {
				neigh = append(neigh, v)
			}
			sort.Ints(neigh)
			victims := neigh[len(neigh)-move:]
			p := n.addQubit(Proxy)
			for _, v := range victims {
				n.removeEdge(q, v)
				n.addEdge(p, v)
			}
			n.addEdge(q, p)
		}
	}
}

// Degree returns the coupling degree of physical qubit q.
func (n *Network) Degree(q int) int { return len(n.adj[q]) }

// Neighbors returns the sorted neighbor list of q.
func (n *Network) Neighbors(q int) []int {
	var out []int
	for v := range n.adj[q] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// NumQubits returns the total number of physical qubits N.
func (n *Network) NumQubits() int { return len(n.Types) }

// CountByType tallies qubits per role.
func (n *Network) CountByType() map[QubitType]int {
	out := map[QubitType]int{}
	for _, t := range n.Types {
		out[t]++
	}
	return out
}

// EffectiveRate returns k/N.
func (n *Network) EffectiveRate() float64 {
	return float64(n.Code.K) / float64(n.NumQubits())
}

// MeanDegree returns the average coupling degree.
func (n *Network) MeanDegree() float64 {
	total := 0
	for q := range n.Types {
		total += len(n.adj[q])
	}
	return float64(total) / float64(len(n.Types))
}

// MaxDegreeUsed returns the maximum coupling degree present.
func (n *Network) MaxDegreeUsed() int {
	best := 0
	for q := range n.Types {
		if len(n.adj[q]) > best {
			best = len(n.adj[q])
		}
	}
	return best
}

// ProxyPath returns a shortest physical path from a to b whose interior
// vertices are all proxy qubits, or nil if none exists. When a and b are
// adjacent the path is [a, b].
func (n *Network) ProxyPath(a, b int) []int {
	if n.adj[a][b] {
		return []int{a, b}
	}
	// BFS from a through proxy-only interior.
	prev := map[int]int{a: a}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, v := range n.Neighbors(cur) {
			if _, seen := prev[v]; seen {
				continue
			}
			if v == b {
				prev[v] = cur
				path := []int{b}
				for x := cur; x != a; x = prev[x] {
					path = append(path, x)
				}
				path = append(path, a)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			if n.Types[v] == Proxy {
				prev[v] = cur
				queue = append(queue, v)
			}
		}
	}
	return nil
}
