package fpn

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func steane(t *testing.T) *css.Code {
	t.Helper()
	sups := [][]int{{0, 1, 2, 3}, {1, 2, 4, 5}, {2, 3, 5, 6}}
	var checks []css.Check
	for _, b := range []css.Basis{css.X, css.Z} {
		for _, s := range sups {
			checks = append(checks, css.Check{Basis: b, Support: s, Color: -1})
		}
	}
	c, err := css.New("steane", "test", 7, checks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func hyper55(t *testing.T) *css.Code {
	t.Helper()
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := surface.FromMap(m, "hysc-30", "hyperbolic-surface {5,5}")
		if err == nil {
			return code
		}
	}
	t.Fatal("no [[30,8,3,3]] code")
	return nil
}

func TestDirectNetwork(t *testing.T) {
	code := steane(t)
	n, err := Build(code, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 7 data + 6 parity.
	if n.NumQubits() != 13 {
		t.Fatalf("N = %d, want 13", n.NumQubits())
	}
	counts := n.CountByType()
	if counts[Data] != 7 || counts[Parity] != 6 || counts[Flag] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	for _, w := range n.Wiring {
		if len(w.Groups) != 0 || len(w.Direct) != len(code.Checks[w.Check].Support) {
			t.Fatal("direct wiring wrong")
		}
	}
	// Every parity qubit has degree = check weight.
	for ci := range code.Checks {
		if n.Degree(n.ParityQubit[ci]) != len(code.Checks[ci].Support) {
			t.Fatal("parity degree mismatch")
		}
	}
}

func TestFlagNetworkNoSharing(t *testing.T) {
	code := steane(t)
	n, err := Build(code, Options{UseFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := n.CountByType()
	// Each weight-4 check gets 2 flags: 6 checks × 2 = 12 flags.
	if counts[Flag] != 12 {
		t.Fatalf("flags = %d, want 12", counts[Flag])
	}
	for _, w := range n.Wiring {
		if len(w.Groups) != 2 || len(w.Direct) != 0 {
			t.Fatalf("wiring %+v", w)
		}
		for _, g := range w.Groups {
			if len(g.Data) != 2 {
				t.Fatal("flag group must cover a pair")
			}
		}
	}
}

func TestFlagSharingReducesFlags(t *testing.T) {
	code := hyper55(t)
	plain, err := Build(code, Options{UseFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := Build(code, Options{UseFlags: true, FlagSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	pf := plain.CountByType()[Flag]
	sf := shared.CountByType()[Flag]
	if sf >= pf {
		t.Fatalf("sharing did not reduce flags: %d vs %d", sf, pf)
	}
	if shared.EffectiveRate() <= plain.EffectiveRate() {
		t.Fatal("sharing should improve effective rate")
	}
	t.Logf("flags %d -> %d, Reff %.4f -> %.4f", pf, sf, plain.EffectiveRate(), shared.EffectiveRate())
}

func TestDegreeBound(t *testing.T) {
	code := hyper55(t)
	n, err := Build(code, Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n.MaxDegreeUsed() > 4 {
		t.Fatalf("max degree %d exceeds bound", n.MaxDegreeUsed())
	}
}

func TestOddWeightLeavesDirect(t *testing.T) {
	// Weight-5 checks: X vertices of the {5,5} code.
	code := hyper55(t)
	n, err := Build(code, Options{UseFlags: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range n.Wiring {
		weight := len(code.Checks[w.Check].Support)
		want := weight / 2
		if len(w.Groups) != want {
			t.Fatalf("check weight %d: %d groups, want %d", weight, len(w.Groups), want)
		}
		if weight%2 == 1 && len(w.Direct) != 1 {
			t.Fatalf("odd check should have 1 direct qubit, got %d", len(w.Direct))
		}
	}
}

func TestProxyPath(t *testing.T) {
	code := hyper55(t)
	n, err := Build(code, Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every wiring interaction must have a proxy path.
	for _, w := range n.Wiring {
		p := n.ParityQubit[w.Check]
		for _, g := range w.Groups {
			if path := n.ProxyPath(g.Flag, p); path == nil {
				t.Fatalf("no proxy path flag %d -> parity %d", g.Flag, p)
			}
			for _, d := range g.Data {
				if path := n.ProxyPath(d, g.Flag); path == nil {
					t.Fatalf("no proxy path data %d -> flag %d", d, g.Flag)
				}
			}
		}
		for _, d := range w.Direct {
			if path := n.ProxyPath(d, p); path == nil {
				t.Fatalf("no proxy path data %d -> parity %d", d, p)
			}
		}
	}
}

func TestProxyPathInteriorIsProxyOnly(t *testing.T) {
	code := hyper55(t)
	n, err := Build(code, Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range n.Wiring {
		p := n.ParityQubit[w.Check]
		for _, g := range w.Groups {
			path := n.ProxyPath(g.Flag, p)
			for _, q := range path[1 : len(path)-1] {
				if n.Types[q] != Proxy {
					t.Fatalf("interior vertex %d is %v", q, n.Types[q])
				}
			}
		}
	}
}

func TestEffectiveRateBeatsPlanar(t *testing.T) {
	// Headline claim sanity: the shared-flag [[30,8,3,3]] FPN should beat
	// the d=5 planar surface code's 1/49 effective rate.
	code := hyper55(t)
	n, err := Build(code, Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n.EffectiveRate() <= 1.0/49 {
		t.Fatalf("Reff = %.4f not better than 1/49", n.EffectiveRate())
	}
}

func TestRotatedSurfaceDirectDegrees(t *testing.T) {
	l, err := surface.Rotated(5)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(l.Code, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Standard implementation: N = 2d^2 - 1.
	if n.NumQubits() != 49 {
		t.Fatalf("N = %d, want 49", n.NumQubits())
	}
	if n.MaxDegreeUsed() > 4 {
		t.Fatalf("planar surface code degree %d > 4", n.MaxDegreeUsed())
	}
	// Paper Table I: d=5 mean degree 3.26.
	mean := n.MeanDegree()
	if mean < 3.2 || mean > 3.3 {
		t.Fatalf("mean degree %.3f, want ≈3.26", mean)
	}
}
