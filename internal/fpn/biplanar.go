package fpn

import "github.com/fpn/flagproxy/internal/planar"

// BiplanarDecomposition attempts to split the coupling graph into two
// planar layers (the paper's appendix notes all its FPNs are biplanar,
// "much like bivariate bicycle codes"). The greedy first-fit strategy is
// a sufficient certificate when it succeeds: each returned layer is
// planar and together they cover every edge. A false result means the
// heuristic failed, not necessarily that the graph is not biplanar.
func (n *Network) BiplanarDecomposition() ([2][][2]int, bool) {
	var layers [2][][2]int
	var edges [][2]int
	for q := 0; q < n.NumQubits(); q++ {
		for _, v := range n.Neighbors(q) {
			if v > q {
				edges = append(edges, [2]int{q, v})
			}
		}
	}
	nv := n.NumQubits()
	for _, e := range edges {
		placed := false
		for l := 0; l < 2; l++ {
			trial := append(append([][2]int{}, layers[l]...), e)
			if planar.IsPlanar(nv, trial) {
				layers[l] = trial
				placed = true
				break
			}
		}
		if !placed {
			return layers, false
		}
	}
	return layers, true
}
