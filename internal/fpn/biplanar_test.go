package fpn

import (
	"testing"

	"github.com/fpn/flagproxy/internal/planar"
	"github.com/fpn/flagproxy/internal/surface"
)

func TestBiplanarPlanarCode(t *testing.T) {
	// The planar surface code is planar, hence trivially biplanar.
	l, err := surface.Rotated(5)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(l.Code, Options{})
	if err != nil {
		t.Fatal(err)
	}
	layers, ok := n.BiplanarDecomposition()
	if !ok {
		t.Fatal("planar code should decompose")
	}
	if len(layers[1]) != 0 {
		t.Fatalf("planar code should fit in one layer, second layer has %d edges", len(layers[1]))
	}
}

// The appendix claim: hyperbolic FPNs are biplanar. Verify the greedy
// certificate on the [[30,8,3,3]] FPN.
func TestBiplanarHyperbolicFPN(t *testing.T) {
	code := hyper55(t)
	n, err := Build(code, Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	layers, ok := n.BiplanarDecomposition()
	if !ok {
		t.Fatal("greedy biplanar decomposition failed on the [[30,8,3,3]] FPN")
	}
	// Certificate check: both layers planar, union covers all edges.
	total := 0
	for l := 0; l < 2; l++ {
		if !planar.IsPlanar(n.NumQubits(), layers[l]) {
			t.Fatalf("layer %d is not planar", l)
		}
		total += len(layers[l])
	}
	want := 0
	for q := 0; q < n.NumQubits(); q++ {
		want += n.Degree(q)
	}
	want /= 2
	if total != want {
		t.Fatalf("layers cover %d edges, want %d", total, want)
	}
	t.Logf("biplanar: %d + %d edges across two planar layers", len(layers[0]), len(layers[1]))
}
