package surface

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
)

// RotatedLayout records the geometry of a rotated planar surface code so
// that the scheduler can use the canonical fault-tolerant CNOT ordering.
type RotatedLayout struct {
	D    int
	Code *css.Code
	// CheckPos[i] = plaquette coordinate (row, col) of check i in
	// Code.Checks; data qubit r*d+c sits at (r, c).
	CheckPos [][2]int
}

// Rotated constructs the [[d^2, 1, d]] rotated planar surface code.
// Data qubit (r, c) has index r*d+c. Plaquette (i, j), 0 ≤ i, j ≤ d,
// covers the up-to-four data qubits {i-1, i} × {j-1, j}; bulk plaquettes
// alternate X/Z by parity of i+j, and only X plaquettes survive on the
// top/bottom boundary and Z plaquettes on the left/right boundary.
func Rotated(d int) (*RotatedLayout, error) {
	if d < 2 {
		return nil, fmt.Errorf("surface: rotated code needs d ≥ 2, got %d", d)
	}
	var checks []css.Check
	var pos [][2]int
	for i := 0; i <= d; i++ {
		for j := 0; j <= d; j++ {
			var sup []int
			for _, r := range []int{i - 1, i} {
				for _, c := range []int{j - 1, j} {
					if r >= 0 && r < d && c >= 0 && c < d {
						sup = append(sup, r*d+c)
					}
				}
			}
			if len(sup) < 2 {
				continue
			}
			basis := css.Z
			if (i+j)%2 == 0 {
				basis = css.X
			}
			if len(sup) == 2 {
				onTopBottom := i == 0 || i == d
				onLeftRight := j == 0 || j == d
				if onTopBottom && basis != css.X {
					continue
				}
				if onLeftRight && basis != css.Z {
					continue
				}
			}
			checks = append(checks, css.Check{Basis: basis, Support: sup, Color: -1})
			pos = append(pos, [2]int{i, j})
		}
	}
	code, err := css.New(fmt.Sprintf("rotated-d%d", d), "planar-surface", d*d, checks)
	if err != nil {
		return nil, err
	}
	if code.K != 1 {
		return nil, fmt.Errorf("surface: rotated d=%d has k=%d, want 1", d, code.K)
	}
	code.DX, code.DZ = d, d
	code.DXExact, code.DZExact = true, true
	return &RotatedLayout{D: d, Code: code, CheckPos: pos}, nil
}

// CanonicalCNOTOrder returns, for check i of the rotated code, the data
// qubits in the canonical fault-tolerant interaction order (Tomita &
// Svore): X checks sweep in a "Z" pattern (NW, NE, SW, SE) and Z checks
// in an "S" pattern (NW, SW, NE, SE), which prevents hook errors from
// aligning with the logical operators. Missing (boundary) corners are
// skipped, preserving the relative order.
func (l *RotatedLayout) CanonicalCNOTOrder(check int) []int {
	i, j := l.CheckPos[check][0], l.CheckPos[check][1]
	d := l.D
	corner := func(r, c int) int {
		if r >= 0 && r < d && c >= 0 && c < d {
			return r*d + c
		}
		return -1
	}
	nw := corner(i-1, j-1)
	ne := corner(i-1, j)
	sw := corner(i, j-1)
	se := corner(i, j)
	var order []int
	if l.Code.Checks[check].Basis == css.X {
		order = []int{nw, ne, sw, se}
	} else {
		order = []int{nw, sw, ne, se}
	}
	var out []int
	for _, q := range order {
		if q >= 0 {
			out = append(out, q)
		}
	}
	return out
}
