package surface

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/tiling"
)

func torusMap(t *testing.T, n int) *tiling.Map {
	t.Helper()
	idx := func(x, y, dir int) int { return 4*((y%n)*n+(x%n)) + dir }
	nd := 4 * n * n
	sigma := make([]int, nd)
	alpha := make([]int, nd)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for dir := 0; dir < 4; dir++ {
				sigma[idx(x, y, dir)] = idx(x, y, (dir+1)%4)
			}
			alpha[idx(x, y, 0)] = idx(x+1, y, 2)
			alpha[idx(x, y, 2)] = idx(x+n-1, y, 0)
			alpha[idx(x, y, 1)] = idx(x, y+1, 3)
			alpha[idx(x, y, 3)] = idx(x, y+n-1, 1)
		}
	}
	m, err := tiling.New(sigma, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestToricCodeFromMap(t *testing.T) {
	m := torusMap(t, 4)
	code, err := FromMap(m, "toric-4", "toric")
	if err != nil {
		t.Fatal(err)
	}
	if code.N != 32 || code.K != 2 {
		t.Fatalf("[[%d,%d]] want [[32,2]]", code.N, code.K)
	}
	if code.DZ != 4 || code.DX != 4 {
		t.Fatalf("d = %d/%d, want 4/4", code.DZ, code.DX)
	}
	if !code.DZExact || !code.DXExact {
		t.Fatal("homology distances must be exact")
	}
}

func TestToricDistanceMatchesEnumeration(t *testing.T) {
	m := torusMap(t, 3)
	code, err := FromMap(m, "toric-3", "toric")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check homology distance with exhaustive search.
	want := css.MinLogicalExact(code.CheckMatrix(css.X), code.CheckMatrix(css.Z), 6, 10_000_000)
	if !want.Exact || want.D != code.DZ {
		t.Fatalf("homology dZ=%d, enumeration %+v", code.DZ, want)
	}
}

func TestHyperbolic55FromA5(t *testing.T) {
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pairs := group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60)
	for _, p := range pairs {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := FromMap(m, "hysc-5_5-30", "hyperbolic-surface {5,5}")
		if err != nil {
			t.Fatal(err)
		}
		// The paper's [[30,8,3,3]] code.
		if code.N != 30 || code.K != 8 {
			t.Fatalf("[[%d,%d]], want [[30,8]]", code.N, code.K)
		}
		if code.DZ != 3 || code.DX != 3 {
			t.Fatalf("d=%d/%d, want 3/3", code.DZ, code.DX)
		}
		// Cross-check with exhaustive enumeration.
		ex := css.MinLogicalExact(code.CheckMatrix(css.X), code.CheckMatrix(css.Z), 4, 50_000_000)
		if !ex.Exact || ex.D != 3 {
			t.Fatalf("enumeration disagrees: %+v", ex)
		}
		return
	}
	t.Fatal("no suitable A5 pair found")
}

func TestRotatedSmall(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		l, err := Rotated(d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if l.Code.N != d*d || l.Code.K != 1 {
			t.Fatalf("d=%d: [[%d,%d]]", d, l.Code.N, l.Code.K)
		}
		if len(l.Code.Checks) != d*d-1 {
			t.Fatalf("d=%d: %d checks, want %d", d, len(l.Code.Checks), d*d-1)
		}
	}
}

func TestRotatedDistanceVerified(t *testing.T) {
	for _, d := range []int{3, 5} {
		l, err := Rotated(d)
		if err != nil {
			t.Fatal(err)
		}
		got := css.MinLogicalExact(l.Code.CheckMatrix(css.X), l.Code.CheckMatrix(css.Z), d, 100_000_000)
		if !got.Exact || got.D != d {
			t.Fatalf("d=%d: measured dZ %+v", d, got)
		}
		gotX := css.MinLogicalExact(l.Code.CheckMatrix(css.Z), l.Code.CheckMatrix(css.X), d, 100_000_000)
		if !gotX.Exact || gotX.D != d {
			t.Fatalf("d=%d: measured dX %+v", d, gotX)
		}
	}
}

func TestRotatedCanonicalOrder(t *testing.T) {
	l, err := Rotated(3)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range l.Code.Checks {
		order := l.CanonicalCNOTOrder(ci)
		if len(order) != len(l.Code.Checks[ci].Support) {
			t.Fatalf("check %d: order %v vs support %v", ci, order, l.Code.Checks[ci].Support)
		}
		// Order must be a permutation of the support.
		in := map[int]bool{}
		for _, q := range l.Code.Checks[ci].Support {
			in[q] = true
		}
		for _, q := range order {
			if !in[q] {
				t.Fatalf("check %d: %d not in support", ci, q)
			}
		}
	}
}

func TestFromMapRejectsDegenerate(t *testing.T) {
	// A two-dart map: single edge, single vertex (loop) — degenerate.
	sigma := []int{1, 0}
	alpha := []int{1, 0}
	m, err := tiling.New(sigma, alpha)
	if err != nil {
		t.Skip("map invalid at construction, nothing to test")
	}
	if _, err := FromMap(m, "bad", "test"); err == nil {
		t.Fatal("expected degeneracy rejection")
	}
}
