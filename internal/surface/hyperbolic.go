// Package surface builds surface codes: hyperbolic surface codes from
// closed {r,s} combinatorial maps (edges→data, faces→Z checks,
// vertices→X checks) and the rotated planar surface code baseline. It
// also computes exact code distances for the hyperbolic family via
// homology (shortest homologically non-trivial cycle, found exactly with
// the GF(2) double-cover technique).
package surface

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/gf2"
	"github.com/fpn/flagproxy/internal/tiling"
)

// FromMap constructs the hyperbolic surface code of a closed map: each
// edge is a data qubit, each face a Z check, each vertex an X check.
// Distances are computed exactly via homology.
func FromMap(m *tiling.Map, name, family string) (*css.Code, error) {
	if !m.NonDegenerate() {
		return nil, fmt.Errorf("surface: degenerate map (repeated edge in a face or vertex)")
	}
	var checks []css.Check
	for _, edges := range m.FaceEdges() {
		checks = append(checks, css.Check{Basis: css.Z, Support: append([]int(nil), edges...), Color: -1})
	}
	for _, edges := range m.VertexEdges() {
		checks = append(checks, css.Check{Basis: css.X, Support: append([]int(nil), edges...), Color: -1})
	}
	code, err := css.New(name, family, m.E(), checks)
	if err != nil {
		return nil, err
	}
	if code.K != 2*m.Genus() {
		return nil, fmt.Errorf("surface: k=%d does not match 2g=%d", code.K, 2*m.Genus())
	}
	dz := ShortestNontrivialCycle(m)
	dx := ShortestNontrivialCycle(m.Dual())
	code.DZ, code.DZExact = dz, true
	code.DX, code.DXExact = dx, true
	return code, nil
}

// ShortestNontrivialCycle returns the length of the shortest cycle in the
// map's graph that is homologically non-trivial (not a sum of face
// boundaries). This is the Z distance of the associated surface code.
//
// Method: a cycle c is non-trivial iff λ·c = 1 for some λ in the
// orthogonal complement of the face space, i.e. λ ∈ ker(H_Z). For each
// basis functional λ the shortest λ-odd cycle is found exactly as the
// shortest path between the two lifts of a vertex in the λ-signed double
// cover of the graph.
func ShortestNontrivialCycle(m *tiling.Map) int {
	nE := m.E()
	hz := gf2.MatrixFromSupports(m.F(), nE, m.FaceEdges())
	lambdas := gf2.NullspaceBasis(hz)
	eps := m.EdgeEndpoints()
	nV := m.V()
	// Adjacency: per vertex, list of (neighbor, edge id).
	type arc struct{ to, edge int }
	adj := make([][]arc, nV)
	for e, ep := range eps {
		adj[ep[0]] = append(adj[ep[0]], arc{ep[1], e})
		adj[ep[1]] = append(adj[ep[1]], arc{ep[0], e})
	}
	best := nE + 1
	dist := make([]int, 2*nV)
	queue := make([]int, 0, 2*nV)
	for _, lambda := range lambdas {
		odd := make([]bool, nE)
		for _, e := range lambda.Support() {
			odd[e] = true
		}
		for v := 0; v < nV; v++ {
			// BFS from (v, 0) in the double cover.
			for i := range dist {
				dist[i] = -1
			}
			dist[2*v] = 0
			queue = queue[:0]
			queue = append(queue, 2*v)
			for qi := 0; qi < len(queue); qi++ {
				cur := queue[qi]
				u, sheet := cur/2, cur%2
				if dist[cur] >= best {
					continue
				}
				for _, a := range adj[u] {
					ns := sheet
					if odd[a.edge] {
						ns ^= 1
					}
					nxt := 2*a.to + ns
					if dist[nxt] < 0 {
						dist[nxt] = dist[cur] + 1
						queue = append(queue, nxt)
					}
				}
			}
			if d := dist[2*v+1]; d > 0 && d < best {
				best = d
			}
		}
	}
	if best > nE {
		return 0 // no non-trivial cycle: genus 0
	}
	return best
}
