package decoder

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// weightScale quantizes -log-probability weights into the integer domain
// of the blossom matcher.
const weightScale = 1000.0

// MWPM is the flagged minimum-weight perfect-matching decoder for
// surface codes: per shot it selects a flag-conditioned representative
// from every error equivalence class, builds the weighted decoding
// graph, matches the flipped syndrome bits along shortest paths, and
// lifts the matched paths back to Pauli-frame corrections.
type MWPM struct {
	Basis css.Basis
	// UseFlags selects the flag protocol; when false the decoder is the
	// plain-MWPM baseline (PyMatching stand-in) that ignores flag bits.
	UseFlags bool
	// DisableRenorm switches off the Equation 9 probability
	// renormalization while keeping flag-conditioned representative
	// selection (an ablation knob; the paper always renormalizes).
	DisableRenorm bool

	classes []dem.Class
	pM      float64
	numObs  int

	verts    []int       // vertex -> syndrome detector id
	vertOf   map[int]int // detector -> vertex
	boundary int         // boundary vertex index, or -1
	edges    []graphEdge
	adj      [][]int    // vertex -> edge ids
	empty    *dem.Class // empty-syndrome equivalence class, if any
	flagAll  []int      // every flag detector mentioned by any class

	baseRep    []dem.ProjEvent // flagless representative per class
	baseWeight []float64
	flagIndex  map[int][]int // flag detector -> class ids with members on it
}

type graphEdge struct {
	u, v  int // vertices (v may be the boundary vertex)
	class int
}

// NewMWPM builds the decoder for one syndrome basis of a model. pM is
// the measurement misread probability used in Equation 9.
func NewMWPM(model *dem.Model, basis css.Basis, pM float64, useFlags bool) (*MWPM, error) {
	events := model.Project(basis)
	events = decompose(events, 8)
	classes := dem.BuildClasses(events)
	d := &MWPM{
		Basis:    basis,
		UseFlags: useFlags,
		classes:  classes,
		pM:       pM,
		numObs:   len(model.Circuit.Observables),
		vertOf:   map[int]int{},
		boundary: -1,
	}
	for _, cl := range classes {
		for _, det := range cl.Dets {
			if _, ok := d.vertOf[det]; !ok {
				d.vertOf[det] = len(d.verts)
				d.verts = append(d.verts, det)
			}
		}
		if len(cl.Dets) == 1 {
			d.boundary = -2 // mark needed
		}
	}
	if d.boundary == -2 {
		d.boundary = len(d.verts)
	}
	nv := len(d.verts)
	if d.boundary >= 0 {
		nv++
	}
	d.adj = make([][]int, nv)
	for ci, cl := range classes {
		var u, v int
		switch len(cl.Dets) {
		case 0:
			d.empty = &classes[ci]
			continue
		case 1:
			u, v = d.vertOf[cl.Dets[0]], d.boundary
		case 2:
			u, v = d.vertOf[cl.Dets[0]], d.vertOf[cl.Dets[1]]
		default:
			return nil, fmt.Errorf("decoder: class with %d dets survived decomposition", len(cl.Dets))
		}
		ei := len(d.edges)
		d.edges = append(d.edges, graphEdge{u: u, v: v, class: ci})
		d.adj[u] = append(d.adj[u], ei)
		d.adj[v] = append(d.adj[v], ei)
	}
	d.flagAll = collectFlagList(classes)
	// Flagless base representatives and weights.
	d.baseRep = make([]dem.ProjEvent, len(classes))
	d.baseWeight = make([]float64, len(classes))
	d.flagIndex = map[int][]int{}
	for ci := range classes {
		rep, p := classes[ci].Representative(nil, 0, pM)
		d.baseRep[ci] = rep
		d.baseWeight[ci] = weightOf(p)
		seen := map[int]bool{}
		for _, m := range classes[ci].Members {
			for _, f := range m.Flags {
				if !seen[f] {
					seen[f] = true
					d.flagIndex[f] = append(d.flagIndex[f], ci)
				}
			}
		}
	}
	return d, nil
}

func weightOf(p float64) float64 {
	if p < 1e-15 {
		p = 1e-15
	}
	if p > 0.5 {
		p = 0.5
	}
	return -math.Log(p)
}

// NumClasses reports the equivalence-class count (for diagnostics).
func (d *MWPM) NumClasses() int { return len(d.classes) }

// Decode maps a shot's detector bits to predicted observable flips.
// detBit must return whether detector id fired.
func (d *MWPM) Decode(detBit func(int) bool) ([]bool, error) {
	// Flipped syndrome vertices and observed flags.
	var src []int
	for vi, det := range d.verts {
		if detBit(det) {
			src = append(src, vi)
		}
	}
	correction := make([]bool, d.numObs)
	flags := map[int]bool{}
	nFlags := 0
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				flags[f] = true
				nFlags++
			}
		}
	}
	if len(src) == 0 {
		// No parity check fired: the only possible explanations live in
		// the empty-syndrome equivalence class (flag-only propagation
		// errors) or are "no error".
		if d.UseFlags {
			applyEmptyClass(d.empty, flags, nFlags, correction)
		}
		return correction, nil
	}
	// Per-shot class representatives and weights.
	rep := d.baseRep
	weight := d.baseWeight
	if nFlags > 0 {
		rep = make([]dem.ProjEvent, len(d.classes))
		weight = make([]float64, len(d.classes))
		copy(rep, d.baseRep)
		wM := weightOf(d.pM)
		for ci := range d.classes {
			// Default: flagless representative at diff |F|; Equation 9
			// gives weight |F|·wM + (|σ|−1)·(−log π).
			exp := float64(len(d.classes[ci].Dets) - 1)
			if exp < 1 {
				exp = 1
			}
			weight[ci] = d.baseWeight[ci]*exp + float64(nFlags)*wM
		}
		// Classes with members touching an observed flag re-select their
		// representative against the actual flag set.
		adjusted := map[int]bool{}
		for f := range flags {
			for _, ci := range d.flagIndex[f] {
				adjusted[ci] = true
			}
		}
		for ci := range adjusted {
			r, p := d.classes[ci].Representative(flags, nFlags, d.pM)
			rep[ci] = r
			weight[ci] = weightOf(p)
		}
		if d.DisableRenorm {
			for ci := range d.classes {
				weight[ci] = weightOf(rep[ci].P)
			}
		}
	}
	nv := len(d.adj)
	if d.boundary < 0 && len(src)%2 != 0 {
		return nil, fmt.Errorf("decoder: odd syndrome weight %d on a closed code", len(src))
	}
	// Dijkstra from each source.
	dist := make([][]float64, len(src))
	prevEdge := make([][]int, len(src))
	for i, s := range src {
		dist[i], prevEdge[i] = d.dijkstra(s, weight, nv)
	}
	// Matching instance: real nodes 0..k-1, virtual boundary nodes
	// k..2k-1 when a boundary exists.
	k := len(src)
	var medges []matchEdge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if w := dist[i][src[j]]; !math.IsInf(w, 1) {
				medges = append(medges, matchEdge{i, j, w})
			}
		}
	}
	if d.boundary >= 0 {
		for i := 0; i < k; i++ {
			if w := dist[i][d.boundary]; !math.IsInf(w, 1) {
				medges = append(medges, matchEdge{i, k + i, w})
			}
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				medges = append(medges, matchEdge{k + i, k + j, 0})
			}
		}
	}
	total := k
	if d.boundary >= 0 {
		total = 2 * k
	}
	mate, err := minWeightPerfect(total, medges)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		j := mate[i]
		if j < i && j < k {
			continue // handled from the other side
		}
		var target int
		if j < k {
			target = src[j]
		} else if j == k+i {
			target = d.boundary
		} else {
			return nil, fmt.Errorf("decoder: real node matched to foreign virtual node")
		}
		// Walk the shortest-path tree of source i from target back.
		cur := target
		for cur != src[i] {
			ei := prevEdge[i][cur]
			if ei < 0 {
				return nil, fmt.Errorf("decoder: broken shortest-path tree")
			}
			e := d.edges[ei]
			for _, o := range rep[e.class].Obs {
				correction[o] = !correction[o]
			}
			if e.u == cur {
				cur = e.v
			} else {
				cur = e.u
			}
		}
	}
	return correction, nil
}

// dijkstra computes shortest paths from s over the decoding graph with
// the given per-class weights.
func (d *MWPM) dijkstra(s int, weight []float64, nv int) ([]float64, []int) {
	dist := make([]float64, nv)
	prev := make([]int, nv)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[s] = 0
	pq := &floatHeap{{0, s}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, ei := range d.adj[it.v] {
			e := d.edges[ei]
			to := e.u
			if to == it.v {
				to = e.v
			}
			nd := it.d + weight[e.class]
			if nd < dist[to] {
				dist[to] = nd
				prev[to] = ei
				heap.Push(pq, heapItem{nd, to})
			}
		}
	}
	return dist, prev
}

type heapItem struct {
	d float64
	v int
}

type floatHeap []heapItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
