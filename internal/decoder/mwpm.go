package decoder

import (
	"fmt"
	"math"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// weightScale quantizes -log-probability weights into the integer domain
// of the blossom matcher.
const weightScale = 1000.0

// MWPM is the flagged minimum-weight perfect-matching decoder for
// surface codes: per shot it selects a flag-conditioned representative
// from every error equivalence class, builds the weighted decoding
// graph, matches the flipped syndrome bits along shortest paths, and
// lifts the matched paths back to Pauli-frame corrections.
//
// Edge weights are fixed for an entire run except under observed flags,
// so the shortest-path trees of the flagless steady state are computed
// once per source (lazily, under a per-source sync.Once) and shared
// read-only by all workers; only flagged shots re-run Dijkstra, into
// per-worker scratch.
type MWPM struct {
	Basis css.Basis
	// UseFlags selects the flag protocol; when false the decoder is the
	// plain-MWPM baseline (PyMatching stand-in) that ignores flag bits.
	UseFlags bool
	// DisableRenorm switches off the Equation 9 probability
	// renormalization while keeping flag-conditioned representative
	// selection (an ablation knob; the paper always renormalizes).
	DisableRenorm bool

	classes []dem.Class
	pM      float64
	numObs  int
	id      string // kind+config tag attached to decode errors

	verts    []int       // vertex -> syndrome detector id
	vertOf   map[int]int // detector -> vertex
	boundary int         // boundary vertex index, or -1
	edges    []graphEdge
	adj      [][]int    // vertex -> edge ids
	empty    *dem.Class // empty-syndrome equivalence class, if any
	flagAll  []int      // every flag detector mentioned by any class

	baseRep    []dem.ProjEvent // flagless representative per class
	baseWeight []float64
	flagIndex  map[int][]int // flag detector -> class ids with members on it

	spt *sptCache // base-weight shortest-path trees, one per source
}

type graphEdge struct {
	u, v  int // vertices (v may be the boundary vertex)
	class int
}

// NewMWPM builds the decoder for one syndrome basis of a model. pM is
// the measurement misread probability used in Equation 9.
func NewMWPM(model *dem.Model, basis css.Basis, pM float64, useFlags bool) (*MWPM, error) {
	events := model.Project(basis)
	events = decompose(events, 8)
	classes := dem.BuildClasses(events)
	d := &MWPM{
		Basis:    basis,
		UseFlags: useFlags,
		classes:  classes,
		pM:       pM,
		numObs:   len(model.Circuit.Observables),
		vertOf:   map[int]int{},
		boundary: -1,
	}
	d.id = fmt.Sprintf("mwpm(basis=%c flags=%v pM=%g)", basis, useFlags, pM)
	for _, cl := range classes {
		for _, det := range cl.Dets {
			if _, ok := d.vertOf[det]; !ok {
				d.vertOf[det] = len(d.verts)
				d.verts = append(d.verts, det)
			}
		}
		if len(cl.Dets) == 1 {
			d.boundary = -2 // mark needed
		}
	}
	if d.boundary == -2 {
		d.boundary = len(d.verts)
	}
	nv := len(d.verts)
	if d.boundary >= 0 {
		nv++
	}
	d.adj = make([][]int, nv)
	for ci, cl := range classes {
		var u, v int
		switch len(cl.Dets) {
		case 0:
			d.empty = &classes[ci]
			continue
		case 1:
			u, v = d.vertOf[cl.Dets[0]], d.boundary
		case 2:
			u, v = d.vertOf[cl.Dets[0]], d.vertOf[cl.Dets[1]]
		default:
			return nil, fmt.Errorf("decoder: class with %d dets survived decomposition", len(cl.Dets))
		}
		ei := len(d.edges)
		d.edges = append(d.edges, graphEdge{u: u, v: v, class: ci})
		d.adj[u] = append(d.adj[u], ei)
		d.adj[v] = append(d.adj[v], ei)
	}
	d.flagAll = collectFlagList(classes)
	// Flagless base representatives and weights.
	d.baseRep = make([]dem.ProjEvent, len(classes))
	d.baseWeight = make([]float64, len(classes))
	d.flagIndex = map[int][]int{}
	for ci := range classes {
		rep, p := classes[ci].Representative(nil, pM)
		d.baseRep[ci] = rep
		d.baseWeight[ci] = weightOf(p)
		seen := map[int]bool{}
		for _, m := range classes[ci].Members {
			for _, f := range m.Flags {
				if !seen[f] {
					seen[f] = true
					d.flagIndex[f] = append(d.flagIndex[f], ci)
				}
			}
		}
	}
	d.spt = newSPTCache(nv, func(s int) ([]float64, []int) {
		dist := make([]float64, nv)
		prev := make([]int, nv)
		var pq floatHeap
		dijkstraInto(s, d.baseWeight, d.edges, d.adj, dist, prev, &pq)
		return dist, prev
	})
	return d, nil
}

func weightOf(p float64) float64 {
	if p < 1e-15 {
		p = 1e-15
	}
	if p > 0.5 {
		p = 0.5
	}
	return -math.Log(p)
}

// NumClasses reports the equivalence-class count (for diagnostics).
func (d *MWPM) NumClasses() int { return len(d.classes) }

// Decode maps a shot's detector bits to predicted observable flips.
// detBit must return whether detector id fired. It allocates a private
// scratch per call; hot loops should hold a DecodeScratch and call
// DecodeWith.
func (d *MWPM) Decode(detBit func(int) bool) ([]bool, error) {
	return d.DecodeWith(NewScratch(), detBit)
}

// DecodeWith is Decode drawing every per-shot buffer from sc. The
// returned slice aliases sc and is valid until sc's next use. Panics
// from the matching layer are recovered into returned errors.
//
//fpn:hotpath
func (d *MWPM) DecodeWith(sc *DecodeScratch, detBit func(int) bool) (corr []bool, err error) {
	defer annotateErr(d.id, &err)
	defer Recover(&err)
	sc.reset(d.numObs)
	correction := sc.correction
	// Flipped syndrome vertices and observed flags.
	for vi, det := range d.verts {
		if detBit(det) {
			sc.src = append(sc.src, vi)
		}
	}
	src := sc.src
	if d.UseFlags {
		// The unflagged baseline skips flag bookkeeping entirely: no flag
		// reads, no flag-set bookkeeping, no per-class reweighting.
		for _, f := range d.flagAll {
			if detBit(f) {
				sc.flags.Add(f)
			}
		}
	}
	nFlags := sc.flags.Len()
	if len(src) == 0 {
		// No parity check fired: the only possible explanations live in
		// the empty-syndrome equivalence class (flag-only propagation
		// errors) or are "no error".
		if d.UseFlags {
			applyEmptyClass(d.empty, &sc.flags, correction)
		}
		return correction, nil
	}
	// Per-shot class representatives and weights.
	rep := d.baseRep
	weight := d.baseWeight
	if nFlags > 0 {
		rep, weight = sc.ensureClassOverlay(len(d.classes))
		copy(rep, d.baseRep)
		wM := weightOf(d.pM)
		for ci := range d.classes {
			// Default: flagless representative at diff |F|; Equation 9
			// gives weight |F|·wM + (|σ|−1)·(−log π).
			exp := float64(len(d.classes[ci].Dets) - 1)
			if exp < 1 {
				exp = 1
			}
			weight[ci] = d.baseWeight[ci]*exp + float64(nFlags)*wM
		}
		// Classes with members touching an observed flag re-select their
		// representative against the actual flag set.
		for _, f := range sc.flags.Flags() {
			for _, ci := range d.flagIndex[f] {
				sc.adjusted.add(ci)
			}
		}
		for _, ci := range sc.adjusted.keys() {
			r, p := d.classes[ci].Representative(&sc.flags, d.pM)
			rep[ci] = r
			weight[ci] = weightOf(p)
		}
		if d.DisableRenorm {
			for ci := range d.classes {
				weight[ci] = weightOf(rep[ci].P)
			}
		}
	}
	nv := len(d.adj)
	if d.boundary < 0 && len(src)%2 != 0 {
		return nil, fmt.Errorf("decoder: odd syndrome weight %d on a closed code", len(src))
	}
	// Shortest-path trees from each source: cached for the flagless
	// steady state, per-shot Dijkstra into scratch under observed flags.
	k := len(src)
	dist, prevEdge := sc.ensureTreeTables(k)
	if nFlags > 0 {
		sc.dij.ensure(k, nv)
		for i, s := range src {
			di, pi := sc.dij.row(i)
			dijkstraInto(s, weight, d.edges, d.adj, di, pi, &sc.dij.heap)
			dist[i], prevEdge[i] = di, pi
		}
	} else {
		for i, s := range src {
			dist[i], prevEdge[i] = d.spt.tree(s)
		}
	}
	// Matching instance: real nodes 0..k-1, virtual boundary nodes
	// k..2k-1 when a boundary exists.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if w := dist[i][src[j]]; !math.IsInf(w, 1) {
				sc.medges = append(sc.medges, matchEdge{i, j, w})
			}
		}
	}
	if d.boundary >= 0 {
		for i := 0; i < k; i++ {
			if w := dist[i][d.boundary]; !math.IsInf(w, 1) {
				sc.medges = append(sc.medges, matchEdge{i, k + i, w})
			}
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				sc.medges = append(sc.medges, matchEdge{k + i, k + j, 0})
			}
		}
	}
	total := k
	if d.boundary >= 0 {
		total = 2 * k
	}
	mate, err := minWeightPerfectWS(sc, total, sc.medges)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		j := mate[i]
		if j < i && j < k {
			continue // handled from the other side
		}
		var target int
		if j < k {
			target = src[j]
		} else if j == k+i {
			target = d.boundary
		} else {
			return nil, fmt.Errorf("decoder: real node matched to foreign virtual node")
		}
		// Walk the shortest-path tree of source i from target back.
		cur := target
		for cur != src[i] {
			ei := prevEdge[i][cur]
			if ei < 0 {
				return nil, fmt.Errorf("decoder: broken shortest-path tree")
			}
			e := d.edges[ei]
			for _, o := range rep[e.class].Obs {
				correction[o] = !correction[o]
			}
			if e.u == cur {
				cur = e.v
			} else {
				cur = e.u
			}
		}
	}
	return correction, nil
}

// dijkstraInto computes shortest paths from s over a decoding graph
// with per-class weights, writing into caller-provided rows (resized by
// the caller to the vertex count). pq is reset and reused.
func dijkstraInto(s int, weight []float64, edges []graphEdge, adj [][]int, dist []float64, prev []int, pq *floatHeap) {
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[s] = 0
	*pq = (*pq)[:0]
	pq.push(heapItem{0, s})
	for len(*pq) > 0 {
		it := pq.pop()
		if it.d > dist[it.v] {
			continue
		}
		for _, ei := range adj[it.v] {
			e := edges[ei]
			to := e.u
			if to == it.v {
				to = e.v
			}
			nd := it.d + weight[e.class]
			if nd < dist[to] {
				dist[to] = nd
				prev[to] = ei
				pq.push(heapItem{nd, to})
			}
		}
	}
}

type heapItem struct {
	d float64
	v int
}

// floatHeap is a hand-rolled binary min-heap on (d, v) items. It mirrors
// container/heap's sift-up/sift-down exactly (same comparisons, same
// swap order) so pop order — and therefore every tie-broken shortest
// path — is identical to the former heap.Push/heap.Pop code, without
// the per-push interface boxing allocation.
type floatHeap []heapItem

func (h *floatHeap) push(it heapItem) {
	*h = append(*h, it)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].d < s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *floatHeap) pop() heapItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].d < s[j].d {
			j = j2
		}
		if !(s[j].d < s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}
