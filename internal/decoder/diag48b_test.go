package decoder

import (
	"fmt"
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// How many of the 48-qubit restriction failures are ambiguous at the
// Z-projection level (same Z-dets and flags, different obs)?
func TestDiag48ProjectedAmbiguity(t *testing.T) {
	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == "color" && e.Code.N == 48 {
			code = e.Code
		}
	}
	if code == nil {
		t.Skip("no 48 code")
	}
	if testing.Short() {
		t.Skip("slow regression probe")
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 4, 1e-3)
	projKey := func(zdets, flags []int) string {
		return fmt.Sprint(zdets, "|", flags)
	}
	byKey := map[string]map[string]bool{}
	for _, ev := range model.Events {
		var zdets []int
		for _, d := range ev.Dets {
			if model.Circuit.Detectors[d].Basis == css.Z {
				zdets = append(zdets, d)
			}
		}
		k := projKey(zdets, ev.Flags)
		if byKey[k] == nil {
			byKey[k] = map[string]bool{}
		}
		byKey[k][fmt.Sprint(ev.Obs)] = true
	}
	projAmb := map[string]bool{}
	for k, obsSet := range byKey {
		if len(obsSet) > 1 {
			projAmb[k] = true
		}
	}
	dec, err := NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := 0, 0, 0
	for _, ev := range model.Events {
		var zdets []int
		for _, d := range ev.Dets {
			if model.Circuit.Detectors[d].Basis == css.Z {
				zdets = append(zdets, d)
			}
		}
		if len(zdets) == 0 && len(ev.Obs) == 0 {
			continue
		}
		total++
		corr, err := dec.Decode(detBitFromEvent(ev))
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for o := range corr {
			want := false
			for _, x := range ev.Obs {
				if x == o {
					want = true
				}
			}
			if corr[o] != want {
				ok = false
			}
		}
		if !ok {
			fails++
			if projAmb[projKey(zdets, ev.Flags)] {
				ambFails++
			}
		}
	}
	t.Logf("failures %d/%d, projection-ambiguous %d", fails, total, ambFails)
	if fails > ambFails {
		t.Fatalf("flagged restriction failed %d projection-unambiguous single faults on [[48,8,4]]", fails-ambFails)
	}
}
