package decoder

import (
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// maskedMWPM wraps an MWPM decoder with one flag detector forced to 0,
// emulating an architecture that does not measure that flag.
type maskedMWPM struct {
	d    *MWPM
	flag int
}

func (m maskedMWPM) Decode(detBit func(int) bool) ([]bool, error) {
	return m.d.Decode(func(det int) bool {
		if det == m.flag {
			return false
		}
		return detBit(det)
	})
}

// OperationallyRedundantFlags measures flag overuse (the paper's
// Figure 5 discussion) operationally: a flag detector is redundant if
// masking its measurement changes no single-fault decoding outcome.
// Only faults whose classes mention the flag are re-decoded, so the
// probe is cheap. The result is the sorted list of redundant flag
// detectors of the given basis graph.
func OperationallyRedundantFlags(model *dem.Model, basis css.Basis, pM float64) ([]int, error) {
	base, err := NewMWPM(model, basis, pM, true)
	if err != nil {
		return nil, err
	}
	// Events to probe per flag: any event whose footprint mentions it.
	byFlag := map[int][]dem.Event{}
	for _, ev := range model.Events {
		rel := false
		for _, d := range ev.Dets {
			if model.Circuit.Detectors[d].Basis == basis {
				rel = true
			}
		}
		if !rel {
			continue
		}
		for _, f := range ev.Flags {
			byFlag[f] = append(byFlag[f], ev)
		}
	}
	detBitOf := func(ev dem.Event) func(int) bool {
		set := map[int]bool{}
		for _, d := range ev.Dets {
			set[d] = true
		}
		for _, f := range ev.Flags {
			set[f] = true
		}
		return func(d int) bool { return set[d] }
	}
	var redundant []int
	//fpnvet:orderless each flag is judged independently; redundant is sorted after the loop
	for f, events := range byFlag {
		masked := maskedMWPM{d: base, flag: f}
		same := true
		for _, ev := range events {
			bit := detBitOf(ev)
			c1, err1 := base.Decode(bit)
			c2, err2 := masked.Decode(bit)
			if (err1 == nil) != (err2 == nil) {
				same = false
				break
			}
			if err1 != nil {
				continue
			}
			for o := range c1 {
				if c1[o] != c2[o] {
					same = false
					break
				}
			}
			if !same {
				break
			}
		}
		if same {
			redundant = append(redundant, f)
		}
	}
	sort.Ints(redundant)
	return redundant, nil
}
