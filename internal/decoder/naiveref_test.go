package decoder

// Naive reference decoders: byte-for-byte copies of the pre-optimization
// Decode bodies (container/heap Dijkstra per shot, fresh allocations
// everywhere, package-level blossom matching). The differential harness
// asserts the cached/scratch hot paths are bit-identical to these.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/gf2"
)

// refHeap is the old container/heap priority queue.
type refHeap []heapItem

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refDijkstra is the old MWPM.dijkstra: fresh slices, container/heap.
func refDijkstra(edges []graphEdge, adj [][]int, s int, weight []float64, nv int) ([]float64, []int) {
	dist := make([]float64, nv)
	prev := make([]int, nv)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[s] = 0
	pq := &refHeap{{0, s}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, ei := range adj[it.v] {
			e := edges[ei]
			to := e.u
			if to == it.v {
				to = e.v
			}
			nd := it.d + weight[e.class]
			if nd < dist[to] {
				dist[to] = nd
				prev[to] = ei
				heap.Push(pq, heapItem{nd, to})
			}
		}
	}
	return dist, prev
}

// naiveMWPMDecode is the pre-optimization MWPM.Decode.
func naiveMWPMDecode(d *MWPM, detBit func(int) bool) ([]bool, error) {
	var src []int
	for vi, det := range d.verts {
		if detBit(det) {
			src = append(src, vi)
		}
	}
	correction := make([]bool, d.numObs)
	flags := &dem.FlagSet{}
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				flags.Add(f)
			}
		}
	}
	nFlags := flags.Len()
	if len(src) == 0 {
		if d.UseFlags {
			applyEmptyClass(d.empty, flags, correction)
		}
		return correction, nil
	}
	rep := d.baseRep
	weight := d.baseWeight
	if nFlags > 0 {
		rep = make([]dem.ProjEvent, len(d.classes))
		weight = make([]float64, len(d.classes))
		copy(rep, d.baseRep)
		wM := weightOf(d.pM)
		for ci := range d.classes {
			exp := float64(len(d.classes[ci].Dets) - 1)
			if exp < 1 {
				exp = 1
			}
			weight[ci] = d.baseWeight[ci]*exp + float64(nFlags)*wM
		}
		adjusted := map[int]bool{}
		for _, f := range flags.Flags() {
			for _, ci := range d.flagIndex[f] {
				adjusted[ci] = true
			}
		}
		for ci := range adjusted {
			r, p := d.classes[ci].Representative(flags, d.pM)
			rep[ci] = r
			weight[ci] = weightOf(p)
		}
		if d.DisableRenorm {
			for ci := range d.classes {
				weight[ci] = weightOf(rep[ci].P)
			}
		}
	}
	nv := len(d.adj)
	if d.boundary < 0 && len(src)%2 != 0 {
		return nil, fmt.Errorf("decoder: odd syndrome weight %d on a closed code", len(src))
	}
	dist := make([][]float64, len(src))
	prevEdge := make([][]int, len(src))
	for i, s := range src {
		dist[i], prevEdge[i] = refDijkstra(d.edges, d.adj, s, weight, nv)
	}
	k := len(src)
	var medges []matchEdge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if w := dist[i][src[j]]; !math.IsInf(w, 1) {
				medges = append(medges, matchEdge{i, j, w})
			}
		}
	}
	if d.boundary >= 0 {
		for i := 0; i < k; i++ {
			if w := dist[i][d.boundary]; !math.IsInf(w, 1) {
				medges = append(medges, matchEdge{i, k + i, w})
			}
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				medges = append(medges, matchEdge{k + i, k + j, 0})
			}
		}
	}
	total := k
	if d.boundary >= 0 {
		total = 2 * k
	}
	mate, err := minWeightPerfect(total, medges)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		j := mate[i]
		if j < i && j < k {
			continue
		}
		var target int
		if j < k {
			target = src[j]
		} else if j == k+i {
			target = d.boundary
		} else {
			return nil, fmt.Errorf("decoder: real node matched to foreign virtual node")
		}
		cur := target
		for cur != src[i] {
			ei := prevEdge[i][cur]
			if ei < 0 {
				return nil, fmt.Errorf("decoder: broken shortest-path tree")
			}
			e := d.edges[ei]
			for _, o := range rep[e.class].Obs {
				correction[o] = !correction[o]
			}
			if e.u == cur {
				cur = e.v
			} else {
				cur = e.u
			}
		}
	}
	return correction, nil
}

// naiveRestrictionDecode is the pre-optimization Restriction.Decode.
func naiveRestrictionDecode(d *Restriction, detBit func(int) bool) ([]bool, error) {
	correction := make([]bool, d.numObs)
	var flipped []int
	for det := range d.detColor {
		if detBit(det) {
			flipped = append(flipped, det)
		}
	}
	sort.Ints(flipped)
	flags := &dem.FlagSet{}
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				flags.Add(f)
			}
		}
	}
	nFlags := flags.Len()
	if len(flipped) == 0 {
		if d.UseFlags && d.FlagLifting {
			applyEmptyClass(d.empty, flags, correction)
		}
		return correction, nil
	}
	rep := d.baseRep
	weight := d.baseWeight
	if nFlags > 0 {
		rep = make([]dem.ProjEvent, len(d.classes))
		weight = make([]float64, len(d.classes))
		copy(rep, d.baseRep)
		wM := weightOf(d.pM)
		for ci := range d.classes {
			weight[ci] = d.baseWeight[ci] + float64(nFlags)*wM
		}
		adjusted := map[int]bool{}
		for _, f := range flags.Flags() {
			for _, ci := range d.flagIndex[f] {
				adjusted[ci] = true
			}
		}
		for ci := range adjusted {
			r, diff := d.classes[ci].Select(flags)
			rep[ci] = r
			weight[ci] = weightOf(r.P) + float64(diff)*wM
		}
	}
	em := map[int]int{}
	for li, pair := range latticePairs {
		var src []int
		for _, det := range flipped {
			c := d.detColor[det]
			if c != pair[0] && c != pair[1] {
				continue
			}
			vi, ok := d.latVertOf[li][det]
			if !ok {
				return nil, fmt.Errorf("decoder: flipped detector %d not in lattice %d", det, li)
			}
			src = append(src, vi)
		}
		if len(src) == 0 {
			continue
		}
		if len(src)%2 != 0 {
			return nil, fmt.Errorf("decoder: odd syndrome weight %d in restricted lattice %d", len(src), li)
		}
		dists := make([][]float64, len(src))
		prevs := make([][]int, len(src))
		for i, s := range src {
			dists[i], prevs[i] = refDijkstra(d.latEdges[li], d.latAdj[li], s, weight, len(d.latAdj[li]))
		}
		var medges []matchEdge
		for i := 0; i < len(src); i++ {
			for j := i + 1; j < len(src); j++ {
				if w := dists[i][src[j]]; !math.IsInf(w, 1) {
					medges = append(medges, matchEdge{i, j, w})
				}
			}
		}
		mate, err := minWeightPerfect(len(src), medges)
		if err != nil {
			return nil, fmt.Errorf("decoder: lattice %d matching: %w", li, err)
		}
		for i := range src {
			j := mate[i]
			if j < i {
				continue
			}
			cur := src[j]
			for cur != src[i] {
				ei := prevs[i][cur]
				if ei < 0 {
					return nil, fmt.Errorf("decoder: broken path in lattice %d", li)
				}
				e := d.latEdges[li][ei]
				em[e.class]++
				if e.u == cur {
					cur = e.v
				} else {
					cur = e.u
				}
			}
		}
	}
	applyClass := func(ci int) {
		r := rep[ci]
		if !d.FlagLifting {
			r = d.baseRep[ci]
		}
		for _, o := range r.Obs {
			correction[o] = !correction[o]
		}
	}
	applied := map[int]bool{}
	if d.FlagLifting {
		for ci, count := range em {
			if count >= 2 && len(rep[ci].Flags) > 0 {
				applyClass(ci)
				applied[ci] = true
				delete(em, ci)
			}
		}
	}
	for ci, count := range em {
		if count >= 2 {
			applyClass(ci)
			applied[ci] = true
			delete(em, ci)
		}
	}
	residual := map[int]bool{}
	for _, det := range flipped {
		residual[det] = true
	}
	for ci := range applied {
		for _, det := range d.classes[ci].Dets {
			toggle(residual, det)
		}
	}
	if len(residual) > 0 {
		cover := d.coverResidual(residual, em, applied, weight)
		for _, ci := range cover {
			applyClass(ci)
		}
	}
	return correction, nil
}

func refNewUF(n int) *uf {
	u := &uf{parent: make([]int, n), rank: make([]int, n), parity: make([]int, n), bound: make([]bool, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// naiveUnionFindDecode is the pre-optimization UnionFind.Decode.
func naiveUnionFindDecode(d *UnionFind, detBit func(int) bool) ([]bool, error) {
	correction := make([]bool, d.numObs)
	defect := make([]bool, len(d.adj))
	var defects []int
	for vi, det := range d.verts {
		if detBit(det) {
			defect[vi] = true
			defects = append(defects, vi)
		}
	}
	flags := &dem.FlagSet{}
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				flags.Add(f)
			}
		}
	}
	nFlags := flags.Len()
	if len(defects) == 0 {
		if d.UseFlags {
			applyEmptyClass(d.empty, flags, correction)
		}
		return correction, nil
	}
	rep := d.baseRep
	if nFlags > 0 {
		rep = make([]dem.ProjEvent, len(d.classes))
		copy(rep, d.baseRep)
		adjusted := map[int]bool{}
		for _, f := range flags.Flags() {
			for _, ci := range d.flagIndex[f] {
				adjusted[ci] = true
			}
		}
		for ci := range adjusted {
			r, _ := d.classes[ci].Representative(flags, d.pM)
			rep[ci] = r
		}
	}
	u := refNewUF(len(d.adj))
	for _, v := range defects {
		u.parity[v] = 1
	}
	if d.boundary >= 0 {
		u.bound[d.boundary] = true
	}
	growth := make([]int, len(d.edges))
	inCluster := make([]bool, len(d.adj))
	for _, v := range defects {
		inCluster[v] = true
	}
	grownEdges := []int{}
	for stage := 0; stage < 2*len(d.edges)+2; stage++ {
		active := false
		var toGrow []int
		for ei, e := range d.edges {
			if growth[ei] >= 2 {
				continue
			}
			uIn := inCluster[e.u] && !u.neutral(e.u)
			vIn := inCluster[e.v] && !u.neutral(e.v)
			if uIn || vIn {
				toGrow = append(toGrow, ei)
			}
		}
		for _, ei := range toGrow {
			e := d.edges[ei]
			growth[ei]++
			if growth[ei] == 2 {
				inCluster[e.u] = true
				inCluster[e.v] = true
				u.union(e.u, e.v)
				grownEdges = append(grownEdges, ei)
			}
			active = true
		}
		if !active {
			break
		}
		allNeutral := true
		for _, v := range defects {
			if !u.neutral(v) {
				allNeutral = false
				break
			}
		}
		if allNeutral {
			break
		}
	}
	for _, v := range defects {
		if !u.neutral(v) {
			return nil, fmt.Errorf("decoder: union-find failed to neutralize all clusters")
		}
	}
	sort.Ints(grownEdges)
	treeAdj := make([][]int, len(d.adj))
	for _, ei := range grownEdges {
		e := d.edges[ei]
		treeAdj[e.u] = append(treeAdj[e.u], ei)
		treeAdj[e.v] = append(treeAdj[e.v], ei)
	}
	visited := make([]bool, len(d.adj))
	var order []int
	parentEdge := make([]int, len(d.adj))
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	bfs := func(root int) {
		if visited[root] {
			return
		}
		visited[root] = true
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ei := range treeAdj[v] {
				e := d.edges[ei]
				to := e.u
				if to == v {
					to = e.v
				}
				if !visited[to] {
					visited[to] = true
					parentEdge[to] = ei
					queue = append(queue, to)
				}
			}
		}
	}
	if d.boundary >= 0 {
		bfs(d.boundary)
	}
	for _, v := range defects {
		bfs(v)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if !defect[v] || parentEdge[v] < 0 {
			continue
		}
		ei := parentEdge[v]
		e := d.edges[ei]
		to := e.u
		if to == v {
			to = e.v
		}
		for _, o := range rep[e.class].Obs {
			correction[o] = !correction[o]
		}
		defect[v] = false
		if to != d.boundary {
			defect[to] = !defect[to]
		}
	}
	for _, v := range defects {
		if defect[v] {
			return nil, fmt.Errorf("decoder: peeling left an unmatched defect")
		}
	}
	return correction, nil
}

// naiveBPOSDDecode is the pre-optimization BPOSD.Decode.
func naiveBPOSDDecode(d *BPOSD, detBit func(int) bool) ([]bool, error) {
	correction := make([]bool, d.numObs)
	syndrome := make([]bool, len(d.dets))
	any := false
	for r, det := range d.dets {
		if detBit(det) {
			syndrome[r] = true
			any = true
		}
	}
	if !any {
		return correction, nil
	}
	nv := len(d.varDet)
	v2c := make([][]float64, nv)
	c2v := make([][]float64, nv)
	priorLLR := make([]float64, nv)
	for v := 0; v < nv; v++ {
		priorLLR[v] = math.Log((1 - d.prior[v]) / d.prior[v])
		v2c[v] = make([]float64, len(d.varDet[v]))
		c2v[v] = make([]float64, len(d.varDet[v]))
		for k := range v2c[v] {
			v2c[v][k] = priorLLR[v]
		}
	}
	rowVars := make([][]slotRef, len(d.dets))
	for v := 0; v < nv; v++ {
		for k, r := range d.varDet[v] {
			rowVars[r] = append(rowVars[r], slotRef{v, k})
		}
	}
	posterior := make([]float64, nv)
	hard := make([]bool, nv)
	for iter := 0; iter < d.Iters; iter++ {
		for r, refs := range rowVars {
			sign := 1.0
			if syndrome[r] {
				sign = -1.0
			}
			min1, min2 := math.Inf(1), math.Inf(1)
			arg1 := -1
			prod := sign
			for i, ref := range refs {
				m := v2c[ref.v][ref.k]
				if m < 0 {
					prod = -prod
				}
				a := math.Abs(m)
				if a < min1 {
					min2 = min1
					min1 = a
					arg1 = i
				} else if a < min2 {
					min2 = a
				}
			}
			for i, ref := range refs {
				mag := min1
				if i == arg1 {
					mag = min2
				}
				s := prod
				if v2c[ref.v][ref.k] < 0 {
					s = -s
				}
				c2v[ref.v][ref.k] = 0.75 * s * mag
			}
		}
		satisfied := true
		for v := 0; v < nv; v++ {
			total := priorLLR[v]
			for k := range c2v[v] {
				total += c2v[v][k]
			}
			posterior[v] = total
			hard[v] = total < 0
			for k := range v2c[v] {
				v2c[v][k] = total - c2v[v][k]
			}
		}
		for r, refs := range rowVars {
			par := false
			for _, ref := range refs {
				if hard[ref.v] {
					par = !par
				}
			}
			if par != syndrome[r] {
				satisfied = false
				break
			}
		}
		if satisfied {
			for v := 0; v < nv; v++ {
				if hard[v] {
					for _, o := range d.varObs[v] {
						correction[o] = !correction[o]
					}
				}
			}
			return correction, nil
		}
	}
	order := make([]int, nv)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return posterior[order[i]] < posterior[order[j]] })
	perm := gf2.NewMatrix(d.h.Rows(), nv)
	for newCol, v := range order {
		for _, r := range d.varDet[v] {
			perm.Set(r, newCol, true)
		}
	}
	s := gf2.NewVec(d.h.Rows())
	for r, bit := range syndrome {
		if bit {
			s.Set(r, true)
		}
	}
	sol, ok := gf2.Solve(perm, s)
	if !ok {
		for v := 0; v < nv; v++ {
			if hard[v] {
				for _, o := range d.varObs[v] {
					correction[o] = !correction[o]
				}
			}
		}
		return correction, nil
	}
	for _, newCol := range sol.Support() {
		v := order[newCol]
		for _, o := range d.varObs[v] {
			correction[o] = !correction[o]
		}
	}
	return correction, nil
}
