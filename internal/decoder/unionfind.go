package decoder

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// UnionFind is a Delfosse–Nickerson style union-find decoder operating
// on the same projected decoding graph as the flagged MWPM decoder. It
// trades accuracy for near-linear decoding time, and — as an extension
// of the paper's flag protocol — it still selects flag-conditioned Pauli
// frames during peeling, so it benefits from flag measurements without
// paying the matching cost.
type UnionFind struct {
	Basis    css.Basis
	UseFlags bool

	classes []dem.Class
	pM      float64
	numObs  int
	id      string // kind+config tag attached to decode errors

	verts    []int
	vertOf   map[int]int
	boundary int // boundary vertex index, or -1
	edges    []graphEdge
	adj      [][]int

	baseRep   []dem.ProjEvent
	flagIndex map[int][]int
	empty     *dem.Class // empty-syndrome equivalence class, if any
	flagAll   []int      // every flag detector mentioned by any class
}

// NewUnionFind builds the decoder for one syndrome basis.
func NewUnionFind(model *dem.Model, basis css.Basis, pM float64, useFlags bool) (*UnionFind, error) {
	events := model.Project(basis)
	events = decompose(events, 8)
	classes := dem.BuildClasses(events)
	d := &UnionFind{
		Basis:    basis,
		UseFlags: useFlags,
		classes:  classes,
		pM:       pM,
		numObs:   len(model.Circuit.Observables),
		vertOf:   map[int]int{},
		boundary: -1,
	}
	d.id = fmt.Sprintf("unionfind(basis=%c flags=%v pM=%g)", basis, useFlags, pM)
	needBoundary := false
	for _, cl := range classes {
		for _, det := range cl.Dets {
			if _, ok := d.vertOf[det]; !ok {
				d.vertOf[det] = len(d.verts)
				d.verts = append(d.verts, det)
			}
		}
		if len(cl.Dets) == 1 {
			needBoundary = true
		}
	}
	if needBoundary {
		d.boundary = len(d.verts)
	}
	nv := len(d.verts)
	if d.boundary >= 0 {
		nv++
	}
	d.adj = make([][]int, nv)
	for ci, cl := range classes {
		var u, v int
		switch len(cl.Dets) {
		case 0:
			d.empty = &classes[ci]
			continue
		case 1:
			u, v = d.vertOf[cl.Dets[0]], d.boundary
		case 2:
			u, v = d.vertOf[cl.Dets[0]], d.vertOf[cl.Dets[1]]
		default:
			return nil, fmt.Errorf("decoder: class with %d dets survived decomposition", len(cl.Dets))
		}
		ei := len(d.edges)
		d.edges = append(d.edges, graphEdge{u: u, v: v, class: ci})
		d.adj[u] = append(d.adj[u], ei)
		d.adj[v] = append(d.adj[v], ei)
	}
	d.flagAll = collectFlagList(classes)
	d.baseRep = make([]dem.ProjEvent, len(classes))
	d.flagIndex = map[int][]int{}
	for ci := range classes {
		rep, _ := classes[ci].Representative(nil, pM)
		d.baseRep[ci] = rep
		seen := map[int]bool{}
		for _, m := range classes[ci].Members {
			for _, f := range m.Flags {
				if !seen[f] {
					seen[f] = true
					d.flagIndex[f] = append(d.flagIndex[f], ci)
				}
			}
		}
	}
	return d, nil
}

// uf is a union-find forest over graph vertices with cluster metadata.
// Its slices are borrowed from a ufScratch, so the forest itself carries
// no allocation.
type uf struct {
	parent []int
	rank   []int
	parity []int  // number of unmatched defects in the cluster, mod 2
	bound  []bool // cluster touches the boundary
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.parity[ra] ^= u.parity[rb]
	u.bound[ra] = u.bound[ra] || u.bound[rb]
	return ra
}

// neutral reports whether the cluster of x needs no further growth.
func (u *uf) neutral(x int) bool {
	r := u.find(x)
	return u.parity[r] == 0 || u.bound[r]
}

// Decode maps detector bits to predicted observable flips. It allocates
// a private scratch per call; hot loops should hold a DecodeScratch and
// call DecodeWith.
func (d *UnionFind) Decode(detBit func(int) bool) ([]bool, error) {
	return d.DecodeWith(NewScratch(), detBit)
}

// DecodeWith is Decode drawing every per-shot buffer from sc. The
// returned slice aliases sc and is valid until sc's next use. Internal
// panics are recovered into returned errors.
//
//fpn:hotpath
func (d *UnionFind) DecodeWith(sc *DecodeScratch, detBit func(int) bool) (corr []bool, err error) {
	defer annotateErr(d.id, &err)
	defer Recover(&err)
	sc.reset(d.numObs)
	us := &sc.uf
	correction := sc.correction
	nv := len(d.adj)
	us.defect = growBools(us.defect, nv)
	for i := range us.defect {
		us.defect[i] = false
	}
	defect := us.defect
	us.defects = us.defects[:0]
	for vi, det := range d.verts {
		if detBit(det) {
			defect[vi] = true
			us.defects = append(us.defects, vi)
		}
	}
	defects := us.defects
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				sc.flags.Add(f)
			}
		}
	}
	if len(defects) == 0 {
		// Flag-only shots decode through the empty-syndrome class.
		if d.UseFlags {
			applyEmptyClass(d.empty, &sc.flags, correction)
		}
		return correction, nil
	}
	rep := d.baseRep
	if sc.flags.Len() > 0 {
		rep, _ = sc.ensureClassOverlay(len(d.classes))
		copy(rep, d.baseRep)
		for _, f := range sc.flags.Flags() {
			for _, ci := range d.flagIndex[f] {
				sc.adjusted.add(ci)
			}
		}
		for _, ci := range sc.adjusted.keys() {
			r, _ := d.classes[ci].Representative(&sc.flags, d.pM)
			rep[ci] = r
		}
	}

	us.parent = growInts(us.parent, nv)
	us.rank = growInts(us.rank, nv)
	us.parity = growInts(us.parity, nv)
	us.bound = growBools(us.bound, nv)
	for i := 0; i < nv; i++ {
		us.parent[i] = i
		us.rank[i] = 0
		us.parity[i] = 0
		us.bound[i] = false
	}
	u := uf{parent: us.parent, rank: us.rank, parity: us.parity, bound: us.bound}
	for _, v := range defects {
		u.parity[v] = 1
	}
	if d.boundary >= 0 {
		u.bound[d.boundary] = true
	}
	// Edge growth: 0 (untouched), 1 (half), 2 (grown). Grow all edges on
	// the frontier of non-neutral clusters by one half-step per stage.
	us.growth = growInts(us.growth, len(d.edges))
	for i := range us.growth {
		us.growth[i] = 0
	}
	growth := us.growth
	us.inCluster = growBools(us.inCluster, nv)
	for i := range us.inCluster {
		us.inCluster[i] = false
	}
	inCluster := us.inCluster
	for _, v := range defects {
		inCluster[v] = true
	}
	us.grownEdges = us.grownEdges[:0]
	for stage := 0; stage < 2*len(d.edges)+2; stage++ {
		active := false
		us.toGrow = us.toGrow[:0]
		for ei, e := range d.edges {
			if growth[ei] >= 2 {
				continue
			}
			uIn := inCluster[e.u] && !u.neutral(e.u)
			vIn := inCluster[e.v] && !u.neutral(e.v)
			if uIn || vIn {
				us.toGrow = append(us.toGrow, ei)
			}
		}
		for _, ei := range us.toGrow {
			e := d.edges[ei]
			growth[ei]++
			if growth[ei] == 2 {
				inCluster[e.u] = true
				inCluster[e.v] = true
				u.union(e.u, e.v)
				us.grownEdges = append(us.grownEdges, ei)
			}
			active = true
		}
		if !active {
			break
		}
		allNeutral := true
		for _, v := range defects {
			if !u.neutral(v) {
				allNeutral = false
				break
			}
		}
		if allNeutral {
			break
		}
	}
	for _, v := range defects {
		if !u.neutral(v) {
			return nil, fmt.Errorf("decoder: union-find failed to neutralize all clusters")
		}
	}
	// Peeling: build a spanning forest of the grown subgraph, rooted at
	// the boundary where available, and peel leaves inward.
	grownEdges := us.grownEdges
	sort.Ints(grownEdges)
	if len(us.treeAdj) < nv {
		us.treeAdj = append(us.treeAdj, make([][]int, nv-len(us.treeAdj))...)
	}
	treeAdj := us.treeAdj
	for _, ei := range grownEdges {
		e := d.edges[ei]
		treeAdj[e.u] = treeAdj[e.u][:0]
		treeAdj[e.v] = treeAdj[e.v][:0]
	}
	for _, ei := range grownEdges {
		e := d.edges[ei]
		treeAdj[e.u] = append(treeAdj[e.u], ei)
		treeAdj[e.v] = append(treeAdj[e.v], ei)
	}
	us.visited = growBools(us.visited, nv)
	for i := range us.visited {
		us.visited[i] = false
	}
	visited := us.visited
	us.order = us.order[:0]
	us.parentEdge = growInts(us.parentEdge, nv)
	for i := range us.parentEdge {
		us.parentEdge[i] = -1
	}
	parentEdge := us.parentEdge
	bfs := func(root int) {
		if visited[root] {
			return
		}
		visited[root] = true
		us.queue = us.queue[:0]
		us.queue = append(us.queue, root)
		for head := 0; head < len(us.queue); head++ {
			v := us.queue[head]
			us.order = append(us.order, v)
			for _, ei := range treeAdj[v] {
				e := d.edges[ei]
				to := e.u
				if to == v {
					to = e.v
				}
				if !visited[to] {
					visited[to] = true
					parentEdge[to] = ei
					us.queue = append(us.queue, to)
				}
			}
		}
	}
	if d.boundary >= 0 {
		bfs(d.boundary)
	}
	for _, v := range defects {
		bfs(v)
	}
	// Peel from the leaves (reverse BFS order): a defective vertex sends
	// its defect up its parent edge, applying that edge's Pauli frames.
	order := us.order
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if !defect[v] || parentEdge[v] < 0 {
			continue
		}
		ei := parentEdge[v]
		e := d.edges[ei]
		to := e.u
		if to == v {
			to = e.v
		}
		for _, o := range rep[e.class].Obs {
			correction[o] = !correction[o]
		}
		defect[v] = false
		if to != d.boundary {
			defect[to] = !defect[to]
		}
	}
	for _, v := range defects {
		if defect[v] {
			return nil, fmt.Errorf("decoder: peeling left an unmatched defect")
		}
	}
	return correction, nil
}
