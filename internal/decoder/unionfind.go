package decoder

import (
	"fmt"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// UnionFind is a Delfosse–Nickerson style union-find decoder operating
// on the same projected decoding graph as the flagged MWPM decoder. It
// trades accuracy for near-linear decoding time, and — as an extension
// of the paper's flag protocol — it still selects flag-conditioned Pauli
// frames during peeling, so it benefits from flag measurements without
// paying the matching cost.
type UnionFind struct {
	Basis    css.Basis
	UseFlags bool

	classes []dem.Class
	pM      float64
	numObs  int

	verts    []int
	vertOf   map[int]int
	boundary int // boundary vertex index, or -1
	edges    []graphEdge
	adj      [][]int

	baseRep   []dem.ProjEvent
	flagIndex map[int][]int
	empty     *dem.Class // empty-syndrome equivalence class, if any
	flagAll   []int      // every flag detector mentioned by any class
}

// NewUnionFind builds the decoder for one syndrome basis.
func NewUnionFind(model *dem.Model, basis css.Basis, pM float64, useFlags bool) (*UnionFind, error) {
	events := model.Project(basis)
	events = decompose(events, 8)
	classes := dem.BuildClasses(events)
	d := &UnionFind{
		Basis:    basis,
		UseFlags: useFlags,
		classes:  classes,
		pM:       pM,
		numObs:   len(model.Circuit.Observables),
		vertOf:   map[int]int{},
		boundary: -1,
	}
	needBoundary := false
	for _, cl := range classes {
		for _, det := range cl.Dets {
			if _, ok := d.vertOf[det]; !ok {
				d.vertOf[det] = len(d.verts)
				d.verts = append(d.verts, det)
			}
		}
		if len(cl.Dets) == 1 {
			needBoundary = true
		}
	}
	if needBoundary {
		d.boundary = len(d.verts)
	}
	nv := len(d.verts)
	if d.boundary >= 0 {
		nv++
	}
	d.adj = make([][]int, nv)
	for ci, cl := range classes {
		var u, v int
		switch len(cl.Dets) {
		case 0:
			d.empty = &classes[ci]
			continue
		case 1:
			u, v = d.vertOf[cl.Dets[0]], d.boundary
		case 2:
			u, v = d.vertOf[cl.Dets[0]], d.vertOf[cl.Dets[1]]
		default:
			return nil, fmt.Errorf("decoder: class with %d dets survived decomposition", len(cl.Dets))
		}
		ei := len(d.edges)
		d.edges = append(d.edges, graphEdge{u: u, v: v, class: ci})
		d.adj[u] = append(d.adj[u], ei)
		d.adj[v] = append(d.adj[v], ei)
	}
	d.flagAll = collectFlagList(classes)
	d.baseRep = make([]dem.ProjEvent, len(classes))
	d.flagIndex = map[int][]int{}
	for ci := range classes {
		rep, _ := classes[ci].Representative(nil, 0, pM)
		d.baseRep[ci] = rep
		seen := map[int]bool{}
		for _, m := range classes[ci].Members {
			for _, f := range m.Flags {
				if !seen[f] {
					seen[f] = true
					d.flagIndex[f] = append(d.flagIndex[f], ci)
				}
			}
		}
	}
	return d, nil
}

// uf is a union-find forest over graph vertices with cluster metadata.
type uf struct {
	parent []int
	rank   []int
	parity []int  // number of unmatched defects in the cluster, mod 2
	bound  []bool // cluster touches the boundary
}

func newUF(n int) *uf {
	u := &uf{parent: make([]int, n), rank: make([]int, n), parity: make([]int, n), bound: make([]bool, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) int {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return ra
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.parity[ra] ^= u.parity[rb]
	u.bound[ra] = u.bound[ra] || u.bound[rb]
	return ra
}

// neutral reports whether the cluster of x needs no further growth.
func (u *uf) neutral(x int) bool {
	r := u.find(x)
	return u.parity[r] == 0 || u.bound[r]
}

// Decode maps detector bits to predicted observable flips.
func (d *UnionFind) Decode(detBit func(int) bool) ([]bool, error) {
	correction := make([]bool, d.numObs)
	defect := make([]bool, len(d.adj))
	var defects []int
	for vi, det := range d.verts {
		if detBit(det) {
			defect[vi] = true
			defects = append(defects, vi)
		}
	}
	flags := map[int]bool{}
	nFlags := 0
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				flags[f] = true
				nFlags++
			}
		}
	}
	if len(defects) == 0 {
		// Flag-only shots decode through the empty-syndrome class.
		if d.UseFlags {
			applyEmptyClass(d.empty, flags, nFlags, correction)
		}
		return correction, nil
	}
	rep := d.baseRep
	if nFlags > 0 {
		rep = make([]dem.ProjEvent, len(d.classes))
		copy(rep, d.baseRep)
		adjusted := map[int]bool{}
		for f := range flags {
			for _, ci := range d.flagIndex[f] {
				adjusted[ci] = true
			}
		}
		for ci := range adjusted {
			r, _ := d.classes[ci].Representative(flags, nFlags, d.pM)
			rep[ci] = r
		}
	}

	u := newUF(len(d.adj))
	for _, v := range defects {
		u.parity[v] = 1
	}
	if d.boundary >= 0 {
		u.bound[d.boundary] = true
	}
	// Edge growth: 0 (untouched), 1 (half), 2 (grown). Grow all edges on
	// the frontier of non-neutral clusters by one half-step per stage.
	growth := make([]int, len(d.edges))
	inCluster := make([]bool, len(d.adj))
	for _, v := range defects {
		inCluster[v] = true
	}
	grownEdges := []int{}
	for stage := 0; stage < 2*len(d.edges)+2; stage++ {
		active := false
		var toGrow []int
		for ei, e := range d.edges {
			if growth[ei] >= 2 {
				continue
			}
			uIn := inCluster[e.u] && !u.neutral(e.u)
			vIn := inCluster[e.v] && !u.neutral(e.v)
			if uIn || vIn {
				toGrow = append(toGrow, ei)
			}
		}
		for _, ei := range toGrow {
			e := d.edges[ei]
			growth[ei]++
			if growth[ei] == 2 {
				inCluster[e.u] = true
				inCluster[e.v] = true
				u.union(e.u, e.v)
				grownEdges = append(grownEdges, ei)
			}
			active = true
		}
		if !active {
			break
		}
		allNeutral := true
		for _, v := range defects {
			if !u.neutral(v) {
				allNeutral = false
				break
			}
		}
		if allNeutral {
			break
		}
	}
	for _, v := range defects {
		if !u.neutral(v) {
			return nil, fmt.Errorf("decoder: union-find failed to neutralize all clusters")
		}
	}
	// Peeling: build a spanning forest of the grown subgraph, rooted at
	// the boundary where available, and peel leaves inward.
	sort.Ints(grownEdges)
	treeAdj := make([][]int, len(d.adj))
	for _, ei := range grownEdges {
		e := d.edges[ei]
		treeAdj[e.u] = append(treeAdj[e.u], ei)
		treeAdj[e.v] = append(treeAdj[e.v], ei)
	}
	visited := make([]bool, len(d.adj))
	var order []int // vertices in BFS order
	parentEdge := make([]int, len(d.adj))
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	bfs := func(root int) {
		if visited[root] {
			return
		}
		visited[root] = true
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, ei := range treeAdj[v] {
				e := d.edges[ei]
				to := e.u
				if to == v {
					to = e.v
				}
				if !visited[to] {
					visited[to] = true
					parentEdge[to] = ei
					queue = append(queue, to)
				}
			}
		}
	}
	if d.boundary >= 0 {
		bfs(d.boundary)
	}
	for _, v := range defects {
		bfs(v)
	}
	// Peel from the leaves (reverse BFS order): a defective vertex sends
	// its defect up its parent edge, applying that edge's Pauli frames.
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if !defect[v] || parentEdge[v] < 0 {
			continue
		}
		ei := parentEdge[v]
		e := d.edges[ei]
		to := e.u
		if to == v {
			to = e.v
		}
		for _, o := range rep[e.class].Obs {
			correction[o] = !correction[o]
		}
		defect[v] = false
		if to != d.boundary {
			defect[to] = !defect[to]
		}
	}
	for _, v := range defects {
		if defect[v] {
			return nil, fmt.Errorf("decoder: peeling left an unmatched defect")
		}
	}
	return correction, nil
}
