package decoder

// Regression coverage for the memo-store panic boundary: a panic thrown
// out of the MemoFault chaos seam while a freshly decoded lane is being
// memoized ("memo-warm") must surface as a counted decode error for
// that lane alone — never as a DecodeBatch contract error, a process
// panic, or a poisoned LRU entry that replays a half-corrupted
// prediction on the next identical syndrome.

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
)

// TestMemoFaultPanicCountsLaneKeepsLRUClean injects a MemoFault that
// corrupts the cached prediction and then panics mid-store. The faulted
// lanes must count as decode errors, and the half-written entry must be
// evicted: with the fault removed, the same scratch must re-miss, redo
// the store, and agree with the scalar reference bit for bit — a
// surviving poisoned entry would replay the corrupted prediction and
// diverge.
func TestMemoFaultPanicCountsLaneKeepsLRUClean(t *testing.T) {
	model, _ := planarModel(t, 3, 1e-3)
	d, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	numDet := len(model.Circuit.Detectors)
	numObs := len(model.Circuit.Observables)
	// Lanes 0 and 1 carry the same weight-2 syndrome; the rest are empty.
	res := syntheticResult(numDet, numObs, 64, func(s int, set func(int)) {
		if s < 2 {
			set(1)
			set(3)
		}
	})
	b := NewBatch(d)
	emptyKey := keyHash(nil)
	faults := 0
	b.MemoFault = func(h uint64, pred []uint64) {
		if h == emptyKey {
			return // let the empty-lane cache build; this test targets the keyed store
		}
		faults++
		pred[0] ^= 1 // half-finished corruption a surviving entry would replay
		panic("chaos: memo-warm panic")
	}
	sc := NewScratch()
	got, err := b.DecodeBatch(res, 0, 64, sc)
	if err != nil {
		t.Fatalf("memo-warm panic escalated to a contract error: %v", err)
	}
	if got != 2 {
		t.Fatalf("faulted block counted %d errors, want 2 (both stores panicked)", got)
	}
	// Lane 1 repeats lane 0's syndrome: if the panicked store had left
	// its entry behind, lane 1 would have hit it instead of re-missing.
	if faults != 2 {
		t.Fatalf("MemoFault fired %d times, want 2 (lane 1 must re-miss after lane 0's store was evicted)", faults)
	}
	// Fault removed, same scratch: the memo must be rebuilt from scratch
	// and every count must match the scalar loop. A poisoned entry (the
	// pred[0] flip above) would fail this comparison.
	b.MemoFault = nil
	assertBatchMatchesScalar(t, b, sc, res, "post-fault rebuild")
	// And the rebuilt entry must actually serve hits again.
	hits0, _ := sc.MemoStats()
	if n, err := b.DecodeBatch(res, 0, 64, sc); err != nil || n != 0 {
		t.Fatalf("warm pass after rebuild: n=%d err=%v", n, err)
	}
	hits1, _ := sc.MemoStats()
	if hits1 <= hits0 {
		t.Fatalf("rebuilt memo served no hits (%d -> %d)", hits0, hits1)
	}
}

// TestMemoFaultPanicOnEmptyLaneCache drives the panic through the
// empty-lane cache build: the whole all-zero block must count as failed
// decodes (matching the scalar convention that a decode error is a
// logical error), the cache must stay invalid, and a later fault-free
// call must rebuild it and decode cleanly.
func TestMemoFaultPanicOnEmptyLaneCache(t *testing.T) {
	model, _ := planarModel(t, 3, 1e-3)
	d, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	numDet := len(model.Circuit.Detectors)
	numObs := len(model.Circuit.Observables)
	res := syntheticResult(numDet, numObs, 96, func(int, func(int)) {}) // all lanes empty
	b := NewBatch(d)
	b.MemoFault = func(uint64, []uint64) { panic("chaos: empty-lane memo panic") }
	sc := NewScratch()
	if got, err := b.DecodeBatch(res, 0, 64, sc); err != nil || got != 64 {
		t.Fatalf("faulted all-zero block: got %d errors, err=%v; want 64, nil", got, err)
	}
	// Partial tail block: only the n live lanes count.
	if got, err := b.DecodeBatch(res, 64, 32, sc); err != nil || got != 32 {
		t.Fatalf("faulted all-zero tail: got %d errors, err=%v; want 32, nil", got, err)
	}
	b.MemoFault = nil
	if got, err := b.DecodeBatch(res, 0, 64, sc); err != nil || got != 0 {
		t.Fatalf("fault-free all-zero block after rebuild: got %d errors, err=%v; want 0, nil", got, err)
	}
	assertBatchMatchesScalar(t, b, sc, res, "empty-cache rebuild")
}
