package decoder

// Regression tests for deterministic flag handling. The scratch flag set
// used to be a map[int]bool whose range order varied run to run; the
// decoders now observe flags strictly in ascending detector order, so
// decoding the same flagged syndrome must yield byte-identical
// corrections no matter how many times it is repeated or which scratch
// serves the call.

import (
	"fmt"
	"testing"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// flaggedShots picks syndromes of the model that set at least one flag
// detector: every single flagged fault plus pairwise combinations of the
// first few, capped at limit shots.
func flaggedShots(model *dem.Model, limit int) []func(int) bool {
	var flagged []dem.Event
	for _, ev := range model.Events {
		if len(ev.Flags) > 0 {
			flagged = append(flagged, ev)
		}
	}
	var shots []func(int) bool
	for _, ev := range flagged {
		if len(shots) >= limit {
			return shots
		}
		shots = append(shots, combinedDetBit(ev))
	}
	for i := 0; i < len(flagged) && len(shots) < limit; i++ {
		for j := i + 1; j < len(flagged) && len(shots) < limit; j++ {
			shots = append(shots, combinedDetBit(flagged[i], flagged[j]))
		}
	}
	return shots
}

// assertRepeatedDecodesIdentical decodes each shot many times — reusing
// one warm scratch and also through fresh scratches — and fails if any
// correction byte ever differs from the first decode.
func assertRepeatedDecodesIdentical(t *testing.T, name string, d ScratchDecoder, shots []func(int) bool) {
	t.Helper()
	warm := NewScratch()
	for si, bit := range shots {
		first, err := d.DecodeWith(NewScratch(), bit)
		if err != nil {
			t.Fatalf("%s shot %d: %v", name, si, err)
		}
		want := append([]bool(nil), first...)
		for rep := 0; rep < 20; rep++ {
			sc := warm
			if rep%2 == 1 {
				sc = NewScratch()
			}
			got, err := d.DecodeWith(sc, bit)
			if err != nil {
				t.Fatalf("%s shot %d rep %d: %v", name, si, rep, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s shot %d rep %d: correction length %d, want %d", name, si, rep, len(got), len(want))
			}
			for o := range want {
				if got[o] != want[o] {
					t.Fatalf("%s shot %d rep %d: correction bit %d flipped between decodes of the same flagged syndrome", name, si, rep, o)
				}
			}
		}
	}
}

// TestFlaggedDecodeDeterministic replays the same flagged syndromes
// through every flag-aware decoder repeatedly and requires byte-identical
// corrections on every decode.
func TestFlaggedDecodeDeterministic(t *testing.T) {
	surf := hyper55(t)
	col, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, basis := range []css.Basis{css.Z, css.X} {
		basis := basis
		t.Run(fmt.Sprintf("basis=%v", basis), func(t *testing.T) {
			model, _ := buildModel(t, surf, diffOptions, basis, 2, 2e-3)
			shots := flaggedShots(model, 40)
			if len(shots) == 0 {
				t.Fatal("model has no flagged faults to replay")
			}
			mwpm, err := NewMWPM(model, basis, 1e-3, true)
			if err != nil {
				t.Fatal(err)
			}
			assertRepeatedDecodesIdentical(t, "mwpm-flagged", mwpm, shots)
			ufd, err := NewUnionFind(model, basis, 1e-3, true)
			if err != nil {
				t.Fatal(err)
			}
			assertRepeatedDecodesIdentical(t, "unionfind-flagged", ufd, shots)

			cmodel, _ := buildModel(t, col, diffOptions, basis, 2, 2e-3)
			cshots := flaggedShots(cmodel, 40)
			if len(cshots) == 0 {
				t.Fatal("color model has no flagged faults to replay")
			}
			rest, err := NewRestriction(cmodel, basis, 1e-3, true, true)
			if err != nil {
				t.Fatal(err)
			}
			assertRepeatedDecodesIdentical(t, "restriction-flagged", rest, cshots)
		})
	}
}
