// Batched decoding: one call decodes a whole 64-shot sampling block
// (one bit-packed word) instead of unpacking a syndrome per shot. Three
// effects stack. First, a block whose detector words are all zero — the
// overwhelmingly common case at useful physical rates — is decoded once
// and fanned out to all 64 lanes. Second, each shot's syndrome is
// extracted exactly once, as a compact sorted defect list, by streaming
// over the packed detector words (O(detectors + defects) per block, not
// O(64 × detectors)). Third, corrections are memoized by defect list in
// a per-scratch bounded LRU: at p ≈ 1e-3 most non-empty syndromes
// repeat a handful of low-weight patterns, so the expensive matching
// runs only on first sight. The memo is deterministic, scratch-owned
// and purely an execution-strategy cache — a batch decode is
// bit-identical to 64 scalar DecodeWith calls by construction, because
// the decode of a lane is a pure function of its full defect list and
// cache lookups key on exactly that list.
package decoder

import (
	"fmt"
	"math/bits"

	"github.com/fpn/flagproxy/internal/sim"
)

// BatchDecoder is implemented by decoders that can decode one 64-shot
// sampling block per call. Implementations must be bit-identical to
// decoding each lane with DecodeWith — the batch path is a pure
// optimization with no statistical footprint.
type BatchDecoder interface {
	// DecodeBatch decodes lanes [firstShot, firstShot+n) of res — one
	// sampling block: firstShot must be 64-aligned and n in (0, 64] —
	// and returns the number of lanes whose predicted observable flips
	// disagree with the sampled observables (counting decode failures as
	// errors, exactly like the scalar loop). A non-nil error reports a
	// violated call contract, never a per-shot decode failure.
	DecodeBatch(res *sim.Result, firstShot, n int, sc *DecodeScratch) (int, error)
}

// Memo geometry. The entry count bounds worst-case memory (the arena is
// allocated once per scratch); the key bound keeps entries fixed-stride
// — defect lists longer than memoMaxKey are rare, expensive to compare,
// and decode scalar without touching the memo.
const (
	memoEntries = 512
	memoTable   = 2048 // open-addressing slots; power of two ≥ 4× entries
	memoMaxKey  = 16   // defects per memoizable syndrome
)

// Batch lifts any ScratchDecoder to the BatchDecoder seam. Like the
// decoders it wraps, a Batch is immutable after construction and safe
// to share across workers; all mutable batch state (defect extraction
// buffers, the memo) lives in the caller's DecodeScratch.
type Batch struct {
	inner ScratchDecoder

	// MemoFault, when non-nil, is invoked on every memo store with the
	// entry's key hash and packed observable prediction, which it may
	// corrupt in place. It is a fault-injection seam for the chaos
	// harness — a poisoned memo must be caught by the batch-vs-scalar
	// differential tests — and must be set before the Batch is shared.
	// Production decoding leaves it nil.
	MemoFault func(keyHash uint64, pred []uint64)
}

// NewBatch wraps inner in the batch seam.
func NewBatch(inner ScratchDecoder) *Batch { return &Batch{inner: inner} }

// Inner returns the wrapped scalar decoder.
func (b *Batch) Inner() ScratchDecoder { return b.inner }

// Decode decodes a single shot through the wrapped decoder, allocating
// a private scratch — the convenience path; hot loops use DecodeBatch
// or DecodeWith.
func (b *Batch) Decode(detBit func(int) bool) ([]bool, error) {
	return b.inner.DecodeWith(NewScratch(), detBit)
}

// DecodeWith forwards the scalar hot path to the wrapped decoder, so a
// Batch drops into any ScratchDecoder seat unchanged.
func (b *Batch) DecodeWith(sc *DecodeScratch, detBit func(int) bool) ([]bool, error) {
	return b.inner.DecodeWith(sc, detBit)
}

// zeroDetBit is the detector read of an all-zero lane.
func zeroDetBit(int) bool { return false }

// DecodeBatch decodes one sampling block. Lanes are processed in
// ascending order and the memo is keyed on each lane's full defect
// list, so the call sequence — and therefore the memo state and every
// output — is deterministic for a fixed (res, firstShot, n) stream.
//
//fpn:hotpath
func (b *Batch) DecodeBatch(res *sim.Result, firstShot, n int, sc *DecodeScratch) (int, error) {
	if res == nil || sc == nil {
		return 0, fmt.Errorf("decoder: DecodeBatch needs a result and a scratch")
	}
	if firstShot < 0 || firstShot%64 != 0 || n < 1 || n > 64 || firstShot+n > res.Shots {
		return 0, fmt.Errorf("decoder: DecodeBatch(firstShot=%d, n=%d) violates the block contract (Shots=%d)",
			firstShot, n, res.Shots)
	}
	bs := &sc.batch
	if bs.owner != b || bs.numDet != len(res.Detectors) || bs.numObs != len(res.Observables) {
		bs.init(b, len(res.Detectors), len(res.Observables))
	}
	wi := firstShot >> 6
	laneMask := ^uint64(0)
	if n < 64 {
		laneMask = uint64(1)<<uint(n) - 1
	}
	clear(bs.pred)
	var failW uint64

	// One streaming pass over the packed detector words: per-lane defect
	// counts, plus the all-zero test for free.
	var orW uint64
	total := int32(0)
	clear(bs.counts[:])
	for d := 0; d < bs.numDet; d++ {
		w := res.DetectorWord(d, wi) & laneMask
		orW |= w
		for w != 0 {
			bs.counts[bits.TrailingZeros64(w)]++
			total++
			w &= w - 1
		}
	}
	if orW == 0 {
		// All 64 lanes are syndrome-free: decode the empty lane once and
		// fan its prediction out to the whole block.
		if !bs.emptyValid && !b.decodeEmpty(sc) {
			// The empty-lane decode (or the MemoFault seam) panicked: the
			// cache stays invalid and every lane of this block counts as a
			// failed decode, exactly like a scalar decode error.
			return bs.countErrs(res, wi, laneMask, laneMask), nil
		}
		for o := 0; o < bs.numObs; o++ {
			if bs.emptyPred[o>>6]>>(uint(o)&63)&1 == 1 {
				bs.pred[o] = laneMask
			}
		}
		if bs.emptyFail {
			failW = laneMask
		}
		bs.hits += uint64(n)
		return bs.countErrs(res, wi, laneMask, failW), nil
	}

	// Prefix-sum the counts into per-lane extents, then a second pass
	// scatters each defect into its lane's slice. Detectors are visited
	// in ascending id order, so every lane's list comes out sorted — the
	// canonical memo key — without a sort.
	bs.off[0] = 0
	for l := 0; l < 64; l++ {
		bs.off[l+1] = bs.off[l] + bs.counts[l]
		bs.counts[l] = 0
	}
	if cap(bs.defects) < int(total) {
		bs.defects = make([]int32, total)
	}
	bs.defects = bs.defects[:total]
	for d := 0; d < bs.numDet; d++ {
		w := res.DetectorWord(d, wi) & laneMask
		for w != 0 {
			l := bits.TrailingZeros64(w)
			bs.defects[bs.off[l]+bs.counts[l]] = int32(d)
			bs.counts[l]++
			w &= w - 1
		}
	}

	for l := 0; l < n; l++ {
		key := bs.defects[bs.off[l]:bs.off[l+1]]
		if len(key) == 0 {
			if !bs.emptyValid && !b.decodeEmpty(sc) {
				failW |= 1 << uint(l)
				continue
			}
			for o := 0; o < bs.numObs; o++ {
				if bs.emptyPred[o>>6]>>(uint(o)&63)&1 == 1 {
					bs.pred[o] |= 1 << uint(l)
				}
			}
			if bs.emptyFail {
				failW |= 1 << uint(l)
			}
			bs.hits++
			continue
		}
		var h uint64
		memoable := len(key) <= memoMaxKey
		if memoable {
			h = keyHash(key)
			if e := bs.lookup(h, key); e >= 0 {
				bs.moveFront(e)
				if bs.applyEntry(e, l) {
					failW |= 1 << uint(l)
				}
				bs.hits++
				continue
			}
		}
		// Miss: scalar-decode the lane against the sampled result. The
		// decoder reads detector bits straight from the lane, and the
		// lane's bits are exactly its defect-list membership, so the
		// outcome is a pure function of the key we store it under.
		bs.misses++
		bs.res, bs.shot = res, firstShot+l
		if bs.bit == nil {
			lbs := bs // one closure per scratch, reading the mutable (res, shot) pair
			bs.bit = func(d int) bool { return lbs.res.DetectorBit(d, lbs.shot) }
		}
		corr, err := b.inner.DecodeWith(sc, bs.bit)
		if !memoable {
			for o, c := range corr {
				if c {
					bs.pred[o] |= 1 << uint(l)
				}
			}
			if err != nil {
				failW |= 1 << uint(l)
			}
			continue
		}
		if b.storeLane(bs, h, key, corr, err, l) {
			failW |= 1 << uint(l)
		}
	}
	return bs.countErrs(res, wi, laneMask, failW), nil
}

// storeLane memoizes one freshly decoded lane and applies the entry to
// the lane's prediction bits. It is the panic boundary of the memo
// store: if the MemoFault chaos seam (or the store itself) panics, the
// half-written entry is evicted from the index and recency list —
// nothing replayable survives — and the lane alone counts as a failed
// decode, exactly like a scalar decode error.
//
//fpn:hotpath
func (b *Batch) storeLane(bs *batchScratch, h uint64, key []int32, corr []bool, decErr error, l int) (failed bool) {
	e := int32(-1)
	defer func() {
		if r := recover(); r != nil {
			if e >= 0 {
				bs.evict(e)
			}
			failed = true
		}
	}()
	e = bs.insertSlot(h, key)
	row := bs.epred[int(e)*bs.obsWords : (int(e)+1)*bs.obsWords]
	for o, c := range corr {
		if c {
			row[o>>6] |= 1 << (uint(o) & 63)
		}
	}
	bs.fail[e] = decErr != nil
	if b.MemoFault != nil {
		b.MemoFault(h, row)
	}
	return bs.applyEntry(e, l)
}

// decodeEmpty computes and caches the decode of a syndrome-free lane
// (no defects, no flags — every detector reads zero). It reports
// whether the cache is valid: a panic out of the decode or the
// MemoFault seam leaves emptyValid false, so nothing half-written is
// ever fanned out to later lanes.
func (b *Batch) decodeEmpty(sc *DecodeScratch) (ok bool) {
	bs := &sc.batch
	bs.misses++
	defer func() {
		if r := recover(); r != nil {
			bs.emptyValid = false
			ok = false
		}
	}()
	corr, err := b.inner.DecodeWith(sc, zeroDetBit)
	clear(bs.emptyPred)
	for o, c := range corr {
		if c {
			bs.emptyPred[o>>6] |= 1 << (uint(o) & 63)
		}
	}
	bs.emptyFail = err != nil
	if b.MemoFault != nil {
		b.MemoFault(keyHash(nil), bs.emptyPred)
	}
	bs.emptyValid = true
	return true
}

// keyHash is FNV-1a over the defect ids (plus the length, folded in by
// construction since ids are distinct and sorted).
func keyHash(key []int32) uint64 {
	h := uint64(14695981039346656037)
	for _, d := range key {
		h ^= uint64(uint32(d))
		h *= 1099511628211
	}
	return h
}

// batchScratch is the per-scratch state of the batch path: defect
// extraction buffers, the per-lane prediction accumulators and the
// bounded LRU memo. It is (re)initialized whenever the scratch meets a
// new Batch owner or result shape, so a scratch moved between decoders
// can never replay another decoder's cached corrections.
type batchScratch struct {
	owner    *Batch
	numDet   int
	numObs   int
	obsWords int // packed words per observable-prediction row

	// Scalar-fallback lane view: the closure is built once per scratch
	// and reads the mutable (res, shot) pair, like the engine's
	// shotCounter.
	res  *sim.Result
	shot int
	bit  func(int) bool

	pred    []uint64  // per-observable predicted-flip lane bits, one word each
	counts  [64]int32 // per-lane defect counts, then fill cursors
	off     [65]int32 // per-lane extents into defects
	defects []int32   // flattened per-lane sorted defect lists

	// Bounded LRU memo: a fixed entry arena (fixed-stride keys and
	// packed predictions), an open-addressing index with backward-shift
	// deletion, and an intrusive recency list. No maps, no per-shot
	// allocation, and every operation is deterministic in the lane
	// processing order.
	table  []int32  // slot -> entry+1; 0 = empty
	hash   []uint64 // per-entry key hash
	keyLen []int32  // per-entry key length
	keys   []int32  // memoEntries × memoMaxKey
	epred  []uint64 // memoEntries × obsWords packed predictions
	fail   []bool   // per-entry decode-failure flag
	prev   []int32  // LRU list toward the head (more recent)
	next   []int32  // LRU list toward the tail (least recent)
	head   int32    // most recently used entry, -1 when empty
	tail   int32    // least recently used entry, -1 when empty
	used   int
	free   []int32 // entries evicted after a faulted store, first to be reused
	freeN  int

	emptyValid bool
	emptyFail  bool
	emptyPred  []uint64 // packed prediction of the syndrome-free lane

	hits   uint64
	misses uint64
}

// init sizes the arena for a new owner/shape and empties the memo.
//
//fpnvet:coldpath one-time arena (re)construction on owner or shape change, not per shot
func (bs *batchScratch) init(b *Batch, numDet, numObs int) {
	bs.owner = b
	bs.numDet, bs.numObs = numDet, numObs
	bs.obsWords = (numObs + 63) / 64
	if len(bs.table) != memoTable {
		bs.table = make([]int32, memoTable)
		bs.hash = make([]uint64, memoEntries)
		bs.keyLen = make([]int32, memoEntries)
		bs.keys = make([]int32, memoEntries*memoMaxKey)
		bs.fail = make([]bool, memoEntries)
		bs.prev = make([]int32, memoEntries)
		bs.next = make([]int32, memoEntries)
		bs.free = make([]int32, memoEntries)
	} else {
		clear(bs.table)
	}
	bs.freeN = 0
	if need := memoEntries * bs.obsWords; cap(bs.epred) < need {
		bs.epred = make([]uint64, need)
	} else {
		bs.epred = bs.epred[:need]
	}
	if cap(bs.pred) < numObs {
		bs.pred = make([]uint64, numObs)
	}
	bs.pred = bs.pred[:numObs]
	if cap(bs.emptyPred) < bs.obsWords {
		bs.emptyPred = make([]uint64, bs.obsWords)
	}
	bs.emptyPred = bs.emptyPred[:bs.obsWords]
	bs.head, bs.tail = -1, -1
	bs.used = 0
	bs.emptyValid = false
}

// countErrs folds the per-observable prediction words against the
// sampled observable words into one error word — bit l set iff lane l
// is a logical error — and pops its count. Decode-failure lanes (failW)
// count as errors unconditionally, matching the scalar loop.
func (bs *batchScratch) countErrs(res *sim.Result, wi int, laneMask, failW uint64) int {
	errW := failW
	for o := 0; o < bs.numObs; o++ {
		errW |= (res.ObservableWord(o, wi) & laneMask) ^ bs.pred[o]
	}
	return bits.OnesCount64(errW & laneMask)
}

// lookup probes the index for an entry with this hash and key,
// returning -1 on miss.
func (bs *batchScratch) lookup(h uint64, key []int32) int32 {
	mask := uint64(len(bs.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		t := bs.table[i]
		if t == 0 {
			return -1
		}
		if e := t - 1; bs.hash[e] == h && bs.keyEq(e, key) {
			return e
		}
	}
}

func (bs *batchScratch) keyEq(e int32, key []int32) bool {
	if int(bs.keyLen[e]) != len(key) {
		return false
	}
	ek := bs.keys[int(e)*memoMaxKey:]
	for i, d := range key {
		if ek[i] != d {
			return false
		}
	}
	return true
}

// insertSlot claims an entry for (h, key) — an evicted free one first,
// then a fresh one while the arena fills, the least-recently-used one
// afterwards — indexes it and makes it most recent. The caller fills
// the prediction row.
func (bs *batchScratch) insertSlot(h uint64, key []int32) int32 {
	var e int32
	if bs.freeN > 0 {
		bs.freeN--
		e = bs.free[bs.freeN]
	} else if bs.used < memoEntries {
		e = int32(bs.used)
		bs.used++
	} else {
		e = bs.tail
		bs.unlink(e)
		bs.tableRemove(e)
	}
	bs.hash[e] = h
	bs.keyLen[e] = int32(len(key))
	copy(bs.keys[int(e)*memoMaxKey:int(e)*memoMaxKey+len(key)], key)
	row := bs.epred[int(e)*bs.obsWords : (int(e)+1)*bs.obsWords]
	clear(row)
	bs.fail[e] = false
	bs.tableInsert(e)
	bs.pushFront(e)
	return e
}

// applyEntry ORs entry e's packed prediction into lane l's accumulator
// bits and reports whether the memoized decode had failed.
func (bs *batchScratch) applyEntry(e int32, l int) bool {
	row := bs.epred[int(e)*bs.obsWords:]
	for o := 0; o < bs.numObs; o++ {
		if row[o>>6]>>(uint(o)&63)&1 == 1 {
			bs.pred[o] |= 1 << uint(l)
		}
	}
	return bs.fail[e]
}

func (bs *batchScratch) tableInsert(e int32) {
	mask := uint64(len(bs.table) - 1)
	i := bs.hash[e] & mask
	for bs.table[i] != 0 {
		i = (i + 1) & mask
	}
	bs.table[i] = e + 1
}

// tableRemove deletes e from the open-addressing index with the
// classic linear-probing backward shift (Knuth 6.4R): entries displaced
// past the vacated slot are moved back so every probe chain stays
// unbroken — no tombstones, so the table never degrades.
func (bs *batchScratch) tableRemove(e int32) {
	mask := uint64(len(bs.table) - 1)
	i := bs.hash[e] & mask
	for bs.table[i] != e+1 {
		i = (i + 1) & mask
	}
	for {
		bs.table[i] = 0
		j := i
		for {
			j = (j + 1) & mask
			if bs.table[j] == 0 {
				return
			}
			home := bs.hash[bs.table[j]-1] & mask
			// Move the entry at j into the gap at i unless its home slot
			// lies cyclically within (i, j] — then its probe chain does
			// not cross the gap and it must stay.
			if (j > i && (home <= i || home > j)) || (j < i && home <= i && home > j) {
				bs.table[i] = bs.table[j]
				i = j
				break
			}
		}
	}
}

// evict removes a half-written entry from the index and the recency
// list and parks it on the free list, so a store aborted mid-write (a
// MemoFault panic) can never be replayed and the arena never leaks
// capacity. The free list is bounded by memoEntries: an entry is only
// ever parked once before insertSlot reclaims it.
func (bs *batchScratch) evict(e int32) {
	bs.tableRemove(e)
	bs.unlink(e)
	bs.free[bs.freeN] = e
	bs.freeN++
}

func (bs *batchScratch) pushFront(e int32) {
	bs.prev[e] = -1
	bs.next[e] = bs.head
	if bs.head >= 0 {
		bs.prev[bs.head] = e
	}
	bs.head = e
	if bs.tail < 0 {
		bs.tail = e
	}
}

func (bs *batchScratch) unlink(e int32) {
	if bs.prev[e] >= 0 {
		bs.next[bs.prev[e]] = bs.next[e]
	} else {
		bs.head = bs.next[e]
	}
	if bs.next[e] >= 0 {
		bs.prev[bs.next[e]] = bs.prev[e]
	} else {
		bs.tail = bs.prev[e]
	}
}

func (bs *batchScratch) moveFront(e int32) {
	if bs.head == e {
		return
	}
	bs.unlink(e)
	bs.pushFront(e)
}

// MemoStats reports the cumulative batch-memo hit/miss counters of this
// scratch (hits include all-zero fast-path lanes; misses include the
// one-time empty-lane decode and non-memoizable long syndromes).
func (sc *DecodeScratch) MemoStats() (hits, misses uint64) {
	return sc.batch.hits, sc.batch.misses
}

// TakeMemoStats returns the counters and resets them — the
// accumulate-on-release hook for worker pools.
func (sc *DecodeScratch) TakeMemoStats() (hits, misses uint64) {
	hits, misses = sc.batch.hits, sc.batch.misses
	sc.batch.hits, sc.batch.misses = 0, 0
	return hits, misses
}
