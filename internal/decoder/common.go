package decoder

import (
	"fmt"
	"math"
	"sort"

	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/matching"
)

// Recover converts a panic unwinding through a decode call into an
// error carrying the panic message. Every Decode/DecodeWith entry point
// in this package defers it, so internal invariant panics (e.g.
// "matching: stuck without maxCardinality" from the blossom matcher)
// surface to callers as ordinary decode failures — which Monte-Carlo
// engines already count conservatively as logical errors — instead of
// killing a multi-hour sweep. Custom Decoder implementations may defer
// it the same way:
//
//	func (d *myDecoder) Decode(bit func(int) bool) (corr []bool, err error) {
//		defer decoder.Recover(&err)
//		...
//	}
func Recover(err *error) {
	if r := recover(); r != nil {
		if e, ok := r.(error); ok {
			*err = fmt.Errorf("decoder: recovered panic: %w", e)
			return
		}
		*err = fmt.Errorf("decoder: recovered panic: %v", r)
	}
}

// annotateErr wraps a non-nil decode error with the decoder's identity
// (kind and configuration), so an error counted by a sweep thousands of
// shots deep still says which decoder in which configuration produced
// it. Each decoder defers it BEFORE its Recover defer — defers run
// last-in-first-out, so Recover converts the panic to an error first
// and annotateErr then tags it.
//
//fpnvet:coldpath error-path only: a nil *err returns before any formatting
func annotateErr(id string, err *error) {
	if *err != nil {
		*err = fmt.Errorf("%s: %w", id, *err)
	}
}

// matchEdge is a float-weighted edge of a per-shot matching instance.
type matchEdge struct {
	u, v int
	w    float64
}

// applyEmptyClass handles the empty-syndrome equivalence class: when the
// observed flags are explained strictly better by one of its error
// members than by "no error" (whose flag difference is |F|), the
// member's Pauli frames are applied. This is how the flag protocol
// catches propagation errors that flip no parity check at all.
func applyEmptyClass(empty *dem.Class, flags *dem.FlagSet, correction []bool) {
	nFlags := flags.Len()
	if empty == nil || nFlags == 0 {
		return
	}
	rep, diff := empty.Select(flags)
	if diff < nFlags {
		for _, o := range rep.Obs {
			correction[o] = !correction[o]
		}
	}
}

// collectFlagList returns the sorted union of all member flag detectors
// across classes (including the empty-syndrome class), which is the set
// a decoder must read from the shot.
func collectFlagList(classes []dem.Class) []int {
	seen := map[int]bool{}
	for ci := range classes {
		for _, m := range classes[ci].Members {
			for _, f := range m.Flags {
				seen[f] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	//fpnvet:orderless collect-then-sort: the slice is sorted before returning
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// minWeightPerfect quantizes float weights and runs the exact blossom
// minimum-weight perfect matching.
func minWeightPerfect(n int, edges []matchEdge) ([]int, error) {
	qedges := make([]matching.Edge, len(edges))
	for i, e := range edges {
		qedges[i] = quantizeEdge(e)
	}
	return matching.MinWeightPerfect(n, qedges)
}

// minWeightPerfectWS is minWeightPerfect drawing the quantized edge list
// and the blossom matcher's state from the scratch arena. The returned
// mate slice aliases the scratch.
func minWeightPerfectWS(sc *DecodeScratch, n int, edges []matchEdge) ([]int, error) {
	sc.qedges = sc.qedges[:0]
	for _, e := range edges {
		sc.qedges = append(sc.qedges, quantizeEdge(e))
	}
	return sc.match.MinWeightPerfect(n, sc.qedges)
}

func quantizeEdge(e matchEdge) matching.Edge {
	w := e.w
	if math.IsInf(w, 1) || w > 1e12 {
		w = 1e12
	}
	return matching.Edge{U: e.u, V: e.v, W: int64(w * weightScale)}
}
