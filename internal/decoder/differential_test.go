package decoder

// Differential harness: the cached-Dijkstra / scratch-arena hot paths
// (DecodeWith) must be bit-identical to the naive pre-optimization
// reference decoders in naiveref_test.go, over a matrix of catalog
// codes × applicable decoders × bases × seeds, on sampled circuit-level
// shots and on injected single/double faults. One scratch is reused
// across every shot of a sub-case, so any state leakage between shots
// shows up as a mismatch.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/sim"
)

// diffCase is one code under differential test; the per-build-mode case
// lists live in differential_cases_*.go (the full catalog slice is too
// slow under the race detector).
type diffCase struct {
	name  string
	code  *css.Code
	color bool
}

// diffDecoder pairs a scratch-based hot path with its naive reference.
type diffDecoder struct {
	name  string
	fast  ScratchDecoder
	naive func(func(int) bool) ([]bool, error)
}

// diffDecoders builds every decoder applicable to the model's code
// family, each paired with its pre-optimization reference.
func diffDecoders(t *testing.T, model *dem.Model, basis css.Basis, isColor bool) []diffDecoder {
	t.Helper()
	var out []diffDecoder
	if isColor {
		flagged, err := NewRestriction(model, basis, 1e-3, true, true)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffDecoder{"restriction-flagged", flagged,
			func(bit func(int) bool) ([]bool, error) { return naiveRestrictionDecode(flagged, bit) }})
		baseline, err := NewRestriction(model, basis, 1e-3, true, false)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffDecoder{"restriction-baseline", baseline,
			func(bit func(int) bool) ([]bool, error) { return naiveRestrictionDecode(baseline, bit) }})
	} else {
		flagged, err := NewMWPM(model, basis, 1e-3, true)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffDecoder{"mwpm-flagged", flagged,
			func(bit func(int) bool) ([]bool, error) { return naiveMWPMDecode(flagged, bit) }})
		plain, err := NewMWPM(model, basis, 1e-3, false)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffDecoder{"mwpm-plain", plain,
			func(bit func(int) bool) ([]bool, error) { return naiveMWPMDecode(plain, bit) }})
		ufd, err := NewUnionFind(model, basis, 1e-3, true)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, diffDecoder{"unionfind", ufd,
			func(bit func(int) bool) ([]bool, error) { return naiveUnionFindDecode(ufd, bit) }})
	}
	bposd, err := NewBPOSD(model, basis, 30)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, diffDecoder{"bposd", bposd,
		func(bit func(int) bool) ([]bool, error) { return naiveBPOSDDecode(bposd, bit) }})
	return out
}

// assertSameDecode decodes one shot through both paths and fails on any
// divergence (error presence, error text, or any correction bit).
func assertSameDecode(t *testing.T, dd diffDecoder, sc *DecodeScratch, bit func(int) bool, label string) {
	t.Helper()
	want, errN := dd.naive(bit)
	got, errF := dd.fast.DecodeWith(sc, bit)
	if (errN == nil) != (errF == nil) {
		t.Fatalf("%s %s: naive err=%v fast err=%v", dd.name, label, errN, errF)
	}
	if errN != nil {
		if errN.Error() != errF.Error() {
			t.Fatalf("%s %s: error text diverged: naive %q fast %q", dd.name, label, errN, errF)
		}
		return
	}
	if len(want) != len(got) {
		t.Fatalf("%s %s: correction length %d vs %d", dd.name, label, len(want), len(got))
	}
	for o := range want {
		if want[o] != got[o] {
			t.Fatalf("%s %s: correction bit %d diverged (naive %v, fast %v)", dd.name, label, o, want[o], got[o])
		}
	}
}

const diffRounds = 3

var diffOptions = fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}

// TestDifferentialDecode samples circuit-level shots at an elevated
// physical rate (so syndromes are non-trivial) and checks bit-identical
// decoding on every case × decoder × basis × seed.
func TestDifferentialDecode(t *testing.T) {
	for _, cs := range diffCases(t) {
		cs := cs
		t.Run(cs.name, func(t *testing.T) {
			code := cs.code
			for _, basis := range []css.Basis{css.Z, css.X} {
				model, c := buildModel(t, code, diffOptions, basis, diffRounds, 3e-3)
				decs := diffDecoders(t, model, basis, cs.color)
				for _, seed := range []int64{11, 22, 33} {
					const shots = 32
					res := sim.Run(c, shots, seed)
					for _, dd := range decs {
						sc := NewScratch()
						for s := 0; s < shots; s++ {
							s := s
							bit := func(d int) bool { return res.DetectorBit(d, s) }
							assertSameDecode(t, dd, sc, bit,
								fmt.Sprintf("basis=%v seed=%d shot=%d", basis, seed, s))
						}
					}
				}
			}
		})
	}
}

// combinedDetBit is the detector readout of a set of faults (detector
// and flag flips XOR together).
func combinedDetBit(evs ...dem.Event) func(int) bool {
	set := map[int]bool{}
	for _, ev := range evs {
		for _, d := range ev.Dets {
			set[d] = !set[d]
		}
		for _, f := range ev.Flags {
			set[f] = !set[f]
		}
	}
	return func(d int) bool { return set[d] }
}

// TestFaultInjectionDifferential replays every single fault of each
// case's error model, plus seeded random double faults, through both
// decode paths and requires bit-identical results. (Decoding success is
// covered by the correctness tests; here union-find's approximations,
// for example, must at least be the *same* approximations.)
func TestFaultInjectionDifferential(t *testing.T) {
	for _, cs := range diffCases(t) {
		cs := cs
		t.Run(cs.name, func(t *testing.T) {
			model, _ := buildModel(t, cs.code, diffOptions, css.Z, diffRounds, 1e-3)
			decs := diffDecoders(t, model, css.Z, cs.color)
			for _, dd := range decs {
				sc := NewScratch()
				for ei, ev := range model.Events {
					assertSameDecode(t, dd, sc, combinedDetBit(ev), fmt.Sprintf("single-fault=%d", ei))
				}
				rng := rand.New(rand.NewSource(7))
				const doubles = 300
				for di := 0; di < doubles; di++ {
					i := rng.Intn(len(model.Events))
					j := rng.Intn(len(model.Events))
					assertSameDecode(t, dd, sc, combinedDetBit(model.Events[i], model.Events[j]),
						fmt.Sprintf("double-fault=%d+%d", i, j))
				}
			}
		})
	}
}
