package decoder

// Fuzzing the hyperedge decomposition (decompose.go). matchDecomposition
// must always return either nil or an exact partition of the detector
// footprint into registered atoms, and decomposeAtoms must preserve the
// observable parity of every event it splits — the invariant the Pauli
// frame depends on.

import (
	"sort"
	"testing"

	"github.com/fpn/flagproxy/internal/dem"
)

// fuzzAtomKey mirrors decompose.go's keyOf encoding.
func fuzzAtomKey(dets []int) string {
	b := make([]byte, 0, 4*len(dets))
	for _, d := range dets {
		b = append(b, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
	}
	return string(b)
}

// fuzzDecomposeInput decodes fuzz bytes into a footprint of nDets
// distinct detectors, an atom dictionary (each remaining byte is a
// bitmask selecting a subset of the footprint; subsets of size ≤
// atomMax register as atoms), and per-atom observables.
func fuzzDecomposeInput(data []byte) (dets []int, atomMax int, atomObs map[string][]int, atomEvents []dem.ProjEvent) {
	if len(data) < 2 {
		return nil, 0, nil, nil
	}
	nDets := 2 + int(data[0])%7 // 2..8
	atomMax = 1 + int(data[1])%3
	for i := 0; i < nDets; i++ {
		dets = append(dets, 3*i+1) // distinct, non-contiguous ids
	}
	atomObs = map[string][]int{}
	for bi, mask := range data[2:] {
		var atom []int
		for i := 0; i < nDets; i++ {
			if mask&(1<<i) != 0 {
				atom = append(atom, dets[i])
			}
		}
		if len(atom) == 0 || len(atom) > atomMax {
			continue
		}
		k := fuzzAtomKey(atom)
		if _, dup := atomObs[k]; dup {
			continue
		}
		var obs []int
		if bi%2 == 0 {
			obs = []int{bi % 3}
		}
		atomObs[k] = obs
		atomEvents = append(atomEvents, dem.ProjEvent{Dets: atom, Obs: obs, P: 0.01})
	}
	return dets, atomMax, atomObs, atomEvents
}

func FuzzMatchDecomposition(f *testing.F) {
	f.Add([]byte{2, 1, 0b0011, 0b1100, 0b1111})    // 4 dets, pairs
	f.Add([]byte{4, 2, 0b000111, 0b111000})        // 6 dets, triples
	f.Add([]byte{6, 0, 0b01, 0b10, 0b100, 0b1000}) // singles only
	f.Add([]byte{3, 1, 0b10001, 0b01010, 0b00100}) // odd footprint
	f.Fuzz(func(t *testing.T, data []byte) {
		dets, atomMax, atomObs, atomEvents := fuzzDecomposeInput(data)
		if dets == nil {
			t.Skip()
		}
		parts := matchDecomposition(dets, atomMax, atomObs)
		if parts != nil {
			// Non-nil means a full partition into registered atoms.
			var flat []int
			for _, part := range parts {
				if len(part) == 0 || len(part) > atomMax {
					t.Fatalf("part %v exceeds atomMax %d", part, atomMax)
				}
				if _, ok := atomObs[fuzzAtomKey(part)]; !ok {
					t.Fatalf("part %v is not a registered atom", part)
				}
				flat = append(flat, part...)
			}
			sort.Ints(flat)
			if len(flat) != len(dets) {
				t.Fatalf("partition covers %d of %d dets: %v", len(flat), len(dets), parts)
			}
			for i, d := range dets {
				if flat[i] != d {
					t.Fatalf("partition %v is not a partition of %v", parts, dets)
				}
			}
		}

		// decomposeAtoms must preserve total observable parity whether the
		// search succeeded or fell back to consecutive pairs.
		big := dem.ProjEvent{Dets: dets, Obs: []int{0, 2}, P: 0.02}
		events := append(append([]dem.ProjEvent(nil), atomEvents...), big)
		out := decomposeAtoms(events, atomMax, 16)
		if !sameParity(parityOf(out), parityOf(events)) {
			t.Fatalf("decomposeAtoms changed observable parity: in %v out %v", events, out)
		}
		for _, ev := range out {
			if len(ev.Dets) > atomMax && len(ev.Dets) > 2 {
				t.Fatalf("output event %v has footprint larger than atomMax %d and the pair fallback", ev, atomMax)
			}
		}
	})
}

// parityOf XORs every event's observable set into one parity vector.
func parityOf(events []dem.ProjEvent) map[int]bool {
	par := map[int]bool{}
	for _, ev := range events {
		for _, o := range ev.Obs {
			if par[o] {
				delete(par, o)
			} else {
				par[o] = true
			}
		}
	}
	return par
}

func sameParity(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b[o] {
			return false
		}
	}
	return true
}
