//go:build !race

package decoder

// Default differential matrix: every catalog code small enough to keep
// the suite fast (model extraction for the n≥300 entries takes several
// seconds each). Set FPN_DIFF_FULL=1 to sweep the entire catalog.

import (
	"fmt"
	"os"
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
)

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	maxN := 64
	if os.Getenv("FPN_DIFF_FULL") != "" {
		maxN = 1 << 30
	}
	var out []diffCase
	for _, e := range catalog.Standard() {
		if e.Code.N > maxN {
			continue
		}
		out = append(out, diffCase{
			name:  fmt.Sprintf("%s-%d_%d-n%d", e.Family, e.Subfamily[0], e.Subfamily[1], e.Code.N),
			code:  e.Code,
			color: e.Family == "color",
		})
	}
	if len(out) == 0 {
		t.Fatal("no catalog codes under the size cap")
	}
	return out
}
