package decoder

// Fault-injection on the rotated d=5 planar surface code under the
// canonical schedule: exact MWPM must correct every unambiguous single
// fault, and (distance permitting: 2·2 < 5) every sampled double fault,
// through the cached hot path and the naive path alike.

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

func obsMatches(corr []bool, obs []int) bool {
	for o := range corr {
		want := false
		for _, x := range obs {
			if x == o {
				want = true
			}
		}
		if corr[o] != want {
			return false
		}
	}
	return true
}

func xorObs(evs ...dem.Event) []int {
	set := map[int]bool{}
	for _, ev := range evs {
		for _, o := range ev.Obs {
			set[o] = !set[o]
		}
	}
	var out []int
	for o, on := range set {
		if on {
			out = append(out, o)
		}
	}
	return out
}

func TestMWPMPlanarD5FaultInjection(t *testing.T) {
	model, _ := planarModel(t, 5, 1e-3)
	dec, err := NewMWPM(model, css.Z, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	amb := ambiguousFaults(model)
	sc := NewScratch()
	dd := diffDecoder{"mwpm-planar", dec,
		func(bit func(int) bool) ([]bool, error) { return naiveMWPMDecode(dec, bit) }}

	// Every single fault: differential equality plus correctness.
	fails, ambFails := 0, 0
	for ei, ev := range model.Events {
		bit := combinedDetBit(ev)
		assertSameDecode(t, dd, sc, bit, fmt.Sprintf("single-fault=%d", ei))
		corr, err := dec.DecodeWith(sc, bit)
		if err != nil {
			t.Fatalf("single fault %d: %v", ei, err)
		}
		if !obsMatches(corr, ev.Obs) {
			fails++
			if amb[eventKey(ev)] {
				ambFails++
			}
		}
	}
	t.Logf("planar d=5 singles: %d/%d failures (%d ambiguous)", fails, len(model.Events), ambFails)
	if fails > ambFails {
		t.Errorf("MWPM failed %d unambiguous single faults on planar d=5", fails-ambFails)
	}

	// Sampled double faults: at d=5 every weight-2 fault pattern is
	// within the code's correction radius, so an exact matcher over a
	// distance-preserving circuit corrects all of them (ambiguous pairs
	// excepted, detected by syndrome collision against the singles).
	rng := rand.New(rand.NewSource(9))
	const doubles = 500
	dFails := 0
	for di := 0; di < doubles; di++ {
		i := rng.Intn(len(model.Events))
		j := rng.Intn(len(model.Events))
		if i == j {
			continue
		}
		evI, evJ := model.Events[i], model.Events[j]
		bit := combinedDetBit(evI, evJ)
		assertSameDecode(t, dd, sc, bit, fmt.Sprintf("double-fault=%d+%d", i, j))
		corr, err := dec.DecodeWith(sc, bit)
		if err != nil {
			t.Fatalf("double fault %d+%d: %v", i, j, err)
		}
		if !obsMatches(corr, xorObs(evI, evJ)) {
			dFails++
			t.Logf("double fault %d+%d miscorrected (dets %v+%v)", i, j, evI.Dets, evJ.Dets)
		}
	}
	t.Logf("planar d=5 doubles: %d/%d failures", dFails, doubles)
	if dFails > 0 {
		t.Errorf("MWPM failed %d sampled double faults on planar d=5", dFails)
	}
}
