package decoder

import (
	"errors"
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// A panic raised anywhere below Decode/DecodeWith — here injected
// through the detector-bit callback, the same unwinding path a matching
// invariant panic takes — must surface as a returned error, not crash
// the caller. Multi-hour Monte-Carlo sweeps count such failures
// conservatively instead of dying.
func TestDecodeRecoversPanicsIntoErrors(t *testing.T) {
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 2, 1e-3)
	mw, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := NewUnionFind(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	// The Restriction decoder wants a 3-colorable check structure.
	ccode, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	cmodel, _ := buildModel(t, ccode, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 2, 1e-3)
	rs, err := NewRestriction(cmodel, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBPOSD(model, css.Z, 5)
	if err != nil {
		t.Fatal(err)
	}
	boom := func(int) bool { panic("matching: stuck without maxCardinality") }
	decs := map[string]struct {
		dec interface {
			Decode(func(int) bool) ([]bool, error)
		}
		tag string // decoder identity every counted error must carry
	}{
		"mwpm":        {mw, "mwpm(basis=Z flags=true pM=0.001)"},
		"unionfind":   {uf, "unionfind(basis=Z flags=true pM=0.001)"},
		"restriction": {rs, "restriction(basis=Z flags=true lifting=true pM=0.001)"},
		"bposd":       {bp, "bp-osd(basis=Z iters=5)"},
	}
	for name, tc := range decs {
		corr, err := tc.dec.Decode(boom)
		if err == nil {
			t.Errorf("%s: panic below Decode was not recovered into an error", name)
			continue
		}
		if corr != nil {
			t.Errorf("%s: recovered Decode returned a non-nil correction", name)
		}
		if !strings.Contains(err.Error(), "recovered panic") || !strings.Contains(err.Error(), "maxCardinality") {
			t.Errorf("%s: recovered error %q lost the panic message", name, err)
		}
		if !strings.Contains(err.Error(), tc.tag) {
			t.Errorf("%s: recovered error %q lost the decoder context %q", name, err, tc.tag)
		}
	}
	// A healthy shot must still decode after a recovered panic on the
	// same decoder and scratch: recovery must not poison shared state.
	sc := NewScratch()
	if _, err := mw.DecodeWith(sc, boom); err == nil {
		t.Fatal("DecodeWith did not recover the injected panic")
	}
	if corr, err := mw.DecodeWith(sc, func(int) bool { return false }); err != nil || corr == nil {
		t.Fatalf("decode after a recovered panic failed: corr=%v err=%v", corr, err)
	}
}

// Recover preserves error-typed panic values via %w so callers can
// still match them with errors.Is/As.
func TestRecoverWrapsErrorValues(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	var err error
	func() {
		defer Recover(&err)
		panic(sentinel)
	}()
	if !errors.Is(err, sentinel) {
		t.Fatalf("recovered error %v does not wrap the panic value", err)
	}
	// Non-panicking paths must leave err untouched.
	err = nil
	func() { defer Recover(&err) }()
	if err != nil {
		t.Fatalf("Recover invented an error on a clean path: %v", err)
	}
}

// annotateErr must tag errors (including ones Recover just produced —
// defers run LIFO, so Recover fires first) and must stay silent on the
// happy path.
func TestAnnotateErrTagsRecoveredPanics(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	f := func(explode bool) (err error) {
		defer annotateErr("mwpm(basis=Z flags=true pM=0.001)", &err)
		defer Recover(&err)
		if explode {
			panic(sentinel)
		}
		return nil
	}
	err := f(true)
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("annotated error %v no longer wraps the panic value", err)
	}
	if !strings.Contains(err.Error(), "mwpm(basis=Z flags=true pM=0.001)") {
		t.Fatalf("annotated error %q lost the decoder identity", err)
	}
	if err := f(false); err != nil {
		t.Fatalf("annotateErr invented an error on a clean path: %v", err)
	}
}
