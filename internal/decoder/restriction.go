package decoder

import (
	"fmt"
	"math"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
)

// latticePairs enumerates the restricted lattices L_RG, L_RB, L_GB.
var latticePairs = [3][2]int{{0, 1}, {0, 2}, {1, 2}}

// Restriction is the flagged Restriction decoder for color codes: it
// matches flipped syndrome bits on the three color-restricted lattices,
// removes doubly-selected flag edges immediately (the paper's key rule),
// and lifts the remaining matched edges to Pauli-frame corrections.
//
// Like MWPM, it caches the flagless shortest-path trees of each
// restricted lattice (weights are fixed per run unless flags fire) and
// draws all per-shot state from a caller-owned DecodeScratch.
type Restriction struct {
	Basis css.Basis
	// UseFlags enables flag-conditioned representative selection in the
	// matching stage.
	UseFlags bool
	// FlagLifting enables the paper's flag handling outside the matching
	// stage (flag-conditioned Pauli frames and the double-appearance
	// rule). When false the decoder behaves like Chamberland et al.'s,
	// which "only handles flag edges in the MWPM stage".
	FlagLifting bool

	// Debug, when non-nil, receives a trace of each decode.
	Debug func(format string, args ...interface{})

	classes []dem.Class
	pM      float64
	numObs  int
	id      string // kind+config tag attached to decode errors

	detColor map[int]int
	detAll   []int // sorted syndrome detectors of this basis

	// Per lattice: vertices, adjacency, edges referencing classes.
	latVerts  [3][]int
	latVertOf [3]map[int]int
	latEdges  [3][]graphEdge
	latAdj    [3][][]int

	baseRep    []dem.ProjEvent
	baseWeight []float64
	flagIndex  map[int][]int
	empty      *dem.Class // empty-syndrome equivalence class, if any
	flagAll    []int      // every flag detector mentioned by any class

	spt [3]*sptCache // base-weight trees per restricted lattice
}

// NewRestriction builds the decoder for one basis of a color-code model.
func NewRestriction(model *dem.Model, basis css.Basis, pM float64, useFlags, flagLifting bool) (*Restriction, error) {
	events := model.Project(basis)
	// Propagation errors flip many plaquettes at once; decompose them
	// into existing atoms of at most three detectors (one per color) so
	// every class is representable on the restricted lattices.
	events = decomposeAtoms(events, 3, 12)
	classes := dem.BuildClasses(events)
	d := &Restriction{
		Basis:       basis,
		UseFlags:    useFlags,
		FlagLifting: flagLifting,
		classes:     classes,
		pM:          pM,
		numObs:      len(model.Circuit.Observables),
		detColor:    map[int]int{},
		flagIndex:   map[int][]int{},
	}
	d.id = fmt.Sprintf("restriction(basis=%c flags=%v lifting=%v pM=%g)", basis, useFlags, flagLifting, pM)
	for di, det := range model.Circuit.Detectors {
		if !det.IsFlag && det.Basis == basis {
			if det.Color < 0 || det.Color > 2 {
				return nil, fmt.Errorf("decoder: detector %d lacks a color", di)
			}
			d.detColor[di] = det.Color
			d.detAll = append(d.detAll, di)
		}
	}
	sort.Ints(d.detAll)
	for li := range latticePairs {
		d.latVertOf[li] = map[int]int{}
	}
	for ci, cl := range classes {
		if len(cl.Dets) == 0 {
			d.empty = &classes[ci]
			continue
		}
		for li, pair := range latticePairs {
			var proj []int
			for _, det := range cl.Dets {
				c := d.detColor[det]
				if c == pair[0] || c == pair[1] {
					proj = append(proj, det)
				}
			}
			if len(proj) != 2 {
				continue // not representable as an edge of this lattice
			}
			var vs [2]int
			for k, det := range proj {
				vi, ok := d.latVertOf[li][det]
				if !ok {
					vi = len(d.latVerts[li])
					d.latVertOf[li][det] = vi
					d.latVerts[li] = append(d.latVerts[li], det)
				}
				vs[k] = vi
			}
			for len(d.latAdj[li]) < len(d.latVerts[li]) {
				d.latAdj[li] = append(d.latAdj[li], nil)
			}
			ei := len(d.latEdges[li])
			d.latEdges[li] = append(d.latEdges[li], graphEdge{u: vs[0], v: vs[1], class: ci})
			d.latAdj[li][vs[0]] = append(d.latAdj[li][vs[0]], ei)
			d.latAdj[li][vs[1]] = append(d.latAdj[li][vs[1]], ei)
		}
	}
	d.flagAll = collectFlagList(classes)
	d.baseRep = make([]dem.ProjEvent, len(classes))
	d.baseWeight = make([]float64, len(classes))
	for ci := range classes {
		rep, p := classes[ci].Representative(nil, pM)
		d.baseRep[ci] = rep
		d.baseWeight[ci] = weightOf(p)
		seen := map[int]bool{}
		for _, m := range classes[ci].Members {
			for _, f := range m.Flags {
				if !seen[f] {
					seen[f] = true
					d.flagIndex[f] = append(d.flagIndex[f], ci)
				}
			}
		}
	}
	for li := range latticePairs {
		li := li
		nv := len(d.latAdj[li])
		d.spt[li] = newSPTCache(nv, func(s int) ([]float64, []int) {
			dist := make([]float64, nv)
			prev := make([]int, nv)
			var pq floatHeap
			dijkstraInto(s, d.baseWeight, d.latEdges[li], d.latAdj[li], dist, prev, &pq)
			return dist, prev
		})
	}
	return d, nil
}

// Decode maps detector bits to predicted observable flips. It allocates
// a private scratch per call; hot loops should hold a DecodeScratch and
// call DecodeWith.
func (d *Restriction) Decode(detBit func(int) bool) ([]bool, error) {
	return d.DecodeWith(NewScratch(), detBit)
}

// DecodeWith is Decode drawing every per-shot buffer from sc. The
// returned slice aliases sc and is valid until sc's next use. Panics
// from the matching layer are recovered into returned errors.
//
//fpn:hotpath
func (d *Restriction) DecodeWith(sc *DecodeScratch, detBit func(int) bool) (corr []bool, err error) {
	defer annotateErr(d.id, &err)
	defer Recover(&err)
	sc.reset(d.numObs)
	rs := &sc.rest
	rs.ensure()
	correction := sc.correction
	rs.flipped = rs.flipped[:0]
	for _, det := range d.detAll {
		if detBit(det) {
			rs.flipped = append(rs.flipped, det)
		}
	}
	flipped := rs.flipped
	if d.UseFlags {
		for _, f := range d.flagAll {
			if detBit(f) {
				sc.flags.Add(f)
			}
		}
	}
	nFlags := sc.flags.Len()
	if len(flipped) == 0 {
		// No parity check fired: only the empty-syndrome equivalence
		// class (flag-only propagation errors) can explain the flags.
		if d.UseFlags && d.FlagLifting {
			applyEmptyClass(d.empty, &sc.flags, correction)
		}
		return correction, nil
	}
	rep := d.baseRep
	weight := d.baseWeight
	if nFlags > 0 {
		// The restriction decoder keeps base −log π weights and adds only
		// the flag-similarity penalty (Equation 9's pM term); the
		// π^{|σ|−1} exponent is specific to the pairwise matching graph
		// and would double-count 3-detector data classes here.
		rep, weight = sc.ensureClassOverlay(len(d.classes))
		copy(rep, d.baseRep)
		wM := weightOf(d.pM)
		for ci := range d.classes {
			weight[ci] = d.baseWeight[ci] + float64(nFlags)*wM
		}
		for _, f := range sc.flags.Flags() {
			for _, ci := range d.flagIndex[f] {
				sc.adjusted.add(ci)
			}
		}
		for _, ci := range sc.adjusted.keys() {
			r, diff := d.classes[ci].Select(&sc.flags)
			rep[ci] = r
			weight[ci] = weightOf(r.P) + float64(diff)*wM
		}
	}
	// Matching on the three restricted lattices; EM counts class picks.
	em := rs.em
	for li, pair := range latticePairs {
		rs.latSrc = rs.latSrc[:0]
		for _, det := range flipped {
			c := d.detColor[det]
			if c != pair[0] && c != pair[1] {
				continue
			}
			vi, ok := d.latVertOf[li][det]
			if !ok {
				return nil, fmt.Errorf("decoder: flipped detector %d not in lattice %d", det, li)
			}
			rs.latSrc = append(rs.latSrc, vi)
		}
		src := rs.latSrc
		if len(src) == 0 {
			continue
		}
		if len(src)%2 != 0 {
			return nil, fmt.Errorf("decoder: odd syndrome weight %d in restricted lattice %d", len(src), li)
		}
		k := len(src)
		dists, prevs := sc.ensureTreeTables(k)
		if nFlags > 0 {
			nv := len(d.latAdj[li])
			sc.dij.ensure(k, nv)
			for i, s := range src {
				di, pi := sc.dij.row(i)
				dijkstraInto(s, weight, d.latEdges[li], d.latAdj[li], di, pi, &sc.dij.heap)
				dists[i], prevs[i] = di, pi
			}
		} else {
			for i, s := range src {
				dists[i], prevs[i] = d.spt[li].tree(s)
			}
		}
		sc.medges = sc.medges[:0]
		for i := 0; i < len(src); i++ {
			for j := i + 1; j < len(src); j++ {
				if w := dists[i][src[j]]; !math.IsInf(w, 1) {
					sc.medges = append(sc.medges, matchEdge{i, j, w})
				}
			}
		}
		mate, err := minWeightPerfectWS(sc, len(src), sc.medges)
		if err != nil {
			return nil, fmt.Errorf("decoder: lattice %d matching: %w", li, err)
		}
		for i := range src {
			j := mate[i]
			if j < i {
				continue
			}
			cur := src[j]
			for cur != src[i] {
				ei := prevs[i][cur]
				if ei < 0 {
					return nil, fmt.Errorf("decoder: broken path in lattice %d", li)
				}
				e := d.latEdges[li][ei]
				em[e.class]++
				if d.Debug != nil {
					d.Debug("lattice %d: path edge class %d dets=%v obs=%v w=%.2f",
						li, e.class, d.classes[e.class].Dets, rep[e.class].Obs, weight[e.class])
				}
				if e.u == cur {
					cur = e.v
				} else {
					cur = e.u
				}
			}
		}
	}
	// Lifting.
	applyClass := func(ci int) {
		r := rep[ci]
		if !d.FlagLifting {
			r = d.baseRep[ci]
		}
		for _, o := range r.Obs {
			correction[o] = !correction[o]
		}
	}
	applied := rs.applied
	if d.FlagLifting {
		// Paper rule: flag edges appearing at least twice in EM are
		// corrected immediately and removed.
		//fpnvet:orderless each class toggles a disjoint set of correction bits (XOR commutes)
		for ci, count := range em {
			if count >= 2 && len(rep[ci].Flags) > 0 {
				applyClass(ci)
				applied[ci] = true
				delete(em, ci)
			}
		}
	}
	//fpnvet:orderless each class toggles its own correction bits (XOR commutes)
	for ci, count := range em {
		if count >= 2 {
			applyClass(ci)
			applied[ci] = true
			delete(em, ci)
		}
	}
	// Residual repair: classes selected by only one lattice (or missed
	// entirely) are applied greedily while they reduce the residual
	// syndrome.
	residual := rs.residual
	for _, det := range flipped {
		residual[det] = true
	}
	//fpnvet:orderless residual toggling is a commutative XOR accumulation
	for ci := range applied {
		for _, det := range d.classes[ci].Dets {
			toggle(residual, det)
		}
	}
	if len(residual) > 0 {
		// Exact-cover repair: find the minimum-weight set of classes
		// (preferring those the matchings touched) whose footprints XOR
		// to the residual syndrome.
		cover := d.coverResidual(residual, em, applied, weight)
		for _, ci := range cover {
			applyClass(ci)
		}
	}
	return correction, nil
}

// ensure lazily creates the Restriction maps of a scratch and clears
// the per-shot state.
func (rs *restScratch) ensure() {
	if rs.em == nil {
		rs.em = map[int]int{}
		rs.applied = map[int]bool{}
		rs.residual = map[int]bool{}
	}
	if len(rs.em) > 0 {
		clear(rs.em)
	}
	if len(rs.applied) > 0 {
		clear(rs.applied)
	}
	if len(rs.residual) > 0 {
		clear(rs.residual)
	}
}

// coverResidual searches for a minimum-weight subset of classes whose
// detector footprints XOR exactly to the residual. Candidates are the
// classes fully contained in the residual, with classes selected by a
// single lattice matching discounted so they are preferred. The residual
// from near-distance fault patterns is small, so a bounded DFS suffices;
// an empty result means the repair gave up. This path only runs when the
// three matchings disagree — rare at experiment noise rates — so it is
// allowed to allocate.
//
//fpnvet:coldpath residual repair runs only when the three lattice matchings disagree; the alloc gate bounds its frequency
func (d *Restriction) coverResidual(residual map[int]bool, em map[int]int, applied map[int]bool, weight []float64) []int {
	type cand struct {
		ci int
		w  float64
	}
	var cands []cand
	for ci := range d.classes {
		if applied[ci] {
			continue
		}
		if subset(d.classes[ci].Dets, residual) {
			w := weight[ci]
			if em[ci] > 0 {
				w /= 4 // the matchings voted for this class once
			}
			cands = append(cands, cand{ci, w})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].w < cands[j].w })
	if len(cands) > 40 {
		cands = cands[:40]
	}
	target := map[int]bool{}
	//fpnvet:orderless set copy; no order-dependent state
	for det := range residual {
		target[det] = true
	}
	var best []int
	bestW := math.Inf(1)
	var cur []int
	var dfs func(idx int, rem map[int]bool, w float64)
	dfs = func(idx int, rem map[int]bool, w float64) {
		if w >= bestW {
			return
		}
		if len(rem) == 0 {
			best = append([]int(nil), cur...)
			bestW = w
			return
		}
		if idx >= len(cands) || len(cur) >= 6 {
			return
		}
		for i := idx; i < len(cands); i++ {
			c := cands[i]
			if !subset(d.classes[c.ci].Dets, rem) {
				continue
			}
			for _, det := range d.classes[c.ci].Dets {
				toggle(rem, det)
			}
			cur = append(cur, c.ci)
			dfs(i+1, rem, w+c.w)
			cur = cur[:len(cur)-1]
			for _, det := range d.classes[c.ci].Dets {
				toggle(rem, det)
			}
		}
	}
	dfs(0, target, 0)
	return best
}

func subset(dets []int, set map[int]bool) bool {
	if len(dets) == 0 {
		return false
	}
	for _, det := range dets {
		if !set[det] {
			return false
		}
	}
	return true
}
