package decoder

import (
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
)

// flagSetOf builds a dem.FlagSet holding the given ids, for test brevity.
func flagSetOf(ids ...int) *dem.FlagSet {
	s := &dem.FlagSet{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestApplyEmptyClassSemantics(t *testing.T) {
	empty := &dem.Class{Members: []dem.ProjEvent{
		{Flags: []int{10, 11}, Obs: []int{0}, P: 1e-4},
		{Flags: []int{12}, Obs: []int{1}, P: 2e-4},
	}}
	// Exact flag match fires the member's frames.
	corr := make([]bool, 2)
	applyEmptyClass(empty, flagSetOf(10, 11), corr)
	if !corr[0] || corr[1] {
		t.Fatalf("corr = %v, want [true false]", corr)
	}
	// A completely unrelated flag is better explained by "no error":
	// member diffs (1+2=3, 1+1=2) are not below |F| = 1 → no action.
	corr = make([]bool, 2)
	applyEmptyClass(empty, flagSetOf(99), corr)
	if corr[0] || corr[1] {
		t.Fatalf("corr = %v, want no action", corr)
	}
	// No flags observed: never fires.
	corr = make([]bool, 2)
	applyEmptyClass(empty, flagSetOf(), corr)
	if corr[0] || corr[1] {
		t.Fatal("empty class fired without flags")
	}
	// Nil class is a no-op.
	applyEmptyClass(nil, flagSetOf(10), corr)
}

// Flag-only logical errors (zero syndrome, flags fired) exist on the
// weight-8 color codes and must decode through the empty-syndrome class.
// This is the regression test for the blind spot found on [[32,12,4]].
func TestFlagOnlyLogicalErrorsDecoded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow regression probe")
	}
	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == "color" && e.Code.N == 32 {
			code = e.Code
		}
	}
	if code == nil {
		t.Skip("no [[32,12,4]] code")
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 4, 1e-3)
	dec, err := NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	flagOnly, fails := 0, 0
	for _, ev := range model.Events {
		zdets := 0
		for _, d := range ev.Dets {
			if model.Circuit.Detectors[d].Basis == css.Z {
				zdets++
			}
		}
		if zdets != 0 || len(ev.Obs) == 0 {
			continue
		}
		flagOnly++
		corr, err := dec.Decode(detBitFromEvent(ev))
		if err != nil {
			t.Fatal(err)
		}
		for o := range corr {
			want := false
			for _, x := range ev.Obs {
				if x == o {
					want = true
				}
			}
			if corr[o] != want {
				fails++
				break
			}
		}
	}
	if flagOnly == 0 {
		t.Skip("no flag-only logical events in this model")
	}
	t.Logf("flag-only logical events: %d, failures: %d", flagOnly, fails)
	if fails > 0 {
		t.Fatalf("empty-syndrome class failed on %d/%d flag-only logicals", fails, flagOnly)
	}
}
