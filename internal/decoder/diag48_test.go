package decoder

import (
	"fmt"
	"testing"

	"github.com/fpn/flagproxy/internal/catalog"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

func TestDiag48RestrictionFailures(t *testing.T) {
	var code *css.Code
	for _, e := range catalog.Standard() {
		if e.Family == "color" && e.Code.N == 48 {
			code = e.Code
		}
	}
	if code == nil {
		t.Skip("no 48 code")
	}
	if testing.Short() {
		t.Skip("slow regression probe")
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 4, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[string]int{}
	shown := 0
	for _, ev := range model.Events {
		var zdets []int
		for _, d := range ev.Dets {
			if model.Circuit.Detectors[d].Basis == css.Z {
				zdets = append(zdets, d)
			}
		}
		if len(zdets) == 0 && len(ev.Obs) == 0 {
			continue
		}
		corr, err := dec.Decode(detBitFromEvent(ev))
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for o := range corr {
			want := false
			for _, x := range ev.Obs {
				if x == o {
					want = true
				}
			}
			if corr[o] != want {
				ok = false
			}
		}
		if ok || amb[eventKey(ev)] {
			continue
		}
		var colors []int
		for _, d := range zdets {
			colors = append(colors, model.Circuit.Detectors[d].Color)
		}
		key := fmt.Sprintf("n=%d colors=%v flags=%d obs=%d", len(zdets), colors, len(ev.Flags), len(ev.Obs))
		hist[key]++
		if shown < 6 {
			t.Logf("FAIL dets=%v colors=%v flags=%v obs=%v p=%.2g", zdets, colors, ev.Flags, ev.Obs, ev.P)
			shown++
		}
	}
	for k, v := range hist {
		t.Logf("%4d  %s", v, k)
	}
}
