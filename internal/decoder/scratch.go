// Decode scratch arenas. A DecodeScratch owns every per-shot buffer a
// decoder needs — flag sets, representative/weight overlays, Dijkstra
// storage, matching edge lists and the blossom workspace — so that the
// steady-state decode loop performs no heap allocation. Scratches are
// cheap to create, grow lazily to the largest decoder shape they have
// served, and may be moved freely between decoders; they must not be
// shared between goroutines. The decoders themselves stay immutable
// after construction (their shortest-path-tree caches are built lazily
// under per-source sync.Once), so one decoder may be shared by any
// number of workers each holding its own scratch.
package decoder

import (
	"sync"

	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/matching"
)

// ScratchDecoder is implemented by decoders whose hot path can run
// allocation-free against a caller-owned DecodeScratch.
type ScratchDecoder interface {
	// DecodeWith behaves exactly like Decode but draws every per-shot
	// buffer from sc. The returned slice aliases sc and is valid only
	// until the next DecodeWith call on the same scratch.
	DecodeWith(sc *DecodeScratch, detBit func(int) bool) ([]bool, error)
}

// DecodeScratch is a per-worker reusable arena for decoder hot paths.
// The zero value is not ready; use NewScratch.
type DecodeScratch struct {
	correction []bool
	src        []int
	flags      dem.FlagSet // observed flags, in ascending detector order
	adjusted   markSet     // classes whose representative needs re-selection
	rep        []dem.ProjEvent
	weight     []float64

	// Dijkstra-from-source storage for flag-adjusted shots (the cached
	// trees cover the flagless steady state).
	dij dijkstraScratch

	// Per-source tree pointer tables (either into the cache or into dij
	// rows).
	dist [][]float64
	prev [][]int

	medges []matchEdge
	qedges []matching.Edge
	match  matching.Workspace

	uf   ufScratch
	rest restScratch
	bp   bpScratch

	// Batch-decode state (defect extraction buffers and the syndrome
	// memo); untouched by reset, revalidated against its owning Batch on
	// every DecodeBatch call. See batch.go.
	batch batchScratch
}

// NewScratch returns an empty scratch arena ready for DecodeWith.
func NewScratch() *DecodeScratch {
	return &DecodeScratch{}
}

// reset prepares the shared buffers for a new shot with numObs
// observables.
func (sc *DecodeScratch) reset(numObs int) {
	sc.correction = growBools(sc.correction, numObs)
	for i := range sc.correction {
		sc.correction[i] = false
	}
	sc.src = sc.src[:0]
	sc.medges = sc.medges[:0]
	sc.flags.Reset()
	sc.adjusted.reset()
}

// markSet is an ordered set over small dense int keys (class indices):
// a membership array plus an insertion-order list, so iterating the
// marked classes is deterministic — unlike the map[int]bool it replaced,
// whose range order varied run to run.
type markSet struct {
	marked []bool
	list   []int
}

// add marks key k, growing the membership array as needed.
func (s *markSet) add(k int) {
	if k >= len(s.marked) {
		if k < cap(s.marked) {
			s.marked = s.marked[:k+1]
		} else {
			grown := make([]bool, k+1)
			copy(grown, s.marked)
			s.marked = grown
		}
	}
	if s.marked[k] {
		return
	}
	s.marked[k] = true
	s.list = append(s.list, k)
}

// keys returns the marked keys in insertion order; the slice aliases the
// set and is valid until the next add or reset.
func (s *markSet) keys() []int { return s.list }

// reset unmarks everything, keeping storage for reuse.
func (s *markSet) reset() {
	for _, k := range s.list {
		s.marked[k] = false
	}
	s.list = s.list[:0]
}

// ensureClassOverlay sizes the per-shot representative/weight overlays.
func (sc *DecodeScratch) ensureClassOverlay(n int) ([]dem.ProjEvent, []float64) {
	if cap(sc.rep) < n {
		sc.rep = make([]dem.ProjEvent, n)
	}
	if cap(sc.weight) < n {
		sc.weight = make([]float64, n)
	}
	sc.rep = sc.rep[:n]
	sc.weight = sc.weight[:n]
	return sc.rep, sc.weight
}

// dijkstraScratch holds the per-source rows used when per-shot weights
// differ from the cached base weights.
type dijkstraScratch struct {
	dist []float64 // k rows × nv, flattened
	prev []int
	heap floatHeap
	rows int
	nv   int
}

// ensure sizes the arena for k sources over nv vertices and returns the
// row accessors.
func (d *dijkstraScratch) ensure(k, nv int) {
	if need := k * nv; cap(d.dist) < need {
		d.dist = make([]float64, need)
		d.prev = make([]int, need)
	}
	d.dist = d.dist[:k*nv]
	d.prev = d.prev[:k*nv]
	d.rows, d.nv = k, nv
}

func (d *dijkstraScratch) row(i int) ([]float64, []int) {
	lo, hi := i*d.nv, (i+1)*d.nv
	return d.dist[lo:hi:hi], d.prev[lo:hi:hi]
}

// ensureTreeTables sizes the per-source tree pointer tables.
func (sc *DecodeScratch) ensureTreeTables(k int) ([][]float64, [][]int) {
	if cap(sc.dist) < k {
		sc.dist = make([][]float64, k)
		sc.prev = make([][]int, k)
	}
	sc.dist = sc.dist[:k]
	sc.prev = sc.prev[:k]
	return sc.dist, sc.prev
}

// ufScratch is the union-find decoder's arena.
type ufScratch struct {
	defect     []bool
	defects    []int
	parent     []int
	rank       []int
	parity     []int
	bound      []bool
	growth     []int
	inCluster  []bool
	grownEdges []int
	toGrow     []int
	treeAdj    [][]int
	touched    []int // vertices whose treeAdj rows need clearing
	visited    []bool
	order      []int
	parentEdge []int
	queue      []int
}

// restScratch is the Restriction decoder's arena.
type restScratch struct {
	flipped  []int
	em       map[int]int
	applied  map[int]bool
	residual map[int]bool
	latSrc   []int
}

// bpScratch is the BP+OSD decoder's arena, shaped by the decoder's
// Tanner graph (slot-indexed message storage).
type bpScratch struct {
	syndrome  []bool
	priorLLR  []float64
	v2c       []float64 // flattened by variable slot offsets
	c2v       []float64
	posterior []float64
	hard      []bool
	nv        int
	slots     int
}

func (b *bpScratch) ensure(rows, nv, slots int) {
	if cap(b.syndrome) < rows {
		b.syndrome = make([]bool, rows)
	}
	b.syndrome = b.syndrome[:rows]
	if cap(b.priorLLR) < nv {
		b.priorLLR = make([]float64, nv)
		b.posterior = make([]float64, nv)
		b.hard = make([]bool, nv)
	}
	b.priorLLR = b.priorLLR[:nv]
	b.posterior = b.posterior[:nv]
	b.hard = b.hard[:nv]
	if cap(b.v2c) < slots {
		b.v2c = make([]float64, slots)
		b.c2v = make([]float64, slots)
	}
	b.v2c = b.v2c[:slots]
	b.c2v = b.c2v[:slots]
	b.nv, b.slots = nv, slots
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// sptCache is a lazily built, read-only-after-build cache of shortest-
// path trees over a fixed weighted decoding graph. Weights are p- and
// model-fixed for an entire run, so the tree from each source is
// computed at most once (under a per-source sync.Once) and then shared
// by every worker without further synchronization.
type sptCache struct {
	once    []sync.Once
	dist    [][]float64
	prev    [][]int
	compute func(s int) ([]float64, []int)
}

func newSPTCache(nv int, compute func(int) ([]float64, []int)) *sptCache {
	return &sptCache{
		once:    make([]sync.Once, nv),
		dist:    make([][]float64, nv),
		prev:    make([][]int, nv),
		compute: compute,
	}
}

// tree returns the cached shortest-path tree rooted at s, building it
// on first use.
func (c *sptCache) tree(s int) ([]float64, []int) {
	c.once[s].Do(func() {
		c.dist[s], c.prev[s] = c.compute(s)
	})
	return c.dist[s], c.prev[s]
}
