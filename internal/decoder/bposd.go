package decoder

import (
	"math"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/gf2"
)

// BPOSD is a belief-propagation + ordered-statistics decoder operating
// directly on the projected detector error model: variables are the
// error mechanisms (equivalence-class members kept separate, so flag
// bits participate as ordinary checks), and the parity checks are the
// syndrome and flag detectors. This is the modern general-QLDPC
// decoding stack (Panteleev–Kalachev / Roffe style) included as an
// extension: unlike matching it needs no graph-like structure, so it
// also applies to the hypergraph-product codes of §VII-A.
type BPOSD struct {
	Basis css.Basis
	// Iters is the number of min-sum iterations before OSD (default 30).
	Iters int

	numObs int
	dets   []int // row order: detector ids (syndrome + flag)
	rowOf  map[int]int
	varDet [][]int // variable -> row indices
	varObs [][]int // variable -> observables flipped
	prior  []float64
	h      *gf2.Matrix // rows = dets, cols = variables
}

// NewBPOSD builds the decoder for one syndrome basis; flag detectors are
// included as checks so the flag protocol is used implicitly.
func NewBPOSD(model *dem.Model, basis css.Basis, iters int) (*BPOSD, error) {
	if iters <= 0 {
		iters = 30
	}
	events := model.Project(basis)
	d := &BPOSD{Basis: basis, Iters: iters, numObs: len(model.Circuit.Observables), rowOf: map[int]int{}}
	addRow := func(det int) int {
		if r, ok := d.rowOf[det]; ok {
			return r
		}
		r := len(d.dets)
		d.rowOf[det] = r
		d.dets = append(d.dets, det)
		return r
	}
	for _, ev := range events {
		var rows []int
		for _, det := range ev.Dets {
			rows = append(rows, addRow(det))
		}
		for _, f := range ev.Flags {
			rows = append(rows, addRow(f))
		}
		d.varDet = append(d.varDet, rows)
		d.varObs = append(d.varObs, append([]int(nil), ev.Obs...))
		p := ev.P
		if p < 1e-12 {
			p = 1e-12
		}
		if p > 0.49 {
			p = 0.49
		}
		d.prior = append(d.prior, p)
	}
	d.h = gf2.MatrixFromSupports(len(d.dets), len(d.varDet), transposeSupports(len(d.dets), d.varDet))
	return d, nil
}

// transposeSupports turns per-variable row lists into per-row variable
// lists.
func transposeSupports(rows int, varDet [][]int) [][]int {
	out := make([][]int, rows)
	for v, rs := range varDet {
		for _, r := range rs {
			out[r] = append(out[r], v)
		}
	}
	return out
}

// Decode runs min-sum BP on the Tanner graph of (detectors × error
// mechanisms); if the hard decision does not reproduce the syndrome, an
// OSD-0 pass solves for the most reliable consistent error set.
func (d *BPOSD) Decode(detBit func(int) bool) ([]bool, error) {
	correction := make([]bool, d.numObs)
	syndrome := make([]bool, len(d.dets))
	any := false
	for r, det := range d.dets {
		if detBit(det) {
			syndrome[r] = true
			any = true
		}
	}
	if !any {
		return correction, nil
	}
	nv := len(d.varDet)
	// Message storage indexed by (variable, position in its row list).
	v2c := make([][]float64, nv)
	c2v := make([][]float64, nv)
	priorLLR := make([]float64, nv)
	for v := 0; v < nv; v++ {
		priorLLR[v] = math.Log((1 - d.prior[v]) / d.prior[v])
		v2c[v] = make([]float64, len(d.varDet[v]))
		c2v[v] = make([]float64, len(d.varDet[v]))
		for k := range v2c[v] {
			v2c[v][k] = priorLLR[v]
		}
	}
	// Check adjacency: row -> list of (variable, slot).
	type slotRef struct{ v, k int }
	rowVars := make([][]slotRef, len(d.dets))
	for v := 0; v < nv; v++ {
		for k, r := range d.varDet[v] {
			rowVars[r] = append(rowVars[r], slotRef{v, k})
		}
	}
	posterior := make([]float64, nv)
	hard := make([]bool, nv)
	for iter := 0; iter < d.Iters; iter++ {
		// Check update (min-sum with sign from syndrome).
		for r, refs := range rowVars {
			sign := 1.0
			if syndrome[r] {
				sign = -1.0
			}
			min1, min2 := math.Inf(1), math.Inf(1)
			arg1 := -1
			prod := sign
			for i, ref := range refs {
				m := v2c[ref.v][ref.k]
				if m < 0 {
					prod = -prod
				}
				a := math.Abs(m)
				if a < min1 {
					min2 = min1
					min1 = a
					arg1 = i
				} else if a < min2 {
					min2 = a
				}
			}
			for i, ref := range refs {
				mag := min1
				if i == arg1 {
					mag = min2
				}
				s := prod
				if v2c[ref.v][ref.k] < 0 {
					s = -s
				}
				c2v[ref.v][ref.k] = 0.75 * s * mag // normalized min-sum
			}
		}
		// Variable update and hard decision.
		satisfied := true
		for v := 0; v < nv; v++ {
			total := priorLLR[v]
			for k := range c2v[v] {
				total += c2v[v][k]
			}
			posterior[v] = total
			hard[v] = total < 0
			for k := range v2c[v] {
				v2c[v][k] = total - c2v[v][k]
			}
		}
		// Syndrome check for early exit.
		for r, refs := range rowVars {
			par := false
			for _, ref := range refs {
				if hard[ref.v] {
					par = !par
				}
			}
			if par != syndrome[r] {
				satisfied = false
				break
			}
		}
		if satisfied {
			for v := 0; v < nv; v++ {
				if hard[v] {
					for _, o := range d.varObs[v] {
						correction[o] = !correction[o]
					}
				}
			}
			return correction, nil
		}
	}
	// OSD-0: order variables by reliability (most-likely-error first) and
	// solve H·e = s on the reliable information set.
	order := make([]int, nv)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return posterior[order[i]] < posterior[order[j]] })
	perm := gf2.NewMatrix(d.h.Rows(), nv)
	for newCol, v := range order {
		for _, r := range d.varDet[v] {
			perm.Set(r, newCol, true)
		}
	}
	s := gf2.NewVec(d.h.Rows())
	for r, bit := range syndrome {
		if bit {
			s.Set(r, true)
		}
	}
	sol, ok := gf2.Solve(perm, s)
	if !ok {
		// The syndrome is outside the column space (should not happen for
		// a complete error model); return the BP hard decision.
		for v := 0; v < nv; v++ {
			if hard[v] {
				for _, o := range d.varObs[v] {
					correction[o] = !correction[o]
				}
			}
		}
		return correction, nil
	}
	for _, newCol := range sol.Support() {
		v := order[newCol]
		for _, o := range d.varObs[v] {
			correction[o] = !correction[o]
		}
	}
	return correction, nil
}
