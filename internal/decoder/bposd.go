package decoder

import (
	"fmt"
	"math"
	"sort"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/gf2"
)

// BPOSD is a belief-propagation + ordered-statistics decoder operating
// directly on the projected detector error model: variables are the
// error mechanisms (equivalence-class members kept separate, so flag
// bits participate as ordinary checks), and the parity checks are the
// syndrome and flag detectors. This is the modern general-QLDPC
// decoding stack (Panteleev–Kalachev / Roffe style) included as an
// extension: unlike matching it needs no graph-like structure, so it
// also applies to the hypergraph-product codes of §VII-A.
//
// The Tanner-graph structure (slot offsets, check adjacency, prior
// LLRs) is fixed per run and precomputed at construction; per-shot
// message storage comes flattened out of a DecodeScratch, so the BP
// iteration path is allocation-free. Only the OSD-0 fallback (BP
// non-convergence) allocates.
type BPOSD struct {
	Basis css.Basis
	// Iters is the number of min-sum iterations before OSD (default 30).
	Iters int

	numObs int
	id     string // kind+config tag attached to decode errors
	dets   []int  // row order: detector ids (syndrome + flag)
	rowOf  map[int]int
	varDet [][]int // variable -> row indices
	varObs [][]int // variable -> observables flipped
	prior  []float64
	h      *gf2.Matrix // rows = dets, cols = variables

	varOff   []int     // variable -> first message slot (len nv+1)
	priorLLR []float64 // log((1-p)/p) per variable
	rowRefs  []slotRef // flattened check adjacency
	rowOff   []int     // row -> first index into rowRefs (len rows+1)
}

// slotRef addresses one Tanner-graph edge: variable v, position k in its
// row list (message slot varOff[v]+k).
type slotRef struct{ v, k int }

// NewBPOSD builds the decoder for one syndrome basis; flag detectors are
// included as checks so the flag protocol is used implicitly.
func NewBPOSD(model *dem.Model, basis css.Basis, iters int) (*BPOSD, error) {
	if iters <= 0 {
		iters = 30
	}
	events := model.Project(basis)
	d := &BPOSD{Basis: basis, Iters: iters, numObs: len(model.Circuit.Observables), rowOf: map[int]int{}}
	d.id = fmt.Sprintf("bp-osd(basis=%c iters=%d)", basis, iters)
	addRow := func(det int) int {
		if r, ok := d.rowOf[det]; ok {
			return r
		}
		r := len(d.dets)
		d.rowOf[det] = r
		d.dets = append(d.dets, det)
		return r
	}
	for _, ev := range events {
		var rows []int
		for _, det := range ev.Dets {
			rows = append(rows, addRow(det))
		}
		for _, f := range ev.Flags {
			rows = append(rows, addRow(f))
		}
		d.varDet = append(d.varDet, rows)
		d.varObs = append(d.varObs, append([]int(nil), ev.Obs...))
		p := ev.P
		if p < 1e-12 {
			p = 1e-12
		}
		if p > 0.49 {
			p = 0.49
		}
		d.prior = append(d.prior, p)
	}
	d.h = gf2.MatrixFromSupports(len(d.dets), len(d.varDet), transposeSupports(len(d.dets), d.varDet))
	nv := len(d.varDet)
	d.varOff = make([]int, nv+1)
	d.priorLLR = make([]float64, nv)
	for v := 0; v < nv; v++ {
		d.varOff[v+1] = d.varOff[v] + len(d.varDet[v])
		d.priorLLR[v] = math.Log((1 - d.prior[v]) / d.prior[v])
	}
	counts := make([]int, len(d.dets))
	for v := 0; v < nv; v++ {
		for _, r := range d.varDet[v] {
			counts[r]++
		}
	}
	d.rowOff = make([]int, len(d.dets)+1)
	for r := range counts {
		d.rowOff[r+1] = d.rowOff[r] + counts[r]
	}
	d.rowRefs = make([]slotRef, d.rowOff[len(d.dets)])
	fillPos := make([]int, len(d.dets))
	copy(fillPos, d.rowOff[:len(d.dets)])
	for v := 0; v < nv; v++ {
		for k, r := range d.varDet[v] {
			d.rowRefs[fillPos[r]] = slotRef{v, k}
			fillPos[r]++
		}
	}
	return d, nil
}

// transposeSupports turns per-variable row lists into per-row variable
// lists.
func transposeSupports(rows int, varDet [][]int) [][]int {
	out := make([][]int, rows)
	for v, rs := range varDet {
		for _, r := range rs {
			out[r] = append(out[r], v)
		}
	}
	return out
}

// Decode runs min-sum BP on the Tanner graph of (detectors × error
// mechanisms); if the hard decision does not reproduce the syndrome, an
// OSD-0 pass solves for the most reliable consistent error set. It
// allocates a private scratch per call; hot loops should hold a
// DecodeScratch and call DecodeWith.
func (d *BPOSD) Decode(detBit func(int) bool) ([]bool, error) {
	return d.DecodeWith(NewScratch(), detBit)
}

// DecodeWith is Decode drawing the BP message storage from sc. The
// returned slice aliases sc and is valid until sc's next use. Internal
// panics are recovered into returned errors.
//
//fpn:hotpath
func (d *BPOSD) DecodeWith(sc *DecodeScratch, detBit func(int) bool) (corr []bool, err error) {
	defer annotateErr(d.id, &err)
	defer Recover(&err)
	sc.reset(d.numObs)
	correction := sc.correction
	nv := len(d.varDet)
	bp := &sc.bp
	bp.ensure(len(d.dets), nv, d.varOff[nv])
	syndrome := bp.syndrome
	any := false
	for r, det := range d.dets {
		syndrome[r] = detBit(det)
		if syndrome[r] {
			any = true
		}
	}
	if !any {
		return correction, nil
	}
	// Message storage indexed by (variable, position in its row list),
	// flattened at the precomputed slot offsets.
	v2c := bp.v2c
	c2v := bp.c2v
	for v := 0; v < nv; v++ {
		lo, hi := d.varOff[v], d.varOff[v+1]
		for i := lo; i < hi; i++ {
			v2c[i] = d.priorLLR[v]
			c2v[i] = 0
		}
	}
	posterior := bp.posterior
	hard := bp.hard
	for iter := 0; iter < d.Iters; iter++ {
		// Check update (min-sum with sign from syndrome).
		for r := range d.dets {
			refs := d.rowRefs[d.rowOff[r]:d.rowOff[r+1]]
			sign := 1.0
			if syndrome[r] {
				sign = -1.0
			}
			min1, min2 := math.Inf(1), math.Inf(1)
			arg1 := -1
			prod := sign
			for i, ref := range refs {
				m := v2c[d.varOff[ref.v]+ref.k]
				if m < 0 {
					prod = -prod
				}
				a := math.Abs(m)
				if a < min1 {
					min2 = min1
					min1 = a
					arg1 = i
				} else if a < min2 {
					min2 = a
				}
			}
			for i, ref := range refs {
				mag := min1
				if i == arg1 {
					mag = min2
				}
				s := prod
				if v2c[d.varOff[ref.v]+ref.k] < 0 {
					s = -s
				}
				c2v[d.varOff[ref.v]+ref.k] = 0.75 * s * mag // normalized min-sum
			}
		}
		// Variable update and hard decision.
		satisfied := true
		for v := 0; v < nv; v++ {
			total := d.priorLLR[v]
			lo, hi := d.varOff[v], d.varOff[v+1]
			for i := lo; i < hi; i++ {
				total += c2v[i]
			}
			posterior[v] = total
			hard[v] = total < 0
			for i := lo; i < hi; i++ {
				v2c[i] = total - c2v[i]
			}
		}
		// Syndrome check for early exit.
		for r := range d.dets {
			par := false
			for _, ref := range d.rowRefs[d.rowOff[r]:d.rowOff[r+1]] {
				if hard[ref.v] {
					par = !par
				}
			}
			if par != syndrome[r] {
				satisfied = false
				break
			}
		}
		if satisfied {
			for v := 0; v < nv; v++ {
				if hard[v] {
					for _, o := range d.varObs[v] {
						correction[o] = !correction[o]
					}
				}
			}
			return correction, nil
		}
	}
	return d.osd0(syndrome, posterior, hard, correction), nil
}

// osd0 is the ordered-statistics fallback for BP non-convergence: order
// variables by reliability (most-likely-error first) and solve H·e = s
// on the reliable information set. BP failed to converge for this shot,
// so this cold path is rare and — unlike the BP iterations above — may
// allocate.
//
//fpnvet:coldpath OSD fallback runs on the rare non-converged shot; the alloc gate only bounds its frequency
func (d *BPOSD) osd0(syndrome []bool, posterior []float64, hard []bool, correction []bool) []bool {
	nv := len(d.varDet)
	order := make([]int, nv)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return posterior[order[i]] < posterior[order[j]] })
	perm := gf2.NewMatrix(d.h.Rows(), nv)
	for newCol, v := range order {
		for _, r := range d.varDet[v] {
			perm.Set(r, newCol, true)
		}
	}
	s := gf2.NewVec(d.h.Rows())
	for r := 0; r < len(d.dets); r++ {
		if syndrome[r] {
			s.Set(r, true)
		}
	}
	sol, ok := gf2.Solve(perm, s)
	if !ok {
		// The syndrome is outside the column space (should not happen for
		// a complete error model); return the BP hard decision.
		for v := 0; v < nv; v++ {
			if hard[v] {
				for _, o := range d.varObs[v] {
					correction[o] = !correction[o]
				}
			}
		}
		return correction
	}
	for _, newCol := range sol.Support() {
		v := order[newCol]
		for _, o := range d.varObs[v] {
			correction[o] = !correction[o]
		}
	}
	return correction
}
