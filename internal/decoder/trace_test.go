package decoder

import (
	"sort"
	"testing"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
)

func TestTraceOneRestrictionFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	code, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	dec, err := NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Find a flagless 2-red-det event with non-empty observables.
	var target *dem.Event
	for i, ev := range model.Events {
		if len(ev.Flags) != 0 || len(ev.Obs) == 0 || len(ev.Dets) != 2 {
			continue
		}
		allRed := true
		zOnly := true
		for _, d := range ev.Dets {
			det := model.Circuit.Detectors[d]
			if det.Basis != css.Z {
				zOnly = false
			}
			if det.Color != 0 {
				allRed = false
			}
		}
		if allRed && zOnly {
			target = &model.Events[i]
			break
		}
	}
	if target == nil {
		t.Skip("no such event")
	}
	t.Logf("event dets=%v", target.Dets)
	for _, d := range target.Dets {
		det := model.Circuit.Detectors[d]
		t.Logf("  det %d: check=%d round=%d color=%d", d, det.Check, det.Round, det.Color)
	}
	// What classes contain subsets of these dets?
	want := intSet(target.Dets)
	for ci, cl := range dec.classes {
		if subset(cl.Dets, want) {
			rep := dec.baseRep[ci]
			t.Logf("  class %d dets=%v obs=%v flags=%v p=%.2g w=%.2f members=%d",
				ci, cl.Dets, rep.Obs, rep.Flags, rep.P, dec.baseWeight[ci], len(cl.Members))
		}
	}
	// Show all members of the matching class.
	for ci, cl := range dec.classes {
		if len(cl.Dets) == 2 && cl.Dets[0] == target.Dets[0] && cl.Dets[1] == target.Dets[1] {
			for _, m := range cl.Members {
				t.Logf("  class %d member flags=%v obs=%v p=%.3g", ci, m.Flags, m.Obs, m.P)
			}
		}
	}
	dec.Debug = t.Logf
	corr, err := dec.Decode(detBitFromEvent(*target))
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for o, b := range corr {
		if b {
			got = append(got, o)
		}
	}
	sort.Ints(got)
	t.Logf("correction obs=%v (want [])", got)
}
