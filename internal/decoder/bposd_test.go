package decoder

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/hgp"
	"github.com/fpn/flagproxy/internal/sim"
)

func TestBPOSDSingleFaults(t *testing.T) {
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewBPOSD(model, css.Z, 30)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.Z, amb)
	t.Logf("BP+OSD: %d/%d single-fault failures (%d ambiguous)", fails, total, ambFails)
	if fails-ambFails > total/100 {
		t.Fatalf("BP+OSD failed %d/%d unambiguous single faults", fails-ambFails, total)
	}
}

func TestBPOSDVersusMWPMOnShots(t *testing.T) {
	code := hyper55(t)
	model, c := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	bp, err := NewBPOSD(model, css.Z, 30)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	res := simRunHelper(t, c, 800, 31)
	count := func(dec obsDecoder) int {
		errs := 0
		for shot := 0; shot < 800; shot++ {
			corr, err := dec.Decode(func(d int) bool { return res.DetectorBit(d, shot) })
			if err != nil {
				errs++
				continue
			}
			for o := range c.Observables {
				if corr[o] != res.ObservableBit(o, shot) {
					errs++
					break
				}
			}
		}
		return errs
	}
	bpErrs := count(bp)
	mwErrs := count(mw)
	t.Logf("BP+OSD errors %d/800 vs flagged MWPM %d/800", bpErrs, mwErrs)
	// BP+OSD should be in the same league as matching (within 3x).
	if bpErrs > 3*mwErrs+10 {
		t.Fatalf("BP+OSD (%d) far worse than MWPM (%d)", bpErrs, mwErrs)
	}
}

// BP+OSD needs no graph structure, so it decodes hypergraph-product
// codes directly (matching cannot represent their hyperedges in
// general). Code-capacity-style check: single data errors.
func TestBPOSDDecodesHGP(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c1, err := hgp.RandomLDPC(6, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	code, err := hgp.Product(c1, c1, "hgp-bposd")
	if err != nil {
		t.Fatal(err)
	}
	if code.K == 0 {
		t.Skip("degenerate random instance")
	}
	model, _ := buildModel(t, code, fpn.Options{}, css.Z, 2, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewBPOSD(model, css.Z, 40)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.Z, amb)
	t.Logf("BP+OSD on HGP [[%d,%d]]: %d/%d failures (%d ambiguous)", code.N, code.K, fails, total, ambFails)
	// Random HGP instances may have low distance; require decoding at
	// least 95%% of unambiguous single faults.
	if fails-ambFails > total/20 {
		t.Fatalf("BP+OSD failed %d/%d unambiguous single faults on HGP", fails-ambFails, total)
	}
}

func simRunHelper(t *testing.T, c *circuit.Circuit, shots int, seed int64) *sim.Result {
	t.Helper()
	return sim.Run(c, shots, seed)
}
