package decoder

import (
	"testing"

	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

// The X-basis (memory-X) graphs must decode as well as the Z-basis ones:
// the hyperbolic codes are not self-dual qubit-for-qubit, so this
// exercises genuinely different matrices.
func TestFlaggedMWPMXBasisSingleFaults(t *testing.T) {
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.X, 3, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewMWPM(model, css.X, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.X, amb)
	t.Logf("memory-X flagged MWPM: %d/%d failures (%d ambiguous)", fails, total, ambFails)
	if fails > ambFails {
		t.Fatalf("flagged decoder failed %d unambiguous single faults in X basis", fails-ambFails)
	}
}

func TestFlaggedRestrictionXBasisSingleFaults(t *testing.T) {
	code, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.X, 3, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewRestriction(model, css.X, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.X, amb)
	t.Logf("memory-X flagged restriction: %d/%d failures (%d ambiguous)", fails, total, ambFails)
	if fails > ambFails {
		t.Fatalf("flagged restriction failed %d unambiguous single faults in X basis", fails-ambFails)
	}
}
