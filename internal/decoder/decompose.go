// Package decoder implements the paper's two flag-aware decoders — the
// flagged MWPM decoder for (hyperbolic) surface codes (§VI-C) and the
// flagged Restriction decoder for (hyperbolic) color codes (§VI-D) —
// plus the prior-work baselines they are compared against in §VI-F: a
// plain MWPM decoder that ignores flag information (the PyMatching
// stand-in) and a Chamberland-style Restriction decoder that uses flags
// only inside the matching stage.
package decoder

import (
	"sort"

	"github.com/fpn/flagproxy/internal/dem"
)

// decompose splits hyperedges with more than atomMax syndrome bits into
// components that reuse existing small error footprints, so the
// components can live in a matching graph (the paper's
// hyperedge-to-clique translation, Figure 16(a), refined so Pauli frames
// stay consistent). For MWPM decoding atomMax is 2; the Restriction
// decoder uses atomMax 3 so that data-like one-per-color triples stay
// intact. Events with footprints larger than maxSize are dropped (rare
// high-order coincidences).
func decompose(events []dem.ProjEvent, maxSize int) []dem.ProjEvent {
	return decomposeAtoms(events, 2, maxSize)
}

func decomposeAtoms(events []dem.ProjEvent, atomMax, maxSize int) []dem.ProjEvent {
	// Index existing footprints of size ≤ atomMax, preferring a flagless
	// exemplar's observables.
	atomObs := map[string][]int{}
	flagless := map[string]bool{}
	keyOf := func(dets []int) string {
		b := make([]byte, 0, 4*len(dets))
		for _, d := range dets {
			b = append(b, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		}
		return string(b)
	}
	for _, ev := range events {
		if len(ev.Dets) == 0 || len(ev.Dets) > atomMax {
			continue
		}
		k := keyOf(ev.Dets)
		if _, ok := atomObs[k]; !ok || (!flagless[k] && len(ev.Flags) == 0) {
			atomObs[k] = ev.Obs
			flagless[k] = len(ev.Flags) == 0
		}
	}
	var out []dem.ProjEvent
	for _, ev := range events {
		if len(ev.Dets) <= atomMax {
			out = append(out, ev)
			continue
		}
		if len(ev.Dets) > maxSize {
			continue
		}
		parts := matchDecomposition(ev.Dets, atomMax, atomObs)
		if parts == nil {
			// Fallback: consecutive pairs in sorted order.
			for i := 0; i+1 < len(ev.Dets); i += 2 {
				parts = append(parts, []int{ev.Dets[i], ev.Dets[i+1]})
			}
			if len(ev.Dets)%2 == 1 {
				parts = append(parts, []int{ev.Dets[len(ev.Dets)-1]})
			}
		}
		// Distribute observables: components inherit the obs of their
		// existing footprint; any residual lands on the first component so
		// the total stays equal to the event's obs.
		residual := intSet(ev.Obs)
		var compObs [][]int
		for _, part := range parts {
			obs := atomObs[keyOf(part)]
			compObs = append(compObs, obs)
			for _, o := range obs {
				toggle(residual, o)
			}
		}
		extra := setToSorted(residual)
		for i, part := range parts {
			obs := compObs[i]
			if i == 0 && len(extra) > 0 {
				merged := intSet(obs)
				for _, o := range extra {
					toggle(merged, o)
				}
				obs = setToSorted(merged)
			}
			out = append(out, dem.ProjEvent{
				Dets:  append([]int(nil), part...),
				Flags: ev.Flags,
				Obs:   append([]int(nil), obs...),
				P:     ev.P,
			})
		}
	}
	return out
}

// matchDecomposition searches for a partition of dets into existing
// footprints of size ≤ atomMax, preferring larger atoms first so that
// data-like triples beat pair splits.
func matchDecomposition(dets []int, atomMax int, atomObs map[string][]int) [][]int {
	keyOf := func(ds []int) string {
		b := make([]byte, 0, 4*len(ds))
		for _, d := range ds {
			b = append(b, byte(d), byte(d>>8), byte(d>>16), byte(d>>24))
		}
		return string(b)
	}
	var parts [][]int
	used := make([]bool, len(dets))
	var rec func() bool
	rec = func() bool {
		first := -1
		for i, u := range used {
			if !u {
				first = i
				break
			}
		}
		if first < 0 {
			return true
		}
		used[first] = true
		// Try atoms from largest to smallest containing dets[first].
		var free []int
		for j := first + 1; j < len(dets); j++ {
			if !used[j] {
				free = append(free, j)
			}
		}
		for size := atomMax; size >= 1; size-- {
			if size == 1 {
				if _, ok := atomObs[keyOf([]int{dets[first]})]; ok {
					parts = append(parts, []int{dets[first]})
					if rec() {
						return true
					}
					parts = parts[:len(parts)-1]
				}
				continue
			}
			// Choose size-1 companions from free.
			idx := make([]int, size-1)
			var choose func(pos, start int) bool
			choose = func(pos, start int) bool {
				if pos == size-1 {
					atom := []int{dets[first]}
					for _, fi := range idx {
						atom = append(atom, dets[fi])
					}
					sort.Ints(atom)
					if _, ok := atomObs[keyOf(atom)]; !ok {
						return false
					}
					for _, fi := range idx {
						used[fi] = true
					}
					parts = append(parts, atom)
					if rec() {
						return true
					}
					parts = parts[:len(parts)-1]
					for _, fi := range idx {
						used[fi] = false
					}
					return false
				}
				for k := start; k < len(free); k++ {
					idx[pos] = free[k]
					if choose(pos+1, k+1) {
						return true
					}
				}
				return false
			}
			if choose(0, 0) {
				return true
			}
		}
		used[first] = false
		return false
	}
	if rec() {
		return parts
	}
	return nil
}

func intSet(s []int) map[int]bool {
	m := map[int]bool{}
	for _, v := range s {
		m[v] = true
	}
	return m
}

func toggle(m map[int]bool, v int) {
	if m[v] {
		delete(m, v)
	} else {
		m[v] = true
	}
}

func setToSorted(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	//fpnvet:orderless collect-then-sort: the slice is sorted before returning
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
