package decoder

import (
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func TestUnionFindSingleFaults(t *testing.T) {
	// On single faults the union-find decoder sees a tiny syndrome and
	// should be as good as matching when flags disambiguate.
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewUnionFind(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.Z, amb)
	t.Logf("union-find: %d/%d failures (%d ambiguous)", fails, total, ambFails)
	// UF is approximate: allow a small failure rate but require it to be
	// in the same league as matching (which achieves 0).
	if fails-ambFails > total/50 {
		t.Fatalf("union-find failed %d/%d unambiguous single faults", fails-ambFails, total)
	}
}

func TestUnionFindVsMWPMToric(t *testing.T) {
	m, err := tiling.SquareTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	code, err := surface.FromMap(m, "toric-4", "toric")
	if err != nil {
		t.Fatal(err)
	}
	model, _ := buildModel(t, code, fpn.Options{}, css.Z, 4, 1e-3)
	amb := ambiguousFaults(model)
	ufDec, err := NewUnionFind(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, ufDec, css.Z, amb)
	t.Logf("toric UF: %d/%d failures (%d ambiguous)", fails, total, ambFails)
	if fails-ambFails > total/50 {
		t.Fatalf("UF failed %d unambiguous faults on the toric code", fails-ambFails)
	}
}

func TestUnionFindFlagConditioning(t *testing.T) {
	// The flag-aware UF must beat the flag-blind UF on single faults.
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	withFlags, err := NewUnionFind(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := NewUnionFind(model, css.Z, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	f1, _, _ := exhaustiveSingleFault(t, model, withFlags, css.Z, amb)
	f2, _, total := exhaustiveSingleFault(t, model, without, css.Z, amb)
	t.Logf("UF flagged %d vs flag-blind %d of %d", f1, f2, total)
	if f1 >= f2 {
		t.Fatalf("flag conditioning did not help UF: %d vs %d", f1, f2)
	}
}
