package decoder

// Allocation regression gates: after a warm-up pass has built the
// shortest-path-tree caches and sized the scratch arenas, the
// steady-state DecodeWith loop must not touch the heap. CI runs these
// (they are ordinary tests, not benchmarks, so `go test` enforces them
// on every push).

import (
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/sim"
	"github.com/fpn/flagproxy/internal/surface"
)

// planarModel builds the rotated d=5 surface-code memory circuit under
// the canonical schedule (the acceptance benchmark's workload).
func planarModel(t *testing.T, rounds int, p float64) (*dem.Model, *circuit.Circuit) {
	t.Helper()
	l, err := surface.Rotated(5)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := schedule.CanonicalRotated(l)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: css.Z, Rounds: rounds, Noise: &noise.Model{P: p}})
	if err != nil {
		t.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	return model, c
}

// allocsPerDecode warms the decoder over all shots, then measures
// steady-state allocations per decode for each shot individually and
// returns the per-shot counts.
func allocsPerDecode(t *testing.T, dec ScratchDecoder, res *sim.Result, shots int) []float64 {
	t.Helper()
	sc := NewScratch()
	for s := 0; s < shots; s++ {
		s := s
		if _, err := dec.DecodeWith(sc, func(d int) bool { return res.DetectorBit(d, s) }); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]float64, shots)
	for s := 0; s < shots; s++ {
		s := s
		bit := func(d int) bool { return res.DetectorBit(d, s) }
		out[s] = testing.AllocsPerRun(10, func() {
			if _, err := dec.DecodeWith(sc, bit); err != nil {
				t.Fatal(err)
			}
		})
	}
	return out
}

func maxAllocs(counts []float64) float64 {
	m := 0.0
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// TestDecodeSteadyStateZeroAlloc gates the matching-family hot paths at
// exactly zero steady-state allocations on realistic sampled shots.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs the full shot sweep")
	}
	const shots = 128
	model, c := planarModel(t, 5, 1e-3)
	res := sim.Run(c, shots, 42)
	plain, err := NewMWPM(model, css.Z, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAllocs(allocsPerDecode(t, plain, res, shots)); m != 0 {
		t.Errorf("plain MWPM (planar d=5): %v allocs/op in steady state, want 0", m)
	}

	fcode := hyper55(t)
	fmodel, fc := buildModel(t, fcode, diffOptions, css.Z, 3, 1e-3)
	fres := sim.Run(fc, shots, 43)
	flagged, err := NewMWPM(fmodel, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAllocs(allocsPerDecode(t, flagged, fres, shots)); m != 0 {
		t.Errorf("flagged MWPM ([[30,8,3,3]]): %v allocs/op in steady state, want 0", m)
	}
	ufd, err := NewUnionFind(fmodel, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAllocs(allocsPerDecode(t, ufd, fres, shots)); m != 0 {
		t.Errorf("union-find ([[30,8,3,3]]): %v allocs/op in steady state, want 0", m)
	}
	ccode, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	cmodel, cc := buildModel(t, ccode, diffOptions, css.Z, 3, 1e-3)
	cres := sim.Run(cc, shots, 44)
	rest, err := NewRestriction(cmodel, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// The matching stage is allocation-free; only the residual-repair
	// cold path (three matchings disagreeing) may allocate, so gate the
	// common case: most shots must decode without touching the heap.
	rcounts := allocsPerDecode(t, rest, cres, shots)
	rzero := 0
	for _, ct := range rcounts {
		if ct == 0 {
			rzero++
		}
	}
	if rzero < shots/2 {
		t.Errorf("restriction: only %d/%d shots decode allocation-free", rzero, shots)
	}

	bposd, err := NewBPOSD(fmodel, css.Z, 30)
	if err != nil {
		t.Fatal(err)
	}
	// BP-converged shots must be allocation-free; the OSD fallback is
	// allowed to allocate, so gate the minimum over shots at 0 and the
	// typical (median) shot too.
	counts := allocsPerDecode(t, bposd, fres, shots)
	zero := 0
	for _, ct := range counts {
		if ct == 0 {
			zero++
		}
	}
	if zero < shots/2 {
		t.Errorf("BP+OSD: only %d/%d shots decode allocation-free", zero, shots)
	}
}

// allocsPerBatch warms the batch path (memo arena, scratch growth, the
// lazily built lane closure) over all blocks, then measures steady-state
// allocations per DecodeBatch call for each block individually.
func allocsPerBatch(t *testing.T, b *Batch, res *sim.Result) []float64 {
	t.Helper()
	sc := NewScratch()
	decodeAll := func() {
		for first := 0; first < res.Shots; first += 64 {
			n := res.Shots - first
			if n > 64 {
				n = 64
			}
			if _, err := b.DecodeBatch(res, first, n, sc); err != nil {
				t.Fatal(err)
			}
		}
	}
	decodeAll()
	blocks := (res.Shots + 63) / 64
	out := make([]float64, blocks)
	for w := 0; w < blocks; w++ {
		first := w * 64
		n := res.Shots - first
		if n > 64 {
			n = 64
		}
		out[w] = testing.AllocsPerRun(10, func() {
			if _, err := b.DecodeBatch(res, first, n, sc); err != nil {
				t.Fatal(err)
			}
		})
	}
	return out
}

// TestBatchDecodeSteadyStateZeroAlloc gates the 64-shot batch path the
// same way as the scalar hot path: once the memo arena and scratch are
// warm, decoding a block — memo hits, LRU churn, scalar fallbacks on
// cold keys included — must not touch the heap for the matching-family
// decoders.
func TestBatchDecodeSteadyStateZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs the full shot sweep")
	}
	const shots = 256
	model, c := planarModel(t, 5, 1e-3)
	res := sim.Run(c, shots, 42)
	plain, err := NewMWPM(model, css.Z, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAllocs(allocsPerBatch(t, NewBatch(plain), res)); m != 0 {
		t.Errorf("batch plain MWPM (planar d=5): %v allocs/op in steady state, want 0", m)
	}

	fcode := hyper55(t)
	fmodel, fc := buildModel(t, fcode, diffOptions, css.Z, 3, 1e-3)
	fres := sim.Run(fc, shots, 43)
	flagged, err := NewMWPM(fmodel, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAllocs(allocsPerBatch(t, NewBatch(flagged), fres)); m != 0 {
		t.Errorf("batch flagged MWPM ([[30,8,3,3]]): %v allocs/op in steady state, want 0", m)
	}
	ufd, err := NewUnionFind(fmodel, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAllocs(allocsPerBatch(t, NewBatch(ufd), fres)); m != 0 {
		t.Errorf("batch union-find ([[30,8,3,3]]): %v allocs/op in steady state, want 0", m)
	}

	ccode, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	cmodel, cc := buildModel(t, ccode, diffOptions, css.Z, 3, 1e-3)
	cres := sim.Run(cc, shots, 44)
	rest, err := NewRestriction(cmodel, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	// Restriction's residual-repair cold path may allocate (as in the
	// scalar gate), and one allocating lane taints its whole 64-shot
	// block, so the per-shot majority criterion does not transfer to
	// block granularity. The batch machinery itself must still add
	// nothing: memo-hit-only blocks decode allocation-free.
	rcounts := allocsPerBatch(t, NewBatch(rest), cres)
	rzero := 0
	for _, ct := range rcounts {
		if ct == 0 {
			rzero++
		}
	}
	if rzero == 0 {
		t.Errorf("batch restriction: no block decodes allocation-free (per-block allocs %v)", rcounts)
	}
}
