//go:build race

package decoder

// Under the race detector the catalog sweep is far too slow; the
// differential matrix shrinks to one hand-built code per family.

import (
	"testing"

	"github.com/fpn/flagproxy/internal/color"
)

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	surf := hyper55(t)
	col, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	return []diffCase{
		{name: "surface-5_5-n30", code: surf, color: false},
		{name: "color-hex-toric-2", code: col, color: true},
	}
}
