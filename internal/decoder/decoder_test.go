package decoder

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/circuit"
	"github.com/fpn/flagproxy/internal/color"
	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/dem"
	"github.com/fpn/flagproxy/internal/fpn"
	"github.com/fpn/flagproxy/internal/group"
	"github.com/fpn/flagproxy/internal/noise"
	"github.com/fpn/flagproxy/internal/schedule"
	"github.com/fpn/flagproxy/internal/surface"
	"github.com/fpn/flagproxy/internal/tiling"
)

func hyper55(t *testing.T) *css.Code {
	t.Helper()
	g, err := group.Alt(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, p := range group.FindRSPairs(g, 5, 5, rng, 3000, 5, 60) {
		if p.Sub.Order() != 60 {
			continue
		}
		m, err := tiling.FromGroupPair(p)
		if err != nil || !m.NonDegenerate() {
			continue
		}
		code, err := surface.FromMap(m, "hysc-30", "hyperbolic-surface {5,5}")
		if err == nil {
			return code
		}
	}
	t.Fatal("no [[30,8,3,3]] code")
	return nil
}

func buildModel(t *testing.T, code *css.Code, opt fpn.Options, basis css.Basis, rounds int, p float64) (*dem.Model, *circuit.Circuit) {
	t.Helper()
	net, err := fpn.Build(code, opt)
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Greedy(net)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := schedule.BuildRoundPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	nm := &noise.Model{P: p}
	c, err := circuit.BuildMemory(circuit.MemorySpec{Plan: plan, Basis: basis, Rounds: rounds, Noise: nm})
	if err != nil {
		t.Fatal(err)
	}
	model, err := dem.Extract(c)
	if err != nil {
		t.Fatal(err)
	}
	return model, c
}

// detBitFromEvent synthesizes the detector readout of a single fault.
func detBitFromEvent(ev dem.Event) func(int) bool {
	set := map[int]bool{}
	for _, d := range ev.Dets {
		set[d] = true
	}
	for _, f := range ev.Flags {
		set[f] = true
	}
	return func(d int) bool { return set[d] }
}

// ambiguousFaults counts events sharing (dets, flags) with different
// observables — faults no decoder can distinguish.
func ambiguousFaults(model *dem.Model) map[string]bool {
	byKey := map[string][][]int{}
	keyOf := func(ev dem.Event) string {
		b := make([]byte, 0, 64)
		for _, d := range ev.Dets {
			b = append(b, byte(d), byte(d>>8), byte(d>>16), '.')
		}
		b = append(b, '|')
		for _, f := range ev.Flags {
			b = append(b, byte(f), byte(f>>8), byte(f>>16), '.')
		}
		return string(b)
	}
	for _, ev := range model.Events {
		byKey[keyOf(ev)] = append(byKey[keyOf(ev)], ev.Obs)
	}
	amb := map[string]bool{}
	for k, obsList := range byKey {
		for i := 1; i < len(obsList); i++ {
			if !sameInts(obsList[i], obsList[0]) {
				amb[k] = true
			}
		}
	}
	return amb
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

type obsDecoder interface {
	Decode(func(int) bool) ([]bool, error)
}

// exhaustiveSingleFault decodes every DEM event as a standalone shot and
// returns (failures, ambiguous-failures, total relevant).
func exhaustiveSingleFault(t *testing.T, model *dem.Model, d obsDecoder, basis css.Basis, amb map[string]bool) (int, int, int) {
	t.Helper()
	fails, ambFails, total := 0, 0, 0
	for _, ev := range model.Events {
		// Only faults visible in this basis graph matter here; faults with
		// no dets and no observable effect in this basis are no-ops.
		rel := false
		for _, det := range ev.Dets {
			if model.Circuit.Detectors[det].Basis == basis {
				rel = true
			}
		}
		if !rel && len(ev.Obs) == 0 {
			continue
		}
		total++
		corr, err := d.Decode(detBitFromEvent(ev))
		if err != nil {
			t.Fatalf("decode error on event %+v: %v", ev, err)
		}
		ok := true
		for o := range corr {
			want := false
			for _, x := range ev.Obs {
				if x == o {
					want = true
				}
			}
			if corr[o] != want {
				ok = false
			}
		}
		if !ok {
			fails++
			key := eventKey(ev)
			if amb[key] {
				ambFails++
			}
		}
	}
	return fails, ambFails, total
}

func eventKey(ev dem.Event) string {
	b := make([]byte, 0, 64)
	for _, d := range ev.Dets {
		b = append(b, byte(d), byte(d>>8), byte(d>>16), '.')
	}
	b = append(b, '|')
	for _, f := range ev.Flags {
		b = append(b, byte(f), byte(f>>8), byte(f>>16), '.')
	}
	return string(b)
}

// The headline fault-tolerance result (Figure 19's mechanism): on the
// [[30,8,3,3]] FPN circuit the flagged MWPM decoder corrects every
// single fault (effective distance ≥ 3 = full code distance), except
// faults that are information-theoretically ambiguous.
func TestFlaggedMWPMCorrectsAllSingleFaults(t *testing.T) {
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.Z, amb)
	t.Logf("flagged MWPM: %d/%d single-fault failures (%d ambiguous), %d classes",
		fails, total, ambFails, dec.NumClasses())
	if fails > ambFails {
		t.Fatalf("flagged decoder failed %d unambiguous single faults", fails-ambFails)
	}
}

// The plain MWPM baseline (PyMatching stand-in) must do strictly worse on
// the same circuit: without flag information some single faults are
// miscorrected (deff = 2 in the paper's Figure 19).
func TestPlainMWPMFailsSomeSingleFaults(t *testing.T) {
	code := hyper55(t)
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	flagged, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewMWPM(model, css.Z, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	fFails, _, _ := exhaustiveSingleFault(t, model, flagged, css.Z, amb)
	pFails, _, total := exhaustiveSingleFault(t, model, plain, css.Z, amb)
	t.Logf("plain MWPM: %d/%d failures vs flagged %d", pFails, total, fFails)
	if pFails <= fFails {
		t.Fatalf("plain baseline (%d fails) not worse than flagged (%d)", pFails, fFails)
	}
}

// Standard MWPM on a direct-architecture toric code must correct every
// single fault (no flags involved; the canonical circuit-level test).
func TestMWPMToricDirectSingleFaults(t *testing.T) {
	m, err := tiling.SquareTorus(4)
	if err != nil {
		t.Fatal(err)
	}
	code, err := surface.FromMap(m, "toric-4", "toric")
	if err != nil {
		t.Fatal(err)
	}
	model, _ := buildModel(t, code, fpn.Options{}, css.Z, 4, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.Z, amb)
	t.Logf("toric MWPM: %d/%d failures (%d ambiguous)", fails, total, ambFails)
	if fails > ambFails {
		t.Fatalf("MWPM failed %d unambiguous single faults on the toric code", fails-ambFails)
	}
}

// The flagged Restriction decoder on a color-code FPN: single faults.
func TestFlaggedRestrictionSingleFaults(t *testing.T) {
	code, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	dec, err := NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	fails, ambFails, total := exhaustiveSingleFault(t, model, dec, css.Z, amb)
	t.Logf("flagged restriction: %d/%d failures (%d ambiguous)", fails, total, ambFails)
	if fails > ambFails {
		t.Fatalf("flagged restriction failed %d unambiguous single faults", fails-ambFails)
	}
}

// Chamberland-style baseline must be strictly worse than the flagged
// Restriction decoder (Figure 20's mechanism).
func TestChamberlandBaselineWorse(t *testing.T) {
	code, err := color.HexagonalToric(2)
	if err != nil {
		t.Fatal(err)
	}
	model, _ := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	amb := ambiguousFaults(model)
	flagged, err := NewRestriction(model, css.Z, 1e-3, true, true)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := NewRestriction(model, css.Z, 1e-3, true, false)
	if err != nil {
		t.Fatal(err)
	}
	fFails, _, _ := exhaustiveSingleFault(t, model, flagged, css.Z, amb)
	bFails, _, total := exhaustiveSingleFault(t, model, baseline, css.Z, amb)
	t.Logf("restriction baseline: %d/%d vs flagged %d", bFails, total, fFails)
	if bFails <= fFails {
		t.Fatalf("baseline (%d) not worse than flagged (%d)", bFails, fFails)
	}
}

func TestDecomposeFallback(t *testing.T) {
	events := []dem.ProjEvent{
		{Dets: []int{1, 2}, Obs: []int{0}, P: 0.01},
		{Dets: []int{3, 4}, Obs: nil, P: 0.01},
		{Dets: []int{1, 2, 3, 4}, Obs: []int{0}, P: 0.001},
	}
	out := decompose(events, 8)
	// The 4-det event must decompose into {1,2} and {3,4} with total obs {0}.
	if len(out) != 4 {
		t.Fatalf("decompose produced %d events", len(out))
	}
	obsTotal := map[int]int{}
	for _, ev := range out[2:] {
		if len(ev.Dets) != 2 {
			t.Fatalf("component with %d dets", len(ev.Dets))
		}
		for _, o := range ev.Obs {
			obsTotal[o]++
		}
	}
	if obsTotal[0]%2 != 1 {
		t.Fatal("decomposition lost the observable flip")
	}
}

func TestDecomposeUnmatchedPairs(t *testing.T) {
	events := []dem.ProjEvent{
		{Dets: []int{5, 6, 7, 8}, Obs: []int{1}, P: 0.001},
	}
	out := decompose(events, 8)
	if len(out) != 2 {
		t.Fatalf("fallback decomposition produced %d events", len(out))
	}
}

// Flag-overuse measurement (Figure 5's concern): some flag measurements
// change no decoding outcome and could be dropped. The conservative
// ⌊δ/2⌋-flag protocol is expected to contain such redundancy.
func TestOperationallyRedundantFlags(t *testing.T) {
	code := hyper55(t)
	model, c := buildModel(t, code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4}, css.Z, 3, 1e-3)
	red, err := OperationallyRedundantFlags(model, css.Z, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, d := range c.Detectors {
		if d.IsFlag {
			total++
		}
	}
	t.Logf("operationally redundant flags: %d of %d (%.0f%%)",
		len(red), total, 100*float64(len(red))/float64(total))
	if len(red) == total {
		t.Fatal("all flags redundant contradicts the flagged-vs-plain separation")
	}
}
