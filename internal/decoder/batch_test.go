package decoder

// Batch differential harness: DecodeBatch must be bit-identical to the
// scalar per-shot loop — same per-block logical-error counts, with
// decode failures counted the same way — across the case catalog, on
// cold and memo-warm passes, through LRU eviction, across owner
// changes, and on partial tail blocks. A deliberately poisoned memo
// must be caught by the same comparison, proving the harness has teeth.

import (
	"fmt"
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/sim"
)

// scalarBlockErrs is the reference: the engine's historical per-shot
// loop over one block, written against the same Result.
func scalarBlockErrs(t *testing.T, dec ScratchDecoder, sc *DecodeScratch, res *sim.Result, firstShot, n int) int {
	t.Helper()
	errs := 0
	for s := firstShot; s < firstShot+n; s++ {
		s := s
		corr, err := dec.DecodeWith(sc, func(d int) bool { return res.DetectorBit(d, s) })
		if err != nil {
			errs++
			continue
		}
		for o := range res.Observables {
			if corr[o] != res.ObservableBit(o, s) {
				errs++
				break
			}
		}
	}
	return errs
}

// assertBatchMatchesScalar walks res block by block through both paths
// with the given batch scratch and fails on the first count divergence.
func assertBatchMatchesScalar(t *testing.T, b *Batch, bsc *DecodeScratch, res *sim.Result, label string) {
	t.Helper()
	ssc := NewScratch()
	for first := 0; first < res.Shots; first += 64 {
		n := res.Shots - first
		if n > 64 {
			n = 64
		}
		got, err := b.DecodeBatch(res, first, n, bsc)
		if err != nil {
			t.Fatalf("%s block %d: DecodeBatch contract error: %v", label, first/64, err)
		}
		want := scalarBlockErrs(t, b.Inner(), ssc, res, first, n)
		if got != want {
			t.Fatalf("%s block %d: batch counted %d errors, scalar %d", label, first/64, got, want)
		}
	}
}

// TestBatchDifferentialDecode proves the batch path bit-identical to
// the scalar loop over the differential case catalog (both bases, three
// seeds, an elevated physical rate so syndromes are non-trivial, and a
// partial tail block), then repeats each result memo-warm: the second
// pass must hit the memo and still agree.
func TestBatchDifferentialDecode(t *testing.T) {
	for _, cs := range diffCases(t) {
		cs := cs
		t.Run(cs.name, func(t *testing.T) {
			for _, basis := range []css.Basis{css.Z, css.X} {
				model, c := buildModel(t, cs.code, diffOptions, basis, diffRounds, 3e-3)
				for _, dd := range diffDecoders(t, model, basis, cs.color) {
					if dd.name == "bposd" {
						continue // BPOSD stays on the scalar path by design
					}
					b := NewBatch(dd.fast)
					for _, seed := range []int64{11, 22, 33} {
						const shots = 200 // 3 full blocks + a 8-lane tail
						res := sim.Run(c, shots, seed)
						bsc := NewScratch()
						label := fmt.Sprintf("%s basis=%v seed=%d", dd.name, basis, seed)
						assertBatchMatchesScalar(t, b, bsc, res, label+" cold")
						hits, misses := bsc.MemoStats()
						if hits+misses < shots {
							t.Fatalf("%s: memo counters %d+%d cover fewer than %d lanes", label, hits, misses, shots)
						}
						assertBatchMatchesScalar(t, b, bsc, res, label+" warm")
						warmHits, _ := bsc.MemoStats()
						if warmHits <= hits {
							t.Fatalf("%s: warm pass produced no new memo hits (%d -> %d)", label, hits, warmHits)
						}
					}
				}
			}
		})
	}
}

// syntheticResult builds a hand-laid Result whose lane l of block w
// carries the defect pattern chosen by fill, with all observables zero.
func syntheticResult(numDet, numObs, shots int, fill func(shot int, set func(det int))) *sim.Result {
	words := (shots + 63) / 64
	res := &sim.Result{Shots: shots, Words: words}
	res.Detectors = make([][]uint64, numDet)
	for d := range res.Detectors {
		res.Detectors[d] = make([]uint64, words)
	}
	res.Observables = make([][]uint64, numObs)
	for o := range res.Observables {
		res.Observables[o] = make([]uint64, words)
	}
	for s := 0; s < shots; s++ {
		fill(s, func(det int) {
			res.Detectors[det][s/64] |= 1 << (uint(s) % 64)
		})
	}
	return res
}

// TestBatchMemoEviction pushes far more distinct syndromes through the
// memo than it can hold, so the LRU evicts continuously — every count
// must still match the scalar loop, on the first pass and on a second
// pass that re-walks the (by now partially evicted) stream.
func TestBatchMemoEviction(t *testing.T) {
	model, _ := planarModel(t, 3, 1e-3)
	d, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	numDet := len(model.Circuit.Detectors)
	numObs := len(model.Circuit.Observables)
	if numDet < 40 {
		t.Fatalf("planar model has only %d detectors; cannot build distinct pairs", numDet)
	}
	// Distinct weight-2 syndromes: shot s fires detectors (a, b) walking
	// a stride pattern, giving well over memoEntries unique keys.
	shots := (memoEntries + 128) / 64 * 64 // full blocks, > memoEntries lanes
	res := syntheticResult(numDet, numObs, shots, func(s int, set func(int)) {
		a := s % numDet
		b := (s*7 + 1 + s/numDet) % numDet
		if a == b {
			b = (b + 1) % numDet
		}
		set(a)
		set(b)
	})
	b := NewBatch(d)
	bsc := NewScratch()
	assertBatchMatchesScalar(t, b, bsc, res, "eviction cold")
	assertBatchMatchesScalar(t, b, bsc, res, "eviction repeat")
}

// TestBatchOwnerChangeResetsMemo alternates one scratch between two
// Batch decoders with different corrections for the same syndromes. A
// memo that survived the owner change would replay the other decoder's
// cached corrections and diverge from its own scalar reference.
func TestBatchOwnerChangeResetsMemo(t *testing.T) {
	model, c := planarModel(t, 3, 5e-3)
	flagged, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewMWPM(model, css.Z, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	bf, bp := NewBatch(flagged), NewBatch(plain)
	res := sim.Run(c, 192, 5)
	sc := NewScratch()
	for pass := 0; pass < 2; pass++ {
		assertBatchMatchesScalar(t, bf, sc, res, fmt.Sprintf("owner-flagged pass=%d", pass))
		assertBatchMatchesScalar(t, bp, sc, res, fmt.Sprintf("owner-plain pass=%d", pass))
	}
}

// TestBatchContractErrors pins the call contract: misaligned or
// oversized blocks are reported as errors (which the engine escalates
// to a shard quarantine), never silently mis-decoded.
func TestBatchContractErrors(t *testing.T) {
	model, c := planarModel(t, 2, 1e-3)
	d, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(d)
	res := sim.Run(c, 100, 1)
	sc := NewScratch()
	for _, bad := range []struct {
		name     string
		first, n int
	}{
		{"misaligned", 32, 32},
		{"zero-lanes", 0, 0},
		{"oversized", 0, 65},
		{"past-shots", 64, 64}, // 64+64 > 100
		{"negative", -64, 64},
	} {
		if _, err := b.DecodeBatch(res, bad.first, bad.n, sc); err == nil {
			t.Errorf("%s: DecodeBatch(first=%d, n=%d) accepted a contract violation", bad.name, bad.first, bad.n)
		} else if !strings.Contains(err.Error(), "contract") {
			t.Errorf("%s: error %q does not name the block contract", bad.name, err)
		}
	}
	if _, err := b.DecodeBatch(nil, 0, 64, sc); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := b.DecodeBatch(res, 0, 64, nil); err == nil {
		t.Error("nil scratch accepted")
	}
	// The legal tail block still decodes.
	if _, err := b.DecodeBatch(res, 64, 36, sc); err != nil {
		t.Errorf("legal tail block rejected: %v", err)
	}
}

// TestBatchMemoPoisoningDetected corrupts every memo store through the
// MemoFault seam and requires the batch-vs-scalar comparison to catch
// it — the sensitivity proof for the differential harness and the
// decoder-side half of the chaos memo-poisoning fault plan.
func TestBatchMemoPoisoningDetected(t *testing.T) {
	model, c := planarModel(t, 3, 5e-3)
	d, err := NewMWPM(model, css.Z, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(d)
	b.MemoFault = func(_ uint64, pred []uint64) { pred[0] ^= 1 }
	res := sim.Run(c, 256, 9)
	bsc, ssc := NewScratch(), NewScratch()
	diverged := false
	for first := 0; first < res.Shots; first += 64 {
		got, err := b.DecodeBatch(res, first, 64, bsc)
		if err != nil {
			t.Fatal(err)
		}
		if got != scalarBlockErrs(t, d, ssc, res, first, 64) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("poisoned memo produced scalar-identical counts; the differential harness has no teeth")
	}
}
