// Package hgp builds hypergraph product (HGP) codes (Tillich–Zémor),
// the QLDPC family targeted by Tremblay et al.'s thin-planar
// architecture that the paper compares against in §VII-A. The product of
// two classical parity-check matrices H1 (r1×n1) and H2 (r2×n2) is a
// CSS code with n = n1·n2 + r1·r2 data qubits:
//
//	HX = [ H1 ⊗ I_n2 | I_r1 ⊗ H2ᵀ ]
//	HZ = [ I_n1 ⊗ H2 | H1ᵀ ⊗ I_r2 ]
//
// The toric code is the HGP of two cyclic repetition codes; expander
// HGP codes come from random sparse H's. The package exists to
// reproduce the architectural comparison: HGP codes need up to degree-8
// connectivity where the paper's hyperbolic FPNs stay at degree 4.
package hgp

import (
	"fmt"
	"math/rand"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/gf2"
)

// Classical is a binary linear code given by its parity-check matrix.
type Classical struct {
	H *gf2.Matrix
}

// Repetition returns the cyclic repetition code of length n (the ring
// Z_n), whose HGP square is the toric code.
func Repetition(n int) Classical {
	h := gf2.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		h.Set(i, i, true)
		h.Set(i, (i+1)%n, true)
	}
	return Classical{H: h}
}

// RandomLDPC returns a random (dv, dc)-biregular parity-check matrix
// with r rows and n = r·dc/dv columns, built by a configuration-model
// edge matching. Multi-edges are cancelled mod 2, so row/column weights
// can dip slightly below the target.
func RandomLDPC(r, dv, dc int, rng *rand.Rand) (Classical, error) {
	if (r*dc)%dv != 0 {
		return Classical{}, fmt.Errorf("hgp: r·dc must be divisible by dv")
	}
	n := r * dc / dv
	// Stubs: each row appears dc times, each column dv times.
	var rowStubs, colStubs []int
	for i := 0; i < r; i++ {
		for k := 0; k < dc; k++ {
			rowStubs = append(rowStubs, i)
		}
	}
	for j := 0; j < n; j++ {
		for k := 0; k < dv; k++ {
			colStubs = append(colStubs, j)
		}
	}
	rng.Shuffle(len(colStubs), func(i, j int) { colStubs[i], colStubs[j] = colStubs[j], colStubs[i] })
	h := gf2.NewMatrix(r, n)
	for k := range rowStubs {
		i, j := rowStubs[k], colStubs[k]
		h.Set(i, j, !h.Get(i, j)) // mod-2 cancellation of multi-edges
	}
	return Classical{H: h}, nil
}

// Product returns the hypergraph product CSS code of c1 and c2.
func Product(c1, c2 Classical, name string) (*css.Code, error) {
	h1, h2 := c1.H, c2.H
	r1, n1 := h1.Rows(), h1.Cols()
	r2, n2 := h2.Rows(), h2.Cols()
	n := n1*n2 + r1*r2
	// Qubit layout: block A = (i1, i2) ∈ n1×n2 at index i1*n2 + i2;
	// block B = (j1, j2) ∈ r1×r2 at index n1*n2 + j1*r2 + j2.
	qa := func(i1, i2 int) int { return i1*n2 + i2 }
	qb := func(j1, j2 int) int { return n1*n2 + j1*r2 + j2 }

	var checks []css.Check
	// X checks: indexed by (j1 ∈ r1, i2 ∈ n2):
	// support = {A(i1,i2) : H1[j1,i1]=1} ∪ {B(j1,j2) : H2[j2,i2]=1}.
	for j1 := 0; j1 < r1; j1++ {
		for i2 := 0; i2 < n2; i2++ {
			var sup []int
			for _, i1 := range h1.Row(j1).Support() {
				sup = append(sup, qa(i1, i2))
			}
			for j2 := 0; j2 < r2; j2++ {
				if h2.Get(j2, i2) {
					sup = append(sup, qb(j1, j2))
				}
			}
			if len(sup) > 0 {
				checks = append(checks, css.Check{Basis: css.X, Support: sup, Color: -1})
			}
		}
	}
	// Z checks: indexed by (i1 ∈ n1, j2 ∈ r2):
	// support = {A(i1,i2) : H2[j2,i2]=1} ∪ {B(j1,j2) : H1[j1,i1]=1}.
	for i1 := 0; i1 < n1; i1++ {
		for j2 := 0; j2 < r2; j2++ {
			var sup []int
			for _, i2 := range h2.Row(j2).Support() {
				sup = append(sup, qa(i1, i2))
			}
			for j1 := 0; j1 < r1; j1++ {
				if h1.Get(j1, i1) {
					sup = append(sup, qb(j1, j2))
				}
			}
			if len(sup) > 0 {
				checks = append(checks, css.Check{Basis: css.Z, Support: sup, Color: -1})
			}
		}
	}
	return css.New(name, "hypergraph-product", n, checks)
}

// ExpectedK returns the HGP dimension formula
// k = k1·k2 + k1ᵀ·k2ᵀ where k = n − rank(H) and kᵀ = r − rank(H).
func ExpectedK(c1, c2 Classical) int {
	r1, n1 := c1.H.Rows(), c1.H.Cols()
	r2, n2 := c2.H.Rows(), c2.H.Cols()
	rk1 := gf2.Rank(c1.H)
	rk2 := gf2.Rank(c2.H)
	k1, k1t := n1-rk1, r1-rk1
	k2, k2t := n2-rk2, r2-rk2
	return k1*k2 + k1t*k2t
}
