package hgp

import (
	"math/rand"
	"testing"

	"github.com/fpn/flagproxy/internal/css"
	"github.com/fpn/flagproxy/internal/fpn"
)

func TestToricAsHGP(t *testing.T) {
	// HGP of two length-L cyclic repetition codes = the L×L toric code
	// [[2L², 2, L]].
	for _, l := range []int{3, 4} {
		rep := Repetition(l)
		code, err := Product(rep, rep, "toric-hgp")
		if err != nil {
			t.Fatal(err)
		}
		if code.N != 2*l*l {
			t.Fatalf("L=%d: n=%d, want %d", l, code.N, 2*l*l)
		}
		if code.K != 2 {
			t.Fatalf("L=%d: k=%d, want 2", l, code.K)
		}
		if code.K != ExpectedK(rep, rep) {
			t.Fatalf("dimension formula mismatch: %d vs %d", code.K, ExpectedK(rep, rep))
		}
		rng := rand.New(rand.NewSource(1))
		code.ComputeDistances(l, 100_000_000, 10, rng)
		if code.DZ != l || code.DX != l {
			t.Fatalf("L=%d: d=%d/%d, want %d", l, code.DZ, code.DX, l)
		}
	}
}

func TestRandomLDPCShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := RandomLDPC(6, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.H.Rows() != 6 || c.H.Cols() != 8 {
		t.Fatalf("H is %dx%d, want 6x8", c.H.Rows(), c.H.Cols())
	}
	for i := 0; i < c.H.Rows(); i++ {
		if w := c.H.Row(i).Weight(); w > 4 {
			t.Fatalf("row %d weight %d exceeds dc=4", i, w)
		}
	}
}

func TestRandomLDPCBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := RandomLDPC(5, 3, 4, rng); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestRandomHGPDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c1, err := RandomLDPC(6, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := RandomLDPC(6, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Product(c1, c2, "hgp-rand")
	if err != nil {
		t.Fatal(err)
	}
	if code.K != ExpectedK(c1, c2) {
		t.Fatalf("k=%d, formula %d", code.K, ExpectedK(c1, c2))
	}
}

// The §VII-A architectural claim: a naive HGP architecture needs up to
// degree-8 connectivity (weight-(dv+dc) checks and data qubits in up to
// dv+dc checks), where the hyperbolic FPNs stay at degree 4.
func TestHGPNaiveDegreeVsFPN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c1, err := RandomLDPC(6, 3, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Product(c1, c1, "hgp-rand")
	if err != nil {
		t.Fatal(err)
	}
	naive, err := fpn.Build(code, fpn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.MaxDegreeUsed() < 6 {
		t.Fatalf("naive HGP degree %d; expected ≥ 6", naive.MaxDegreeUsed())
	}
	// An FPN tames it to 4 like any other code.
	tamed, err := fpn.Build(code, fpn.Options{UseFlags: true, FlagSharing: true, MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tamed.MaxDegreeUsed() > 4 {
		t.Fatalf("FPN degree %d exceeds bound", tamed.MaxDegreeUsed())
	}
	t.Logf("HGP [[%d,%d]]: naive max degree %d -> FPN %d (N %d -> %d)",
		code.N, code.K, naive.MaxDegreeUsed(), tamed.MaxDegreeUsed(),
		naive.NumQubits(), tamed.NumQubits())
}

func TestHGPChecksCommute(t *testing.T) {
	// css.New already verifies commutation; this exercises a rectangular
	// product (different H1, H2 shapes).
	rng := rand.New(rand.NewSource(6))
	c1, err := RandomLDPC(4, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	c2 := Repetition(5)
	code, err := Product(c1, c2, "hgp-rect")
	if err != nil {
		t.Fatal(err)
	}
	if code.N != 6*5+4*5 {
		t.Fatalf("n=%d", code.N)
	}
	if got := code.MaxWeight(css.X); got > 2+3+2 {
		t.Fatalf("X weight %d too large", got)
	}
}
