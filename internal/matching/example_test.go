package matching_test

import (
	"fmt"

	"github.com/fpn/flagproxy/internal/matching"
)

func ExampleMinWeightPerfect() {
	// Four flipped syndrome bits with pairwise path weights: the decoder
	// pairs (0,1) and (2,3) at total weight 3 instead of (0,2)+(1,3) at 8.
	edges := []matching.Edge{
		{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2},
		{U: 0, V: 2, W: 4}, {U: 1, V: 3, W: 4},
		{U: 0, V: 3, W: 5}, {U: 1, V: 2, W: 5},
	}
	mate, err := matching.MinWeightPerfect(4, edges)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(mate)
	// Output: [1 0 3 2]
}

func ExampleMaxWeight() {
	// A triangle with a pendant: max-weight matching takes the heavy
	// edge (1,2) and pairs 0 with 3.
	edges := []matching.Edge{
		{U: 0, V: 1, W: 6}, {U: 1, V: 2, W: 10},
		{U: 2, V: 0, W: 5}, {U: 0, V: 3, W: 4},
	}
	fmt.Println(matching.MaxWeight(4, edges, false))
	// Output: [3 2 1 0]
}
