package matching

// Workspace owns the reusable buffers of one blossom matcher, so that a
// caller decoding millions of small matching instances does not pay a
// fresh set of O(V + E) allocations per instance. A Workspace may be
// reused across instances of any size (buffers grow to the largest
// instance served and are then retained) but must not be shared between
// goroutines. The zero value is ready to use.
//
// Results computed through a Workspace are bit-identical to the
// package-level MaxWeight / MinWeightPerfect: the workspace only
// recycles backing arrays, every cell is re-initialized to the fresh
// matcher's state before each run.
type Workspace struct {
	m       matcher
	flipped []Edge
	mateOut []int
}

// MaxWeight behaves like the package-level MaxWeight but recycles the
// workspace buffers. The returned slice aliases the workspace and is
// valid only until its next call.
func (w *Workspace) MaxWeight(n int, edges []Edge, maxCardinality bool) []int {
	w.mateOut = growFill(w.mateOut, n, -1)
	if len(edges) == 0 || n == 0 {
		return w.mateOut
	}
	m := w.prepare(n, edges, maxCardinality)
	m.run()
	for v := 0; v < n; v++ {
		if m.mate[v] >= 0 {
			w.mateOut[v] = m.endpoint[m.mate[v]]
		}
	}
	return w.mateOut
}

// MinWeightPerfect behaves like the package-level MinWeightPerfect but
// recycles the workspace buffers. The returned slice aliases the
// workspace and is valid only until its next call.
func (w *Workspace) MinWeightPerfect(n int, edges []Edge) ([]int, error) {
	if n%2 != 0 {
		return nil, errOddVertices(n)
	}
	var maxW int64
	for _, e := range edges {
		if e.W > maxW {
			maxW = e.W
		}
	}
	if cap(w.flipped) < len(edges) {
		w.flipped = make([]Edge, len(edges))
	}
	w.flipped = w.flipped[:len(edges)]
	for i, e := range edges {
		w.flipped[i] = Edge{U: e.U, V: e.V, W: maxW + 1 - e.W}
	}
	mate := w.MaxWeight(n, w.flipped, true)
	for v := 0; v < n; v++ {
		if mate[v] < 0 {
			return nil, errNoPerfect(v)
		}
	}
	return mate, nil
}

// prepare re-initializes the workspace matcher to the exact state a
// fresh newMatcher would produce for (n, edges, maxCardinality).
func (w *Workspace) prepare(n int, edges []Edge, maxCardinality bool) *matcher {
	m := &w.m
	m.nvertex = n
	m.maxCardinality = maxCardinality
	if cap(m.edges) < len(edges) {
		m.edges = make([]Edge, len(edges))
	}
	m.edges = m.edges[:len(edges)]
	var maxweight int64
	for i, e := range edges {
		checkEdge(e, n)
		m.edges[i] = Edge{U: e.U, V: e.V, W: 2 * e.W} // double for integral duals
		if m.edges[i].W > maxweight {
			maxweight = m.edges[i].W
		}
	}
	nedge := len(m.edges)
	m.endpoint = growInts(m.endpoint, 2*nedge)
	if cap(m.neighbend) < n {
		grown := make([][]int, n)
		copy(grown, m.neighbend)
		m.neighbend = grown
	}
	m.neighbend = m.neighbend[:n]
	for v := range m.neighbend {
		m.neighbend[v] = m.neighbend[v][:0]
	}
	for k, e := range m.edges {
		m.endpoint[2*k] = e.U
		m.endpoint[2*k+1] = e.V
		m.neighbend[e.U] = append(m.neighbend[e.U], 2*k+1)
		m.neighbend[e.V] = append(m.neighbend[e.V], 2*k)
	}
	m.mate = growFill(m.mate, n, -1)
	m.label = growFill(m.label, 2*n, 0)
	m.labelend = growFill(m.labelend, 2*n, -1)
	m.inblossom = growInts(m.inblossom, n)
	for i := range m.inblossom {
		m.inblossom[i] = i
	}
	m.blossomparent = growFill(m.blossomparent, 2*n, -1)
	m.blossomchilds = growNilRows(m.blossomchilds, 2*n)
	m.childsbuf = growRows(m.childsbuf, 2*n)
	m.endpsbuf = growRows(m.endpsbuf, 2*n)
	m.bestbuf = growRows(m.bestbuf, 2*n)
	m.blossombase = growInts(m.blossombase, 2*n)
	for i := 0; i < n; i++ {
		m.blossombase[i] = i
	}
	for i := n; i < 2*n; i++ {
		m.blossombase[i] = -1
	}
	m.blossomendps = growNilRows(m.blossomendps, 2*n)
	m.bestedge = growFill(m.bestedge, 2*n, -1)
	m.blossombestedges = growNilRows(m.blossombestedges, 2*n)
	m.unusedblossoms = m.unusedblossoms[:0]
	for b := n; b < 2*n; b++ {
		m.unusedblossoms = append(m.unusedblossoms, b)
	}
	m.dualvar = growInt64s(m.dualvar, 2*n)
	for v := 0; v < n; v++ {
		m.dualvar[v] = maxweight
	}
	for b := n; b < 2*n; b++ {
		m.dualvar[b] = 0
	}
	m.allowedge = growBools(m.allowedge, nedge)
	for i := range m.allowedge {
		m.allowedge[i] = false
	}
	m.queue = m.queue[:0]
	return m
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growFill(s []int, n, v int) []int {
	s = growInts(s, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// growNilRows resizes a slice of rows and resets every row to nil, the
// fresh matcher's state. The visible blossom arrays must keep exact nil
// semantics (nil marks "no blossom here" / "best edges not computed");
// the retained backing lives in the matcher's *buf arrays instead.
func growNilRows(s [][]int, n int) [][]int {
	if cap(s) < n {
		return make([][]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = nil
	}
	return s
}

// growRows resizes a slice of rows, preserving existing row backing so
// per-slot buffers keep their capacity across runs.
func growRows(s [][]int, n int) [][]int {
	if cap(s) < n {
		grown := make([][]int, n)
		copy(grown, s)
		return grown
	}
	return s[:n]
}
