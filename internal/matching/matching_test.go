package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMaxWeight exhaustively finds the best matching weight by trying
// all subsets of edges (only viable for tiny graphs).
func bruteMaxWeight(n int, edges []Edge, maxCardinality bool) (int64, int) {
	bestW := int64(0)
	bestCard := 0
	var recur func(idx int, used []bool, w int64, card int)
	recur = func(idx int, used []bool, w int64, card int) {
		better := false
		if maxCardinality {
			if card > bestCard || (card == bestCard && w > bestW) {
				better = true
			}
		} else if w > bestW || (w == bestW && card < bestCard && false) {
			better = true
		}
		if better {
			bestW, bestCard = w, card
		}
		for k := idx; k < len(edges); k++ {
			e := edges[k]
			if used[e.U] || used[e.V] {
				continue
			}
			used[e.U], used[e.V] = true, true
			recur(k+1, used, w+e.W, card+1)
			used[e.U], used[e.V] = false, false
		}
	}
	recur(0, make([]bool, n), 0, 0)
	return bestW, bestCard
}

func matchingStats(t *testing.T, n int, edges []Edge, mate []int) (int64, int) {
	t.Helper()
	// Validity: symmetric, partner in range.
	for v := 0; v < n; v++ {
		if mate[v] == -1 {
			continue
		}
		if mate[v] < 0 || mate[v] >= n || mate[mate[v]] != v || mate[v] == v {
			t.Fatalf("invalid mate array: %v", mate)
		}
	}
	// Weight: each matched pair must correspond to an edge; use the
	// heaviest parallel edge.
	var w int64
	card := 0
	for v := 0; v < n; v++ {
		u := mate[v]
		if u == -1 || u < v {
			continue
		}
		best := int64(-1 << 62)
		found := false
		for _, e := range edges {
			if (e.U == v && e.V == u) || (e.U == u && e.V == v) {
				found = true
				if e.W > best {
					best = e.W
				}
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) has no edge", v, u)
		}
		w += best
		card++
	}
	return w, card
}

func randGraph(rng *rand.Rand, maxN, maxW int) (int, []Edge) {
	n := 2 + rng.Intn(maxN-1)
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.6 {
				edges = append(edges, Edge{u, v, int64(rng.Intn(maxW + 1))})
			}
		}
	}
	return n, edges
}

func TestMaxWeightEmpty(t *testing.T) {
	mate := MaxWeight(3, nil, false)
	for _, x := range mate {
		if x != -1 {
			t.Fatal("empty graph should have empty matching")
		}
	}
}

func TestMaxWeightSingleEdge(t *testing.T) {
	mate := MaxWeight(2, []Edge{{0, 1, 5}}, false)
	if mate[0] != 1 || mate[1] != 0 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestMaxWeightZeroWeightEdgeSkipped(t *testing.T) {
	// Without maxCardinality a zero-weight edge gains nothing; either
	// answer is optimal, but weight must be maximal (0).
	mate := MaxWeight(2, []Edge{{0, 1, 0}}, false)
	w, _ := matchingStatsNoT(2, []Edge{{0, 1, 0}}, mate)
	if w != 0 {
		t.Fatalf("weight = %d", w)
	}
	// With maxCardinality the edge must be used.
	mate = MaxWeight(2, []Edge{{0, 1, 0}}, true)
	if mate[0] != 1 {
		t.Fatalf("maxCardinality should match zero edge, mate=%v", mate)
	}
}

func matchingStatsNoT(n int, edges []Edge, mate []int) (int64, int) {
	var w int64
	card := 0
	for v := 0; v < n; v++ {
		u := mate[v]
		if u == -1 || u < v {
			continue
		}
		for _, e := range edges {
			if (e.U == v && e.V == u) || (e.U == u && e.V == v) {
				w += e.W
				break
			}
		}
		card++
	}
	return w, card
}

func TestMaxWeightPathPrefersMiddleOrEnds(t *testing.T) {
	// Path 0-1-2 with weights 2, 3: best is single edge (1,2) w=3 ... but
	// 0-1 (2) + nothing else; max is 3.
	mate := MaxWeight(3, []Edge{{0, 1, 2}, {1, 2, 3}}, false)
	if mate[1] != 2 || mate[2] != 1 || mate[0] != -1 {
		t.Fatalf("mate = %v", mate)
	}
}

func TestMaxWeightTriangleBlossom(t *testing.T) {
	// Classic blossom trigger: odd cycle plus pendant.
	edges := []Edge{{0, 1, 6}, {1, 2, 10}, {2, 0, 5}, {2, 3, 4}}
	mate := MaxWeight(4, edges, false)
	w, _ := matchingStatsNoT(4, edges, mate)
	bw, _ := bruteMaxWeight(4, edges, false)
	if w != bw {
		t.Fatalf("weight %d, brute %d, mate %v", w, bw, mate)
	}
}

func TestMaxWeightNestedBlossoms(t *testing.T) {
	// Known tricky cases from van Rantwijk's test suite.
	cases := []struct {
		n     int
		edges []Edge
		want  []int
	}{
		// test_s_blossom
		{6, []Edge{{1, 2, 8}, {1, 3, 9}, {2, 3, 10}, {3, 4, 7}, {1, 6 - 1, 5}, {4, 6 - 1, 6}},
			nil},
		// test_s_nest: create S-blossom, relabel as T, use for augmentation
		{7, []Edge{{1, 2, 9}, {1, 3, 9}, {2, 3, 10}, {2, 4, 8}, {3, 5, 8}, {4, 5, 10}, {5, 6, 6}},
			[]int{-1, 3, 4, 1, 2, 6, 5}},
		// test_nest_t_expand: create nested S-blossom, augment, expand recursively
		{9, []Edge{{1, 2, 19}, {1, 3, 20}, {1, 8, 8}, {2, 3, 25}, {2, 4, 18}, {3, 5, 18}, {4, 5, 13}, {4, 7, 7}, {5, 6, 7}},
			nil},
	}
	for ci, c := range cases {
		mate := MaxWeight(c.n, c.edges, false)
		w, _ := matchingStatsNoT(c.n, c.edges, mate)
		bw, _ := bruteMaxWeight(c.n, c.edges, false)
		if w != bw {
			t.Fatalf("case %d: weight %d, brute %d, mate %v", ci, w, bw, mate)
		}
		if c.want != nil {
			for v, u := range c.want {
				if mate[v] != u {
					t.Fatalf("case %d: mate=%v want %v", ci, mate, c.want)
				}
			}
		}
	}
}

func TestMaxWeightRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n, edges := randGraph(rng, 8, 12)
		mate := MaxWeight(n, edges, false)
		w, _ := matchingStats(t, n, edges, mate)
		bw, _ := bruteMaxWeight(n, edges, false)
		if w != bw {
			t.Fatalf("trial %d: n=%d edges=%v got weight %d want %d (mate %v)",
				trial, n, edges, w, bw, mate)
		}
	}
}

func TestMaxCardinalityRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 400; trial++ {
		n, edges := randGraph(rng, 8, 12)
		mate := MaxWeight(n, edges, true)
		w, card := matchingStats(t, n, edges, mate)
		bw, bcard := bruteMaxWeight(n, edges, true)
		if card != bcard || w != bw {
			t.Fatalf("trial %d: n=%d edges=%v got (w=%d,c=%d) want (w=%d,c=%d) mate %v",
				trial, n, edges, w, card, bw, bcard, mate)
		}
	}
}

func TestMinWeightPerfectCompleteGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 * (1 + rng.Intn(4)) // 2,4,6,8
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, Edge{u, v, int64(rng.Intn(50))})
			}
		}
		mate, err := MinWeightPerfect(n, edges)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var w int64
		for v := 0; v < n; v++ {
			if mate[v] == -1 {
				t.Fatal("not perfect")
			}
			if mate[v] > v {
				for _, e := range edges {
					if (e.U == v && e.V == mate[v]) || (e.V == v && e.U == mate[v]) {
						w += e.W
					}
				}
			}
		}
		// Brute force min perfect matching.
		best := bruteMinPerfect(n, edges)
		if w != best {
			t.Fatalf("trial %d: got %d want %d", trial, w, best)
		}
	}
}

func bruteMinPerfect(n int, edges []Edge) int64 {
	wt := make([][]int64, n)
	for i := range wt {
		wt[i] = make([]int64, n)
		for j := range wt[i] {
			wt[i][j] = 1 << 60
		}
	}
	for _, e := range edges {
		if e.W < wt[e.U][e.V] {
			wt[e.U][e.V], wt[e.V][e.U] = e.W, e.W
		}
	}
	var recur func(used int) int64
	memo := map[int]int64{}
	recur = func(used int) int64 {
		if used == (1<<n)-1 {
			return 0
		}
		if v, ok := memo[used]; ok {
			return v
		}
		first := 0
		for used&(1<<first) != 0 {
			first++
		}
		best := int64(1 << 60)
		for j := first + 1; j < n; j++ {
			if used&(1<<j) != 0 || wt[first][j] >= 1<<60 {
				continue
			}
			sub := recur(used | 1<<first | 1<<j)
			if sub < 1<<60 && wt[first][j]+sub < best {
				best = wt[first][j] + sub
			}
		}
		memo[used] = best
		return best
	}
	return recur(0)
}

func TestMinWeightPerfectOddVertices(t *testing.T) {
	if _, err := MinWeightPerfect(3, []Edge{{0, 1, 1}, {1, 2, 1}}); err == nil {
		t.Fatal("expected error for odd vertex count")
	}
}

func TestMinWeightPerfectNoPerfectMatching(t *testing.T) {
	// Star K_{1,3}: 4 vertices, no perfect matching.
	edges := []Edge{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}}
	if _, err := MinWeightPerfect(4, edges); err == nil {
		t.Fatal("expected error when no perfect matching exists")
	}
}

// Property: the algorithm's matching weight equals brute force on random
// small graphs, for both modes.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64, maxCard bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, edges := randGraph(rng, 7, 9)
		mate := MaxWeight(n, edges, maxCard)
		w, card := matchingStatsNoT(n, edges, mate)
		bw, bcard := bruteMaxWeight(n, edges, maxCard)
		if maxCard {
			return card == bcard && w == bw
		}
		return w == bw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomPerfectMatchingRuns(t *testing.T) {
	// Smoke test at a decoder-realistic size.
	rng := rand.New(rand.NewSource(99))
	n := 60
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{u, v, int64(1 + rng.Intn(1000))})
		}
	}
	mate, err := MinWeightPerfect(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if mate[v] == -1 || mate[mate[v]] != v {
			t.Fatal("imperfect or asymmetric matching")
		}
	}
}

func BenchmarkMinWeightPerfectK40(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{u, v, int64(1 + rng.Intn(1000))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinWeightPerfect(n, edges); err != nil {
			b.Fatal(err)
		}
	}
}
