// Package matching implements maximum-weight matching on general graphs
// via Edmonds' blossom algorithm in the O(V^3) primal-dual formulation
// (Galil 1986, following van Rantwijk's well-known reference
// implementation). It is the engine behind both minimum-weight
// perfect-matching decoding and the flag-sharing optimizer.
//
// Weights are int64; callers with float weights should quantize (the
// decoders in this repository multiply -log probabilities by a fixed
// scale). Internally all weights are doubled so that every dual update
// stays integral.
package matching

import "fmt"

// Edge is an undirected weighted edge between vertices U and V.
// Self-loops are not allowed. Parallel edges are permitted; only the one
// with maximum weight can ever be matched.
type Edge struct {
	U, V int
	W    int64
}

const (
	labelFree = 0
	labelS    = 1
	labelT    = 2
	// labelBreadcrumb marks S-blossoms visited during scanBlossom.
	labelBreadcrumb = 5
)

type matcher struct {
	nvertex int
	edges   []Edge // weights doubled

	endpoint  []int   // endpoint[p] = vertex at endpoint p (p = 2k or 2k+1 of edge k)
	neighbend [][]int // neighbend[v] = remote endpoints of edges incident to v

	mate             []int // mate[v] = remote endpoint of matched edge, or -1
	label            []int
	labelend         []int
	inblossom        []int
	blossomparent    []int
	blossomchilds    [][]int
	blossombase      []int
	blossomendps     [][]int
	bestedge         []int
	blossombestedges [][]int
	unusedblossoms   []int
	dualvar          []int64
	allowedge        []bool
	queue            []int

	maxCardinality bool

	// Reusable backing for the blossom-formation paths, so steady-state
	// runs stay allocation-free. childsbuf/endpsbuf/bestbuf hold the
	// per-slot rows behind blossomchilds/blossomendps/blossombestedges
	// (the visible arrays keep their exact nil semantics; the buffers
	// just retain capacity when a slot is freed and reused). scanpath,
	// leaves, rotbuf and bestedgeto are call-local scratch.
	childsbuf  [][]int
	endpsbuf   [][]int
	bestbuf    [][]int
	scanpath   []int
	leaves     []int
	rotbuf     []int
	bestedgeto []int
}

// MaxWeight computes a maximum-weight matching of the graph on vertices
// 0..n-1 with the given edges. If maxCardinality is true, only matchings
// of maximum cardinality are considered (and the heaviest such matching
// is returned). The result maps each vertex to its partner, or -1 if
// unmatched.
func MaxWeight(n int, edges []Edge, maxCardinality bool) []int {
	var w Workspace
	return append([]int(nil), w.MaxWeight(n, edges, maxCardinality)...)
}

// MinWeightPerfect computes a minimum-weight perfect matching of the
// graph on vertices 0..n-1. It returns an error if no perfect matching
// exists (including when n is odd).
func MinWeightPerfect(n int, edges []Edge) ([]int, error) {
	var w Workspace
	mate, err := w.MinWeightPerfect(n, edges)
	if err != nil {
		return nil, err
	}
	return append([]int(nil), mate...), nil
}

func errOddVertices(n int) error {
	return fmt.Errorf("matching: no perfect matching on %d (odd) vertices", n)
}

func errNoPerfect(v int) error {
	return fmt.Errorf("matching: graph has no perfect matching (vertex %d unmatched)", v)
}

func checkEdge(e Edge, n int) {
	if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
		panic(fmt.Sprintf("matching: edge endpoint out of range: %+v (n=%d)", e, n))
	}
	if e.U == e.V {
		panic(fmt.Sprintf("matching: self-loop at vertex %d", e.U))
	}
}

// slack returns the reduced cost of edge k (always even).
func (m *matcher) slack(k int) int64 {
	e := m.edges[k]
	return m.dualvar[e.U] + m.dualvar[e.V] - 2*e.W
}

// blossomLeaves appends all ground vertices contained in blossom b.
func (m *matcher) blossomLeaves(b int, out []int) []int {
	if b < m.nvertex {
		return append(out, b)
	}
	for _, t := range m.blossomchilds[b] {
		out = m.blossomLeaves(t, out)
	}
	return out
}

// assignLabel labels vertex w's top-level blossom with t, entered through
// remote endpoint p.
func (m *matcher) assignLabel(w, t, p int) {
	b := m.inblossom[w]
	if m.label[w] != labelFree || m.label[b] != labelFree {
		panic("matching: assignLabel on labeled vertex")
	}
	m.label[w], m.label[b] = t, t
	m.labelend[w], m.labelend[b] = p, p
	m.bestedge[w], m.bestedge[b] = -1, -1
	if t == labelS {
		m.queue = m.blossomLeaves(b, m.queue)
	} else if t == labelT {
		base := m.blossombase[b]
		if m.mate[base] < 0 {
			panic("matching: T-label on unmatched base")
		}
		m.assignLabel(m.endpoint[m.mate[base]], labelS, m.mate[base]^1)
	}
}

// scanBlossom traces back from v and w to discover either a new blossom
// base or an augmenting path (base -1).
func (m *matcher) scanBlossom(v, w int) int {
	path := m.scanpath[:0]
	base := -1
	for v != -1 || w != -1 {
		b := m.inblossom[v]
		if m.label[b]&4 != 0 {
			base = m.blossombase[b]
			break
		}
		path = append(path, b)
		m.label[b] = labelBreadcrumb
		if m.labelend[b] == -1 {
			v = -1
		} else {
			v = m.endpoint[m.labelend[b]]
			b = m.inblossom[v]
			v = m.endpoint[m.labelend[b]]
		}
		if w != -1 {
			v, w = w, v
		}
	}
	for _, b := range path {
		m.label[b] = labelS
	}
	m.scanpath = path
	return base
}

// addBlossom constructs a new blossom with the given base, through edge k
// joining two S-blossoms.
func (m *matcher) addBlossom(base, k int) {
	v, w := m.edges[k].U, m.edges[k].V
	bb := m.inblossom[base]
	bv := m.inblossom[v]
	bw := m.inblossom[w]
	b := m.unusedblossoms[len(m.unusedblossoms)-1]
	m.unusedblossoms = m.unusedblossoms[:len(m.unusedblossoms)-1]
	m.blossombase[b] = base
	m.blossomparent[b] = -1
	m.blossomparent[bb] = b
	path := m.childsbuf[b][:0]
	endps := m.endpsbuf[b][:0]
	for bv != bb {
		m.blossomparent[bv] = b
		path = append(path, bv)
		endps = append(endps, m.labelend[bv])
		v = m.endpoint[m.labelend[bv]]
		bv = m.inblossom[v]
	}
	path = append(path, bb)
	reverse(path)
	reverse(endps)
	endps = append(endps, 2*k)
	for bw != bb {
		m.blossomparent[bw] = b
		path = append(path, bw)
		endps = append(endps, m.labelend[bw]^1)
		w = m.endpoint[m.labelend[bw]]
		bw = m.inblossom[w]
	}
	m.childsbuf[b] = path
	m.endpsbuf[b] = endps
	m.blossomchilds[b] = path
	m.blossomendps[b] = endps
	if m.label[bb] != labelS {
		panic("matching: blossom base not S-labeled")
	}
	m.label[b] = labelS
	m.labelend[b] = m.labelend[bb]
	m.dualvar[b] = 0
	m.leaves = m.blossomLeaves(b, m.leaves[:0])
	for _, lv := range m.leaves {
		if m.label[m.inblossom[lv]] == labelT {
			m.queue = append(m.queue, lv)
		}
		m.inblossom[lv] = b
	}
	// Recompute best edges to neighbouring S-blossoms. Edge candidates
	// are visited in the same order as the former materialized nblists
	// (per leaf, per incident endpoint), just without building them.
	m.bestedgeto = growFill(m.bestedgeto, 2*m.nvertex, -1)
	bestedgeto := m.bestedgeto
	scanEdge := func(ek int) {
		i, j := m.edges[ek].U, m.edges[ek].V
		if m.inblossom[j] == b {
			i, j = j, i
		}
		_ = i
		bj := m.inblossom[j]
		if bj != b && m.label[bj] == labelS &&
			(bestedgeto[bj] == -1 || m.slack(ek) < m.slack(bestedgeto[bj])) {
			bestedgeto[bj] = ek
		}
	}
	for _, sb := range path {
		if m.blossombestedges[sb] == nil {
			m.leaves = m.blossomLeaves(sb, m.leaves[:0])
			for _, lv := range m.leaves {
				for _, p := range m.neighbend[lv] {
					scanEdge(p / 2)
				}
			}
		} else {
			for _, ek := range m.blossombestedges[sb] {
				scanEdge(ek)
			}
		}
		m.blossombestedges[sb] = nil
		m.bestedge[sb] = -1
	}
	best := m.bestbuf[b][:0]
	for _, ek := range bestedgeto {
		if ek != -1 {
			best = append(best, ek)
		}
	}
	m.bestbuf[b] = best
	if len(best) == 0 {
		// The fresh code built best by appending to a nil slice, so an
		// empty result was stored as nil ("not computed") — preserve that.
		m.blossombestedges[b] = nil
	} else {
		m.blossombestedges[b] = best
	}
	m.bestedge[b] = -1
	for _, ek := range best {
		if m.bestedge[b] == -1 || m.slack(ek) < m.slack(m.bestedge[b]) {
			m.bestedge[b] = ek
		}
	}
}

// expandBlossom undoes blossom b, either at the end of a stage (endstage)
// or mid-stage when its dual hits zero.
func (m *matcher) expandBlossom(b int, endstage bool) {
	for _, s := range m.blossomchilds[b] {
		m.blossomparent[s] = -1
		if s < m.nvertex {
			m.inblossom[s] = s
		} else if endstage && m.dualvar[s] == 0 {
			m.expandBlossom(s, endstage)
		} else {
			m.leaves = m.blossomLeaves(s, m.leaves[:0])
			for _, lv := range m.leaves {
				m.inblossom[lv] = s
			}
		}
	}
	if !endstage && m.label[b] == labelT {
		// The expanding blossom is a T-blossom: relabel its path.
		entrychild := m.inblossom[m.endpoint[m.labelend[b]^1]]
		j := indexOf(m.blossomchilds[b], entrychild)
		var jstep, endptrick int
		if j&1 != 0 {
			j -= len(m.blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		p := m.labelend[b]
		for j != 0 {
			m.label[m.endpoint[p^1]] = labelFree
			m.label[m.endpoint[at(m.blossomendps[b], j-endptrick)^endptrick^1]] = labelFree
			m.assignLabel(m.endpoint[p^1], labelT, p)
			m.allowedge[at(m.blossomendps[b], j-endptrick)/2] = true
			j += jstep
			p = at(m.blossomendps[b], j-endptrick) ^ endptrick
			m.allowedge[p/2] = true
			j += jstep
		}
		bv := at(m.blossomchilds[b], j)
		m.label[m.endpoint[p^1]] = labelT
		m.label[bv] = labelT
		m.labelend[m.endpoint[p^1]] = p
		m.labelend[bv] = p
		m.bestedge[bv] = -1
		j += jstep
		for at(m.blossomchilds[b], j) != entrychild {
			bv = at(m.blossomchilds[b], j)
			if m.label[bv] == labelS {
				j += jstep
				continue
			}
			var lv int
			m.leaves = m.blossomLeaves(bv, m.leaves[:0])
			for _, lv = range m.leaves {
				if m.label[lv] != labelFree {
					break
				}
			}
			if m.label[lv] != labelFree {
				if m.label[lv] != labelT || m.inblossom[lv] != bv {
					panic("matching: inconsistent label during expand")
				}
				m.label[lv] = labelFree
				m.label[m.endpoint[m.mate[m.blossombase[bv]]]] = labelFree
				m.assignLabel(lv, labelT, m.labelend[lv])
			}
			j += jstep
		}
	}
	m.label[b] = -1
	m.labelend[b] = -1
	m.blossomchilds[b] = nil
	m.blossomendps[b] = nil
	m.blossombase[b] = -1
	m.blossombestedges[b] = nil
	m.bestedge[b] = -1
	m.unusedblossoms = append(m.unusedblossoms, b)
}

// at indexes a slice with Python-style negative wrap-around.
func at(s []int, i int) int {
	if i < 0 {
		return s[len(s)+i]
	}
	return s[i]
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	panic("matching: element not found")
}

func reverse(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// augmentBlossom swaps matched and unmatched edges around blossom b so
// that vertex v becomes its new base.
func (m *matcher) augmentBlossom(b, v int) {
	t := v
	for m.blossomparent[t] != b {
		t = m.blossomparent[t]
	}
	if t >= m.nvertex {
		m.augmentBlossom(t, v)
	}
	i := indexOf(m.blossomchilds[b], t)
	j := i
	var jstep, endptrick int
	if i&1 != 0 {
		j -= len(m.blossomchilds[b])
		jstep = 1
		endptrick = 0
	} else {
		jstep = -1
		endptrick = 1
	}
	for j != 0 {
		j += jstep
		t = at(m.blossomchilds[b], j)
		p := at(m.blossomendps[b], j-endptrick) ^ endptrick
		if t >= m.nvertex {
			m.augmentBlossom(t, m.endpoint[p])
		}
		j += jstep
		t = at(m.blossomchilds[b], j)
		if t >= m.nvertex {
			m.augmentBlossom(t, m.endpoint[p^1])
		}
		m.mate[m.endpoint[p]] = p ^ 1
		m.mate[m.endpoint[p^1]] = p
	}
	m.rotateInPlace(m.blossomchilds[b], i)
	m.rotateInPlace(m.blossomendps[b], i)
	m.blossombase[b] = m.blossombase[m.blossomchilds[b][0]]
	if m.blossombase[b] != v {
		panic("matching: augmentBlossom base mismatch")
	}
}

// rotateInPlace left-rotates s by i through the matcher's scratch buffer
// (the contents end up exactly as the former rotate-into-fresh-slice).
func (m *matcher) rotateInPlace(s []int, i int) {
	m.rotbuf = append(m.rotbuf[:0], s[i:]...)
	m.rotbuf = append(m.rotbuf, s[:i]...)
	copy(s, m.rotbuf)
}

// augmentMatching augments the matching along the path through edge k.
func (m *matcher) augmentMatching(k int) {
	starts := [2][2]int{{m.edges[k].U, 2*k + 1}, {m.edges[k].V, 2 * k}}
	for _, sp := range starts {
		s, p := sp[0], sp[1]
		for {
			bs := m.inblossom[s]
			if m.label[bs] != labelS {
				panic("matching: augment through non-S blossom")
			}
			if bs >= m.nvertex {
				m.augmentBlossom(bs, s)
			}
			m.mate[s] = p
			if m.labelend[bs] == -1 {
				break
			}
			t := m.endpoint[m.labelend[bs]]
			bt := m.inblossom[t]
			if m.label[bt] != labelT {
				panic("matching: augment path expected T blossom")
			}
			s = m.endpoint[m.labelend[bt]]
			j := m.endpoint[m.labelend[bt]^1]
			if m.blossombase[bt] != t {
				panic("matching: T-blossom base mismatch")
			}
			if bt >= m.nvertex {
				m.augmentBlossom(bt, j)
			}
			m.mate[j] = m.labelend[bt]
			p = m.labelend[bt] ^ 1
		}
	}
}

func (m *matcher) run() {
	n := m.nvertex
	for stage := 0; stage < n; stage++ {
		for i := range m.label {
			m.label[i] = labelFree
		}
		for i := range m.bestedge {
			m.bestedge[i] = -1
		}
		for i := n; i < 2*n; i++ {
			m.blossombestedges[i] = nil
		}
		for i := range m.allowedge {
			m.allowedge[i] = false
		}
		m.queue = m.queue[:0]
		for v := 0; v < n; v++ {
			if m.mate[v] == -1 && m.label[m.inblossom[v]] == labelFree {
				m.assignLabel(v, labelS, -1)
			}
		}
		augmented := false
		for {
			for len(m.queue) > 0 && !augmented {
				v := m.queue[len(m.queue)-1]
				m.queue = m.queue[:len(m.queue)-1]
				for _, p := range m.neighbend[v] {
					k := p / 2
					w := m.endpoint[p]
					if m.inblossom[v] == m.inblossom[w] {
						continue
					}
					var kslack int64
					if !m.allowedge[k] {
						kslack = m.slack(k)
						if kslack <= 0 {
							m.allowedge[k] = true
						}
					}
					if m.allowedge[k] {
						if m.label[m.inblossom[w]] == labelFree {
							m.assignLabel(w, labelT, p^1)
						} else if m.label[m.inblossom[w]] == labelS {
							base := m.scanBlossom(v, w)
							if base >= 0 {
								m.addBlossom(base, k)
							} else {
								m.augmentMatching(k)
								augmented = true
								break
							}
						} else if m.label[w] == labelFree {
							m.label[w] = labelT
							m.labelend[w] = p ^ 1
						}
					} else if m.label[m.inblossom[w]] == labelS {
						b := m.inblossom[v]
						if m.bestedge[b] == -1 || kslack < m.slack(m.bestedge[b]) {
							m.bestedge[b] = k
						}
					} else if m.label[w] == labelFree {
						if m.bestedge[w] == -1 || kslack < m.slack(m.bestedge[w]) {
							m.bestedge[w] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Compute the dual adjustment delta.
			deltatype := -1
			var delta int64
			deltaedge, deltablossom := -1, -1
			if !m.maxCardinality {
				deltatype = 1
				delta = m.dualvar[0]
				for v := 1; v < n; v++ {
					if m.dualvar[v] < delta {
						delta = m.dualvar[v]
					}
				}
			}
			for v := 0; v < n; v++ {
				if m.label[m.inblossom[v]] == labelFree && m.bestedge[v] != -1 {
					d := m.slack(m.bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = m.bestedge[v]
					}
				}
			}
			for b := 0; b < 2*n; b++ {
				if m.blossomparent[b] == -1 && m.label[b] == labelS && m.bestedge[b] != -1 {
					kslack := m.slack(m.bestedge[b])
					if kslack%2 != 0 {
						panic("matching: odd slack for S-S edge")
					}
					d := kslack / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = m.bestedge[b]
					}
				}
			}
			for b := n; b < 2*n; b++ {
				if m.blossombase[b] >= 0 && m.blossomparent[b] == -1 &&
					m.label[b] == labelT && (deltatype == -1 || m.dualvar[b] < delta) {
					delta = m.dualvar[b]
					deltatype = 4
					deltablossom = b
				}
			}
			if deltatype == -1 {
				// No progress possible: the max-cardinality optimum is
				// reached. A final non-negative delta keeps duals valid.
				if !m.maxCardinality {
					panic("matching: stuck without maxCardinality")
				}
				deltatype = 1
				minDual := m.dualvar[0]
				for v := 1; v < n; v++ {
					if m.dualvar[v] < minDual {
						minDual = m.dualvar[v]
					}
				}
				delta = 0
				if minDual > 0 {
					delta = minDual
				}
			}
			// Apply delta to duals.
			for v := 0; v < n; v++ {
				switch m.label[m.inblossom[v]] {
				case labelS:
					m.dualvar[v] -= delta
				case labelT:
					m.dualvar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if m.blossombase[b] >= 0 && m.blossomparent[b] == -1 {
					switch m.label[b] {
					case labelS:
						m.dualvar[b] += delta
					case labelT:
						m.dualvar[b] -= delta
					}
				}
			}
			// Act on the argmin.
			switch deltatype {
			case 1:
				// Optimum reached.
			case 2:
				m.allowedge[deltaedge] = true
				i := m.edges[deltaedge].U
				if m.label[m.inblossom[i]] == labelFree {
					i = m.edges[deltaedge].V
				}
				m.queue = append(m.queue, i)
			case 3:
				m.allowedge[deltaedge] = true
				m.queue = append(m.queue, m.edges[deltaedge].U)
			case 4:
				m.expandBlossom(deltablossom, false)
			}
			if deltatype == 1 {
				break
			}
		}
		if !augmented {
			break
		}
		// End of stage: expand all S-blossoms with zero dual.
		for b := n; b < 2*n; b++ {
			if m.blossomparent[b] == -1 && m.blossombase[b] >= 0 &&
				m.label[b] == labelS && m.dualvar[b] == 0 {
				m.expandBlossom(b, true)
			}
		}
	}
}
