package matching

// Fuzzing the blossom matcher against a brute-force perfect-matching
// enumerator. For n ≤ 8 the O(n!!) enumeration is cheap, so random
// graphs exercise blossom formation, expansion and dual adjustment
// against ground truth: the matcher must find a perfect matching
// exactly when one exists, and its total weight must be minimal.
// The Workspace path must additionally be bit-identical to the
// package-level entry point.

import (
	"testing"
)

// fuzzGraph decodes fuzz bytes into a graph on n ∈ {2,4,6,8} vertices
// with deduplicated undirected edges and small non-negative weights.
func fuzzGraph(data []byte) (int, []Edge, map[int]int64) {
	if len(data) == 0 {
		return 0, nil, nil
	}
	n := 2 + 2*(int(data[0])%4)
	data = data[1:]
	weights := map[int]int64{}
	var edges []Edge
	for len(data) >= 3 {
		u := int(data[0]) % n
		v := int(data[1]) % n
		w := int64(data[2])
		data = data[3:]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if _, dup := weights[u*n+v]; dup {
			continue
		}
		weights[u*n+v] = w
		edges = append(edges, Edge{U: u, V: v, W: w})
	}
	return n, edges, weights
}

func FuzzMinWeightPerfect(f *testing.F) {
	f.Add([]byte{0, 0, 1, 5})                                                                // n=2, single edge
	f.Add([]byte{1, 0, 1, 3, 2, 3, 4, 0, 2, 1, 1, 3, 1})                                     // n=4, two matchings
	f.Add([]byte{2, 0, 1, 9, 1, 2, 9, 2, 0, 9, 3, 4, 1, 4, 5, 1, 5, 3, 1})                   // n=6, two triangles (no perfect matching across)
	f.Add([]byte{3, 0, 1, 2, 2, 3, 2, 4, 5, 2, 6, 7, 2, 0, 7, 1, 1, 2, 1, 3, 4, 1, 5, 6, 1}) // n=8, cycle vs chords
	f.Fuzz(func(t *testing.T, data []byte) {
		n, edges, weights := fuzzGraph(data)
		if n == 0 {
			t.Skip()
		}
		want := bruteMinPerfect(n, edges) // matching_test.go's memoized enumerator
		feasible := want < 1<<60

		mate, err := MinWeightPerfect(n, edges)
		if !feasible {
			if err == nil {
				t.Fatalf("n=%d edges=%v: matcher found a perfect matching where brute force found none", n, edges)
			}
			return
		}
		if err != nil {
			t.Fatalf("n=%d edges=%v: matcher failed (%v) but brute force found weight %d", n, edges, err, want)
		}
		// mate must be a valid perfect matching over the given edges.
		var got int64
		for u := 0; u < n; u++ {
			v := mate[u]
			if v < 0 || v >= n || mate[v] != u || v == u {
				t.Fatalf("n=%d edges=%v: invalid mate array %v", n, edges, mate)
			}
			if u < v {
				w, ok := weights[u*n+v]
				if !ok {
					t.Fatalf("n=%d edges=%v: mate pairs %d-%d along a non-edge", n, edges, u, v)
				}
				got += w
			}
		}
		if got != want {
			t.Fatalf("n=%d edges=%v: matcher weight %d, brute-force minimum %d (mate %v)", n, edges, got, want, mate)
		}

		// The Workspace path must agree bit for bit with the package-level
		// entry point, including across reuse.
		var ws Workspace
		for round := 0; round < 2; round++ {
			wmate, werr := ws.MinWeightPerfect(n, edges)
			if werr != nil {
				t.Fatalf("workspace round %d: %v", round, werr)
			}
			for v := range mate {
				if wmate[v] != mate[v] {
					t.Fatalf("workspace round %d: mate %v differs from package-level %v", round, wmate, mate)
				}
			}
		}
	})
}
