package guardedby

import (
	"go/ast"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// ctx situates a point in a body: inLit is true inside any function
// literal (whose run time is unknowable, so inherited lock state and
// entry facts are void), spawned additionally marks literals launched by
// a go statement (their accesses are goroutine-side by construction).
type ctx struct {
	inLit   bool
	spawned bool
}

// walker simulates one function body in statement order, tracking which
// lock expressions are held at each point. held is keyed by the printed
// path of the mutex expression ("s.mu", "c.job.mu"): a guard only
// matches an access through the same path, which is exactly the
// discipline the annotation declares.
type walker struct {
	pkg   *analysis.Package
	state *progState
	entry analysis.FactSet
	fresh map[types.Object]bool
	recv  types.Object

	onAccess func(sel *ast.SelectorExpr, fi *fieldInfo, held map[string]bool, c ctx)
	onCall   func(call *ast.CallExpr, held map[string]bool, c ctx)
}

func newWalker(pkg *analysis.Package, st *progState, decl *ast.FuncDecl, entry analysis.FactSet) *walker {
	w := &walker{pkg: pkg, state: st, entry: entry, fresh: analysis.FreshLocals(pkg, decl)}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		w.recv = pkg.TypesInfo.Defs[decl.Recv.List[0].Names[0]]
	}
	return w
}

func (w *walker) isRecv(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && w.recv != nil && w.pkg.TypesInfo.Uses[id] == w.recv
}

func (w *walker) isFresh(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && w.fresh[w.pkg.TypesInfo.Uses[id]]
}

func (w *walker) walk(decl *ast.FuncDecl) {
	w.block(decl.Body.List, map[string]bool{}, ctx{})
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func (w *walker) block(list []ast.Stmt, held map[string]bool, c ctx) {
	for _, st := range list {
		w.stmt(st, held, c)
	}
}

func (w *walker) stmt(st ast.Stmt, held map[string]bool, c ctx) {
	switch s := st.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s.List, held, c)
	case *ast.ExprStmt:
		w.exprs(held, c, s.X)
		w.applyLock(s.X, held)
	case *ast.AssignStmt:
		w.exprs(held, c, s.Rhs...)
		w.exprs(held, c, s.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(held, c, vs.Values...)
				}
			}
		}
	case *ast.ReturnStmt:
		w.exprs(held, c, s.Results...)
	case *ast.IncDecStmt:
		w.exprs(held, c, s.X)
	case *ast.SendStmt:
		w.exprs(held, c, s.Chan, s.Value)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held, c)
	case *ast.IfStmt:
		w.stmt(s.Init, held, c)
		w.exprs(held, c, s.Cond)
		w.block(s.Body.List, copyHeld(held), c)
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held), c)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held, c)
		w.exprs(held, c, s.Cond)
		body := copyHeld(held)
		w.block(s.Body.List, body, c)
		w.stmt(s.Post, body, c)
	case *ast.RangeStmt:
		w.exprs(held, c, s.X)
		w.block(s.Body.List, copyHeld(held), c)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held, c)
		w.exprs(held, c, s.Tag)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			h := copyHeld(held)
			w.exprs(h, c, cc.List...)
			w.block(cc.Body, h, c)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held, c)
		w.stmt(s.Assign, held, c)
		for _, cl := range s.Body.List {
			w.block(cl.(*ast.CaseClause).Body, copyHeld(held), c)
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			h := copyHeld(held)
			w.stmt(cc.Comm, h, c)
			w.block(cc.Body, h, c)
		}
	case *ast.GoStmt:
		w.launch(s.Call, held, c, true)
	case *ast.DeferStmt:
		w.launch(s.Call, held, c, false)
	}
}

// launch handles go and defer: the call's arguments are evaluated now
// (under the current lock state) but the call itself runs on another
// goroutine or at return time, so no facts transfer into it. Notably a
// deferred mu.Unlock leaves held untouched — the lock stays held for the
// rest of the function, which is the whole point of the idiom.
func (w *walker) launch(call *ast.CallExpr, held map[string]bool, c ctx, isGo bool) {
	w.exprs(held, c, call.Args...)
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.block(lit.Body.List, map[string]bool{}, ctx{inLit: true, spawned: c.spawned || isGo})
		return
	}
	w.exprs(held, c, call.Fun)
	if w.onCall != nil {
		// nil held: lock state at run time is unknowable.
		w.onCall(call, nil, ctx{inLit: true, spawned: c.spawned || isGo})
	}
}

// exprs scans expressions for field accesses and call sites under the
// current lock state. Function-literal bodies are walked with a clean
// slate: a closure may be stashed and run on any goroutine later, so
// only locks it acquires itself count inside it.
func (w *walker) exprs(held map[string]bool, c ctx, es ...ast.Expr) {
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				w.block(x.Body.List, map[string]bool{}, ctx{inLit: true, spawned: c.spawned})
				return false
			case *ast.CallExpr:
				if w.onCall != nil {
					w.onCall(x, held, c)
				}
			case *ast.SelectorExpr:
				sel, ok := w.pkg.TypesInfo.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				v, ok := sel.Obj().(*types.Var)
				if !ok {
					return true
				}
				if fi := w.state.fields[v]; fi != nil && w.onAccess != nil {
					w.onAccess(x, fi, held, c)
				}
			}
			return true
		})
	}
}

// applyLock updates held for a statement-level mu.Lock/RLock/Unlock/
// RUnlock call on a mutex-typed expression.
func (w *walker) applyLock(e ast.Expr, held map[string]bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, ok := w.pkg.TypesInfo.Types[sel.X]
	if !ok || !isMutex(tv.Type) {
		return
	}
	key := types.ExprString(ast.Unparen(sel.X))
	switch sel.Sel.Name {
	case "Lock", "RLock":
		held[key] = true
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}
