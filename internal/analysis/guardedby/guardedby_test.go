package guardedby_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/guardedby"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, guardedby.Analyzer, "testdata/rtd")
}
