// Package rtd is a guardedby fixture masquerading as the real rtd
// package (the analyzer matches on package name). It pairs true
// positives — unlocked accesses to annotated fields, shared unannotated
// fields, closures relying on a lock they did not take — with every
// sanctioned access pattern: lock/unlock windows, deferred unlocks,
// locked helpers proven through call-site facts, constructor freshness,
// and self-synchronized field types.
package rtd

import (
	"sync"
	"sync/atomic"
)

// box exercises enforcement of an annotated field.
type box struct {
	mu  sync.Mutex
	val int //fpnvet:guardedby mu
}

// Lock/deferred-unlock holds to function end; the locked-helper chain is
// proven by its call sites.
func (b *box) set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.val = v
	b.setLocked(v)
}

func (b *box) setLocked(v int) {
	b.val = v // clean: every caller holds b.mu
	b.chainLocked(v)
}

func (b *box) chainLocked(v int) {
	b.val = v // clean: transitively locked through setLocked
}

// An explicit unlock ends the window mid-function.
func (b *box) window() int {
	b.mu.Lock()
	v := b.val
	b.mu.Unlock()
	return v + b.val // want "access to box.val without holding mu"
}

// A helper with even one lock-free call site gets no held facts.
func (b *box) mixed() {
	b.mu.Lock()
	b.halfLocked()
	b.mu.Unlock()
	b.halfLocked()
}

func (b *box) halfLocked() {
	b.val++ // want "access to box.val without holding mu"
}

// Constructor freshness: a locally built value cannot be shared yet, and
// that freshness follows the receiver into helpers.
func newBox() *box {
	b := &box{}
	b.val = 1 // clean: fresh local
	b.initDefaults()
	return b
}

func (b *box) initDefaults() {
	b.val = 2 // clean: receiver is freshly constructed at every call site
}

// Closures drop inherited lock state but honor their own locking.
func (b *box) closures() {
	b.mu.Lock()
	stale := func() {
		b.val++ // want "access to box.val without holding mu"
	}
	stale()
	b.mu.Unlock()
	fine := func() {
		b.mu.Lock()
		b.val++ // clean: lock acquired inside the literal
		b.mu.Unlock()
	}
	fine()
}

// Guards match by access path, not just by field.
type holder struct{ b *box }

func use(h *holder) {
	h.b.mu.Lock()
	h.b.val = 3 // clean: locked through the same path
	h.b.mu.Unlock()
	h.b.val = 4 // want "access to box.val without holding mu"
}

// RLock counts as held for reads.
type table struct {
	rw   sync.RWMutex
	rows map[int]string //fpnvet:guardedby rw
}

func (t *table) get(k int) string {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k] // clean
}

// stats exercises the coverage rule: hits is shared by two
// goroutine-reachable functions with no annotation, total is sanctioned
// by //fpnvet:unguarded, and the sync/atomic/chan fields need none.
type stats struct {
	mu    sync.Mutex
	m     map[string]int //fpnvet:guardedby mu
	hits  int            // want "accessed from 2 goroutine-reachable functions"
	total int            //fpnvet:unguarded written once before any goroutine starts
	n     atomic.Int64
	done  chan struct{}
}

func (s *stats) bump() { s.hits++ }

func (s *stats) read() int { return s.hits }

func (s *stats) spin() {
	go s.bump()
	go func() { _ = s.read() }()
}

func (s *stats) setup() { s.total = 1 }

func (s *stats) record(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string]int{}
	}
	s.m[k]++
	s.n.Add(1)
}

// A guardedby annotation must name a sibling mutex.
type wrong struct {
	mu sync.Mutex
	v  int //fpnvet:guardedby lock // want "names no sibling mutex field"
}

func (w *wrong) get() int { return w.v }
