// Package guardedby enforces mutex discipline on the service-layer
// structs: a field annotated //fpnvet:guardedby <mu> may only be read
// or written while the named sibling mutex is held, and every other
// field of a mutex-bearing struct that is touched from more than one
// goroutine-reachable function must either carry that annotation or
// //fpnvet:unguarded <why>. The -race detector only catches the
// interleavings a test happens to schedule; this pins the locking
// contract itself, so a new accessor added two PRs from now fails CI
// instead of racing in production.
//
// Lock state is tracked intra-procedurally in statement order
// (mu.Lock()/mu.Unlock() toggle it, defer mu.Unlock() holds to function
// end, branches see a copy) and flows across static calls through
// analysis.EntryFacts: an unexported helper whose every visible call
// site holds s.mu is checked under that assumption — the flushLocked
// idiom needs no annotation. Two escape hatches are built in: accesses
// through a freshly constructed local (the constructor idiom) and
// through a receiver that every caller passed freshly constructed (the
// Store.load idiom) are exempt, because the value cannot have been
// published to another goroutine yet. Closure bodies drop all inherited
// state — a function literal may run on any goroutine at any time — but
// locks acquired inside one count.
package guardedby

import (
	"go/ast"
	"go/types"
	"sync"

	"github.com/fpn/flagproxy/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //fpnvet:guardedby <mu> are only accessed with the mutex held; " +
		"unannotated fields of mutex-bearing structs shared across goroutines must be annotated",
	Run: run,
}

// scope lists the package basenames policed: the concurrent service
// layers and the stores they share.
var scope = map[string]bool{
	"fabric":     true,
	"rtd":        true,
	"experiment": true,
	"checkpoint": true,
}

// fieldInfo is one field of a mutex-bearing struct.
type fieldInfo struct {
	owner    *types.Named
	v        *types.Var
	guard    string // mutex name from //fpnvet:guardedby ("" if none)
	badGuard bool   // guard names no sibling mutex field
	unguard  bool   // //fpnvet:unguarded present
	exempt   bool   // internally synchronized type (sync.*, atomic.*, chan)

	// Coverage accounting: the goroutine-reachable functions accessing
	// the field (spawned-closure accesses count as their own context).
	accessors map[*types.Func]bool
	spawnAcc  bool
}

// progState is the program-wide computation shared by every per-package
// Run call: the field registry, caller-derived entry facts, and the
// goroutine-reachable set.
type progState struct {
	structs map[*types.Named]map[string]bool // mutex field names per struct
	fields  map[*types.Var]*fieldInfo
	entries map[*types.Func]analysis.FactSet
	goReach map[*types.Func]bool
}

var states sync.Map // *analysis.Program → *progState

func stateFor(prog *analysis.Program) *progState {
	if st, ok := states.Load(prog); ok {
		return st.(*progState)
	}
	st := buildState(prog)
	states.Store(prog, st)
	return st
}

func buildState(prog *analysis.Program) *progState {
	st := &progState{
		structs: map[*types.Named]map[string]bool{},
		fields:  map[*types.Var]*fieldInfo{},
		goReach: prog.GoroutineReachable(),
	}
	for _, pkg := range prog.Packages {
		if !scope[pkg.Name] {
			continue
		}
		sc := pkg.Types.Scope()
		for _, name := range sc.Names() {
			tn, ok := sc.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			stru, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			mutexes := map[string]bool{}
			for i := 0; i < stru.NumFields(); i++ {
				if isMutex(stru.Field(i).Type()) {
					mutexes[stru.Field(i).Name()] = true
				}
			}
			if len(mutexes) == 0 {
				continue
			}
			st.structs[named] = mutexes
			for i := 0; i < stru.NumFields(); i++ {
				v := stru.Field(i)
				if isMutex(v.Type()) {
					continue
				}
				fi := &fieldInfo{owner: named, v: v, accessors: map[*types.Func]bool{}}
				if arg, ok := prog.DirectiveArg(analysis.DirGuardedBy, v.Pos()); ok {
					fi.guard = arg
					fi.badGuard = !mutexes[arg]
				}
				fi.unguard = prog.HasDirective(analysis.DirUnguarded, v.Pos())
				fi.exempt = isSelfSynced(v.Type())
				st.fields[v] = fi
			}
		}
	}

	// Coverage pass: which functions touch each field, and from which
	// goroutine contexts.
	eachScopedDecl(prog, func(fn *types.Func, decl *ast.FuncDecl, pkg *analysis.Package) {
		w := newWalker(pkg, st, decl, nil)
		w.onAccess = func(sel *ast.SelectorExpr, fi *fieldInfo, held map[string]bool, c ctx) {
			fi.accessors[fn] = true
			if c.spawned {
				fi.spawnAcc = true
			}
		}
		w.walk(decl)
	})

	// Interprocedural lock facts.
	st.entries = prog.EntryFacts(func(fn *types.Func, decl *ast.FuncDecl, pkg *analysis.Package, entry analysis.FactSet, emit func(*types.Func, analysis.FactSet)) {
		if !scope[pkg.Name] {
			return
		}
		w := newWalker(pkg, st, decl, entry)
		w.onCall = func(call *ast.CallExpr, held map[string]bool, c ctx) {
			callee := pkg.CalleeOf(call)
			if callee == nil {
				return
			}
			emit(callee, w.callFacts(call, held, c))
		}
		w.walk(decl)
	})
	return st
}

// callFacts computes the facts holding at a call site, translated into
// the callee's frame. Only method calls on a concrete receiver carry
// facts; held == nil marks a deferred call, whose run-time lock state is
// unknowable here.
func (w *walker) callFacts(call *ast.CallExpr, held map[string]bool, c ctx) analysis.FactSet {
	facts := analysis.FactSet{}
	if held == nil {
		return facts
	}
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return facts
	}
	msel, ok := w.pkg.TypesInfo.Selections[se]
	if !ok || msel.Kind() != types.MethodVal {
		return facts
	}
	x := ast.Unparen(se.X)
	xkey := types.ExprString(x)
	named := namedOf(msel.Recv())
	if named == nil {
		return facts
	}
	for mu := range w.state.structs[named] {
		if held[xkey+"."+mu] || (!c.inLit && w.isRecv(x) && w.entry["held:"+mu+"@recv"]) {
			facts["held:"+mu+"@recv"] = true
		}
	}
	if !c.inLit && (w.isFresh(x) || (w.isRecv(x) && w.entry["fresh@recv"])) {
		facts["fresh@recv"] = true
	}
	return facts
}

func run(pass *analysis.Pass) error {
	st := stateFor(pass.Prog)

	// Field-level findings, reported by the declaring package.
	if scope[pass.Pkg.Name] {
		for v, fi := range st.fields {
			if v.Pkg() != pass.Pkg.Types {
				continue
			}
			if fi.badGuard {
				pass.Report(v.Pos(), "//fpnvet:guardedby %s on %s.%s names no sibling mutex field",
					fi.guard, fi.owner.Obj().Name(), v.Name())
				continue
			}
			if fi.guard != "" || fi.unguard || fi.exempt {
				continue
			}
			n := 0
			for fn := range fi.accessors {
				if st.goReach[fn] {
					n++
				}
			}
			if fi.spawnAcc {
				n++
			}
			if n >= 2 {
				pass.Report(v.Pos(), "field %s.%s of a mutex-bearing struct is accessed from %d goroutine-reachable functions; annotate //fpnvet:guardedby <mu> or //fpnvet:unguarded <why>",
					fi.owner.Obj().Name(), v.Name(), n)
			}
		}

		// Access-level enforcement of annotated fields.
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				w := newWalker(pass.Pkg, st, fd, st.entries[fn])
				w.onAccess = func(sel *ast.SelectorExpr, fi *fieldInfo, held map[string]bool, c ctx) {
					if fi.guard == "" || fi.badGuard {
						return
					}
					x := ast.Unparen(sel.X)
					if held[types.ExprString(x)+"."+fi.guard] {
						return
					}
					if !c.inLit {
						if w.isRecv(x) && w.entry["held:"+fi.guard+"@recv"] {
							return
						}
						if w.isFresh(x) || (w.isRecv(x) && w.entry["fresh@recv"]) {
							return
						}
					}
					pass.Report(sel.Sel.Pos(), "access to %s.%s without holding %s (//fpnvet:guardedby %s)",
						fi.owner.Obj().Name(), fi.v.Name(), fi.guard, fi.guard)
				}
				w.walk(fd)
			}
		}
	}
	return nil
}

// eachScopedDecl visits every function declaration of every in-scope
// package.
func eachScopedDecl(prog *analysis.Program, visit func(fn *types.Func, decl *ast.FuncDecl, pkg *analysis.Package)) {
	for _, pkg := range prog.Packages {
		if !scope[pkg.Name] {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					visit(fn, fd, pkg)
				}
			}
		}
	}
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isSelfSynced reports whether a field of type t needs no external
// locking: the sync and sync/atomic types carry their own
// synchronization, and channel operations are synchronized by the
// runtime.
func isSelfSynced(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// namedOf unwraps a (possibly pointer) type to its named form.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
