// Package simple is the driver's own loader/directive fixture.
package simple

import "sort"

//fpn:hotpath
func Root(xs []int) int {
	return helper(xs)
}

func helper(xs []int) int {
	sort.Ints(xs)
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

type Options struct {
	//fpnvet:sched cosmetic only
	Verbose bool
	Depth   int
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	//fpnvet:orderless collect-then-sort
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
