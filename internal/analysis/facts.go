package analysis

// Interprocedural fact propagation over the static call graph. PR 4's
// analyzers were intra-procedural (hotalloc walks call graphs but only
// ever *prunes* on directives); the concurrency analyzers need facts
// that flow *into* functions from their callers — "every caller holds
// s.mu here", "the receiver has not been published to another goroutine
// yet", "a read deadline is armed on this connection" — so helpers like
// checkpoint.Store.flushLocked can be checked against the lock
// discipline of their call sites instead of forcing an annotation onto
// every locked helper.
//
// The model is deliberately simple: facts are opaque strings scoped to
// the callee's frame, and the entry facts of a function are the
// intersection (meet) over every visible static call site of the facts
// the analyzer reports holding there. Starting from the empty set and
// iterating to a fixed point yields the least solution — a fact can only
// enter the system through an actual intra-procedural source (a Lock
// call, a composite-literal construction, a SetReadDeadline) in some
// ancestor, never through circular assumption.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FactSet is a set of interprocedural facts. Keys are analyzer-chosen
// strings in the callee's frame (e.g. "held:mu@recv").
type FactSet map[string]bool

// Clone returns an independent copy of s.
func (s FactSet) Clone() FactSet {
	out := make(FactSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// equalFacts reports whether two fact sets hold the same facts.
func equalFacts(a, b FactSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// meetInto intersects acc with facts, treating a nil acc as "no site
// seen yet" (the identity of the meet).
func meetInto(acc FactSet, facts FactSet, first bool) FactSet {
	if first {
		return facts.Clone()
	}
	for k := range acc {
		if !facts[k] {
			delete(acc, k)
		}
	}
	return acc
}

// FlowFunc is the analyzer-supplied transfer function of EntryFacts: it
// walks one function body under the given entry facts and calls emit
// once per statically resolved call site with the facts holding there,
// already translated into the callee's frame. Call sites inside
// goroutine launches (`go f()`, calls within a spawned function literal)
// must be emitted with the facts that survive the goroutine boundary —
// usually none.
type FlowFunc func(fn *types.Func, decl *ast.FuncDecl, pkg *Package, entry FactSet, emit func(callee *types.Func, facts FactSet))

// EntryFacts computes, for every function declared in the program, the
// facts guaranteed to hold on entry. Functions invocable from outside
// the visible static call graph are pinned to the empty set: exported
// functions (callable from tests and future packages), address-taken
// functions (handler registrations, function-typed fields, method
// values) and goroutine roots (a spawner's facts die at the `go`).
func (p *Program) EntryFacts(flow FlowFunc) map[*types.Func]FactSet {
	pinned := map[*types.Func]bool{}
	for fn := range p.decls {
		if fn.Exported() {
			pinned[fn] = true
		}
	}
	for fn := range p.AddressTaken() {
		pinned[fn] = true
	}
	for fn := range p.GoSpawned() {
		pinned[fn] = true
	}

	entries := map[*types.Func]FactSet{}
	// Fixed point: the per-round recomputation is monotone increasing
	// from the empty solution and the fact universe is finite, so this
	// terminates; the cap is a backstop, not a tuning knob.
	for round := 0; round < 64; round++ {
		next := map[*types.Func]FactSet{}
		seen := map[*types.Func]bool{}
		for fn, d := range p.decls {
			if d.decl.Body == nil {
				continue
			}
			flow(fn, d.decl, d.pkg, entries[fn], func(callee *types.Func, facts FactSet) {
				if _, ok := p.decls[callee]; !ok {
					return
				}
				next[callee] = meetInto(next[callee], facts, !seen[callee])
				seen[callee] = true
			})
		}
		for fn := range pinned {
			delete(next, fn)
		}
		stable := len(next) == len(entries)
		if stable {
			for fn, facts := range next {
				if !equalFacts(facts, entries[fn]) {
					stable = false
					break
				}
			}
		}
		entries = next
		if stable {
			break
		}
	}
	for fn := range entries {
		if len(entries[fn]) == 0 {
			delete(entries, fn)
		}
	}
	return entries
}

// AddressTaken returns the set of declared functions whose value is
// taken somewhere in the program — passed as an argument, assigned to a
// variable or field, registered as a handler. Such functions can be
// invoked from contexts the static call graph cannot see, so no
// caller-derived fact may be assumed on their entry, and (for goexit's
// purposes) they may run on any goroutine.
func (p *Program) AddressTaken() map[*types.Func]bool {
	p.factsOnce.Do(p.indexFactRoots)
	return p.addressTaken
}

// GoSpawned returns the set of declared functions that appear as the
// direct callee of a `go` statement anywhere in the program.
func (p *Program) GoSpawned() map[*types.Func]bool {
	p.factsOnce.Do(p.indexFactRoots)
	return p.goSpawned
}

// GoroutineReachable returns every declared function reachable from a
// goroutine root: the direct callees of `go` statements, the static
// callees inside spawned function literals, and address-taken functions
// (handlers and callbacks run on whatever goroutine invokes them), plus
// everything they transitively call.
func (p *Program) GoroutineReachable() map[*types.Func]bool {
	p.factsOnce.Do(p.indexFactRoots)
	return p.goReachable
}

// indexFactRoots scans the program once for address-taken functions, go
// statement roots and the goroutine-reachable closure.
func (p *Program) indexFactRoots() {
	p.addressTaken = map[*types.Func]bool{}
	p.goSpawned = map[*types.Func]bool{}

	// callFuns collects the expression nodes that appear in call position
	// so plain references can be told apart from invocations; selIdents
	// collects the Sel identifier of every selector, whose reference
	// semantics belong to the enclosing SelectorExpr, not the bare Ident.
	callFuns := map[ast.Expr]bool{}
	selIdents := map[*ast.Ident]bool{}
	var litRoots []*types.Func
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					callFuns[ast.Unparen(x.Fun)] = true
				case *ast.SelectorExpr:
					selIdents[x.Sel] = true
				}
				return true
			})
		}
	}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.GoStmt:
					if fn := pkg.calleeOf(e.Call); fn != nil {
						p.goSpawned[fn] = true
					}
					if lit, ok := ast.Unparen(e.Call.Fun).(*ast.FuncLit); ok {
						litRoots = append(litRoots, pkg.Callees(lit.Body)...)
					}
				case *ast.Ident:
					if callFuns[e] || selIdents[e] {
						return true
					}
					if fn, ok := pkg.TypesInfo.Uses[e].(*types.Func); ok {
						p.addressTaken[fn] = true
					}
				case *ast.SelectorExpr:
					if callFuns[e] {
						// Still descend: e.X may itself reference a function.
						return true
					}
					if sel, ok := pkg.TypesInfo.Selections[e]; ok {
						if fn, ok := sel.Obj().(*types.Func); ok {
							p.addressTaken[fn] = true
						}
					} else if fn, ok := pkg.TypesInfo.Uses[e.Sel].(*types.Func); ok {
						p.addressTaken[fn] = true
					}
				}
				return true
			})
		}
	}

	var roots []*types.Func
	for fn := range p.goSpawned {
		roots = append(roots, fn)
	}
	for fn := range p.addressTaken {
		roots = append(roots, fn)
	}
	roots = append(roots, litRoots...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	p.goReachable = map[*types.Func]bool{}
	p.Reachable(roots, func(fn *types.Func, decl *ast.FuncDecl, pkg *Package) bool {
		p.goReachable[fn] = true
		return true
	})
}

// FreshLocals returns the objects of local variables in decl that are
// only ever assigned freshly constructed values — &T{…}, T{…}, new(T) —
// and therefore cannot have been published to another goroutine while
// the function still runs (unless the function itself leaks them, which
// the caller-side facts of EntryFacts account for at call boundaries).
// Accesses through such variables need no lock: they are the
// constructor idiom.
func FreshLocals(pkg *Package, decl *ast.FuncDecl) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	poisoned := map[types.Object]bool{}
	note := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.TypesInfo.Defs[id]
		if obj == nil {
			obj = pkg.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if rhs != nil && isFreshExpr(rhs) {
			fresh[obj] = true
		} else {
			poisoned[obj] = true
		}
	}
	ast.Inspect(decl, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(asg.Lhs) == len(asg.Rhs) {
			for i := range asg.Lhs {
				note(asg.Lhs[i], asg.Rhs[i])
			}
		} else {
			for _, lhs := range asg.Lhs {
				note(lhs, nil)
			}
		}
		return true
	})
	for obj := range poisoned {
		delete(fresh, obj)
	}
	return fresh
}

// isFreshExpr reports whether e constructs a brand-new value: a
// composite literal, its address, or a new(T) call.
func isFreshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
