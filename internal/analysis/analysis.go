// Package analysis is fpnvet's driver: a small, stdlib-only static
// analysis framework that loads and type-checks this module's packages
// and runs repo-specific analyzers over them. It exists because the
// repository's core guarantees — deterministic replay from one seed,
// allocation-free decode hot paths, checkpoint keys that cover every
// physics knob — are invariants of the *code shape*, not of any single
// test vector, so they are enforced mechanically here and wired into CI
// through cmd/fpnvet.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	// Name is the short identifier printed in findings, e.g. "detrand".
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports findings for one package through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program-wide file set.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical file:line: [analyzer]
// message form the CI job greps for.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package of the program and
// returns the findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	// Program-walking analyzers (hotalloc) may reach the same function
	// from roots in different packages; keep one copy of each finding.
	seen := map[Diagnostic]bool{}
	uniq := diags[:0]
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	diags = uniq
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// resultAffecting lists the package basenames whose output feeds
// simulation results, catalog contents, or decode corrections. The
// determinism analyzers (detrand, maporder) only police these; harness
// code (cmd wiring, checkpoint I/O, reporting) may use maps and clocks
// freely as long as it never feeds values back into the physics.
var resultAffecting = map[string]bool{
	"sim":        true,
	"experiment": true,
	"decoder":    true,
	"dem":        true,
	"catalog":    true,
	"tiling":     true,
	"group":      true,
	"fabric":     true,
	"rtd":        true,
}

// ResultAffecting reports whether pkg is one of the packages whose
// behavior must be bit-reproducible from a seed.
func ResultAffecting(pkg *Package) bool { return resultAffecting[pkg.Name] }
