package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package of the module
// under analysis.
type Package struct {
	Path  string // import path ("github.com/fpn/flagproxy/internal/sim")
	Dir   string // absolute directory
	Name  string // package name
	Files []*ast.File

	Types     *types.Package
	TypesInfo *types.Info

	prog *Program
}

// Program is the set of packages loaded for one fpnvet run, plus the
// shared file set and cross-package indexes analyzers need (function
// declarations by object, annotation directives by position).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // in load (dependency) order

	ModulePath string
	ModuleRoot string

	byPath map[string]*Package
	decls  map[*types.Func]*funcDecl
	notes  *noteIndex

	// Lazily built fact-propagation indexes (facts.go).
	factsOnce    sync.Once
	addressTaken map[*types.Func]bool
	goSpawned    map[*types.Func]bool
	goReachable  map[*types.Func]bool
}

// funcDecl ties a function declaration to its defining package.
type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// LoadConfig controls where packages are loaded from.
type LoadConfig struct {
	// Dir is the working directory patterns are resolved against. It
	// must be inside a module (a directory tree with a go.mod).
	Dir string
}

// Load parses and type-checks the packages matched by patterns.
// Supported patterns are "./..." (every package under Dir), "./x/..."
// and plain relative directories ("./internal/sim"). Standard-library
// imports are type-checked from GOROOT source; module-internal imports
// are resolved against the module root, so the set of loaded packages
// is closed under intra-module dependencies.
func Load(cfg LoadConfig, patterns ...string) (*Program, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleRoot: root,
		byPath:     map[string]*Package{},
		decls:      map[*types.Func]*funcDecl{},
	}
	dirs, err := expandPatterns(abs, root, patterns)
	if err != nil {
		return nil, err
	}
	ld := &loader{prog: prog, parsed: map[string]*parsedPkg{}, loading: map[string]bool{}}
	for _, d := range dirs {
		if _, err := ld.load(d); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
	}
	prog.notes = indexNotes(prog)
	prog.indexDecls()
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves command-line patterns to package directories.
func expandPatterns(dir, root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		if base, ok := strings.CutSuffix(p, "/..."); ok {
			start := filepath.Join(dir, base)
			err := filepath.WalkDir(start, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				if skipDir(de.Name()) && path != start {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(dir, p))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// skipDir reports whether a directory subtree is excluded from pattern
// expansion: testdata fixtures, hidden and underscore directories, and
// vendored code.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// parsedPkg is a package mid-load: parsed but not yet type-checked.
type parsedPkg struct {
	dir     string
	path    string
	name    string
	files   []*ast.File
	imports []string
}

type loader struct {
	prog    *Program
	parsed  map[string]*parsedPkg
	loading map[string]bool
}

// load parses, recursively loads the module-internal imports of, and
// type-checks the package in dir. It is memoized by directory.
func (l *loader) load(dir string) (*Package, error) {
	if pkg, ok := l.prog.byPath[l.pathOf(dir)]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("analysis: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := parseAll(l.prog.Fset, dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	// Load intra-module dependencies first so the type-checker's
	// importer can serve them from the program.
	for _, imp := range bp.Imports {
		if sub, ok := strings.CutPrefix(imp, l.prog.ModulePath); ok {
			if _, err := l.load(filepath.Join(l.prog.ModuleRoot, filepath.FromSlash(sub))); err != nil {
				return nil, fmt.Errorf("analysis: loading %s (imported by %s): %w", imp, dir, err)
			}
		}
	}
	pkg := &Package{
		Path:  l.pathOf(dir),
		Dir:   dir,
		Name:  bp.Name,
		Files: files,
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
		prog: l.prog,
	}
	tcfg := &types.Config{Importer: l}
	tpkg, err := tcfg.Check(pkg.Path, l.prog.Fset, files, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	l.prog.byPath[pkg.Path] = pkg
	l.prog.Packages = append(l.prog.Packages, pkg)
	return pkg, nil
}

// pathOf maps a directory to its import path within the module. Fixture
// directories outside the module root get a synthetic path.
func (l *loader) pathOf(dir string) string {
	rel, err := filepath.Rel(l.prog.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.prog.ModulePath
	}
	return l.prog.ModulePath + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer: module-internal packages come from
// the program, everything else (the standard library) from GOROOT
// source.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if sub, ok := strings.CutPrefix(path, l.prog.ModulePath); ok {
		dir := filepath.Join(l.prog.ModuleRoot, filepath.FromSlash(sub))
		pkg, err := l.load(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return importStd(path)
}

// parseAll parses one package's files concurrently. token.FileSet and
// the parser are safe for concurrent use; the result keeps the input
// order so downstream indexes are deterministic.
func parseAll(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return files, nil
}

// The standard library is type-checked from GOROOT source, which costs a
// couple of seconds — far more than the module itself. The result is
// immutable and identical for every Load call in a process, so one
// importer (with its own FileSet) is shared by all of them: the
// analyzertest suite and the fpnvet driver pay for the stdlib once
// instead of once per fixture. Module code never resolves positions of
// stdlib objects, so the separate FileSet is invisible to analyzers.
var std struct {
	mu   sync.Mutex
	fset *token.FileSet
	imp  types.Importer
}

func importStd(path string) (*types.Package, error) {
	std.mu.Lock()
	defer std.mu.Unlock()
	if std.imp == nil {
		std.fset = token.NewFileSet()
		std.imp = importer.ForCompiler(std.fset, "source", nil)
	}
	return std.imp.Import(path)
}

// indexDecls builds the program-wide *types.Func → declaration map used
// by call-graph walks.
func (p *Program) indexDecls() {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					p.decls[obj] = &funcDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}
}

// DeclOf returns the declaration of fn and the package declaring it, or
// nil if fn is not declared in the loaded program (e.g. stdlib).
func (p *Program) DeclOf(fn *types.Func) (*ast.FuncDecl, *Package) {
	if d, ok := p.decls[fn]; ok {
		return d.decl, d.pkg
	}
	return nil, nil
}

// PackageByPath returns the loaded package with the given import path.
func (p *Program) PackageByPath(path string) *Package {
	return p.byPath[path]
}
