// Package netdeadline enforces bounded network waits in the service
// packages (internal/fabric, internal/rtd). A blocking read or write
// with no deadline lets one slow or wedged peer pin a goroutine — and
// through it a worker slot, a lease, or a drain — forever. Three checks:
//
//  1. Blocking I/O sites must be dominated by a deadline. Sites are
//     reads on request/response bodies (traced through wrappers like
//     bufio.NewReaderSize and http.MaxBytesReader into the readers they
//     return), reads and writes on net.Conn-like values, writes to
//     http.ResponseWriter (directly or through http.Error, fmt.Fprintf,
//     io.Copy, json.NewEncoder chains). A site is satisfied by a
//     SetReadDeadline/SetWriteDeadline/SetDeadline call earlier in the
//     function (http.NewResponseController arms the underlying
//     connection the same way), by every caller having armed one
//     (propagated through analysis.EntryFacts), or by an explicit
//     //fpnvet:nodeadline <why> on the site or its function — the
//     honest escape when the bound lives elsewhere, e.g. in the serving
//     http.Server's timeouts.
//
//  2. HTTP clients must bound their requests: an http.Client composite
//     literal without a Timeout, or any use of http.DefaultClient /
//     the package-level http.Get family (which have none), is a finding
//     unless annotated.
//
//  3. Module-wide, every http.Server composite literal must set
//     ReadHeaderTimeout (or ReadTimeout, which subsumes it): without it
//     an idle peer can hold pre-handler connections open indefinitely,
//     and the handler-level annotations that cite server timeouts
//     would cite configuration that does not exist.
package netdeadline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
	"sync"

	"github.com/fpn/flagproxy/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "netdeadline",
	Doc: "blocking reads/writes on connections and request/response bodies in the service " +
		"packages must be dominated by a deadline (or annotated //fpnvet:nodeadline), HTTP " +
		"clients must set Timeout, and http.Server literals must set ReadHeaderTimeout",
	Run: run,
}

// scope lists the packages whose I/O sites are policed.
var scope = map[string]bool{"fabric": true, "rtd": true}

const (
	factRead  = "rdeadline"
	factWrite = "wdeadline"
)

var entriesCache sync.Map // *analysis.Program → map[*types.Func]analysis.FactSet

func entriesFor(prog *analysis.Program) map[*types.Func]analysis.FactSet {
	if e, ok := entriesCache.Load(prog); ok {
		return e.(map[*types.Func]analysis.FactSet)
	}
	entries := prog.EntryFacts(func(fn *types.Func, decl *ast.FuncDecl, pkg *analysis.Package, entry analysis.FactSet, emit func(*types.Func, analysis.FactSet)) {
		if !scope[pkg.Name] {
			return
		}
		sc := scanBody(pkg, decl.Body)
		for _, c := range sc.calls {
			callee := pkg.CalleeOf(c.call)
			if callee == nil {
				continue
			}
			facts := analysis.FactSet{}
			if !c.launched {
				if sc.armed(factRead, c.pos, c.scope, entry) {
					facts[factRead] = true
				}
				if sc.armed(factWrite, c.pos, c.scope, entry) {
					facts[factWrite] = true
				}
			}
			emit(callee, facts)
		}
	})
	entriesCache.Store(prog, entries)
	return entries
}

func run(pass *analysis.Pass) error {
	// Module-wide server hygiene.
	checkServerLiterals(pass)

	if !scope[pass.Pkg.Name] {
		return nil
	}
	entries := entriesFor(pass.Prog)
	checkClients(pass)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Prog.FuncHasDirective(analysis.DirNodeadline, fd) {
				continue
			}
			var entry analysis.FactSet
			if fn, _ := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
				entry = entries[fn]
			}
			sc := scanBody(pass.Pkg, fd.Body)
			for _, s := range sc.sites {
				if pass.Prog.HasDirective(analysis.DirNodeadline, s.pos) {
					continue
				}
				if sc.armed(s.kind, s.pos, s.scope, entry) {
					continue
				}
				what := map[string]string{factRead: "read", factWrite: "write"}[s.kind]
				deadline := map[string]string{factRead: "SetReadDeadline", factWrite: "SetWriteDeadline"}[s.kind]
				pass.Report(s.pos, "blocking %s %s has no dominating %s; arm a deadline or annotate //fpnvet:nodeadline <why>",
					what, s.desc, deadline)
			}
		}
	}
	return nil
}

// checkServerLiterals flags http.Server composite literals that set
// neither ReadHeaderTimeout nor ReadTimeout.
func checkServerLiterals(pass *analysis.Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isNetHTTPType(pass.Pkg.TypesInfo.Types[cl].Type, "Server") {
				return true
			}
			if pass.Prog.HasDirective(analysis.DirNodeadline, cl.Pos()) {
				return true
			}
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok &&
						(id.Name == "ReadHeaderTimeout" || id.Name == "ReadTimeout") {
						return true
					}
				}
			}
			pass.Report(cl.Pos(), "http.Server literal sets no ReadHeaderTimeout; an idle peer can hold connections open forever")
			return true
		})
	}
}

// checkClients flags unbounded HTTP clients: literals without Timeout
// and uses of the package-level default client.
func checkClients(pass *analysis.Pass) {
	defaultFns := map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if !isNetHTTPType(pass.Pkg.TypesInfo.Types[x].Type, "Client") {
					return true
				}
				if pass.Prog.HasDirective(analysis.DirNodeadline, x.Pos()) {
					return true
				}
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
							return true
						}
					}
				}
				pass.Report(x.Pos(), "http.Client literal sets no Timeout; a wedged peer blocks every request forever")
			case *ast.SelectorExpr:
				// Only package-qualified references (http.Get, not
				// client.Get): the X must be the net/http package name.
				id, ok := ast.Unparen(x.X).(*ast.Ident)
				if !ok {
					return true
				}
				if _, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName); !ok {
					return true
				}
				obj := pass.Pkg.TypesInfo.Uses[x.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
					return true
				}
				if pass.Prog.HasDirective(analysis.DirNodeadline, x.Pos()) {
					return true
				}
				if x.Sel.Name == "DefaultClient" {
					pass.Report(x.Pos(), "http.DefaultClient has no Timeout; use a client with one or annotate //fpnvet:nodeadline <why>")
				} else if _, isFn := obj.(*types.Func); isFn && defaultFns[x.Sel.Name] {
					pass.Report(x.Pos(), "http.%s uses the timeout-less default client; use a client with a Timeout or annotate //fpnvet:nodeadline <why>", x.Sel.Name)
				}
			}
			return true
		})
	}
}

// arm is one Set*Deadline call; scope identifies the function literal it
// sits in ("" for the function body proper).
type arm struct {
	kind  string // factRead, factWrite, or "" for SetDeadline (both)
	pos   token.Pos
	scope string
}

// ioSite is one blocking read or write.
type ioSite struct {
	kind  string
	desc  string
	pos   token.Pos
	scope string
}

// callSite is one static call, for fact propagation.
type callSite struct {
	call     *ast.CallExpr
	pos      token.Pos
	scope    string
	launched bool // go or defer: runs under unknowable deadline state
}

type scanResult struct {
	pkg   *analysis.Package
	arms  []arm
	sites []ioSite
	calls []callSite
}

// armed reports whether a deadline of the given kind is armed at pos: an
// entry fact from every caller, or an earlier Set call in the same or an
// enclosing literal scope (a deadline set on the connection before a
// closure was created still bounds I/O inside it).
func (sc *scanResult) armed(kind string, pos token.Pos, scope string, entry analysis.FactSet) bool {
	if entry[kind] {
		return true
	}
	for _, a := range sc.arms {
		if a.pos < pos && (a.kind == kind || a.kind == "") && strings.HasPrefix(scope, a.scope) {
			return true
		}
	}
	return false
}

// readMethods are methods whose call on a body-tainted value blocks on
// the network.
var readMethods = map[string]bool{
	"Read": true, "ReadByte": true, "ReadBytes": true, "ReadString": true,
	"ReadSlice": true, "ReadLine": true, "ReadRune": true, "Decode": true,
}

// writeMethods are methods whose call on a client-facing writer blocks
// on the network.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "Flush": true, "Encode": true, "ReadFrom": true,
}

// readFuncs are package functions that block reading their tainted
// argument.
var readFuncs = map[string]bool{
	"io.ReadAll": true, "io.ReadFull": true, "io.Copy": true, "io.CopyN": true,
}

// writeFuncs block writing to the writer passed in the named argument
// position.
var writeFuncs = map[string]int{
	"http.Error": 0, "http.NotFound": 0, "http.Redirect": 0, "http.ServeContent": 0,
	"fmt.Fprintf": 0, "fmt.Fprintln": 0, "fmt.Fprint": 0,
	"io.WriteString": 0, "io.Copy": 0, "io.CopyN": 0,
}

// scanBody walks one function body collecting deadline arms, blocking
// I/O sites, and call sites, each tagged with its literal scope.
func scanBody(pkg *analysis.Package, body *ast.BlockStmt) *scanResult {
	sc := &scanResult{pkg: pkg}
	taintR := sc.taintedReaders(body)
	taintW := sc.taintedWriters(body)

	litScope := func(scope string, lit *ast.FuncLit) string {
		return scope + "/" + strconv.Itoa(int(lit.Pos()))
	}
	var walk func(n ast.Node, scope string, launched bool)
	visit := func(n ast.Node, scope string, launched bool) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			walk(x.Body, litScope(scope, x), launched)
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			var call *ast.CallExpr
			if g, ok := n.(*ast.GoStmt); ok {
				call = g.Call
			} else {
				call = n.(*ast.DeferStmt).Call
			}
			for _, a := range call.Args {
				walk(a, scope, launched)
			}
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				walk(lit.Body, litScope(scope, lit), true)
			} else {
				sc.calls = append(sc.calls, callSite{call, call.Pos(), scope, true})
			}
			return false
		case *ast.CallExpr:
			sc.call(x, scope, launched, taintR, taintW)
		}
		return true
	}
	walk = func(n ast.Node, scope string, launched bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			return visit(m, scope, launched)
		})
	}
	walk(body, "", false)
	return sc
}

// call classifies one call expression: a deadline arm, a blocking site,
// and/or a static call site for fact propagation.
func (sc *scanResult) call(call *ast.CallExpr, scope string, launched bool, taintR, taintW map[types.Object]bool) {
	sc.calls = append(sc.calls, callSite{call, call.Pos(), scope, launched})

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "SetReadDeadline":
			sc.arms = append(sc.arms, arm{factRead, call.Pos(), scope})
			return
		case "SetWriteDeadline":
			sc.arms = append(sc.arms, arm{factWrite, call.Pos(), scope})
			return
		case "SetDeadline":
			sc.arms = append(sc.arms, arm{"", call.Pos(), scope})
			return
		}

		x := ast.Unparen(sel.X)
		if readMethods[sel.Sel.Name] {
			if isConnLike(sc.typeOf(x)) {
				sc.sites = append(sc.sites, ioSite{factRead, "on the connection", call.Pos(), scope})
				return
			}
			if sc.isTaintedR(x, taintR) {
				sc.sites = append(sc.sites, ioSite{factRead, "on request/response body", call.Pos(), scope})
				return
			}
		}
		if writeMethods[sel.Sel.Name] && sc.isTaintedW(x, taintW) {
			sc.sites = append(sc.sites, ioSite{factWrite, "to the client connection", call.Pos(), scope})
			return
		}
	}

	name := qualifiedName(sc.pkg, call.Fun)
	if readFuncs[name] {
		for _, a := range call.Args {
			if sc.isTaintedR(a, taintR) {
				sc.sites = append(sc.sites, ioSite{factRead, "on request/response body", call.Pos(), scope})
				return
			}
		}
	}
	if idx, ok := writeFuncs[name]; ok && idx < len(call.Args) && sc.isTaintedW(call.Args[idx], taintW) {
		sc.sites = append(sc.sites, ioSite{factWrite, "to the client connection", call.Pos(), scope})
	}
}

// taintedReaders computes the local variables holding (wrappers of) a
// request or response body. Two passes let a taint flow through one
// intermediate assignment regardless of statement order.
func (sc *scanResult) taintedReaders(body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	isT := func(e ast.Expr) bool { return sc.isTaintedR(e, tainted) }
	for i := 0; i < 2; i++ {
		sc.propagate(body, tainted, isT)
	}
	return tainted
}

// taintedWriters computes the local variables holding (wrappers of) a
// client-facing writer.
func (sc *scanResult) taintedWriters(body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	isT := func(e ast.Expr) bool { return sc.isTaintedW(e, tainted) }
	for i := 0; i < 2; i++ {
		sc.propagate(body, tainted, isT)
	}
	return tainted
}

// propagate marks assignment targets whose right-hand side is tainted.
func (sc *scanResult) propagate(body *ast.BlockStmt, tainted map[types.Object]bool, isT func(ast.Expr) bool) {
	mark := func(lhs, rhs ast.Expr) {
		if rhs == nil || !isT(rhs) {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := sc.pkg.TypesInfo.Defs[id]; obj != nil {
				tainted[obj] = true
			} else if obj := sc.pkg.TypesInfo.Uses[id]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if asg, ok := n.(*ast.AssignStmt); ok && len(asg.Lhs) == len(asg.Rhs) {
			for i := range asg.Lhs {
				mark(asg.Lhs[i], asg.Rhs[i])
			}
		}
		return true
	})
}

// isTaintedR reports whether e reads from a request/response body: the
// .Body selector itself, a tainted local, or a call wrapping a tainted
// argument (bufio.NewReaderSize, http.MaxBytesReader, io.LimitReader,
// json.NewDecoder all return readers that still block on the peer).
func (sc *scanResult) isTaintedR(e ast.Expr, tainted map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return tainted[sc.pkg.TypesInfo.Uses[x]] || tainted[sc.pkg.TypesInfo.Defs[x]]
	case *ast.SelectorExpr:
		return x.Sel.Name == "Body" && isReqOrResp(sc.typeOf(x.X))
	case *ast.CallExpr:
		for _, a := range x.Args {
			if sc.isTaintedR(a, tainted) {
				return true
			}
		}
	case *ast.UnaryExpr:
		return sc.isTaintedR(x.X, tainted)
	case *ast.StarExpr:
		return sc.isTaintedR(x.X, tainted)
	}
	return false
}

// isTaintedW reports whether e writes toward the client: an
// http.ResponseWriter or net.Conn-like value, a tainted local, or a
// wrapper call around one (json.NewEncoder, bufio.NewWriter).
func (sc *scanResult) isTaintedW(e ast.Expr, tainted map[types.Object]bool) bool {
	if t := sc.typeOf(e); isResponseWriter(t) || isConnLike(t) {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return tainted[sc.pkg.TypesInfo.Uses[x]] || tainted[sc.pkg.TypesInfo.Defs[x]]
	case *ast.CallExpr:
		for _, a := range x.Args {
			if sc.isTaintedW(a, tainted) {
				return true
			}
		}
	case *ast.UnaryExpr:
		return sc.isTaintedW(x.X, tainted)
	case *ast.StarExpr:
		return sc.isTaintedW(x.X, tainted)
	}
	return false
}

func (sc *scanResult) typeOf(e ast.Expr) types.Type {
	tv, ok := sc.pkg.TypesInfo.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// qualifiedName renders pkg.Fn for a package-qualified call expression.
func qualifiedName(pkg *analysis.Package, fun ast.Expr) string {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pkg.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Name() + "." + sel.Sel.Name
	}
	return ""
}

// isReqOrResp matches *http.Request and *http.Response.
func isReqOrResp(t types.Type) bool {
	return isNetHTTPType(t, "Request") || isNetHTTPType(t, "Response")
}

func isResponseWriter(t types.Type) bool {
	return isNetHTTPType(t, "ResponseWriter")
}

func isNetHTTPType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// isConnLike reports whether t carries per-connection deadlines: it has
// both SetReadDeadline and Read in its method set (net.Conn and every
// concrete conn type qualify).
func isConnLike(t types.Type) bool {
	if t == nil {
		return false
	}
	return hasMethod(t, "SetReadDeadline") && hasMethod(t, "Read")
}

func hasMethod(t types.Type, name string) bool {
	sets := []*types.MethodSet{types.NewMethodSet(t)}
	if _, ok := t.(*types.Pointer); !ok {
		sets = append(sets, types.NewMethodSet(types.NewPointer(t)))
	}
	for _, ms := range sets {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
