package netdeadline_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/netdeadline"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, netdeadline.Analyzer, "testdata/rtd")
}
