// Package rtd is a netdeadline fixture masquerading as the real rtd
// package (the analyzer matches on package name). True positives —
// deadline-less body reads, response writes, raw conn I/O, unbounded
// clients and servers — sit next to every sanctioned shape: lexically
// dominating Set*Deadline calls, ResponseController arming, deadlines
// proven at every call site, and //fpnvet:nodeadline escapes.
package rtd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// A body read with no deadline anywhere is a finding; one dominated by a
// ResponseController read deadline is clean.
func ingest(w http.ResponseWriter, r *http.Request) {
	raw, _ := io.ReadAll(r.Body) // want "blocking read on request/response body has no dominating SetReadDeadline"
	_ = raw
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})
	again, _ := io.ReadAll(r.Body) // clean: read deadline armed above
	_ = again
}

// Taint flows through wrappers into the readers they return.
func buffered(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, 1<<20), 4096)
	line, _ := br.ReadBytes('\n') // want "blocking read on request/response body has no dominating SetReadDeadline"
	_ = line
}

// Response writes need a write deadline: direct, through http.Error, and
// through an encoder wrapper.
func respond(w http.ResponseWriter, ok bool) {
	if !ok {
		http.Error(w, "no", http.StatusTeapot) // want "blocking write to the client connection has no dominating SetWriteDeadline"
		return
	}
	_ = json.NewEncoder(w).Encode(struct{}{}) // want "blocking write to the client connection has no dominating SetWriteDeadline"
}

func respondArmed(w http.ResponseWriter) {
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})
	fmt.Fprintln(w, "ready") // clean: write deadline armed above
}

// Raw connections: SetDeadline arms both directions; the un-armed write
// after it is still clean because deadlines persist.
func relay(c net.Conn) {
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err != nil { // want "blocking read on the connection has no dominating SetReadDeadline"
		return
	}
	c.SetDeadline(time.Time{})
	_, _ = c.Read(buf)  // clean
	_, _ = c.Write(buf) // clean
}

// A deadline armed at every call site reaches the callee's body read
// through entry facts.
func armedCaller(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})
	rc.SetWriteDeadline(time.Time{})
	drain(w, r)
}

func drain(w http.ResponseWriter, r *http.Request) {
	_, _ = io.ReadAll(r.Body) // clean: every caller arms a read deadline
	fmt.Fprint(w, "done")     // clean: every caller arms a write deadline
}

// One caller without a deadline voids the proof.
func lazyCaller(w http.ResponseWriter, r *http.Request) {
	slurp(r)
}

func armedToo(w http.ResponseWriter, r *http.Request) {
	http.NewResponseController(w).SetReadDeadline(time.Time{})
	slurp(r)
}

func slurp(r *http.Request) {
	_, _ = io.ReadAll(r.Body) // want "blocking read on request/response body has no dominating SetReadDeadline"
}

// The annotation is the honest escape when the bound lives elsewhere.
func annotated(w http.ResponseWriter, r *http.Request) {
	//fpnvet:nodeadline bounded by the serving http.Server ReadTimeout
	_, _ = io.ReadAll(r.Body)
	fmt.Fprint(w, "ok") //fpnvet:nodeadline bounded by the serving http.Server WriteTimeout
}

// Clients must bound their requests.
func fetch(url string) {
	cl := &http.Client{} // want "http.Client literal sets no Timeout"
	_, _ = cl.Get(url)
	good := &http.Client{Timeout: 5 * time.Second} // clean
	_, _ = good.Get(url)
	_, _ = http.Get(url)           // want "uses the timeout-less default client"
	hc := http.DefaultClient       // want "http.DefaultClient has no Timeout"
	_ = hc                         //
	dc := http.DefaultClient       //fpnvet:nodeadline request lifetime bounded by the caller's context
	_ = dc                         //
	_, _ = http.Post(url, "", nil) // want "uses the timeout-less default client"
	_, _ = http.PostForm(url, nil) // want "uses the timeout-less default client"
	_, _ = http.Head(url)          // want "uses the timeout-less default client"
}

// Servers must set a header read timeout (ReadTimeout subsumes it).
func serve(h http.Handler) {
	bad := &http.Server{Handler: h} // want "http.Server literal sets no ReadHeaderTimeout"
	good := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	alsoGood := &http.Server{Handler: h, ReadTimeout: 5 * time.Second}
	_, _, _ = bad, good, alsoGood
}
