package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// loadSimple loads the driver's own fixture package once per test.
func loadSimple(t *testing.T) (*Program, *Package) {
	t.Helper()
	prog, err := Load(LoadConfig{Dir: filepath.Join("testdata", "simple")}, ".")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Packages) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Packages))
	}
	return prog, prog.Packages[0]
}

func TestLoadResolvesModuleAndStdlib(t *testing.T) {
	prog, pkg := loadSimple(t)
	if prog.ModulePath != "github.com/fpn/flagproxy" {
		t.Errorf("ModulePath = %q", prog.ModulePath)
	}
	if pkg.Name != "simple" {
		t.Errorf("package name = %q, want simple", pkg.Name)
	}
	wantPath := prog.ModulePath + "/internal/analysis/testdata/simple"
	if pkg.Path != wantPath {
		t.Errorf("package path = %q, want %q", pkg.Path, wantPath)
	}
	// The stdlib "sort" import must have been type-checked from source:
	// sort.Ints in helper resolves to a *types.Func with full signature.
	fn := findFunc(t, pkg, "helper")
	sig := fn.Type().(*types.Signature)
	if got := sig.Results().Len(); got != 1 {
		t.Errorf("helper results = %d, want 1", got)
	}
	if pkg.Types.Scope().Lookup("Options") == nil {
		t.Error("Options not in package scope")
	}
}

func TestDirectiveIndexing(t *testing.T) {
	prog, pkg := loadSimple(t)

	rootDecl, _ := prog.DeclOf(findFunc(t, pkg, "Root"))
	if rootDecl == nil {
		t.Fatal("DeclOf(Root) = nil")
	}
	if !prog.FuncHasDirective(DirHotpath, rootDecl) {
		t.Error("Root should carry fpn:hotpath")
	}
	helperDecl, helperPkg := prog.DeclOf(findFunc(t, pkg, "helper"))
	if helperPkg != pkg {
		t.Errorf("DeclOf(helper) package = %v, want the fixture package", helperPkg)
	}
	if prog.FuncHasDirective(DirHotpath, helperDecl) {
		t.Error("helper should not carry fpn:hotpath")
	}

	// fpnvet:sched sits above the Verbose field and must cover it but
	// not its sibling Depth.
	verbose, depth := findField(t, pkg, "Verbose"), findField(t, pkg, "Depth")
	if !prog.HasDirective(DirSched, verbose.Pos()) {
		t.Error("Verbose should carry fpnvet:sched")
	}
	if prog.HasDirective(DirSched, depth.Pos()) {
		t.Error("Depth should not carry fpnvet:sched")
	}

	// fpnvet:orderless sits above the map range in keys.
	rng := findRange(t, prog, pkg, "keys")
	if !prog.HasDirective(DirOrderless, rng.Pos()) {
		t.Error("map range in keys should carry fpnvet:orderless")
	}
	if prog.HasDirective(DirColdpath, rng.Pos()) {
		t.Error("map range in keys should not carry fpnvet:coldpath")
	}
}

func TestRunDedupesAndFormats(t *testing.T) {
	prog, pkg := loadSimple(t)
	pos := findFunc(t, pkg, "Root").Pos()
	// Two analyzers report the same finding at the same position (as
	// hotalloc does when call graphs rooted in different packages meet);
	// Run must keep a single copy. The differently-named finding stays.
	report := func(pass *Pass) error {
		pass.Report(pos, "duplicate finding")
		return nil
	}
	a := &Analyzer{Name: "dup", Run: report}
	b := &Analyzer{Name: "dup", Run: report}
	c := &Analyzer{Name: "other", Run: func(pass *Pass) error {
		pass.Report(pos, "distinct finding")
		return nil
	}}
	diags, err := Run(prog, []*Analyzer{a, b, c})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (dedupe failed): %v", len(diags), diags)
	}
	// Sorted by position then analyzer name: "dup" before "other".
	if diags[0].Analyzer != "dup" || diags[1].Analyzer != "other" {
		t.Errorf("diagnostic order = [%s %s], want [dup other]", diags[0].Analyzer, diags[1].Analyzer)
	}
	got := diags[0].String()
	wantSuffix := "simple.go:7: [dup] duplicate finding"
	if !strings.HasSuffix(got, wantSuffix) {
		t.Errorf("Diagnostic.String() = %q, want suffix %q", got, wantSuffix)
	}
}

func TestResultAffecting(t *testing.T) {
	_, pkg := loadSimple(t)
	if ResultAffecting(pkg) {
		t.Error("fixture package simple must not be result-affecting")
	}
	for _, name := range []string{"sim", "experiment", "decoder", "dem", "catalog", "tiling", "group"} {
		if !ResultAffecting(&Package{Name: name}) {
			t.Errorf("package %s must be result-affecting", name)
		}
	}
	if ResultAffecting(&Package{Name: "checkpoint"}) {
		t.Error("harness package checkpoint must not be result-affecting")
	}
}

// findFunc returns the *types.Func for a top-level function by name.
func findFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	obj := pkg.Types.Scope().Lookup(name)
	fn, ok := obj.(*types.Func)
	if !ok {
		t.Fatalf("function %s not found (got %v)", name, obj)
	}
	return fn
}

// findField returns the named struct field of the fixture's Options type.
func findField(t *testing.T, pkg *Package, name string) *types.Var {
	t.Helper()
	obj := pkg.Types.Scope().Lookup("Options")
	st := obj.Type().Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == name {
			return f
		}
	}
	t.Fatalf("field Options.%s not found", name)
	return nil
}

// findRange returns the first range statement in the named function.
func findRange(t *testing.T, prog *Program, pkg *Package, fn string) *ast.RangeStmt {
	t.Helper()
	decl, _ := prog.DeclOf(findFunc(t, pkg, fn))
	var rng *ast.RangeStmt
	ast.Inspect(decl, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && rng == nil {
			rng = r
		}
		return rng == nil
	})
	if rng == nil {
		t.Fatalf("no range statement in %s", fn)
	}
	return rng
}
