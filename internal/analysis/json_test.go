package analysis_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fpn/flagproxy/internal/analysis"
)

// TestWriteJSONGolden pins the machine-readable finding format byte for
// byte: module-relative forward-slash paths, absolute paths left alone
// when they fall outside the root, and a literal [] (never null) for a
// clean run — CI consumers diff this output directly.
func TestWriteJSONGolden(t *testing.T) {
	root := filepath.FromSlash("/repo")
	outside := filepath.FromSlash("/elsewhere/vendor.go")
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "sim", "engine.go"), Line: 42},
			Analyzer: "detrand",
			Message:  `call to math/rand.Int in a result-affecting package; use the seeded *rand.Rand`,
		},
		{
			Pos:      token.Position{Filename: outside, Line: 7},
			Analyzer: "netdeadline",
			Message:  "http.Client literal sets no Timeout",
		},
	}
	var sb strings.Builder
	if err := analysis.WriteJSON(&sb, root, diags); err != nil {
		t.Fatal(err)
	}
	golden := `[
  {
    "file": "internal/sim/engine.go",
    "line": 42,
    "analyzer": "detrand",
    "message": "call to math/rand.Int in a result-affecting package; use the seeded *rand.Rand"
  },
  {
    "file": "` + filepath.ToSlash(outside) + `",
    "line": 7,
    "analyzer": "netdeadline",
    "message": "http.Client literal sets no Timeout"
  }
]
`
	if got := sb.String(); got != golden {
		t.Errorf("WriteJSON output mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}

	sb.Reset()
	if err := analysis.WriteJSON(&sb, root, nil); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "[]\n" {
		t.Errorf("WriteJSON of no findings = %q, want %q", got, "[]\n")
	}
}
