// Package sim is a detrand fixture masquerading as a result-affecting
// package (the analyzer matches on package name).
package sim

import (
	"math/rand"

	"github.com/fpn/flagproxy/internal/seedmix"
)

// Global-source functions are always findings.
func globals() int {
	rand.Seed(42)       // want "global-source function rand.Seed"
	x := rand.Intn(10)  // want "global-source function rand.Intn"
	f := rand.Float64() // want "global-source function rand.Float64"
	p := rand.Perm(4)   // want "global-source function rand.Perm"
	return x + int(f) + p[0]
}

// Seeds must be seedmix-derived, pass-through, or the literal 0.
func sources(seed int64, cfg struct{ Seed int64 }) *rand.Rand {
	bad1 := rand.New(rand.NewSource(3))            // want "neither seedmix-derived nor a pass-through"
	bad2 := rand.New(rand.NewSource(seed + 1))     // want "neither seedmix-derived nor a pass-through"
	bad3 := rand.New(rand.NewSource(cfg.Seed * 2)) // want "neither seedmix-derived nor a pass-through"
	good1 := rand.New(rand.NewSource(seed))        // pass-through parameter
	good2 := rand.New(rand.NewSource(cfg.Seed))    // pass-through field
	good3 := rand.New(rand.NewSource(0))           // placeholder, reseeded later
	good4 := rand.New(rand.NewSource(seedmix.Derive(seed, 7)))
	good5 := rand.New(rand.NewSource(seedmix.Derive(seed, seedmix.String("stream")) + 0))
	_ = []*rand.Rand{bad1, bad2, bad3, good1, good2, good3, good4}
	return good5
}
