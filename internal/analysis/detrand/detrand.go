// Package detrand forbids nondeterministic random-number use in the
// result-affecting packages (sim, experiment, decoder, dem, catalog,
// tiling, group). Every RNG stream there must be reproducible from one
// base seed, which in this repository means it is either derived with
// package seedmix or threaded in explicitly by the caller:
//
//   - calls to math/rand's global-source functions (rand.Intn,
//     rand.Float64, rand.Perm, rand.Seed, ...) are always findings —
//     the global source is shared, lockable state whose consumption
//     order depends on goroutine scheduling;
//   - rand.NewSource(expr) is clean when expr contains a seedmix call
//     (seedmix.Derive, seedmix.Mix64, ...), when expr is a plain
//     identifier or field selector (a pass-through seed whose
//     provenance is the caller's responsibility), or when expr is the
//     literal 0 (a placeholder source that is re-seeded before use);
//   - any other seed expression — a nonzero literal, or arithmetic like
//     seed+1 that collides across derivation sites — is a finding.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand global state and underived RNG seeds in result-affecting packages",
	Run:  run,
}

// globalFns are the math/rand package-level functions backed by the
// shared global source.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.ResultAffecting(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageQualifier(pass, sel)
			if !ok || (pkgPath != "math/rand" && pkgPath != "math/rand/v2") {
				return true
			}
			name := sel.Sel.Name
			if globalFns[name] {
				pass.Report(call.Pos(),
					"call to math/rand global-source function rand.%s; derive a local source via seedmix instead", name)
				return true
			}
			if name == "NewSource" && len(call.Args) == 1 {
				if !seedAllowed(pass, call.Args[0]) {
					pass.Report(call.Pos(),
						"rand.NewSource seed %q is neither seedmix-derived nor a pass-through seed variable; use seedmix.Derive", exprString(pass, call.Args[0]))
				}
			}
			return true
		})
	}
	return nil
}

// packageQualifier resolves sel's X to an imported package path, if the
// selector is a package-qualified reference.
func packageQualifier(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Pkg.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// seedAllowed reports whether a NewSource argument is acceptable.
func seedAllowed(pass *analysis.Pass, arg ast.Expr) bool {
	arg = ast.Unparen(arg)
	// Literal 0: placeholder source, re-seeded before any draw.
	if lit, ok := arg.(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
		return true
	}
	switch e := arg.(type) {
	case *ast.Ident:
		// Pass-through seed parameter or variable.
		return true
	case *ast.SelectorExpr:
		// Pass-through seed field (cfg.Seed, opt.Seed) — but not a
		// package-level variable of math/rand itself.
		if path, ok := packageQualifier(pass, e); ok {
			return path != "math/rand" && path != "math/rand/v2"
		}
		return true
	}
	// Anything else must contain a seedmix derivation.
	return containsSeedmixCall(pass, arg)
}

// containsSeedmixCall reports whether any call to the seedmix package
// appears inside expr.
func containsSeedmixCall(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if path, ok := packageQualifier(pass, sel); ok &&
				path == "github.com/fpn/flagproxy/internal/seedmix" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprString renders a short structural form of expr for finding text.
func exprString(pass *analysis.Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(pass, e.X) + "." + e.Sel.Name
	case *ast.BinaryExpr:
		return exprString(pass, e.X) + " " + e.Op.String() + " " + exprString(pass, e.Y)
	case *ast.CallExpr:
		return exprString(pass, e.Fun) + "(...)"
	}
	return "<expr>"
}
