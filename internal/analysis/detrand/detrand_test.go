package detrand_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/detrand"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "testdata/sim")
}
