package hotalloc_test

import (
	"testing"

	"github.com/fpn/flagproxy/internal/analysis/analyzertest"
	"github.com/fpn/flagproxy/internal/analysis/hotalloc"
)

func TestFixture(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer, "testdata/decoder")
}
