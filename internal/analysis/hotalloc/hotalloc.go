// Package hotalloc enforces the repository's zero-allocation decode
// guarantee statically. Functions annotated //fpn:hotpath are decode
// hot-path roots (the DecodeWith entry points); hotalloc walks their
// entire statically-resolvable call graph — across packages — and flags
// every construct that heap-allocates per shot:
//
//   - make and new calls,
//   - pointer-to-composite (&T{...}), slice, and map literals,
//   - append whose result is not assigned back to the appended slice
//     (self-appends are the amortized-growth idiom and stay),
//   - calls into package fmt outside return statements and panics
//     (error formatting on failure paths is fine; formatting per shot
//     is not).
//
// The one sanctioned escape hatch is the guarded-growth idiom: an
// allocation inside an if-statement whose condition reads cap() or
// len() is amortized capacity growth (growBools, FlagSet.Add,
// ensureClassOverlay, ...) and is allowed. The runtime allocation gate
// (TestDecodeSteadyStateZeroAlloc) proves the steady state allocates
// nothing; this analyzer explains *why* and catches regressions at
// review time, before a benchmark ever runs.
package hotalloc

import (
	"go/ast"
	"go/types"

	"github.com/fpn/flagproxy/internal/analysis"
)

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid per-shot heap allocation in //fpn:hotpath call graphs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Roots are collected per package; the walk then crosses package
	// boundaries freely (decoder → dem → matching).
	var roots []*types.Func
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if !pass.Prog.FuncHasDirective(analysis.DirHotpath, fd) {
				continue
			}
			if fn, ok := pass.Pkg.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	pass.Prog.Reachable(roots, func(fn *types.Func, decl *ast.FuncDecl, pkg *analysis.Package) bool {
		if pass.Prog.FuncHasDirective(analysis.DirColdpath, decl) {
			return false
		}
		checkFunc(pass, pkg, fn, decl)
		return true
	})
	return nil
}

// checkFunc scans one reached function body for per-shot allocations.
func checkFunc(pass *analysis.Pass, pkg *analysis.Package, fn *types.Func, decl *ast.FuncDecl) {
	parents := parentMap(decl)
	where := fn.Name()
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch callName(pkg, e) {
			case "make":
				if !growthGuarded(parents, e) {
					pass.Report(e.Pos(), "make in hot path %s allocates per shot; reuse scratch storage or guard growth with a cap()/len() check", where)
				}
			case "new":
				if !growthGuarded(parents, e) {
					pass.Report(e.Pos(), "new in hot path %s allocates per shot; reuse scratch storage", where)
				}
			case "append":
				if !selfAppend(parents, e) && !passThroughAppend(parents, e) && !growthGuarded(parents, e) {
					pass.Report(e.Pos(), "append in hot path %s does not write back to the appended slice; only self-appends amortize", where)
				}
			}
			if fmtCall(pkg, e) && !onFailurePath(parents, e) {
				pass.Report(e.Pos(), "fmt call in hot path %s boxes arguments per shot; format only on return/panic failure paths", where)
			}
		case *ast.CompositeLit:
			if allocatingLiteral(pkg, parents, e) && !growthGuarded(parents, e) {
				pass.Report(e.Pos(), "composite literal in hot path %s escapes to the heap; reuse scratch storage", where)
			}
		}
		return true
	})
}

// parentMap records each node's syntactic parent inside decl.
func parentMap(decl *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// callName returns the builtin name a call invokes, or "".
func callName(pkg *analysis.Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pkg.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// fmtCall reports whether the call targets package fmt.
func fmtCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// growthGuarded reports whether n sits inside an if-statement whose
// condition inspects cap() or len() (the amortized-growth idiom) or
// compares against nil (lazy one-time initialization of reused
// storage).
func growthGuarded(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		ifs, ok := p.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			switch e := c.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					guarded = true
					return false
				}
			case *ast.BinaryExpr:
				if isNil(e.X) || isNil(e.Y) {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			return true
		}
	}
	return false
}

// isNil reports whether e is the predeclared nil.
func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// onFailurePath reports whether n is inside a return statement, a
// panic call, or a block guarded by recover() — the contexts where
// error formatting is acceptable because the shot already failed.
func onFailurePath(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.ReturnStmt); ok {
			return true
		}
		if call, ok := p.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		if ifs, ok := p.(*ast.IfStmt); ok && guardsRecover(ifs) {
			return true
		}
	}
	return false
}

// guardsRecover reports whether the if-statement's init or condition
// calls recover() — the body only runs when a panic is in flight.
func guardsRecover(ifs *ast.IfStmt) bool {
	found := false
	check := func(n ast.Node) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
					found = true
					return false
				}
			}
			return true
		})
	}
	check(ifs.Init)
	check(ifs.Cond)
	return found
}

// selfAppend reports whether the append call's result is assigned back
// to the slice being appended to: x = append(x, ...), including the
// reslice-and-refill form x = append(x[:0], ...).
func selfAppend(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	asg, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if sl, ok := arg.(*ast.SliceExpr); ok {
		arg = sl.X
	}
	for i, rhs := range asg.Rhs {
		if ast.Unparen(rhs) == call && i < len(asg.Lhs) {
			return sameLValue(asg.Lhs[i], arg)
		}
	}
	return false
}

// passThroughAppend reports whether the append call is the expression
// of a return statement — the `return append(out, v)` idiom where the
// caller assigns the result back to its own slice.
func passThroughAppend(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	_, ok := parents[call].(*ast.ReturnStmt)
	return ok
}

// sameLValue compares ident/selector/index/deref chains structurally.
func sameLValue(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameLValue(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameLValue(x.X, y.X) && sameLValue(x.Index, y.Index)
	case *ast.StarExpr:
		y, ok := b.(*ast.StarExpr)
		return ok && sameLValue(x.X, y.X)
	}
	return false
}

// allocatingLiteral reports whether a composite literal heap-allocates:
// slice and map literals always do; struct literals only when their
// address is taken. Nested literals inside a flagged outer literal are
// not re-reported.
func allocatingLiteral(pkg *analysis.Package, parents map[ast.Node]ast.Node, lit *ast.CompositeLit) bool {
	if _, inLit := parents[lit].(*ast.CompositeLit); inLit {
		return false
	}
	if kv, ok := parents[lit].(*ast.KeyValueExpr); ok {
		if _, inLit := parents[kv].(*ast.CompositeLit); inLit {
			return false
		}
	}
	tv, ok := pkg.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	if u, ok := parents[lit].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		return true
	}
	return false
}
